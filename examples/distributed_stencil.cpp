//===- examples/distributed_stencil.cpp - Communication policies ------------===//
//
// A distributed 5-point stencil pipeline showing the section 5.5
// interaction between fusion and communication optimization. The same
// program is compiled twice: favoring fusion (exchanges inserted at the
// loop level after contraction) and favoring communication (pipelined
// send/recv pairs inserted at the array level before fusion, which
// blocks the contraction of temporaries whose live ranges span the
// exchange windows). Simulated times are compared across processor
// counts on the modeled IBM SP-2.
//
// Run:  ./distributed_stencil
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "comm/CommInsertion.h"
#include "exec/PerfModel.h"
#include "ir/Program.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"
#include "xform/Strategy.h"

#include <iostream>
#include <memory>

using namespace alf;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// A stencil pipeline: temporaries computed before the boundary sweep
/// and consumed after it, so the favor-communication policy loses their
/// contraction.
std::unique_ptr<Program> makePipeline(int64_t N) {
  auto P = std::make_unique<Program>("stencil-pipeline");
  const Region *R = P->regionFromExtents({N, N});
  ArraySymbol *U = P->makeArray("U", 2);
  ArraySymbol *V = P->makeArray("V", 2);
  ArraySymbol *T1 = P->makeUserTemp("T1", 2);
  ArraySymbol *T2 = P->makeUserTemp("T2", 2);
  ArraySymbol *F = P->makeUserTemp("flux", 2);

  P->assign(R, T1, mul(aref(U), cst(0.5)));             // local work
  P->assign(R, T2, add(aref(T1), aref(V)));             // local work
  P->assign(R, F,                                        // boundary sweep
            add(aref(U, {-1, 0}), add(aref(U, {1, 0}),
                add(aref(U, {0, -1}), aref(U, {0, 1})))));
  P->assign(R, V, add(aref(F), aref(T2)));              // consumes both
  return P;
}

} // namespace

int main() {
  const int64_t N = 64;
  machine::MachineDesc M = machine::ibmSP2();

  {
    auto P = makePipeline(N);
    std::cout << "=== Source pipeline ===\n";
    P->print(std::cout);
  }

  // Favor fusion: contract first, exchange before the consuming nests.
  auto FavorFusion = [&](unsigned Procs) {
    auto P = makePipeline(N);
    analysis::ASDG G = analysis::ASDG::build(*P);
    auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
    comm::CommPlan Plan = comm::insertLoopLevelComm(LP);
    exec::PerfStats Stats =
        exec::simulate(LP, M, machine::ProcGrid::make(Procs, 2));
    return std::pair<exec::PerfStats, unsigned>(Stats, Plan.Exchanges);
  };

  // Favor communication: pipelined exchanges first, fusion constrained.
  auto FavorComm = [&](unsigned Procs) {
    auto P = makePipeline(N);
    comm::CommPlan Plan = comm::insertArrayLevelComm(*P, /*Pipelined=*/true);
    analysis::ASDG G = analysis::ASDG::build(*P);
    StrategyResult SR = applyStrategy(G, Strategy::C2F3);
    auto LP = scalarize::scalarize(G, SR);
    exec::PerfStats Stats =
        exec::simulate(LP, M, machine::ProcGrid::make(Procs, 2));
    return std::tuple<exec::PerfStats, unsigned, size_t>(
        Stats, Plan.Exchanges, SR.Contracted.size());
  };

  {
    auto P = makePipeline(N);
    comm::insertArrayLevelComm(*P, /*Pipelined=*/true);
    std::cout << "\n=== With array-level pipelined exchanges ===\n";
    P->print(std::cout);
  }

  TextTable Table;
  Table.setHeader({"p", "favor-fusion (ms)", "favor-comm (ms)",
                   "favor-comm contracted", "slowdown"});
  for (unsigned Procs : {1u, 4u, 16u, 64u}) {
    auto [FF, FFEx] = FavorFusion(Procs);
    auto [FC, FCEx, FCContracted] = FavorComm(Procs);
    Table.addRow({formatString("%u", Procs),
                  formatString("%.3f", FF.totalNs() / 1e6),
                  formatString("%.3f", FC.totalNs() / 1e6),
                  formatString("%zu of 3", FCContracted),
                  formatString("%+.1f%%",
                               (FC.totalNs() / FF.totalNs() - 1.0) * 100)});
  }
  std::cout << "\n=== Policy comparison on the modeled IBM SP-2 ===\n";
  Table.print(std::cout);
  std::cout << "\nFavoring fusion keeps all three temporaries contracted; "
               "favoring communication\npipelines the exchanges but loses "
               "the contractions whose live ranges span them.\n";
  return 0;
}

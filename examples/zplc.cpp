//===- examples/zplc.cpp - Mini-ZPL compiler driver --------------------------===//
//
// A small command-line compiler for the mini-ZPL input language: parses a
// source file, normalizes, applies an optimization strategy, and prints
// the scalarized loop nests. With no file argument it compiles a built-in
// Jacobi demo.
//
// Usage:  ./zplc [file.zpl] [--strategy=c2|baseline|c1|f1|f2|f3|c2+f3|c2+f4|ilp]
//                [--dump-asdg] [--dump-source] [--emit-c] [--emit-f77]
//                [--explain] [--stats] [--simulate] [--lint]
//                [--exec=sequential|parallel|jit|jit-simd] [--seed=S]
//                [--semiring=plus-times|min-plus|max-times|max-plus|or-and]
//                [--verify=off|structural|full]
//                [--trace=out.json] [--metrics]
//
// --trace=FILE records every compilation phase and kernel launch and
// writes a Chrome trace_event file (load it at chrome://tracing or
// ui.perfetto.dev); --metrics prints the aggregated per-span timing
// table (count, total/p50/p95 wall time, bytes moved) to stdout.
//
// --exec runs the compiled program and prints its live-out scalars and
// array checksums; `--exec=jit` compiles the kernels natively with the
// system compiler (falling back to the interpreter when there is none).
//
// --lint reports frontend diagnostics (uninitialized reads, dead
// statements, rank mismatches) as `file:line:col: severity: message` and
// exits 1 when any error-severity diagnostic fired; nothing is compiled.
//
// --verify selects the translation-validation level (default full for the
// tool): each analysis product is re-proved as it is built, and a failed
// proof prints one `zplc: verification failed: ...` line and exits 1.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"

#include "analysis/ASDG.h"
#include "driver/Pipeline.h"
#include "exec/ParallelExecutor.h"
#include "exec/PerfModel.h"
#include "frontend/Parser.h"
#include "ir/Align.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "obs/Obs.h"
#include "scalarize/CEmitter.h"
#include "scalarize/FortranEmitter.h"
#include "scalarize/Scalarize.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "verify/Lint.h"
#include "verify/Verify.h"
#include "xform/Report.h"
#include "xform/Strategy.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

using namespace alf;

namespace {

const char *DemoSource = R"(
-- Built-in demo: Jacobi smoothing step with diagnostics.
region R : [1..32, 1..32];
array U, Unew : R;
array Res : R temp;
scalar maxres;

[R] Res  := (U@(-1,0) + U@(1,0) + U@(0,-1) + U@(0,1)) * 0.25 - U;
[R] Unew := U + Res * 0.8;
[R] maxres := max << abs(Res);
)";

} // namespace

int main(int argc, char **argv) {
  std::string Source = DemoSource;
  std::string FileName = "<demo>";
  bool DumpASDG = false, DumpSource = false, EmitC = false,
       EmitF77 = false, Explain = false, Stats = false,
       Simulate = false, Lint = false;
  tool::ToolOptions TO; // shared flags; zplc's verify default is full

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string FlagError;
    switch (tool::parseToolFlag(Arg, tool::TF_All, TO, FlagError)) {
    case tool::FlagParse::Consumed:
      continue;
    case tool::FlagParse::Error:
      std::cerr << "zplc: " << FlagError << '\n';
      return 1;
    case tool::FlagParse::NotMine:
      break;
    }
    if (Arg == "--dump-asdg") {
      DumpASDG = true;
      continue;
    }
    if (Arg == "--dump-source") {
      DumpSource = true;
      continue;
    }
    if (Arg == "--emit-c") {
      EmitC = true;
      continue;
    }
    if (Arg == "--emit-f77") {
      EmitF77 = true;
      continue;
    }
    if (Arg == "--explain") {
      Explain = true;
      continue;
    }
    if (Arg == "--stats") {
      Stats = true;
      continue;
    }
    if (Arg == "--simulate") {
      Simulate = true;
      continue;
    }
    if (Arg == "--lint") {
      Lint = true;
      continue;
    }
    std::ifstream In(Arg);
    if (!In) {
      std::cerr << "zplc: error: cannot open " << Arg << '\n';
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    FileName = Arg;
  }

  tool::applyObsLevel(TO);
  xform::Strategy Strat = TO.Strat.value_or(xform::Strategy::C2);
  verify::VerifyLevel VerifyLevel = TO.Verify;

  frontend::ParseResult Result = frontend::parseProgram(Source, FileName);
  if (!Result.succeeded()) {
    // Parser errors carry "line:col: message"; render them as standard
    // compiler diagnostics so editors and CI can jump to the position.
    for (const std::string &E : Result.Errors) {
      size_t Sep = E.find(": ");
      if (Sep == std::string::npos)
        std::cerr << FileName << ": error: " << E << '\n';
      else
        std::cerr << FileName << ':' << E.substr(0, Sep)
                  << ": error: " << E.substr(Sep + 2) << '\n';
    }
    return 1;
  }
  ir::Program &P = *Result.Prog;

  // --semiring rebinds every reduction's algebra before any analysis
  // runs, so the override flows through strategy, verify and execution.
  if (TO.SemiringSel)
    for (unsigned Id = 0; Id < P.numStmts(); ++Id)
      if (auto *RS = dyn_cast<ir::ReduceStmt>(P.getStmt(Id)))
        RS->setSemiring(*TO.SemiringSel);

  if (Lint) {
    // Lint looks at the program exactly as written (pre-normalization,
    // pre-alignment) so positions and names match the source.
    verify::LintResult LR = verify::lintProgram(P, Result.StmtPositions);
    std::cout << LR.render(FileName);
    return LR.exitCode();
  }

  unsigned Temps;
  {
    obs::Span S("pipeline.normalize", FileName);
    ir::alignProgram(P);
    Temps = ir::normalizeProgram(P);
  }
  auto Errors = ir::verifyProgram(P);
  if (!Errors.empty()) {
    // Verifier findings have no source position; still use the
    // "error:" marker and a nonzero exit.
    for (const std::string &E : Errors)
      std::cerr << FileName << ": error: " << E << '\n';
    return 1;
  }

  if (DumpSource) {
    std::cout << "// normalized (" << Temps << " compiler temporaries)\n";
    P.print(std::cout);
    std::cout << '\n';
  }

  // A failed proof prints one line and exits nonzero so scripts and CI
  // can gate on the tool's exit status.
  auto CheckVerified = [&](verify::VerifyReport R) {
    if (R.ok())
      return;
    std::cerr << "zplc: verification failed: " << R.Findings.front().str()
              << '\n';
    std::exit(1);
  };

  // The pipeline owns ASDG -> strategy -> scalarize from here (opening
  // the same obs spans this tool used to open by hand). Alignment and
  // normalization already ran above, so the pipeline's own pass is off.
  driver::PipelineOptions PO;
  PO.Normalize = false;
  PO.Verify = VerifyLevel;
  driver::Pipeline PL(P, PO);
  driver::CompileRequest CReq;
  CReq.Strat = Strat;
  driver::CompileStatus CSt = PL.tryCompile(CReq);
  if (CSt.Code == driver::CompileCode::InvalidProgram) {
    std::cerr << FileName << ": error: " << CSt.Message << '\n';
    return 1;
  }
  if (!CSt.ok()) {
    std::cerr << "zplc: verification failed: " << CSt.Message << '\n';
    return 1;
  }
  if (DumpASDG) {
    PL.asdg().print(std::cout);
    std::cout << '\n';
  }

  const xform::StrategyResult &SR = *CSt.SR;
  std::cout << "// strategy " << xform::getStrategyName(Strat) << ": "
            << SR.Partition.numClusters() << " loop nests, "
            << SR.Contracted.size() << " arrays contracted";
  if (!SR.Contracted.empty()) {
    std::cout << " (";
    for (size_t I = 0; I < SR.Contracted.size(); ++I)
      std::cout << (I ? ", " : "") << SR.Contracted[I]->getName();
    std::cout << ")";
  }
  std::cout << "\n\n";

  if (Explain) {
    std::cout << "// contraction decisions:\n"
              << xform::contractionReport(SR) << '\n';
  }

  lir::LoopProgram LP = std::move(CSt.Artifact->LP);
  if (EmitC)
    std::cout << scalarize::emitC(LP, "kernel");
  else if (EmitF77)
    std::cout << scalarize::emitFortran(LP, "KERNEL");
  else
    LP.print(std::cout);
  if (Simulate) {
    unsigned Rank = 2;
    for (const ir::Stmt *S : P.stmts())
      if (const auto *NS = dyn_cast<ir::NormalizedStmt>(S))
        Rank = NS->getRegion()->rank();
    std::cout << "\n// simulated single-processor execution:\n";
    for (const machine::MachineDesc &M : machine::allMachines()) {
      exec::PerfStats Stats =
          exec::simulate(LP, M, machine::ProcGrid::make(1, Rank));
      std::cout << "//   " << M.Name << ": "
                << alf::formatString(
                       "%.3f ms (L1 miss %.1f%%, %llu flops)",
                       Stats.totalNs() / 1e6, 100.0 * Stats.l1MissRatio(),
                       static_cast<unsigned long long>(Stats.Flops))
                << '\n';
    }
  }
  if (TO.Exec) {
    exec::RunResult Res;
    {
      obs::Span ExecSpan("pipeline.execute",
                         xform::getExecModeName(*TO.Exec));
      if (*TO.Exec == xform::ExecMode::Parallel) {
        // Plan explicitly so the schedule run is the schedule certified.
        exec::ParallelSchedule Sched = exec::planParallelism(LP);
        if (VerifyLevel >= verify::VerifyLevel::Full)
          CheckVerified(verify::verifyParallelSafety(LP, Sched));
        Res = exec::runParallel(LP, TO.Seed, exec::ParallelOptions(), Sched);
      } else {
        Res = exec::runWithMode(LP, TO.Seed, *TO.Exec);
      }
    }
    std::cout << "\n// executed (" << xform::getExecModeName(*TO.Exec)
              << ", seed " << TO.Seed << "):\n";
    for (const auto &[Name, Value] : Res.ScalarsOut)
      std::cout << "//   " << Name << " = "
                << alf::formatString("%.17g", Value) << '\n';
    for (const auto &[Name, Values] : Res.LiveOut) {
      double Sum = 0.0;
      for (double V : Values)
        Sum += V;
      std::cout << "//   sum(" << Name << ") = "
                << alf::formatString("%.17g", Sum) << " (" << Values.size()
                << " elements)\n";
    }
  }
  if (Stats) {
    std::cout << '\n';
    alf::printStatistics(std::cout);
  }
  if (TO.Metrics)
    std::cout << '\n';
  if (!tool::emitObsOutputs(TO, std::cout, std::cerr, "zplc"))
    return 1;
  if (!TO.TraceFile.empty())
    std::cout << "// trace: " << obs::numTraceEvents() << " events -> "
              << TO.TraceFile << '\n';
  return 0;
}

-- The NAS EP kernel in mini-ZPL: a pseudo-random deviate chain, two
-- coordinate fields, acceptance tests and scalar reductions. Under c2
-- every array contracts — the paper's Figure 7 reports EP as 22 arrays
-- before contraction and zero after, so the compiled kernel's memory
-- use is constant in the problem size.
--
--   ./build/examples/zplc examples/ep.zpl --explain --stats

region Line : [1..65536];

array u1, u2, u3, u4 : Line temp;
array x, y            : Line temp;
array q0, q1, q2      : Line temp;
scalar seed, sx, sy, chk;

[Line] u1 := seed * 0.5 + 0.25;
[Line] u2 := u1 * 1.10351 + 0.12345;
[Line] u3 := u2 * 1.10351 + 0.12345;
[Line] u4 := u3 * 1.10351 + 0.12345;

[Line] x := 2 * u3 - 1;
[Line] y := 2 * u4 - 1;

[Line] q0 := max(0, 1 - (x*x + y*y) * 0.1);
[Line] q1 := max(0, 1 - (x*x + y*y) * 0.2);
[Line] q2 := max(0, 1 - (x*x + y*y) * 0.3);

[Line] sx  := + << x * q0;
[Line] sy  := + << y * q1;
[Line] chk := + << u1 + u2 + u3 + u4 + x + y + q0 + q1 + q2;

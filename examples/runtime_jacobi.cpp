//===- examples/runtime_jacobi.cpp - Lazy arrays, fused at flush --------------===//
//
// The runtime engine demonstrated on Jacobi iteration: array expressions
// build a trace instead of executing, a flush runs the whole trace through
// fusion-for-contraction, and because every iteration issues the same
// trace shape, the structural trace cache makes steady-state flushes pay
// zero analysis (and, under --jit, zero kernel compiles after the first).
//
// Run:  ./runtime_jacobi [--jit] [--parallel]
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <cstring>
#include <iostream>

using namespace alf;
using namespace alf::runtime;

int main(int argc, char **argv) {
  EngineOptions Opts;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--jit"))
      Opts.Mode = xform::ExecMode::NativeJit;
    else if (!std::strcmp(argv[I], "--parallel"))
      Opts.Mode = xform::ExecMode::Parallel;
    else {
      std::cerr << "usage: runtime_jacobi [--jit] [--parallel]\n";
      return 2;
    }
  }
  Engine E(Opts);

  // A 2-D grid, hot boundary on the left column.
  const int64_t N = 64;
  Array U = E.input("U", ir::Region({0, 0}, {N + 1, N + 1}));
  for (int64_t I = 0; I <= N + 1; ++I)
    U.set({I, 0}, 1.0);

  ir::Region Interior({1, 1}, {N, N});
  double Delta = 1.0;
  unsigned Iters = 0;
  while (Delta > 1e-4 && Iters < 200) {
    // One sweep: the four-point average, the pointwise residual, its
    // reduction, and the write-back are ONE trace. Both temporaries'
    // handles die before the flush that Delta's observation triggers, so
    // liveness classifies them dead and fusion-for-contraction decides:
    // D fuses into its reduction and vanishes entirely; V survives
    // because Jacobi's write-back legally cannot fuse with a stencil
    // that still reads the old grid.
    Scalar Residual;
    {
      Array V = E.compute(Interior,
                          (shift(U, {-1, 0}) + shift(U, {1, 0}) +
                           shift(U, {0, -1}) + shift(U, {0, 1})) *
                              Ex(0.25));
      Array D = E.compute(Interior, eabs(Ex(V) - Ex(U)));
      Residual = E.reduce(RedOp::Max, Interior, Ex(D));
      E.update(U, ir::Offset({0, 0}), Interior, Ex(V));
    }
    Delta = Residual.value(); // observation: flush, fuse, execute
    ++Iters;
  }

  const EngineStats &S = E.stats();
  std::cout << "converged after " << Iters << " sweeps, delta " << Delta
            << "\n"
            << "statements recorded: " << S.StmtsRecorded << "\n"
            << "flushes:             " << S.Flushes << "\n"
            << "trace-cache hits:    " << S.CacheHits << " ("
            << S.CacheMisses << " misses)\n"
            << "kernels compiled:    " << S.KernelCompiles << "\n"
            << "last flush: " << E.lastFlush().TraceLen << " statements in "
            << E.lastFlush().Clusters << " clusters, "
            << E.lastFlush().Contracted << " arrays contracted\n";

  // Every flush after the first must have been served by the cache.
  if (S.Flushes > 1 && S.CacheMisses != 1) {
    std::cerr << "expected exactly one trace-cache miss\n";
    return 1;
  }
  return 0;
}

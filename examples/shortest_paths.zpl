-- All-pairs shortest paths (Floyd-Warshall) in mini-ZPL, computed in
-- the tropical min-plus semiring. The 4-node distance matrix is kept
-- as four persistent row arrays d1..d4; per pivot k and row i:
--
--   [k..k] sk_i := min << di;        -- extract d_i[k] (exact singleton)
--   [Row]  tk_i := sk_i + dk;        -- candidate path through pivot k
--   [Row]  di   := min(di, tk_i);    -- elementwise relax
--
-- Every tk_i candidate row is a contractible temporary, so under the
-- default c2 strategy all 16 of them vanish into the fused nests and
-- only the four persistent rows remain. --semiring=min-plus pins the
-- reduction algebra explicitly (min << already canonicalizes to it);
-- see DESIGN.md section 15.
--
--   ./build/examples/zplc examples/shortest_paths.zpl --semiring=min-plus --exec=jit --stats

region Row : [1..4];
region P1 : [1..1];
region P2 : [2..2];
region P3 : [3..3];
region P4 : [4..4];

array d1, d2, d3, d4 : Row;
scalar s1_1, s1_2, s1_3, s1_4;
scalar s2_1, s2_2, s2_3, s2_4;
scalar s3_1, s3_2, s3_3, s3_4;
scalar s4_1, s4_2, s4_3, s4_4;
array t1_1, t1_2, t1_3, t1_4 : Row temp;
array t2_1, t2_2, t2_3, t2_4 : Row temp;
array t3_1, t3_2, t3_3, t3_4 : Row temp;
array t4_1, t4_2, t4_3, t4_4 : Row temp;

-- pivot 1
[P1] s1_1 := min << d1;
[Row] t1_1 := s1_1 + d1;
[Row] d1 := min(d1, t1_1);
[P1] s1_2 := min << d2;
[Row] t1_2 := s1_2 + d1;
[Row] d2 := min(d2, t1_2);
[P1] s1_3 := min << d3;
[Row] t1_3 := s1_3 + d1;
[Row] d3 := min(d3, t1_3);
[P1] s1_4 := min << d4;
[Row] t1_4 := s1_4 + d1;
[Row] d4 := min(d4, t1_4);

-- pivot 2
[P2] s2_1 := min << d1;
[Row] t2_1 := s2_1 + d2;
[Row] d1 := min(d1, t2_1);
[P2] s2_2 := min << d2;
[Row] t2_2 := s2_2 + d2;
[Row] d2 := min(d2, t2_2);
[P2] s2_3 := min << d3;
[Row] t2_3 := s2_3 + d2;
[Row] d3 := min(d3, t2_3);
[P2] s2_4 := min << d4;
[Row] t2_4 := s2_4 + d2;
[Row] d4 := min(d4, t2_4);

-- pivot 3
[P3] s3_1 := min << d1;
[Row] t3_1 := s3_1 + d3;
[Row] d1 := min(d1, t3_1);
[P3] s3_2 := min << d2;
[Row] t3_2 := s3_2 + d3;
[Row] d2 := min(d2, t3_2);
[P3] s3_3 := min << d3;
[Row] t3_3 := s3_3 + d3;
[Row] d3 := min(d3, t3_3);
[P3] s3_4 := min << d4;
[Row] t3_4 := s3_4 + d3;
[Row] d4 := min(d4, t3_4);

-- pivot 4
[P4] s4_1 := min << d1;
[Row] t4_1 := s4_1 + d4;
[Row] d1 := min(d1, t4_1);
[P4] s4_2 := min << d2;
[Row] t4_2 := s4_2 + d4;
[Row] d2 := min(d2, t4_2);
[P4] s4_3 := min << d3;
[Row] t4_3 := s4_3 + d4;
[Row] d3 := min(d3, t4_3);
[P4] s4_4 := min << d4;
[Row] t4_4 := s4_4 + d4;
[Row] d4 := min(d4, t4_4);


//===- examples/spmd_validation.cpp - Distributed execution demo --------------===//
//
// Compiles a mini-ZPL program, optimizes it with c2+f3, inserts halo
// exchanges, and executes it BOTH sequentially and SPMD-style on a
// simulated processor grid — verifying element-wise that the distributed
// results match. This is the full distributed story of the paper's
// setting: block distribution, compiler-inserted communication, fusion
// and contraction, all checked against a sequential oracle.
//
// Run:  ./spmd_validation [procs]
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "comm/CommInsertion.h"
#include "distsim/DistInterpreter.h"
#include "exec/Interpreter.h"
#include "frontend/Parser.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <cstdlib>
#include <iostream>

using namespace alf;

namespace {

const char *Source = R"(
-- Two smoothing sweeps with a diagnostic reduction.
region G : [1..48, 1..48];
array u, v : G;
array flux : G temp;

[G] flux := (u@(-1,0) + u@(1,0) + u@(0,-1) + u@(0,1)) * 0.25;
[G] v    := u + (flux - u) * 0.7;
[G] u    := v + (v@(1,0) - v@(-1,0)) * 0.05;

scalar energy;
[G] energy := + << u * u;
)";

} // namespace

int main(int argc, char **argv) {
  unsigned Procs = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;

  frontend::ParseResult Result = frontend::parseProgram(Source, "spmd-demo");
  if (!Result.succeeded()) {
    for (const std::string &E : Result.Errors)
      std::cerr << E << '\n';
    return 1;
  }
  ir::Program &P = *Result.Prog;
  ir::normalizeProgram(P);

  analysis::ASDG G = analysis::ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, xform::Strategy::C2F3);
  comm::CommPlan Plan = comm::insertLoopLevelComm(LP);

  std::cout << "=== Compiled program ===\n" << LP.str();
  std::cout << "\nhalo exchanges inserted: " << Plan.Exchanges
            << " (redundant elided: " << Plan.RedundantElided << ")\n";

  // Sequential oracle.
  exec::RunResult Seq = exec::run(LP, 2026);

  // Distributed execution on a p-processor grid.
  machine::ProcGrid Grid = machine::ProcGrid::make(Procs, 2);
  exec::RunResult Dist = distsim::runDistributed(LP, Grid, 2026);

  std::cout << "\n=== SPMD execution on a " << Grid.Extents[0] << "x"
            << Grid.Extents[1] << " grid ===\n";
  TextTable Table;
  Table.setHeader({"result", "sequential", "distributed"});
  for (const auto &[Name, Data] : Seq.LiveOut) {
    double SeqSum = 0, DistSum = 0;
    for (double V : Data)
      SeqSum += V;
    for (double V : Dist.LiveOut.at(Name))
      DistSum += V;
    Table.addRow({Name, formatString("%.10g", SeqSum),
                  formatString("%.10g", DistSum)});
  }
  for (const auto &[Name, V] : Seq.ScalarsOut)
    Table.addRow({Name, formatString("%.10g", V),
                  formatString("%.10g", Dist.ScalarsOut.at(Name))});
  Table.print(std::cout);

  std::string Why;
  if (!exec::resultsMatch(Seq, Dist, 1e-9, &Why)) {
    std::cerr << "\nMISMATCH: " << Why << '\n';
    return 1;
  }
  std::cout << "\ndistributed results match the sequential oracle "
               "element-wise.\n";
  return 0;
}

//===- examples/quickstart.cpp - ALF in five minutes --------------------------===//
//
// Builds a tiny array program through the C++ API, shows the dependence
// graph, applies the paper's c2 strategy (fusion for contraction of
// compiler and user arrays), and prints the scalarized loop nests before
// and after — the user temporary B becomes the scalar s_B, exactly like
// the paper's Figure 1 example.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "exec/Interpreter.h"
#include "ir/Program.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <iostream>

using namespace alf;
using namespace alf::ir;

int main() {
  // 1. Build the program: B is a user temporary (dead afterwards).
  //      [1..8,1..8] B := A + A;
  //      [1..8,1..8] C := B * 0.5;
  Program P("quickstart");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeUserTemp("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, B, add(aref(A), aref(A)));
  P.assign(R, C, mul(aref(B), cst(0.5)));

  std::cout << "=== Array program ===\n";
  P.print(std::cout);
  if (!isWellFormed(P)) {
    std::cerr << "program failed verification\n";
    return 1;
  }

  // 2. Build the array statement dependence graph (paper Definition 3).
  analysis::ASDG G = analysis::ASDG::build(P);
  std::cout << "\n=== ASDG ===\n";
  G.print(std::cout);

  // 3. Baseline scalarization: one loop nest per statement, B allocated.
  auto Baseline =
      scalarize::scalarizeWithStrategy(G, xform::Strategy::Baseline);
  std::cout << "\n=== Scalarized, baseline ===\n" << Baseline.str();

  // 4. The paper's c2 strategy: FUSION-FOR-CONTRACTION over compiler and
  //    user arrays, then contraction. B disappears.
  xform::StrategyResult SR = xform::applyStrategy(G, xform::Strategy::C2);
  std::cout << "\n=== Fusion partition (c2) ===\n";
  SR.Partition.print(std::cout);
  std::cout << "contracted:";
  for (const ArraySymbol *Arr : SR.Contracted)
    std::cout << ' ' << Arr->getName();
  std::cout << '\n';

  auto Optimized = scalarize::scalarize(G, SR);
  std::cout << "\n=== Scalarized, c2 ===\n" << Optimized.str();

  // 5. Prove the optimization preserved semantics on random inputs.
  exec::RunResult Before = exec::run(Baseline, /*Seed=*/42);
  exec::RunResult After = exec::run(Optimized, /*Seed=*/42);
  std::string Why;
  if (!exec::resultsMatch(Before, After, 0.0, &Why)) {
    std::cerr << "MISMATCH: " << Why << '\n';
    return 1;
  }
  std::cout << "\nresults match: the contracted program computes the same "
               "values.\n";
  return 0;
}

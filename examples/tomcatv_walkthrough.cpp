//===- examples/tomcatv_walkthrough.cpp - The paper's Figure 1 --------------===//
//
// Walks through the paper's motivating example (Figure 1): the
// tridiagonal-solver fragment of SPEC Tomcatv, where the full array R of
// the array-language source contracts to the scalar `s` of the
// hand-written Fortran 77. Shows normalization inserting the compiler
// temporaries for the Rx/Ry self-updates, the contraction decision, and
// the simulated-time effect of each optimization strategy on the modeled
// Cray T3E.
//
// Run:  ./tomcatv_walkthrough
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "exec/PerfModel.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <iostream>

using namespace alf;
using namespace alf::ir;
using namespace alf::xform;

int main() {
  auto P = benchprogs::buildTomcatv(48);

  std::cout << "=== Tomcatv before normalization (" << P->numStmts()
            << " statements) ===\n";
  P->print(std::cout);

  unsigned Temps = normalizeProgram(*P);
  std::cout << "\nnormalization inserted " << Temps
            << " compiler temporaries (the four self-updates of RX, RY, "
               "X and Y)\n";

  analysis::ASDG G = analysis::ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  std::cout << "\ncontracted under c2 (" << SR.Contracted.size()
            << " arrays):";
  for (const ArraySymbol *A : SR.Contracted)
    std::cout << ' ' << A->getName();
  std::cout << "\n  -> r becomes a scalar, exactly as in Figure 1(b).\n";

  auto LP = scalarize::scalarize(G, SR);
  std::cout << "\n=== Scalarized under c2 (excerpt) ===\n";
  std::string Text = LP.str();
  std::cout << Text.substr(0, Text.find("for")) << "...\n";

  // Strategy comparison on the modeled Cray T3E, one processor.
  machine::MachineDesc M = machine::crayT3E();
  machine::ProcGrid Grid = machine::ProcGrid::make(1, 2);
  TextTable Table;
  Table.setHeader({"strategy", "arrays", "refs", "L1 miss", "time (ms)",
                   "vs baseline"});
  exec::PerfStats Base;
  for (Strategy S : allStrategies()) {
    auto SP = scalarize::scalarizeWithStrategy(G, S);
    exec::PerfStats Stats = exec::simulate(SP, M, Grid);
    if (S == Strategy::Baseline)
      Base = Stats;
    Table.addRow(
        {getStrategyName(S),
         formatString("%zu", SP.allocatedArrays().size()),
         formatString("%llu", static_cast<unsigned long long>(Stats.Refs)),
         formatString("%.1f%%", 100.0 * Stats.l1MissRatio()),
         formatString("%.2f", Stats.totalNs() / 1e6),
         formatString("%+.1f%%", exec::percentImprovement(Base, Stats))});
  }
  std::cout << "\n=== Strategies on the modeled Cray T3E ===\n";
  Table.print(std::cout);
  return 0;
}

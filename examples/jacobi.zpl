-- Jacobi relaxation in mini-ZPL: one smoothing step with a residual
-- diagnostic. Compile with:
--   ./build/examples/zplc examples/jacobi.zpl --dump-source --dump-asdg
--
-- Under the default c2 strategy, the temporary `res` contracts to a
-- scalar inside the fused nest.

region G : [1..64, 1..64];

array u, unew : G;
array res     : G temp;
scalar omega, maxres;

[G] res  := (u@(-1,0) + u@(1,0) + u@(0,-1) + u@(0,1)) * 0.25 - u;
[G] unew := u + res * omega;
[G] maxres := max << abs(res);

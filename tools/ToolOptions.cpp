//===- tools/ToolOptions.cpp - Shared CLI flag surface ----------------------===//

#include "ToolOptions.h"

#include "obs/Obs.h"

#include <cstdlib>

using namespace alf;
using namespace alf::tool;

FlagParse tool::parseToolFlag(const std::string &Arg, unsigned Flags,
                              ToolOptions &Opts, std::string &Error) {
  if ((Flags & TF_Strategy) && Arg.rfind("--strategy=", 0) == 0) {
    std::string Name = Arg.substr(11);
    std::optional<xform::Strategy> S = xform::strategyNamed(Name);
    if (!S) {
      Error = "unknown strategy '" + Name + "'";
      return FlagParse::Error;
    }
    Opts.Strat = *S;
    return FlagParse::Consumed;
  }
  if ((Flags & TF_Exec) && Arg.rfind("--exec=", 0) == 0) {
    std::string Name = Arg.substr(7);
    std::optional<xform::ExecMode> M = xform::execModeNamed(Name);
    if (!M) {
      Error = "unknown execution mode '" + Name + "'";
      return FlagParse::Error;
    }
    Opts.Exec = *M;
    return FlagParse::Consumed;
  }
  if ((Flags & TF_Verify) && Arg.rfind("--verify=", 0) == 0) {
    std::string Name = Arg.substr(9);
    std::optional<verify::VerifyLevel> L = verify::verifyLevelNamed(Name);
    if (!L) {
      Error = "unknown verification level '" + Name + "'";
      return FlagParse::Error;
    }
    Opts.Verify = *L;
    Opts.VerifySet = true;
    return FlagParse::Consumed;
  }
  if ((Flags & TF_Trace) && Arg.rfind("--trace=", 0) == 0) {
    Opts.TraceFile = Arg.substr(8);
    if (Opts.TraceFile.empty()) {
      Error = "--trace needs a file name";
      return FlagParse::Error;
    }
    return FlagParse::Consumed;
  }
  if ((Flags & TF_Metrics) && Arg == "--metrics") {
    Opts.Metrics = true;
    return FlagParse::Consumed;
  }
  if ((Flags & TF_Seed) && Arg.rfind("--seed=", 0) == 0) {
    Opts.Seed = static_cast<uint64_t>(std::atoll(Arg.c_str() + 7));
    return FlagParse::Consumed;
  }
  if ((Flags & TF_Semiring) && Arg.rfind("--semiring=", 0) == 0) {
    std::string Name = Arg.substr(11);
    const semiring::Semiring *S = semiring::byName(Name);
    if (!S) {
      Error = "unknown semiring '" + Name + "' (expected " +
              semiring::allNames() + ")";
      return FlagParse::Error;
    }
    Opts.SemiringSel = S;
    return FlagParse::Consumed;
  }
  return FlagParse::NotMine;
}

std::string tool::toolFlagsHelp(unsigned Flags) {
  std::string S;
  if (Flags & TF_Strategy)
    S += "  --strategy=baseline|f1|c1|f2|f3|c2|c2+f3|c2+f4|ilp\n"
         "                         fusion/contraction strategy (default c2)\n";
  if (Flags & TF_Exec)
    S += "  --exec=sequential|parallel|jit|jit-simd\n"
         "                         execution mode\n";
  if (Flags & TF_Verify)
    S += "  --verify=off|structural|full|safety\n"
         "                         translation-validation level (default "
         "full)\n";
  if (Flags & TF_Semiring)
    S += "  --semiring=" + semiring::allNames() +
         "\n"
         "                         reduction algebra override\n";
  if (Flags & TF_Seed)
    S += "  --seed=N               input-data seed (default 1)\n";
  if (Flags & TF_Trace)
    S += "  --trace=FILE           write a Chrome trace of every phase and "
         "kernel\n";
  if (Flags & TF_Metrics)
    S += "  --metrics              print the aggregated per-span timing "
         "table\n";
  return S;
}

void tool::applyObsLevel(const ToolOptions &Opts) {
  if (!Opts.TraceFile.empty())
    obs::setLevel(obs::ObsLevel::Trace);
  else if (Opts.Metrics && obs::level() == obs::ObsLevel::Off)
    obs::setLevel(obs::ObsLevel::Counters);
}

bool tool::emitObsOutputs(const ToolOptions &Opts, std::ostream &Out,
                          std::ostream &Err, const std::string &ToolName) {
  if (Opts.Metrics)
    obs::writeMetricsTable(Out);
  if (!Opts.TraceFile.empty() &&
      !obs::writeChromeTraceFile(Opts.TraceFile)) {
    Err << ToolName << ": error: cannot write trace to " << Opts.TraceFile
        << '\n';
    return false;
  }
  return true;
}

//===- tools/alfd.cpp - The ALF compile-and-execute daemon ------------------===//
//
// The persistent serving process: listens on a Unix-domain socket and
// compiles/executes mini-ZPL programs through driver::Pipeline for any
// number of concurrent clients, amortizing fusion analysis and JIT
// kernel compiles across requests via the sharded single-flight kernel
// cache (see docs/SERVING.md for the wire protocol).
//
// Usage: alfd --socket=PATH [--compile-threads=N] [--max-inflight=N]
//             [--max-program-bytes=N] [--verify=off|structural|full]
//             [--trace=FILE] [--metrics]
//
// Runs in the foreground until a client sends `shutdown` or the process
// receives SIGINT/SIGTERM; on exit it removes the socket file and, with
// --metrics/--trace, emits the run's observability outputs.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"
#include "serve/Server.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

using namespace alf;

namespace {

serve::Server *ActiveServer = nullptr;
std::atomic<bool> SignalSeen{false};

void onSignal(int) {
  // stop() only takes a mutex and notifies a CV; safe enough for the
  // small set of things async-signal contexts allow us in practice, and
  // the flag lets main report what happened.
  SignalSeen.store(true);
  if (ActiveServer)
    ActiveServer->stop();
}

void usage(std::ostream &OS) {
  OS << "usage: alfd --socket=PATH [options]\n"
     << "  --socket=PATH          Unix-domain socket to listen on "
        "(required)\n"
     << "  --compile-threads=N    concurrent pipeline compiles (default 2)\n"
     << "  --max-inflight=N       admission cap on concurrent requests "
        "(default 64)\n"
     << "  --max-program-bytes=N  admission cap on program size (default "
        "1 MiB)\n"
     << tool::toolFlagsHelp(tool::TF_Verify | tool::TF_Trace |
                            tool::TF_Metrics);
}

} // namespace

int main(int argc, char **argv) {
  serve::ServerOptions SO;
  tool::ToolOptions TO;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Error;
    switch (tool::parseToolFlag(
        Arg, tool::TF_Verify | tool::TF_Trace | tool::TF_Metrics, TO,
        Error)) {
    case tool::FlagParse::Consumed:
      continue;
    case tool::FlagParse::Error:
      std::cerr << "alfd: " << Error << '\n';
      return 1;
    case tool::FlagParse::NotMine:
      break;
    }
    if (Arg.rfind("--socket=", 0) == 0) {
      SO.SocketPath = Arg.substr(9);
    } else if (Arg.rfind("--compile-threads=", 0) == 0) {
      SO.CompileThreads =
          static_cast<unsigned>(std::atoi(Arg.c_str() + 18));
    } else if (Arg.rfind("--max-inflight=", 0) == 0) {
      SO.MaxInFlight = static_cast<unsigned>(std::atoi(Arg.c_str() + 15));
    } else if (Arg.rfind("--max-program-bytes=", 0) == 0) {
      SO.MaxProgramBytes =
          static_cast<uint32_t>(std::atoll(Arg.c_str() + 20));
    } else if (Arg == "--help" || Arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "alfd: unknown option '" << Arg << "'\n";
      usage(std::cerr);
      return 1;
    }
  }
  if (SO.SocketPath.empty()) {
    std::cerr << "alfd: --socket=PATH is required\n";
    usage(std::cerr);
    return 1;
  }
  if (TO.VerifySet)
    SO.Verify = TO.Verify;
  tool::applyObsLevel(TO);

  serve::Server Srv(SO);
  std::string Error;
  if (!Srv.start(&Error)) {
    std::cerr << "alfd: " << Error << '\n';
    return 1;
  }
  std::cerr << "alfd: listening on " << SO.SocketPath << " ("
            << SO.CompileThreads << " compile threads, verify="
            << verify::getVerifyLevelName(SO.Verify) << ")\n";

  ActiveServer = &Srv;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  Srv.wait();
  ActiveServer = nullptr;
  std::cerr << "alfd: "
            << (SignalSeen.load() ? "signal received, " : "")
            << "shut down\n";

  return tool::emitObsOutputs(TO, std::cout, std::cerr, "alfd") ? 0 : 1;
}

//===- tools/alf_stress.cpp - Randomized cross-validation driver -------------===//
//
// Long-running stress tool: generates random array programs and
// cross-checks every layer of ALF against the interpreter oracle —
// strategy equivalence, partition validity, multithreaded tiled
// execution, distributed (SPMD) execution with compiler-inserted halo
// exchanges, partial contraction, and (optionally) the C backend
// compiled with the system compiler. Generated programs cycle through
// ranks 1-3, explicit target offsets and mixed regions.
//
// Usage: alf_stress [--count=N] [--seed=S] [--procs=P] [--threads=T]
//                   [--emit-c] [--exec=sequential|parallel|jit|jit-simd]
//                   [--strategy=NAME] [--verify=off|structural|full]
//                   [--semiring=NAME] [--trace=out.json] [--metrics]
//
// --semiring=NAME pins every generated reduction to one registry
// semiring (default: a third of the programs get reductions, rotating
// through the whole registry by seed).
//
// --strategy=NAME restricts the per-program strategy loop to one named
// strategy (any paper strategy, or "ilp" for the branch-and-bound
// optimal partitioner); the divergence checks against the baseline
// oracle are unchanged. With ilp the run doubles as the optimality
// sweep: the solver's partition is additionally required to achieve an
// objective no worse than greedy FUSION-FOR-CONTRACTION's.
//
// --trace=FILE records every pipeline phase and kernel launch of the
// sweep and writes a Chrome trace_event file on exit (load it at
// chrome://tracing); --metrics prints the aggregated per-span table
// instead of (or in addition to) the full trace.
//
// --exec=jit additionally runs every strategy through the native JIT
// backend (one shared engine, so the kernel cache is exercised) and
// requires bit-identity with the interpreter oracle; it skips cleanly
// when no system compiler is available.
//
// --verify (default full) turns the run into a translation-validation
// sweep as well: every ASDG is diffed against the dependence oracle,
// every strategy re-proved against the fusion/contraction legality
// definitions, and every parallel schedule race-checked before it runs.
//
// Exits nonzero on the first divergence or failed proof, printing the
// offending program.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"

#include "comm/CommInsertion.h"
#include "distsim/DistInterpreter.h"
#include "driver/Pipeline.h"
#include "exec/Interpreter.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "ir/Generator.h"
#include "ir/Verifier.h"
#include "obs/Obs.h"
#include "scalarize/CEmitter.h"
#include "scalarize/Scalarize.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "verify/Verify.h"
#include "xform/IlpStrategy.h"
#include "xform/Strategy.h"

#include <memory>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

struct Stats {
  unsigned Programs = 0;
  unsigned StrategyRuns = 0;
  unsigned ParallelRuns = 0;
  unsigned ParallelNests = 0;
  unsigned Contractions = 0;
  unsigned PartialPlans = 0;
  unsigned DistRuns = 0;
  unsigned CCompiles = 0;
  unsigned JitRuns = 0;
  unsigned IlpRuns = 0;
  unsigned IlpImprovements = 0;
};

/// Fails loudly with the program text for reproduction.
[[noreturn]] void fail(const Program &P, const std::string &What) {
  std::cerr << "STRESS FAILURE: " << What << "\nprogram:\n" << P.str();
  std::exit(1);
}

bool checkEmittedC(const lir::LoopProgram &LP, uint64_t Seed,
                   const RunResult &Expected) {
  static int Counter = 0;
  std::string Base = formatString("/tmp/alf_stress_%d_%d", getpid(), Counter++);
  {
    std::ofstream Out(Base + ".c");
    Out << scalarize::emitCWithHarness(LP, "kernel", Seed);
  }
  std::string Cmd = "cc -std=c99 -O1 -ffp-contract=off -o " + Base + ".exe " +
                    Base + ".c -lm 2>&1";
  if (std::system(Cmd.c_str()) != 0)
    return false;
  FILE *Pipe = popen((Base + ".exe").c_str(), "r");
  if (!Pipe)
    return false;
  bool OK = true;
  char Name[256];
  double Value;
  while (std::fscanf(Pipe, "%255s %lf", Name, &Value) == 2) {
    auto AIt = Expected.LiveOut.find(Name);
    if (AIt != Expected.LiveOut.end()) {
      double Sum = 0.0;
      for (double V : AIt->second)
        Sum += V;
      OK &= std::fabs(Sum - Value) <= 1e-9 * (std::fabs(Sum) + 1.0);
      continue;
    }
    auto SIt = Expected.ScalarsOut.find(Name);
    if (SIt != Expected.ScalarsOut.end())
      OK &= std::fabs(SIt->second - Value) <=
            1e-9 * (std::fabs(SIt->second) + 1.0);
  }
  pclose(Pipe);
  std::remove((Base + ".c").c_str());
  std::remove((Base + ".exe").c_str());
  return OK;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Count = 50;
  unsigned Procs = 4;
  unsigned Threads = 4;
  bool EmitC = false;
  tool::ToolOptions TO; // --seed/--exec/--strategy/--verify/--trace/--metrics
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string FlagError;
    switch (tool::parseToolFlag(Arg, tool::TF_All, TO, FlagError)) {
    case tool::FlagParse::Consumed:
      continue;
    case tool::FlagParse::Error:
      std::cerr << FlagError << '\n';
      return 2;
    case tool::FlagParse::NotMine:
      break;
    }
    if (Arg.rfind("--count=", 0) == 0)
      Count = static_cast<unsigned>(std::atoi(Arg.c_str() + 8));
    else if (Arg.rfind("--procs=", 0) == 0)
      Procs = static_cast<unsigned>(std::atoi(Arg.c_str() + 8));
    else if (Arg.rfind("--threads=", 0) == 0)
      Threads = static_cast<unsigned>(std::atoi(Arg.c_str() + 10));
    else if (Arg == "--emit-c")
      EmitC = true;
    else {
      std::cerr << "usage: alf_stress [--count=N] [--procs=P] [--threads=T] "
                   "[--emit-c]\n"
                << tool::toolFlagsHelp(tool::TF_All);
      return 2;
    }
  }
  uint64_t Seed = TO.Seed;
  ExecMode Mode = TO.Exec.value_or(ExecMode::Sequential);
  std::optional<Strategy> OnlyStrategy = TO.Strat;
  verify::VerifyLevel VerifyLevel = TO.Verify;

  tool::applyObsLevel(TO);

  bool HaveCC = EmitC && std::system("cc --version > /dev/null 2>&1") == 0;
  if (EmitC && !HaveCC)
    std::cerr << "note: no system C compiler; skipping --emit-c checks\n";

  // One engine for the whole run: repeated kernels hit the in-memory
  // cache, and a warm on-disk cache (e.g. in CI) skips compiles entirely.
  std::unique_ptr<JitEngine> Jit;
  if (Mode == ExecMode::NativeJit || Mode == ExecMode::NativeJitSimd) {
    if (JitEngine::compilerAvailable()) {
      JitOptions JO;
      JO.Vectorize = Mode == ExecMode::NativeJitSimd;
      Jit = std::make_unique<JitEngine>(JO);
    } else {
      std::cerr << "note: no system C compiler; skipping --exec="
                << getExecModeName(Mode) << " checks\n";
    }
  }

  Stats S;
  for (unsigned Iter = 0; Iter < Count; ++Iter) {
    uint64_t ProgSeed = Seed + Iter;
    GeneratorConfig Cfg;
    Cfg.Seed = ProgSeed;
    Cfg.NumStmts = 4 + static_cast<unsigned>(ProgSeed % 12);
    Cfg.NumPersistent = 2 + static_cast<unsigned>(ProgSeed % 3);
    Cfg.NumTemps = 2 + static_cast<unsigned>((ProgSeed / 3) % 4);
    Cfg.Rank = 1 + static_cast<unsigned>(ProgSeed % 3);
    Cfg.Extent = Cfg.Rank == 3 ? 4 : 6 + static_cast<int64_t>(ProgSeed % 4);
    Cfg.MaxOffset = 1 + static_cast<unsigned>(ProgSeed % 2);
    Cfg.AllowTargetOffsets = ProgSeed % 4 == 1;
    Cfg.UseTwoRegions = ProgSeed % 5 == 0;
    Cfg.AddOpaque = ProgSeed % 7 == 0;
    // Reductions ride along on a third of the programs, rotating through
    // the semiring registry (or pinned to --semiring when given).
    if (TO.SemiringSel) {
      Cfg.NumReduce = 1 + static_cast<unsigned>(ProgSeed % 2);
      Cfg.ReduceSemiring = TO.SemiringSel;
    } else if (ProgSeed % 3 == 0) {
      Cfg.NumReduce = 1 + static_cast<unsigned>(ProgSeed % 2);
      const auto &Regs = semiring::all();
      Cfg.ReduceSemiring = Regs[(ProgSeed / 3) % Regs.size()];
    }

    auto P = generateRandomProgram(Cfg);
    driver::PipelineOptions PO;
    PO.Verify = VerifyLevel;
    driver::Pipeline PL(*P, PO);
    if (!isWellFormed(PL.program()))
      fail(*P, "normalized program failed verification");
    ++S.Programs;

    // Every compile goes through the status-returning entry point: a
    // rejected proof surfaces as CompileStatus instead of aborting, so
    // the offending program can be printed for reproduction.
    auto compileOrFail = [&](Strategy Strat) -> driver::CompileStatus {
      driver::CompileRequest Req;
      Req.Strat = Strat;
      driver::CompileStatus St = PL.tryCompile(Req);
      if (!St.ok() || !St.Artifact || !St.SR)
        fail(*P, (St.Code == driver::CompileCode::VerifyRejected
                      ? "verification failed: "
                      : "compile failed: ") +
                     St.Message);
      return St;
    };

    driver::CompileStatus BaseSt = compileOrFail(Strategy::Baseline);
    const ASDG &G = PL.asdg();
    RunResult BaseRes = run(BaseSt.Artifact->LP, ProgSeed ^ 0xfeed);

    std::vector<Strategy> Strategies = allStrategiesForTest();
    if (OnlyStrategy)
      Strategies = {*OnlyStrategy};
    for (Strategy Strat : Strategies) {
      driver::CompileStatus St = compileOrFail(Strat);
      const StrategyResult &SR = *St.SR;
      if (!isValidPartition(SR.Partition))
        fail(*P, formatString("invalid partition under %s",
                              getStrategyName(Strat)));
      S.Contractions += static_cast<unsigned>(SR.Contracted.size());

      // The optimal partitioner's contract: never a worse objective than
      // greedy FUSION-FOR-CONTRACTION on the same graph.
      if (Strat == Strategy::IlpOptimal) {
        StrategyResult Greedy = applyStrategy(G, Strategy::C2);
        double GreedyBytes =
            contractedBytes(Greedy.Partition, Greedy.Contracted);
        double IlpBytes = contractedBytes(SR.Partition, SR.Contracted);
        if (IlpBytes < GreedyBytes)
          fail(*P, formatString("ilp objective %.0f below greedy %.0f",
                                IlpBytes, GreedyBytes));
        ++S.IlpRuns;
        if (IlpBytes > GreedyBytes)
          ++S.IlpImprovements;
      }
      const lir::LoopProgram &LP = St.Artifact->LP;
      std::string Why;
      if (!resultsMatch(BaseRes, run(LP, ProgSeed ^ 0xfeed), 0.0, &Why))
        fail(*P, formatString("%s diverged: %s", getStrategyName(Strat),
                              Why.c_str()));
      ++S.StrategyRuns;

      // Native JIT execution: every strategy's kernel must be
      // bit-identical to the interpreter oracle — except under jit-simd
      // for programs whose declared tolerance is ReassociatedFloat (a
      // float + reduction was lane-split; the ULP-rigorous comparison
      // lives in StressSweepTest.SimdAgrees).
      if (Jit) {
        double JitTol = 0.0;
        if (Mode == ExecMode::NativeJitSimd &&
            scalarize::simdToleranceFor(LP) ==
                support::Tolerance::ReassociatedFloat)
          JitTol = 1e-6;
        JitRunInfo Info;
        RunResult JitRes = Jit->run(LP, ProgSeed ^ 0xfeed, &Info);
        if (!resultsMatch(BaseRes, JitRes, JitTol, &Why))
          fail(*P, formatString("%s jit diverged: %s", getStrategyName(Strat),
                                Why.c_str()));
        if (!Info.UsedJit)
          fail(*P, formatString("%s jit fell back to the interpreter: %s",
                                getStrategyName(Strat),
                                Info.FallbackReason.c_str()));
        ++S.JitRuns;
      }

      // Multithreaded tiled execution of the same program; results must
      // be bit-identical to the sequential oracle.
      if (Threads > 0) {
        ParallelSchedule Sched = planParallelism(LP);
        if (VerifyLevel >= verify::VerifyLevel::Full) {
          verify::VerifyReport R = verify::verifyParallelSafety(LP, Sched);
          if (!R.ok())
            fail(*P, "verification failed: " + R.Findings.front().str());
        }
        S.ParallelNests += Sched.numParallelNests();
        ParallelOptions Opts;
        Opts.NumThreads = Threads;
        if (!resultsMatch(BaseRes, runParallel(LP, ProgSeed ^ 0xfeed, Opts,
                                               Sched),
                          0.0, &Why))
          fail(*P, formatString("%s parallel (%u threads) diverged: %s",
                                getStrategyName(Strat), Threads, Why.c_str()));
        ++S.ParallelRuns;
      }
    }

    // Partial contraction with every dimension sequential.
    {
      auto LP = scalarize::scalarizeWithPartialContraction(
          G, Strategy::C2, SequentialDims::dims({0, 1}));
      S.PartialPlans += static_cast<unsigned>(LP.partialPlans().size());
      std::string Why;
      if (!resultsMatch(BaseRes, run(LP, ProgSeed ^ 0xfeed), 0.0, &Why))
        fail(*P, "partial contraction diverged: " + Why);
      if (Threads > 0) {
        // Plan explicitly so the rolling-buffer race check certifies the
        // exact schedule that runs.
        ParallelSchedule Sched = planParallelism(LP);
        if (VerifyLevel >= verify::VerifyLevel::Full) {
          verify::VerifyReport R = verify::verifyParallelSafety(LP, Sched);
          if (!R.ok())
            fail(*P, "verification failed: " + R.Findings.front().str());
        }
        ParallelOptions Opts;
        Opts.NumThreads = Threads;
        if (!resultsMatch(BaseRes,
                          runParallel(LP, ProgSeed ^ 0xfeed, Opts, Sched), 0.0,
                          &Why))
          fail(*P, "partial contraction parallel diverged: " + Why);
        ++S.ParallelRuns;
      }
    }

    // Distributed execution (no opaque statements or offset assignment
    // targets there).
    if (!Cfg.AddOpaque && !Cfg.AllowTargetOffsets) {
      auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
      comm::insertLoopLevelComm(LP);
      RunResult Dist = distsim::runDistributed(
          LP, machine::ProcGrid::make(Procs, Cfg.Rank), ProgSeed ^ 0xfeed);
      std::string Why;
      if (!resultsMatch(BaseRes, Dist, 0.0, &Why))
        fail(*P, "distributed run diverged: " + Why);
      ++S.DistRuns;
    }

    if (HaveCC) {
      auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2);
      if (!checkEmittedC(LP, ProgSeed ^ 0xfeed, run(LP, ProgSeed ^ 0xfeed)))
        fail(*P, "emitted C diverged or failed to compile");
      ++S.CCompiles;
    }

    if ((Iter + 1) % 25 == 0)
      std::cout << "..." << (Iter + 1) << "/" << Count << " programs OK\n";
  }

  std::cout << "alf_stress: all checks passed\n"
            << "  programs:        " << S.Programs << '\n'
            << "  strategy runs:   " << S.StrategyRuns << '\n'
            << "  parallel runs:   " << S.ParallelRuns << " ("
            << S.ParallelNests << " parallel nests, " << Threads
            << " threads)\n"
            << "  contractions:    " << S.Contractions << '\n'
            << "  partial plans:   " << S.PartialPlans << '\n'
            << "  distributed runs:" << S.DistRuns << '\n'
            << "  C compilations:  " << S.CCompiles << '\n';
  if (VerifyLevel >= verify::VerifyLevel::Full)
    std::cout << "  verified:        "
              << getStatisticValue("verify", "NumStrategyProofs")
              << " strategy proofs, "
              << getStatisticValue("verify", "NumOracleLabels")
              << " oracle labels, "
              << getStatisticValue("verify", "NumNestsCertifiedParallel")
              << " nests certified parallel\n";
  if (S.IlpRuns > 0)
    std::cout << "  ilp runs:        " << S.IlpRuns << " ("
              << S.IlpImprovements << " beat greedy; "
              << getStatisticValue("strategy", "NumIlpNodes") << " nodes, "
              << getStatisticValue("strategy", "NumIlpPruned") << " pruned, "
              << getStatisticValue("strategy", "NumIlpBudgetExhausted")
              << " budget-exhausted)\n";
  if (Jit)
    std::cout << "  jit runs:        " << S.JitRuns << " ("
              << getStatisticValue("jit", "NumJitCompiles") << " compiles, "
              << getStatisticValue("jit", "NumJitCacheMemoryHits")
              << " memory hits, "
              << getStatisticValue("jit", "NumJitCacheDiskHits")
              << " disk hits; cache: " << Jit->cacheDir() << ")\n";
  if (!tool::emitObsOutputs(TO, std::cout, std::cerr, "alf_stress"))
    return 1;
  if (!TO.TraceFile.empty())
    std::cout << "trace: " << obs::numTraceEvents() << " events -> "
              << TO.TraceFile << '\n';
  return 0;
}

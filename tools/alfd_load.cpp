//===- tools/alfd_load.cpp - N-clients x M-programs load harness ------------===//
//
// Drives a running (or freshly spawned) alfd with concurrent clients and
// reports latency percentiles and cache behavior, both measured
// client-side and as the daemon's own stats (fed by the obs metrics
// table). This is the acceptance harness for the serving layer:
//
//   # 16 clients hammer one identical program: exactly one compile may
//   # happen (single-flight), everyone else must hit or coalesce.
//   alfd_load --alfd=./alfd --clients=16 --requests=4 --identical
//             --assert-single-flight --assert-no-failures
//
//   # 8 clients x 6 distinct programs, pre-warmed, with a cold compile
//   # deliberately in flight during the timed phase: warm p95 is
//   # reported for both phases so an operator can see it is unaffected.
//   alfd_load --alfd=./alfd --clients=8 --programs=6 --requests=20
//             --warm --overlap-cold --assert-no-failures
//
// Options:
//   --socket=PATH      talk to an already-running daemon at PATH
//   --alfd=PATH        spawn PATH --socket=<tmp> for the run, shut it
//                      down (and reap it) at the end
//   --clients=N        concurrent client connections (default 8)
//   --programs=M       distinct generated programs (default 4)
//   --requests=R       execute requests per client (default 10)
//   --exec=MODE        execution mode for the requests (default
//                      sequential)
//   --strategy=NAME    strategy for the requests (default c2)
//   --identical        all clients send program 0 (single-flight demo)
//   --warm             pre-warm every program once before the timed run
//   --overlap-cold     run the timed phase twice and keep a cold compile
//                      of a fresh program in flight during the second
//   --assert-single-flight  fail unless misses == 1 and hits+coalesced
//                      cover every other request
//   --assert-no-failures    fail if any request did not answer ok
//   --assert-warm-hits      fail unless the cache saw at least one hit
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"
#include "serve/Client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace alf;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Deterministically distinct mini-ZPL programs: a Jacobi-like smoothing
/// fragment whose region extent and coefficients vary with the index, so
/// each has its own content hash, a contractible temporary, and a
/// scalar reduction whose value the harness can cross-check across
/// clients.
std::string makeProgram(unsigned Index, unsigned ExtentBase = 24) {
  unsigned N = ExtentBase + 4 * (Index % 5);
  double C = 0.20 + 0.01 * static_cast<double>(Index % 7);
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "region R : [1..%u, 1..%u];\n"
                "array U, V : R;\n"
                "array T : R temp;\n"
                "scalar s;\n"
                "[R] T := (U@(-1,0) + U@(1,0) + U@(0,-1) + U@(0,1)) * %.2f "
                "- U;\n"
                "[R] V := U + T * 0.8;\n"
                "[R] s := + << abs(T);\n",
                N, N, C);
  return Buf;
}

struct ClientStats {
  std::vector<uint64_t> LatencyNs;
  uint64_t Failures = 0;
  uint64_t Requests = 0;
  std::vector<std::string> Errors;
};

uint64_t percentile(std::vector<uint64_t> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t Idx = static_cast<size_t>(P * static_cast<double>(V.size() - 1));
  return V[Idx];
}

struct SpawnedDaemon {
  pid_t Pid = -1;
  std::string SocketPath;
};

bool spawnDaemon(const std::string &AlfdPath, SpawnedDaemon &D,
                 std::string &Error) {
  char Tmpl[] = "/tmp/alfd-load-XXXXXX";
  if (!mkdtemp(Tmpl)) {
    Error = "mkdtemp failed";
    return false;
  }
  D.SocketPath = std::string(Tmpl) + "/alfd.sock";
  pid_t Pid = fork();
  if (Pid < 0) {
    Error = "fork failed";
    return false;
  }
  if (Pid == 0) {
    std::string SocketArg = "--socket=" + D.SocketPath;
    execl(AlfdPath.c_str(), AlfdPath.c_str(), SocketArg.c_str(),
          static_cast<char *>(nullptr));
    std::perror("alfd_load: exec alfd");
    _exit(127);
  }
  D.Pid = Pid;
  // The daemon binds before serving; poll until the socket accepts.
  for (int Try = 0; Try < 200; ++Try) {
    serve::Client Probe;
    if (Probe.connect(D.SocketPath)) {
      json::Value Resp;
      if (Probe.request(serve::Client::makeHealth(), Resp))
        return true;
    }
    int Status = 0;
    if (waitpid(Pid, &Status, WNOHANG) == Pid) {
      Error = "alfd exited during startup";
      D.Pid = -1;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  Error = "alfd did not come up on " + D.SocketPath;
  return false;
}

void stopDaemon(SpawnedDaemon &D) {
  if (D.Pid < 0)
    return;
  serve::Client C;
  if (C.connect(D.SocketPath)) {
    json::Value Resp;
    C.request(serve::Client::makeShutdown(), Resp);
  }
  int Status = 0;
  for (int Try = 0; Try < 200; ++Try) {
    if (waitpid(D.Pid, &Status, WNOHANG) == D.Pid) {
      D.Pid = -1;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  kill(D.Pid, SIGKILL);
  waitpid(D.Pid, &Status, 0);
  D.Pid = -1;
}

/// One timed phase: every client runs its request loop; returns per-
/// client stats.
std::vector<ClientStats>
runPhase(const std::string &SocketPath, unsigned NumClients,
         unsigned Requests, const std::vector<std::string> &Programs,
         bool Identical, const std::string &Strategy,
         const std::string &Exec, std::mutex &ResultMu,
         std::string &CanonicalScalars) {
  std::vector<ClientStats> Stats(NumClients);
  std::vector<std::thread> Threads;
  Threads.reserve(NumClients);
  for (unsigned CI = 0; CI < NumClients; ++CI) {
    Threads.emplace_back([&, CI] {
      ClientStats &S = Stats[CI];
      serve::Client C;
      std::string Error;
      if (!C.connect(SocketPath, &Error)) {
        S.Failures += Requests;
        S.Requests += Requests;
        S.Errors.push_back(Error);
        return;
      }
      for (unsigned R = 0; R < Requests; ++R) {
        unsigned PI =
            Identical ? 0 : (CI + R) % static_cast<unsigned>(Programs.size());
        json::Value Req = serve::Client::makeExecute(
            Programs[PI], Strategy, Exec, /*Verify=*/"", /*Seed=*/1);
        json::Value Resp;
        uint64_t T0 = nowNs();
        bool OK = C.request(Req, Resp, &Error);
        uint64_t T1 = nowNs();
        ++S.Requests;
        if (!OK) {
          ++S.Failures;
          S.Errors.push_back(Error);
          // The client closed on transport failure; reconnect for the
          // remaining requests.
          C.connect(SocketPath);
          continue;
        }
        S.LatencyNs.push_back(T1 - T0);
        std::optional<bool> RespOK = Resp.getBool("ok");
        if (!RespOK || !*RespOK) {
          ++S.Failures;
          std::optional<std::string> Msg = Resp.getString("message");
          S.Errors.push_back(Msg ? *Msg : "request answered !ok");
          continue;
        }
        // Cross-client determinism: every execution of the identical
        // program must produce the identical scalar results.
        if (Identical) {
          const json::Value *Scalars = Resp.get("scalars");
          std::string Rendered = Scalars ? Scalars->str() : "";
          std::lock_guard<std::mutex> Lock(ResultMu);
          if (CanonicalScalars.empty())
            CanonicalScalars = Rendered;
          else if (Rendered != CanonicalScalars) {
            ++S.Failures;
            S.Errors.push_back("scalar results diverged across clients");
          }
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  return Stats;
}

void printPhase(const char *Label, std::vector<ClientStats> &Stats) {
  std::vector<uint64_t> All;
  uint64_t Failures = 0, Requests = 0;
  for (ClientStats &S : Stats) {
    All.insert(All.end(), S.LatencyNs.begin(), S.LatencyNs.end());
    Failures += S.Failures;
    Requests += S.Requests;
  }
  std::cout << Label << ": " << Requests << " requests, " << Failures
            << " failed, client-side latency p50 "
            << percentile(All, 0.50) / 1000 << " us, p95 "
            << percentile(All, 0.95) / 1000 << " us, max "
            << (All.empty() ? 0 : All.back()) / 1000 << " us\n";
  for (ClientStats &S : Stats)
    for (const std::string &E : S.Errors)
      std::cout << "  error: " << E << '\n';
}

double statNumber(const json::Value &Stats, const char *Group,
                  const char *Key) {
  if (const json::Value *G = Stats.get(Group))
    if (std::optional<double> N = G->getNumber(Key))
      return *N;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, AlfdPath;
  unsigned NumClients = 8, NumPrograms = 4, Requests = 10;
  bool Identical = false, Warm = false, OverlapCold = false;
  bool AssertSingleFlight = false, AssertNoFailures = false,
       AssertWarmHits = false;
  tool::ToolOptions TO;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Error;
    switch (tool::parseToolFlag(Arg, tool::TF_Strategy | tool::TF_Exec, TO,
                                Error)) {
    case tool::FlagParse::Consumed:
      continue;
    case tool::FlagParse::Error:
      std::cerr << "alfd_load: " << Error << '\n';
      return 1;
    case tool::FlagParse::NotMine:
      break;
    }
    if (Arg.rfind("--socket=", 0) == 0)
      SocketPath = Arg.substr(9);
    else if (Arg.rfind("--alfd=", 0) == 0)
      AlfdPath = Arg.substr(7);
    else if (Arg.rfind("--clients=", 0) == 0)
      NumClients = static_cast<unsigned>(std::atoi(Arg.c_str() + 10));
    else if (Arg.rfind("--programs=", 0) == 0)
      NumPrograms = static_cast<unsigned>(std::atoi(Arg.c_str() + 11));
    else if (Arg.rfind("--requests=", 0) == 0)
      Requests = static_cast<unsigned>(std::atoi(Arg.c_str() + 11));
    else if (Arg == "--identical")
      Identical = true;
    else if (Arg == "--warm")
      Warm = true;
    else if (Arg == "--overlap-cold")
      OverlapCold = true;
    else if (Arg == "--assert-single-flight")
      AssertSingleFlight = true;
    else if (Arg == "--assert-no-failures")
      AssertNoFailures = true;
    else if (Arg == "--assert-warm-hits")
      AssertWarmHits = true;
    else {
      std::cerr << "alfd_load: unknown option '" << Arg << "'\n"
                << "usage: alfd_load (--socket=PATH | --alfd=PATH) "
                   "[--clients=N] [--programs=M]\n"
                   "                 [--requests=R] [--identical] [--warm] "
                   "[--overlap-cold]\n"
                   "                 [--assert-single-flight] "
                   "[--assert-no-failures] [--assert-warm-hits]\n"
                << tool::toolFlagsHelp(tool::TF_Strategy | tool::TF_Exec);
      return 1;
    }
  }
  if (SocketPath.empty() && AlfdPath.empty()) {
    std::cerr << "alfd_load: need --socket=PATH or --alfd=PATH\n";
    return 1;
  }
  NumClients = std::max(1u, NumClients);
  NumPrograms = std::max(1u, NumPrograms);
  Requests = std::max(1u, Requests);

  SpawnedDaemon Daemon;
  if (!AlfdPath.empty()) {
    std::string Error;
    if (!spawnDaemon(AlfdPath, Daemon, Error)) {
      std::cerr << "alfd_load: " << Error << '\n';
      return 1;
    }
    SocketPath = Daemon.SocketPath;
    std::cout << "spawned alfd (pid " << Daemon.Pid << ") on " << SocketPath
              << '\n';
  }

  std::string Strategy =
      TO.Strat ? xform::getStrategyName(*TO.Strat) : "c2";
  std::string Exec =
      TO.Exec ? xform::getExecModeName(*TO.Exec) : "sequential";

  std::vector<std::string> Programs;
  for (unsigned I = 0; I < NumPrograms; ++I)
    Programs.push_back(makeProgram(I));

  int Failed = 0;
  uint64_t TotalFailures = 0;

  {
    // Pre-warm: one client touches every program once so the timed
    // phase measures warm executes, not cold compiles.
    if (Warm) {
      serve::Client C;
      std::string Error;
      if (!C.connect(SocketPath, &Error)) {
        std::cerr << "alfd_load: " << Error << '\n';
        stopDaemon(Daemon);
        return 1;
      }
      for (const std::string &P : Programs) {
        json::Value Resp;
        C.request(serve::Client::makeCompile(P, Strategy, Exec), Resp);
      }
      std::cout << "pre-warmed " << Programs.size() << " programs\n";
    }

    std::mutex ResultMu;
    std::string CanonicalScalars;
    auto Stats =
        runPhase(SocketPath, NumClients, Requests, Programs, Identical,
                 Strategy, Exec, ResultMu, CanonicalScalars);
    printPhase("warm phase", Stats);
    for (ClientStats &S : Stats)
      TotalFailures += S.Failures;

    if (OverlapCold) {
      // Re-run the same warm workload with a cold compile deliberately
      // in flight: a fresh never-seen program large enough to keep the
      // compile queue busy. Warm p95 should be in the same regime.
      std::atomic<bool> ColdDone{false};
      std::thread Cold([&] {
        serve::Client C;
        if (!C.connect(SocketPath))
          return;
        // A distinct extent far outside the generated family.
        std::string Big = makeProgram(9991, /*ExtentBase=*/160);
        json::Value Resp;
        C.request(serve::Client::makeCompile(Big, Strategy, Exec), Resp);
        ColdDone.store(true);
      });
      auto Stats2 =
          runPhase(SocketPath, NumClients, Requests, Programs, Identical,
                   Strategy, Exec, ResultMu, CanonicalScalars);
      Cold.join();
      printPhase("warm phase with cold compile in flight", Stats2);
      std::cout << "cold compile finished during phase: "
                << (ColdDone.load() ? "yes" : "still running at join")
                << '\n';
      for (ClientStats &S : Stats2)
        TotalFailures += S.Failures;
    }
  }

  // The daemon's own view: request counters, cache behavior, latency
  // percentiles from the obs metrics table.
  json::Value Stats;
  {
    serve::Client C;
    std::string Error;
    json::Value Resp;
    if (!C.connect(SocketPath, &Error) ||
        !C.request(serve::Client::makeStats(), Resp, &Error)) {
      std::cerr << "alfd_load: stats: " << Error << '\n';
      stopDaemon(Daemon);
      return 1;
    }
    Stats = Resp;
  }
  double Hits = statNumber(Stats, "cache", "hits");
  double Misses = statNumber(Stats, "cache", "misses");
  double Coalesced = statNumber(Stats, "cache", "coalesced");
  std::cout << "server cache: " << Hits << " hits, " << Misses
            << " misses, " << Coalesced << " coalesced\n";
  if (const json::Value *Lat = Stats.get("latency")) {
    if (const json::Value *Ex = Lat->get("execute"))
      if (Ex->getNumber("count"))
        std::cout << "server execute latency: p50 "
                  << Ex->getNumber("p50_us").value_or(0) << " us, p95 "
                  << Ex->getNumber("p95_us").value_or(0) << " us over "
                  << Ex->getNumber("count").value_or(0) << " requests\n";
    if (const json::Value *JC = Lat->get("jit_compile"))
      if (JC->getNumber("count"))
        std::cout << "jit compiles: " << JC->getNumber("count").value_or(0)
                  << " (p95 " << JC->getNumber("p95_us").value_or(0)
                  << " us)\n";
  }

  if (AssertNoFailures && TotalFailures > 0) {
    std::cout << "FAIL: " << TotalFailures << " requests failed\n";
    Failed = 1;
  }
  if (AssertSingleFlight) {
    // The thundering herd must have compiled exactly once; every other
    // request was served from the cache (hit or coalesced wait).
    double Expected =
        static_cast<double>(NumClients) * Requests - 1;
    if (Misses != 1.0) {
      std::cout << "FAIL: expected exactly 1 compile, saw " << Misses
                << '\n';
      Failed = 1;
    } else if (Hits + Coalesced < Expected) {
      std::cout << "FAIL: expected >= " << Expected
                << " cache-served requests, saw " << Hits + Coalesced
                << '\n';
      Failed = 1;
    } else {
      std::cout << "single-flight confirmed: 1 compile, " << Hits + Coalesced
                << " cache-served requests\n";
    }
  }
  if (AssertWarmHits && Hits + Coalesced <= 0) {
    std::cout << "FAIL: expected a warm cache hit, saw none\n";
    Failed = 1;
  }

  stopDaemon(Daemon);
  std::cout << (Failed ? "FAILED\n" : "PASSED\n");
  return Failed;
}

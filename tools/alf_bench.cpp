//===- tools/alf_bench.cpp - Deterministic perf-regression harness -----------===//
//
// Runs a pinned suite of end-to-end pipeline configurations — the
// paper's six benchmarks compiled and executed under C2F3, a fig8-style
// problem-size sweep, the parallel executor, native-JIT cold-compile vs
// warm-dispatch, the runtime engine's steady state, and an
// observability-overhead pair — and writes one BENCH_10.json with
// per-benchmark medians plus the aggregated obs metrics table.
//
// Usage: alf_bench [--out=BENCH_10.json] [--compare=baseline.json]
//                  [--tolerance=2.0] [--repeat=5] [--reduced]
//                  [--filter=substr] [--trace=out.json] [--metrics]
//                  [--list] [--selftest]
//
// The suite, its names and its seeds are pinned: two runs of the same
// binary execute exactly the same work, so medians are comparable run
// to run and file to file. `--compare` reloads a previous BENCH_10.json
// and exits 1 when any shared benchmark's median regressed by more than
// the tolerance ratio (generous by default: wall time on shared CI is
// noisy). Checksums are cross-checked with a relative tolerance and
// reported — but never fail the run, since baselines may come from a
// different libm.
//
// `--selftest` re-parses the file just written and validates the pinned
// schema; CI runs it so the schema stays load-bearing.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "driver/Pipeline.h"
#include "ir/Normalize.h"
#include "exec/Eval.h"
#include "exec/Interpreter.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "ir/Region.h"
#include "obs/Obs.h"
#include "runtime/Runtime.h"
#include "support/Json.h"
#include "support/StringUtil.h"
#include "xform/IlpStrategy.h"
#include "xform/Strategy.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::xform;

namespace {

constexpr uint64_t BenchSeed = 0xa1fbe7c5;

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double checksum(const RunResult &R) {
  double Sum = 0.0;
  for (const auto &[Name, V] : R.ScalarsOut)
    Sum += V;
  for (const auto &[Name, Vs] : R.LiveOut)
    for (double V : Vs)
      Sum += V;
  return Sum;
}

/// One measured configuration. Run does its own (untimed) setup, then
/// produces Repeats wall-time samples of the measured region and the
/// workload's checksum; it reports a skip (e.g. no C compiler) through
/// the result instead of failing the suite.
struct CaseResult {
  std::vector<uint64_t> Ns;
  double Checksum = 0.0;
  bool Skipped = false;
  std::string SkipReason;
};

struct Case {
  std::string Name;
  std::function<CaseResult(unsigned Repeats)> Run;
};

driver::PipelineOptions benchPipelineOptions() {
  driver::PipelineOptions PO;
  // Benchmarks measure the pipeline itself, not the prover.
  PO.Verify = verify::VerifyLevel::Off;
  return PO;
}

std::string lowerName(std::string S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return S;
}

/// Compile (untimed) then time sequential execution of one paper
/// benchmark under the given strategy.
Case execCase(const BenchmarkInfo &B, int64_t N, Strategy S, ExecMode Mode,
              std::string NameSuffix) {
  std::string Name = "exec." + lowerName(B.Name) + "." +
                     getStrategyName(S) + "." + std::move(NameSuffix);
  return {Name, [&B, N, S, Mode](unsigned Repeats) {
            auto P = B.Build(N);
            driver::Pipeline PL(*P, benchPipelineOptions());
            lir::LoopProgram LP = PL.scalarize(S);
            CaseResult R;
            for (unsigned I = 0; I < Repeats; ++I) {
              uint64_t T0 = nowNs();
              RunResult Res = PL.run(LP, Mode, BenchSeed);
              R.Ns.push_back(nowNs() - T0);
              R.Checksum = checksum(Res);
            }
            return R;
          }};
}

/// Time the compile half (normalize -> ASDG -> strategy -> scalarize);
/// each repeat rebuilds the program so no analysis is amortized.
Case compileCase(const BenchmarkInfo &B, int64_t N, Strategy S,
                 verify::VerifyLevel V) {
  std::string Name = "compile." + lowerName(B.Name) + "." +
                     getStrategyName(S);
  if (V >= verify::VerifyLevel::Full)
    Name += ".verified";
  return {Name, [&B, N, S, V](unsigned Repeats) {
            CaseResult R;
            for (unsigned I = 0; I < Repeats; ++I) {
              auto P = B.Build(N);
              driver::PipelineOptions PO = benchPipelineOptions();
              PO.Verify = V;
              uint64_t T0 = nowNs();
              driver::Pipeline PL(*P, PO);
              driver::CompiledProgram CP = PL.compile(S);
              R.Ns.push_back(nowNs() - T0);
              R.Checksum = static_cast<double>(CP.NumClusters);
            }
            return R;
          }};
}

/// Native JIT, cold: every repeat gets a fresh cache directory and a
/// fresh engine, so each sample pays emission + compiler + dlopen.
Case jitColdCase(const BenchmarkInfo &B, int64_t N) {
  std::string Name = "jit." + lowerName(B.Name) + ".cold";
  return {Name, [&B, N](unsigned Repeats) {
            CaseResult R;
            if (!JitEngine::compilerAvailable()) {
              R.Skipped = true;
              R.SkipReason = "no system C compiler";
              return R;
            }
            auto P = B.Build(N);
            driver::Pipeline PL(*P, benchPipelineOptions());
            lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
            for (unsigned I = 0; I < Repeats; ++I) {
              std::string Dir = formatString(
                  "/tmp/alf_bench_cold_%d_%u", getpid(), I);
              JitOptions JO;
              JO.CacheDir = Dir;
              JitEngine Jit(JO);
              JitRunInfo Info;
              uint64_t T0 = nowNs();
              RunResult Res = Jit.run(LP, BenchSeed, &Info);
              R.Ns.push_back(nowNs() - T0);
              R.Checksum = checksum(Res);
              std::error_code EC;
              std::filesystem::remove_all(Dir, EC);
              if (!Info.UsedJit) {
                R.Skipped = true;
                R.SkipReason = "jit fell back: " + Info.FallbackReason;
                return R;
              }
            }
            return R;
          }};
}

/// Native JIT, warm: one shared engine, primed untimed; every sample is
/// a pure cache-hit dispatch.
Case jitWarmCase(const BenchmarkInfo &B, int64_t N) {
  std::string Name = "jit." + lowerName(B.Name) + ".warm";
  return {Name, [&B, N](unsigned Repeats) {
            CaseResult R;
            if (!JitEngine::compilerAvailable()) {
              R.Skipped = true;
              R.SkipReason = "no system C compiler";
              return R;
            }
            auto P = B.Build(N);
            driver::Pipeline PL(*P, benchPipelineOptions());
            lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
            std::string Dir = formatString("/tmp/alf_bench_warm_%d",
                                           getpid());
            JitOptions JO;
            JO.CacheDir = Dir;
            JitEngine Jit(JO);
            JitRunInfo Prime;
            Jit.run(LP, BenchSeed, &Prime); // compile once, untimed
            if (!Prime.UsedJit) {
              R.Skipped = true;
              R.SkipReason = "jit fell back: " + Prime.FallbackReason;
            } else {
              for (unsigned I = 0; I < Repeats; ++I) {
                uint64_t T0 = nowNs();
                RunResult Res = Jit.run(LP, BenchSeed);
                R.Ns.push_back(nowNs() - T0);
                R.Checksum = checksum(Res);
              }
            }
            std::error_code EC;
            std::filesystem::remove_all(Dir, EC);
            return R;
          }};
}

/// One jit tier (scalar or vectorizing emission) of the same loop
/// program, warm: the engine is primed untimed, every sample is a pure
/// cache-hit dispatch into the compiled kernel. The paired
/// jit.scalar.*/jit.simd.* rows are the vectorizer's speedup
/// measurement, so the workloads are chosen reduction-heavy (float +
/// for EP, max-times for k-NN) — loops -O2 alone will not vectorize —
/// at sizes where kernel time dominates dispatch overhead.
Case jitTierCase(const BenchmarkInfo &B, int64_t N, bool Vectorize,
                 std::string Work) {
  std::string Name = std::string(Vectorize ? "jit.simd." : "jit.scalar.") +
                     std::move(Work) + ".warm";
  return {Name, [&B, N, Vectorize](unsigned Repeats) {
            CaseResult R;
            if (!JitEngine::compilerAvailable()) {
              R.Skipped = true;
              R.SkipReason = "no system C compiler";
              return R;
            }
            auto P = B.Build(N);
            driver::Pipeline PL(*P, benchPipelineOptions());
            lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
            std::string Dir = formatString("/tmp/alf_bench_tier_%d_%d",
                                           getpid(), Vectorize ? 1 : 0);
            JitOptions JO;
            JO.CacheDir = Dir;
            JO.Vectorize = Vectorize;
            JitEngine Jit(JO);
            JitRunInfo Prime;
            Jit.run(LP, BenchSeed, &Prime); // compile once, untimed
            if (!Prime.UsedJit) {
              R.Skipped = true;
              R.SkipReason = "jit fell back: " + Prime.FallbackReason;
            } else if (Vectorize && Prime.VectorizedNests == 0) {
              R.Skipped = true;
              R.SkipReason = "no nest vectorized";
            } else {
              // Time the warm dispatch against pre-allocated storage so
              // the samples measure hash-lookup + kernel execution, not
              // the RNG refill of multi-megabyte inputs.
              exec::Storage Store = exec::allocateStorage(LP, BenchSeed);
              for (unsigned I = 0; I < Repeats; ++I) {
                uint64_t T0 = nowNs();
                Jit.runOnStorage(LP, Store);
                R.Ns.push_back(nowNs() - T0);
              }
              RunResult Res = Jit.run(LP, BenchSeed);
              R.Checksum = checksum(Res);
            }
            std::error_code EC;
            std::filesystem::remove_all(Dir, EC);
            return R;
          }};
}

/// Runtime engine in steady state: a Jacobi relaxation loop whose trace
/// repeats structurally, so after the first (untimed) iteration every
/// flush is a structural-cache hit. Each sample is Steps iterations.
Case runtimeWarmCase(int64_t Extent, unsigned Steps) {
  return {"runtime.jacobi.warm", [Extent, Steps](unsigned Repeats) {
            using namespace alf::runtime;
            ir::Region R = ir::Region::fromExtents({Extent, Extent});
            EngineOptions EO;
            EO.Strat = Strategy::C2F3;
            EO.Verify = verify::VerifyLevel::Off;
            Engine E(EO);
            Array U = E.input("U", R);
            std::vector<double> Init(R.size());
            for (size_t I = 0; I < Init.size(); ++I)
              Init[I] = 1e-3 * static_cast<double>(I % 17);
            U.setAll(Init);

            auto Step = [&](Array &Cur) {
              Ex Stencil = (shift(Cur, ir::Offset({-1, 0})) +
                            shift(Cur, ir::Offset({1, 0})) +
                            shift(Cur, ir::Offset({0, -1})) +
                            shift(Cur, ir::Offset({0, 1}))) *
                           0.25;
              Array Next = E.compute(R, Cur + (Stencil - Cur) * 0.8);
              E.flush();
              return Next;
            };

            U = Step(U); // prime the structural cache, untimed

            CaseResult Res;
            for (unsigned I = 0; I < Repeats; ++I) {
              uint64_t T0 = nowNs();
              for (unsigned K = 0; K < Steps; ++K)
                U = Step(U);
              Res.Ns.push_back(nowNs() - T0);
            }
            Res.Checksum = U.get({Extent / 2, Extent / 2});
            return Res;
          }};
}

/// The observability-overhead pair: the same workload under a forced
/// level. Comparing obs.off vs obs.trace medians is the acceptance
/// check that Off costs nothing measurable.
Case obsLevelCase(const BenchmarkInfo &B, int64_t N, obs::ObsLevel L) {
  std::string Name = std::string("obs.") + obs::getObsLevelName(L) + "." +
                     lowerName(B.Name);
  return {Name, [&B, N, L](unsigned Repeats) {
            auto P = B.Build(N);
            driver::Pipeline PL(*P, benchPipelineOptions());
            lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
            CaseResult R;
            obs::ScopedLevel Scoped(L);
            for (unsigned I = 0; I < Repeats; ++I) {
              uint64_t T0 = nowNs();
              RunResult Res = run(LP, BenchSeed);
              R.Ns.push_back(nowNs() - T0);
              R.Checksum = checksum(Res);
            }
            return R;
          }};
}

/// Times just the partitioning decision (applyStrategy on a prebuilt
/// ASDG), isolating greedy FUSION-FOR-CONTRACTION vs the exact
/// branch-and-bound so the solver's cost is visible in BENCH_10 metrics.
/// Checksum = contracted bytes, so a baseline comparison also catches a
/// solver that silently changes its answer.
Case strategyCase(const BenchmarkInfo &B, int64_t N, Strategy S,
                  std::string Label) {
  return {"strategy." + std::move(Label), [&B, N, S](unsigned Repeats) {
            auto P = B.Build(N);
            ir::normalizeProgram(*P);
            analysis::ASDG G = analysis::ASDG::build(*P);
            CaseResult R;
            for (unsigned I = 0; I < Repeats; ++I) {
              uint64_t T0 = nowNs();
              StrategyResult SR = applyStrategy(G, S);
              R.Ns.push_back(nowNs() - T0);
              R.Checksum = contractedBytes(SR.Partition, SR.Contracted);
            }
            return R;
          }};
}

/// The pinned suite. Order and names are part of the BENCH_10.json
/// contract: append new cases at the end, never rename existing ones.
std::vector<Case> buildSuite(bool Reduced) {
  const int64_t N = Reduced ? 8 : 16;
  std::vector<Case> Suite;
  for (const BenchmarkInfo &B : allBenchmarks()) {
    Suite.push_back(execCase(B, N, Strategy::C2F3, ExecMode::Sequential,
                             "seq"));
    Suite.push_back(compileCase(B, N, Strategy::C2F3,
                                verify::VerifyLevel::Off));
  }
  const BenchmarkInfo &Tomcatv = allBenchmarks()[3];
  const BenchmarkInfo &SP = allBenchmarks()[2];

  // fig8-style problem-size scaling (execution only; one benchmark).
  for (int64_t Size : Reduced ? std::vector<int64_t>{6, 10}
                              : std::vector<int64_t>{8, 16, 24})
    Suite.push_back(execCase(Tomcatv, Size, Strategy::C2F3,
                             ExecMode::Sequential,
                             formatString("n%lld", (long long)Size)));

  // Baseline (unfused) vs contracted execution of the same program.
  Suite.push_back(execCase(Tomcatv, N, Strategy::Baseline,
                           ExecMode::Sequential, "seq"));

  // Parallel executor.
  Suite.push_back(execCase(Tomcatv, N, Strategy::C2F3, ExecMode::Parallel,
                           "par"));

  // A verified compile, so the pipeline.verify span shows up in the
  // metrics table.
  Suite.push_back(compileCase(SP, N, Strategy::C2F3,
                              verify::VerifyLevel::Full));

  // JIT compile-vs-dispatch split.
  Suite.push_back(jitColdCase(Tomcatv, N));
  Suite.push_back(jitWarmCase(Tomcatv, N));

  // Runtime engine steady state.
  Suite.push_back(runtimeWarmCase(Reduced ? 16 : 32, Reduced ? 4 : 10));

  // Observability overhead pair.
  Suite.push_back(obsLevelCase(Tomcatv, N, obs::ObsLevel::Off));
  Suite.push_back(obsLevelCase(Tomcatv, N, obs::ObsLevel::Trace));

  // Greedy vs exact branch-and-bound partitioning on the same ASDG: the
  // price of optimality in the compile pipeline.
  Suite.push_back(strategyCase(Tomcatv, N, Strategy::C2, "greedy"));
  Suite.push_back(strategyCase(Tomcatv, N, Strategy::IlpOptimal, "ilp"));

  // Semiring workload zoo (appended last per the BENCH_10 contract):
  // contracted execution of the non-(+,×) kernels — Floyd–Warshall under
  // min-plus and transitive closure under or-and — so accumulator-init
  // and combine specialization stay on the regression radar.
  {
    const std::vector<BenchmarkInfo> &Zoo = zooBenchmarks();
    Case FW =
        execCase(Zoo[0], N, Strategy::C2F3, ExecMode::Sequential, "seq");
    FW.Name = "semiring.minplus";
    Suite.push_back(std::move(FW));
    Case TC =
        execCase(Zoo[1], N, Strategy::C2F3, ExecMode::Sequential, "seq");
    TC.Name = "semiring.orand";
    Suite.push_back(std::move(TC));
  }

  // Scalar vs vectorizing JIT (appended last per the pinned-suite
  // contract): warm dispatch of the same kernels under both emission
  // tiers, on workloads big enough that the SIMD inner loops, not
  // dispatch, set the median. The spread is deliberate. k-NN's
  // max-times folds and Tomcatv's stencil-plus-residual are
  // reduction-carrying loops the scalar tier's compiler cannot
  // auto-vectorize (that would reassociate), so they show the full
  // tier gap: k-NN's max-times folds stay in the exact tier, Fibro's
  // pattern-energy sum is the reassociated float tier. Tomcatv is
  // stencil arithmetic writing eight live-out fields per element —
  // store-bandwidth-bound, so its row shows the bounded win on
  // memory-limited nests. EP is the degenerate contrast: full
  // contraction leaves its loop body dependent only on the seed
  // scalar, and the row measures how well each tier exposes that
  // invariance (the scalar tier accumulates through non-restrict
  // scalar pointers and cannot hoist).
  {
    const BenchmarkInfo &EP = allBenchmarks()[0];
    const BenchmarkInfo &Tom = allBenchmarks()[3];
    const BenchmarkInfo &Fibro = allBenchmarks()[5];
    const BenchmarkInfo &Knn = zooBenchmarks()[2];
    const int64_t EpN = Reduced ? 1 << 14 : 1 << 17;
    const int64_t KnnN = Reduced ? 1 << 15 : 1 << 18;
    const int64_t TomN = Reduced ? 192 : 512;
    const int64_t FibroN = Reduced ? 128 : 512;
    Suite.push_back(jitTierCase(EP, EpN, /*Vectorize=*/false, "ep"));
    Suite.push_back(jitTierCase(EP, EpN, /*Vectorize=*/true, "ep"));
    Suite.push_back(jitTierCase(Knn, KnnN, /*Vectorize=*/false, "knn"));
    Suite.push_back(jitTierCase(Knn, KnnN, /*Vectorize=*/true, "knn"));
    Suite.push_back(jitTierCase(Fibro, FibroN, /*Vectorize=*/false,
                                "fibro"));
    Suite.push_back(jitTierCase(Fibro, FibroN, /*Vectorize=*/true,
                                "fibro"));
    Suite.push_back(jitTierCase(Tom, TomN, /*Vectorize=*/false, "tomcatv"));
    Suite.push_back(jitTierCase(Tom, TomN, /*Vectorize=*/true, "tomcatv"));
  }
  return Suite;
}

uint64_t median(std::vector<uint64_t> V) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

uint64_t minOf(const std::vector<uint64_t> &V) {
  return V.empty() ? 0 : *std::min_element(V.begin(), V.end());
}

uint64_t meanOf(const std::vector<uint64_t> &V) {
  if (V.empty())
    return 0;
  uint64_t Sum = 0;
  for (uint64_t X : V)
    Sum += X;
  return Sum / V.size();
}

//===----------------------------------------------------------------------===//
// BENCH_10.json schema
//===----------------------------------------------------------------------===//

json::Value resultsToJson(const std::vector<Case> &Suite,
                          const std::vector<CaseResult> &Results,
                          bool Reduced, unsigned Repeats) {
  json::Value Root = json::Value::object();
  Root.set("schema", json::Value::str("alf-bench/1"));
  Root.set("suite", json::Value::str(Reduced ? "reduced" : "full"));
  Root.set("repeat", json::Value::number(Repeats));

  json::Value Benchmarks = json::Value::array();
  for (size_t I = 0; I < Suite.size(); ++I) {
    const CaseResult &R = Results[I];
    json::Value B = json::Value::object();
    B.set("name", json::Value::str(Suite[I].Name));
    B.set("repeats",
          json::Value::number(static_cast<double>(R.Ns.size())));
    B.set("median_ns",
          json::Value::number(static_cast<double>(median(R.Ns))));
    B.set("min_ns", json::Value::number(static_cast<double>(minOf(R.Ns))));
    B.set("mean_ns",
          json::Value::number(static_cast<double>(meanOf(R.Ns))));
    B.set("checksum", json::Value::number(R.Checksum));
    B.set("skipped", json::Value::boolean(R.Skipped));
    if (R.Skipped)
      B.set("skip_reason", json::Value::str(R.SkipReason));
    Benchmarks.push(std::move(B));
  }
  Root.set("benchmarks", std::move(Benchmarks));

  json::Value Metrics = json::Value::array();
  for (const obs::MetricRow &Row : obs::metricsTable()) {
    json::Value M = json::Value::object();
    M.set("name", json::Value::str(Row.Name));
    M.set("count", json::Value::number(static_cast<double>(Row.Count)));
    M.set("total_ns",
          json::Value::number(static_cast<double>(Row.TotalNs)));
    M.set("p50_ns", json::Value::number(static_cast<double>(Row.P50Ns)));
    M.set("p95_ns", json::Value::number(static_cast<double>(Row.P95Ns)));
    M.set("bytes", json::Value::number(static_cast<double>(Row.Bytes)));
    Metrics.push(std::move(M));
  }
  Root.set("metrics", std::move(Metrics));
  return Root;
}

/// Validates the pinned BENCH_10.json schema; the contract alf_bench
/// --selftest and the CI compare step rely on.
bool validateBenchJson(const json::Value &Root, std::string &Why) {
  auto Fail = [&Why](const std::string &Msg) {
    Why = Msg;
    return false;
  };
  if (!Root.isObject())
    return Fail("root is not an object");
  if (Root.getString("schema").value_or("") != "alf-bench/1")
    return Fail("schema key missing or not alf-bench/1");
  std::string Suite = Root.getString("suite").value_or("");
  if (Suite != "full" && Suite != "reduced")
    return Fail("suite must be 'full' or 'reduced'");
  if (!Root.getNumber("repeat"))
    return Fail("repeat missing");
  const json::Value *Benchmarks = Root.get("benchmarks");
  if (!Benchmarks || !Benchmarks->isArray() || Benchmarks->size() == 0)
    return Fail("benchmarks missing or empty");
  for (const json::Value &B : Benchmarks->items()) {
    if (!B.getString("name"))
      return Fail("benchmark entry without name");
    for (const char *Key :
         {"repeats", "median_ns", "min_ns", "mean_ns", "checksum"})
      if (!B.getNumber(Key))
        return Fail("benchmark '" + *B.getString("name") + "' missing " +
                    Key);
    if (!B.getBool("skipped"))
      return Fail("benchmark '" + *B.getString("name") +
                  "' missing skipped");
  }
  const json::Value *Metrics = Root.get("metrics");
  if (!Metrics || !Metrics->isArray())
    return Fail("metrics missing");
  for (const json::Value &M : Metrics->items()) {
    if (!M.getString("name"))
      return Fail("metric row without name");
    for (const char *Key :
         {"count", "total_ns", "p50_ns", "p95_ns", "bytes"})
      if (!M.getNumber(Key))
        return Fail("metric '" + *M.getString("name") + "' missing " + Key);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// --compare
//===----------------------------------------------------------------------===//

struct BaselineRow {
  double MedianNs = 0;
  double Checksum = 0;
  bool Skipped = false;
};

int compareAgainst(const json::Value &Current, const std::string &Path,
                   double Tolerance) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "alf_bench: cannot open baseline " << Path << '\n';
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  std::optional<json::Value> Base = json::parse(Buf.str(), &Error);
  if (!Base) {
    std::cerr << "alf_bench: malformed baseline " << Path << ": " << Error
              << '\n';
    return 1;
  }
  std::string Why;
  if (!validateBenchJson(*Base, Why)) {
    std::cerr << "alf_bench: baseline " << Path
              << " fails schema validation: " << Why << '\n';
    return 1;
  }

  std::map<std::string, BaselineRow> Rows;
  for (const json::Value &B : Base->get("benchmarks")->items()) {
    BaselineRow Row;
    Row.MedianNs = B.getNumber("median_ns").value_or(0);
    Row.Checksum = B.getNumber("checksum").value_or(0);
    Row.Skipped = B.getBool("skipped").value_or(false);
    Rows[*B.getString("name")] = Row;
  }

  unsigned Regressions = 0, Compared = 0;
  std::cout << formatString("%-34s %12s %12s %8s\n", "benchmark",
                            "base_ms", "now_ms", "ratio");
  for (const json::Value &B : Current.get("benchmarks")->items()) {
    std::string Name = *B.getString("name");
    auto It = Rows.find(Name);
    if (It == Rows.end() || It->second.Skipped ||
        B.getBool("skipped").value_or(false))
      continue;
    double Now = B.getNumber("median_ns").value_or(0);
    double Before = It->second.MedianNs;
    if (Before <= 0)
      continue;
    double Ratio = Now / Before;
    ++Compared;
    bool Regressed = Ratio > Tolerance;
    Regressions += Regressed;
    std::cout << formatString("%-34s %12.3f %12.3f %7.2fx%s\n",
                              Name.c_str(), Before / 1e6, Now / 1e6, Ratio,
                              Regressed ? "  REGRESSED" : "");
    double CS = B.getNumber("checksum").value_or(0);
    double BaseCS = It->second.Checksum;
    if (std::fabs(CS - BaseCS) > 1e-9 * (std::fabs(BaseCS) + 1.0))
      std::cout << formatString(
          "  note: %s checksum drifted (%.17g vs baseline %.17g)\n",
          Name.c_str(), CS, BaseCS);
  }
  std::cout << formatString(
      "compared %u benchmarks against %s (tolerance %.2fx): %u regressed\n",
      Compared, Path.c_str(), Tolerance, Regressions);
  return Regressions ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutFile = "BENCH_10.json";
  std::string CompareFile;
  std::string Filter;
  double Tolerance = 2.0;
  unsigned Repeats = 5;
  bool Reduced = false, List = false, SelfTest = false;
  constexpr unsigned BenchFlags =
      tool::TF_Trace | tool::TF_Metrics | tool::TF_Semiring;
  tool::ToolOptions TO;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string FlagError;
    switch (tool::parseToolFlag(Arg, BenchFlags, TO, FlagError)) {
    case tool::FlagParse::Consumed:
      continue;
    case tool::FlagParse::Error:
      std::cerr << "alf_bench: " << FlagError << '\n';
      return 2;
    case tool::FlagParse::NotMine:
      break;
    }
    if (Arg.rfind("--out=", 0) == 0)
      OutFile = Arg.substr(6);
    else if (Arg.rfind("--compare=", 0) == 0)
      CompareFile = Arg.substr(10);
    else if (Arg.rfind("--tolerance=", 0) == 0)
      Tolerance = std::atof(Arg.c_str() + 12);
    else if (Arg.rfind("--repeat=", 0) == 0)
      Repeats = static_cast<unsigned>(std::atoi(Arg.c_str() + 9));
    else if (Arg.rfind("--filter=", 0) == 0)
      Filter = Arg.substr(9);
    else if (Arg == "--reduced")
      Reduced = true;
    else if (Arg == "--list")
      List = true;
    else if (Arg == "--selftest")
      SelfTest = true;
    else {
      std::cerr << "usage: alf_bench [--out=BENCH_10.json] "
                   "[--compare=baseline.json] [--tolerance=X] "
                   "[--repeat=N] [--reduced] [--filter=substr] "
                   "[--list] [--selftest]\n"
                << tool::toolFlagsHelp(BenchFlags);
      return 2;
    }
  }
  if (Repeats == 0 || Tolerance <= 0) {
    std::cerr << "alf_bench: --repeat and --tolerance must be positive\n";
    return 2;
  }

  std::vector<Case> Suite = buildSuite(Reduced);
  if (TO.SemiringSel) {
    // --semiring=NAME keeps just that algebra's workload-zoo rows: the
    // case name is "semiring." + the registry name with dashes dropped
    // (min-plus -> semiring.minplus).
    std::string Want = "semiring.";
    for (char C : TO.SemiringSel->Name)
      if (C != '-')
        Want += C;
    std::vector<Case> Kept;
    for (Case &C : Suite)
      if (C.Name.rfind(Want, 0) == 0)
        Kept.push_back(std::move(C));
    Suite = std::move(Kept);
  }
  if (!Filter.empty()) {
    std::vector<Case> Kept;
    for (Case &C : Suite)
      if (C.Name.find(Filter) != std::string::npos)
        Kept.push_back(std::move(C));
    Suite = std::move(Kept);
  }
  if (List) {
    for (const Case &C : Suite)
      std::cout << C.Name << '\n';
    return 0;
  }
  if (Suite.empty()) {
    std::cerr << "alf_bench: filter matched no benchmarks\n";
    return 2;
  }

  // Metrics aggregate across the whole suite (the JSON always embeds
  // them, so the level is at least Counters regardless of --metrics);
  // the obs.* pair overrides the level locally through ScopedLevel.
  obs::setLevel(TO.TraceFile.empty() ? obs::ObsLevel::Counters
                                     : obs::ObsLevel::Trace);
  obs::reset();

  std::vector<CaseResult> Results;
  Results.reserve(Suite.size());
  for (const Case &C : Suite) {
    std::cout << C.Name << " ..." << std::flush;
    CaseResult R = C.Run(Repeats);
    if (R.Skipped)
      std::cout << " SKIPPED (" << R.SkipReason << ")\n";
    else
      std::cout << formatString(" median %.3f ms (%zu samples)\n",
                                static_cast<double>(median(R.Ns)) / 1e6,
                                R.Ns.size());
    Results.push_back(std::move(R));
  }

  json::Value Root = resultsToJson(Suite, Results, Reduced, Repeats);
  {
    std::ofstream Out(OutFile);
    if (!Out) {
      std::cerr << "alf_bench: cannot write " << OutFile << '\n';
      return 1;
    }
    Root.write(Out);
    Out << '\n';
  }
  std::cout << "wrote " << OutFile << '\n';

  if (!tool::emitObsOutputs(TO, std::cout, std::cerr, "alf_bench"))
    return 1;
  if (!TO.TraceFile.empty())
    std::cout << "trace: " << obs::numTraceEvents() << " events -> "
              << TO.TraceFile << '\n';

  if (SelfTest) {
    std::ifstream In(OutFile);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Error, Why;
    std::optional<json::Value> Reparsed = json::parse(Buf.str(), &Error);
    if (!Reparsed) {
      std::cerr << "alf_bench: selftest: emitted file does not parse: "
                << Error << '\n';
      return 1;
    }
    if (!validateBenchJson(*Reparsed, Why)) {
      std::cerr << "alf_bench: selftest: schema violation: " << Why << '\n';
      return 1;
    }
    std::cout << "selftest: schema OK\n";
  }

  if (!CompareFile.empty())
    return compareAgainst(Root, CompareFile, Tolerance);
  return 0;
}

//===- tools/ToolOptions.h - Shared CLI flag surface ------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flag surface every ALF tool shares — `--strategy`, `--exec`,
/// `--verify`, `--trace`, `--metrics`, `--seed` — parsed in one place
/// instead of five copies drifting apart (zplc, alf_stress, alf_bench,
/// alfd, alfc). A tool declares which of the flags it accepts with a
/// ToolFlag mask, loops its argv through parseToolFlag, and handles only
/// its own flags in the NotMine case:
///
///   tool::ToolOptions TO;
///   for each Arg:
///     switch (tool::parseToolFlag(Arg, tool::TF_All, TO, Error)) {
///     case tool::FlagParse::Consumed: continue;
///     case tool::FlagParse::Error:    die("mytool: " + Error);
///     case tool::FlagParse::NotMine:  ... tool-specific flags ...
///     }
///   tool::applyObsLevel(TO);     // --trace / --metrics -> obs level
///   ... run ...
///   tool::emitObsOutputs(TO, std::cout, std::cerr, "mytool");
///
/// toolFlagsHelp(mask) renders the usage lines for the enabled flags;
/// it is golden-tested (ToolOptionsTest) so help text stays consistent
/// across tools.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_TOOLS_TOOLOPTIONS_H
#define ALF_TOOLS_TOOLOPTIONS_H

#include "semiring/Semiring.h"
#include "verify/Verify.h"
#include "xform/Strategy.h"

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

namespace alf {
namespace tool {

/// Which shared flags a tool accepts (a bitmask).
enum ToolFlag : unsigned {
  TF_Strategy = 1u << 0, ///< --strategy=NAME
  TF_Exec = 1u << 1,     ///< --exec=sequential|parallel|jit|jit-simd
  TF_Verify = 1u << 2,   ///< --verify=off|structural|full
  TF_Trace = 1u << 3,    ///< --trace=FILE (implies trace-level obs)
  TF_Metrics = 1u << 4,  ///< --metrics (implies counters-level obs)
  TF_Seed = 1u << 5,     ///< --seed=N
  TF_Semiring = 1u << 6, ///< --semiring=NAME (reduction algebra override)
  TF_All = (1u << 7) - 1,
};

/// Parsed values of the shared flags, with each tool's historical
/// defaults preserved by the optionals: a tool that distinguishes
/// "--exec absent" (zplc compiles but does not run) checks the optional.
struct ToolOptions {
  std::optional<xform::Strategy> Strat;
  std::optional<xform::ExecMode> Exec;
  verify::VerifyLevel Verify = verify::VerifyLevel::Full;
  bool VerifySet = false; ///< --verify appeared on the command line
  std::string TraceFile;
  bool Metrics = false;
  uint64_t Seed = 1;
  /// --semiring: null means "leave every reduction's declared algebra
  /// alone"; set, it overrides the ⊕/⊗ of all reductions in the run.
  const semiring::Semiring *SemiringSel = nullptr;
};

/// Outcome of offering one argv element to the shared parser.
enum class FlagParse {
  Consumed, ///< A shared flag; its value landed in ToolOptions.
  NotMine,  ///< Not a shared flag (or not in the tool's mask).
  Error,    ///< A shared flag with a bad value; Error explains.
};

/// Offers \p Arg to the shared parser, accepting only flags in
/// \p Flags. On Error, \p Error holds a one-line reason without the
/// tool-name prefix (the tool adds its own).
FlagParse parseToolFlag(const std::string &Arg, unsigned Flags,
                        ToolOptions &Opts, std::string &Error);

/// The usage lines for the flags enabled in \p Flags, two-space
/// indented, one flag per line — golden-tested, keep stable.
std::string toolFlagsHelp(unsigned Flags);

/// Raises the obs level per the parsed flags: --trace implies Trace,
/// --metrics implies at least Counters. Never lowers a level set by
/// $ALF_OBS.
void applyObsLevel(const ToolOptions &Opts);

/// Writes the metrics table to \p Out (when --metrics) and the Chrome
/// trace to the --trace file. False (after a "toolname: error: ..."
/// line on \p Err) when the trace file cannot be written.
bool emitObsOutputs(const ToolOptions &Opts, std::ostream &Out,
                    std::ostream &Err, const std::string &ToolName);

} // namespace tool
} // namespace alf

#endif // ALF_TOOLS_TOOLOPTIONS_H

//===- tools/alfc.cpp - Command-line client for alfd ------------------------===//
//
// Sends one request to a running alfd and prints the JSON response:
//
//   alfc --socket=PATH health
//   alfc --socket=PATH stats
//   alfc --socket=PATH compile prog.zpl [--strategy=c2] [--verify=full]
//                                       [--semiring=min-plus]
//   alfc --socket=PATH execute prog.zpl [--strategy=c2] [--exec=jit]
//                                       [--seed=S] [--semiring=min-plus]
//   alfc --socket=PATH shutdown
//
// Exit status: 0 when the daemon answered ok, 2 when it answered with a
// structured error (parse/verify/admission), 1 on transport failure.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"
#include "serve/Client.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace alf;

namespace {

constexpr unsigned AlfcFlags = tool::TF_Strategy | tool::TF_Exec |
                               tool::TF_Verify | tool::TF_Semiring |
                               tool::TF_Seed;

void usage(std::ostream &OS) {
  OS << "usage: alfc --socket=PATH <health|stats|compile|execute|shutdown> "
        "[file.zpl] [options]\n"
     << tool::toolFlagsHelp(AlfcFlags);
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, Op, File;
  tool::ToolOptions TO;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Error;
    switch (tool::parseToolFlag(Arg, AlfcFlags, TO, Error)) {
    case tool::FlagParse::Consumed:
      continue;
    case tool::FlagParse::Error:
      std::cerr << "alfc: " << Error << '\n';
      return 1;
    case tool::FlagParse::NotMine:
      break;
    }
    if (Arg.rfind("--socket=", 0) == 0) {
      SocketPath = Arg.substr(9);
    } else if (Arg == "--help" || Arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (Arg.rfind("--", 0) == 0) {
      std::cerr << "alfc: unknown option '" << Arg << "'\n";
      usage(std::cerr);
      return 1;
    } else if (Op.empty()) {
      Op = Arg;
    } else if (File.empty()) {
      File = Arg;
    } else {
      std::cerr << "alfc: unexpected argument '" << Arg << "'\n";
      return 1;
    }
  }

  if (SocketPath.empty() || Op.empty()) {
    usage(std::cerr);
    return 1;
  }

  json::Value Req;
  if (Op == "health") {
    Req = serve::Client::makeHealth();
  } else if (Op == "stats") {
    Req = serve::Client::makeStats();
  } else if (Op == "shutdown") {
    Req = serve::Client::makeShutdown();
  } else if (Op == "compile" || Op == "execute") {
    if (File.empty()) {
      std::cerr << "alfc: " << Op << " needs a program file\n";
      return 1;
    }
    std::ifstream In(File);
    if (!In) {
      std::cerr << "alfc: cannot open " << File << '\n';
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Strategy =
        TO.Strat ? xform::getStrategyName(*TO.Strat) : "";
    std::string Exec = TO.Exec ? xform::getExecModeName(*TO.Exec) : "";
    std::string Verify =
        TO.VerifySet ? verify::getVerifyLevelName(TO.Verify) : "";
    std::string Semiring = TO.SemiringSel ? TO.SemiringSel->Name : "";
    Req = Op == "compile"
              ? serve::Client::makeCompile(Buf.str(), Strategy, Exec,
                                           Verify, Semiring)
              : serve::Client::makeExecute(Buf.str(), Strategy, Exec,
                                           Verify, TO.Seed, Semiring);
  } else {
    std::cerr << "alfc: unknown op '" << Op << "'\n";
    usage(std::cerr);
    return 1;
  }

  serve::Client C;
  std::string Error;
  if (!C.connect(SocketPath, &Error)) {
    std::cerr << "alfc: " << Error << '\n';
    return 1;
  }
  json::Value Resp;
  if (!C.request(Req, Resp, &Error)) {
    std::cerr << "alfc: " << Error << '\n';
    return 1;
  }
  Resp.write(std::cout);
  std::cout << '\n';
  std::optional<bool> OK = Resp.getBool("ok");
  return (OK && *OK) ? 0 : 2;
}

//===- benchprogs/Benchmarks.cpp - The paper's six benchmarks ---------------===//

#include "benchprogs/Benchmarks.h"

#include "support/StringUtil.h"

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::ir;

namespace {

/// Sum of refs to every array in \p Arrays at the null offset.
ExprPtr sumOf(const std::vector<ArraySymbol *> &Arrays) {
  ExprPtr E;
  for (ArraySymbol *A : Arrays) {
    if (!E)
      E = aref(A);
    else
      E = add(std::move(E), aref(A));
  }
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// EP: NAS embarrassingly-parallel kernel. Generates pseudo-random deviates
// through a 10-deep chain of temporaries, forms coordinates x/y, tests ten
// acceptance annuli and reduces everything to scalars. 22 user arrays,
// no compiler temporaries; contraction eliminates every array (Figure 7),
// so the contracted code's memory use is constant in the problem size.
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> benchprogs::buildEP(int64_t N) {
  auto P = std::make_unique<Program>("EP");
  const Region *R = P->regionFromExtents({N});
  ScalarSymbol *Seed = P->makeScalar("seed");

  // Pseudo-random chain u1..u10.
  std::vector<ArraySymbol *> U;
  for (unsigned I = 0; I < 10; ++I)
    U.push_back(P->makeUserTemp(formatString("u%u", I + 1), 1));
  P->assign(R, U[0], add(mul(sref(Seed), cst(0.5)), cst(0.25)));
  for (unsigned I = 1; I < 10; ++I)
    P->assign(R, U[I], add(mul(aref(U[I - 1]), cst(1.10351)), cst(0.12345)));

  // Deviate coordinates.
  ArraySymbol *X = P->makeUserTemp("x", 1);
  ArraySymbol *Y = P->makeUserTemp("y", 1);
  P->assign(R, X, sub(mul(cst(2.0), aref(U[8])), cst(1.0)));
  P->assign(R, Y, sub(mul(cst(2.0), aref(U[9])), cst(1.0)));

  // Ten acceptance annuli q0..q9.
  std::vector<ArraySymbol *> Q;
  for (unsigned I = 0; I < 10; ++I) {
    Q.push_back(P->makeUserTemp(formatString("q%u", I), 1));
    ExprPtr RadSq = add(mul(aref(X), aref(X)), mul(aref(Y), aref(Y)));
    P->assign(R, Q[I],
              emax(cst(0.0), sub(cst(1.0), mul(std::move(RadSq),
                                               cst(0.1 * (I + 1))))));
  }

  // Scalar results: the two coordinate sums and a checksum reading every
  // array (which also makes all 22 arrays simultaneously live: the
  // paper's lb = 22).
  ScalarSymbol *SX = P->makeScalar("sx");
  ScalarSymbol *SY = P->makeScalar("sy");
  ScalarSymbol *Chk = P->makeScalar("chk");
  P->reduce(R, SX, ReduceStmt::ReduceOpKind::Sum, mul(aref(X), aref(Q[0])));
  P->reduce(R, SY, ReduceStmt::ReduceOpKind::Sum, mul(aref(Y), aref(Q[1])));
  std::vector<ArraySymbol *> All = U;
  All.push_back(X);
  All.push_back(Y);
  for (ArraySymbol *A : Q)
    All.push_back(A);
  P->reduce(R, Chk, ReduceStmt::ReduceOpKind::Sum, sumOf(All));
  return P;
}

//===----------------------------------------------------------------------===//
// Frac: a fractal (escape-time) demo in ZPL. Seven temporaries carry the
// complex iteration; only the live-out image survives contraction
// (Figure 7: 8 arrays -> 1).
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> benchprogs::buildFrac(int64_t N) {
  auto P = std::make_unique<Program>("Frac");
  const Region *R = P->regionFromExtents({N, N});
  ScalarSymbol *Scale = P->makeScalar("scale");

  ArraySymbol *CR = P->makeUserTemp("cr", 2);
  ArraySymbol *CI = P->makeUserTemp("ci", 2);
  ArraySymbol *ZR1 = P->makeUserTemp("zr1", 2);
  ArraySymbol *ZI1 = P->makeUserTemp("zi1", 2);
  ArraySymbol *ZR2 = P->makeUserTemp("zr2", 2);
  ArraySymbol *ZI2 = P->makeUserTemp("zi2", 2);
  ArraySymbol *Mag = P->makeUserTemp("mag", 2);
  ArrayOpts ImageOpts;
  ImageOpts.LiveIn = false; // written before read
  ArraySymbol *Image = P->makeArray("image", 2, ImageOpts);

  P->assign(R, CR, mul(sref(Scale), cst(0.31)));
  P->assign(R, CI, mul(sref(Scale), cst(-0.47)));
  P->assign(R, ZR1, aref(CR));
  P->assign(R, ZI1, aref(CI));
  P->assign(R, ZR2,
            add(sub(mul(aref(ZR1), aref(ZR1)), mul(aref(ZI1), aref(ZI1))),
                aref(CR)));
  P->assign(R, ZI2,
            add(mul(mul(cst(2.0), aref(ZR1)), aref(ZI1)), aref(CI)));
  P->assign(R, Mag,
            add(mul(aref(ZR2), aref(ZR2)), mul(aref(ZI2), aref(ZI2))));
  // The final image; the tiny correction term reads every temporary so
  // all eight arrays are simultaneously live here (lb = 8).
  P->assign(R, Image,
            add(emin(aref(Mag), cst(4.0)),
                mul(cst(1e-6), sumOf({CR, CI, ZR1, ZI1, ZR2, ZI2}))));
  return P;
}

//===----------------------------------------------------------------------===//
// Tomcatv: SPEC CFP95 vectorized mesh generation. Seven persistent mesh
// and coefficient arrays; eight user temporaries (including the paper's
// R, Figure 1) and four self-updates that need compiler temporaries.
// Figure 7: 19 (4 compiler / 15 user) -> 7.
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> benchprogs::buildTomcatv(int64_t N) {
  auto P = std::make_unique<Program>("Tomcatv");
  const Region *Rg = P->regionFromExtents({N, N});

  // Persistent arrays (live-out): mesh coordinates, residuals and
  // coefficients.
  ArraySymbol *X = P->makeArray("X", 2);
  ArraySymbol *Y = P->makeArray("Y", 2);
  ArraySymbol *RX = P->makeArray("RX", 2);
  ArraySymbol *RY = P->makeArray("RY", 2);
  ArraySymbol *D = P->makeArray("D", 2);
  ArraySymbol *AA = P->makeArray("AA", 2);
  ArraySymbol *DD = P->makeArray("DD", 2);

  // User temporaries.
  ArraySymbol *PXX = P->makeUserTemp("pxx", 2);
  ArraySymbol *PYY = P->makeUserTemp("pyy", 2);
  ArraySymbol *PXY = P->makeUserTemp("pxy", 2);
  ArraySymbol *QX = P->makeUserTemp("qx", 2);
  ArraySymbol *QY = P->makeUserTemp("qy", 2);
  ArraySymbol *R = P->makeUserTemp("r", 2);
  ArraySymbol *S = P->makeUserTemp("s", 2);
  ArraySymbol *W = P->makeUserTemp("w", 2);

  // Finite differences of the coefficient fields (halo traffic on D, AA,
  // DD; these arrays are never written, so the offsets carry no
  // dependences).
  P->assign(Rg, PXX, add(aref(D, {-1, 0}), aref(D, {1, 0})));
  P->assign(Rg, PYY, add(aref(D, {0, -1}), aref(D, {0, 1})));
  P->assign(Rg, PXY, add(aref(AA, {-1, 0}), aref(AA, {0, 1})));
  P->assign(Rg, QX, add(aref(DD, {0, -1}), aref(DD, {1, 0})));
  P->assign(Rg, QY, sub(mul(aref(PXX), aref(PYY)), aref(PXY)));
  P->assign(Rg, R, sub(mul(aref(AA), aref(D)), aref(QX)));
  P->assign(Rg, S, add(mul(aref(DD), aref(D)), aref(QY)));
  P->assign(Rg, W, add(mul(aref(R), aref(S)), aref(PXX)));

  // Residual and mesh self-updates: each reads and writes the same array,
  // so normalization inserts four compiler temporaries.
  P->assign(Rg, RX, add(sub(aref(RX), aref(R)), aref(W)));
  P->assign(Rg, RY, add(sub(aref(RY), aref(S)), aref(W)));
  P->assign(Rg, X, add(aref(X), mul(aref(RX), cst(0.1))));
  P->assign(Rg, Y, add(aref(Y), mul(aref(RY), cst(0.1))));

  // Convergence residual: reads every temporary (all 19 arrays live).
  ScalarSymbol *Resid = P->makeScalar("resid");
  P->reduce(Rg, Resid, ReduceStmt::ReduceOpKind::Sum,
            sumOf({R, S, PXX, PYY, PXY, QX, QY, W}));
  return P;
}

//===----------------------------------------------------------------------===//
// Simple: Lawrence Livermore hydrodynamics and heat conduction. Twenty
// persistent state fields; a 33-deep chain of contractible temporaries
// (hydro phase), twelve offset-consumed temporaries that contraction
// cannot remove (conduction sweeps), and twenty self-updates (state
// advance). Figure 7: 85 (20/65) -> 32.
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> benchprogs::buildSimple(int64_t N) {
  auto P = std::make_unique<Program>("Simple");
  const Region *R = P->regionFromExtents({N, N});

  std::vector<ArraySymbol *> H;
  for (unsigned I = 0; I < 20; ++I)
    H.push_back(P->makeArray(formatString("h%u", I), 2));

  // Hydro phase: a chain of 33 contractible temporaries. Six of them
  // (ta19..ta24) are also consumed *after* the conduction sweeps below —
  // their contraction requires fusing across the sweep's halo exchanges,
  // which the favor-communication policy of section 5.5 refuses.
  std::vector<ArraySymbol *> TA;
  for (unsigned I = 0; I < 33; ++I)
    TA.push_back(P->makeUserTemp(formatString("ta%u", I), 2));
  P->assign(R, TA[0], add(aref(H[0]), cst(1.0)));
  for (unsigned I = 1; I < 33; ++I)
    P->assign(R, TA[I],
              add(mul(aref(TA[I - 1]), cst(0.99)), aref(H[I % 20])));
  P->assign(R, H[0], add(aref(H[1]), aref(TA[32])));

  // Conduction phase: twelve boundary-sweep temporaries, consumed at an
  // offset — the flow distance is not null, so they stay arrays. All
  // twelve are simultaneously live before the consumers run (la = 32).
  std::vector<ArraySymbol *> Z;
  for (unsigned I = 0; I < 12; ++I) {
    Z.push_back(P->makeUserTemp(formatString("z%u", I), 2));
    P->assign(R, Z[I],
              add(aref(H[(I + 2) % 20], {1, 0}), aref(H[(I + 3) % 20])));
  }
  // Late consumer of the hydro temporaries (reads ta19..ta24).
  P->assign(R, H[3],
            add(aref(H[4]), sumOf({TA[19], TA[20], TA[21], TA[22], TA[23],
                                   TA[24]})));
  for (unsigned I = 0; I < 12; ++I)
    P->assign(R, H[I + 4],
              add(aref(H[(I + 5) % 20]),
                  mul(aref(Z[I], {0, 1}), cst(0.1))));

  // State advance: twenty self-updates, one compiler temporary each
  // (lb = 40: twenty fields plus twenty retained temporary buffers).
  for (unsigned I = 0; I < 20; ++I)
    P->assign(R, H[I], add(mul(aref(H[I]), cst(0.98)), cst(0.01)));
  return P;
}

//===----------------------------------------------------------------------===//
// SP: NAS scalar-pentadiagonal CFD application. Five persistent fields;
// eight solver phases, each with a chain of contractible temporaries and
// a set of offset-consumed sweep temporaries; a final block of eighteen
// self-updates. Figure 7: 181 (18/163) -> 56 (0/56); Figure 8: lb 23 ->
// la 17.
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> benchprogs::buildSP(int64_t N) {
  auto P = std::make_unique<Program>("SP");
  const Region *R = P->regionFromExtents({N, N});

  std::vector<ArraySymbol *> U;
  for (unsigned I = 0; I < 5; ++I)
    U.push_back(P->makeArray(formatString("u%u", I), 2));

  const unsigned ZCounts[8] = {12, 7, 7, 7, 6, 6, 3, 3}; // sums to 51
  const unsigned CCounts[8] = {14, 14, 14, 13, 13, 13, 13, 13}; // 107

  for (unsigned Phase = 0; Phase < 8; ++Phase) {
    // Chain of contractible temporaries. The final field update consuming
    // the chain's tail happens *after* the sweep below, so contracting
    // the last four temporaries requires fusing across the sweep's halo
    // exchanges — lost under the favor-communication policy (sec. 5.5).
    std::vector<ArraySymbol *> C;
    for (unsigned I = 0; I < CCounts[Phase]; ++I)
      C.push_back(
          P->makeUserTemp(formatString("c%u_%u", Phase, I), 2));
    P->assign(R, C[0], add(aref(U[Phase % 5]), cst(0.5)));
    for (unsigned I = 1; I < C.size(); ++I)
      P->assign(R, C[I],
                add(mul(aref(C[I - 1]), cst(0.97)),
                    aref(U[(Phase + I) % 5])));

    // Sweep temporaries consumed at an offset (forward substitution):
    // not contractible, simultaneously live within the phase.
    std::vector<ArraySymbol *> Z;
    for (unsigned I = 0; I < ZCounts[Phase]; ++I) {
      Z.push_back(
          P->makeUserTemp(formatString("z%u_%u", Phase, I), 2));
      P->assign(R, Z[I],
                add(aref(U[(Phase + I) % 5], {1, 0}),
                    aref(U[(Phase + I + 1) % 5])));
    }
    for (unsigned I = 0; I < ZCounts[Phase]; ++I)
      P->assign(R, U[(Phase + I + 2) % 5],
                add(aref(U[(Phase + I + 3) % 5]),
                    mul(aref(Z[I], {0, 1}), cst(0.05))));

    // Field update consuming the chain's tail (c[K-4..K-1]).
    size_t K = C.size();
    P->assign(R, U[Phase % 5],
              add(aref(U[(Phase + 1) % 5]),
                  sumOf({C[K - 4], C[K - 3], C[K - 2], C[K - 1]})));
  }

  // Final block: eighteen self-updates of the five fields.
  for (unsigned I = 0; I < 18; ++I)
    P->assign(R, U[I % 5],
              add(mul(aref(U[I % 5]), cst(0.99)), cst(0.01)));
  return P;
}

//===----------------------------------------------------------------------===//
// Fibro: mathematical-biology fibroblast simulation, developed in ZPL (no
// scalar-language equivalent). Fourteen read-only coefficient fields and
// thirteen updated density fields persist; twenty-two stencil
// temporaries contract. Figure 7: 49 (0/49) -> 27.
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> benchprogs::buildFibro(int64_t N) {
  auto P = std::make_unique<Program>("Fibro");
  const Region *R = P->regionFromExtents({N, N});

  std::vector<ArraySymbol *> C;
  for (unsigned I = 0; I < 14; ++I)
    C.push_back(P->makeArray(formatString("coef%u", I), 2));
  std::vector<ArraySymbol *> U;
  for (unsigned I = 0; I < 13; ++I)
    U.push_back(P->makeArray(formatString("dens%u", I), 2));

  // Density updates with diffusion stencils over the read-only
  // coefficient fields (double-buffer style: write one field from the
  // next, no self-reads, so no compiler temporaries — Figure 7 shows
  // 0/49). All halo traffic happens here, before any temporary is born:
  // the paper reports that favoring communication optimization costs
  // Fibro almost nothing ("no contraction opportunities are lost").
  // The first update consumes every halo direction of the shared
  // diffusion coefficient, so all exchanges complete before the update
  // chain begins and fusion of the chain is never in conflict with them.
  P->assign(R, U[0],
            add(aref(U[1]),
                mul(add(add(aref(C[0], {1, 0}), aref(C[0], {-1, 0})),
                        add(aref(C[0], {0, 1}), aref(C[0], {0, -1}))),
                    cst(0.01))));
  for (unsigned I = 1; I < 13; ++I)
    P->assign(R, U[I],
              add(aref(U[(I + 1) % 13]),
                  mul(aref(C[0], {1, 0}), cst(0.01))));

  // Pattern measures: temporaries over the updated densities, aligned
  // reads only (all contractible).
  std::vector<ArraySymbol *> T;
  for (unsigned I = 0; I < 22; ++I) {
    T.push_back(P->makeUserTemp(formatString("t%u", I), 2));
    P->assign(R, T[I],
              add(aref(U[I % 13]),
                  mul(aref(C[(I + 3) % 14]), cst(0.3))));
  }

  // Pattern-energy diagnostic: reads every temporary (lb = 49).
  ScalarSymbol *Energy = P->makeScalar("energy");
  P->reduce(R, Energy, ReduceStmt::ReduceOpKind::Sum, sumOf(T));
  return P;
}

//===----------------------------------------------------------------------===//
// Semiring workload zoo. Not from the paper's Figure 7 — these exercise
// the semiring-generalized contraction path with the classic non-(+,×)
// kernels, in the same normal form the six paper benchmarks use. The
// "Paper*" census fields hold the expected (regression-anchored) values
// instead of published ones.
//===----------------------------------------------------------------------===//

namespace {

/// Shared skeleton of the two pivot-sweep kernels (Floyd–Warshall and
/// transitive closure): an N-node adjacency structure kept as N rank-1
/// persistent row arrays. Per pivot k and row i, in the exact iteration
/// order of the reference triple loop:
///   (a) [k..k] s := ⊕<< row_i          extract D[i][k] (singleton, exact)
///   (b) [R]    t := s ⊗ row_k          the candidate through the pivot
///   (c) [R]    row_i := row_i ⊕ t      elementwise relax
/// The t temporaries are contractible user arrays; the singleton extract
/// blocks fusion of (a) into (b) via a scalar flow dependence, keeping
/// the update ordered exactly as the reference.
std::unique_ptr<Program>
buildPivotSweep(const char *Name, int64_t N, const semiring::Semiring &SR,
                std::function<ExprPtr(ExprPtr, ExprPtr)> Otimes,
                std::function<ExprPtr(ExprPtr, ExprPtr)> Oplus) {
  auto P = std::make_unique<Program>(Name);
  const Region *R = P->regionFromExtents({N});
  std::vector<ArraySymbol *> Row;
  for (int64_t I = 0; I < N; ++I)
    Row.push_back(P->makeArray(formatString("d%lld", static_cast<long long>(I)),
                               1));
  for (int64_t K = 0; K < N; ++K) {
    const Region *Pivot = P->internRegion(Region({K + 1}, {K + 1}));
    for (int64_t I = 0; I < N; ++I) {
      ScalarSymbol *S = P->makeScalar(
          formatString("s_%lld_%lld", static_cast<long long>(K),
                       static_cast<long long>(I)));
      P->reduce(Pivot, S, SR, aref(Row[I]));
      ArraySymbol *T = P->makeUserTemp(
          formatString("t_%lld_%lld", static_cast<long long>(K),
                       static_cast<long long>(I)),
          1);
      P->assign(R, T, Otimes(sref(S), aref(Row[K])));
      P->assign(R, Row[I], Oplus(aref(Row[I]), aref(T)));
    }
  }
  return P;
}

} // namespace

std::unique_ptr<Program> benchprogs::buildFloydWarshall(int64_t N) {
  // Min-plus: D[i][j] = min(D[i][j], D[i][k] + D[k][j]).
  return buildPivotSweep("FloydWarshall", N, semiring::minPlus(),
                         [](ExprPtr A, ExprPtr B) {
                           return add(std::move(A), std::move(B));
                         },
                         [](ExprPtr A, ExprPtr B) {
                           return emin(std::move(A), std::move(B));
                         });
}

std::unique_ptr<Program> benchprogs::buildTransitiveClosure(int64_t N) {
  // Or-and: R[i][j] = R[i][j] ∨ (R[i][k] ∧ R[k][j]). On the {0,1}
  // carrier, × is exactly ∧ and elementwise max is exactly ∨, so the
  // whole kernel stays in normal form without boolean expression ops.
  return buildPivotSweep("Closure", N, semiring::orAnd(),
                         [](ExprPtr A, ExprPtr B) {
                           return mul(std::move(A), std::move(B));
                         },
                         [](ExprPtr A, ExprPtr B) {
                           return emax(std::move(A), std::move(B));
                         });
}

std::unique_ptr<Program> benchprogs::buildKnn(int64_t N) {
  // Max-times best-match scoring: squared features (nonnegative, the
  // max-times carrier) scaled per class, each class's best score taken
  // with a max-times reduction. Every temporary is contractible, so the
  // whole zoo program reduces to scalars like EP does.
  auto P = std::make_unique<Program>("Knn");
  const Region *R = P->regionFromExtents({N});
  ArraySymbol *F = P->makeArray("f", 1);
  ArraySymbol *G = P->makeUserTemp("g", 1);
  P->assign(R, G, mul(aref(F), aref(F)));
  for (unsigned C = 0; C < 5; ++C) {
    ArraySymbol *T = P->makeUserTemp(formatString("t%u", C), 1);
    P->assign(R, T, mul(aref(G), cst(0.25 * (C + 1))));
    ScalarSymbol *S = P->makeScalar(formatString("best%u", C));
    P->reduce(R, S, semiring::maxTimes(), aref(T));
  }
  return P;
}

const std::vector<BenchmarkInfo> &benchprogs::zooBenchmarks() {
  static std::vector<BenchmarkInfo> All = [] {
    // The census fields are expected values at N = 8 (regression anchor,
    // nothing published): the 64 per-(pivot,row) candidate temporaries
    // plus the 64 normalization temporaries of the self-referencing
    // relax statements all contract away, leaving the 8 persistent rows.
    std::vector<BenchmarkInfo> B(3);
    B[0].Name = "FloydWarshall";
    B[0].Rank = 1;
    B[0].PaperStaticBefore = 136;
    B[0].PaperCompilerBefore = 64;
    B[0].PaperStaticAfter = 8;
    B[0].Build = buildFloydWarshall;

    B[1].Name = "Closure";
    B[1].Rank = 1;
    B[1].PaperStaticBefore = 136;
    B[1].PaperCompilerBefore = 64;
    B[1].PaperStaticAfter = 8;
    B[1].Build = buildTransitiveClosure;

    B[2].Name = "Knn";
    B[2].Rank = 1;
    B[2].PaperStaticBefore = 7;
    B[2].PaperCompilerBefore = 0;
    B[2].PaperStaticAfter = 1;
    B[2].Build = buildKnn;
    return B;
  }();
  return All;
}

const std::vector<BenchmarkInfo> &benchprogs::allBenchmarks() {
  static std::vector<BenchmarkInfo> All = [] {
    std::vector<BenchmarkInfo> B(6);
    B[0].Name = "EP";
    B[0].Rank = 1;
    B[0].PaperStaticBefore = 22;
    B[0].PaperCompilerBefore = 0;
    B[0].PaperStaticAfter = 0;
    B[0].PaperScalarArrays = 1;
    B[0].PaperLb = 22;
    B[0].PaperLa = 0;
    B[0].Build = buildEP;

    B[1].Name = "Frac";
    B[1].PaperStaticBefore = 8;
    B[1].PaperCompilerBefore = 0;
    B[1].PaperStaticAfter = 1;
    B[1].PaperScalarArrays = 1;
    B[1].PaperLb = 8;
    B[1].PaperLa = 1;
    B[1].Build = buildFrac;

    B[2].Name = "SP";
    B[2].PaperStaticBefore = 181;
    B[2].PaperCompilerBefore = 18;
    B[2].PaperStaticAfter = 56;
    B[2].PaperScalarArrays = 48;
    B[2].PaperLb = 23;
    B[2].PaperLa = 17;
    B[2].Build = buildSP;

    B[3].Name = "Tomcatv";
    B[3].PaperStaticBefore = 19;
    B[3].PaperCompilerBefore = 4;
    B[3].PaperStaticAfter = 7;
    B[3].PaperScalarArrays = 7;
    B[3].PaperLb = 19;
    B[3].PaperLa = 7;
    B[3].Build = buildTomcatv;

    B[4].Name = "Simple";
    B[4].PaperStaticBefore = 85;
    B[4].PaperCompilerBefore = 20;
    B[4].PaperStaticAfter = 32;
    B[4].PaperScalarArrays = 32;
    B[4].PaperLb = 40;
    B[4].PaperLa = 32;
    B[4].Build = buildSimple;

    B[5].Name = "Fibro";
    B[5].PaperStaticBefore = 49;
    B[5].PaperCompilerBefore = 0;
    B[5].PaperStaticAfter = 27;
    B[5].PaperScalarArrays = -1;
    B[5].PaperLb = 49;
    B[5].PaperLa = 27;
    B[5].Build = buildFibro;
    return B;
  }();
  return All;
}

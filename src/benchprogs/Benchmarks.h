//===- benchprogs/Benchmarks.h - The paper's six benchmarks ----*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the paper's six evaluation benchmarks (section 5): the
/// NAS kernels EP and SP, SPEC Tomcatv, the Simple hydrodynamics code,
/// the Fibro biology simulation, and the Frac fractal demo. We do not
/// have the original ZPL sources, so each builder constructs an array
/// program whose *array census* — static arrays before/after contraction
/// with the compiler/user split (Figure 7) and peak simultaneously-live
/// arrays lb/la (Figure 8) — matches the paper exactly, and whose
/// dependence structure (stencils, self-updates, reductions, phases)
/// mirrors the described application. Builders are parameterized by the
/// per-processor problem size N so the runtime experiments can scale
/// problem size with the number of processors (section 5.4).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_BENCHPROGS_BENCHMARKS_H
#define ALF_BENCHPROGS_BENCHMARKS_H

#include "ir/Program.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace alf {
namespace benchprogs {

/// One benchmark: its builder and the values the paper reports for it.
struct BenchmarkInfo {
  std::string Name;
  unsigned Rank = 2; ///< rank of the benchmark's regions

  // Paper Figure 7 (static arrays in the compiled code).
  unsigned PaperStaticBefore = 0;
  unsigned PaperCompilerBefore = 0;
  unsigned PaperStaticAfter = 0;
  int PaperScalarArrays = -1; ///< third-party scalar code; -1 = n/a

  // Paper Figure 8 (peak simultaneously live arrays).
  unsigned PaperLb = 0;
  unsigned PaperLa = 0;

  /// Builds the benchmark at per-processor problem size N
  /// (pre-normalization).
  std::function<std::unique_ptr<ir::Program>(int64_t N)> Build;
};

/// The six benchmarks in the paper's Figure 7 row order:
/// EP, Frac, SP, Tomcatv, Simple, Fibro.
const std::vector<BenchmarkInfo> &allBenchmarks();

/// The semiring workload zoo (not in the paper's figures): classic
/// non-(+,×) contraction kernels — Floyd–Warshall (min-plus), transitive
/// closure (or-and), k-NN-style best-score (max-times). A separate
/// registry so the pinned alf_bench suite and positional uses of
/// allBenchmarks() stay stable.
const std::vector<BenchmarkInfo> &zooBenchmarks();

/// Individual builders (pre-normalization).
std::unique_ptr<ir::Program> buildEP(int64_t N);
std::unique_ptr<ir::Program> buildFrac(int64_t N);
std::unique_ptr<ir::Program> buildSP(int64_t N);
std::unique_ptr<ir::Program> buildTomcatv(int64_t N);
std::unique_ptr<ir::Program> buildSimple(int64_t N);
std::unique_ptr<ir::Program> buildFibro(int64_t N);

/// Zoo builders: N nodes (Floyd–Warshall / closure) or N feature
/// elements (k-NN).
std::unique_ptr<ir::Program> buildFloydWarshall(int64_t N);
std::unique_ptr<ir::Program> buildTransitiveClosure(int64_t N);
std::unique_ptr<ir::Program> buildKnn(int64_t N);

} // namespace benchprogs
} // namespace alf

#endif // ALF_BENCHPROGS_BENCHMARKS_H

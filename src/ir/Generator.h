//===- ir/Generator.h - Random array-program generator ---------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random generator of well-formed (pre-normalization)
/// array programs. Used by the property tests — every optimization
/// strategy must preserve the semantics of every generated program — and
/// by the algorithm-scaling benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_GENERATOR_H
#define ALF_IR_GENERATOR_H

#include "ir/Program.h"

#include <memory>

namespace alf {
namespace ir {

/// Shape of the generated program.
struct GeneratorConfig {
  uint64_t Seed = 1;
  unsigned NumStmts = 8;
  unsigned NumPersistent = 3; ///< live-in/live-out arrays
  unsigned NumTemps = 3;      ///< user temporaries (contraction candidates)
  unsigned Rank = 2;
  int64_t Extent = 8;         ///< region extent per dimension
  unsigned MaxOffset = 1;     ///< reference offsets drawn from [-Max, Max]
  bool AllowSelfRef = true;   ///< emit statements needing normalization
  bool AllowTargetOffsets = false; ///< emit `A@d := ...` targets
  bool UseTwoRegions = false; ///< mix two region sizes (blocks some fusion)
  bool AddOpaque = false;     ///< append an opaque consumer statement

  /// When nonzero, append that many full reductions `[R] sK := ⊕<< ...`
  /// over the generated arrays, folding with \p ReduceSemiring (null
  /// means the canonical plus-times).
  unsigned NumReduce = 0;
  const semiring::Semiring *ReduceSemiring = nullptr;
};

/// Generates a program; deterministic in \p Cfg.Seed.
std::unique_ptr<Program> generateRandomProgram(const GeneratorConfig &Cfg);

} // namespace ir
} // namespace alf

#endif // ALF_IR_GENERATOR_H

//===- ir/Normalize.cpp - Statement normalization --------------------------===//

#include "ir/Normalize.h"

#include "ir/Program.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"

using namespace alf;
using namespace alf::ir;

unsigned ir::normalizeProgram(Program &P) {
  unsigned Inserted = 0;
  // Iterate by position; splitting a statement advances past both halves.
  for (unsigned Pos = 0; Pos < P.numStmts(); ++Pos) {
    auto *S = dyn_cast<NormalizedStmt>(P.getStmt(Pos));
    if (!S || !S->readsArray(S->getLHS()))
      continue;

    // Create the temporary and rewrite in two steps. Find a fresh name.
    std::string TempName;
    for (unsigned K = Inserted + 1;; ++K) {
      TempName = formatString("_T%u", K);
      if (!P.findSymbol(TempName))
        break;
    }
    ArraySymbol *Temp = P.makeCompilerTemp(TempName, S->getLHS()->getRank());
    ++Inserted;
    {
      ALF_STATISTIC(NumCompilerTemps, "normalize",
                    "Compiler temporaries inserted");
      ++NumCompilerTemps;
    }

    // [R] _Tk := f(...)   inserted before the original statement.
    auto Def = std::make_unique<NormalizedStmt>(
        S->getRegion(), Temp, Offset::zero(Temp->getRank()),
        S->getRHS()->clone());
    // The original statement becomes the copy-out: [R] A@d0 := _Tk.
    S->setRHS(aref(Temp));
    P.insertStmt(Pos, std::move(Def));
    // Skip over the def we just inserted and the rewritten copy.
    ++Pos;
  }
  return Inserted;
}

//===- ir/Region.cpp - Rectangular index sets -----------------------------===//

#include "ir/Region.h"

#include "support/StringUtil.h"

using namespace alf;
using namespace alf::ir;

std::string Region::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(rank());
  for (unsigned D = 0; D < rank(); ++D)
    Parts.push_back(formatString("%lld..%lld", static_cast<long long>(lo(D)),
                                 static_cast<long long>(hi(D))));
  return "[" + join(Parts, ",") + "]";
}

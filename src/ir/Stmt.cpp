//===- ir/Stmt.cpp - Array-level statements -------------------------------===//

#include "ir/Stmt.h"

#include "support/StringUtil.h"

using namespace alf;
using namespace alf::ir;

Stmt::~Stmt() = default;

//===----------------------------------------------------------------------===//
// NormalizedStmt
//===----------------------------------------------------------------------===//

bool NormalizedStmt::readsArray(const ArraySymbol *Sym) const {
  for (const ArrayRefExpr *Ref : rhsArrayRefs())
    if (Ref->getSymbol() == Sym)
      return true;
  return false;
}

void NormalizedStmt::getAccesses(std::vector<Access> &Out) const {
  Out.push_back(Access{LHS, LHSOff, /*IsWrite=*/true});
  walkExpr(RHS.get(), [&Out](const Expr *E) {
    if (const auto *Ref = dyn_cast<ArrayRefExpr>(E)) {
      Out.push_back(Access{Ref->getSymbol(), Ref->getOffset(),
                           /*IsWrite=*/false});
      return;
    }
    if (const auto *Ref = dyn_cast<ScalarRefExpr>(E))
      Out.push_back(Access{Ref->getSymbol(), std::nullopt,
                           /*IsWrite=*/false});
  });
}

std::string NormalizedStmt::str() const {
  std::string LHSText = LHS->getName();
  if (!LHSOff.isZero())
    LHSText += LHSOff.str();
  return R->str() + " " + LHSText + " := " + RHS->str() + ";";
}

//===----------------------------------------------------------------------===//
// ReduceStmt
//===----------------------------------------------------------------------===//

const semiring::Semiring &ReduceStmt::canonical(ReduceOpKind Op) {
  switch (Op) {
  case ReduceOpKind::Sum:
    return semiring::plusTimes();
  case ReduceOpKind::Min:
    return semiring::minPlus();
  case ReduceOpKind::Max:
    // max-plus, not max-times: a plain max<< must be lawful (and keep its
    // -inf identity) over arbitrary-sign data, which max-times is not.
    return semiring::maxPlus();
  case ReduceOpKind::Or:
    return semiring::orAnd();
  }
  return semiring::plusTimes();
}

ReduceStmt::ReduceOpKind ReduceStmt::getOp() const {
  switch (SR->Plus) {
  case semiring::OpKind::Min:
    return ReduceOpKind::Min;
  case semiring::OpKind::Max:
    return ReduceOpKind::Max;
  case semiring::OpKind::Or:
    return ReduceOpKind::Or;
  default:
    return ReduceOpKind::Sum;
  }
}

void ReduceStmt::getAccesses(std::vector<Access> &Out) const {
  Out.push_back(Access{Acc, std::nullopt, /*IsWrite=*/true});
  walkExpr(Body.get(), [&Out](const Expr *E) {
    if (const auto *Ref = dyn_cast<ArrayRefExpr>(E)) {
      Out.push_back(Access{Ref->getSymbol(), Ref->getOffset(),
                           /*IsWrite=*/false});
      return;
    }
    if (const auto *Ref = dyn_cast<ScalarRefExpr>(E))
      Out.push_back(Access{Ref->getSymbol(), std::nullopt,
                           /*IsWrite=*/false});
  });
}

std::string ReduceStmt::str() const {
  return R->str() + " " + Acc->getName() + " := " + SR->plusName() +
         "<< " + Body->str() + ";";
}

//===----------------------------------------------------------------------===//
// CommStmt
//===----------------------------------------------------------------------===//

void CommStmt::getAccesses(std::vector<Access> &Out) const {
  // A halo exchange consumes the producer's values and produces the values
  // every consumer at this offset reads: model it as an unrepresentable
  // read + write of the array.
  Out.push_back(Access{Array, std::nullopt, /*IsWrite=*/false});
  Out.push_back(Access{Array, std::nullopt, /*IsWrite=*/true});
}

std::string CommStmt::str() const {
  const char *PhaseName = "exchange";
  switch (Phase) {
  case CommPhase::Whole:
    PhaseName = "exchange";
    break;
  case CommPhase::Send:
    PhaseName = "send";
    break;
  case CommPhase::Recv:
    PhaseName = "recv";
    break;
  }
  return formatString("comm.%s %s%s;", PhaseName, Array->getName().c_str(),
                      Dir.str().c_str());
}

//===----------------------------------------------------------------------===//
// OpaqueStmt
//===----------------------------------------------------------------------===//

void OpaqueStmt::getAccesses(std::vector<Access> &Out) const {
  for (const ArraySymbol *A : ArrayReads)
    Out.push_back(Access{A, std::nullopt, /*IsWrite=*/false});
  for (const ArraySymbol *A : ArrayWrites)
    Out.push_back(Access{A, std::nullopt, /*IsWrite=*/true});
  for (const ScalarSymbol *S : ScalarReads)
    Out.push_back(Access{S, std::nullopt, /*IsWrite=*/false});
  for (const ScalarSymbol *S : ScalarWrites)
    Out.push_back(Access{S, std::nullopt, /*IsWrite=*/true});
}

std::string OpaqueStmt::str() const {
  std::vector<std::string> Reads, Writes;
  for (const ArraySymbol *A : ArrayReads)
    Reads.push_back(A->getName());
  for (const ScalarSymbol *S : ScalarReads)
    Reads.push_back(S->getName());
  for (const ArraySymbol *A : ArrayWrites)
    Writes.push_back(A->getName());
  for (const ScalarSymbol *S : ScalarWrites)
    Writes.push_back(S->getName());
  return formatString("opaque \"%s\" reads(%s) writes(%s);", Desc.c_str(),
                      join(Reads, ", ").c_str(), join(Writes, ", ").c_str());
}

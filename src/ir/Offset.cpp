//===- ir/Offset.cpp - Constant offset vectors ----------------------------===//

#include "ir/Offset.h"

#include "support/StringUtil.h"

using namespace alf;
using namespace alf::ir;

std::string Offset::str() const {
  if (isZero())
    return "@0";
  std::vector<std::string> Parts;
  Parts.reserve(Elems.size());
  for (int32_t E : Elems)
    Parts.push_back(formatString("%d", E));
  return "@(" + join(Parts, ",") + ")";
}

//===- ir/Align.h - Statement alignment canonicalization -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment canonicalization. The paper's normal form makes "the
/// alignment of arrays explicit. All array references are perfectly
/// aligned except for vector offsets" (section 2.1). A statement written
/// with an offset assignment target,
///
///   [R] A@d := f(B@e1, C@e2);
///
/// denotes the same element-wise computation as the canonical
///
///   [R+d] A := f(B@(e1-d), C@(e2-d));
///
/// where R+d shifts the region by d. Canonicalizing the target offset to
/// zero aligns statements that compute over the same index set of their
/// output array, enabling fusions (and hence contractions) that the
/// as-written regions would block — condition (i) of Definition 5
/// compares regions, and two statements writing A over the same elements
/// through different region/offset decompositions would otherwise never
/// fuse.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_ALIGN_H
#define ALF_IR_ALIGN_H

namespace alf {
namespace ir {

class Program;

/// Rewrites every normalized statement with a nonzero target offset into
/// the equivalent zero-target-offset form (shifted region, adjusted
/// reference offsets), in place. Returns the number of statements
/// rewritten. Run before dependence analysis; semantics are unchanged.
unsigned alignProgram(Program &P);

} // namespace ir
} // namespace alf

#endif // ALF_IR_ALIGN_H

//===- ir/Verifier.h - Normal-form and program invariants ------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier enforces the paper's normal-form conditions (section 2.1)
/// on every normalized statement of a Program:
///   (i)  the same array is not both read and written,
///   (ii) all arrays in a statement have the rank of the statement's region,
///   (iii) all references are constant offsets from the region (guaranteed
///        structurally by `ArrayRefExpr`, re-checked for rank agreement),
/// plus structural invariants (dense ids, non-null regions). Every pipeline
/// stage runs the verifier in tests.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_VERIFIER_H
#define ALF_IR_VERIFIER_H

#include <string>
#include <vector>

namespace alf {
namespace ir {

class Program;

/// Returns a list of human-readable invariant violations; empty means the
/// program is well formed.
std::vector<std::string> verifyProgram(const Program &P);

/// Convenience wrapper: true when verifyProgram reports no violations.
bool isWellFormed(const Program &P);

} // namespace ir
} // namespace alf

#endif // ALF_IR_VERIFIER_H

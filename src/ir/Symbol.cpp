//===- ir/Symbol.cpp - Array and scalar symbols ---------------------------===//

#include "ir/Symbol.h"

using namespace alf;
using namespace alf::ir;

// Virtual method anchor.
Symbol::~Symbol() = default;

//===- ir/Program.cpp - An array-language basic block ---------------------===//

#include "ir/Program.h"

#include "support/StringUtil.h"

#include <sstream>

using namespace alf;
using namespace alf::ir;

//===----------------------------------------------------------------------===//
// Symbols
//===----------------------------------------------------------------------===//

ArraySymbol *Program::makeArray(std::string ArrName, unsigned Rank,
                                ArrayOpts Opts) {
  assert(!findSymbol(ArrName) && "duplicate symbol name");
  auto Sym = std::make_unique<ArraySymbol>(
      std::move(ArrName), numSymbols(), Rank, Opts.ElemSize, Opts.CompilerTemp,
      Opts.LiveOut, Opts.LiveIn);
  ArraySymbol *Raw = Sym.get();
  Symbols.push_back(std::move(Sym));
  return Raw;
}

ArraySymbol *Program::makeUserTemp(std::string ArrName, unsigned Rank) {
  ArrayOpts Opts;
  Opts.LiveOut = false;
  Opts.LiveIn = false;
  return makeArray(std::move(ArrName), Rank, Opts);
}

ArraySymbol *Program::makeCompilerTemp(std::string ArrName, unsigned Rank) {
  ArrayOpts Opts;
  Opts.CompilerTemp = true;
  Opts.LiveOut = false;
  Opts.LiveIn = false;
  return makeArray(std::move(ArrName), Rank, Opts);
}

ScalarSymbol *Program::makeScalar(std::string ScalarName) {
  assert(!findSymbol(ScalarName) && "duplicate symbol name");
  auto Sym = std::make_unique<ScalarSymbol>(std::move(ScalarName),
                                            numSymbols());
  ScalarSymbol *Raw = Sym.get();
  Symbols.push_back(std::move(Sym));
  return Raw;
}

std::vector<const Symbol *> Program::symbols() const {
  std::vector<const Symbol *> Result;
  Result.reserve(Symbols.size());
  for (const auto &Sym : Symbols)
    Result.push_back(Sym.get());
  return Result;
}

std::vector<const ArraySymbol *> Program::arrays() const {
  std::vector<const ArraySymbol *> Result;
  for (const auto &Sym : Symbols)
    if (const auto *Arr = dyn_cast<ArraySymbol>(Sym.get()))
      Result.push_back(Arr);
  return Result;
}

const Symbol *Program::findSymbol(const std::string &SymName) const {
  for (const auto &Sym : Symbols)
    if (Sym->getName() == SymName)
      return Sym.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Regions
//===----------------------------------------------------------------------===//

const Region *Program::internRegion(const Region &R) {
  for (const auto &Existing : Regions)
    if (*Existing == R)
      return Existing.get();
  Regions.push_back(std::make_unique<Region>(R));
  return Regions.back().get();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

template <typename T, typename... Args>
T *Program::appendStmt(Args &&...CtorArgs) {
  auto S = std::make_unique<T>(std::forward<Args>(CtorArgs)...);
  T *Raw = S.get();
  Raw->setId(numStmts());
  Stmts.push_back(std::move(S));
  return Raw;
}

NormalizedStmt *Program::assign(const Region *R, const ArraySymbol *LHS,
                                ExprPtr RHS) {
  return assign(R, LHS, Offset::zero(LHS->getRank()), std::move(RHS));
}

NormalizedStmt *Program::assign(const Region *R, const ArraySymbol *LHS,
                                Offset LHSOff, ExprPtr RHS) {
  assert(R && "statement requires a region");
  assert(LHS->getRank() == R->rank() && "LHS rank must match region rank");
  return appendStmt<NormalizedStmt>(R, LHS, std::move(LHSOff), std::move(RHS));
}

ReduceStmt *Program::reduce(const Region *R, const ScalarSymbol *Acc,
                            ReduceStmt::ReduceOpKind Op, ExprPtr Body) {
  return reduce(R, Acc, ReduceStmt::canonical(Op), std::move(Body));
}

ReduceStmt *Program::reduce(const Region *R, const ScalarSymbol *Acc,
                            const semiring::Semiring &SR, ExprPtr Body) {
  assert(R && "reduction requires a region");
  return appendStmt<ReduceStmt>(R, Acc, SR, std::move(Body));
}

CommStmt *Program::comm(const ArraySymbol *Array, Offset Dir,
                        CommStmt::CommPhase Phase, int PairId) {
  return appendStmt<CommStmt>(Array, std::move(Dir), Phase, PairId);
}

OpaqueStmt *Program::opaque(std::string Desc, const Region *R,
                            std::vector<const ArraySymbol *> ArrayReads,
                            std::vector<const ArraySymbol *> ArrayWrites,
                            std::vector<const ScalarSymbol *> ScalarReads,
                            std::vector<const ScalarSymbol *> ScalarWrites,
                            double FlopsPerElem, bool GlobalReduction) {
  return appendStmt<OpaqueStmt>(std::move(Desc), R, std::move(ArrayReads),
                                std::move(ArrayWrites), std::move(ScalarReads),
                                std::move(ScalarWrites), FlopsPerElem,
                                GlobalReduction);
}

Stmt *Program::insertStmt(unsigned Pos, std::unique_ptr<Stmt> S) {
  assert(Pos <= numStmts() && "insertion position out of range");
  Stmt *Raw = S.get();
  Stmts.insert(Stmts.begin() + Pos, std::move(S));
  renumber();
  return Raw;
}

void Program::removeStmt(unsigned Pos) {
  assert(Pos < numStmts() && "removal position out of range");
  Stmts.erase(Stmts.begin() + Pos);
  renumber();
}

std::vector<const Stmt *> Program::stmts() const {
  std::vector<const Stmt *> Result;
  Result.reserve(Stmts.size());
  for (const auto &S : Stmts)
    Result.push_back(S.get());
  return Result;
}

void Program::renumber() {
  for (unsigned I = 0; I < Stmts.size(); ++I)
    Stmts[I]->setId(I);
}

void Program::print(std::ostream &OS) const {
  OS << "program " << Name << " {\n";
  for (const auto &Sym : Symbols) {
    if (const auto *Arr = dyn_cast<ArraySymbol>(Sym.get())) {
      OS << "  array " << Arr->getName() << " : rank " << Arr->getRank();
      if (Arr->isCompilerTemp())
        OS << " [compiler-temp]";
      else if (!Arr->isLiveOut())
        OS << " [user-temp]";
      OS << ";\n";
      continue;
    }
    OS << "  scalar " << Sym->getName() << ";\n";
  }
  for (const auto &S : Stmts)
    OS << formatString("  S%-3u ", S->getId()) << S->str() << '\n';
  OS << "}\n";
}

std::string Program::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

//===- ir/Expr.cpp - Element-wise expression trees ------------------------===//

#include "ir/Expr.h"

#include "support/ErrorHandling.h"
#include "support/StringUtil.h"

#include <cmath>

using namespace alf;
using namespace alf::ir;

Expr::~Expr() = default;

//===----------------------------------------------------------------------===//
// ConstExpr
//===----------------------------------------------------------------------===//

ExprPtr ConstExpr::clone() const { return cst(Value); }

std::string ConstExpr::str() const { return formatString("%g", Value); }

//===----------------------------------------------------------------------===//
// ScalarRefExpr
//===----------------------------------------------------------------------===//

ExprPtr ScalarRefExpr::clone() const { return sref(Sym); }

std::string ScalarRefExpr::str() const { return Sym->getName(); }

//===----------------------------------------------------------------------===//
// ArrayRefExpr
//===----------------------------------------------------------------------===//

ExprPtr ArrayRefExpr::clone() const { return aref(Sym, Off); }

std::string ArrayRefExpr::str() const {
  if (Off.isZero())
    return Sym->getName();
  return Sym->getName() + Off.str();
}

//===----------------------------------------------------------------------===//
// UnaryExpr
//===----------------------------------------------------------------------===//

double UnaryExpr::evaluate(Opcode Op, double V) {
  switch (Op) {
  case Opcode::Neg:
    return -V;
  case Opcode::Abs:
    return std::fabs(V);
  case Opcode::Sqrt:
    return std::sqrt(std::fabs(V));
  case Opcode::Exp:
    return std::exp(std::fmin(V, 40.0));
  case Opcode::Log:
    return std::log(std::fabs(V) + 1e-12);
  case Opcode::Sin:
    return std::sin(V);
  case Opcode::Cos:
    return std::cos(V);
  case Opcode::Recip:
    return 1.0 / (V + (V >= 0 ? 1e-12 : -1e-12));
  }
  alf_unreachable("unhandled unary opcode");
}

const char *UnaryExpr::getOpcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Neg:
    return "-";
  case Opcode::Abs:
    return "abs";
  case Opcode::Sqrt:
    return "sqrt";
  case Opcode::Exp:
    return "exp";
  case Opcode::Log:
    return "log";
  case Opcode::Sin:
    return "sin";
  case Opcode::Cos:
    return "cos";
  case Opcode::Recip:
    return "recip";
  }
  alf_unreachable("unhandled unary opcode");
}

ExprPtr UnaryExpr::clone() const {
  return std::make_unique<UnaryExpr>(Op, Operand->clone());
}

std::string UnaryExpr::str() const {
  if (Op == Opcode::Neg)
    return std::string("-(") + Operand->str() + ")";
  return std::string(getOpcodeName(Op)) + "(" + Operand->str() + ")";
}

//===----------------------------------------------------------------------===//
// BinaryExpr
//===----------------------------------------------------------------------===//

double BinaryExpr::evaluate(Opcode Op, double L, double R) {
  switch (Op) {
  case Opcode::Add:
    return L + R;
  case Opcode::Sub:
    return L - R;
  case Opcode::Mul:
    return L * R;
  case Opcode::Div:
    return L / (R + (R >= 0 ? 1e-12 : -1e-12));
  case Opcode::Min:
    return std::fmin(L, R);
  case Opcode::Max:
    return std::fmax(L, R);
  }
  alf_unreachable("unhandled binary opcode");
}

const char *BinaryExpr::getOpcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "+";
  case Opcode::Sub:
    return "-";
  case Opcode::Mul:
    return "*";
  case Opcode::Div:
    return "/";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  }
  alf_unreachable("unhandled binary opcode");
}

ExprPtr BinaryExpr::clone() const {
  return std::make_unique<BinaryExpr>(Op, LHS->clone(), RHS->clone());
}

std::string BinaryExpr::str() const {
  const char *Name = getOpcodeName(Op);
  if (Op == Opcode::Min || Op == Opcode::Max)
    return std::string(Name) + "(" + LHS->str() + ", " + RHS->str() + ")";
  return "(" + LHS->str() + " " + Name + " " + RHS->str() + ")";
}

//===----------------------------------------------------------------------===//
// Tree utilities
//===----------------------------------------------------------------------===//

void ir::walkExpr(const Expr *Root,
                  const std::function<void(const Expr *)> &Fn) {
  Fn(Root);
  if (const auto *U = dyn_cast<UnaryExpr>(Root)) {
    walkExpr(U->getOperand(), Fn);
    return;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(Root)) {
    walkExpr(B->getLHS(), Fn);
    walkExpr(B->getRHS(), Fn);
  }
}

std::vector<const ArrayRefExpr *> ir::collectArrayRefs(const Expr *Root) {
  std::vector<const ArrayRefExpr *> Refs;
  walkExpr(Root, [&Refs](const Expr *E) {
    if (const auto *Ref = dyn_cast<ArrayRefExpr>(E))
      Refs.push_back(Ref);
  });
  return Refs;
}

unsigned ir::countOps(const Expr *Root) {
  unsigned Count = 0;
  walkExpr(Root, [&Count](const Expr *E) {
    if (isa<UnaryExpr>(E) || isa<BinaryExpr>(E))
      ++Count;
  });
  return Count;
}

ExprPtr ir::cloneExprRewriting(
    const Expr *Root,
    const std::function<ExprPtr(const ArrayRefExpr &)> &RewriteArray) {
  if (const auto *Ref = dyn_cast<ArrayRefExpr>(Root)) {
    if (ExprPtr Replacement = RewriteArray(*Ref))
      return Replacement;
    return Root->clone();
  }
  if (const auto *U = dyn_cast<UnaryExpr>(Root))
    return std::make_unique<UnaryExpr>(
        U->getOpcode(), cloneExprRewriting(U->getOperand(), RewriteArray));
  if (const auto *B = dyn_cast<BinaryExpr>(Root))
    return std::make_unique<BinaryExpr>(
        B->getOpcode(), cloneExprRewriting(B->getLHS(), RewriteArray),
        cloneExprRewriting(B->getRHS(), RewriteArray));
  return Root->clone();
}

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

ExprPtr ir::cst(double Value) { return std::make_unique<ConstExpr>(Value); }

ExprPtr ir::sref(const ScalarSymbol *Sym) {
  return std::make_unique<ScalarRefExpr>(Sym);
}

ExprPtr ir::aref(const ArraySymbol *Sym, Offset Off) {
  assert(Sym->getRank() == Off.rank() && "offset rank must match array rank");
  return std::make_unique<ArrayRefExpr>(Sym, std::move(Off));
}

ExprPtr ir::aref(const ArraySymbol *Sym) {
  return aref(Sym, Offset::zero(Sym->getRank()));
}

static ExprPtr makeBinary(BinaryExpr::Opcode Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
}

static ExprPtr makeUnary(UnaryExpr::Opcode Op, ExprPtr E) {
  return std::make_unique<UnaryExpr>(Op, std::move(E));
}

ExprPtr ir::add(ExprPtr L, ExprPtr R) {
  return makeBinary(BinaryExpr::Opcode::Add, std::move(L), std::move(R));
}
ExprPtr ir::sub(ExprPtr L, ExprPtr R) {
  return makeBinary(BinaryExpr::Opcode::Sub, std::move(L), std::move(R));
}
ExprPtr ir::mul(ExprPtr L, ExprPtr R) {
  return makeBinary(BinaryExpr::Opcode::Mul, std::move(L), std::move(R));
}
ExprPtr ir::div(ExprPtr L, ExprPtr R) {
  return makeBinary(BinaryExpr::Opcode::Div, std::move(L), std::move(R));
}
ExprPtr ir::emin(ExprPtr L, ExprPtr R) {
  return makeBinary(BinaryExpr::Opcode::Min, std::move(L), std::move(R));
}
ExprPtr ir::emax(ExprPtr L, ExprPtr R) {
  return makeBinary(BinaryExpr::Opcode::Max, std::move(L), std::move(R));
}
ExprPtr ir::neg(ExprPtr E) {
  return makeUnary(UnaryExpr::Opcode::Neg, std::move(E));
}
ExprPtr ir::esqrt(ExprPtr E) {
  return makeUnary(UnaryExpr::Opcode::Sqrt, std::move(E));
}
ExprPtr ir::eexp(ExprPtr E) {
  return makeUnary(UnaryExpr::Opcode::Exp, std::move(E));
}
ExprPtr ir::elog(ExprPtr E) {
  return makeUnary(UnaryExpr::Opcode::Log, std::move(E));
}
ExprPtr ir::esin(ExprPtr E) {
  return makeUnary(UnaryExpr::Opcode::Sin, std::move(E));
}
ExprPtr ir::ecos(ExprPtr E) {
  return makeUnary(UnaryExpr::Opcode::Cos, std::move(E));
}
ExprPtr ir::recip(ExprPtr E) {
  return makeUnary(UnaryExpr::Opcode::Recip, std::move(E));
}

//===- ir/Generator.cpp - Random array-program generator --------------------===//

#include "ir/Generator.h"

#include "support/Random.h"
#include "support/StringUtil.h"

#include <set>

using namespace alf;
using namespace alf::ir;

std::unique_ptr<Program> ir::generateRandomProgram(const GeneratorConfig &Cfg) {
  SplitMix64 Rng(Cfg.Seed);
  auto P = std::make_unique<Program>(
      formatString("random-%llu", static_cast<unsigned long long>(Cfg.Seed)));

  std::vector<int64_t> Extents(Cfg.Rank, Cfg.Extent);
  const Region *R1 = P->regionFromExtents(Extents);
  const Region *R2 = R1;
  if (Cfg.UseTwoRegions) {
    std::vector<int64_t> Alt(Cfg.Rank, Cfg.Extent > 2 ? Cfg.Extent - 2 : 1);
    R2 = P->regionFromExtents(Alt);
  }

  std::vector<ArraySymbol *> Persistent;
  for (unsigned I = 0; I < Cfg.NumPersistent; ++I)
    Persistent.push_back(
        P->makeArray(formatString("P%u", I), Cfg.Rank));
  std::vector<ArraySymbol *> Temps;
  for (unsigned I = 0; I < Cfg.NumTemps; ++I)
    Temps.push_back(P->makeUserTemp(formatString("T%u", I), Cfg.Rank));

  auto AnyArray = [&](SplitMix64 &G) -> ArraySymbol * {
    uint64_t Pick = G.nextBounded(Persistent.size() + Temps.size());
    if (Pick < Persistent.size())
      return Persistent[Pick];
    return Temps[Pick - Persistent.size()];
  };

  auto RandomOffset = [&](SplitMix64 &G) {
    Offset O = Offset::zero(Cfg.Rank);
    for (unsigned D = 0; D < Cfg.Rank; ++D) {
      int Span = 2 * static_cast<int>(Cfg.MaxOffset) + 1;
      O[D] = static_cast<int32_t>(G.nextBounded(Span)) -
             static_cast<int32_t>(Cfg.MaxOffset);
    }
    return O;
  };

  for (unsigned S = 0; S < Cfg.NumStmts; ++S) {
    ArraySymbol *LHS = AnyArray(Rng);
    const Region *R = (Cfg.UseTwoRegions && Rng.nextBounded(4) == 0) ? R2 : R1;

    // RHS: 1-3 terms combined with +, -, *.
    unsigned NumTerms = 1 + static_cast<unsigned>(Rng.nextBounded(3));
    ExprPtr E;
    for (unsigned T = 0; T < NumTerms; ++T) {
      ArraySymbol *Ref = AnyArray(Rng);
      if (!Cfg.AllowSelfRef)
        while (Ref == LHS)
          Ref = AnyArray(Rng);
      ExprPtr Term = aref(Ref, RandomOffset(Rng));
      if (!E) {
        E = std::move(Term);
        continue;
      }
      switch (Rng.nextBounded(3)) {
      case 0:
        E = add(std::move(E), std::move(Term));
        break;
      case 1:
        E = sub(std::move(E), std::move(Term));
        break;
      default:
        E = mul(std::move(E), mul(std::move(Term), cst(0.5)));
        break;
      }
    }
    // Ground the magnitude so long chains stay finite.
    E = add(mul(std::move(E), cst(0.25)), cst(0.125));
    if (Cfg.AllowTargetOffsets && Rng.nextBounded(4) == 0)
      P->assign(R, LHS, RandomOffset(Rng), std::move(E));
    else
      P->assign(R, LHS, std::move(E));
  }

  // Reductions over the arrays just defined: every accumulator reads one
  // random reference (plus a damped second term) so the scalarized
  // accumulation exercises the semiring's ⊕ fold on every backend.
  const semiring::Semiring &SR =
      Cfg.ReduceSemiring ? *Cfg.ReduceSemiring : semiring::plusTimes();
  for (unsigned I = 0; I < Cfg.NumReduce; ++I) {
    ScalarSymbol *Acc = P->makeScalar(formatString("s%u", I));
    ExprPtr Body = aref(AnyArray(Rng), RandomOffset(Rng));
    if (Rng.nextBounded(2) == 0)
      Body = add(std::move(Body),
                 mul(aref(AnyArray(Rng), RandomOffset(Rng)), cst(0.5)));
    P->reduce(R1, Acc, SR, std::move(Body));
  }

  if (Cfg.AddOpaque && !Persistent.empty()) {
    P->opaque("checksum", R1, {Persistent.front()},
              {Persistent.back()}, {}, {}, 2.0,
              /*GlobalReduction=*/true);
  }

  // A temporary the statements read but never write would be an undefined
  // read at source level (the executors' zero-fill masks it; lint and the
  // safety checker reject it). Promote such temps to live-in so the
  // program genuinely means "the caller provides this value" — the RNG
  // stream and statement structure are untouched.
  std::set<const ArraySymbol *> Read, Written;
  for (const Stmt *S : P->stmts()) {
    if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
      Written.insert(NS->getLHS());
      for (const ArrayRefExpr *Ref : collectArrayRefs(NS->getRHS()))
        Read.insert(Ref->getSymbol());
    } else if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
      for (const ArrayRefExpr *Ref : collectArrayRefs(RS->getBody()))
        Read.insert(Ref->getSymbol());
    } else if (const auto *OS = dyn_cast<OpaqueStmt>(S)) {
      Read.insert(OS->arrayReads().begin(), OS->arrayReads().end());
      Written.insert(OS->arrayWrites().begin(), OS->arrayWrites().end());
    }
  }
  for (ArraySymbol *T : Temps)
    if (Read.count(T) && !Written.count(T))
      T->setLiveIn();
  return P;
}

//===- ir/Normalize.h - Statement normalization ----------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Normalization establishes the paper's normal-form condition (i): "the
/// same array may not be both read and written" by one statement. A
/// statement that violates it is split through a fresh *compiler temporary*:
///
///   [R] A@d0 := f(..., A@d1, ...)
///     =>
///   [R] _Tk := f(..., A@d1, ...)
///   [R] A@d0 := _Tk
///
/// These are exactly the compiler-inserted arrays the paper's c1 strategy
/// later contracts ("compiler temporaries that are often later contracted",
/// section 2.1). Our normalizer, like the paper's, always inserts the
/// temporary and leaves its elimination to contraction: "The technique we
/// describe always inserts compiler arrays, and it treats compiler and user
/// arrays together as candidates for contraction" (section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_NORMALIZE_H
#define ALF_IR_NORMALIZE_H

namespace alf {
namespace ir {

class Program;

/// Splits every normalized statement that reads and writes the same array,
/// in place. Returns the number of compiler temporaries inserted.
unsigned normalizeProgram(Program &P);

} // namespace ir
} // namespace alf

#endif // ALF_IR_NORMALIZE_H

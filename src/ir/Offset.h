//===- ir/Offset.h - Constant offset vectors -------------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Offset` is the integer r-tuple `@(d1, ..., dr)` attached to an array
/// reference in a normalized array statement (paper section 2.1). The same
/// representation serves as the paper's *unconstrained distance vector*
/// (Definition 2), which is the element-wise difference of two offsets.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_OFFSET_H
#define ALF_IR_OFFSET_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace alf {
namespace ir {

/// An integer r-tuple. Used both as the constant offset of an array
/// reference from its statement's region and as an unconstrained distance
/// vector between two normalized statements.
class Offset {
  std::vector<int32_t> Elems;

public:
  Offset() = default;
  explicit Offset(std::vector<int32_t> Elems) : Elems(std::move(Elems)) {}
  Offset(std::initializer_list<int32_t> Init) : Elems(Init) {}

  /// The null (all-zero) offset of the given rank.
  static Offset zero(unsigned Rank) {
    return Offset(std::vector<int32_t>(Rank, 0));
  }

  unsigned rank() const { return static_cast<unsigned>(Elems.size()); }

  int32_t operator[](unsigned D) const {
    assert(D < Elems.size() && "offset dimension out of range");
    return Elems[D];
  }

  int32_t &operator[](unsigned D) {
    assert(D < Elems.size() && "offset dimension out of range");
    return Elems[D];
  }

  /// True if every element is zero (the paper's "null vector").
  bool isZero() const {
    for (int32_t E : Elems)
      if (E != 0)
        return false;
    return true;
  }

  /// Element-wise difference; both operands must have the same rank. An
  /// unconstrained distance vector is `source offset - target offset`.
  Offset operator-(const Offset &RHS) const {
    assert(rank() == RHS.rank() && "rank mismatch in offset subtraction");
    Offset Result = *this;
    for (unsigned D = 0; D < rank(); ++D)
      Result.Elems[D] -= RHS.Elems[D];
    return Result;
  }

  /// Element-wise sum; both operands must have the same rank.
  Offset operator+(const Offset &RHS) const {
    assert(rank() == RHS.rank() && "rank mismatch in offset addition");
    Offset Result = *this;
    for (unsigned D = 0; D < rank(); ++D)
      Result.Elems[D] += RHS.Elems[D];
    return Result;
  }

  bool operator==(const Offset &RHS) const { return Elems == RHS.Elems; }
  bool operator!=(const Offset &RHS) const { return Elems != RHS.Elems; }
  bool operator<(const Offset &RHS) const { return Elems < RHS.Elems; }

  /// Renders as "@(d1,...,dr)"; the null offset renders as "@0".
  std::string str() const;
};

} // namespace ir
} // namespace alf

#endif // ALF_IR_OFFSET_H

//===- ir/Symbol.h - Array and scalar symbols ------------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbols name the variables of an array program. `ArraySymbol` carries the
/// properties the fusion-for-contraction problem cares about: rank, element
/// size, whether it is a *compiler temporary* (inserted during
/// normalization) or a *user array*, and whether it is live beyond the
/// fragment (live-out arrays can never be contracted; the paper's probe
/// fragments state "arrays B, T1 and T2 are not live beyond the given code
/// fragments").
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_SYMBOL_H
#define ALF_IR_SYMBOL_H

#include <cassert>
#include <string>

namespace alf {
namespace ir {

/// Base class for named program variables.
class Symbol {
public:
  enum class SymbolKind { Array, Scalar };

private:
  SymbolKind Kind;
  std::string Name;
  unsigned Id;

protected:
  Symbol(SymbolKind Kind, std::string Name, unsigned Id)
      : Kind(Kind), Name(std::move(Name)), Id(Id) {}

public:
  virtual ~Symbol();

  SymbolKind getKind() const { return Kind; }
  const std::string &getName() const { return Name; }

  /// Dense id assigned by the owning Program; usable as a vector index.
  unsigned getId() const { return Id; }
};

/// A rank-n array variable.
class ArraySymbol : public Symbol {
  unsigned Rank;
  unsigned ElemSize;
  bool CompilerTemp;
  bool LiveOut;
  bool LiveIn;

public:
  ArraySymbol(std::string Name, unsigned Id, unsigned Rank, unsigned ElemSize,
              bool CompilerTemp, bool LiveOut, bool LiveIn)
      : Symbol(SymbolKind::Array, std::move(Name), Id), Rank(Rank),
        ElemSize(ElemSize), CompilerTemp(CompilerTemp), LiveOut(LiveOut),
        LiveIn(LiveIn) {
    assert(Rank >= 1 && "arrays have rank >= 1");
    assert(!(CompilerTemp && (LiveOut || LiveIn)) &&
           "compiler temporaries are local to the fragment");
  }

  unsigned getRank() const { return Rank; }

  /// Size of one element in bytes (8 for double-precision data).
  unsigned getElemSize() const { return ElemSize; }

  /// True if this array was inserted by the compiler during normalization.
  /// The paper's c1 strategy contracts only these; c2 also contracts user
  /// arrays.
  bool isCompilerTemp() const { return CompilerTemp; }

  /// True if the array's value is observable after the fragment. Live-out
  /// arrays are never contraction candidates.
  bool isLiveOut() const { return LiveOut; }

  /// True if the array carries a value into the fragment (it may be read
  /// before any write in the fragment). Live-in arrays whose upward-exposed
  /// reads survive cannot be contracted either.
  bool isLiveIn() const { return LiveIn; }

  /// Promotes the array to live-in. Program builders use this when an
  /// array turns out to be read without ever being written: the read is
  /// only well-defined if the caller provides the value (the random
  /// generator promotes such temporaries so its programs stay meaningful
  /// at source level).
  void setLiveIn() {
    assert(!CompilerTemp && "compiler temporaries are local to the fragment");
    LiveIn = true;
  }

  static bool classof(const Symbol *S) {
    return S->getKind() == SymbolKind::Array;
  }
};

/// A scalar variable. Scalars appear in source programs (coefficients,
/// reduction results) and are created by contraction.
class ScalarSymbol : public Symbol {
public:
  ScalarSymbol(std::string Name, unsigned Id)
      : Symbol(SymbolKind::Scalar, std::move(Name), Id) {}

  static bool classof(const Symbol *S) {
    return S->getKind() == SymbolKind::Scalar;
  }
};

} // namespace ir
} // namespace alf

#endif // ALF_IR_SYMBOL_H

//===- ir/Program.h - An array-language basic block ------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Program` is a single basic block of array-level statements, the unit
/// over which the paper builds an array statement dependence graph (an ASDG
/// "represents a single basic block at the array statement level",
/// Definition 3). The Program owns its symbols, interned regions and
/// statements, and provides the builder API the examples, tests and
/// benchmark generators use.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_PROGRAM_H
#define ALF_IR_PROGRAM_H

#include "ir/Region.h"
#include "ir/Stmt.h"
#include "ir/Symbol.h"

#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace alf {
namespace ir {

/// Traits of an array created through Program::makeArray. The defaults
/// describe a persistent user array (live into and out of the fragment,
/// hence never contractible); temporaries override LiveOut/LiveIn.
struct ArrayOpts {
  unsigned ElemSize = 8;
  bool CompilerTemp = false;
  bool LiveOut = true;
  bool LiveIn = true;
};

/// A basic block of array statements together with its symbols and regions.
class Program {
  std::string Name;
  std::vector<std::unique_ptr<Symbol>> Symbols;
  std::vector<std::unique_ptr<Region>> Regions;
  std::vector<std::unique_ptr<Stmt>> Stmts;

public:
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  const std::string &getName() const { return Name; }

  //===--------------------------------------------------------------------===//
  // Symbols
  //===--------------------------------------------------------------------===//

  /// Creates an array variable. The paper's contraction candidates are the
  /// arrays with `Opts.LiveOut == false` (and no upward-exposed live-in
  /// read); persistent arrays keep the defaults.
  ArraySymbol *makeArray(std::string ArrName, unsigned Rank,
                         ArrayOpts Opts = ArrayOpts());

  /// Creates a user temporary: a user-declared array that is dead outside
  /// the fragment (the paper's `B`, `T1`, `T2`).
  ArraySymbol *makeUserTemp(std::string ArrName, unsigned Rank);

  /// Creates a compiler temporary (normalization inserts these).
  ArraySymbol *makeCompilerTemp(std::string ArrName, unsigned Rank);

  /// Creates a scalar variable.
  ScalarSymbol *makeScalar(std::string ScalarName);

  unsigned numSymbols() const {
    return static_cast<unsigned>(Symbols.size());
  }
  const Symbol *getSymbol(unsigned Id) const { return Symbols[Id].get(); }

  /// All symbols in creation order.
  std::vector<const Symbol *> symbols() const;

  /// All array symbols in creation order.
  std::vector<const ArraySymbol *> arrays() const;

  /// Looks up a symbol by name; returns null when absent.
  const Symbol *findSymbol(const std::string &SymName) const;

  //===--------------------------------------------------------------------===//
  // Regions
  //===--------------------------------------------------------------------===//

  /// Interns \p R: returns a pointer stable for the Program's lifetime,
  /// identical for value-equal regions.
  const Region *internRegion(const Region &R);

  /// Interns the canonical region [1..E1, ..., 1..En].
  const Region *regionFromExtents(const std::vector<int64_t> &Extents) {
    return internRegion(Region::fromExtents(Extents));
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  /// Appends `[R] LHS := RHS;`.
  NormalizedStmt *assign(const Region *R, const ArraySymbol *LHS, ExprPtr RHS);

  /// Appends `[R] LHS@LHSOff := RHS;`.
  NormalizedStmt *assign(const Region *R, const ArraySymbol *LHS,
                         Offset LHSOff, ExprPtr RHS);

  /// Appends `[R] Acc := op<< Body;` (full reduction to a scalar).
  ReduceStmt *reduce(const Region *R, const ScalarSymbol *Acc,
                     ReduceStmt::ReduceOpKind Op, ExprPtr Body);

  /// Appends a reduction folding with \p SR's ⊕ operator.
  ReduceStmt *reduce(const Region *R, const ScalarSymbol *Acc,
                     const semiring::Semiring &SR, ExprPtr Body);

  /// Appends a communication primitive.
  CommStmt *comm(const ArraySymbol *Array, Offset Dir,
                 CommStmt::CommPhase Phase = CommStmt::CommPhase::Whole,
                 int PairId = -1);

  /// Appends an opaque (unnormalizable) statement.
  OpaqueStmt *opaque(std::string Desc, const Region *R,
                     std::vector<const ArraySymbol *> ArrayReads,
                     std::vector<const ArraySymbol *> ArrayWrites,
                     std::vector<const ScalarSymbol *> ScalarReads = {},
                     std::vector<const ScalarSymbol *> ScalarWrites = {},
                     double FlopsPerElem = 1.0, bool GlobalReduction = false);

  /// Inserts an already-constructed statement before position \p Pos (or
  /// appends when Pos == numStmts()) and renumbers.
  Stmt *insertStmt(unsigned Pos, std::unique_ptr<Stmt> S);

  /// Removes the statement at position \p Pos and renumbers.
  void removeStmt(unsigned Pos);

  unsigned numStmts() const { return static_cast<unsigned>(Stmts.size()); }
  Stmt *getStmt(unsigned Id) { return Stmts[Id].get(); }
  const Stmt *getStmt(unsigned Id) const { return Stmts[Id].get(); }

  /// Statements in program order.
  std::vector<const Stmt *> stmts() const;

  /// Reassigns dense statement ids after mutation.
  void renumber();

  /// Writes the whole program as source-like text.
  void print(std::ostream &OS) const;

  /// Returns print() output as a string.
  std::string str() const;

private:
  template <typename T, typename... Args> T *appendStmt(Args &&...CtorArgs);
};

} // namespace ir
} // namespace alf

#endif // ALF_IR_PROGRAM_H

//===- ir/Expr.h - Element-wise expression trees ---------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The right-hand side of a normalized array statement is an element-wise
/// expression over array references at constant offsets, scalar references
/// and constants (the paper's `f(A1@d1, ..., As@ds)`). Expressions are
/// immutable trees owned by their statement through `std::unique_ptr` and
/// use Kind-based LLVM-style RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_EXPR_H
#define ALF_IR_EXPR_H

#include "ir/Offset.h"
#include "ir/Symbol.h"
#include "support/Casting.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace alf {
namespace ir {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all expression nodes.
class Expr {
public:
  enum class ExprKind { Const, ScalarRef, ArrayRef, Unary, Binary };

private:
  ExprKind Kind;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

public:
  virtual ~Expr();

  ExprKind getKind() const { return Kind; }

  /// Deep copy of the tree.
  virtual ExprPtr clone() const = 0;

  /// Renders the expression as source-like text.
  virtual std::string str() const = 0;
};

/// A floating-point literal.
class ConstExpr : public Expr {
  double Value;

public:
  explicit ConstExpr(double Value)
      : Expr(ExprKind::Const), Value(Value) {}

  double getValue() const { return Value; }

  ExprPtr clone() const override;
  std::string str() const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Const;
  }
};

/// A reference to a scalar variable.
class ScalarRefExpr : public Expr {
  const ScalarSymbol *Sym;

public:
  explicit ScalarRefExpr(const ScalarSymbol *Sym)
      : Expr(ExprKind::ScalarRef), Sym(Sym) {}

  const ScalarSymbol *getSymbol() const { return Sym; }

  ExprPtr clone() const override;
  std::string str() const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::ScalarRef;
  }
};

/// A reference to array \p Sym at constant offset \p Off from the
/// statement's region. This is the only way arrays are read in normal form
/// (paper condition (iii)).
class ArrayRefExpr : public Expr {
  const ArraySymbol *Sym;
  Offset Off;

public:
  ArrayRefExpr(const ArraySymbol *Sym, Offset Off)
      : Expr(ExprKind::ArrayRef), Sym(Sym), Off(std::move(Off)) {}

  const ArraySymbol *getSymbol() const { return Sym; }
  const Offset &getOffset() const { return Off; }

  ExprPtr clone() const override;
  std::string str() const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::ArrayRef;
  }
};

/// Element-wise unary operation.
class UnaryExpr : public Expr {
public:
  enum class Opcode { Neg, Abs, Sqrt, Exp, Log, Sin, Cos, Recip };

private:
  Opcode Op;
  ExprPtr Operand;

public:
  UnaryExpr(Opcode Op, ExprPtr Operand)
      : Expr(ExprKind::Unary), Op(Op), Operand(std::move(Operand)) {}

  Opcode getOpcode() const { return Op; }
  const Expr *getOperand() const { return Operand.get(); }

  /// Applies the operation to a concrete value (used by the interpreter).
  static double evaluate(Opcode Op, double V);

  /// Operator spelling for printing ("sqrt", "-", ...).
  static const char *getOpcodeName(Opcode Op);

  ExprPtr clone() const override;
  std::string str() const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }
};

/// Element-wise binary operation.
class BinaryExpr : public Expr {
public:
  enum class Opcode { Add, Sub, Mul, Div, Min, Max };

private:
  Opcode Op;
  ExprPtr LHS;
  ExprPtr RHS;

public:
  BinaryExpr(Opcode Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(ExprKind::Binary), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  Opcode getOpcode() const { return Op; }
  const Expr *getLHS() const { return LHS.get(); }
  const Expr *getRHS() const { return RHS.get(); }

  /// Applies the operation to concrete values (used by the interpreter).
  static double evaluate(Opcode Op, double L, double R);

  /// Operator spelling for printing ("+", "min", ...).
  static const char *getOpcodeName(Opcode Op);

  ExprPtr clone() const override;
  std::string str() const override;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }
};

/// Invokes \p Fn on every node of \p Root in pre-order.
void walkExpr(const Expr *Root, const std::function<void(const Expr *)> &Fn);

/// Collects every array reference in \p Root, left to right.
std::vector<const ArrayRefExpr *> collectArrayRefs(const Expr *Root);

/// Counts the arithmetic operations in \p Root (unary + binary nodes); the
/// performance model charges one flop per operation.
unsigned countOps(const Expr *Root);

/// Deep-copies \p Root while rewriting references: \p RewriteArray is
/// consulted for each array reference and may return a replacement
/// expression (or null to keep the reference). Used by contraction to
/// rewrite array references into scalars.
ExprPtr cloneExprRewriting(
    const Expr *Root,
    const std::function<ExprPtr(const ArrayRefExpr &)> &RewriteArray);

// Convenience factories for building expression trees. These read
// naturally at call sites: add(aref(A, {0, -1}), cst(1.0)).
ExprPtr cst(double Value);
ExprPtr sref(const ScalarSymbol *Sym);
ExprPtr aref(const ArraySymbol *Sym, Offset Off);
/// Array reference at the null offset (A == A@0).
ExprPtr aref(const ArraySymbol *Sym);
ExprPtr add(ExprPtr L, ExprPtr R);
ExprPtr sub(ExprPtr L, ExprPtr R);
ExprPtr mul(ExprPtr L, ExprPtr R);
ExprPtr div(ExprPtr L, ExprPtr R);
ExprPtr emin(ExprPtr L, ExprPtr R);
ExprPtr emax(ExprPtr L, ExprPtr R);
ExprPtr neg(ExprPtr E);
ExprPtr esqrt(ExprPtr E);
ExprPtr eexp(ExprPtr E);
ExprPtr elog(ExprPtr E);
ExprPtr esin(ExprPtr E);
ExprPtr ecos(ExprPtr E);
ExprPtr recip(ExprPtr E);

} // namespace ir
} // namespace alf

#endif // ALF_IR_EXPR_H

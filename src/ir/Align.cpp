//===- ir/Align.cpp - Statement alignment canonicalization -----------------===//

#include "ir/Align.h"

#include "ir/Program.h"

using namespace alf;
using namespace alf::ir;

unsigned ir::alignProgram(Program &P) {
  unsigned Rewritten = 0;
  for (unsigned Pos = 0; Pos < P.numStmts(); ++Pos) {
    auto *S = dyn_cast<NormalizedStmt>(P.getStmt(Pos));
    if (!S || S->getLHSOffset().isZero())
      continue;

    Offset D = S->getLHSOffset();
    const Region &R = *S->getRegion();

    // Shifted region R+d.
    std::vector<int64_t> Lo(R.rank()), Hi(R.rank());
    for (unsigned Dim = 0; Dim < R.rank(); ++Dim) {
      Lo[Dim] = R.lo(Dim) + D[Dim];
      Hi[Dim] = R.hi(Dim) + D[Dim];
    }
    const Region *Shifted = P.internRegion(Region(std::move(Lo), std::move(Hi)));

    // References shift the other way: e' = e - d.
    ExprPtr NewRHS = cloneExprRewriting(
        S->getRHS(), [&D](const ArrayRefExpr &Ref) -> ExprPtr {
          return aref(Ref.getSymbol(), Ref.getOffset() - D);
        });

    auto Replacement = std::make_unique<NormalizedStmt>(
        Shifted, S->getLHS(), Offset::zero(D.rank()), std::move(NewRHS));
    P.removeStmt(Pos);
    P.insertStmt(Pos, std::move(Replacement));
    ++Rewritten;
  }
  return Rewritten;
}

//===- ir/Stmt.h - Array-level statements ----------------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statements of an array program basic block. `NormalizedStmt` is the
/// paper's normal form `[R] A@d0 := f(A1@d1, ..., As@ds)`; together with
/// `ReduceStmt` (element-wise reductions into scalars) these are the
/// statement kinds that participate in fusion and contraction. `CommStmt`
/// models a compiler-generated communication primitive ("communication
/// primitives need not be normalized because they are not candidates for
/// fusion or contraction", section 2.1). `OpaqueStmt` models statements that
/// could not be normalized (reductions, scans, I/O); they take part in
/// dependences conservatively but never fuse.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_STMT_H
#define ALF_IR_STMT_H

#include "ir/Expr.h"
#include "ir/Offset.h"
#include "ir/Region.h"
#include "ir/Symbol.h"
#include "semiring/Semiring.h"
#include "support/Casting.h"

#include <optional>
#include <string>
#include <vector>

namespace alf {
namespace ir {

/// One variable access made by a statement, as seen by dependence analysis.
/// `Off` is the constant reference offset when the access is representable
/// in normal form; `std::nullopt` marks an unrepresentable access (opaque
/// statements, communication), which dependence analysis treats
/// conservatively (unknown distance).
struct Access {
  const Symbol *Sym = nullptr;
  std::optional<Offset> Off;
  bool IsWrite = false;
};

/// Base class of all array-level statements.
class Stmt {
public:
  enum class StmtKind { Normalized, Reduce, Comm, Opaque };

private:
  StmtKind Kind;
  unsigned Id = 0;

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}

public:
  virtual ~Stmt();

  StmtKind getKind() const { return Kind; }

  /// Dense position of the statement in its Program (program order).
  unsigned getId() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  /// Appends every variable access this statement makes to \p Out.
  virtual void getAccesses(std::vector<Access> &Out) const = 0;

  /// Renders the statement as source-like text.
  virtual std::string str() const = 0;
};

/// The paper's normalized array statement: an element-wise computation over
/// region \p R assigning to \p LHS at constant offset \p LHSOff.
class NormalizedStmt : public Stmt {
  const Region *R;
  const ArraySymbol *LHS;
  Offset LHSOff;
  ExprPtr RHS;

public:
  NormalizedStmt(const Region *R, const ArraySymbol *LHS, Offset LHSOff,
                 ExprPtr RHS)
      : Stmt(StmtKind::Normalized), R(R), LHS(LHS), LHSOff(std::move(LHSOff)),
        RHS(std::move(RHS)) {}

  const Region *getRegion() const { return R; }
  const ArraySymbol *getLHS() const { return LHS; }
  const Offset &getLHSOffset() const { return LHSOff; }
  const Expr *getRHS() const { return RHS.get(); }

  /// Replaces the right-hand side (used by normalization/contraction).
  void setRHS(ExprPtr NewRHS) { RHS = std::move(NewRHS); }

  /// Array references on the right-hand side, left to right.
  std::vector<const ArrayRefExpr *> rhsArrayRefs() const {
    return collectArrayRefs(RHS.get());
  }

  /// True if the statement reads \p Sym on its right-hand side.
  bool readsArray(const ArraySymbol *Sym) const;

  void getAccesses(std::vector<Access> &Out) const override;
  std::string str() const override;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Normalized;
  }
};

/// A full reduction of an element-wise expression over a region into a
/// scalar accumulator (ZPL's `<<` reduction operators). Reductions are
/// element-wise over the region with constant-offset references, so they
/// participate in fusion like normalized statements — fusing a reduction
/// with the producer of its input enables contraction of the input (the
/// EP benchmark contracts *every* array this way). On a parallel machine
/// a reduction additionally costs a log2(p) cross-processor combine.
///
/// Every reduction carries the semiring whose ⊕ it folds with; the legacy
/// `ReduceOpKind {Sum, Min, Max, Or}` kinds survive as aliases of the
/// canonical registry instances (plus-times, min-plus, max-plus, or-and)
/// so existing builders keep compiling unchanged.
class ReduceStmt : public Stmt {
public:
  enum class ReduceOpKind { Sum, Min, Max, Or };

  /// The canonical registry semiring a legacy op kind is an alias of.
  static const semiring::Semiring &canonical(ReduceOpKind Op);

private:
  const Region *R;
  const ScalarSymbol *Acc;
  const semiring::Semiring *SR;
  ExprPtr Body;

public:
  ReduceStmt(const Region *R, const ScalarSymbol *Acc, ReduceOpKind Op,
             ExprPtr Body)
      : ReduceStmt(R, Acc, canonical(Op), std::move(Body)) {}

  ReduceStmt(const Region *R, const ScalarSymbol *Acc,
             const semiring::Semiring &SR, ExprPtr Body)
      : Stmt(StmtKind::Reduce), R(R), Acc(Acc), SR(&SR),
        Body(std::move(Body)) {}

  const Region *getRegion() const { return R; }
  const ScalarSymbol *getAccumulator() const { return Acc; }
  const Expr *getBody() const { return Body.get(); }

  /// The algebra this reduction folds with.
  const semiring::Semiring &getSemiring() const { return *SR; }

  /// Rebinds the reduction to another semiring (e.g. a tool-level
  /// `--semiring=` override applied after parsing).
  void setSemiring(const semiring::Semiring &NewSR) { SR = &NewSR; }

  /// The legacy op-kind view of the semiring's ⊕.
  ReduceOpKind getOp() const;

  /// Replaces the reduced expression (used by statement merging).
  void setBody(ExprPtr NewBody) { Body = std::move(NewBody); }

  /// Array references in the reduced expression, left to right.
  std::vector<const ArrayRefExpr *> bodyArrayRefs() const {
    return collectArrayRefs(Body.get());
  }

  /// The accumulator's identity element — the canonical semiring's 0̄.
  /// Thin delegates to the src/semiring table; kept so legacy callers need
  /// no semiring spelled out.
  static double identity(ReduceOpKind Op) {
    return canonical(Op).PlusIdentity;
  }

  /// Combines an accumulator value with one element value.
  static double combine(ReduceOpKind Op, double Acc, double V) {
    return canonical(Op).combine(Acc, V);
  }

  /// Operator spelling ("+", "min", "max", "or").
  static const char *getOpName(ReduceOpKind Op) {
    return canonical(Op).plusName();
  }

  void getAccesses(std::vector<Access> &Out) const override;
  std::string str() const override;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Reduce;
  }
};

/// A compiler-generated communication primitive that makes the elements of
/// \p Array referenced at offset \p Dir available locally (a halo/boundary
/// exchange under a block distribution). For dependence purposes it both
/// reads and writes the array with unrepresentable distance, which orders
/// it between the array's producers and consumers and prevents fusion
/// across it.
class CommStmt : public Stmt {
public:
  /// A whole exchange, or one half of a pipelined (split) exchange.
  enum class CommPhase { Whole, Send, Recv };

private:
  const ArraySymbol *Array;
  Offset Dir;
  CommPhase Phase;
  int PairId;

public:
  CommStmt(const ArraySymbol *Array, Offset Dir,
           CommPhase Phase = CommPhase::Whole, int PairId = -1)
      : Stmt(StmtKind::Comm), Array(Array), Dir(std::move(Dir)), Phase(Phase),
        PairId(PairId) {}

  const ArraySymbol *getArray() const { return Array; }

  /// The reference offset whose halo this transfer fills.
  const Offset &getDir() const { return Dir; }

  CommPhase getPhase() const { return Phase; }

  /// Identifier linking the Send and Recv halves of a pipelined exchange.
  int getPairId() const { return PairId; }

  void getAccesses(std::vector<Access> &Out) const override;
  std::string str() const override;

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Comm; }
};

/// A statement that could not be put into normal form. Its reads and
/// writes are declared explicitly; dependence analysis treats every access
/// as having unknown distance, so opaque statements order their neighbours
/// but never join a fusible cluster.
class OpaqueStmt : public Stmt {
  std::string Desc;
  const Region *R;
  std::vector<const ArraySymbol *> ArrayReads;
  std::vector<const ArraySymbol *> ArrayWrites;
  std::vector<const ScalarSymbol *> ScalarReads;
  std::vector<const ScalarSymbol *> ScalarWrites;
  double FlopsPerElem;
  bool GlobalReduction;

public:
  OpaqueStmt(std::string Desc, const Region *R,
             std::vector<const ArraySymbol *> ArrayReads,
             std::vector<const ArraySymbol *> ArrayWrites,
             std::vector<const ScalarSymbol *> ScalarReads,
             std::vector<const ScalarSymbol *> ScalarWrites,
             double FlopsPerElem, bool GlobalReduction)
      : Stmt(StmtKind::Opaque), Desc(std::move(Desc)), R(R),
        ArrayReads(std::move(ArrayReads)), ArrayWrites(std::move(ArrayWrites)),
        ScalarReads(std::move(ScalarReads)),
        ScalarWrites(std::move(ScalarWrites)), FlopsPerElem(FlopsPerElem),
        GlobalReduction(GlobalReduction) {}

  const std::string &getDesc() const { return Desc; }

  /// Extent of the statement's computation; null for scalar-only work.
  const Region *getRegion() const { return R; }

  const std::vector<const ArraySymbol *> &arrayReads() const {
    return ArrayReads;
  }
  const std::vector<const ArraySymbol *> &arrayWrites() const {
    return ArrayWrites;
  }
  const std::vector<const ScalarSymbol *> &scalarReads() const {
    return ScalarReads;
  }
  const std::vector<const ScalarSymbol *> &scalarWrites() const {
    return ScalarWrites;
  }

  /// Arithmetic cost per region element charged by the performance model.
  double getFlopsPerElem() const { return FlopsPerElem; }

  /// True for global reductions, which cost an extra O(log p) combine on a
  /// p-processor machine.
  bool isGlobalReduction() const { return GlobalReduction; }

  void getAccesses(std::vector<Access> &Out) const override;
  std::string str() const override;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Opaque;
  }
};

} // namespace ir
} // namespace alf

#endif // ALF_IR_STMT_H

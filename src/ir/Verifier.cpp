//===- ir/Verifier.cpp - Normal-form and program invariants ----------------===//

#include "ir/Verifier.h"

#include "ir/Program.h"
#include "support/StringUtil.h"

using namespace alf;
using namespace alf::ir;

std::vector<std::string> ir::verifyProgram(const Program &P) {
  std::vector<std::string> Errors;
  auto Report = [&Errors](std::string Msg) { Errors.push_back(std::move(Msg)); };

  unsigned ExpectedId = 0;
  for (const Stmt *S : P.stmts()) {
    if (S->getId() != ExpectedId)
      Report(formatString("statement at position %u has id %u", ExpectedId,
                          S->getId()));
    ++ExpectedId;

    if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
      const Region *R = RS->getRegion();
      unsigned Rank = R->rank();
      for (const ArrayRefExpr *Ref : RS->bodyArrayRefs()) {
        if (Ref->getSymbol()->getRank() != Rank)
          Report(formatString(
              "S%u: reduction reads %s of rank %u under a rank-%u region",
              S->getId(), Ref->getSymbol()->getName().c_str(),
              Ref->getSymbol()->getRank(), Rank));
        if (Ref->getOffset().rank() != Ref->getSymbol()->getRank())
          Report(formatString("S%u: offset rank mismatch on reference to %s",
                              S->getId(),
                              Ref->getSymbol()->getName().c_str()));
      }
      continue;
    }

    const auto *NS = dyn_cast<NormalizedStmt>(S);
    if (!NS)
      continue;

    const Region *R = NS->getRegion();
    if (!R) {
      Report(formatString("S%u: normalized statement without a region",
                          S->getId()));
      continue;
    }
    unsigned Rank = R->rank();

    // Condition (ii): common rank across the statement.
    if (NS->getLHS()->getRank() != Rank)
      Report(formatString("S%u: LHS %s has rank %u but region has rank %u",
                          S->getId(), NS->getLHS()->getName().c_str(),
                          NS->getLHS()->getRank(), Rank));
    if (NS->getLHSOffset().rank() != Rank)
      Report(formatString("S%u: LHS offset rank mismatch", S->getId()));

    for (const ArrayRefExpr *Ref : NS->rhsArrayRefs()) {
      if (Ref->getSymbol()->getRank() != Rank)
        Report(formatString(
            "S%u: reference to %s has rank %u but region has rank %u",
            S->getId(), Ref->getSymbol()->getName().c_str(),
            Ref->getSymbol()->getRank(), Rank));
      // Condition (iii): constant-offset references; structurally true, but
      // the offset must agree with the array's rank.
      if (Ref->getOffset().rank() != Ref->getSymbol()->getRank())
        Report(formatString("S%u: offset rank mismatch on reference to %s",
                            S->getId(), Ref->getSymbol()->getName().c_str()));
      // Condition (i): no array is both read and written.
      if (Ref->getSymbol() == NS->getLHS())
        Report(formatString(
            "S%u: array %s is both read and written (normal-form "
            "condition (i)); run normalizeProgram first",
            S->getId(), NS->getLHS()->getName().c_str()));
    }
  }
  return Errors;
}

bool ir::isWellFormed(const Program &P) { return verifyProgram(P).empty(); }

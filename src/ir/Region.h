//===- ir/Region.h - Rectangular index sets --------------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Region` is the rectangular index set `[l1..h1, ..., ln..hn]` that
/// defines the extent of a normalized array statement's computation (paper
/// section 2.1). Regions are interned by `Program`, so statements compare
/// regions by pointer; value equality is also provided.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_IR_REGION_H
#define ALF_IR_REGION_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace alf {
namespace ir {

/// A rank-n rectangular index set with inclusive per-dimension bounds.
class Region {
  std::vector<int64_t> Lo;
  std::vector<int64_t> Hi;

public:
  Region() = default;

  /// Constructs the region [Lo1..Hi1, ..., Lon..Hin]. Each dimension must be
  /// nonempty.
  Region(std::vector<int64_t> LoBounds, std::vector<int64_t> HiBounds)
      : Lo(std::move(LoBounds)), Hi(std::move(HiBounds)) {
    assert(Lo.size() == Hi.size() && "mismatched bound ranks");
    for (size_t D = 0; D < Lo.size(); ++D)
      assert(Lo[D] <= Hi[D] && "empty region dimension");
  }

  /// Constructs the region [1..E1, ..., 1..En] from per-dimension extents,
  /// matching the paper's canonical regions.
  static Region fromExtents(const std::vector<int64_t> &Extents) {
    std::vector<int64_t> LoBounds(Extents.size(), 1);
    return Region(std::move(LoBounds), Extents);
  }

  unsigned rank() const { return static_cast<unsigned>(Lo.size()); }

  int64_t lo(unsigned D) const {
    assert(D < Lo.size() && "region dimension out of range");
    return Lo[D];
  }

  int64_t hi(unsigned D) const {
    assert(D < Hi.size() && "region dimension out of range");
    return Hi[D];
  }

  /// Number of indices along dimension \p D.
  int64_t extent(unsigned D) const { return hi(D) - lo(D) + 1; }

  /// Total number of index tuples in the region.
  int64_t size() const {
    int64_t Product = 1;
    for (unsigned D = 0; D < rank(); ++D)
      Product *= extent(D);
    return Product;
  }

  bool operator==(const Region &RHS) const {
    return Lo == RHS.Lo && Hi == RHS.Hi;
  }
  bool operator!=(const Region &RHS) const { return !(*this == RHS); }

  /// Renders as "[l1..h1,l2..h2]".
  std::string str() const;
};

} // namespace ir
} // namespace alf

#endif // ALF_IR_REGION_H

//===- serve/KernelCache.cpp - Sharded single-flight compile cache ----------===//

#include "serve/KernelCache.h"

#include "obs/Obs.h"

#include <algorithm>

using namespace alf;
using namespace alf::serve;

const char *serve::getCacheOutcomeName(CacheOutcome O) {
  switch (O) {
  case CacheOutcome::Hit:
    return "hit";
  case CacheOutcome::Miss:
    return "miss";
  case CacheOutcome::Coalesced:
    return "coalesced";
  }
  return "?";
}

KernelCache::KernelCache(unsigned NumShards, TaskQueue *InDispatch)
    : Dispatch(InDispatch) {
  NumShards = std::max(1u, NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

KernelCache::Shard &KernelCache::shardFor(const CompileKey &Key) {
  // Mix the secondary key fields in so one hot program compiled under
  // several strategies still spreads across shards.
  uint64_t H = Key.ProgramHash;
  H ^= (static_cast<uint64_t>(Key.Strat) << 8) ^
       (static_cast<uint64_t>(Key.Mode) << 16) ^
       (static_cast<uint64_t>(Key.Verify) << 24);
  H ^= H >> 33;
  return *Shards[H % Shards.size()];
}

const KernelCache::Shard &KernelCache::shardFor(const CompileKey &Key) const {
  return const_cast<KernelCache *>(this)->shardFor(Key);
}

std::shared_ptr<const CompiledEntry>
KernelCache::get(const CompileKey &Key, const CompileFn &Compile,
                 CacheOutcome *Outcome) {
  Shard &S = shardFor(Key);
  std::shared_ptr<Slot> Sl;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Slots.find(Key);
    if (It != S.Slots.end()) {
      Sl = It->second;
    } else {
      Sl = std::make_shared<Slot>();
      S.Slots.emplace(Key, Sl);
      Owner = true;
    }
  }

  if (!Owner) {
    std::unique_lock<std::mutex> Lock(Sl->Mu);
    bool Waited = !Sl->Done;
    Sl->Ready.wait(Lock, [&] { return Sl->Done; });
    if (Waited) {
      ++NumCoalesced;
      obs::instant("serve.cache.coalesced");
      // A coalesced wait is still a request served without compiling;
      // count it as a hit too so the hit rate reads naturally.
      obs::instant("serve.cache.hit");
      if (Outcome)
        *Outcome = CacheOutcome::Coalesced;
    } else {
      ++NumHits;
      obs::instant("serve.cache.hit");
      if (Outcome)
        *Outcome = CacheOutcome::Hit;
    }
    return Sl->Entry;
  }

  ++NumMisses;
  obs::instant("serve.cache.miss");
  if (Outcome)
    *Outcome = CacheOutcome::Miss;

  auto RunAndPublish = [Sl, &Compile] {
    auto Entry = std::make_shared<const CompiledEntry>(Compile());
    std::lock_guard<std::mutex> Lock(Sl->Mu);
    Sl->Entry = std::move(Entry);
    Sl->Done = true;
    Sl->Ready.notify_all();
  };

  if (Dispatch) {
    // Run on the compile queue so pipeline work is bounded to its thread
    // budget; this caller (a connection thread) blocks like a coalesced
    // waiter, but later requests for other keys proceed unimpeded.
    Dispatch->submit(RunAndPublish);
    std::unique_lock<std::mutex> Lock(Sl->Mu);
    Sl->Ready.wait(Lock, [&] { return Sl->Done; });
    return Sl->Entry;
  }

  RunAndPublish();
  std::lock_guard<std::mutex> Lock(Sl->Mu);
  return Sl->Entry;
}

size_t KernelCache::size() const {
  size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    N += S->Slots.size();
  }
  return N;
}

KernelCache::Stats KernelCache::stats() const {
  Stats St;
  St.Hits = NumHits.load(std::memory_order_relaxed);
  St.Misses = NumMisses.load(std::memory_order_relaxed);
  St.Coalesced = NumCoalesced.load(std::memory_order_relaxed);
  return St;
}

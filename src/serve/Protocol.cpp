//===- serve/Protocol.cpp - alfd wire protocol framing ----------------------===//

#include "serve/Protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace alf;
using namespace alf::serve;

namespace {

/// Writes all of [Data, Data+Len) to \p Fd. send() with MSG_NOSIGNAL so
/// a peer that hung up yields an error return instead of SIGPIPE; plain
/// write() when the fd is not a socket (pipes in tests).
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Len bytes. 1 on success, 0 on clean EOF before the
/// first byte, -1 on error or EOF mid-read.
int readAll(int Fd, char *Data, size_t Len) {
  bool Any = false;
  while (Len > 0) {
    ssize_t N = ::read(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return Any ? -1 : 0;
    Any = true;
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return 1;
}

} // namespace

const char *serve::getFrameReadName(FrameRead R) {
  switch (R) {
  case FrameRead::Ok:
    return "ok";
  case FrameRead::Eof:
    return "eof";
  case FrameRead::TooLarge:
    return "too-large";
  case FrameRead::Malformed:
    return "malformed";
  case FrameRead::IoError:
    return "io-error";
  }
  return "?";
}

FrameRead serve::readFrame(int Fd, uint32_t MaxBytes, json::Value &Out,
                           std::string *Error) {
  auto Fail = [&](FrameRead R, const std::string &Why) {
    if (Error)
      *Error = Why;
    return R;
  };

  unsigned char LenBuf[4];
  int R = readAll(Fd, reinterpret_cast<char *>(LenBuf), sizeof(LenBuf));
  if (R == 0)
    return Fail(FrameRead::Eof, "peer closed the connection");
  if (R < 0)
    return Fail(FrameRead::IoError, "short read in the length prefix");

  uint32_t Len = (static_cast<uint32_t>(LenBuf[0]) << 24) |
                 (static_cast<uint32_t>(LenBuf[1]) << 16) |
                 (static_cast<uint32_t>(LenBuf[2]) << 8) |
                 static_cast<uint32_t>(LenBuf[3]);
  if (Len == 0)
    return Fail(FrameRead::Malformed, "zero-length frame");
  if (Len > MaxBytes)
    return Fail(FrameRead::TooLarge,
                "frame of " + std::to_string(Len) + " bytes exceeds the " +
                    std::to_string(MaxBytes) + "-byte cap");

  std::string Payload(Len, '\0');
  if (readAll(Fd, Payload.data(), Len) != 1)
    return Fail(FrameRead::IoError, "short read in the payload");

  std::string ParseError;
  std::optional<json::Value> V = json::parse(Payload, &ParseError);
  if (!V)
    return Fail(FrameRead::Malformed, "bad JSON: " + ParseError);
  if (!V->isObject())
    return Fail(FrameRead::Malformed, "frame root is not an object");
  Out = std::move(*V);
  return FrameRead::Ok;
}

bool serve::writeFrame(int Fd, const json::Value &V) {
  std::string Payload = V.str();
  if (Payload.size() > 0xffffffffu)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char LenBuf[4] = {static_cast<unsigned char>(Len >> 24),
                             static_cast<unsigned char>(Len >> 16),
                             static_cast<unsigned char>(Len >> 8),
                             static_cast<unsigned char>(Len)};
  return writeAll(Fd, reinterpret_cast<char *>(LenBuf), sizeof(LenBuf)) &&
         writeAll(Fd, Payload.data(), Payload.size());
}

json::Value serve::makeOk() {
  json::Value V = json::Value::object();
  V.set("ok", json::Value::boolean(true));
  return V;
}

json::Value serve::makeError(const std::string &Code,
                             const std::string &Message) {
  json::Value V = json::Value::object();
  V.set("ok", json::Value::boolean(false));
  V.set("error", json::Value::str(Code));
  V.set("message", json::Value::str(Message));
  return V;
}

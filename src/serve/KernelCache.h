//===- serve/KernelCache.h - Sharded single-flight compile cache -*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's in-memory cache of compiled programs, keyed by (program
/// content hash, strategy, exec mode, verify level) — everything that
/// changes the artifact. Lookups are sharded by key hash so unrelated
/// requests never contend on one mutex, and misses are single-flight: a
/// thundering herd of identical programs runs the ~300 ms parse +
/// analysis + scalarization exactly once while the rest block on the
/// entry's condition variable and share the result.
///
/// Compiles run through an optional TaskQueue (the daemon's compile
/// queue), bounding concurrent pipeline work to a fixed thread budget so
/// cold compiles never saturate the connection threads serving warm
/// executions. Failed compiles ARE cached (negatively): a daemon must
/// not re-parse a broken program per request — unlike the JIT disk
/// cache, whose retry-on-failure behavior serves interactive tools.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SERVE_KERNELCACHE_H
#define ALF_SERVE_KERNELCACHE_H

#include "driver/Pipeline.h"
#include "exec/ParallelExecutor.h"
#include "ir/Program.h"
#include "support/ThreadPool.h"
#include "verify/Verify.h"
#include "xform/Strategy.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace alf {
namespace serve {

/// Everything that changes what a compile produces. Two requests with
/// equal keys may share one artifact.
struct CompileKey {
  uint64_t ProgramHash = 0; ///< exec::hashName of the source text
  xform::Strategy Strat = xform::Strategy::C2;
  xform::ExecMode Mode = xform::ExecMode::Sequential;
  verify::VerifyLevel Verify = verify::VerifyLevel::Structural;
  /// Registry name of a reduction-algebra override ("" = none). The same
  /// source text compiled under min-plus and plus-times yields different
  /// artifacts, so the override is part of the key.
  std::string Semiring;

  bool operator<(const CompileKey &O) const {
    if (ProgramHash != O.ProgramHash)
      return ProgramHash < O.ProgramHash;
    if (Strat != O.Strat)
      return Strat < O.Strat;
    if (Mode != O.Mode)
      return Mode < O.Mode;
    if (Verify != O.Verify)
      return Verify < O.Verify;
    return Semiring < O.Semiring;
  }
};

/// One cached compile outcome — success or failure. Immutable once
/// published; connection threads execute CP's loop program concurrently
/// (the loop IR has no mutable state on the execute path). P owns the
/// symbols CP references, so the two live and die together here.
struct CompiledEntry {
  bool OK = false;
  std::string ErrorCode;    ///< "parse" or a driver::getCompileCodeName
  std::string ErrorMessage; ///< first diagnostic, one line

  /// Every verification finding ("[pass] message" renderings) behind a
  /// verify-rejected or unsafe-program failure. Cached with the entry so
  /// a negative-cache hit replays the full diagnosis, not just the
  /// leading line.
  std::vector<std::string> ErrorFindings;

  std::unique_ptr<ir::Program> P;
  std::optional<driver::CompiledProgram> CP;

  /// For ExecMode::Parallel: the schedule planned (and, at Full verify,
  /// race-checked) once at compile time and reused by every execution.
  std::optional<exec::ParallelSchedule> Sched;

  unsigned NumClusters = 0;
  std::vector<std::string> ContractedNames;
  uint64_t CompileNs = 0; ///< wall time of the winning compile
};

/// How one get() was served.
enum class CacheOutcome {
  Hit,       ///< Entry was ready.
  Miss,      ///< This call ran the compile.
  Coalesced, ///< Another in-flight call ran it; this one waited.
};

/// Printable name ("hit", "miss", "coalesced") — stable wire strings.
const char *getCacheOutcomeName(CacheOutcome O);

/// The sharded single-flight cache. Thread-safe; entries are never
/// evicted (a daemon restart is the flush — program working sets are
/// small next to kernel memory).
class KernelCache {
public:
  using CompileFn = std::function<CompiledEntry()>;

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Coalesced = 0;
  };

  /// \p Dispatch, when non-null, runs every compile (bounding their
  /// concurrency); it must outlive the cache. Null compiles inline on
  /// the calling thread.
  explicit KernelCache(unsigned NumShards = 8, TaskQueue *Dispatch = nullptr);

  KernelCache(const KernelCache &) = delete;
  KernelCache &operator=(const KernelCache &) = delete;

  /// Returns the entry for \p Key, running \p Compile iff this is the
  /// first request for it. Hit and Coalesced callers never run
  /// \p Compile. Blocks until the entry is ready. \p Outcome (optional)
  /// reports how the call was served; obs instants `serve.cache.hit`
  /// (hits and coalesced waits — requests served without compiling),
  /// `serve.cache.miss` and `serve.cache.coalesced` feed the metrics
  /// table.
  std::shared_ptr<const CompiledEntry> get(const CompileKey &Key,
                                           const CompileFn &Compile,
                                           CacheOutcome *Outcome = nullptr);

  /// Entries resident (ready or in flight).
  size_t size() const;

  Stats stats() const;

private:
  struct Slot {
    std::mutex Mu;
    std::condition_variable Ready;
    bool Done = false;
    std::shared_ptr<const CompiledEntry> Entry;
  };

  struct Shard {
    mutable std::mutex Mu;
    std::map<CompileKey, std::shared_ptr<Slot>> Slots;
  };

  Shard &shardFor(const CompileKey &Key);
  const Shard &shardFor(const CompileKey &Key) const;

  std::vector<std::unique_ptr<Shard>> Shards;
  TaskQueue *Dispatch;
  std::atomic<uint64_t> NumHits{0}, NumMisses{0}, NumCoalesced{0};
};

} // namespace serve
} // namespace alf

#endif // ALF_SERVE_KERNELCACHE_H

//===- serve/Client.cpp - alfd client connection ----------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace alf;
using namespace alf::serve;

bool Client::connect(const std::string &SocketPath, std::string *Error) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Error)
      *Error = "connect " + SocketPath + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::request(const json::Value &Req, json::Value &Resp,
                     std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Req)) {
    if (Error)
      *Error = "write failed";
    close();
    return false;
  }
  std::string Why;
  FrameRead R = readFrame(Fd, DefaultMaxFrameBytes, Resp, &Why);
  if (R != FrameRead::Ok) {
    if (Error)
      *Error = std::string(getFrameReadName(R)) + ": " + Why;
    close();
    return false;
  }
  return true;
}

json::Value Client::makeHealth() {
  json::Value V = json::Value::object();
  V.set("op", json::Value::str("health"));
  return V;
}

json::Value Client::makeStats() {
  json::Value V = json::Value::object();
  V.set("op", json::Value::str("stats"));
  return V;
}

json::Value Client::makeShutdown() {
  json::Value V = json::Value::object();
  V.set("op", json::Value::str("shutdown"));
  return V;
}

json::Value Client::makeCompile(const std::string &Program,
                                const std::string &Strategy,
                                const std::string &Exec,
                                const std::string &Verify,
                                const std::string &Semiring) {
  json::Value V = json::Value::object();
  V.set("op", json::Value::str("compile"));
  V.set("program", json::Value::str(Program));
  if (!Strategy.empty())
    V.set("strategy", json::Value::str(Strategy));
  if (!Exec.empty())
    V.set("exec", json::Value::str(Exec));
  if (!Verify.empty())
    V.set("verify", json::Value::str(Verify));
  if (!Semiring.empty())
    V.set("semiring", json::Value::str(Semiring));
  return V;
}

json::Value Client::makeExecute(const std::string &Program,
                                const std::string &Strategy,
                                const std::string &Exec,
                                const std::string &Verify, uint64_t Seed,
                                const std::string &Semiring) {
  json::Value V = makeCompile(Program, Strategy, Exec, Verify, Semiring);
  V.set("op", json::Value::str("execute"));
  V.set("seed", json::Value::number(static_cast<double>(Seed)));
  return V;
}

//===- serve/Server.cpp - alfd Unix-socket compile/execute server -----------===//

#include "serve/Server.h"

#include "exec/Storage.h"
#include "frontend/Parser.h"
#include "obs/Obs.h"
#include "support/Statistic.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace alf;
using namespace alf::serve;

ALF_STATISTIC(NumServeRequests, "serve", "Requests handled by the daemon");
ALF_STATISTIC(NumServeCompiles, "serve",
              "Cache-miss compiles run by the daemon");

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-request RAII admission token.
class InFlightToken {
  std::atomic<uint64_t> &Counter;

public:
  explicit InFlightToken(std::atomic<uint64_t> &C) : Counter(C) {
    Counter.fetch_add(1, std::memory_order_relaxed);
  }
  ~InFlightToken() { Counter.fetch_sub(1, std::memory_order_relaxed); }
};

json::Value metricRowJson(const std::string &Name) {
  json::Value V = json::Value::object();
  std::optional<obs::MetricRow> Row = obs::metricsFor(Name);
  if (!Row)
    return V;
  V.set("count", json::Value::number(static_cast<double>(Row->Count)));
  V.set("p50_us",
        json::Value::number(static_cast<double>(Row->P50Ns) / 1000.0));
  V.set("p95_us",
        json::Value::number(static_cast<double>(Row->P95Ns) / 1000.0));
  V.set("max_us",
        json::Value::number(static_cast<double>(Row->MaxNs) / 1000.0));
  return V;
}

} // namespace

/// One live connection: the fd plus the thread draining it.
struct Server::Conn {
  int Fd = -1;
  std::thread Worker;
};

Server::Server(ServerOptions InOpts) : Opts(std::move(InOpts)) {
  Opts.CompileThreads = std::max(1u, Opts.CompileThreads);
  CompileQueue = std::make_unique<TaskQueue>(Opts.CompileThreads);
  Cache = std::make_unique<KernelCache>(Opts.CacheShards, CompileQueue.get());
  Jit = std::make_unique<exec::JitEngine>(Opts.Jit);
  exec::JitOptions SimdOpts = Opts.Jit;
  SimdOpts.Vectorize = true;
  JitSimd = std::make_unique<exec::JitEngine>(SimdOpts);
}

Server::~Server() {
  stop();
  wait();
}

bool Server::start(std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  if (Opts.SocketPath.empty()) {
    if (Error)
      *Error = "no socket path configured";
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + Opts.SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Fail("bind " + Opts.SocketPath);
  if (::listen(ListenFd, 64) < 0)
    return Fail("listen");

  // The stats op reports latency percentiles from the obs metrics
  // table; make sure something is feeding it.
  if (obs::level() == obs::ObsLevel::Off)
    obs::setLevel(obs::ObsLevel::Counters);

  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  while (!Stopping.load(std::memory_order_acquire)) {
    pollfd Pfd;
    Pfd.fd = ListenFd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int R = ::poll(&Pfd, 1, /*timeout ms=*/100);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0 || !(Pfd.revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    NumConnections.fetch_add(1, std::memory_order_relaxed);
    // Register under the lock with the thread already started, so
    // teardown (which swaps the list under the same lock after joining
    // this acceptor) always sees a joinable worker.
    std::lock_guard<std::mutex> Lock(ConnMu);
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    C->Worker = std::thread([this, Fd] { handleConnection(Fd); });
    Conns.push_back(std::move(C));
  }
}

void Server::handleConnection(int Fd) {
  for (;;) {
    json::Value Req;
    std::string Why;
    FrameRead R = readFrame(Fd, Opts.MaxProgramBytes, Req, &Why);
    if (R == FrameRead::Eof || R == FrameRead::IoError)
      break;
    if (R == FrameRead::TooLarge) {
      NumRejectedTooLarge.fetch_add(1, std::memory_order_relaxed);
      writeFrame(Fd, makeError("too-large", Why));
      break; // the stream is out of sync; hang up
    }
    if (R == FrameRead::Malformed) {
      NumMalformed.fetch_add(1, std::memory_order_relaxed);
      writeFrame(Fd, makeError("malformed", Why));
      break;
    }
    json::Value Resp = handleRequest(Req);
    if (!writeFrame(Fd, Resp))
      break;
    std::optional<std::string> Op = Req.getString("op");
    if (Op && *Op == "shutdown")
      break;
  }
  ::shutdown(Fd, SHUT_RDWR);
  ::close(Fd);
}

json::Value Server::handleRequest(const json::Value &Req) {
  NumRequests.fetch_add(1, std::memory_order_relaxed);
  ++NumServeRequests;
  std::optional<std::string> Op = Req.getString("op");
  if (!Op)
    return makeError("malformed", "request has no \"op\" member");

  if (*Op == "health")
    return handleHealth();
  if (*Op == "stats")
    return handleStats();
  if (*Op == "shutdown") {
    stop();
    json::Value V = makeOk();
    V.set("stopping", json::Value::boolean(true));
    return V;
  }

  if (*Op != "compile" && *Op != "execute")
    return makeError("unknown-op", "unknown op \"" + *Op + "\"");

  if (Stopping.load(std::memory_order_acquire))
    return makeError("shutting-down", "daemon is shutting down");

  // Admission: cap concurrent compile/execute work. health/stats stay
  // exempt so operators can always look in.
  if (NumInFlight.load(std::memory_order_relaxed) >= Opts.MaxInFlight) {
    NumRejectedBusy.fetch_add(1, std::memory_order_relaxed);
    return makeError("busy",
                     "more than " + std::to_string(Opts.MaxInFlight) +
                         " requests in flight");
  }
  InFlightToken Token(NumInFlight);

  if (*Op == "compile") {
    NumCompileReqs.fetch_add(1, std::memory_order_relaxed);
    obs::Span S("serve.request.compile");
    return handleCompile(Req, /*ForExecute=*/false, nullptr);
  }
  NumExecuteReqs.fetch_add(1, std::memory_order_relaxed);
  obs::Span S("serve.request.execute");
  return handleExecute(Req);
}

json::Value Server::handleHealth() const {
  json::Value V = makeOk();
  V.set("service", json::Value::str("alfd"));
  V.set("status", json::Value::str("ok"));
  V.set("protocol", json::Value::number(ProtocolVersion));
  return V;
}

json::Value Server::handleStats() const {
  json::Value V = statsJson();
  V.set("ok", json::Value::boolean(true));
  return V;
}

json::Value Server::statsJson() const {
  json::Value V = json::Value::object();

  json::Value Reqs = json::Value::object();
  Reqs.set("total", json::Value::number(static_cast<double>(
                        NumRequests.load(std::memory_order_relaxed))));
  Reqs.set("compile", json::Value::number(static_cast<double>(
                          NumCompileReqs.load(std::memory_order_relaxed))));
  Reqs.set("execute", json::Value::number(static_cast<double>(
                          NumExecuteReqs.load(std::memory_order_relaxed))));
  Reqs.set("connections", json::Value::number(static_cast<double>(
                              NumConnections.load(std::memory_order_relaxed))));
  Reqs.set("in_flight", json::Value::number(static_cast<double>(
                            NumInFlight.load(std::memory_order_relaxed))));
  V.set("requests", Reqs);

  KernelCache::Stats CS = Cache->stats();
  json::Value CacheV = json::Value::object();
  CacheV.set("entries",
             json::Value::number(static_cast<double>(Cache->size())));
  CacheV.set("hits", json::Value::number(static_cast<double>(CS.Hits)));
  CacheV.set("misses", json::Value::number(static_cast<double>(CS.Misses)));
  CacheV.set("coalesced",
             json::Value::number(static_cast<double>(CS.Coalesced)));
  V.set("cache", CacheV);

  json::Value Adm = json::Value::object();
  Adm.set("rejected_busy",
          json::Value::number(static_cast<double>(
              NumRejectedBusy.load(std::memory_order_relaxed))));
  Adm.set("rejected_too_large",
          json::Value::number(static_cast<double>(
              NumRejectedTooLarge.load(std::memory_order_relaxed))));
  Adm.set("malformed", json::Value::number(static_cast<double>(
                           NumMalformed.load(std::memory_order_relaxed))));
  V.set("admission", Adm);

  json::Value Lat = json::Value::object();
  Lat.set("execute", metricRowJson("serve.request.execute"));
  Lat.set("compile", metricRowJson("serve.request.compile"));
  Lat.set("jit_compile", metricRowJson("jit.compile"));
  V.set("latency", Lat);
  return V;
}

json::Value Server::handleCompile(
    const json::Value &Req, bool ForExecute,
    std::shared_ptr<const CompiledEntry> *OutEntry) {
  std::optional<std::string> Program = Req.getString("program");
  if (!Program)
    return makeError("malformed", "request has no \"program\" member");
  if (Program->size() > Opts.MaxProgramBytes) {
    NumRejectedTooLarge.fetch_add(1, std::memory_order_relaxed);
    return makeError("too-large",
                     "program of " + std::to_string(Program->size()) +
                         " bytes exceeds the " +
                         std::to_string(Opts.MaxProgramBytes) + "-byte cap");
  }

  CompileKey Key;
  Key.ProgramHash = exec::hashName(*Program);
  Key.Verify = Opts.Verify;
  if (std::optional<std::string> S = Req.getString("strategy")) {
    std::optional<xform::Strategy> St = xform::strategyNamed(*S);
    if (!St)
      return makeError("malformed", "unknown strategy \"" + *S + "\"");
    Key.Strat = *St;
  }
  if (std::optional<std::string> S = Req.getString("exec")) {
    std::optional<xform::ExecMode> M = xform::execModeNamed(*S);
    if (!M)
      return makeError("malformed", "unknown exec mode \"" + *S + "\"");
    Key.Mode = *M;
  }
  if (std::optional<std::string> S = Req.getString("verify")) {
    std::optional<verify::VerifyLevel> L = verify::verifyLevelNamed(*S);
    if (!L)
      return makeError("malformed", "unknown verify level \"" + *S + "\"");
    Key.Verify = *L;
  }
  const semiring::Semiring *SemiringSel = nullptr;
  if (std::optional<std::string> S = Req.getString("semiring")) {
    SemiringSel = semiring::byName(*S);
    if (!SemiringSel)
      return makeError("malformed", "unknown semiring \"" + *S +
                                        "\" (expected " +
                                        semiring::allNames() + ")");
    Key.Semiring = SemiringSel->Name;
  }

  CacheOutcome Outcome = CacheOutcome::Hit;
  std::shared_ptr<const CompiledEntry> Entry = Cache->get(
      Key,
      [&]() -> CompiledEntry {
        ++NumServeCompiles;
        CompiledEntry E;
        uint64_t T0 = nowNs();
        frontend::ParseResult PR = frontend::parseProgram(
            *Program, "serve-" + std::to_string(Key.ProgramHash));
        if (!PR.succeeded()) {
          E.ErrorCode = "parse";
          E.ErrorMessage = PR.Errors.empty() ? "parse failed"
                                             : PR.Errors.front();
          E.CompileNs = nowNs() - T0;
          return E;
        }
        E.P = std::move(PR.Prog);
        if (SemiringSel)
          // Rebind every reduction's algebra before any analysis, so the
          // override flows through strategy, verification and execution
          // exactly as zplc's --semiring does.
          for (unsigned Id = 0; Id < E.P->numStmts(); ++Id)
            if (auto *RS = dyn_cast<ir::ReduceStmt>(E.P->getStmt(Id)))
              RS->setSemiring(*SemiringSel);
        driver::PipelineOptions PO;
        PO.Verify = Key.Verify;
        PO.Jit = Opts.Jit;
        PO.Parallel = Opts.Parallel;
        driver::Pipeline PL(*E.P, PO);
        driver::CompileRequest CReq;
        CReq.Strat = Key.Strat;
        driver::CompileStatus St = PL.tryCompile(CReq);
        if (!St.ok()) {
          E.ErrorCode = driver::getCompileCodeName(St.Code);
          E.ErrorMessage = St.Message;
          for (const verify::VerifyFinding &F : St.Findings.Findings)
            E.ErrorFindings.push_back(F.str());
          E.CompileNs = nowNs() - T0;
          return E;
        }
        E.CP = std::move(St.Artifact);
        E.NumClusters = E.CP->NumClusters;
        E.ContractedNames = E.CP->ContractedNames;
        if (Key.Mode == xform::ExecMode::Parallel) {
          // Plan (and under Full verify, race-check) the schedule once;
          // every execution reuses the certified plan.
          exec::ParallelSchedule Sched = exec::planParallelism(E.CP->LP);
          if (Key.Verify >= verify::VerifyLevel::Full) {
            verify::VerifyReport R =
                verify::verifyParallelSafety(E.CP->LP, Sched);
            if (!R.ok()) {
              E.ErrorCode = "verify-rejected";
              E.ErrorMessage = R.Findings.front().str();
              for (const verify::VerifyFinding &F : R.Findings)
                E.ErrorFindings.push_back(F.str());
              E.CP.reset();
              E.CompileNs = nowNs() - T0;
              return E;
            }
          }
          E.Sched = std::move(Sched);
        }
        E.OK = true;
        E.CompileNs = nowNs() - T0;
        return E;
      },
      &Outcome);

  if (OutEntry)
    *OutEntry = Entry;
  if (!Entry->OK) {
    json::Value V = makeError(Entry->ErrorCode, Entry->ErrorMessage);
    // Rejections carry every finding, so a client sees the whole static
    // diagnosis (e.g. each unsafe access) rather than the first line —
    // including on negative-cache hits, which replay this entry. The
    // cache outcome makes that replay observable.
    V.set("cache", json::Value::str(getCacheOutcomeName(Outcome)));
    if (!Entry->ErrorFindings.empty()) {
      json::Value Findings = json::Value::array();
      for (const std::string &F : Entry->ErrorFindings)
        Findings.push(json::Value::str(F));
      V.set("findings", Findings);
    }
    return V;
  }

  json::Value V = makeOk();
  V.set("cache", json::Value::str(getCacheOutcomeName(Outcome)));
  V.set("strategy", json::Value::str(xform::getStrategyName(Key.Strat)));
  V.set("exec", json::Value::str(xform::getExecModeName(Key.Mode)));
  V.set("verify",
        json::Value::str(verify::getVerifyLevelName(Key.Verify)));
  V.set("clusters",
        json::Value::number(static_cast<double>(Entry->NumClusters)));
  json::Value Contracted = json::Value::array();
  for (const std::string &Name : Entry->ContractedNames)
    Contracted.push(json::Value::str(Name));
  V.set("contracted", Contracted);
  V.set("compile_us", json::Value::number(
                          static_cast<double>(Entry->CompileNs) / 1000.0));
  (void)ForExecute; // same payload either way; execute appends results
  return V;
}

json::Value Server::handleExecute(const json::Value &Req) {
  std::shared_ptr<const CompiledEntry> Entry;
  json::Value CompileResp =
      handleCompile(Req, /*ForExecute=*/true, &Entry);
  std::optional<bool> OK = CompileResp.getBool("ok");
  if (!OK || !*OK || !Entry || !Entry->OK)
    return CompileResp;

  uint64_t Seed = 0;
  if (std::optional<double> S = Req.getNumber("seed"))
    Seed = static_cast<uint64_t>(*S);

  std::optional<xform::ExecMode> Mode =
      xform::execModeNamed(*CompileResp.getString("exec"));
  exec::RunResult RR;
  exec::JitRunInfo JitInfo;
  switch (*Mode) {
  case xform::ExecMode::Sequential:
    RR = exec::run(Entry->CP->LP, Seed);
    break;
  case xform::ExecMode::Parallel:
    RR = exec::runParallel(Entry->CP->LP, Seed, Opts.Parallel, *Entry->Sched);
    break;
  case xform::ExecMode::NativeJit:
    RR = Jit->run(Entry->CP->LP, Seed, &JitInfo);
    break;
  case xform::ExecMode::NativeJitSimd:
    RR = JitSimd->run(Entry->CP->LP, Seed, &JitInfo);
    break;
  }

  json::Value V = CompileResp;
  json::Value Scalars = json::Value::object();
  for (const auto &[Name, Val] : RR.ScalarsOut)
    Scalars.set(Name, json::Value::number(Val));
  V.set("scalars", Scalars);
  json::Value Arrays = json::Value::object();
  for (const auto &[Name, Data] : RR.LiveOut) {
    json::Value A = json::Value::object();
    A.set("elements",
          json::Value::number(static_cast<double>(Data.size())));
    double Sum = 0.0;
    for (double D : Data)
      Sum += D;
    A.set("sum", json::Value::number(Sum));
    Arrays.set(Name, A);
  }
  V.set("arrays", Arrays);
  if (*Mode == xform::ExecMode::NativeJit ||
      *Mode == xform::ExecMode::NativeJitSimd) {
    json::Value J = json::Value::object();
    J.set("used_jit", json::Value::boolean(JitInfo.UsedJit));
    J.set("compiled", json::Value::boolean(JitInfo.Compiled));
    if (!JitInfo.FallbackReason.empty())
      J.set("fallback", json::Value::str(JitInfo.FallbackReason));
    if (*Mode == xform::ExecMode::NativeJitSimd) {
      J.set("vectorized_nests",
            json::Value::number(
                static_cast<double>(JitInfo.VectorizedNests)));
      J.set("vector_fallbacks",
            json::Value::number(
                static_cast<double>(JitInfo.VectorFallbacks)));
      J.set("reassociated", json::Value::boolean(JitInfo.Reassociated));
    }
    V.set("jit", J);
  }
  return V;
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> Lock(ShutdownMu);
    ShutdownRequested = true;
  }
  ShutdownCv.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> Lock(ShutdownMu);
    ShutdownCv.wait(Lock, [&] { return ShutdownRequested; });
  }
  // Teardown is idempotent and runs at most once: the first waiter (or
  // the destructor) flips Stopping and joins everything.
  if (Stopping.exchange(true, std::memory_order_acq_rel))
    return;
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  std::vector<std::unique_ptr<Conn>> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    ToJoin.swap(Conns);
  }
  for (auto &C : ToJoin) {
    // Unblock a worker parked in readFrame; its own close() then runs
    // on an already-shut-down fd, which is harmless.
    ::shutdown(C->Fd, SHUT_RDWR);
    if (C->Worker.joinable())
      C->Worker.join();
  }
  if (!Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

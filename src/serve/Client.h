//===- serve/Client.h - alfd client connection -----------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A blocking client for the alfd protocol: connect to the daemon's
/// Unix socket, exchange framed JSON requests one at a time. alfc and
/// the load harness are thin wrappers over this; tests drive it against
/// an in-process Server.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SERVE_CLIENT_H
#define ALF_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <cstdint>
#include <string>

namespace alf {
namespace serve {

/// One connection to a daemon. Not thread-safe; one per thread.
class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon at \p SocketPath; false with \p Error set on
  /// failure.
  bool connect(const std::string &SocketPath, std::string *Error = nullptr);

  bool connected() const { return Fd >= 0; }
  void close();

  /// One request/response round trip. False with \p Error set on any
  /// framing or transport failure (the connection is then closed — the
  /// stream may be out of sync).
  bool request(const json::Value &Req, json::Value &Resp,
               std::string *Error = nullptr);

  // --- request builders ---
  static json::Value makeHealth();
  static json::Value makeStats();
  static json::Value makeShutdown();
  /// \p Strategy/\p Exec/\p Verify/\p Semiring may be empty to take the
  /// daemon's defaults (for \p Semiring: each reduction's declared
  /// algebra).
  static json::Value makeCompile(const std::string &Program,
                                 const std::string &Strategy = "",
                                 const std::string &Exec = "",
                                 const std::string &Verify = "",
                                 const std::string &Semiring = "");
  static json::Value makeExecute(const std::string &Program,
                                 const std::string &Strategy = "",
                                 const std::string &Exec = "",
                                 const std::string &Verify = "",
                                 uint64_t Seed = 0,
                                 const std::string &Semiring = "");

private:
  int Fd = -1;
};

} // namespace serve
} // namespace alf

#endif // ALF_SERVE_CLIENT_H

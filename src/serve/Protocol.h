//===- serve/Protocol.h - alfd wire protocol framing -----------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alfd wire protocol: a stream of frames over a Unix-domain stream
/// socket, each frame a 4-byte big-endian payload length followed by one
/// JSON object. Requests carry an `"op"` member ("health", "stats",
/// "compile", "execute", "shutdown"); responses carry `"ok": true|false`
/// plus either the op's result members or `"error"`/`"message"`. The
/// length prefix bounds what the server must buffer before parsing, so
/// admission control (max program bytes) happens before any JSON work.
///
/// Malformed input is classified, not guessed at: a zero-length frame,
/// non-JSON payload or non-object root is Malformed (the peer is
/// confused; answer once and hang up), a length above the cap is
/// TooLarge (the peer may be fine but this frame is inadmissible), EOF
/// between frames is a clean disconnect.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SERVE_PROTOCOL_H
#define ALF_SERVE_PROTOCOL_H

#include "support/Json.h"

#include <cstdint>
#include <string>

namespace alf {
namespace serve {

/// Bumped on any incompatible framing or schema change; `health` reports
/// it so clients can refuse to talk to a future daemon.
constexpr uint32_t ProtocolVersion = 1;

/// Default cap on one frame's payload (1 MiB) — generous for programs,
/// small enough that a hostile length prefix cannot balloon memory.
constexpr uint32_t DefaultMaxFrameBytes = 1u << 20;

/// Outcome of one readFrame call.
enum class FrameRead {
  Ok,        ///< A frame was read and parsed into an object.
  Eof,       ///< Clean EOF on the frame boundary (peer hung up).
  TooLarge,  ///< Length prefix exceeds the cap; payload not read.
  Malformed, ///< Zero length, bad JSON, or a non-object root.
  IoError,   ///< Short read mid-frame or a socket error.
};

/// Printable name of \p R ("ok", "eof", "too-large", "malformed",
/// "io-error").
const char *getFrameReadName(FrameRead R);

/// Reads one length-prefixed frame from \p Fd into \p Out. Blocks until
/// a full frame (or failure). On TooLarge the oversized payload is left
/// unread — the caller should answer and close, since the stream is no
/// longer in sync. \p Error (optional) gets a one-line reason for any
/// non-Ok outcome.
FrameRead readFrame(int Fd, uint32_t MaxBytes, json::Value &Out,
                    std::string *Error = nullptr);

/// Serializes \p V and writes it as one frame. False on any write error
/// (the connection is then unusable).
bool writeFrame(int Fd, const json::Value &V);

/// `{"ok": true}` — extend with op-specific members.
json::Value makeOk();

/// `{"ok": false, "error": code, "message": message}`. Codes are stable
/// wire strings: "malformed", "too-large", "busy", "unknown-op",
/// "parse", "invalid-program", "verify-rejected", "unsafe-program",
/// "shutting-down". Compile rejections additionally carry a "findings"
/// array with every "[pass] message" diagnostic (see Server.cpp).
json::Value makeError(const std::string &Code, const std::string &Message);

} // namespace serve
} // namespace alf

#endif // ALF_SERVE_PROTOCOL_H

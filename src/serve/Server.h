//===- serve/Server.h - alfd Unix-socket compile/execute server -*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alfd server: listens on a Unix-domain socket, reads framed JSON
/// requests (serve/Protocol.h), and serves five ops:
///
///   health   -> {"ok", "service":"alfd", "protocol":N}
///   stats    -> request counters, cache hit/miss/coalesced, admission
///               rejections, request-latency p50/p95 from the obs table
///   compile  -> parse + Pipeline::tryCompile through the kernel cache;
///               reports the cache outcome and the strategy's numbers
///   execute  -> compile (cached) then run under the requested exec
///               mode; returns scalars and per-array digests
///   shutdown -> acknowledges, then stops the daemon
///
/// Threading model: one accept loop, one thread per connection, one
/// shared KernelCache whose misses run on a TaskQueue of
/// CompileThreads workers — so a cold ~300 ms compile occupies a
/// compile-queue slot, not a connection thread's attention, and warm
/// executes of already-cached programs proceed concurrently. A shared
/// JitEngine backs ExecMode::NativeJit (its own single-flight keeps a
/// kernel herd to one cc invocation). Admission control caps concurrent
/// in-flight requests (busy error) and program bytes (too-large before
/// any parsing, enforced by the frame cap).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SERVE_SERVER_H
#define ALF_SERVE_SERVER_H

#include "serve/KernelCache.h"
#include "serve/Protocol.h"

#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "support/ThreadPool.h"
#include "verify/Verify.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace alf {
namespace serve {

/// Configuration of one Server.
struct ServerOptions {
  /// Filesystem path the daemon listens on (required). An existing
  /// socket file at this path is replaced.
  std::string SocketPath;

  /// Workers on the compile queue — the bound on concurrently running
  /// pipeline compiles.
  unsigned CompileThreads = 2;

  /// Shards of the kernel cache.
  unsigned CacheShards = 8;

  /// Admission: concurrent requests beyond this are refused with "busy".
  unsigned MaxInFlight = 64;

  /// Admission: programs larger than this are refused with "too-large".
  /// Also the frame cap, so an oversized request is rejected from its
  /// length prefix without buffering the payload.
  uint32_t MaxProgramBytes = DefaultMaxFrameBytes;

  /// Verify level compiles run at when the request does not name one.
  verify::VerifyLevel Verify = verify::defaultVerifyLevel();

  exec::JitOptions Jit;
  exec::ParallelOptions Parallel;
};

/// A running daemon. start() spawns the accept loop and returns; wait()
/// blocks until a shutdown request (or stop()) arrives. One Server per
/// socket path.
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens; false with \p Error set when the socket cannot
  /// be set up. Raises the obs level to Counters when it is Off so the
  /// stats op always has latency data.
  bool start(std::string *Error);

  /// Blocks until a client's shutdown op or a stop() call, then tears
  /// the server down (joins every thread, removes the socket file).
  void wait();

  /// Requests shutdown from outside (signal handlers set a flag and call
  /// this from the main thread). Idempotent; safe before wait().
  void stop();

  /// The stats-op payload, also available in-process (alfd_load asserts
  /// on it after a run).
  json::Value statsJson() const;

  const ServerOptions &options() const { return Opts; }

private:
  struct Conn;

  void acceptLoop();
  void handleConnection(int Fd);
  json::Value handleRequest(const json::Value &Req);
  json::Value handleCompile(const json::Value &Req, bool ForExecute,
                            std::shared_ptr<const CompiledEntry> *OutEntry);
  json::Value handleExecute(const json::Value &Req);
  json::Value handleStats() const;
  json::Value handleHealth() const;

  ServerOptions Opts;

  int ListenFd = -1;
  std::thread Acceptor;
  std::atomic<bool> Stopping{false};

  std::mutex ConnMu;
  std::vector<std::unique_ptr<Conn>> Conns;

  mutable std::mutex ShutdownMu;
  std::condition_variable ShutdownCv;
  bool ShutdownRequested = false;

  std::unique_ptr<TaskQueue> CompileQueue;
  std::unique_ptr<KernelCache> Cache;
  std::unique_ptr<exec::JitEngine> Jit;
  std::unique_ptr<exec::JitEngine> JitSimd; // Opts.Jit with Vectorize on

  // Request counters (stats op).
  std::atomic<uint64_t> NumRequests{0}, NumCompileReqs{0}, NumExecuteReqs{0},
      NumRejectedBusy{0}, NumRejectedTooLarge{0}, NumMalformed{0};
  std::atomic<uint64_t> NumInFlight{0};
  std::atomic<uint64_t> NumConnections{0};
};

} // namespace serve
} // namespace alf

#endif // ALF_SERVE_SERVER_H

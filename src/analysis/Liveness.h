//===- analysis/Liveness.h - Array live ranges -----------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the allocation interval of every array in a Program and the
/// peak number of simultaneously live (allocated) arrays — the paper's `l`
/// in section 5.3: "maximum problem size is inversely proportional to the
/// maximum number of simultaneously live arrays". The paper's Figure 8
/// compares this quantity before (`lb`) and after (`la`) contraction.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_ANALYSIS_LIVENESS_H
#define ALF_ANALYSIS_LIVENESS_H

#include "ir/Program.h"

#include <functional>
#include <vector>

namespace alf {
namespace analysis {

/// The allocation interval of one array: the array must hold storage from
/// statement position First through Last (inclusive). Live-in arrays start
/// at position 0, live-out arrays extend to the last statement.
struct LiveInterval {
  const ir::ArraySymbol *Array = nullptr;
  unsigned First = 0;
  unsigned Last = 0;
};

/// Live intervals of every allocated array in a program.
class LivenessInfo {
  std::vector<LiveInterval> Intervals;
  unsigned NumStmts = 0;

public:
  /// Computes intervals. Arrays that are never referenced and not
  /// live-in/live-out need no storage and get no interval.
  static LivenessInfo compute(const ir::Program &P);

  const std::vector<LiveInterval> &intervals() const { return Intervals; }

  /// Peak number of arrays simultaneously allocated, over arrays accepted
  /// by \p Filter (pass an always-true filter for the paper's `lb`; filter
  /// out contracted arrays for `la`).
  unsigned
  peakLive(const std::function<bool(const ir::ArraySymbol *)> &Filter) const;

  /// Peak over all arrays.
  unsigned peakLive() const;
};

} // namespace analysis
} // namespace alf

#endif // ALF_ANALYSIS_LIVENESS_H

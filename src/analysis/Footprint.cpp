//===- analysis/Footprint.cpp - Array allocation bounds --------------------===//

#include "analysis/Footprint.h"

#include <algorithm>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;

namespace {

/// Accumulates the union of shifted regions for one array.
struct BoundsAccum {
  bool Valid = false;
  std::vector<int64_t> Lo;
  std::vector<int64_t> Hi;

  void include(const Region &R, const Offset &Off) {
    if (!Valid) {
      Lo.resize(R.rank());
      Hi.resize(R.rank());
      for (unsigned D = 0; D < R.rank(); ++D) {
        Lo[D] = R.lo(D) + Off[D];
        Hi[D] = R.hi(D) + Off[D];
      }
      Valid = true;
      return;
    }
    for (unsigned D = 0; D < R.rank(); ++D) {
      Lo[D] = std::min(Lo[D], R.lo(D) + Off[D]);
      Hi[D] = std::max(Hi[D], R.hi(D) + Off[D]);
    }
  }

  void include(const Region &R) { include(R, Offset::zero(R.rank())); }
};

} // namespace

FootprintInfo FootprintInfo::compute(const ir::Program &P) {
  std::vector<BoundsAccum> Accums(P.numSymbols());

  for (const Stmt *S : P.stmts()) {
    if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
      const Region &R = *NS->getRegion();
      Accums[NS->getLHS()->getId()].include(R, NS->getLHSOffset());
      for (const ArrayRefExpr *Ref : NS->rhsArrayRefs())
        Accums[Ref->getSymbol()->getId()].include(R, Ref->getOffset());
      continue;
    }
    if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
      const Region &R = *RS->getRegion();
      for (const ArrayRefExpr *Ref : RS->bodyArrayRefs())
        Accums[Ref->getSymbol()->getId()].include(R, Ref->getOffset());
      continue;
    }
    if (const auto *OS = dyn_cast<OpaqueStmt>(S)) {
      if (!OS->getRegion())
        continue;
      const Region &R = *OS->getRegion();
      for (const ArraySymbol *A : OS->arrayReads())
        if (A->getRank() == R.rank())
          Accums[A->getId()].include(R);
      for (const ArraySymbol *A : OS->arrayWrites())
        if (A->getRank() == R.rank())
          Accums[A->getId()].include(R);
    }
    // Communication statements transfer halo data for offsets that some
    // normalized statement already references; they add no new footprint.
  }

  FootprintInfo Info;
  for (const ArraySymbol *A : P.arrays()) {
    BoundsAccum &Acc = Accums[A->getId()];
    if (!Acc.Valid)
      continue;
    Info.Bounds.emplace(A->getId(),
                        Region(std::move(Acc.Lo), std::move(Acc.Hi)));
  }
  return Info;
}

//===- analysis/Intervals.cpp - Symbolic affine interval domain -----------===//

#include "analysis/Intervals.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace alf;
using namespace alf::analysis;

void AffineBound::addTerm(const ir::Region *R, unsigned Dim, bool IsHi,
                          int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto Key = [](const Term &T) {
    return std::make_tuple(T.R, T.Dim, T.IsHi);
  };
  Term New{R, Dim, IsHi, Coeff};
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), New,
      [&](const Term &A, const Term &B) { return Key(A) < Key(B); });
  if (It != Terms.end() && Key(*It) == Key(New)) {
    It->Coeff += Coeff;
    if (It->Coeff == 0)
      Terms.erase(It);
    return;
  }
  Terms.insert(It, New);
}

AffineBound AffineBound::constant(int64_t C) {
  AffineBound B;
  B.Const = C;
  return B;
}

AffineBound AffineBound::lo(const ir::Region *R, unsigned D) {
  AffineBound B;
  B.addTerm(R, D, /*IsHi=*/false, 1);
  return B;
}

AffineBound AffineBound::hi(const ir::Region *R, unsigned D) {
  AffineBound B;
  B.addTerm(R, D, /*IsHi=*/true, 1);
  return B;
}

namespace alf {
namespace analysis {

// Friend operators must be defined inside the namespace (a qualified
// definition does not redeclare a friend-only name).
AffineBound operator-(const AffineBound &A, const AffineBound &B) {
  AffineBound Out = A;
  Out.Const -= B.Const;
  for (const AffineBound::Term &T : B.Terms)
    Out.addTerm(T.R, T.Dim, T.IsHi, -T.Coeff);
  return Out;
}

} // namespace analysis
} // namespace alf

int64_t AffineBound::evaluate() const {
  int64_t V = Const;
  for (const Term &T : Terms)
    V += T.Coeff * (T.IsHi ? T.R->hi(T.Dim) : T.R->lo(T.Dim));
  return V;
}

std::string AffineBound::str() const {
  std::string Out;
  for (const Term &T : Terms) {
    if (!Out.empty())
      Out += T.Coeff < 0 ? " - " : " + ";
    else if (T.Coeff < 0)
      Out += "-";
    int64_t Mag = T.Coeff < 0 ? -T.Coeff : T.Coeff;
    if (Mag != 1)
      Out += formatString("%lld*", static_cast<long long>(Mag));
    Out += formatString("%s(%s,%u)", T.IsHi ? "hi" : "lo",
                        T.R->str().c_str(), T.Dim);
  }
  if (Out.empty())
    return formatString("%lld", static_cast<long long>(Const));
  if (Const != 0)
    Out += formatString(" %c %lld", Const < 0 ? '-' : '+',
                        static_cast<long long>(Const < 0 ? -Const : Const));
  return Out;
}

SymInterval SymInterval::ofDim(const ir::Region *R, unsigned D,
                               int64_t Shift) {
  return SymInterval{AffineBound::lo(R, D) + Shift,
                     AffineBound::hi(R, D) + Shift};
}

std::string SymInterval::str() const {
  std::string Out = "[";
  Out += Lo.str();
  Out += " .. ";
  Out += Hi.str();
  Out += "]";
  return Out;
}

BoundProof analysis::weakerProof(BoundProof A, BoundProof B) {
  if (A == BoundProof::Disproved || B == BoundProof::Disproved)
    return BoundProof::Disproved;
  if (A == BoundProof::Concrete || B == BoundProof::Concrete)
    return BoundProof::Concrete;
  return BoundProof::Symbolic;
}

BoundProof analysis::proveLeq(const AffineBound &A, const AffineBound &B) {
  AffineBound D = B - A;
  if (D.isConstant())
    return D.constant() >= 0 ? BoundProof::Symbolic : BoundProof::Disproved;

  // D is provably nonnegative when it matches `c + Σ k·(hi−lo)` with
  // c >= 0 and every k >= 0: a region dimension's extent is at least 1,
  // so each (hi − lo) term is >= 0. Pair each dimension's hi and lo
  // coefficients and require them to cancel with the hi side nonnegative.
  bool Symbolic = D.constant() >= 0;
  std::map<std::pair<const ir::Region *, unsigned>, int64_t> PairSum;
  for (const AffineBound::Term &T : D.terms()) {
    PairSum[{T.R, T.Dim}] += T.Coeff;
    if (T.IsHi && T.Coeff < 0)
      Symbolic = false;
    if (!T.IsHi && T.Coeff > 0)
      Symbolic = false;
  }
  for (const auto &[Key, Sum] : PairSum)
    if (Sum != 0)
      Symbolic = false;
  if (Symbolic)
    return BoundProof::Symbolic;

  return D.evaluate() >= 0 ? BoundProof::Concrete : BoundProof::Disproved;
}

BoundProof analysis::proveContains(const SymInterval &Outer,
                                   const SymInterval &Inner) {
  return weakerProof(proveLeq(Outer.Lo, Inner.Lo),
                     proveLeq(Inner.Hi, Outer.Hi));
}

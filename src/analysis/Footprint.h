//===- analysis/Footprint.h - Array allocation bounds ----------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, for each array of a program, the rectangular index set the
/// program actually touches: the union over all references of the
/// statement's region shifted by the reference offset. The interpreter
/// allocates arrays with these bounds (offset references reach outside the
/// statement region, the "halo"), and the memory-accounting experiment
/// (Figure 8) sizes arrays from them.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_ANALYSIS_FOOTPRINT_H
#define ALF_ANALYSIS_FOOTPRINT_H

#include "ir/Program.h"
#include "ir/Region.h"

#include <map>

namespace alf {
namespace analysis {

/// Allocation bounds per array (by symbol id). Arrays referenced only by
/// opaque/communication statements get the enclosing statement's region
/// when available.
class FootprintInfo {
  std::map<unsigned, ir::Region> Bounds;

public:
  static FootprintInfo compute(const ir::Program &P);

  /// Returns the allocation bounds of \p A, or null when the program never
  /// gives it a footprint (unreferenced array).
  const ir::Region *boundsFor(const ir::ArraySymbol *A) const {
    auto It = Bounds.find(A->getId());
    return It == Bounds.end() ? nullptr : &It->second;
  }

  /// Total bytes needed to allocate \p A (0 when unreferenced).
  uint64_t bytesFor(const ir::ArraySymbol *A) const {
    const ir::Region *R = boundsFor(A);
    if (!R)
      return 0;
    return static_cast<uint64_t>(R->size()) * A->getElemSize();
  }
};

} // namespace analysis
} // namespace alf

#endif // ALF_ANALYSIS_FOOTPRINT_H

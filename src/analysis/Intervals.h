//===- analysis/Intervals.h - Symbolic affine interval domain --*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small symbolic interval domain over region bounds. The safety
/// checker (verify/SafetyChecker.cpp) ranges every loop induction
/// variable and affine index expression over intervals whose endpoints
/// are affine forms `c + Σ k·p`, where each parameter `p` is the lower
/// or upper bound of some `ir::Region` dimension. Because regions are
/// interned by the Program, a parameter is identified by the region
/// pointer plus dimension — two accesses through the same region share
/// parameters exactly, and inequalities between affine forms can often
/// be discharged *symbolically*: they then hold for every instantiation
/// of the extents, not just the one the witness regions happen to carry.
///
/// The only algebraic fact the prover uses is `hi(R,d) >= lo(R,d)`
/// (regions are nonempty), so a difference that reduces to
/// `c + Σ k·(hi−lo)` with `c >= 0` and every `k >= 0` is provably
/// nonnegative. Anything else falls back to evaluating the affine forms
/// at the witness bounds the regions carry — still a sound verdict for
/// the program instance at hand, just not a for-all-extents proof.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_ANALYSIS_INTERVALS_H
#define ALF_ANALYSIS_INTERVALS_H

#include "ir/Region.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alf {
namespace analysis {

/// An affine form `Const + Σ Coeff·param` where each parameter is the
/// inclusive lower or upper bound of one dimension of an interned
/// region. Terms with zero coefficient are never stored.
class AffineBound {
public:
  struct Term {
    const ir::Region *R = nullptr;
    unsigned Dim = 0;
    bool IsHi = false;
    int64_t Coeff = 0;
  };

private:
  int64_t Const = 0;
  std::vector<Term> Terms; ///< sorted by (R, Dim, IsHi); coeffs nonzero

  void addTerm(const ir::Region *R, unsigned Dim, bool IsHi, int64_t Coeff);

public:
  AffineBound() = default;

  /// The constant form `C`.
  static AffineBound constant(int64_t C);

  /// The parameter `lo(R, D)`.
  static AffineBound lo(const ir::Region *R, unsigned D);

  /// The parameter `hi(R, D)`.
  static AffineBound hi(const ir::Region *R, unsigned D);

  AffineBound &operator+=(int64_t C) {
    Const += C;
    return *this;
  }

  friend AffineBound operator+(AffineBound A, int64_t C) {
    A += C;
    return A;
  }

  /// Term-wise difference `A − B`.
  friend AffineBound operator-(const AffineBound &A, const AffineBound &B);

  bool isConstant() const { return Terms.empty(); }
  int64_t constant() const { return Const; }
  const std::vector<Term> &terms() const { return Terms; }

  /// The form's value at the witness instantiation: each parameter
  /// evaluates to the bound its region actually carries.
  int64_t evaluate() const;

  /// Renders as e.g. "lo(R,0) + 2" for diagnostics.
  std::string str() const;
};

/// An inclusive symbolic interval [Lo, Hi].
struct SymInterval {
  AffineBound Lo;
  AffineBound Hi;

  /// The interval an induction variable ranging over dimension \p D of
  /// \p R takes, shifted by the constant reference offset \p Shift.
  static SymInterval ofDim(const ir::Region *R, unsigned D, int64_t Shift);

  std::string str() const;
};

/// Strength of a discharged (or failed) inequality.
enum class BoundProof {
  Symbolic,  ///< holds for every instantiation of the region parameters
  Concrete,  ///< holds at the witness bounds only
  Disproved, ///< fails at the witness bounds
};

/// Attempts to prove `A <= B`. Symbolic when `B − A` reduces to
/// `c + Σ k·(hi−lo)` with `c >= 0` and all `k >= 0`; otherwise the
/// verdict comes from the witness evaluation.
BoundProof proveLeq(const AffineBound &A, const AffineBound &B);

/// Attempts to prove `Inner ⊆ Outer`; the weaker of the two side
/// proofs (Disproved dominates Concrete dominates Symbolic).
BoundProof proveContains(const SymInterval &Outer, const SymInterval &Inner);

/// The weaker of two proof strengths.
BoundProof weakerProof(BoundProof A, BoundProof B);

} // namespace analysis
} // namespace alf

#endif // ALF_ANALYSIS_INTERVALS_H

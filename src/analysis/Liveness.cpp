//===- analysis/Liveness.cpp - Array live ranges ---------------------------===//

#include "analysis/Liveness.h"

#include <algorithm>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;

LivenessInfo LivenessInfo::compute(const ir::Program &P) {
  LivenessInfo Info;
  Info.NumStmts = P.numStmts();

  // First/last reference position per array.
  struct Range {
    int First = -1;
    int Last = -1;
  };
  std::vector<Range> Ranges(P.numSymbols());

  for (unsigned Pos = 0; Pos < P.numStmts(); ++Pos) {
    std::vector<Access> Accs;
    P.getStmt(Pos)->getAccesses(Accs);
    for (const Access &A : Accs) {
      if (!isa<ArraySymbol>(A.Sym))
        continue;
      Range &R = Ranges[A.Sym->getId()];
      if (R.First < 0)
        R.First = static_cast<int>(Pos);
      R.Last = static_cast<int>(Pos);
    }
  }

  unsigned LastPos = P.numStmts() == 0 ? 0 : P.numStmts() - 1;
  for (const ArraySymbol *A : P.arrays()) {
    const Range &R = Ranges[A->getId()];
    bool Referenced = R.First >= 0;
    if (!Referenced && !A->isLiveIn() && !A->isLiveOut())
      continue; // never materialized
    unsigned First =
        A->isLiveIn() ? 0u
                      : (Referenced ? static_cast<unsigned>(R.First) : 0u);
    unsigned Last = A->isLiveOut()
                        ? LastPos
                        : (Referenced ? static_cast<unsigned>(R.Last) : 0u);
    Info.Intervals.push_back(LiveInterval{A, First, Last});
  }
  return Info;
}

unsigned LivenessInfo::peakLive(
    const std::function<bool(const ir::ArraySymbol *)> &Filter) const {
  unsigned Peak = 0;
  for (unsigned Pos = 0; Pos <= (NumStmts == 0 ? 0 : NumStmts - 1); ++Pos) {
    unsigned Count = 0;
    for (const LiveInterval &I : Intervals)
      if (I.First <= Pos && Pos <= I.Last && Filter(I.Array))
        ++Count;
    Peak = std::max(Peak, Count);
  }
  return Peak;
}

unsigned LivenessInfo::peakLive() const {
  return peakLive([](const ArraySymbol *) { return true; });
}

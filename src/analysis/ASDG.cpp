//===- analysis/ASDG.cpp - Array statement dependence graph ---------------===//

#include "analysis/ASDG.h"

#include "support/ErrorHandling.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <map>
#include <set>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;

const char *analysis::getDepTypeName(DepType T) {
  switch (T) {
  case DepType::Flow:
    return "flow";
  case DepType::Anti:
    return "anti";
  case DepType::Output:
    return "output";
  }
  alf_unreachable("unhandled dependence type");
}

ASDG ASDG::build(const ir::Program &Prog) {
  ASDG G;
  G.P = &Prog;
  unsigned N = Prog.numStmts();
  G.OutEdgeIds.resize(N);
  G.InEdgeIds.resize(N);

  // Pre-collect the accesses of every statement.
  std::vector<std::vector<Access>> Accesses(N);
  for (unsigned I = 0; I < N; ++I)
    Prog.getStmt(I)->getAccesses(Accesses[I]);

  // For each ordered pair (Src, Tgt), Src < Tgt, build the label set.
  for (unsigned Src = 0; Src < N; ++Src) {
    for (unsigned Tgt = Src + 1; Tgt < N; ++Tgt) {
      std::vector<DepLabel> Labels;
      for (const Access &SrcAcc : Accesses[Src]) {
        for (const Access &TgtAcc : Accesses[Tgt]) {
          if (SrcAcc.Sym != TgtAcc.Sym)
            continue;
          if (!SrcAcc.IsWrite && !TgtAcc.IsWrite)
            continue; // read-read is not a dependence
          DepType Type;
          if (SrcAcc.IsWrite && TgtAcc.IsWrite)
            Type = DepType::Output;
          else if (SrcAcc.IsWrite)
            Type = DepType::Flow;
          else
            Type = DepType::Anti;
          std::optional<Offset> UDV;
          if (SrcAcc.Off && TgtAcc.Off &&
              SrcAcc.Off->rank() == TgtAcc.Off->rank())
            UDV = *SrcAcc.Off - *TgtAcc.Off;
          DepLabel Label{SrcAcc.Sym, std::move(UDV), Type};
          if (std::find(Labels.begin(), Labels.end(), Label) == Labels.end())
            Labels.push_back(std::move(Label));
        }
      }
      if (Labels.empty())
        continue;
      unsigned EdgeId = static_cast<unsigned>(G.Edges.size());
      G.Edges.push_back(DepEdge{Src, Tgt, std::move(Labels)});
      G.OutEdgeIds[Src].push_back(EdgeId);
      G.InEdgeIds[Tgt].push_back(EdgeId);
    }
  }

  // Reference index for statementsReferencing().
  G.RefIndex.resize(Prog.numSymbols());
  for (unsigned I = 0; I < N; ++I) {
    std::set<unsigned> Seen;
    for (const Access &A : Accesses[I])
      if (Seen.insert(A.Sym->getId()).second)
        G.RefIndex[A.Sym->getId()].push_back(I);
  }
  return G;
}

void ASDG::dropEdgeForTest(unsigned EdgeId) {
  if (EdgeId >= Edges.size())
    return;
  Edges.erase(Edges.begin() + EdgeId);
  for (auto *Index : {&OutEdgeIds, &InEdgeIds})
    for (std::vector<unsigned> &Ids : *Index) {
      std::vector<unsigned> Kept;
      for (unsigned Id : Ids) {
        if (Id == EdgeId)
          continue;
        Kept.push_back(Id > EdgeId ? Id - 1 : Id);
      }
      Ids = std::move(Kept);
    }
}

void ASDG::injectEdgeForTest(DepEdge E) {
  unsigned EdgeId = static_cast<unsigned>(Edges.size());
  if (E.Src < OutEdgeIds.size())
    OutEdgeIds[E.Src].push_back(EdgeId);
  if (E.Tgt < InEdgeIds.size())
    InEdgeIds[E.Tgt].push_back(EdgeId);
  Edges.push_back(std::move(E));
}

const std::vector<unsigned> &
ASDG::statementsReferencing(const ir::Symbol *Var) const {
  static const std::vector<unsigned> Empty;
  if (Var->getId() >= RefIndex.size())
    return Empty;
  return RefIndex[Var->getId()];
}

double ASDG::referenceWeight(const ir::Symbol *Var) const {
  double Weight = 0.0;
  for (unsigned I = 0; I < numNodes(); ++I) {
    const Stmt *S = P->getStmt(I);
    if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
      double RegionSize = static_cast<double>(NS->getRegion()->size());
      if (NS->getLHS() == Var)
        Weight += RegionSize;
      for (const ArrayRefExpr *Ref : NS->rhsArrayRefs())
        if (Ref->getSymbol() == Var)
          Weight += RegionSize;
      continue;
    }
    if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
      double RegionSize = static_cast<double>(RS->getRegion()->size());
      for (const ArrayRefExpr *Ref : RS->bodyArrayRefs())
        if (Ref->getSymbol() == Var)
          Weight += RegionSize;
      continue;
    }
    if (const auto *OS = dyn_cast<OpaqueStmt>(S)) {
      double RegionSize =
          OS->getRegion() ? static_cast<double>(OS->getRegion()->size()) : 1.0;
      for (const ArraySymbol *A : OS->arrayReads())
        if (A == Var)
          Weight += RegionSize;
      for (const ArraySymbol *A : OS->arrayWrites())
        if (A == Var)
          Weight += RegionSize;
    }
    // Communication primitives contribute no reference weight.
  }
  return Weight;
}

std::vector<const ir::ArraySymbol *> ASDG::arraysByDecreasingWeight() const {
  std::vector<std::pair<double, const ArraySymbol *>> Weighted;
  for (const ArraySymbol *A : P->arrays()) {
    double W = referenceWeight(A);
    if (W > 0.0)
      Weighted.push_back({W, A});
  }
  std::stable_sort(Weighted.begin(), Weighted.end(),
                   [](const auto &L, const auto &R) {
                     if (L.first != R.first)
                       return L.first > R.first;
                     return L.second->getId() < R.second->getId();
                   });
  std::vector<const ArraySymbol *> Result;
  Result.reserve(Weighted.size());
  for (const auto &[W, A] : Weighted)
    Result.push_back(A);
  return Result;
}

void ASDG::print(std::ostream &OS) const {
  OS << "ASDG for " << P->getName() << ": " << numNodes() << " nodes, "
     << numEdges() << " edges\n";
  for (const DepEdge &E : Edges) {
    OS << formatString("  S%u -> S%u :", E.Src, E.Tgt);
    for (const DepLabel &L : E.Labels) {
      OS << " (" << L.Var->getName() << ", "
         << (L.UDV ? L.UDV->str() : std::string("unknown")) << ", "
         << getDepTypeName(L.Type) << ")";
    }
    OS << '\n';
  }
}

std::vector<unsigned> ASDG::transitiveReductionEdges() const {
  // An edge (u, v) is redundant when v is reachable from u through a
  // path of length >= 2. BFS per edge; graphs here are basic blocks.
  std::vector<unsigned> Kept;
  for (unsigned EdgeId = 0; EdgeId < Edges.size(); ++EdgeId) {
    const DepEdge &E = Edges[EdgeId];
    // Forward search from Src skipping the direct edge.
    std::vector<bool> Seen(numNodes(), false);
    std::vector<unsigned> Work;
    for (unsigned OutId : OutEdgeIds[E.Src]) {
      if (OutId == EdgeId)
        continue;
      unsigned Next = Edges[OutId].Tgt;
      if (!Seen[Next]) {
        Seen[Next] = true;
        Work.push_back(Next);
      }
    }
    bool Redundant = false;
    while (!Work.empty() && !Redundant) {
      unsigned Node = Work.back();
      Work.pop_back();
      if (Node == E.Tgt) {
        Redundant = true;
        break;
      }
      for (unsigned OutId : OutEdgeIds[Node]) {
        unsigned Next = Edges[OutId].Tgt;
        if (Next <= E.Tgt && !Seen[Next]) {
          Seen[Next] = true;
          Work.push_back(Next);
        }
      }
    }
    if (!Redundant)
      Kept.push_back(EdgeId);
  }
  return Kept;
}

std::string ASDG::dot(bool Reduced) const {
  std::vector<unsigned> EdgeIds;
  if (Reduced) {
    EdgeIds = transitiveReductionEdges();
  } else {
    EdgeIds.resize(Edges.size());
    for (unsigned I = 0; I < Edges.size(); ++I)
      EdgeIds[I] = I;
  }
  std::string Out = "digraph ASDG {\n";
  for (unsigned I = 0; I < numNodes(); ++I)
    Out += formatString("  S%u [label=\"S%u\"];\n", I, I);
  for (unsigned EdgeId : EdgeIds) {
    const DepEdge &E = Edges[EdgeId];
    std::vector<std::string> Parts;
    for (const DepLabel &L : E.Labels)
      Parts.push_back(L.Var->getName() + " " +
                      (L.UDV ? L.UDV->str() : std::string("?")) + " " +
                      getDepTypeName(L.Type));
    Out += formatString("  S%u -> S%u [label=\"%s\"];\n", E.Src, E.Tgt,
                        join(Parts, "\\n").c_str());
  }
  Out += "}\n";
  return Out;
}

//===- analysis/ASDG.h - Array statement dependence graph ------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The array statement dependence graph of paper Definition 3: a labeled
/// acyclic digraph whose vertices are the statements of a basic block and
/// whose edges carry sets of `(variable, unconstrained distance vector,
/// dependence type)` tuples. Unconstrained distance vectors (Definition 2)
/// are computed as `source offset - target offset` where the source
/// statement precedes the target in program order; accesses that have no
/// constant offset (opaque statements, communication primitives, scalars)
/// produce *unrepresentable* labels (UDV == std::nullopt) that dependence
/// consumers treat conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_ANALYSIS_ASDG_H
#define ALF_ANALYSIS_ASDG_H

#include "ir/Offset.h"
#include "ir/Program.h"

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace alf {
namespace analysis {

/// Classic dependence classification.
enum class DepType { Flow, Anti, Output };

/// Printable name ("flow", "anti", "output").
const char *getDepTypeName(DepType T);

/// One `(variable, UDV, type)` tuple from an ASDG edge label (paper
/// Definition 3). `UDV == std::nullopt` marks a dependence whose distance
/// cannot be represented as a constant vector; such dependences order
/// statements but forbid fusing their endpoints.
struct DepLabel {
  const ir::Symbol *Var = nullptr;
  std::optional<ir::Offset> UDV;
  DepType Type = DepType::Flow;

  bool operator==(const DepLabel &RHS) const {
    return Var == RHS.Var && UDV == RHS.UDV && Type == RHS.Type;
  }
};

/// A dependence edge from statement \p Src to statement \p Tgt (program
/// order guarantees Src < Tgt), carrying all labels between the two.
struct DepEdge {
  unsigned Src = 0;
  unsigned Tgt = 0;
  std::vector<DepLabel> Labels;
};

/// The array statement dependence graph over one Program.
class ASDG {
  const ir::Program *P = nullptr;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<unsigned>> OutEdgeIds;
  std::vector<std::vector<unsigned>> InEdgeIds;
  // Cached reference index: statements referencing each symbol
  // (ascending), by symbol id. Built once during build().
  std::vector<std::vector<unsigned>> RefIndex;

public:
  /// Builds the ASDG of \p Prog. The program must be well formed (run the
  /// verifier first); normalization is the caller's responsibility.
  static ASDG build(const ir::Program &Prog);

  const ir::Program &getProgram() const { return *P; }

  unsigned numNodes() const { return P->numStmts(); }
  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }

  const DepEdge &getEdge(unsigned EdgeId) const { return Edges[EdgeId]; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Indices into edges() leaving / entering statement \p Node.
  const std::vector<unsigned> &outEdges(unsigned Node) const {
    return OutEdgeIds[Node];
  }
  const std::vector<unsigned> &inEdges(unsigned Node) const {
    return InEdgeIds[Node];
  }

  /// Ids of statements containing any reference to \p Var (reads, writes,
  /// communication and opaque accesses included). O(1): served from an
  /// index built during construction.
  const std::vector<unsigned> &statementsReferencing(const ir::Symbol *Var) const;

  /// The paper's reference weight w(x, G): the number of array element
  /// references eliminated if \p Var were contracted, computed as the sum
  /// over statements of (references to Var in the statement) x (region
  /// size). Communication primitives contribute nothing (they disappear
  /// with the array).
  double referenceWeight(const ir::Symbol *Var) const;

  /// Array variables appearing in the graph, sorted by decreasing
  /// referenceWeight (ties broken by symbol id for determinism). This is
  /// the consideration order of FUSION-FOR-CONTRACTION (Figure 3, line 3).
  std::vector<const ir::ArraySymbol *> arraysByDecreasingWeight() const;

  /// Ids of the edges forming the transitive reduction of the graph:
  /// an edge is omitted when a longer dependence path between the same
  /// statements already implies the ordering. The full edge set remains
  /// authoritative for legality; the reduction is for presentation.
  std::vector<unsigned> transitiveReductionEdges() const;

  /// Testing hook for the verification layer: removes edge \p EdgeId,
  /// simulating a dependence the analysis failed to record. Injected-bug
  /// tests use this to prove the dependence oracle (and not an output
  /// diff) catches the corruption. Never called by the pipeline.
  void dropEdgeForTest(unsigned EdgeId);

  /// Testing hook: appends a fabricated edge (a spurious dependence).
  void injectEdgeForTest(DepEdge E);

  /// Writes a readable edge listing.
  void print(std::ostream &OS) const;

  /// Graphviz rendering for debugging. With \p Reduced, draws only the
  /// transitive reduction.
  std::string dot(bool Reduced = false) const;
};

} // namespace analysis
} // namespace alf

#endif // ALF_ANALYSIS_ASDG_H

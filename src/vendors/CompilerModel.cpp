//===- vendors/CompilerModel.cpp - Commercial compiler models ---------------===//

#include "vendors/CompilerModel.h"

#include "analysis/ASDG.h"
#include "ir/Normalize.h"
#include "vendors/Fragments.h"
#include "xform/Fusion.h"

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::vendors;
using namespace alf::xform;

std::vector<VendorPolicy> vendors::allVendorPolicies() {
  VendorPolicy PGI;
  PGI.Name = "PGI HPF 2.1";
  PGI.ContractCompilerTemps = true;

  VendorPolicy IBM = PGI;
  IBM.Name = "IBM XLHPF 1.2";

  VendorPolicy APR;
  APR.Name = "APR XHPF 2.0";
  APR.StatementFusion = true;
  APR.LocalityFusion = true;
  APR.ContractCompilerTemps = true;

  VendorPolicy Cray = APR;
  Cray.Name = "Cray F90 2.0.1.0";
  Cray.ContractUserTemps = true;

  VendorPolicy ZPL;
  ZPL.Name = "ZPL (ALF)";
  ZPL.StatementFusion = true;
  ZPL.LocalityFusion = true;
  ZPL.FuseAcrossAntiDeps = true;
  ZPL.ContractCompilerTemps = true;
  ZPL.ContractUserTemps = true;
  ZPL.UnifiedWeighing = true;

  return {PGI, IBM, APR, Cray, ZPL};
}

namespace {

/// Statements created from the same source statement during normalization
/// share a group (the compiler-temporary pair). Vendors that do no real
/// statement fusion still fuse within a group, and the anti-dependence
/// restriction does not apply within a group (scalar compilers handle a
/// single F90 statement's self-anti-dependence by direction choice).
std::vector<unsigned> computeSourceGroups(const Program &P) {
  std::vector<unsigned> GroupOf(P.numStmts());
  for (unsigned I = 0; I < P.numStmts(); ++I)
    GroupOf[I] = I;
  for (const ArraySymbol *A : P.arrays()) {
    if (!A->isCompilerTemp())
      continue;
    // All statements referencing this temporary join the first's group.
    int First = -1;
    for (unsigned I = 0; I < P.numStmts(); ++I) {
      std::vector<Access> Accs;
      P.getStmt(I)->getAccesses(Accs);
      bool Refs = false;
      for (const Access &Acc : Accs)
        if (Acc.Sym == A)
          Refs = true;
      if (!Refs)
        continue;
      if (First < 0)
        First = static_cast<int>(I);
      else
        GroupOf[I] = GroupOf[static_cast<unsigned>(First)];
    }
  }
  return GroupOf;
}

/// Vendor-specific fusion driver mirroring FUSION-FOR-CONTRACTION with
/// the policy's restrictions layered on the legality test.
class VendorEngine {
  const VendorPolicy &Policy;
  const ASDG &G;
  FusionPartition &FP;
  std::vector<unsigned> GroupOf;

public:
  VendorEngine(const VendorPolicy &Policy, const ASDG &G, FusionPartition &FP)
      : Policy(Policy), G(G), FP(FP),
        GroupOf(computeSourceGroups(G.getProgram())) {}

  bool singleSourceGroup(const std::set<unsigned> &C) const {
    int Group = -1;
    for (unsigned Cl : C)
      for (unsigned StmtId : FP.members(Cl)) {
        if (Group < 0)
          Group = static_cast<int>(GroupOf[StmtId]);
        else if (GroupOf[StmtId] != static_cast<unsigned>(Group))
          return false;
      }
    return true;
  }

  bool legalForPolicy(const std::set<unsigned> &C) const {
    if (!isLegalFusion(FP, C))
      return false;
    if (Policy.FuseAcrossAntiDeps || singleSourceGroup(C))
      return true;
    // The vendor cannot emit a fused nest with a loop-carried
    // anti-dependence across source statements.
    std::set<unsigned> Stmts;
    for (unsigned Cl : C)
      for (unsigned StmtId : FP.members(Cl))
        Stmts.insert(StmtId);
    for (const DepEdge &E : G.edges()) {
      if (!Stmts.count(E.Src) || !Stmts.count(E.Tgt))
        continue;
      for (const DepLabel &L : E.Labels)
        if (L.Type == DepType::Anti && (!L.UDV || !L.UDV->isZero()))
          return false;
    }
    return true;
  }

  void greedy(const ArrayFilter &Candidates, bool RequireContractible) {
    for (const ArraySymbol *Var : G.arraysByDecreasingWeight()) {
      if (!Candidates(Var))
        continue;
      std::set<unsigned> C = FP.clustersReferencing(Var);
      if (C.empty())
        continue;
      std::set<unsigned> Grown = FP.grow(C);
      C.insert(Grown.begin(), Grown.end());
      if (C.size() < 2)
        continue;
      if (!Policy.StatementFusion && !singleSourceGroup(C))
        continue;
      if (RequireContractible && !isContractible(FP, C, Var))
        continue;
      if (!legalForPolicy(C))
        continue;
      FP.merge(C);
    }
  }
};

} // namespace

VendorRun vendors::runVendorPipeline(std::unique_ptr<Program> P,
                                     const VendorPolicy &Policy) {
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  VendorEngine Engine(Policy, G, FP);

  ArrayFilter UserTemps = [](const ArraySymbol *A) {
    return !A->isCompilerTemp();
  };

  if (Policy.UnifiedWeighing && Policy.ContractUserTemps) {
    Engine.greedy(anyArray(), /*RequireContractible=*/true);
  } else {
    // Compiler temporaries considered first, separately from user arrays
    // ("the compiler considers contraction of compiler and user temporary
    // arrays separately", section 5.1).
    if (Policy.ContractCompilerTemps)
      Engine.greedy(compilerTempsOnly(), /*RequireContractible=*/true);
    if (Policy.ContractUserTemps)
      Engine.greedy(UserTemps, /*RequireContractible=*/true);
  }
  if (Policy.LocalityFusion)
    Engine.greedy(anyArray(), /*RequireContractible=*/false);

  ArrayFilter Allowed = [&Policy](const ArraySymbol *A) {
    return A->isCompilerTemp() ? Policy.ContractCompilerTemps
                               : Policy.ContractUserTemps;
  };
  VendorRun Run;
  for (const ArraySymbol *A : contractibleArrays(FP, Allowed))
    Run.ContractedNames.insert(A->getName());
  Run.ClusterOf.resize(P->numStmts());
  for (unsigned I = 0; I < P->numStmts(); ++I)
    Run.ClusterOf[I] = FP.clusterOf(I);
  Run.Prog = std::move(P);
  return Run;
}

bool vendors::fragmentHandledProperly(unsigned FragId,
                                      const VendorPolicy &Policy) {
  VendorRun Run = runVendorPipeline(buildFragment(FragId), Policy);
  switch (probeKindOf(FragId)) {
  case ProbeKind::Fusion:
    return Run.ClusterOf.size() >= 2 && Run.ClusterOf[0] == Run.ClusterOf[1];
  case ProbeKind::CompilerContract:
    return Run.ContractedNames.count("_T1") != 0;
  case ProbeKind::UserContract:
    return Run.ContractedNames.count("B") != 0;
  case ProbeKind::TradeOff:
    return Run.ContractedNames.count("T1") != 0 &&
           Run.ContractedNames.count("T2") != 0;
  }
  return false;
}

//===- vendors/Fragments.h - The Figure 5 probe fragments ------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight code fragments of paper Figure 5, used in section 5.1 to
/// probe what fusion and contraction commercial compilers perform:
///
///   (1)-(3) statement fusion for temporal locality, with progressively
///           harder data dependences ((3) carries an anti-dependence),
///   (4)-(5) elimination of compiler temporaries (self-updates),
///   (6)-(7) elimination of user temporaries ((7) adds an anti-dep),
///   (8)     the compiler-vs-user contraction trade-off: two user arrays
///           are contractible only if contraction of the compiler array
///           for the third statement is sacrificed.
///
/// The source text of fragment (8) is corrupt in our copy of the paper;
/// the version built here is reconstructed to exercise exactly the
/// trade-off the text describes (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_VENDORS_FRAGMENTS_H
#define ALF_VENDORS_FRAGMENTS_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace alf {
namespace vendors {

/// Number of probe fragments (Figure 5).
inline constexpr unsigned NumFragments = 8;

/// What the probe checks, per fragment group.
enum class ProbeKind {
  Fusion,           ///< (1)-(3): are the two statements in one nest?
  CompilerContract, ///< (4)-(5): is the compiler temporary eliminated?
  UserContract,     ///< (6)-(7): is the user temporary B eliminated?
  TradeOff          ///< (8): are both user temporaries eliminated?
};

/// Builds fragment \p Id (1-based), pre-normalization.
std::unique_ptr<ir::Program> buildFragment(unsigned Id);

/// The probe kind of fragment \p Id.
ProbeKind probeKindOf(unsigned Id);

/// One-line description of fragment \p Id (used in reports).
std::string describeFragment(unsigned Id);

} // namespace vendors
} // namespace alf

#endif // ALF_VENDORS_FRAGMENTS_H

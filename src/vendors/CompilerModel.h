//===- vendors/CompilerModel.h - Commercial compiler models ----*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioural models of the five compilers probed in paper section 5.1.
/// The vendors' decision procedures are inferred from the paper's prose:
///
///  * PGI HPF 2.1 / IBM XLHPF 1.2: "appear not to perform any statement
///    fusion (i.e., each array statement compiles to a single loop
///    nest)"; compiler temporaries are still eliminated ("requires only a
///    simple local analysis").
///  * APR XHPF 2.0: "appears to perform fusion for locality and compiler
///    array contraction, but it is unable to fuse loops that carry
///    anti-dependences"; user temporaries are not contracted.
///  * Cray F90 2.0.1.0: "appears to perform both statement fusion and
///    array contraction ... unable to fuse statements where the resulting
///    loop nest would contain loop carried anti-dependences"; "considers
///    contraction of compiler and user temporary arrays separately".
///  * ZPL (this library): collective weight-ordered fusion for
///    contraction over compiler and user arrays together, plus fusion for
///    locality, with loop reversal/interchange (FIND-LOOP-STRUCTURE).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_VENDORS_COMPILERMODEL_H
#define ALF_VENDORS_COMPILERMODEL_H

#include "ir/Program.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace alf {
namespace vendors {

/// Capabilities of one compiler's fusion/contraction strategy.
struct VendorPolicy {
  std::string Name;
  bool StatementFusion = false;   ///< fuses distinct source statements
  bool LocalityFusion = false;    ///< fuses for temporal locality
  bool FuseAcrossAntiDeps = false;///< tolerates loop-carried anti deps
  bool ContractCompilerTemps = false;
  bool ContractUserTemps = false;
  bool UnifiedWeighing = false;   ///< weighs compiler and user arrays together
};

/// The five modeled compilers, in the paper's Figure 6 row order.
std::vector<VendorPolicy> allVendorPolicies();

/// Outcome of compiling one program under a vendor policy.
struct VendorRun {
  std::unique_ptr<ir::Program> Prog; ///< normalized program
  std::set<std::string> ContractedNames;
  std::vector<unsigned> ClusterOf;   ///< final cluster per statement id
};

/// Normalizes \p P in place, runs the policy's fusion/contraction
/// pipeline, and reports the outcome.
VendorRun runVendorPipeline(std::unique_ptr<ir::Program> P,
                            const VendorPolicy &Policy);

/// Did \p Policy produce the "proper fused/contracted code" for Figure 5
/// fragment \p FragId? (The check marks of Figure 6.)
bool fragmentHandledProperly(unsigned FragId, const VendorPolicy &Policy);

} // namespace vendors
} // namespace alf

#endif // ALF_VENDORS_COMPILERMODEL_H

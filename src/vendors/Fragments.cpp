//===- vendors/Fragments.cpp - The Figure 5 probe fragments -----------------===//

#include "vendors/Fragments.h"

#include "support/ErrorHandling.h"

using namespace alf;
using namespace alf::ir;
using namespace alf::vendors;

std::unique_ptr<Program> vendors::buildFragment(unsigned Id) {
  auto P = std::make_unique<Program>("figure5-" + std::to_string(Id));
  const Region *R = P->regionFromExtents({16, 16});

  switch (Id) {
  case 1: {
    // B = A + A ; C = A * A  (temporal reuse of A, no dependences)
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeArray("B", 2);
    ArraySymbol *C = P->makeArray("C", 2);
    P->assign(R, B, add(aref(A), aref(A)));
    P->assign(R, C, mul(aref(A), aref(A)));
    return P;
  }
  case 2: {
    // B = A@(-1,0) + A@(-1,0) ; C = A * A  (offset reads, still no deps)
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeArray("B", 2);
    ArraySymbol *C = P->makeArray("C", 2);
    P->assign(R, B, add(aref(A, {-1, 0}), aref(A, {-1, 0})));
    P->assign(R, C, mul(aref(A), aref(A)));
    return P;
  }
  case 3: {
    // B = A@(-1,0) + C@(-1,0) ; C = A * A  (anti-dependence on C)
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeArray("B", 2);
    ArraySymbol *C = P->makeArray("C", 2);
    P->assign(R, B, add(aref(A, {-1, 0}), aref(C, {-1, 0})));
    P->assign(R, C, mul(aref(A), aref(A)));
    return P;
  }
  case 4: {
    // A = A@(-1,0) + A@(-1,0)  (self-update: compiler temporary needed)
    ArraySymbol *A = P->makeArray("A", 2);
    P->assign(R, A, add(aref(A, {-1, 0}), aref(A, {-1, 0})));
    return P;
  }
  case 5: {
    // A = A + A  (aligned self-update)
    ArraySymbol *A = P->makeArray("A", 2);
    P->assign(R, A, add(aref(A), aref(A)));
    return P;
  }
  case 6: {
    // B = A + A ; C = B  (user temporary B, dead afterwards)
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeUserTemp("B", 2);
    ArraySymbol *C = P->makeArray("C", 2);
    P->assign(R, B, add(aref(A), aref(A)));
    P->assign(R, C, aref(B));
    return P;
  }
  case 7: {
    // B = A + A + C@(-1,0) ; C = B  (user temporary + anti-dependence)
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeUserTemp("B", 2);
    ArraySymbol *C = P->makeArray("C", 2);
    P->assign(R, B, add(add(aref(A), aref(A)), aref(C, {-1, 0})));
    P->assign(R, C, aref(B));
    return P;
  }
  case 8: {
    // T1 = A@(-1,0) + B ; T2 = A@(-1,0) + T1 ; A = A@(1,0) + T1 + T2
    //
    // The third statement needs a compiler temporary (_T1). Contracting
    // T1 and T2 requires fusing their producers with _T1's definition;
    // afterwards, pulling in the copy-out `A := _T1` would need a loop
    // carrying the anti-dependences on A in both directions ((-1,0) from
    // the producers and (1,0) from the definition), which no loop
    // structure satisfies — so either {T1, T2} or {_T1} can be
    // contracted, not both. Reference weights favor the user arrays.
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeArray("B", 2);
    ArraySymbol *T1 = P->makeUserTemp("T1", 2);
    ArraySymbol *T2 = P->makeUserTemp("T2", 2);
    P->assign(R, T1, add(aref(A, {-1, 0}), aref(B)));
    P->assign(R, T2, add(aref(A, {-1, 0}), aref(T1)));
    P->assign(R, A, add(add(aref(A, {1, 0}), aref(T1)), aref(T2)));
    return P;
  }
  default:
    alf_unreachable("fragment id out of range");
  }
}

ProbeKind vendors::probeKindOf(unsigned Id) {
  if (Id <= 3)
    return ProbeKind::Fusion;
  if (Id <= 5)
    return ProbeKind::CompilerContract;
  if (Id <= 7)
    return ProbeKind::UserContract;
  return ProbeKind::TradeOff;
}

std::string vendors::describeFragment(unsigned Id) {
  switch (Id) {
  case 1:
    return "fusion for locality, no dependences";
  case 2:
    return "fusion for locality, offset reads";
  case 3:
    return "fusion carrying an anti-dependence";
  case 4:
    return "compiler temporary, shifted self-update";
  case 5:
    return "compiler temporary, aligned self-update";
  case 6:
    return "user temporary contraction";
  case 7:
    return "user temporary contraction with anti-dependence";
  case 8:
    return "user-vs-compiler contraction trade-off";
  }
  return "?";
}

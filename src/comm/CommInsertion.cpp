//===- comm/CommInsertion.cpp - Communication generation --------------------===//

#include "comm/CommInsertion.h"

#include "support/Statistic.h"

#include <map>
#include <tuple>

using namespace alf;
using namespace alf::comm;
using namespace alf::ir;
using namespace alf::lir;

namespace {

/// Key identifying one halo: (array id, dimension, direction sign).
using HaloKey = std::tuple<unsigned, unsigned, int>;

/// Valid halos with the width currently materialized.
using ValidMap = std::map<HaloKey, unsigned>;

/// Builds the direction offset with `Sign * Width` at \p Dim.
Offset dirOffset(unsigned Rank, unsigned Dim, int Sign, unsigned Width) {
  Offset D = Offset::zero(Rank);
  D[Dim] = Sign * static_cast<int>(Width);
  return D;
}

/// Accumulates the (array, dim, sign) -> width requirements of a set of
/// reference offsets.
void accumulateNeeds(const ArraySymbol *A, const Offset &RefOff,
                     std::map<std::pair<const ArraySymbol *, HaloKey>,
                              unsigned> &Needs) {
  for (unsigned Dim = 0; Dim < RefOff.rank(); ++Dim) {
    int32_t E = RefOff[Dim];
    if (E == 0)
      continue;
    int Sign = E > 0 ? 1 : -1;
    unsigned Width = static_cast<unsigned>(E > 0 ? E : -E);
    HaloKey Key{A->getId(), Dim, Sign};
    auto &Slot = Needs[{A, Key}];
    if (Width > Slot)
      Slot = Width;
  }
}

} // namespace

std::vector<std::pair<const ArraySymbol *, Offset>>
comm::requiredHalos(const NormalizedStmt &S) {
  std::map<std::pair<const ArraySymbol *, HaloKey>, unsigned> Needs;
  for (const ArrayRefExpr *Ref : S.rhsArrayRefs())
    accumulateNeeds(Ref->getSymbol(), Ref->getOffset(), Needs);
  std::vector<std::pair<const ArraySymbol *, Offset>> Result;
  for (const auto &[Key, Width] : Needs) {
    const auto &[A, Halo] = Key;
    Result.push_back(
        {A, dirOffset(A->getRank(), std::get<1>(Halo), std::get<2>(Halo),
                      Width)});
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Favor-fusion: loop-level insertion
//===----------------------------------------------------------------------===//

CommPlan comm::insertLoopLevelComm(LoopProgram &LP) {
  CommPlan Plan;
  ValidMap Valid;

  for (size_t Pos = 0; Pos < LP.nodes().size(); ++Pos) {
    LNode *Node = LP.nodes()[Pos].get();

    if (auto *Nest = dyn_cast<LoopNest>(Node)) {
      // Halo needs of the whole nest (message vectorization: one exchange
      // per array/direction for the entire boundary).
      std::map<std::pair<const ArraySymbol *, HaloKey>, unsigned> Needs;
      for (const ScalarStmt &S : Nest->Body)
        for (const ArrayRefExpr *Ref : collectArrayRefs(S.RHS.get()))
          if (!LP.isContracted(Ref->getSymbol()))
            accumulateNeeds(Ref->getSymbol(), Ref->getOffset(), Needs);

      for (const auto &[Key, Width] : Needs) {
        const auto &[A, Halo] = Key;
        auto It = Valid.find(Halo);
        if (It != Valid.end() && It->second >= Width) {
          ++Plan.RedundantElided; // redundancy elimination
          {
            ALF_STATISTIC(NumElided, "comm",
                          "Redundant halo exchanges elided");
            ++NumElided;
          }
          continue;
        }
        auto Op = std::make_unique<CommOp>();
        Op->Array = A;
        Op->Dir = dirOffset(A->getRank(), std::get<1>(Halo),
                            std::get<2>(Halo), Width);
        Op->Phase = CommStmt::CommPhase::Whole;
        LP.insertNode(Pos, std::move(Op));
        ++Pos; // the nest moved one slot right
        ++Plan.Exchanges;
        {
          ALF_STATISTIC(NumExchanges, "comm", "Halo exchanges inserted");
          ++NumExchanges;
        }
        Valid[Halo] = Width;
      }

      // Writes performed by the nest invalidate the written arrays' halos.
      for (const ScalarStmt &S : Nest->Body) {
        if (S.LHS.isScalar())
          continue;
        unsigned Id = S.LHS.Array->getId();
        for (auto It = Valid.begin(); It != Valid.end();) {
          if (std::get<0>(It->first) == Id)
            It = Valid.erase(It);
          else
            ++It;
        }
      }
      continue;
    }

    if (auto *Op = dyn_cast<OpaqueOp>(Node)) {
      for (const ArraySymbol *A : Op->Src->arrayWrites()) {
        unsigned Id = A->getId();
        for (auto It = Valid.begin(); It != Valid.end();) {
          if (std::get<0>(It->first) == Id)
            It = Valid.erase(It);
          else
            ++It;
        }
      }
      continue;
    }

    if (auto *C = dyn_cast<CommOp>(Node)) {
      // Pre-existing exchange (array-level path): record validity.
      for (unsigned Dim = 0; Dim < C->Dir.rank(); ++Dim)
        if (C->Dir[Dim] != 0)
          Valid[HaloKey{C->Array->getId(), Dim, C->Dir[Dim] > 0 ? 1 : -1}] =
              static_cast<unsigned>(
                  C->Dir[Dim] > 0 ? C->Dir[Dim] : -C->Dir[Dim]);
    }
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Favor-communication: array-level insertion
//===----------------------------------------------------------------------===//

CommPlan comm::insertArrayLevelComm(Program &P, bool Pipelined) {
  CommPlan Plan;
  ValidMap Valid;
  unsigned NumOrig = P.numStmts();

  // Insertion plan keyed by ORIGINAL statement position.
  std::vector<std::vector<std::unique_ptr<Stmt>>> Pre(NumOrig + 1);
  std::vector<std::vector<std::unique_ptr<Stmt>>> Post(NumOrig + 1);

  // Last original position writing each array (for send hoisting).
  std::map<unsigned, unsigned> LastWrite;
  int NextPair = 0;

  for (unsigned Pos = 0; Pos < NumOrig; ++Pos) {
    const Stmt *S = P.getStmt(Pos);

    // Halo needs of this statement: normalized statements and reductions
    // both read at constant offsets.
    std::vector<std::pair<const ArraySymbol *, Offset>> Halos;
    if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
      Halos = requiredHalos(*NS);
    } else if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
      std::map<std::pair<const ArraySymbol *, HaloKey>, unsigned> Needs;
      for (const ArrayRefExpr *Ref : RS->bodyArrayRefs())
        accumulateNeeds(Ref->getSymbol(), Ref->getOffset(), Needs);
      for (const auto &[Key, Width] : Needs) {
        const auto &[A, Halo] = Key;
        Halos.push_back({A, dirOffset(A->getRank(), std::get<1>(Halo),
                                      std::get<2>(Halo), Width)});
      }
    }

    if (!Halos.empty() || isa<NormalizedStmt>(S)) {
      for (const auto &[A, Dir] : Halos) {
        unsigned Dim = 0;
        for (unsigned D = 0; D < Dir.rank(); ++D)
          if (Dir[D] != 0)
            Dim = D;
        int Sign = Dir[Dim] > 0 ? 1 : -1;
        unsigned Width =
            static_cast<unsigned>(Dir[Dim] > 0 ? Dir[Dim] : -Dir[Dim]);
        HaloKey Key{A->getId(), Dim, Sign};
        auto It = Valid.find(Key);
        if (It != Valid.end() && It->second >= Width) {
          ++Plan.RedundantElided;
          continue;
        }
        if (Pipelined) {
          int Pair = NextPair++;
          // Send as early as the producer allows; receive just before the
          // consumer: the span in between is the overlap window.
          auto Send = std::make_unique<CommStmt>(
              A, Dir, CommStmt::CommPhase::Send, Pair);
          auto Recv = std::make_unique<CommStmt>(
              A, Dir, CommStmt::CommPhase::Recv, Pair);
          auto ProducerIt = LastWrite.find(A->getId());
          if (ProducerIt != LastWrite.end())
            Post[ProducerIt->second].push_back(std::move(Send));
          else
            Pre[0].push_back(std::move(Send));
          Pre[Pos].push_back(std::move(Recv));
        } else {
          Pre[Pos].push_back(std::make_unique<CommStmt>(
              A, Dir, CommStmt::CommPhase::Whole, -1));
        }
        ++Plan.Exchanges;
        Valid[Key] = Width;
      }
      // A normalized statement's write invalidates that array's halos.
      if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
        unsigned Id = NS->getLHS()->getId();
        for (auto It = Valid.begin(); It != Valid.end();) {
          if (std::get<0>(It->first) == Id)
            It = Valid.erase(It);
          else
            ++It;
        }
        LastWrite[Id] = Pos;
      }
      continue;
    }

    if (const auto *OS = dyn_cast<OpaqueStmt>(S)) {
      for (const ArraySymbol *A : OS->arrayWrites()) {
        unsigned Id = A->getId();
        for (auto It = Valid.begin(); It != Valid.end();) {
          if (std::get<0>(It->first) == Id)
            It = Valid.erase(It);
          else
            ++It;
        }
        LastWrite[Id] = Pos;
      }
    }
  }

  // Apply the plan back to front so earlier original positions are
  // unaffected by later insertions.
  for (int Pos = static_cast<int>(NumOrig) - 1; Pos >= 0; --Pos) {
    auto &PostList = Post[Pos];
    for (size_t I = PostList.size(); I-- > 0;)
      P.insertStmt(static_cast<unsigned>(Pos) + 1, std::move(PostList[I]));
    auto &PreList = Pre[Pos];
    for (size_t I = PreList.size(); I-- > 0;)
      P.insertStmt(static_cast<unsigned>(Pos), std::move(PreList[I]));
  }
  return Plan;
}

//===- comm/CommInsertion.h - Communication generation ---------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Communication generation and optimization under a block distribution
/// of every array dimension. A reference `A@d` with `d[k] != 0` requires
/// the halo of A along dimension k (width |d[k]|, direction sign(d[k]))
/// to be valid; a write to A invalidates all of A's halos.
///
/// Two interaction policies from the paper (section 5.5):
///
///  * **Favor fusion** (`insertLoopLevelComm`): fusion and contraction run
///    on the communication-free ASDG; exchanges are inserted afterwards,
///    immediately before each consuming loop nest. Message vectorization
///    (one message per boundary per nest) and redundancy elimination
///    (halos stay valid until the array is rewritten) are performed;
///    pipelining gets little room because sends sit next to receives.
///
///  * **Favor communication** (`insertArrayLevelComm`): exchanges are
///    inserted into the *array program* before fusion, split into
///    send/recv pairs hoisted apart for overlap. The communication
///    statements then participate in the ASDG; since they cannot fuse,
///    GROW pulls them into candidate merges and disables many fusions —
///    exactly the contraction loss the paper measures.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_COMM_COMMINSERTION_H
#define ALF_COMM_COMMINSERTION_H

#include "ir/Program.h"
#include "scalarize/LoopIR.h"

namespace alf {
namespace comm {

/// Statistics of a communication insertion pass.
struct CommPlan {
  unsigned Exchanges = 0;        ///< CommOps / CommStmt pairs inserted.
  unsigned RedundantElided = 0;  ///< Needed halos already valid.
};

/// The halo directions required by one normalized statement: one vector
/// per (array, dimension, sign), with the maximum width referenced.
/// Contracted arrays never appear (their references are loop-local).
std::vector<std::pair<const ir::ArraySymbol *, ir::Offset>>
requiredHalos(const ir::NormalizedStmt &S);

/// Favor-fusion policy: inserts whole-exchange CommOps into a scalarized
/// program, before each nest that consumes a stale halo.
CommPlan insertLoopLevelComm(lir::LoopProgram &LP);

/// Favor-communication policy: inserts CommStmts into the array program
/// before fusion. With \p Pipelined, each exchange is split into a send
/// placed right after the producing statement and a receive right before
/// the first consumer, maximizing overlap.
CommPlan insertArrayLevelComm(ir::Program &P, bool Pipelined = true);

} // namespace comm
} // namespace alf

#endif // ALF_COMM_COMMINSERTION_H

//===- xform/Strategy.h - Named optimization strategies --------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's eight incremental optimization strategies (section 5.4):
///
///   baseline : no fusion or contraction
///   f1 : fusion to enable contraction of compiler arrays; no contraction
///   c1 : f1's fusion, and the compiler arrays are contracted
///   f2 : c1 plus fusion to enable contraction of user arrays, but user
///        arrays are not contracted
///   f3 : c1 plus fusion for locality
///   c2 : c1 plus user arrays are fused for and contracted
///   c2+f3 : c2 plus fusion for locality
///   c2+f4 : c2+f3 plus all legal fusion (greedy pairwise)
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_STRATEGY_H
#define ALF_XFORM_STRATEGY_H

#include "xform/Fusion.h"
#include "xform/PartialContraction.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace alf {
namespace xform {

/// The paper's named strategies, in the order of Figures 9-11's legends,
/// plus IlpOptimal: the exact branch-and-bound partitioner of
/// xform/IlpStrategy (`--strategy=ilp`), which maximizes contracted bytes
/// instead of running the greedy Figure 3 heuristic.
enum class Strategy { Baseline, F1, C1, F2, F3, C2, C2F3, C2F4, IlpOptimal };

/// The paper's eight strategies in presentation order. Deliberately
/// excludes IlpOptimal: figures, golden tests and the stress tool's
/// default loops present the paper's lineup, and the optimal partitioner
/// is selected explicitly by name.
const std::vector<Strategy> &allStrategies();

/// Every strategy the compiler can run, including IlpOptimal. Sweep-style
/// tests iterate this list so differential coverage cannot silently skip
/// the exact partitioner; figure and golden-output code stays on
/// allStrategies().
const std::vector<Strategy> &allStrategiesForTest();

/// Printable name ("baseline", "f1", ..., "c2+f4", "ilp").
const char *getStrategyName(Strategy S);

/// Looks up a strategy by its printable name, including "ilp"; nullopt
/// when unknown.
std::optional<Strategy> strategyNamed(const std::string &Name);

/// How a scalarized program is executed. Orthogonal to the optimization
/// strategy: any strategy's output can run sequentially (the reference
/// interpreter), on the tiled multithreaded executor (whose per-nest
/// legality comes from the same UDVs fusion computed), or as a native
/// kernel JIT-compiled from the emitted C with the system compiler
/// (exec/NativeJit, falling back to the interpreter when no compiler is
/// available). NativeJitSimd is the JIT with the vectorizing emitter:
/// nests whose FIND-LOOP-STRUCTURE innermost dimension is provably
/// stride-1 and carries no dependence run as explicit SIMD loops;
/// everything else falls back to the scalar spelling per nest.
enum class ExecMode { Sequential, Parallel, NativeJit, NativeJitSimd };

/// All execution modes, sequential first.
const std::vector<ExecMode> &allExecModes();

/// Printable name ("sequential", "parallel", "jit", "jit-simd").
const char *getExecModeName(ExecMode M);

/// Looks up an execution mode by its printable name; nullopt when unknown.
std::optional<ExecMode> execModeNamed(const std::string &Name);

/// The outcome of applying a strategy to an ASDG: the fusion partition to
/// scalarize with, and the set of arrays to contract during scalarization.
/// `Contracted` keeps the deterministic presentation order; membership
/// queries go through a sorted index because scalarization asks
/// per-array per-statement.
struct StrategyResult {
  FusionPartition Partition;
  std::vector<const ir::ArraySymbol *> Contracted;

  bool isContracted(const ir::ArraySymbol *A) const {
    if (Index.size() != Contracted.size())
      rebuildIndex();
    return std::binary_search(Index.begin(), Index.end(), A);
  }

private:
  /// Pointer-sorted copy of Contracted, rebuilt lazily whenever the
  /// public vector changed size (the only mutation the API performs).
  mutable std::vector<const ir::ArraySymbol *> Index;

  void rebuildIndex() const {
    Index = Contracted;
    std::sort(Index.begin(), Index.end());
  }
};

/// Applies strategy \p S to \p G and returns the partition plus the
/// contraction set.
StrategyResult applyStrategy(const analysis::ASDG &G, Strategy S);

/// Applies \p S, then the lower-dimensional (partial) contraction
/// extension with \p Seq's dimensions treated as sequential: additional
/// relaxed fusion merges, full contraction recomputed on the final
/// partition, and rolling-buffer plans for the remaining candidates
/// returned through \p OutPlans.
StrategyResult
applyStrategyWithPartialContraction(const analysis::ASDG &G, Strategy S,
                                    const SequentialDims &Seq,
                                    std::vector<PartialPlan> &OutPlans);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_STRATEGY_H

//===- xform/IlpStrategy.h - Optimal fusion partitioning -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An *exact* fusion-partitioning strategy: instead of the paper's greedy
/// FUSION-FOR-CONTRACTION heuristic (Figure 3), enumerate all legal
/// fusion partitions with a branch-and-bound search and return the one
/// that maximizes the contracted bytes saved (the paper's contraction
/// benefit, in bytes), tie-broken by a coarse `src/machine` cache-model
/// cost. The search is a 0/1 integer program in disguise — cluster
/// assignment variables, Definition 5/6 legality and quotient-acyclicity
/// constraints, a linear objective — solved by an in-tree solver rather
/// than an external ILP package (see DESIGN.md section 13 for the
/// encoding and the exactness argument).
///
/// The solver is never trusted: the pipeline re-proves every partition
/// it emits with the independent `src/verify` legality passes at
/// VerifyLevel::Full, and a differential test suite checks its output
/// programs are bit-identical to greedy's and its objective never worse.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_ILPSTRATEGY_H
#define ALF_XFORM_ILPSTRATEGY_H

#include "machine/Machine.h"
#include "xform/Strategy.h"

#include <cstdint>

namespace alf {
namespace xform {

/// Knobs of the branch-and-bound solver.
struct IlpOptions {
  /// Arrays eligible for contraction (the objective counts only these).
  ArrayFilter Contract = anyArray();

  /// Search nodes (assignment attempts) before the solver gives up and
  /// returns the best incumbent found so far. The incumbent is seeded
  /// with the greedy result, so exhaustion degrades to FUSION-FOR-
  /// CONTRACTION, never worse.
  uint64_t NodeBudget = 200000;

  /// Machine whose cache parameters break objective ties; Cray T3E when
  /// null (the paper's primary evaluation machine).
  const machine::MachineDesc *Machine = nullptr;
};

/// What the solver did, for tests, the gap study and the stress tool.
struct IlpStats {
  uint64_t NodesExplored = 0;   ///< assignment attempts considered
  uint64_t BranchesPruned = 0;  ///< subtrees cut by the objective bound
  uint64_t LegalityRejects = 0; ///< joins rejected by Definition 5
  bool BudgetExhausted = false; ///< search stopped at NodeBudget
  bool ImprovedOverGreedy = false;
  double ObjectiveBytes = 0;       ///< contracted bytes of the result
  double GreedyObjectiveBytes = 0; ///< contracted bytes of the greedy seed
  double CacheCost = 0;            ///< tie-break cost of the result
};

/// The objective: bytes of array traffic eliminated by contracting
/// \p Vars under \p P — the sum of the contracted arrays' reference
/// weights (paper section 3) times the element size.
double contractedBytes(const FusionPartition &P,
                       const std::vector<const ir::ArraySymbol *> &Vars);

/// The tie-break: a coarse per-cluster cache-model cost of executing the
/// partition on \p M. Each cluster's non-contracted references are priced
/// at \p M's L1/L2/memory per-reference cost according to whether the
/// cluster's working set fits the corresponding level. Deterministic;
/// lower is better.
double cacheModelCost(const FusionPartition &P, const StrategyResult &SR,
                      const machine::MachineDesc &M);

/// Solves for the legal fusion partition maximizing contractedBytes,
/// tie-broken by cacheModelCost. Exact up to the node budget; at least
/// as good as FUSION-FOR-CONTRACTION always. Fills \p OutStats when
/// non-null.
StrategyResult solveOptimalPartition(const analysis::ASDG &G,
                                     const IlpOptions &Opts = IlpOptions(),
                                     IlpStats *OutStats = nullptr);

/// Testing hook for the verification layer: when enabled, the solver
/// deliberately corrupts its result (an illegal cluster merge when one
/// exists, else a bogus contraction) before returning it. Injected-bug
/// tests use this to prove VerifyLevel::Full rejects a miscompiling
/// solver instead of trusting it. Never enabled by the pipeline.
void setIlpCorruptionForTest(bool Enabled);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_ILPSTRATEGY_H

//===- xform/PartialContraction.h - Lower-dimensional contraction -*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work extension: contraction of arrays to
/// *lower-dimensional* buffers. Section 5.2 observes that "SP contains a
/// great many opportunities to contract arrays to lower dimensional
/// arrays. Though the resulting arrays cannot be manipulated in
/// registers, they conserve memory and make better use of the cache",
/// and Definition 6's discussion notes that the null-distance condition
/// "may be relaxed when the dependence is along a dimension of the array
/// that is not distributed".
///
/// This module implements that relaxation. Given a set of *sequential*
/// (non-distributed) dimensions:
///
///  * fusion legality is extended (`isLegalFusionRelaxed`): intra-cluster
///    flow dependences may carry nonzero distance along sequential
///    dimensions (the loops over those dimensions run sequentially on
///    each processor, so such dependences do not inhibit parallelism);
///  * an array whose dependences all have zero distance along every
///    distributed dimension contracts to a rolling buffer: dimensions
///    iterated by loops outside the outermost dependence-carrying loop
///    shrink to extent 1, the carrying dimension shrinks to (max
///    distance + 1) planes addressed modulo, and inner dimensions keep
///    their full extent.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_PARTIALCONTRACTION_H
#define ALF_XFORM_PARTIALCONTRACTION_H

#include "xform/FusionPartition.h"

#include <cstdint>
#include <vector>

namespace alf {
namespace xform {

/// Which array dimensions are sequential (not distributed across the
/// processor grid). The paper's default — every dimension distributed —
/// is `SequentialDims::none()`.
class SequentialDims {
  std::vector<bool> Seq;

public:
  /// All dimensions distributed (partial contraction disabled).
  static SequentialDims none() { return SequentialDims(); }

  /// Marks the given zero-based dimensions sequential.
  static SequentialDims dims(std::initializer_list<unsigned> Dims) {
    SequentialDims S;
    for (unsigned D : Dims) {
      if (D >= S.Seq.size())
        S.Seq.resize(D + 1, false);
      S.Seq[D] = true;
    }
    return S;
  }

  bool isSequential(unsigned D) const {
    return D < Seq.size() && Seq[D];
  }
};

/// The rolling-buffer shape chosen for one partially contracted array.
struct PartialPlan {
  const ir::ArraySymbol *Array = nullptr;
  std::vector<int64_t> OrigLo;        ///< footprint lower bound per dim
  std::vector<int64_t> FullExtents;   ///< footprint extents per dim
  std::vector<int64_t> BufferExtents; ///< chosen buffer extents per dim

  /// True when dimension \p D was reduced (indexed modulo BufferExtents).
  bool isReduced(unsigned D) const {
    return BufferExtents[D] < FullExtents[D];
  }

  /// Maps an absolute coordinate into the buffer along dimension \p D.
  int64_t wrap(unsigned D, int64_t Coord) const {
    if (!isReduced(D))
      return Coord;
    int64_t E = BufferExtents[D];
    int64_t Rel = (Coord - OrigLo[D]) % E;
    return Rel < 0 ? Rel + E : Rel;
  }

  uint64_t origBytes() const;
  uint64_t bufferBytes() const;

  /// The allocation bounds of the rolling buffer: [0..E-1] along reduced
  /// dimensions, the original footprint bounds elsewhere.
  ir::Region bufferRegion() const;
};

/// Definition 5 legality with condition (ii) relaxed for sequential
/// dimensions: intra-cluster flow dependences must have zero distance
/// along every *distributed* dimension, but may carry distance along
/// sequential ones. All other conditions are unchanged.
bool isLegalFusionRelaxed(const FusionPartition &P,
                          const std::set<unsigned> &C,
                          const SequentialDims &Seq,
                          LoopStructureVector *OutLSV = nullptr);

/// True if \p Var can be contracted to a rolling buffer under partition
/// \p P (Definition 6 with condition (ii) relaxed along sequential
/// dimensions). Fully contractible arrays (all distances null) also
/// satisfy this; callers typically handle them first.
bool isPartiallyContractible(const FusionPartition &P,
                             const std::set<unsigned> &C,
                             const ir::ArraySymbol *Var,
                             const SequentialDims &Seq);

/// Greedy fusion pass (the Figure 3 loop with the relaxed predicates)
/// that merges clusters to enable partial contraction of arrays that are
/// not already contractible. Returns the number of merges.
unsigned fuseForPartialContraction(FusionPartition &P,
                                   const SequentialDims &Seq);

/// Computes rolling-buffer plans for every array that is partially (but
/// not fully) contractible in the final partition \p P. \p Exclude lists
/// arrays already chosen for full contraction.
std::vector<PartialPlan>
planPartialContraction(const FusionPartition &P, const SequentialDims &Seq,
                       const std::vector<const ir::ArraySymbol *> &Exclude);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_PARTIALCONTRACTION_H

//===- xform/Fusion.h - Statement fusion algorithms ------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's statement fusion algorithms (section 4.1):
///
///  * FUSION-FOR-CONTRACTION (Figure 3): greedy collective fusion driven
///    by arrays in decreasing reference-weight order; merges every cluster
///    referencing the array (plus the GROW closure) when the array is
///    contractible and the merge forms a legal fusion partition.
///  * Fusion for locality: "identical to that in Figure 3, except that the
///    CONTRACTIBLE? predicate in line 7 is eliminated".
///  * Greedy pairwise fusion ("all legal fusion", the paper's f4): keeps
///    merging legal cluster pairs until a fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_FUSION_H
#define ALF_XFORM_FUSION_H

#include "xform/FusionPartition.h"

#include <functional>

namespace alf {
namespace xform {

/// Predicate selecting which arrays may drive fusion / be contracted. The
/// paper's f1/c1 strategies restrict candidates to compiler temporaries;
/// f2/c2 admit user arrays too.
using ArrayFilter = std::function<bool(const ir::ArraySymbol *)>;

/// Filter admitting every array.
ArrayFilter anyArray();

/// Filter admitting only compiler temporaries.
ArrayFilter compilerTempsOnly();

/// FUSION-FOR-CONTRACTION (Figure 3), starting from (and refining) \p P.
/// Only arrays accepted by \p Candidates are considered (line 4's loop).
/// Returns the number of merges performed.
unsigned fuseForContraction(FusionPartition &P, const ArrayFilter &Candidates);

/// Fusion for locality: the Figure 3 loop without the CONTRACTIBLE? test.
/// "We try to fuse all statements that reference the array that will have
/// the greatest single locality benefit" (section 4.1). Returns the number
/// of merges performed.
unsigned fuseForLocality(FusionPartition &P);

/// Greedy pairwise legal fusion (the paper's f4): repeatedly merges any
/// pair of clusters whose union (with GROW closure) is a legal fusion
/// partition, until no pair can merge. Returns the number of merges.
unsigned fuseAllPairwise(FusionPartition &P);

/// Arrays contractible under the final partition \p P that are accepted by
/// \p Allowed ("Given a particular fusion partition we can decide for what
/// arrays contraction has been enabled", Definition 6).
std::vector<const ir::ArraySymbol *>
contractibleArrays(const FusionPartition &P, const ArrayFilter &Allowed);

/// The paper's contraction benefit: the sum of the reference weights of
/// all contracted arrays (section 3).
double contractionBenefit(const FusionPartition &P,
                          const std::vector<const ir::ArraySymbol *> &Vars);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_FUSION_H

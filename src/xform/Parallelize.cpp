//===- xform/Parallelize.cpp - UDV-based parallelization legality -----------===//

#include "xform/Parallelize.h"

#include "support/StringUtil.h"

using namespace alf;
using namespace alf::ir;
using namespace alf::xform;

const char *xform::getParallelDecisionName(ParallelDecision D) {
  switch (D) {
  case ParallelDecision::OuterParallel:
    return "outer-parallel";
  case ParallelDecision::InnerParallel:
    return "inner-parallel";
  case ParallelDecision::SeqReduction:
    return "seq-reduction";
  case ParallelDecision::SeqCarried:
    return "seq-carried";
  case ParallelDecision::SeqNoLoops:
    return "seq-no-loops";
  }
  return "?";
}

bool xform::isLoopParallelizable(const LoopStructureVector &LSV,
                                 const std::vector<Offset> &UDVs,
                                 unsigned Loop) {
  for (const Offset &U : UDVs) {
    Offset D = constrain(U, LSV);
    bool CarriedOuter = false;
    for (unsigned J = 0; J < Loop && !CarriedOuter; ++J)
      CarriedOuter = D[J] != 0;
    if (!CarriedOuter && D[Loop] != 0)
      return false;
  }
  return true;
}

NestParallelPlan xform::analyzeNestParallelism(const NestParallelInput &In) {
  NestParallelPlan Plan;
  unsigned Rank = In.LSV.rank();
  if (Rank == 0) {
    Plan.Decision = ParallelDecision::SeqNoLoops;
    Plan.Reason = "nest has no loops";
    return Plan;
  }
  if (In.HasReduction) {
    Plan.Decision = ParallelDecision::SeqReduction;
    Plan.Reason = "scalar reduction accumulator is carried by every loop "
                  "(splitting it would reassociate floating point)";
    return Plan;
  }
  for (unsigned Loop = 0; Loop < Rank; ++Loop) {
    unsigned Dim = In.LSV.dimOf(Loop);
    if (Dim < In.WrappedDims.size() && In.WrappedDims[Dim])
      continue; // modulo-indexed rolling buffer aliases this dimension
    if (!isLoopParallelizable(In.LSV, In.UDVs, Loop))
      continue;
    Plan.ParallelLoop = static_cast<int>(Loop);
    if (Loop == 0) {
      Plan.Decision = ParallelDecision::OuterParallel;
      Plan.Reason = formatString(
          "no dependence carried by the outermost loop (dimension %u)",
          Dim + 1);
    } else {
      Plan.Decision = ParallelDecision::InnerParallel;
      Plan.Reason = formatString(
          "outer loops carry dependences; loop %u (dimension %u) runs "
          "parallel with a barrier per outer iteration",
          Loop + 1, Dim + 1);
    }
    return Plan;
  }
  Plan.Decision = ParallelDecision::SeqCarried;
  Plan.Reason =
      "every loop either carries a dependence or indexes a rolling buffer";
  return Plan;
}

//===- xform/FusionPartition.cpp - Fusion partitions ------------------------===//

#include "xform/FusionPartition.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <deque>
#include <map>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

FusionPartition FusionPartition::trivial(const ASDG &Graph) {
  FusionPartition P;
  P.G = &Graph;
  P.ClusterOf.resize(Graph.numNodes());
  for (unsigned I = 0; I < Graph.numNodes(); ++I)
    P.ClusterOf[I] = I;
  return P;
}

FusionPartition FusionPartition::fromAssignment(const ASDG &Graph,
                                                std::vector<unsigned> Assignment) {
  assert(Assignment.size() == Graph.numNodes() &&
         "assignment must cover every statement");
  FusionPartition P;
  P.G = &Graph;
  P.ClusterOf = std::move(Assignment);
#ifndef NDEBUG
  for (unsigned I = 0; I < P.ClusterOf.size(); ++I) {
    assert(P.ClusterOf[I] <= I && "cluster id must be its smallest member");
    assert(P.ClusterOf[P.ClusterOf[I]] == P.ClusterOf[I] &&
           "cluster id must name an active cluster");
  }
#endif
  return P;
}

std::vector<unsigned> FusionPartition::clusters() const {
  // A cluster's id is the smallest member statement's id, so the set of
  // active ids is exactly {i : ClusterOf[i] == i}.
  std::vector<unsigned> Result;
  for (unsigned I = 0; I < ClusterOf.size(); ++I)
    if (ClusterOf[I] == I)
      Result.push_back(I);
  return Result;
}

std::vector<unsigned> FusionPartition::members(unsigned Cluster) const {
  std::vector<unsigned> Result;
  for (unsigned I = 0; I < ClusterOf.size(); ++I)
    if (ClusterOf[I] == Cluster)
      Result.push_back(I);
  return Result;
}

unsigned FusionPartition::merge(const std::set<unsigned> &C) {
  assert(!C.empty() && "cannot merge an empty cluster set");
  unsigned Target = *C.begin(); // smallest id (set is ordered)
  for (unsigned I = 0; I < ClusterOf.size(); ++I)
    if (C.count(ClusterOf[I]))
      ClusterOf[I] = Target;
  return Target;
}

std::set<unsigned>
FusionPartition::clustersReferencing(const ir::Symbol *Var) const {
  std::set<unsigned> Result;
  for (unsigned StmtId : G->statementsReferencing(Var))
    Result.insert(ClusterOf[StmtId]);
  return Result;
}

std::vector<std::pair<unsigned, unsigned>>
FusionPartition::clusterEdges() const {
  std::set<std::pair<unsigned, unsigned>> Distinct;
  for (const DepEdge &E : G->edges()) {
    unsigned SC = ClusterOf[E.Src], TC = ClusterOf[E.Tgt];
    if (SC != TC)
      Distinct.insert({SC, TC});
  }
  return std::vector<std::pair<unsigned, unsigned>>(Distinct.begin(),
                                                    Distinct.end());
}

std::set<unsigned> FusionPartition::grow(const std::set<unsigned> &C) const {
  // Forward-reachable from C and backward-reachable to C on the quotient
  // graph; the intersection (minus C) is GROW. One application is closed:
  // any cluster reachable from C + GROW and reaching C + GROW is already
  // forward- and backward-reachable from/to C itself.
  auto Edges = clusterEdges();
  std::map<unsigned, std::vector<unsigned>> Succ, Pred;
  for (auto [S, T] : Edges) {
    Succ[S].push_back(T);
    Pred[T].push_back(S);
  }

  auto Reach = [&C](const std::map<unsigned, std::vector<unsigned>> &Adj) {
    std::set<unsigned> Seen(C.begin(), C.end());
    std::deque<unsigned> Work(C.begin(), C.end());
    while (!Work.empty()) {
      unsigned Node = Work.front();
      Work.pop_front();
      auto It = Adj.find(Node);
      if (It == Adj.end())
        continue;
      for (unsigned Next : It->second)
        if (Seen.insert(Next).second)
          Work.push_back(Next);
    }
    return Seen;
  };

  std::set<unsigned> Fwd = Reach(Succ);
  std::set<unsigned> Bwd = Reach(Pred);
  std::set<unsigned> Result;
  for (unsigned Cl : Fwd)
    if (Bwd.count(Cl) && !C.count(Cl))
      Result.insert(Cl);
  return Result;
}

std::optional<std::vector<Offset>>
FusionPartition::internalUDVs(const std::set<unsigned> &C) const {
  std::vector<Offset> UDVs;
  for (const DepEdge &E : G->edges()) {
    if (!C.count(ClusterOf[E.Src]) || !C.count(ClusterOf[E.Tgt]))
      continue;
    for (const DepLabel &L : E.Labels) {
      if (!L.UDV)
        return std::nullopt; // unrepresentable internal dependence
      UDVs.push_back(*L.UDV);
    }
  }
  return UDVs;
}

void FusionPartition::print(std::ostream &OS) const {
  OS << "fusion partition: " << numClusters() << " clusters\n";
  for (unsigned Cl : clusters()) {
    OS << "  P" << Cl << " = {";
    bool First = true;
    for (unsigned StmtId : members(Cl)) {
      if (!First)
        OS << ", ";
      OS << "S" << StmtId;
      First = false;
    }
    OS << "}\n";
  }
}

//===----------------------------------------------------------------------===//
// Legality predicates
//===----------------------------------------------------------------------===//

/// Returns true if the quotient graph of \p P, with the clusters of \p C
/// regarded as one node, contains a cycle.
static bool mergeWouldCreateCycle(const FusionPartition &P,
                                  const std::set<unsigned> &C) {
  unsigned Rep = *C.begin();
  auto Quot = [&](unsigned Cl) { return C.count(Cl) ? Rep : Cl; };

  std::map<unsigned, std::set<unsigned>> Succ;
  std::set<unsigned> Nodes;
  for (auto [S, T] : P.clusterEdges()) {
    unsigned QS = Quot(S), QT = Quot(T);
    Nodes.insert(QS);
    Nodes.insert(QT);
    if (QS != QT)
      Succ[QS].insert(QT);
  }

  // Iterative three-color DFS.
  std::map<unsigned, int> Color; // 0 white, 1 gray, 2 black
  for (unsigned Start : Nodes) {
    if (Color[Start] != 0)
      continue;
    std::vector<std::pair<unsigned, bool>> Stack{{Start, false}};
    while (!Stack.empty()) {
      auto [Node, Done] = Stack.back();
      Stack.pop_back();
      if (Done) {
        Color[Node] = 2;
        continue;
      }
      if (Color[Node] == 2)
        continue;
      if (Color[Node] == 1)
        continue;
      Color[Node] = 1;
      Stack.push_back({Node, true});
      for (unsigned Next : Succ[Node]) {
        if (Color[Next] == 1)
          return true; // back edge
        if (Color[Next] == 0)
          Stack.push_back({Next, false});
      }
    }
  }
  return false;
}

/// The region a statement iterates over if it may join a multi-statement
/// fusible cluster (normalized statements and reductions), else null.
static const Region *fusableRegion(const Stmt *S) {
  if (const auto *NS = dyn_cast<NormalizedStmt>(S))
    return NS->getRegion();
  if (const auto *RS = dyn_cast<ReduceStmt>(S))
    return RS->getRegion();
  return nullptr;
}

bool xform::isLegalFusion(const FusionPartition &P, const std::set<unsigned> &C,
                          LoopStructureVector *OutLSV) {
  return isLegalFusionWithFlowRule(
      P, C, [](const Offset &U) { return U.isZero(); }, OutLSV);
}

bool xform::isLegalFusionWithFlowRule(
    const FusionPartition &P, const std::set<unsigned> &C,
    const std::function<bool(const Offset &)> &FlowOk,
    LoopStructureVector *OutLSV) {
  assert(!C.empty() && "legality query over an empty cluster set");
  const ASDG &G = P.graph();
  const Program &Prog = G.getProgram();

  // Gather the statements of the hypothetical merged cluster.
  std::vector<unsigned> Stmts;
  for (unsigned Cl : C)
    for (unsigned StmtId : P.members(Cl))
      Stmts.push_back(StmtId);

  // Condition (i): all statements operate under the same region. Clusters
  // of more than one statement must consist of normalized statements and
  // reductions only (communication primitives and opaque statements never
  // fuse).
  if (Stmts.size() > 1) {
    const Region *CommonRegion = nullptr;
    for (unsigned StmtId : Stmts) {
      const Region *R = fusableRegion(Prog.getStmt(StmtId));
      if (!R)
        return false;
      if (!CommonRegion)
        CommonRegion = R;
      else if (*CommonRegion != *R)
        return false;
    }
  }

  // Condition (ii): intra-cluster flow dependences must satisfy the flow
  // rule (null UDVs in the standard Definition 5).
  std::set<unsigned> InCluster(Stmts.begin(), Stmts.end());
  for (const DepEdge &E : G.edges()) {
    if (!InCluster.count(E.Src) || !InCluster.count(E.Tgt))
      continue;
    for (const DepLabel &L : E.Labels)
      if (L.Type == DepType::Flow && (!L.UDV || !FlowOk(*L.UDV)))
        return false;
  }

  // Communication placement: a fusible cluster may not span a
  // communication statement in program order. Scalarization preserves the
  // placement of exchanges (their pipelining overlap windows were chosen
  // by the communication optimizer), so fusing statements from opposite
  // sides of an exchange would move computation out of its overlap
  // window — the interaction the paper's section 5.5 policy forbids.
  // Programs without communication statements are unaffected.
  if (Stmts.size() > 1) {
    unsigned Min = Stmts.front(), Max = Stmts.front();
    for (unsigned StmtId : Stmts) {
      Min = std::min(Min, StmtId);
      Max = std::max(Max, StmtId);
    }
    for (unsigned Pos = Min + 1; Pos < Max; ++Pos)
      if (isa<CommStmt>(Prog.getStmt(Pos)))
        return false;
  }

  // Condition (iii): no inter-cluster cycles after the merge.
  if (mergeWouldCreateCycle(P, C))
    return false;

  // Condition (iv): a loop structure vector exists that preserves all
  // intra-cluster dependences.
  auto UDVs = P.internalUDVs(C);
  if (!UDVs)
    return false;
  unsigned Rank = 0;
  for (unsigned StmtId : Stmts)
    if (const Region *R = fusableRegion(Prog.getStmt(StmtId))) {
      Rank = R->rank();
      break;
    }
  if (Rank == 0) {
    // Single non-normalized statement: vacuously legal, no loop nest.
    if (OutLSV)
      *OutLSV = LoopStructureVector();
    return true;
  }
  auto LSV = findLoopStructure(*UDVs, Rank);
  if (!LSV)
    return false;
  if (OutLSV)
    *OutLSV = *LSV;
  return true;
}

bool xform::isContractible(const FusionPartition &P,
                           const std::set<unsigned> &C,
                           const ir::ArraySymbol *Var) {
  return isContractibleWithRule(P, C, Var,
                                [](const Offset &U) { return U.isZero(); });
}

bool xform::isContractibleWithRule(
    const FusionPartition &P, const std::set<unsigned> &C,
    const ir::ArraySymbol *Var,
    const std::function<bool(const Offset &)> &DistOk) {
  const ASDG &G = P.graph();
  const Program &Prog = G.getProgram();

  // Side conditions: never contract arrays whose value escapes the
  // fragment or flows in from outside.
  if (Var->isLiveOut())
    return false;

  std::vector<unsigned> Referencing = G.statementsReferencing(Var);
  if (Referencing.empty())
    return false;

  bool SeenWrite = false;
  for (unsigned StmtId : Referencing) {
    const Stmt *S = Prog.getStmt(StmtId);
    if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
      if (!SeenWrite && NS->readsArray(Var))
        return false; // upward-exposed read: the live-in value is needed
      if (NS->getLHS() == Var)
        SeenWrite = true;
      continue;
    }
    if (isa<ReduceStmt>(S)) {
      // Reductions only read arrays, at constant offsets.
      if (!SeenWrite)
        return false; // upward-exposed read
      continue;
    }
    // Arrays touched by communication or opaque statements are not
    // contraction candidates: their accesses have no constant offsets.
    return false;
  }
  if (!SeenWrite)
    return false; // read-only array; nothing to contract

  // Definition 6 (i): the endpoints of every dependence due to Var lie in
  // one fusible cluster (the merged one), and (ii) every such UDV is null.
  for (const DepEdge &E : G.edges()) {
    for (const DepLabel &L : E.Labels) {
      if (L.Var != Var)
        continue;
      unsigned SC = P.clusterOf(E.Src), TC = P.clusterOf(E.Tgt);
      bool SameCluster = (SC == TC) || (C.count(SC) && C.count(TC));
      if (!SameCluster)
        return false;
      if (!L.UDV || !DistOk(*L.UDV))
        return false;
    }
  }
  return true;
}

bool xform::isContractible(const FusionPartition &P,
                           const ir::ArraySymbol *Var) {
  // No hypothetical merge: every cluster stands alone. Passing a set that
  // cannot match two distinct clusters reduces to the same-cluster test.
  return isContractible(P, std::set<unsigned>{}, Var);
}

bool xform::isValidPartition(const FusionPartition &P) {
  for (unsigned Cl : P.clusters())
    if (!isLegalFusion(P, std::set<unsigned>{Cl}))
      return false;
  // Whole-partition acyclicity: checked via a merge of a singleton (which
  // leaves the quotient graph unchanged).
  auto Clusters = P.clusters();
  if (Clusters.empty())
    return true;
  return !mergeWouldCreateCycle(P, std::set<unsigned>{Clusters.front()});
}

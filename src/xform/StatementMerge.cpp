//===- xform/StatementMerge.cpp - Array operation synthesis ------------------===//

#include "xform/StatementMerge.h"

#include "ir/Program.h"

#include <set>

using namespace alf;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// Array symbols read by a statement's expression(s).
std::set<const ArraySymbol *> arraysReadBy(const Stmt *S) {
  std::set<const ArraySymbol *> Reads;
  auto Collect = [&Reads](const Expr *E) {
    for (const ArrayRefExpr *Ref : collectArrayRefs(E))
      Reads.insert(Ref->getSymbol());
  };
  if (const auto *NS = dyn_cast<NormalizedStmt>(S))
    Collect(NS->getRHS());
  else if (const auto *RS = dyn_cast<ReduceStmt>(S))
    Collect(RS->getBody());
  else if (const auto *OS = dyn_cast<OpaqueStmt>(S))
    for (const ArraySymbol *A : OS->arrayReads())
      Reads.insert(A);
  else if (const auto *CS = dyn_cast<CommStmt>(S))
    Reads.insert(CS->getArray());
  return Reads;
}

/// Arrays written by a statement.
std::set<const ArraySymbol *> arraysWrittenBy(const Stmt *S) {
  std::set<const ArraySymbol *> Writes;
  if (const auto *NS = dyn_cast<NormalizedStmt>(S))
    Writes.insert(NS->getLHS());
  else if (const auto *OS = dyn_cast<OpaqueStmt>(S))
    for (const ArraySymbol *A : OS->arrayWrites())
      Writes.insert(A);
  else if (const auto *CS = dyn_cast<CommStmt>(S))
    Writes.insert(CS->getArray()); // halo refresh
  return Writes;
}

/// True if \p E contains a null-offset reference to \p T.
bool readsAligned(const Expr *E, const ArraySymbol *T) {
  for (const ArrayRefExpr *Ref : collectArrayRefs(E))
    if (Ref->getSymbol() == T && Ref->getOffset().isZero())
      return true;
  return false;
}

} // namespace

unsigned xform::mergeStatements(Program &P) {
  unsigned Substituted = 0;

  for (unsigned DefPos = 0; DefPos < P.numStmts(); ++DefPos) {
    const auto *Def = dyn_cast<NormalizedStmt>(P.getStmt(DefPos));
    if (!Def || !Def->getLHSOffset().isZero())
      continue;
    const ArraySymbol *T = Def->getLHS();
    std::set<const ArraySymbol *> Operands = arraysReadBy(Def);
    if (Operands.count(T))
      continue; // self-referential (pre-normalization shape)

    // Walk forward while the definition's operands (and T itself) are
    // unchanged; substitute aligned uses as we go.
    for (unsigned UsePos = DefPos + 1; UsePos < P.numStmts(); ++UsePos) {
      Stmt *Use = P.getStmt(UsePos);

      // Substitute before considering this statement's writes.
      auto Rewrite = [&](const Expr *Root) {
        return cloneExprRewriting(
            Root, [&](const ArrayRefExpr &Ref) -> ExprPtr {
              if (Ref.getSymbol() == T && Ref.getOffset().isZero()) {
                ++Substituted;
                return Def->getRHS()->clone();
              }
              return nullptr;
            });
      };
      if (auto *NS = dyn_cast<NormalizedStmt>(Use)) {
        if (NS->getRegion() == Def->getRegion() &&
            readsAligned(NS->getRHS(), T))
          NS->setRHS(Rewrite(NS->getRHS()));
      } else if (auto *RS = dyn_cast<ReduceStmt>(Use)) {
        if (RS->getRegion() == Def->getRegion() &&
            readsAligned(RS->getBody(), T))
          RS->setBody(Rewrite(RS->getBody()));
      }

      // Interference: a write to T ends this definition's live range; a
      // write to an operand invalidates the expression.
      std::set<const ArraySymbol *> Writes = arraysWrittenBy(Use);
      if (Writes.count(T))
        break;
      bool OperandClobbered = false;
      for (const ArraySymbol *Op : Operands)
        OperandClobbered |= Writes.count(Op) != 0;
      if (OperandClobbered)
        break;
    }
  }
  return Substituted;
}

unsigned xform::eliminateDeadStatements(Program &P) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Pos = 0; Pos < P.numStmts(); ++Pos) {
      const auto *NS = dyn_cast<NormalizedStmt>(P.getStmt(Pos));
      if (!NS || NS->getLHS()->isLiveOut())
        continue;
      const ArraySymbol *T = NS->getLHS();

      // Dead iff no statement after Pos reads T before the next write.
      bool Read = false;
      for (unsigned Later = Pos + 1; Later < P.numStmts(); ++Later) {
        const Stmt *S = P.getStmt(Later);
        if (arraysReadBy(S).count(T)) {
          Read = true;
          break;
        }
        if (arraysWrittenBy(S).count(T))
          break; // overwritten before any read
      }
      if (Read)
        continue;
      P.removeStmt(Pos);
      ++Removed;
      Changed = true;
      --Pos;
    }
  }
  return Removed;
}

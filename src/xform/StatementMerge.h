//===- xform/StatementMerge.h - Array operation synthesis ------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The related-work alternative to contraction (paper section 6): Hwang,
/// Lee and Ju's *statement merge* "substitute[s] an intermediate array's
/// use by its definition. This statement merge optimization enables more
/// operation synthesis, but it is not always possible, and it
/// potentially introduces redundant computation and increases overall
/// program execution time." Implemented here so the trade-off can be
/// measured against the paper's fusion-for-contraction (see
/// bench/related_statement_merge).
///
/// `mergeStatements` forward-substitutes aligned uses of temporaries by
/// their defining expressions; `eliminateDeadStatements` then removes
/// definitions left without readers. Both are semantics-preserving (and
/// tested against the interpreter oracle).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_STATEMENTMERGE_H
#define ALF_XFORM_STATEMENTMERGE_H

namespace alf {
namespace ir {
class Program;
} // namespace ir

namespace xform {

/// Forward-substitutes temporaries into their consumers. A use of T in a
/// later statement is replaced by T's defining right-hand side when:
/// (a) T's definition is a normalized statement over the same region,
/// (b) the use reads T at the null offset (shifted uses would change
///     which boundary values are observed),
/// (c) no operand of the definition (nor T itself) is written between
///     the definition and the use.
/// Returns the number of references substituted. Run
/// `eliminateDeadStatements` afterwards to drop fully-substituted
/// definitions, and re-run `ir::normalizeProgram`: substitution into a
/// statement whose target is one of the definition's operands recreates
/// a read/write overlap (F90's full-RHS-first semantics), which the
/// normalizer restores to normal form through a compiler temporary.
unsigned mergeStatements(ir::Program &P);

/// Removes normalized statements whose target is a non-live-out array
/// that no later statement reads (iterating to a fixed point). Returns
/// the number of statements removed.
unsigned eliminateDeadStatements(ir::Program &P);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_STATEMENTMERGE_H

//===- xform/Strategy.cpp - Named optimization strategies -------------------===//

#include "xform/Strategy.h"

#include "support/ErrorHandling.h"
#include "xform/IlpStrategy.h"

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

const std::vector<Strategy> &xform::allStrategies() {
  static const std::vector<Strategy> All = {
      Strategy::Baseline, Strategy::F1, Strategy::C1,   Strategy::F2,
      Strategy::F3,       Strategy::C2, Strategy::C2F3, Strategy::C2F4};
  return All;
}

const std::vector<Strategy> &xform::allStrategiesForTest() {
  static const std::vector<Strategy> All = [] {
    std::vector<Strategy> S = allStrategies();
    S.push_back(Strategy::IlpOptimal);
    return S;
  }();
  return All;
}

const char *xform::getStrategyName(Strategy S) {
  switch (S) {
  case Strategy::Baseline:
    return "baseline";
  case Strategy::F1:
    return "f1";
  case Strategy::C1:
    return "c1";
  case Strategy::F2:
    return "f2";
  case Strategy::F3:
    return "f3";
  case Strategy::C2:
    return "c2";
  case Strategy::C2F3:
    return "c2+f3";
  case Strategy::C2F4:
    return "c2+f4";
  case Strategy::IlpOptimal:
    return "ilp";
  }
  alf_unreachable("unhandled strategy");
}

std::optional<Strategy> xform::strategyNamed(const std::string &Name) {
  for (Strategy S : allStrategies())
    if (Name == getStrategyName(S))
      return S;
  if (Name == getStrategyName(Strategy::IlpOptimal))
    return Strategy::IlpOptimal;
  return std::nullopt;
}

const std::vector<ExecMode> &xform::allExecModes() {
  static const std::vector<ExecMode> All = {
      ExecMode::Sequential, ExecMode::Parallel, ExecMode::NativeJit,
      ExecMode::NativeJitSimd};
  return All;
}

const char *xform::getExecModeName(ExecMode M) {
  switch (M) {
  case ExecMode::Sequential:
    return "sequential";
  case ExecMode::Parallel:
    return "parallel";
  case ExecMode::NativeJit:
    return "jit";
  case ExecMode::NativeJitSimd:
    return "jit-simd";
  }
  alf_unreachable("unhandled execution mode");
}

std::optional<ExecMode> xform::execModeNamed(const std::string &Name) {
  for (ExecMode M : allExecModes())
    if (Name == getExecModeName(M))
      return M;
  return std::nullopt;
}

StrategyResult xform::applyStrategy(const ASDG &G, Strategy S) {
  // The optimal partitioner replaces the greedy loop wholesale; it
  // contracts the same candidate set as c2 (any array).
  if (S == Strategy::IlpOptimal)
    return solveOptimalPartition(G);

  FusionPartition P = FusionPartition::trivial(G);

  // Which arrays drive fusion-for-contraction, and which are actually
  // contracted afterwards, per the section 5.4 definitions.
  ArrayFilter NoArrays = [](const ArraySymbol *) { return false; };
  ArrayFilter FuseFor = NoArrays;
  ArrayFilter ContractSet = NoArrays;
  bool Locality = false;
  bool Pairwise = false;

  switch (S) {
  case Strategy::IlpOptimal:
    alf_unreachable("handled above");
  case Strategy::Baseline:
    break;
  case Strategy::F1:
    FuseFor = compilerTempsOnly();
    break;
  case Strategy::C1:
    FuseFor = compilerTempsOnly();
    ContractSet = compilerTempsOnly();
    break;
  case Strategy::F2:
    FuseFor = anyArray();
    ContractSet = compilerTempsOnly();
    break;
  case Strategy::F3:
    FuseFor = compilerTempsOnly();
    ContractSet = compilerTempsOnly();
    Locality = true;
    break;
  case Strategy::C2:
    FuseFor = anyArray();
    ContractSet = anyArray();
    break;
  case Strategy::C2F3:
    FuseFor = anyArray();
    ContractSet = anyArray();
    Locality = true;
    break;
  case Strategy::C2F4:
    FuseFor = anyArray();
    ContractSet = anyArray();
    Locality = true;
    Pairwise = true;
    break;
  }

  fuseForContraction(P, FuseFor);
  if (Locality)
    fuseForLocality(P);
  if (Pairwise)
    fuseAllPairwise(P);

  StrategyResult Result;
  Result.Partition = std::move(P);
  Result.Contracted = contractibleArrays(Result.Partition, ContractSet);
  return Result;
}

StrategyResult xform::applyStrategyWithPartialContraction(
    const ASDG &G, Strategy S, const SequentialDims &Seq,
    std::vector<PartialPlan> &OutPlans) {
  StrategyResult SR = applyStrategy(G, S);
  fuseForPartialContraction(SR.Partition, Seq);
  // Relaxed merges may have enabled additional full contractions.
  SR.Contracted = contractibleArrays(SR.Partition, anyArray());
  OutPlans = planPartialContraction(SR.Partition, Seq, SR.Contracted);
  return SR;
}

//===- xform/LoopStructure.cpp - Loop structure vectors --------------------===//

#include "xform/LoopStructure.h"

#include "support/StringUtil.h"

#include <cassert>

using namespace alf;
using namespace alf::ir;
using namespace alf::xform;

LoopStructureVector LoopStructureVector::identity(unsigned Rank) {
  std::vector<int> Elems(Rank);
  for (unsigned I = 0; I < Rank; ++I)
    Elems[I] = static_cast<int>(I + 1);
  return LoopStructureVector(std::move(Elems));
}

std::string LoopStructureVector::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Elems.size());
  for (int E : Elems)
    Parts.push_back(formatString("%d", E));
  return "(" + join(Parts, ",") + ")";
}

Offset xform::constrain(const Offset &U, const LoopStructureVector &P) {
  assert(U.rank() == P.rank() && "rank mismatch constraining UDV");
  Offset D = Offset::zero(U.rank());
  for (unsigned Loop = 0; Loop < P.rank(); ++Loop)
    D[Loop] = P.dirOf(Loop) * U[P.dimOf(Loop)];
  return D;
}

bool xform::isLexicographicallyNonnegative(const Offset &D) {
  for (unsigned I = 0; I < D.rank(); ++I) {
    if (D[I] > 0)
      return true;
    if (D[I] < 0)
      return false;
  }
  return true; // null vector
}

std::optional<LoopStructureVector>
xform::findLoopStructure(const std::vector<Offset> &UDVs, unsigned Rank) {
  // Working copy: dependences already carried by an assigned outer loop
  // are pruned (paper Figure 4 line 10).
  std::vector<Offset> C = UDVs;
  for ([[maybe_unused]] const Offset &U : C)
    assert(U.rank() == Rank && "UDV rank must match cluster rank");

  std::vector<bool> Assigned(Rank, false);
  std::vector<int> P(Rank, 0);

  for (unsigned Loop = 0; Loop < Rank; ++Loop) { // outermost first
    bool Found = false;
    // Consider dimensions low to high so inner loops are matched with
    // higher dimensions (spatial locality, Figure 4 discussion).
    for (unsigned Dim = 0; Dim < Rank && !Found; ++Dim) {
      if (Assigned[Dim])
        continue;
      bool AllNonneg = true, AllNonpos = true, AnyNeg = false;
      for (const Offset &U : C) {
        if (U[Dim] < 0) {
          AllNonneg = false;
          AnyNeg = true;
        }
        if (U[Dim] > 0)
          AllNonpos = false;
      }
      int Dir = 0;
      if (AllNonneg)
        Dir = 1;
      else if (AllNonpos && AnyNeg)
        Dir = -1;
      if (Dir == 0)
        continue; // this dimension cannot be carried by loop `Loop`
      Assigned[Dim] = true;
      P[Loop] = Dir * static_cast<int>(Dim + 1);
      // Dependences carried by this loop no longer constrain inner loops.
      std::vector<Offset> Pruned;
      Pruned.reserve(C.size());
      for (Offset &U : C)
        if (U[Dim] == 0)
          Pruned.push_back(std::move(U));
      C = std::move(Pruned);
      Found = true;
    }
    if (!Found)
      return std::nullopt; // no dimension found for this loop
  }
  return LoopStructureVector(std::move(P));
}

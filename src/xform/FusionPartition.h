//===- xform/FusionPartition.h - Fusion partitions -------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *fusion partition* (paper Definition 5) partitions the nodes of an
/// ASDG into *fusible clusters*; upon scalarization every cluster becomes
/// one loop nest. This file provides the partition representation, the
/// cluster-quotient graph, the GROW closure (Figure 3's cycle-prevention
/// step) and the two legality predicates FUSION-PARTITION? (Definition 5)
/// and CONTRACTIBLE? (Definition 6).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_FUSIONPARTITION_H
#define ALF_XFORM_FUSIONPARTITION_H

#include "analysis/ASDG.h"
#include "xform/LoopStructure.h"

#include <optional>
#include <functional>
#include <ostream>
#include <set>
#include <vector>

namespace alf {
namespace xform {

/// A partition of the statements of an ASDG into fusible clusters.
/// Cluster ids are statement ids of representative members; after merges,
/// a cluster's id is the smallest statement id it contains (Figure 3 line
/// 8 assigns the union into the Pk with the smallest k).
class FusionPartition {
  const analysis::ASDG *G = nullptr;
  std::vector<unsigned> ClusterOf; // statement id -> cluster id

public:
  /// The trivial partition: one statement per cluster (Figure 3 line 1).
  static FusionPartition trivial(const analysis::ASDG &Graph);

  /// A partition from an explicit statement-to-cluster assignment. Each
  /// entry must already satisfy the representation invariant merge()
  /// maintains: a cluster's id is its smallest member's statement id.
  /// The branch-and-bound partitioner (IlpStrategy) materializes its
  /// search states through this.
  static FusionPartition fromAssignment(const analysis::ASDG &Graph,
                                        std::vector<unsigned> Assignment);

  const analysis::ASDG &graph() const { return *G; }

  unsigned numStmts() const { return static_cast<unsigned>(ClusterOf.size()); }

  /// Cluster containing statement \p StmtId.
  unsigned clusterOf(unsigned StmtId) const { return ClusterOf[StmtId]; }

  /// Active cluster ids, ascending.
  std::vector<unsigned> clusters() const;

  /// Number of clusters (the paper's l).
  unsigned numClusters() const {
    return static_cast<unsigned>(clusters().size());
  }

  /// Statement ids in cluster \p Cluster, ascending (program order).
  std::vector<unsigned> members(unsigned Cluster) const;

  /// Merges all clusters in \p C into the one with the smallest id.
  /// Returns the surviving cluster id.
  unsigned merge(const std::set<unsigned> &C);

  /// Clusters that currently contain a reference to \p Var (Figure 3
  /// line 5).
  std::set<unsigned> clustersReferencing(const ir::Symbol *Var) const;

  /// Distinct inter-cluster dependence edges (SrcCluster, TgtCluster),
  /// SrcCluster != TgtCluster.
  std::vector<std::pair<unsigned, unsigned>> clusterEdges() const;

  /// GROW (Figure 3): clusters not in \p C that are reachable from a
  /// cluster in C *and* reach a cluster in C — i.e. the clusters that
  /// would sit on an inter-cluster cycle if C were fused. One application
  /// is a closure (see implementation comment).
  std::set<unsigned> grow(const std::set<unsigned> &C) const;

  /// All unconstrained distance vectors on dependences internal to the
  /// hypothetical cluster formed by fusing the clusters of \p C. Returns
  /// std::nullopt when any internal dependence is unrepresentable.
  std::optional<std::vector<ir::Offset>>
  internalUDVs(const std::set<unsigned> &C) const;

  void print(std::ostream &OS) const;
};

/// FUSION-PARTITION? (Definition 5): would merging the clusters of \p C in
/// \p P produce a legal fusion partition? Checks (i) a common region of
/// normalized statements, (ii) null intra-cluster flow dependences, (iii)
/// acyclicity of the quotient graph after the merge, and (iv) existence of
/// a loop structure vector. When \p OutLSV is non-null and the merge is
/// legal, stores the loop structure vector found for the merged cluster.
bool isLegalFusion(const FusionPartition &P, const std::set<unsigned> &C,
                   LoopStructureVector *OutLSV = nullptr);

/// Definition 5 with condition (ii) generalized: an intra-cluster flow
/// dependence is acceptable when \p FlowOk accepts its unconstrained
/// distance vector. `isLegalFusion` uses `u.isZero()`; the partial
/// contraction extension relaxes the rule along sequential dimensions.
bool isLegalFusionWithFlowRule(
    const FusionPartition &P, const std::set<unsigned> &C,
    const std::function<bool(const ir::Offset &)> &FlowOk,
    LoopStructureVector *OutLSV = nullptr);

/// Definition 6 with the distance condition generalized: \p Var is
/// contractible (to a scalar or buffer) when every dependence due to it
/// has endpoints in the merged cluster and a distance accepted by
/// \p DistOk, plus the liveness side conditions.
bool isContractibleWithRule(
    const FusionPartition &P, const std::set<unsigned> &C,
    const ir::ArraySymbol *Var,
    const std::function<bool(const ir::Offset &)> &DistOk);

/// CONTRACTIBLE? (Definition 6) plus the liveness side conditions: \p Var
/// is contractible under partition \p P with the clusters of \p C merged
/// iff (a) it is an array that is written, not live-out, has no
/// upward-exposed read, and is referenced only by normalized statements,
/// (b) the source and target of every dependence due to Var fall in the
/// merged cluster, and (c) every such dependence's UDV is the null vector.
bool isContractible(const FusionPartition &P, const std::set<unsigned> &C,
                    const ir::ArraySymbol *Var);

/// Convenience: contractibility in the partition as-is (each cluster by
/// itself, no hypothetical merge).
bool isContractible(const FusionPartition &P, const ir::ArraySymbol *Var);

/// Structural sanity check used by tests: every cluster of \p P satisfies
/// Definition 5 on its own and the quotient graph is acyclic.
bool isValidPartition(const FusionPartition &P);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_FUSIONPARTITION_H

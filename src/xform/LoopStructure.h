//===- xform/LoopStructure.h - Loop structure vectors ----------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *loop structure vector* (paper Definition 4) describes the dimension
/// and direction of each loop of an n-deep scalarized loop nest: it is a
/// permutation of {±1, ±2, ..., ±n} where loop i (1 = outermost) iterates
/// over array dimension |p_i| in the direction of p_i's sign. This file
/// also implements FIND-LOOP-STRUCTURE (paper Figure 4), which picks a
/// legal vector for a set of unconstrained distance vectors, preferring to
/// match inner loops with higher array dimensions for spatial locality
/// under row-major allocation.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_LOOPSTRUCTURE_H
#define ALF_XFORM_LOOPSTRUCTURE_H

#include "ir/Offset.h"

#include <optional>
#include <string>
#include <vector>

namespace alf {
namespace xform {

/// A signed permutation describing an n-deep loop nest (Definition 4).
class LoopStructureVector {
  std::vector<int> Elems; // Elems[i] = +-(dim+1), i = 0 is outermost

public:
  LoopStructureVector() = default;
  explicit LoopStructureVector(std::vector<int> Elems)
      : Elems(std::move(Elems)) {}

  /// The canonical nest for rank \p Rank: (1, 2, ..., n), i.e. outermost
  /// loop over dimension 1, all increasing — the row-major locality
  /// preference with no constraints.
  static LoopStructureVector identity(unsigned Rank);

  unsigned rank() const { return static_cast<unsigned>(Elems.size()); }

  /// Raw signed element for loop \p Loop (0 = outermost).
  int element(unsigned Loop) const { return Elems[Loop]; }

  /// Zero-based array dimension iterated by loop \p Loop.
  unsigned dimOf(unsigned Loop) const {
    int E = Elems[Loop];
    return static_cast<unsigned>((E < 0 ? -E : E) - 1);
  }

  /// +1 when loop \p Loop iterates in increasing order, -1 decreasing.
  int dirOf(unsigned Loop) const { return Elems[Loop] < 0 ? -1 : 1; }

  bool operator==(const LoopStructureVector &RHS) const {
    return Elems == RHS.Elems;
  }

  /// Renders as "(-2,1)".
  std::string str() const;
};

/// Constrains an unconstrained distance vector with a loop structure
/// vector (Definition 4's construction: d_i = sign(p_i) * u_{|p_i|}).
ir::Offset constrain(const ir::Offset &U, const LoopStructureVector &P);

/// True if \p D is lexicographically nonnegative: the null vector, or its
/// leftmost nonzero element is positive (Definition 1 discussion).
bool isLexicographicallyNonnegative(const ir::Offset &D);

/// FIND-LOOP-STRUCTURE (paper Figure 4). Given the unconstrained distance
/// vectors of a cluster's intra-cluster dependences (all of rank \p Rank),
/// returns a loop structure vector that preserves every dependence, or
/// std::nullopt when none exists. Runs in O(n^2 e).
std::optional<LoopStructureVector>
findLoopStructure(const std::vector<ir::Offset> &UDVs, unsigned Rank);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_LOOPSTRUCTURE_H

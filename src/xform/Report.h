//===- xform/Report.h - Contraction decision reporting ---------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explains the optimizer's contraction decisions in terms of the
/// paper's conditions: for every array, either "contracted" or the first
/// Definition 6 / side condition that failed, naming the offending
/// dependence where there is one. Surfaced through `zplc --explain` so a
/// user can see why a temporary survived.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_REPORT_H
#define ALF_XFORM_REPORT_H

#include "xform/Parallelize.h"
#include "xform/Strategy.h"

#include <string>
#include <vector>

namespace alf {
namespace xform {

/// Why an array was not contracted (or that it was).
enum class ContractionOutcome {
  Contracted,
  LiveOut,          ///< value observable after the fragment
  ReadOnly,         ///< never written; nothing to contract
  UpwardExposed,    ///< live-in value read before any write
  UnfusableRef,     ///< referenced by a communication/opaque statement
  CarriedDistance,  ///< some dependence distance is not the null vector
  SplitClusters,    ///< references end up in more than one loop nest
};

/// Printable name of an outcome.
const char *getOutcomeName(ContractionOutcome O);

/// Classifies \p Var's outcome under the final partition of \p SR, with a
/// one-line human-readable explanation in \p Detail (optional).
ContractionOutcome classifyContraction(const StrategyResult &SR,
                                       const ir::ArraySymbol *Var,
                                       std::string *Detail = nullptr);

/// The full report: one line per array of the program, in symbol order.
std::string contractionReport(const StrategyResult &SR);

/// One nest row of the parallelism report. Filled in by the execution
/// layer's planner (this module cannot see the loop IR, so callers
/// describe their nests in these terms).
struct NestParallelSummary {
  unsigned ClusterId = 0;
  std::string LSV;    ///< rendered loop structure vector, e.g. "(1,2)"
  int64_t Points = 0; ///< total iteration points of the nest
  NestParallelPlan Plan;
};

/// "Which nests ran parallel and why": one line per nest, naming the
/// decision (outer-parallel / inner-parallel / seq-*), the parallel loop
/// level where there is one, and the legality justification.
std::string parallelismReport(const std::vector<NestParallelSummary> &Nests);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_REPORT_H

//===- xform/Parallelize.h - UDV-based parallelization legality -*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides which loop of a scalarized nest may run its iterations
/// concurrently. Fusion hands us the exact dependence structure of every
/// nest — the unconstrained distance vectors (Definition 2) of all
/// intra-cluster dependences — so the classic legality rule applies
/// directly: loop L of the nest may be parallelized iff every dependence
/// is either carried by a loop outer to L (some earlier component of the
/// constrained distance vector is nonzero) or independent of L (the L-th
/// component is zero). The analysis picks the outermost such loop:
/// level 0 means free outer-loop parallelism, a deeper level means the
/// outer loops run sequentially with a barrier per outer iteration
/// (tile-with-barriers), and no level means the nest stays sequential.
///
/// Two nest-level conditions override the distance test:
///  * a scalar reduction accumulator carries a dependence on every loop
///    (and splitting it would perturb floating-point association, which
///    the bit-identical oracle forbids), so reducing nests stay
///    sequential;
///  * a rolling buffer from partial contraction aliases iterations along
///    its reduced (modulo-indexed) dimensions, so loops over such
///    dimensions are not eligible.
///
/// Contracted scalars need no entry here: Definition 6 guarantees all of
/// their references carry the same offset, so their dependences are
/// loop-independent and the executor keeps them thread-private.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_XFORM_PARALLELIZE_H
#define ALF_XFORM_PARALLELIZE_H

#include "xform/LoopStructure.h"

#include <string>
#include <vector>

namespace alf {
namespace xform {

/// The decision made for one nest, in report-friendly form.
enum class ParallelDecision {
  OuterParallel, ///< outermost loop carries no dependence
  InnerParallel, ///< a deeper loop parallelized; barrier per outer iter
  SeqReduction,  ///< scalar reduction carries every loop
  SeqCarried,    ///< every loop carries a dependence or is wrapped
  SeqNoLoops,    ///< rank-0 nest: nothing to parallelize
};

/// Printable name ("outer-parallel", "inner-parallel", ...).
const char *getParallelDecisionName(ParallelDecision D);

/// Everything the legality test needs to know about one nest.
struct NestParallelInput {
  LoopStructureVector LSV;       ///< the nest's loop structure
  std::vector<ir::Offset> UDVs;  ///< intra-cluster unconstrained distances
  bool HasReduction = false;     ///< body folds into a scalar accumulator
  std::vector<bool> WrappedDims; ///< array dims aliased by rolling buffers
};

/// The plan for one nest: which loop level (0 = outermost) runs its
/// iterations concurrently, or -1 for sequential execution.
struct NestParallelPlan {
  int ParallelLoop = -1;
  ParallelDecision Decision = ParallelDecision::SeqNoLoops;
  std::string Reason; ///< one-line human-readable justification

  bool isParallel() const { return ParallelLoop >= 0; }

  /// True when outer loops run sequentially around the parallel loop,
  /// i.e. execution needs one barrier per outer iteration.
  bool needsBarriers() const { return ParallelLoop > 0; }
};

/// True iff loop \p Loop of \p LSV can run concurrently given \p UDVs:
/// every constrained distance vector either has a nonzero component at
/// some outer loop or a zero component at \p Loop.
bool isLoopParallelizable(const LoopStructureVector &LSV,
                          const std::vector<ir::Offset> &UDVs, unsigned Loop);

/// Picks the outermost legal parallel loop of a nest (see file comment).
NestParallelPlan analyzeNestParallelism(const NestParallelInput &In);

} // namespace xform
} // namespace alf

#endif // ALF_XFORM_PARALLELIZE_H

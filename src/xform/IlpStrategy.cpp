//===- xform/IlpStrategy.cpp - Optimal fusion partitioning ------------------===//
//
// Branch-and-bound search for the contraction-optimal legal fusion
// partition. The encoding and the exactness argument are documented in
// DESIGN.md section 13; in short:
//
//  * Partitions are enumerated as restricted-growth assignments in
//    program order: statement i either joins one of the clusters already
//    holding a statement j < i, or opens a new cluster. Every partition
//    is generated exactly once.
//  * Each join is checked with the same Definition 5 predicate the
//    greedy algorithm uses (isLegalFusion). The check prunes exactly:
//    conditions (i), (ii), (iv) and the communication-span rule are
//    monotone in the statement set, and a quotient cycle created by a
//    prefix assignment cannot disappear in any completion, because ASDG
//    edges respect program order and decided clusters never re-merge
//    later in this enumeration.
//  * The incumbent is seeded with FUSION-FOR-CONTRACTION's result, so
//    the solver's objective is >= greedy's by construction, and node-
//    budget exhaustion degrades to greedy rather than to garbage.
//  * The bound at a prefix is the summed weight-bytes of every
//    contraction candidate whose referencing statements are not yet
//    split across two decided clusters; it is admissible, so pruning on
//    it preserves objective optimality. Objective ties are broken by a
//    coarse cache-model cost from src/machine.
//
//===----------------------------------------------------------------------===//

#include "xform/IlpStrategy.h"

#include "obs/Obs.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

ALF_STATISTIC(NumIlpSolves, "strategy", "Branch-and-bound solves run");
ALF_STATISTIC(NumIlpNodes, "strategy", "Branch-and-bound nodes explored");
ALF_STATISTIC(NumIlpPruned, "strategy", "Subtrees pruned by the bound");
ALF_STATISTIC(NumIlpLegalityRejects, "strategy",
              "Joins rejected by Definition 5");
ALF_STATISTIC(NumIlpBudgetExhausted, "strategy",
              "Solves that hit the node budget and fell back to greedy");
ALF_STATISTIC(NumIlpImproved, "strategy",
              "Solves that beat the greedy objective");

static std::atomic<bool> CorruptForTest{false};

void xform::setIlpCorruptionForTest(bool Enabled) {
  CorruptForTest.store(Enabled, std::memory_order_relaxed);
}

/// Bytes of one array element; the interpreter, the JIT and the emitted C
/// all compute in doubles.
static constexpr double ElemBytes = static_cast<double>(sizeof(double));

double xform::contractedBytes(const FusionPartition &P,
                              const std::vector<const ArraySymbol *> &Vars) {
  return contractionBenefit(P, Vars) * ElemBytes;
}

/// The region a statement iterates over, when it has one (normalized
/// statements and reductions; communication and opaque statements do
/// not).
static const Region *stmtRegion(const Stmt *S) {
  if (const auto *NS = dyn_cast<NormalizedStmt>(S))
    return NS->getRegion();
  if (const auto *RS = dyn_cast<ReduceStmt>(S))
    return RS->getRegion();
  return nullptr;
}

double xform::cacheModelCost(const FusionPartition &P, const StrategyResult &SR,
                             const machine::MachineDesc &M) {
  const ASDG &G = P.graph();
  const Program &Prog = G.getProgram();

  // Per cluster: the distinct non-contracted arrays its statements touch,
  // with the bytes each reference streams (the statement's region).
  struct ClusterLoad {
    double WorkingSetBytes = 0; ///< one pass over each distinct array
    double TrafficBytes = 0;    ///< every statement's pass, summed
  };
  std::map<unsigned, ClusterLoad> Loads;
  for (const ArraySymbol *A : G.arraysByDecreasingWeight()) {
    if (SR.isContracted(A))
      continue; // contracted arrays live in registers / a rolling buffer
    std::map<unsigned, double> MaxPerCluster;
    for (unsigned StmtId : G.statementsReferencing(A)) {
      const Region *R = stmtRegion(Prog.getStmt(StmtId));
      if (!R)
        continue;
      double Bytes = static_cast<double>(R->size()) * ElemBytes;
      unsigned Cl = P.clusterOf(StmtId);
      Loads[Cl].TrafficBytes += Bytes;
      MaxPerCluster[Cl] = std::max(MaxPerCluster[Cl], Bytes);
    }
    for (auto [Cl, Bytes] : MaxPerCluster)
      Loads[Cl].WorkingSetBytes += Bytes;
  }

  // Price each cluster's traffic by the slowest cache level its working
  // set still fits in. Coarse, but deterministic and monotone in the
  // quantities fusion actually changes (how many arrays share a nest).
  double Cost = 0;
  for (auto &[Cl, Load] : Loads) {
    (void)Cl;
    double PerLine;
    if (Load.WorkingSetBytes <= static_cast<double>(M.L1.SizeBytes))
      PerLine = M.L1HitCost;
    else if (M.L2 &&
             Load.WorkingSetBytes <= static_cast<double>(M.L2->SizeBytes))
      PerLine = M.L2HitCost;
    else
      PerLine = M.MemCost;
    Cost += Load.TrafficBytes / M.L1.LineBytes * PerLine;
  }
  return Cost;
}

namespace {

/// One contraction candidate the bound tracks: an array that passes every
/// partition-independent contractibility condition, with its weight in
/// bytes and the statements referencing it.
struct Candidate {
  const ArraySymbol *A = nullptr;
  double Bytes = 0;
  std::vector<unsigned> Referencing;
};

/// Can statements \p SA and \p SB ever share a fusible cluster, in any
/// partition? Checks only the monotone-permanent parts of Definition 5
/// between the pair: common region, the communication-span rule, null
/// flow UDVs and representable dependences with a loop structure over
/// the pair's own UDVs. Deliberately not the cycle check (a path around
/// a pair can be absorbed into a larger cluster).
bool pairCanEverCoCluster(const ASDG &G, unsigned SA, unsigned SB) {
  const Program &Prog = G.getProgram();
  const Region *RA = stmtRegion(Prog.getStmt(SA));
  const Region *RB = stmtRegion(Prog.getStmt(SB));
  if (!RA || !RB || *RA != *RB)
    return false;
  unsigned Lo = std::min(SA, SB), Hi = std::max(SA, SB);
  for (unsigned Pos = Lo + 1; Pos < Hi; ++Pos)
    if (isa<CommStmt>(Prog.getStmt(Pos)))
      return false;
  std::vector<Offset> UDVs;
  for (const DepEdge &E : G.edges()) {
    bool Between = (E.Src == Lo && E.Tgt == Hi);
    if (!Between)
      continue;
    for (const DepLabel &L : E.Labels) {
      if (!L.UDV)
        return false; // unrepresentable internal dependence
      if (L.Type == DepType::Flow && !L.UDV->isZero())
        return false; // condition (ii) is permanent
      UDVs.push_back(*L.UDV);
    }
  }
  return findLoopStructure(UDVs, RA->rank()).has_value();
}

/// The branch-and-bound search over restricted-growth assignments.
class Solver {
public:
  Solver(const ASDG &G, const IlpOptions &Opts, IlpStats &St)
      : G(G), Opts(Opts), St(St), N(G.numNodes()) {}

  StrategyResult run() {
    obs::Span SolveSpan("strategy.ilp.solve", G.getProgram().getName());

    collectCandidates();
    seedWithGreedy();

    Assign.resize(N);
    for (unsigned I = 0; I < N; ++I)
      Assign[I] = I;
    if (N > 0)
      search(0);

    if (St.BudgetExhausted) {
      ++NumIlpBudgetExhausted;
      obs::instant("strategy.ilp.budget_exhausted");
    }
    St.ImprovedOverGreedy = BestObj > St.GreedyObjectiveBytes;
    if (St.ImprovedOverGreedy) {
      ++NumIlpImproved;
      obs::instant("strategy.ilp.improved",
                   formatString("greedy=%.0f ilp=%.0f",
                                St.GreedyObjectiveBytes, BestObj));
    }
    St.ObjectiveBytes = BestObj;
    St.CacheCost = BestCost;
    ++NumIlpSolves;
    NumIlpNodes += St.NodesExplored;
    NumIlpPruned += St.BranchesPruned;
    NumIlpLegalityRejects += St.LegalityRejects;

    StrategyResult Result;
    Result.Partition = FusionPartition::fromAssignment(G, BestAssign);
    Result.Contracted = contractibleArrays(Result.Partition, Opts.Contract);
    return Result;
  }

private:
  const ASDG &G;
  const IlpOptions &Opts;
  IlpStats &St;
  unsigned N;

  std::vector<Candidate> Candidates;
  std::vector<unsigned> Assign; ///< prefix decided, suffix identity
  std::vector<unsigned> Reps;   ///< active cluster representatives

  std::vector<unsigned> BestAssign;
  double BestObj = -1;
  double BestCost = 0;

  const machine::MachineDesc &machineDesc() {
    static const machine::MachineDesc Default = machine::crayT3E();
    return Opts.Machine ? *Opts.Machine : Default;
  }

  /// Arrays the objective can ever count: accepted by the filter, passing
  /// every partition-independent side condition of Definition 6, and with
  /// referencing statements that can pairwise share a cluster at all.
  void collectCandidates() {
    FusionPartition Trivial = FusionPartition::trivial(G);
    for (const ArraySymbol *A : G.arraysByDecreasingWeight()) {
      if (!Opts.Contract(A))
        continue;
      const std::vector<unsigned> &Refs = G.statementsReferencing(A);
      std::set<unsigned> C(Refs.begin(), Refs.end());
      if (!isContractible(Trivial, C, A))
        continue;
      bool Feasible = true;
      for (unsigned I = 0; I < Refs.size() && Feasible; ++I)
        for (unsigned J = I + 1; J < Refs.size() && Feasible; ++J)
          Feasible = pairCanEverCoCluster(G, Refs[I], Refs[J]);
      if (!Feasible)
        continue;
      Candidates.push_back({A, G.referenceWeight(A) * ElemBytes, Refs});
    }
  }

  /// Evaluate a complete assignment; adopt it when it beats the
  /// incumbent's objective, or matches it at lower cache cost.
  void offer(const std::vector<unsigned> &Full) {
    StrategyResult SR;
    SR.Partition = FusionPartition::fromAssignment(G, Full);
    SR.Contracted = contractibleArrays(SR.Partition, Opts.Contract);
    double Obj = contractedBytes(SR.Partition, SR.Contracted);
    double Cost = cacheModelCost(SR.Partition, SR, machineDesc());
    if (Obj > BestObj || (Obj == BestObj && Cost < BestCost)) {
      BestObj = Obj;
      BestCost = Cost;
      BestAssign = Full;
    }
  }

  void seedWithGreedy() {
    obs::Span SeedSpan("strategy.ilp.seed");
    FusionPartition P = FusionPartition::trivial(G);
    fuseForContraction(P, Opts.Contract);
    std::vector<unsigned> Greedy(N);
    for (unsigned I = 0; I < N; ++I)
      Greedy[I] = P.clusterOf(I);
    offer(Greedy);
    St.GreedyObjectiveBytes = BestObj;
  }

  /// Admissible bound: candidates whose referencing statements are not
  /// yet split across two decided clusters may still be contracted;
  /// split ones never can be (decided clusters do not re-merge in this
  /// enumeration).
  double bound(unsigned Depth) const {
    double UB = 0;
    for (const Candidate &C : Candidates) {
      unsigned Cluster = ~0u;
      bool Split = false;
      for (unsigned StmtId : C.Referencing) {
        if (StmtId >= Depth)
          continue;
        if (Cluster == ~0u)
          Cluster = Assign[StmtId];
        else if (Assign[StmtId] != Cluster) {
          Split = true;
          break;
        }
      }
      if (!Split)
        UB += C.Bytes;
    }
    return UB;
  }

  void search(unsigned Depth) {
    if (St.BudgetExhausted)
      return;
    if (Depth == N) {
      offer(Assign);
      return;
    }
    if (++St.NodesExplored >= Opts.NodeBudget) {
      St.BudgetExhausted = true;
      return;
    }
    // Cannot beat the incumbent's objective from here: a completion can
    // at best tie, and the incumbent already carries an evaluated
    // tie-break cost.
    if (bound(Depth) <= BestObj) {
      ++St.BranchesPruned;
      return;
    }

    // Join an existing cluster (fusion-rich completions first: those are
    // where contractions live), then open a new one.
    FusionPartition Prefix = FusionPartition::fromAssignment(G, Assign);
    for (unsigned R : Reps) {
      if (!isLegalFusion(Prefix, {R, Depth})) {
        ++St.LegalityRejects;
        continue;
      }
      Assign[Depth] = R;
      search(Depth + 1);
      Assign[Depth] = Depth;
      if (St.BudgetExhausted)
        return;
    }
    Reps.push_back(Depth);
    search(Depth + 1);
    Reps.pop_back();
  }
};

} // namespace

/// Deliberately break \p Result: force an illegal cluster merge when one
/// exists, else contract something Definition 6 forbids. Used only under
/// setIlpCorruptionForTest to prove the verifier distrusts the solver.
static void corruptResult(const ASDG &G, StrategyResult &Result) {
  const FusionPartition &P = Result.Partition;
  std::vector<unsigned> Clusters = P.clusters();
  for (unsigned I = 0; I < Clusters.size(); ++I)
    for (unsigned J = I + 1; J < Clusters.size(); ++J) {
      std::set<unsigned> C{Clusters[I], Clusters[J]};
      if (isLegalFusion(P, C))
        continue;
      std::vector<unsigned> Bad(P.numStmts());
      for (unsigned S = 0; S < P.numStmts(); ++S) {
        unsigned Cl = P.clusterOf(S);
        Bad[S] = C.count(Cl) ? *C.begin() : Cl;
      }
      Result.Partition = FusionPartition::fromAssignment(G, Bad);
      return;
    }
  // Everything fuses with everything: corrupt the contraction set with a
  // live-out array instead.
  for (const ArraySymbol *A : G.arraysByDecreasingWeight())
    if (A->isLiveOut() && !Result.isContracted(A)) {
      Result.Contracted.push_back(A);
      return;
    }
}

StrategyResult xform::solveOptimalPartition(const ASDG &G,
                                            const IlpOptions &Opts,
                                            IlpStats *OutStats) {
  IlpStats Local;
  IlpStats &St = OutStats ? *OutStats : Local;
  St = IlpStats();
  Solver S(G, Opts, St);
  StrategyResult Result = S.run();
  if (CorruptForTest.load(std::memory_order_relaxed))
    corruptResult(G, Result);
  return Result;
}

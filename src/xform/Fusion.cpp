//===- xform/Fusion.cpp - Statement fusion algorithms -----------------------===//

#include "xform/Fusion.h"

#include "support/Statistic.h"

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

ArrayFilter xform::anyArray() {
  return [](const ArraySymbol *) { return true; };
}

ArrayFilter xform::compilerTempsOnly() {
  return [](const ArraySymbol *A) { return A->isCompilerTemp(); };
}

/// Shared driver for the Figure 3 greedy loop. When \p RequireContractible
/// is true this is FUSION-FOR-CONTRACTION; when false it is fusion for
/// locality (the CONTRACTIBLE? test of line 7 eliminated).
ALF_STATISTIC(NumCandidatesConsidered, "fusion",
              "Arrays considered by the greedy fusion loop");
ALF_STATISTIC(NumMergesPerformed, "fusion", "Cluster merges performed");
ALF_STATISTIC(NumRejectedContractible, "fusion",
              "Merges rejected by CONTRACTIBLE?");
ALF_STATISTIC(NumRejectedLegality, "fusion",
              "Merges rejected by FUSION-PARTITION?");

static unsigned runGreedyFusion(FusionPartition &P,
                                const ArrayFilter &Candidates,
                                bool RequireContractible) {
  const ASDG &G = P.graph();
  unsigned Merges = 0;

  // Line 3: array variables sorted by decreasing weight w(x, G).
  for (const ArraySymbol *Var : G.arraysByDecreasingWeight()) {
    if (!Candidates(Var))
      continue;

    // Line 5: clusters containing a reference to Var.
    std::set<unsigned> C = P.clustersReferencing(Var);
    if (C.empty())
      continue;

    // Line 6: close under GROW so the merge cannot create cycles.
    std::set<unsigned> Grown = P.grow(C);
    C.insert(Grown.begin(), Grown.end());
    if (C.size() < 2)
      continue; // nothing to fuse
    ++NumCandidatesConsidered;

    // Line 7: CONTRACTIBLE?(x, c, G) and FUSION-PARTITION?(c, G).
    if (RequireContractible && !isContractible(P, C, Var)) {
      ++NumRejectedContractible;
      continue;
    }
    if (!isLegalFusion(P, C)) {
      ++NumRejectedLegality;
      continue;
    }

    // Lines 8-10: merge into the smallest cluster id.
    P.merge(C);
    ++Merges;
    ++NumMergesPerformed;
  }
  return Merges;
}

unsigned xform::fuseForContraction(FusionPartition &P,
                                   const ArrayFilter &Candidates) {
  return runGreedyFusion(P, Candidates, /*RequireContractible=*/true);
}

unsigned xform::fuseForLocality(FusionPartition &P) {
  return runGreedyFusion(P, anyArray(), /*RequireContractible=*/false);
}

unsigned xform::fuseAllPairwise(FusionPartition &P) {
  const ir::Program &Prog = P.graph().getProgram();

  // Cheap per-cluster precheck: the region its statements share, or null
  // when the cluster cannot join a multi-statement nest at all.
  auto RegionOf = [&Prog, &P](unsigned Cluster) -> const ir::Region * {
    const ir::Region *Common = nullptr;
    for (unsigned StmtId : P.members(Cluster)) {
      const ir::Stmt *S = Prog.getStmt(StmtId);
      const ir::Region *R = nullptr;
      if (const auto *NS = dyn_cast<ir::NormalizedStmt>(S))
        R = NS->getRegion();
      else if (const auto *RS = dyn_cast<ir::ReduceStmt>(S))
        R = RS->getRegion();
      if (!R)
        return nullptr;
      if (!Common)
        Common = R;
      else if (*Common != *R)
        return nullptr;
    }
    return Common;
  };

  unsigned Merges = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<unsigned> Clusters = P.clusters();
    std::set<unsigned> Dead;
    for (size_t I = 0; I < Clusters.size(); ++I) {
      if (Dead.count(Clusters[I]))
        continue;
      const ir::Region *RI = RegionOf(Clusters[I]);
      if (!RI)
        continue;
      for (size_t J = I + 1; J < Clusters.size(); ++J) {
        if (Dead.count(Clusters[J]) || Dead.count(Clusters[I]))
          break;
        const ir::Region *RJ = RegionOf(Clusters[J]);
        if (!RJ || *RI != *RJ)
          continue;
        std::set<unsigned> C{Clusters[I], Clusters[J]};
        std::set<unsigned> Grown = P.grow(C);
        C.insert(Grown.begin(), Grown.end());
        if (!isLegalFusion(P, C))
          continue;
        unsigned Survivor = P.merge(C);
        for (unsigned Cl : C)
          if (Cl != Survivor)
            Dead.insert(Cl);
        ++Merges;
        Changed = true;
        if (Survivor != Clusters[I])
          break; // this row's cluster was absorbed; move on
      }
    }
  }
  return Merges;
}

std::vector<const ArraySymbol *>
xform::contractibleArrays(const FusionPartition &P, const ArrayFilter &Allowed) {
  std::vector<const ArraySymbol *> Result;
  for (const ArraySymbol *A : P.graph().getProgram().arrays())
    if (Allowed(A) && isContractible(P, A))
      Result.push_back(A);
  return Result;
}

double xform::contractionBenefit(
    const FusionPartition &P, const std::vector<const ArraySymbol *> &Vars) {
  double Benefit = 0.0;
  for (const ArraySymbol *A : Vars)
    Benefit += P.graph().referenceWeight(A);
  return Benefit;
}

//===- xform/Report.cpp - Contraction decision reporting --------------------===//

#include "xform/Report.h"

#include "support/ErrorHandling.h"
#include "support/StringUtil.h"

#include <set>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

const char *xform::getOutcomeName(ContractionOutcome O) {
  switch (O) {
  case ContractionOutcome::Contracted:
    return "contracted";
  case ContractionOutcome::LiveOut:
    return "live-out";
  case ContractionOutcome::ReadOnly:
    return "read-only";
  case ContractionOutcome::UpwardExposed:
    return "upward-exposed";
  case ContractionOutcome::UnfusableRef:
    return "unfusable-reference";
  case ContractionOutcome::CarriedDistance:
    return "carried-distance";
  case ContractionOutcome::SplitClusters:
    return "split-clusters";
  }
  alf_unreachable("unhandled contraction outcome");
}

ContractionOutcome xform::classifyContraction(const StrategyResult &SR,
                                              const ArraySymbol *Var,
                                              std::string *Detail) {
  auto Explain = [Detail](std::string Msg) {
    if (Detail)
      *Detail = std::move(Msg);
  };
  const FusionPartition &P = SR.Partition;
  const ASDG &G = P.graph();
  const Program &Prog = G.getProgram();

  if (SR.isContracted(Var)) {
    Explain(formatString("contracted (reference weight %.0f)",
                         G.referenceWeight(Var)));
    return ContractionOutcome::Contracted;
  }
  if (Var->isLiveOut()) {
    Explain("its value is observable after the fragment");
    return ContractionOutcome::LiveOut;
  }

  std::vector<unsigned> Refs = G.statementsReferencing(Var);

  // Read-only arrays first: there is no value to contract.
  bool EverWritten = false;
  for (unsigned StmtId : Refs) {
    const Stmt *S = Prog.getStmt(StmtId);
    if (const auto *NS = dyn_cast<NormalizedStmt>(S))
      EverWritten |= NS->getLHS() == Var;
    else if (!isa<ReduceStmt>(S))
      EverWritten = true; // conservative for comm/opaque writers
  }
  if (!EverWritten) {
    Explain("never written in the fragment");
    return ContractionOutcome::ReadOnly;
  }

  bool SeenWrite = false;
  for (unsigned StmtId : Refs) {
    const Stmt *S = Prog.getStmt(StmtId);
    if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
      if (!SeenWrite && NS->readsArray(Var)) {
        Explain(formatString("S%u reads the live-in value before any write",
                             StmtId));
        return ContractionOutcome::UpwardExposed;
      }
      if (NS->getLHS() == Var)
        SeenWrite = true;
      continue;
    }
    if (isa<ReduceStmt>(S)) {
      if (!SeenWrite) {
        Explain(formatString("S%u reads the live-in value before any write",
                             StmtId));
        return ContractionOutcome::UpwardExposed;
      }
      continue;
    }
    Explain(formatString("referenced by unfusable statement S%u (%s)",
                         StmtId,
                         isa<CommStmt>(S) ? "communication" : "opaque"));
    return ContractionOutcome::UnfusableRef;
  }

  // A dependence with non-null distance?
  for (const DepEdge &E : G.edges())
    for (const DepLabel &L : E.Labels) {
      if (L.Var != Var)
        continue;
      if (!L.UDV || !L.UDV->isZero()) {
        Explain(formatString(
            "%s dependence S%u -> S%u carries distance %s",
            getDepTypeName(L.Type), E.Src, E.Tgt,
            L.UDV ? L.UDV->str().c_str() : "(unknown)"));
        return ContractionOutcome::CarriedDistance;
      }
    }

  // Null distances everywhere: the references must span clusters.
  std::set<unsigned> Clusters;
  for (unsigned StmtId : Refs)
    Clusters.insert(P.clusterOf(StmtId));
  Explain(formatString("references land in %zu separate loop nests",
                       Clusters.size()));
  return ContractionOutcome::SplitClusters;
}

std::string xform::contractionReport(const StrategyResult &SR) {
  const Program &Prog = SR.Partition.graph().getProgram();
  std::string Out;
  for (const ArraySymbol *A : Prog.arrays()) {
    std::string Detail;
    ContractionOutcome O = classifyContraction(SR, A, &Detail);
    Out += formatString("%-12s %-20s %s\n", A->getName().c_str(),
                        getOutcomeName(O), Detail.c_str());
  }
  return Out;
}

std::string
xform::parallelismReport(const std::vector<NestParallelSummary> &Nests) {
  std::string Out;
  for (const NestParallelSummary &N : Nests) {
    std::string Where =
        N.Plan.isParallel()
            ? formatString("loop %d", N.Plan.ParallelLoop + 1)
            : std::string("-");
    Out += formatString("nest %-4u %-10s %8lld pts  %-15s %-7s %s\n",
                        N.ClusterId, N.LSV.c_str(),
                        static_cast<long long>(N.Points),
                        getParallelDecisionName(N.Plan.Decision),
                        Where.c_str(), N.Plan.Reason.c_str());
  }
  return Out;
}

//===- xform/PartialContraction.cpp - Lower-dimensional contraction ---------===//

#include "xform/PartialContraction.h"

#include "analysis/Footprint.h"

#include <algorithm>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

uint64_t PartialPlan::origBytes() const {
  uint64_t Elems = 1;
  for (int64_t E : FullExtents)
    Elems *= static_cast<uint64_t>(E);
  return Elems * Array->getElemSize();
}

uint64_t PartialPlan::bufferBytes() const {
  uint64_t Elems = 1;
  for (int64_t E : BufferExtents)
    Elems *= static_cast<uint64_t>(E);
  return Elems * Array->getElemSize();
}

ir::Region PartialPlan::bufferRegion() const {
  std::vector<int64_t> Lo(OrigLo.size()), Hi(OrigLo.size());
  for (unsigned D = 0; D < OrigLo.size(); ++D) {
    if (isReduced(D)) {
      Lo[D] = 0;
      Hi[D] = BufferExtents[D] - 1;
    } else {
      Lo[D] = OrigLo[D];
      Hi[D] = OrigLo[D] + FullExtents[D] - 1;
    }
  }
  return ir::Region(std::move(Lo), std::move(Hi));
}

namespace {

/// The relaxed distance rule: zero along every distributed dimension.
std::function<bool(const Offset &)> distributedNull(const SequentialDims &Seq) {
  return [&Seq](const Offset &U) {
    for (unsigned D = 0; D < U.rank(); ++D)
      if (U[D] != 0 && !Seq.isSequential(D))
        return false;
    return true;
  };
}

} // namespace

bool xform::isLegalFusionRelaxed(const FusionPartition &P,
                                 const std::set<unsigned> &C,
                                 const SequentialDims &Seq,
                                 LoopStructureVector *OutLSV) {
  return isLegalFusionWithFlowRule(P, C, distributedNull(Seq), OutLSV);
}

bool xform::isPartiallyContractible(const FusionPartition &P,
                                    const std::set<unsigned> &C,
                                    const ir::ArraySymbol *Var,
                                    const SequentialDims &Seq) {
  return isContractibleWithRule(P, C, Var, distributedNull(Seq));
}

unsigned xform::fuseForPartialContraction(FusionPartition &P,
                                          const SequentialDims &Seq) {
  const analysis::ASDG &G = P.graph();
  unsigned Merges = 0;
  for (const ArraySymbol *Var : G.arraysByDecreasingWeight()) {
    std::set<unsigned> C = P.clustersReferencing(Var);
    if (C.empty())
      continue;
    std::set<unsigned> Grown = P.grow(C);
    C.insert(Grown.begin(), Grown.end());
    if (C.size() < 2)
      continue;
    if (!isPartiallyContractible(P, C, Var, Seq))
      continue;
    if (!isLegalFusionRelaxed(P, C, Seq))
      continue;
    P.merge(C);
    ++Merges;
  }
  return Merges;
}

std::vector<PartialPlan> xform::planPartialContraction(
    const FusionPartition &P, const SequentialDims &Seq,
    const std::vector<const ArraySymbol *> &Exclude) {
  const analysis::ASDG &G = P.graph();
  const Program &Prog = G.getProgram();
  FootprintInfo FI = FootprintInfo::compute(Prog);

  std::vector<PartialPlan> Plans;
  for (const ArraySymbol *Var : Prog.arrays()) {
    if (std::find(Exclude.begin(), Exclude.end(), Var) != Exclude.end())
      continue;
    if (isContractible(P, Var))
      continue; // full contraction is strictly better
    if (!isPartiallyContractible(P, std::set<unsigned>{}, Var, Seq))
      continue;
    const Region *Bounds = FI.boundsFor(Var);
    if (!Bounds)
      continue;

    // The cluster holding every reference to Var, its loop structure, and
    // the per-dimension maximum dependence distance of Var.
    std::vector<unsigned> Refs = G.statementsReferencing(Var);
    if (Refs.empty())
      continue;
    unsigned Cluster = P.clusterOf(Refs.front());
    auto UDVs = P.internalUDVs(std::set<unsigned>{Cluster});
    if (!UDVs)
      continue;
    unsigned Rank = Var->getRank();
    auto LSV = findLoopStructure(*UDVs, Rank);
    if (!LSV)
      continue;

    std::vector<int64_t> MaxDist(Rank, 0);
    for (const analysis::DepEdge &E : G.edges())
      for (const analysis::DepLabel &L : E.Labels) {
        if (L.Var != Var || !L.UDV)
          continue;
        for (unsigned D = 0; D < Rank; ++D)
          MaxDist[D] = std::max<int64_t>(
              MaxDist[D], (*L.UDV)[D] < 0 ? -(*L.UDV)[D] : (*L.UDV)[D]);
      }

    // The outermost loop carrying a dependence of Var.
    int CarryLoop = -1;
    for (unsigned Loop = 0; Loop < Rank; ++Loop)
      if (MaxDist[LSV->dimOf(Loop)] > 0) {
        CarryLoop = static_cast<int>(Loop);
        break;
      }

    // Halo-read safety for the carried dimension. Elements read outside
    // the written range are never produced (they hold the array's
    // initial/halo values); a rolling buffer may serve such a read a
    // stale slot from a previous sweep. Two safe cases: (a) every read
    // coordinate is covered by a write (no halo reads), or (b) the
    // carrying loop is the outermost loop of the nest, where halo reads
    // (bounded by the window width) happen before their slots are ever
    // reused. Otherwise the carried dimension keeps its full extent.
    bool CarrySafe = true;
    if (CarryLoop > 0) {
      unsigned CarryDim = LSV->dimOf(static_cast<unsigned>(CarryLoop));
      int64_t WriteLo = 0, WriteHi = -1, ReadLo = 0, ReadHi = -1;
      bool AnyWrite = false, AnyRead = false;
      for (unsigned StmtId : Refs) {
        const Stmt *S = Prog.getStmt(StmtId);
        auto Include = [&](const Region &R, const Offset &Off, bool Write) {
          int64_t Lo = R.lo(CarryDim) + Off[CarryDim];
          int64_t Hi = R.hi(CarryDim) + Off[CarryDim];
          int64_t &OutLo = Write ? WriteLo : ReadLo;
          int64_t &OutHi = Write ? WriteHi : ReadHi;
          bool &Any = Write ? AnyWrite : AnyRead;
          if (!Any) {
            OutLo = Lo;
            OutHi = Hi;
            Any = true;
          } else {
            OutLo = std::min(OutLo, Lo);
            OutHi = std::max(OutHi, Hi);
          }
        };
        if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
          if (NS->getLHS() == Var)
            Include(*NS->getRegion(), NS->getLHSOffset(), true);
          for (const ArrayRefExpr *Ref : NS->rhsArrayRefs())
            if (Ref->getSymbol() == Var)
              Include(*NS->getRegion(), Ref->getOffset(), false);
        } else if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
          for (const ArrayRefExpr *Ref : RS->bodyArrayRefs())
            if (Ref->getSymbol() == Var)
              Include(*RS->getRegion(), Ref->getOffset(), false);
        }
      }
      if (AnyRead && (!AnyWrite || ReadLo < WriteLo || ReadHi > WriteHi))
        CarrySafe = false;
    }

    PartialPlan Plan;
    Plan.Array = Var;
    Plan.OrigLo.resize(Rank);
    Plan.FullExtents.resize(Rank);
    Plan.BufferExtents.resize(Rank);
    for (unsigned D = 0; D < Rank; ++D) {
      Plan.OrigLo[D] = Bounds->lo(D);
      Plan.FullExtents[D] = Bounds->extent(D);
    }
    for (unsigned Loop = 0; Loop < Rank; ++Loop) {
      unsigned D = LSV->dimOf(Loop);
      if (CarryLoop < 0 || static_cast<int>(Loop) < CarryLoop)
        Plan.BufferExtents[D] = 1; // outside any carried dependence
      else if (static_cast<int>(Loop) == CarryLoop && CarrySafe)
        Plan.BufferExtents[D] =
            std::min<int64_t>(MaxDist[D] + 1, Plan.FullExtents[D]);
      else
        Plan.BufferExtents[D] = Plan.FullExtents[D]; // inner: full planes
    }

    if (Plan.bufferBytes() < Plan.origBytes())
      Plans.push_back(std::move(Plan));
  }
  return Plans;
}

//===- distsim/DistInterpreter.cpp - SPMD execution simulator ---------------===//

#include "distsim/DistInterpreter.h"

#include "analysis/Footprint.h"
#include "exec/Storage.h"
#include "support/ErrorHandling.h"
#include "support/Random.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace alf;
using namespace alf::analysis;
using namespace alf::distsim;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::machine;

namespace {

/// One processor's view of the program's arrays.
struct ProcState {
  std::vector<unsigned> Coords;
  // Interior (owned) slice of the global domain, per dimension.
  std::vector<BlockRange> Interior;
  // Local buffers (interior + halo + global-edge cells), by symbol id.
  std::map<unsigned, ArrayBuffer> Buffers;
};

struct DistContext {
  const LoopProgram &LP;
  const Program &P;
  const ProcGrid &Grid;
  uint64_t Seed;

  unsigned Rank = 0;                      ///< dimensionality of the domain
  std::vector<int64_t> DomainLo, DomainHi; ///< global iteration domain
  std::map<unsigned, std::vector<int64_t>> HaloWidth; ///< per array id
  FootprintInfo FI;
  std::vector<ProcState> Procs;
  std::map<const ScalarSymbol *, double> Scalars;

  explicit DistContext(const LoopProgram &LP, const ProcGrid &Grid,
                       uint64_t Seed)
      : LP(LP), P(LP.source()), Grid(Grid), Seed(Seed),
        FI(FootprintInfo::compute(P)) {}

  double readScalar(const ScalarSymbol *S) const {
    auto It = Scalars.find(S);
    return It == Scalars.end() ? 0.0 : It->second;
  }
};

/// Gathers the global iteration domain (union of nest regions) and the
/// per-array halo widths (maximum reference offset magnitudes).
void analyzeProgram(DistContext &Ctx) {
  bool First = true;
  for (const auto &NodePtr : Ctx.LP.nodes()) {
    const auto *Nest = dyn_cast<LoopNest>(NodePtr.get());
    if (!Nest)
      continue;
    const Region &R = *Nest->R;
    if (First) {
      Ctx.Rank = R.rank();
      Ctx.DomainLo.assign(Ctx.Rank, 0);
      Ctx.DomainHi.assign(Ctx.Rank, 0);
      for (unsigned D = 0; D < Ctx.Rank; ++D) {
        Ctx.DomainLo[D] = R.lo(D);
        Ctx.DomainHi[D] = R.hi(D);
      }
      First = false;
      continue;
    }
    if (R.rank() != Ctx.Rank)
      alf_unreachable("distributed run requires a single-rank program");
    for (unsigned D = 0; D < Ctx.Rank; ++D) {
      Ctx.DomainLo[D] = std::min(Ctx.DomainLo[D], R.lo(D));
      Ctx.DomainHi[D] = std::max(Ctx.DomainHi[D], R.hi(D));
    }
  }
  if (First)
    alf_unreachable("distributed run requires at least one loop nest");
  if (Ctx.Grid.Extents.size() != Ctx.Rank)
    alf_unreachable("processor grid rank must match the program rank");

  // Halo widths from the scalarized statements' reference offsets.
  auto Widen = [&Ctx](const ArraySymbol *A, const Offset &Off) {
    auto &W = Ctx.HaloWidth[A->getId()];
    if (W.empty())
      W.assign(A->getRank(), 0);
    for (unsigned D = 0; D < A->getRank(); ++D)
      W[D] = std::max<int64_t>(W[D], Off[D] < 0 ? -Off[D] : Off[D]);
  };
  for (const auto &NodePtr : Ctx.LP.nodes()) {
    const auto *Nest = dyn_cast<LoopNest>(NodePtr.get());
    if (!Nest)
      continue;
    for (const ScalarStmt &S : Nest->Body) {
      if (!S.LHS.isScalar()) {
        if (!S.LHS.Off.isZero())
          alf_unreachable(
              "distributed run requires zero-offset assignment targets");
        Widen(S.LHS.Array, S.LHS.Off);
      }
      for (const ArrayRefExpr *Ref : collectArrayRefs(S.RHS.get()))
        Widen(Ref->getSymbol(), Ref->getOffset());
    }
  }
}

/// Initializes one local buffer cell-by-cell with exactly the values the
/// sequential interpreter's linear fill produces over the footprint.
void initBuffer(const DistContext &Ctx, const ArraySymbol *A,
                const Region &Footprint, ArrayBuffer &Buf) {
  if (!A->isLiveIn())
    return; // zero-initialized by construction
  uint64_t Stream = Ctx.Seed ^ hashName(A->getName());

  // Row-major strides of the *footprint* (the sequential buffer).
  unsigned Rank = Footprint.rank();
  std::vector<int64_t> Strides(Rank, 1);
  for (int D = static_cast<int>(Rank) - 2; D >= 0; --D)
    Strides[D] = Strides[D + 1] * Footprint.extent(D + 1);

  const Region &B = Buf.bounds();
  std::vector<int64_t> Coord(Rank);
  std::function<void(unsigned)> Walk = [&](unsigned D) {
    if (D == Rank) {
      uint64_t N = 0;
      for (unsigned K = 0; K < Rank; ++K)
        N += static_cast<uint64_t>(Coord[K] - Footprint.lo(K)) * Strides[K];
      Buf.store(Coord, -1.0 + 2.0 * SplitMix64::doubleAt(Stream, N));
      return;
    }
    for (int64_t I = B.lo(D); I <= B.hi(D); ++I) {
      Coord[D] = I;
      Walk(D + 1);
    }
  };
  Walk(0);
}

/// Builds every processor's interior slices and local buffers.
void buildProcs(DistContext &Ctx) {
  Ctx.Procs.resize(Ctx.Grid.NumProcs);
  for (unsigned Rank = 0; Rank < Ctx.Grid.NumProcs; ++Rank) {
    ProcState &Proc = Ctx.Procs[Rank];
    Proc.Coords = procCoords(Ctx.Grid, Rank);
    Proc.Interior.resize(Ctx.Rank);
    for (unsigned D = 0; D < Ctx.Rank; ++D)
      Proc.Interior[D] = blockSlice(Ctx.DomainLo[D], Ctx.DomainHi[D],
                                    Ctx.Grid.Extents[D], Proc.Coords[D]);

    for (const ArraySymbol *A : Ctx.P.arrays()) {
      if (Ctx.LP.isContracted(A))
        continue;
      const Region *Footprint = Ctx.FI.boundsFor(A);
      if (!Footprint)
        continue;
      if (A->getRank() != Ctx.Rank)
        alf_unreachable("distributed run requires a single-rank program");
      auto WIt = Ctx.HaloWidth.find(A->getId());
      std::vector<int64_t> W =
          WIt == Ctx.HaloWidth.end() ? std::vector<int64_t>(Ctx.Rank, 0)
                                     : WIt->second;

      std::vector<int64_t> Lo(Ctx.Rank), Hi(Ctx.Rank);
      bool Empty = false;
      for (unsigned D = 0; D < Ctx.Rank; ++D) {
        const BlockRange &I = Proc.Interior[D];
        if (I.empty()) {
          Empty = true;
          break;
        }
        bool AtLow = Proc.Coords[D] == 0;
        bool AtHigh = Proc.Coords[D] + 1 == Ctx.Grid.Extents[D];
        // Interior extended by the halo, clamped to the footprint;
        // global-edge processors own the footprint's global halo.
        Lo[D] = AtLow ? Footprint->lo(D)
                      : std::max(Footprint->lo(D), I.Lo - W[D]);
        Hi[D] = AtHigh ? Footprint->hi(D)
                       : std::min(Footprint->hi(D), I.Hi + W[D]);
        if (Lo[D] > Hi[D]) {
          Empty = true;
          break;
        }
      }
      if (Empty)
        continue;
      ArrayBuffer Buf(A, Region(std::move(Lo), std::move(Hi)), 0);
      initBuffer(Ctx, A, *Footprint, Buf);
      Proc.Buffers.emplace(A->getId(), std::move(Buf));
    }
  }

  // Program scalars: identical to Storage::allocate's initialization.
  for (const Symbol *Sym : Ctx.P.symbols())
    if (const auto *Sc = dyn_cast<ScalarSymbol>(Sym)) {
      SplitMix64 Rng(Ctx.Seed ^ hashName(Sc->getName()));
      Ctx.Scalars[Sc] = 0.5 + Rng.nextDouble();
    }
}

double evalExpr(const Expr *E, DistContext &Ctx, ProcState &Proc,
                const std::vector<int64_t> &Idx) {
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return C->getValue();
  if (const auto *S = dyn_cast<ScalarRefExpr>(E))
    return Ctx.readScalar(S->getSymbol());
  if (const auto *A = dyn_cast<ArrayRefExpr>(E)) {
    auto It = Proc.Buffers.find(A->getSymbol()->getId());
    if (It == Proc.Buffers.end())
      alf_unreachable("distributed read of an array without local storage");
    std::vector<int64_t> At(Idx.size());
    for (unsigned D = 0; D < Idx.size(); ++D)
      At[D] = Idx[D] + A->getOffset()[D];
    return It->second.load(At);
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return UnaryExpr::evaluate(U->getOpcode(),
                               evalExpr(U->getOperand(), Ctx, Proc, Idx));
  const auto *B = cast<BinaryExpr>(E);
  return BinaryExpr::evaluate(
      B->getOpcode(), evalExpr(B->getLHS(), Ctx, Proc, Idx),
      evalExpr(B->getRHS(), Ctx, Proc, Idx));
}

/// Runs one nest on one processor's slice of the region.
void runNestOnProc(const LoopNest &Nest, DistContext &Ctx, ProcState &Proc) {
  const Region &R = *Nest.R;
  unsigned Rank = R.rank();

  // Local slice: region clipped to the processor's interior.
  std::vector<int64_t> Lo(Rank), Hi(Rank);
  for (unsigned D = 0; D < Rank; ++D) {
    Lo[D] = std::max(R.lo(D), Proc.Interior[D].Lo);
    Hi[D] = std::min(R.hi(D), Proc.Interior[D].Hi);
    if (Lo[D] > Hi[D])
      return; // nothing local to this processor
  }

  std::vector<int64_t> Idx(Rank);
  std::function<void(unsigned)> RunLoop = [&](unsigned Loop) {
    if (Loop == Rank) {
      for (const ScalarStmt &S : Nest.Body) {
        double V = evalExpr(S.RHS.get(), Ctx, Proc, Idx);
        if (S.LHS.isScalar()) {
          if (S.Accumulate)
            V = S.SR->combine(Ctx.readScalar(S.LHS.Scalar), V);
          Ctx.Scalars[S.LHS.Scalar] = V;
          continue;
        }
        auto It = Proc.Buffers.find(S.LHS.Array->getId());
        if (It == Proc.Buffers.end())
          alf_unreachable("distributed write without local storage");
        It->second.store(Idx, V);
      }
      return;
    }
    unsigned Dim = Nest.LSV.dimOf(Loop);
    if (Nest.LSV.dirOf(Loop) > 0) {
      for (int64_t I = Lo[Dim]; I <= Hi[Dim]; ++I) {
        Idx[Dim] = I;
        RunLoop(Loop + 1);
      }
    } else {
      for (int64_t I = Hi[Dim]; I >= Lo[Dim]; --I) {
        Idx[Dim] = I;
        RunLoop(Loop + 1);
      }
    }
  };
  RunLoop(0);
}

/// Executes one halo exchange: every processor receives the \p Width
/// planes adjacent to its interior along \p Dim (direction \p Sign) from
/// its neighbour's local storage. Other dimensions copy over the full
/// local bounds, so earlier exchanges' halo fills propagate into corners.
void runExchange(DistContext &Ctx, const ArraySymbol *A, unsigned Dim,
                 int Sign, int64_t Width) {
  // Two-phase: compute all transfers against the pre-exchange state,
  // then commit (real exchanges happen concurrently).
  struct Write {
    unsigned Proc;
    std::vector<int64_t> Coord;
    double Value;
  };
  std::vector<Write> Writes;

  for (unsigned Rank = 0; Rank < Ctx.Grid.NumProcs; ++Rank) {
    ProcState &Proc = Ctx.Procs[Rank];
    int NbrRank = neighborRank(Ctx.Grid, Proc.Coords, Dim, Sign);
    if (NbrRank < 0)
      continue; // grid boundary: the global halo keeps initial values
    ProcState &Nbr = Ctx.Procs[static_cast<unsigned>(NbrRank)];

    auto MineIt = Proc.Buffers.find(A->getId());
    auto TheirsIt = Nbr.Buffers.find(A->getId());
    if (MineIt == Proc.Buffers.end() || TheirsIt == Nbr.Buffers.end())
      continue;
    ArrayBuffer &Mine = MineIt->second;
    const ArrayBuffer &Theirs = TheirsIt->second;

    // The halo slab along Dim.
    const BlockRange &I = Proc.Interior[Dim];
    int64_t SlabLo = Sign > 0 ? I.Hi + 1 : I.Lo - Width;
    int64_t SlabHi = Sign > 0 ? I.Hi + Width : I.Lo - 1;
    SlabLo = std::max(SlabLo, Mine.bounds().lo(Dim));
    SlabHi = std::min(SlabHi, Mine.bounds().hi(Dim));
    if (SlabLo > SlabHi)
      continue;

    unsigned RankN = Mine.bounds().rank();
    std::vector<int64_t> Lo(RankN), Hi(RankN);
    bool Empty = false;
    for (unsigned D = 0; D < RankN; ++D) {
      if (D == Dim) {
        Lo[D] = SlabLo;
        Hi[D] = SlabHi;
      } else {
        Lo[D] = std::max(Mine.bounds().lo(D), Theirs.bounds().lo(D));
        Hi[D] = std::min(Mine.bounds().hi(D), Theirs.bounds().hi(D));
      }
      if (Lo[D] > Hi[D])
        Empty = true;
    }
    if (Empty)
      continue;

    std::vector<int64_t> Coord(RankN);
    std::function<void(unsigned)> Walk = [&](unsigned D) {
      if (D == RankN) {
        Writes.push_back(Write{Rank, Coord, Theirs.load(Coord)});
        return;
      }
      for (int64_t V = Lo[D]; V <= Hi[D]; ++V) {
        Coord[D] = V;
        Walk(D + 1);
      }
    };
    Walk(0);
  }

  for (const Write &W : Writes)
    Ctx.Procs[W.Proc].Buffers.at(A->getId()).store(W.Coord, W.Value);
}

} // namespace

RunResult distsim::runDistributed(const LoopProgram &LP, const ProcGrid &Grid,
                                  uint64_t Seed) {
  if (!LP.partialPlans().empty())
    alf_unreachable("distributed run does not support partial contraction");

  DistContext Ctx(LP, Grid, Seed);
  analyzeProgram(Ctx);
  buildProcs(Ctx);

  for (const auto &NodePtr : LP.nodes()) {
    if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
      // Reductions: per-processor partials combined in rank order.
      std::map<const ScalarSymbol *, const semiring::Semiring *> AccSRs;
      for (const ScalarStmt &S : Nest->Body)
        if (S.Accumulate)
          AccSRs[S.LHS.Scalar] = S.SR;
      std::map<const ScalarSymbol *, double> Totals;
      for (const auto &[Acc, SR] : AccSRs)
        Totals[Acc] = SR->PlusIdentity;

      for (ProcState &Proc : Ctx.Procs) {
        for (const auto &[Acc, SR] : AccSRs)
          Ctx.Scalars[Acc] = SR->PlusIdentity;
        runNestOnProc(*Nest, Ctx, Proc);
        for (const auto &[Acc, SR] : AccSRs)
          Totals[Acc] = SR->combine(Totals[Acc], Ctx.readScalar(Acc));
      }
      for (const auto &[Acc, Total] : Totals)
        Ctx.Scalars[Acc] = Total;
      continue;
    }
    if (const auto *C = dyn_cast<CommOp>(NodePtr.get())) {
      if (C->Phase == CommStmt::CommPhase::Send)
        continue; // data moves when the receive completes
      for (unsigned D = 0; D < C->Dir.rank(); ++D)
        if (C->Dir[D] != 0)
          runExchange(Ctx, C->Array, D, C->Dir[D] > 0 ? 1 : -1,
                      C->Dir[D] > 0 ? C->Dir[D] : -C->Dir[D]);
      continue;
    }
    alf_unreachable("distributed run does not support opaque statements");
  }

  // Gather: global buffers start from the sequential initialization, and
  // every processor deposits its interior cells.
  RunResult Result;
  for (const ArraySymbol *A : Ctx.P.arrays()) {
    if (!A->isLiveOut())
      continue;
    const Region *Footprint = Ctx.FI.boundsFor(A);
    if (!Footprint)
      continue;
    ArrayBuffer Global(A, *Footprint, 0);
    initBuffer(Ctx, A, *Footprint, Global);

    for (ProcState &Proc : Ctx.Procs) {
      auto It = Proc.Buffers.find(A->getId());
      if (It == Proc.Buffers.end())
        continue;
      unsigned Rank = Footprint->rank();
      std::vector<int64_t> Lo(Rank), Hi(Rank);
      bool Empty = false;
      for (unsigned D = 0; D < Rank; ++D) {
        bool AtLow = Proc.Coords[D] == 0;
        bool AtHigh = Proc.Coords[D] + 1 == Ctx.Grid.Extents[D];
        Lo[D] = AtLow ? Footprint->lo(D)
                      : std::max(Footprint->lo(D), Proc.Interior[D].Lo);
        Hi[D] = AtHigh ? Footprint->hi(D)
                       : std::min(Footprint->hi(D), Proc.Interior[D].Hi);
        if (Lo[D] > Hi[D])
          Empty = true;
      }
      if (Empty)
        continue;
      std::vector<int64_t> Coord(Rank);
      std::function<void(unsigned)> Walk = [&](unsigned D) {
        if (D == Rank) {
          Global.store(Coord, It->second.load(Coord));
          return;
        }
        for (int64_t V = Lo[D]; V <= Hi[D]; ++V) {
          Coord[D] = V;
          Walk(D + 1);
        }
      };
      Walk(0);
    }
    Result.LiveOut.emplace(A->getName(), Global.raw());
  }
  for (const Symbol *Sym : Ctx.P.symbols())
    if (const auto *Sc = dyn_cast<ScalarSymbol>(Sym))
      Result.ScalarsOut.emplace(Sc->getName(), Ctx.readScalar(Sc));
  return Result;
}

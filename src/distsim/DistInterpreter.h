//===- distsim/DistInterpreter.h - SPMD execution simulator ----*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A distributed-memory execution simulator: every processor of the grid
/// owns a block of each array (plus halo cells), loop nests execute over
/// each processor's local slice, and communication operations *actually
/// move data* between neighbouring blocks. Running a scalarized program
/// here and comparing against the sequential interpreter validates the
/// communication insertion end to end — a missing or stale halo exchange
/// produces wrong values, not just wrong cost estimates.
///
/// Supported programs: loop nests (including reductions, contraction and
/// loop reversal/interchange) and halo exchanges with zero-offset
/// assignment targets; opaque statements and partial-contraction plans
/// are out of scope here.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_DISTSIM_DISTINTERPRETER_H
#define ALF_DISTSIM_DISTINTERPRETER_H

#include "distsim/BlockDist.h"
#include "exec/Interpreter.h"
#include "scalarize/LoopIR.h"

namespace alf {
namespace distsim {

/// Runs \p LP SPMD-style over \p Grid with inputs seeded by \p Seed
/// (bit-identical to exec::run's initialization, so results are directly
/// comparable). Reductions combine partial results across processors in
/// rank order.
exec::RunResult runDistributed(const lir::LoopProgram &LP,
                               const machine::ProcGrid &Grid, uint64_t Seed);

} // namespace distsim
} // namespace alf

#endif // ALF_DISTSIM_DISTINTERPRETER_H

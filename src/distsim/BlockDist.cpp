//===- distsim/BlockDist.cpp - Block distribution geometry -----------------===//

#include "distsim/BlockDist.h"

#include <cassert>

using namespace alf;
using namespace alf::distsim;
using namespace alf::machine;

BlockRange distsim::blockSlice(int64_t Lo, int64_t Hi, unsigned Parts,
                               unsigned Part) {
  assert(Parts > 0 && Part < Parts && "bad block partition");
  int64_t Extent = Hi - Lo + 1;
  if (Extent <= 0)
    return BlockRange{Lo, Lo - 1};
  int64_t Base = Extent / Parts;
  int64_t Rem = Extent % Parts;
  int64_t Start = Lo + static_cast<int64_t>(Part) * Base +
                  std::min<int64_t>(Part, Rem);
  int64_t Size = Base + (static_cast<int64_t>(Part) < Rem ? 1 : 0);
  return BlockRange{Start, Start + Size - 1};
}

std::vector<unsigned> distsim::procCoords(const ProcGrid &Grid,
                                          unsigned Rank) {
  std::vector<unsigned> Coords(Grid.Extents.size(), 0);
  unsigned Rest = Rank;
  for (size_t D = Grid.Extents.size(); D-- > 0;) {
    Coords[D] = Rest % Grid.Extents[D];
    Rest /= Grid.Extents[D];
  }
  return Coords;
}

int distsim::neighborRank(const ProcGrid &Grid,
                          const std::vector<unsigned> &Coords, unsigned Dim,
                          int Step) {
  assert(Dim < Grid.Extents.size() && "grid dimension out of range");
  int64_t NewCoord = static_cast<int64_t>(Coords[Dim]) + Step;
  if (NewCoord < 0 || NewCoord >= static_cast<int64_t>(Grid.Extents[Dim]))
    return -1;
  unsigned Rank = 0;
  for (size_t D = 0; D < Grid.Extents.size(); ++D) {
    unsigned C = D == Dim ? static_cast<unsigned>(NewCoord) : Coords[D];
    Rank = Rank * Grid.Extents[D] + C;
  }
  return static_cast<int>(Rank);
}

//===- distsim/BlockDist.h - Block distribution geometry -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometry of the block distribution the paper assumes ("here we assume
/// that all dimensions are distributed", section 2.2): each dimension of
/// the global index domain is split into near-equal contiguous blocks
/// across the processor grid.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_DISTSIM_BLOCKDIST_H
#define ALF_DISTSIM_BLOCKDIST_H

#include "machine/Machine.h"

#include <cstdint>
#include <vector>

namespace alf {
namespace distsim {

/// An inclusive 1-D index range; empty when Lo > Hi.
struct BlockRange {
  int64_t Lo = 0;
  int64_t Hi = -1;

  bool empty() const { return Lo > Hi; }
  int64_t extent() const { return empty() ? 0 : Hi - Lo + 1; }
};

/// The \p Part-th of \p Parts near-equal contiguous blocks of
/// [\p Lo, \p Hi]. Leading blocks absorb the remainder, matching the
/// usual BLOCK distribution.
BlockRange blockSlice(int64_t Lo, int64_t Hi, unsigned Parts, unsigned Part);

/// A processor's coordinates in the grid, decoded from its linear rank
/// (row-major over ProcGrid::Extents).
std::vector<unsigned> procCoords(const machine::ProcGrid &Grid,
                                 unsigned Rank);

/// The linear rank of the neighbour of \p Coords displaced by \p Step
/// (+1/-1) along grid dimension \p Dim, or -1 at the grid boundary.
int neighborRank(const machine::ProcGrid &Grid,
                 const std::vector<unsigned> &Coords, unsigned Dim, int Step);

} // namespace distsim
} // namespace alf

#endif // ALF_DISTSIM_BLOCKDIST_H

//===- scalarize/FortranEmitter.h - Fortran 77 code generation -*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits Fortran 77 from a scalarized LoopProgram — the form the paper
/// itself uses to show scalarized array code (Figure 1(b)'s hand-written
/// loop with the scalar `s`, Figure 2(c)'s DO nests). Arrays are
/// declared with their footprint bounds (`DOUBLE PRECISION A(0:9,1:8)`),
/// contracted arrays become local scalars, loop structure vectors become
/// DO loops with direction-aware bounds and strides, and reductions
/// become accumulator updates.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SCALARIZE_FORTRANEMITTER_H
#define ALF_SCALARIZE_FORTRANEMITTER_H

#include "scalarize/LoopIR.h"

#include <string>

namespace alf {
namespace scalarize {

/// Emits a Fortran 77 SUBROUTINE \p SubName implementing \p LP. Array
/// parameters use footprint bounds; program scalars are passed as
/// DOUBLE PRECISION arguments (in/out). Partial-contraction rolling
/// buffers use MOD-indexed dimensions.
std::string emitFortran(const lir::LoopProgram &LP,
                        const std::string &SubName);

} // namespace scalarize
} // namespace alf

#endif // ALF_SCALARIZE_FORTRANEMITTER_H

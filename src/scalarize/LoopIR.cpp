//===- scalarize/LoopIR.cpp - Scalarized loop nest IR ----------------------===//

#include "scalarize/LoopIR.h"

#include "support/StringUtil.h"

#include <sstream>

using namespace alf;
using namespace alf::ir;
using namespace alf::lir;

LNode::~LNode() = default;

const ScalarSymbol *LoopProgram::addContraction(const ArraySymbol *A) {
  if (const ScalarSymbol *Existing = scalarFor(A))
    return Existing;
  auto Scalar = std::make_unique<ScalarSymbol>(
      "s_" + A->getName(), 100000 + static_cast<unsigned>(OwnedScalars.size()));
  const ScalarSymbol *Raw = Scalar.get();
  OwnedScalars.push_back(std::move(Scalar));
  ContractionMap.emplace(A, Raw);
  return Raw;
}

std::vector<const ArraySymbol *> LoopProgram::allocatedArrays() const {
  std::vector<const ArraySymbol *> Result;
  for (const ArraySymbol *A : Src->arrays())
    if (!isContracted(A))
      Result.push_back(A);
  return Result;
}

/// Renders an expression with array references spelled as C subscripts
/// ("A[i1-1][i2]"), scalar references by name.
static std::string renderExpr(const Expr *E) {
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return C->str();
  if (const auto *S = dyn_cast<ScalarRefExpr>(E))
    return S->getSymbol()->getName();
  if (const auto *A = dyn_cast<ArrayRefExpr>(E)) {
    std::string Out = A->getSymbol()->getName();
    for (unsigned D = 0; D < A->getOffset().rank(); ++D) {
      int32_t Off = A->getOffset()[D];
      if (Off == 0)
        Out += formatString("[i%u]", D + 1);
      else
        Out += formatString("[i%u%+d]", D + 1, Off);
    }
    return Out;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->getOpcode() == UnaryExpr::Opcode::Neg)
      return "-(" + renderExpr(U->getOperand()) + ")";
    return std::string(UnaryExpr::getOpcodeName(U->getOpcode())) + "(" +
           renderExpr(U->getOperand()) + ")";
  }
  const auto *B = cast<BinaryExpr>(E);
  const char *Name = BinaryExpr::getOpcodeName(B->getOpcode());
  if (B->getOpcode() == BinaryExpr::Opcode::Min ||
      B->getOpcode() == BinaryExpr::Opcode::Max)
    return std::string(Name) + "(" + renderExpr(B->getLHS()) + ", " +
           renderExpr(B->getRHS()) + ")";
  return "(" + renderExpr(B->getLHS()) + " " + Name + " " +
         renderExpr(B->getRHS()) + ")";
}

static std::string renderTarget(const Target &T) {
  if (T.isScalar())
    return T.Scalar->getName();
  std::string Out = T.Array->getName();
  for (unsigned D = 0; D < T.Off.rank(); ++D) {
    int32_t Off = T.Off[D];
    if (Off == 0)
      Out += formatString("[i%u]", D + 1);
    else
      Out += formatString("[i%u%+d]", D + 1, Off);
  }
  return Out;
}

void LoopProgram::print(std::ostream &OS) const {
  OS << "// scalarized " << Src->getName() << "\n";
  for (const auto &[Array, Scalar] : ContractionMap)
    OS << "double " << Scalar->getName() << "; // contracted "
       << Array->getName() << '\n';
  for (const auto &NodePtr : Nodes) {
    if (const auto *Loop = dyn_cast<LoopNest>(NodePtr.get())) {
      for (const ScalarInit &SI : Loop->ScalarInits)
        OS << SI.Acc->getName() << " = " << formatString("%g", SI.Init)
           << ";\n";
      std::string Indent;
      for (unsigned L = 0; L < Loop->LSV.rank(); ++L) {
        unsigned Dim = Loop->LSV.dimOf(L);
        long long Lo = Loop->R->lo(Dim), Hi = Loop->R->hi(Dim);
        if (Loop->LSV.dirOf(L) > 0)
          OS << Indent
             << formatString("for (i%u = %lld; i%u <= %lld; ++i%u)", Dim + 1,
                             Lo, Dim + 1, Hi, Dim + 1)
             << '\n';
        else
          OS << Indent
             << formatString("for (i%u = %lld; i%u >= %lld; --i%u)", Dim + 1,
                             Hi, Dim + 1, Lo, Dim + 1)
             << '\n';
        Indent += "  ";
      }
      OS << Indent << "{\n";
      for (const ScalarStmt &S : Loop->Body) {
        std::string LHS = renderTarget(S.LHS);
        if (S.Accumulate) {
          if (S.SR->Plus == semiring::OpKind::Add)
            OS << Indent << "  " << LHS << " += " << renderExpr(S.RHS.get())
               << ";\n";
          else
            OS << Indent << "  " << LHS << " = " << S.SR->plusName() << "("
               << LHS << ", " << renderExpr(S.RHS.get()) << ");\n";
          continue;
        }
        OS << Indent << "  " << LHS << " = " << renderExpr(S.RHS.get())
           << ";\n";
      }
      OS << Indent << "}\n";
      continue;
    }
    if (const auto *Comm = dyn_cast<CommOp>(NodePtr.get())) {
      const char *PhaseName = "exchange";
      if (Comm->Phase == ir::CommStmt::CommPhase::Send)
        PhaseName = "send";
      else if (Comm->Phase == ir::CommStmt::CommPhase::Recv)
        PhaseName = "recv";
      OS << "/* comm." << PhaseName << ' ' << Comm->Array->getName()
         << Comm->Dir.str() << " */\n";
      continue;
    }
    const auto *Op = cast<OpaqueOp>(NodePtr.get());
    OS << "/* " << Op->Src->str() << " */\n";
  }
}

std::string LoopProgram::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

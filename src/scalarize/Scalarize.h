//===- scalarize/Scalarize.h - Scalarization ------------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalarization (paper section 4.2): "generates a loop nest for each
/// fusible cluster in a fusion partition, where the loop nests and the
/// statements in the loop nests are ordered by a topological sort using
/// inter- and intra-fusible-cluster dependences, respectively". The loop
/// structure of each nest is the vector found by FIND-LOOP-STRUCTURE.
/// Arrays selected for contraction are rewritten to scalars (all their
/// references carry the same offset inside one nest, by Definition 6).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SCALARIZE_SCALARIZE_H
#define ALF_SCALARIZE_SCALARIZE_H

#include "scalarize/LoopIR.h"
#include "xform/Strategy.h"

#include <optional>
#include <string>

namespace alf {
namespace scalarize {

/// Lowers \p SR's fusion partition over \p G's program into loop nests,
/// contracting the arrays in \p SR.Contracted.
lir::LoopProgram scalarize(const analysis::ASDG &G,
                           const xform::StrategyResult &SR);

/// Status-returning variant of scalarize(): instead of aborting on a
/// partition the lowering cannot express (dependence cycle, a cluster
/// with no representable UDVs or no legal loop structure vector), returns
/// nullopt and describes the reason in \p Error (when non-null). The
/// native JIT and other recovering callers use this; scalarize() wraps it
/// and treats failure as an internal invariant violation.
std::optional<lir::LoopProgram>
scalarizeChecked(const analysis::ASDG &G, const xform::StrategyResult &SR,
                 std::string *Error = nullptr);

/// Convenience: apply \p S to \p G and scalarize the result.
lir::LoopProgram scalarizeWithStrategy(const analysis::ASDG &G,
                                       xform::Strategy S);

/// Applies \p S plus the lower-dimensional contraction extension (paper
/// section 5.2 future work): arrays whose dependences are carried only
/// along the sequential dimensions in \p Seq become rolling buffers.
lir::LoopProgram
scalarizeWithPartialContraction(const analysis::ASDG &G, xform::Strategy S,
                                const xform::SequentialDims &Seq);

/// Fault-injection modes for testing the safety checker, mirroring the
/// ASDG corruption hooks (analysis/ASDG.h) and setIlpCorruptionForTest:
/// each mode plants one memory-safety bug in the next scalarization.
enum class ScalarizeCorruption {
  None,
  /// Grows one nest's region by one along dimension 0, targeting a nest
  /// whose grown accesses provably escape an array's allocation (so the
  /// plant is never masked by another reference's halo).
  OffByOneBound,
  /// Drops the ⊕-identity initialization of one reduction accumulator.
  SkipAccumulatorInit,
  /// Shrinks the region of a nest writing a live-out array by one plane
  /// along dimension 0, truncating the copy-out the source promises.
  ShrunkenCopyOut,
};

/// Installs \p Mode for subsequent scalarizations. Never called by the
/// pipeline: VerifyTest and the StressSweepTest.SafetyAgrees sweep plant
/// one bug per mode and assert verify::verifySafety rejects the result
/// statically, before anything executes.
void setScalarizeCorruptionForTest(ScalarizeCorruption Mode);

/// Whether the most recent scalarization actually planted the installed
/// corruption. Each mode needs a suitable site (an edge-touching access,
/// a reduction accumulator, a live-out store); on generated programs
/// without one the hook is a no-op, and sweep tests use this to skip the
/// must-reject assertion rather than demand findings in a clean program.
bool scalarizeCorruptionAppliedForTest();

} // namespace scalarize
} // namespace alf

#endif // ALF_SCALARIZE_SCALARIZE_H

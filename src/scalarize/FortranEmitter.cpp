//===- scalarize/FortranEmitter.cpp - Fortran 77 code generation ------------===//

#include "scalarize/FortranEmitter.h"

#include "analysis/Footprint.h"
#include "support/ErrorHandling.h"
#include "support/StringUtil.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::scalarize;

namespace {

class FortranEmitter {
  const LoopProgram &LP;
  const Program &P;
  FootprintInfo FI;
  std::map<const Symbol *, std::string> Names;
  std::set<std::string> Taken;
  std::ostringstream OS;

public:
  explicit FortranEmitter(const LoopProgram &LP)
      : LP(LP), P(LP.source()), FI(FootprintInfo::compute(P)) {}

  /// Fortran-legal, unique name for a symbol (letter first, no
  /// underscores, case-insensitively unique).
  std::string nameOf(const Symbol *Sym) {
    auto It = Names.find(Sym);
    if (It != Names.end())
      return It->second;
    std::string Base;
    for (char C : Sym->getName())
      if (std::isalnum(static_cast<unsigned char>(C)))
        Base += static_cast<char>(std::toupper(C));
    if (Base.empty() || !std::isalpha(static_cast<unsigned char>(Base[0])))
      Base = "Z" + Base;
    std::string Candidate = Base;
    for (unsigned Suffix = 2; Taken.count(Candidate); ++Suffix)
      Candidate = Base + std::to_string(Suffix);
    Taken.insert(Candidate);
    Names.emplace(Sym, Candidate);
    return Candidate;
  }

  std::vector<const ArraySymbol *> allocatedArrays() {
    std::vector<const ArraySymbol *> Result;
    for (const ArraySymbol *A : P.arrays())
      if (!LP.isContracted(A) && FI.boundsFor(A))
        Result.push_back(A);
    return Result;
  }

  std::vector<const ScalarSymbol *> programScalars() {
    std::vector<const ScalarSymbol *> Result;
    for (const Symbol *S : P.symbols())
      if (const auto *Sc = dyn_cast<ScalarSymbol>(S))
        Result.push_back(Sc);
    return Result;
  }

  /// Declared bounds of an array: rolling-buffer bounds for partially
  /// contracted arrays, footprint bounds otherwise.
  Region boundsOf(const ArraySymbol *A) {
    if (const xform::PartialPlan *Plan = LP.partialPlanFor(A))
      return Plan->bufferRegion();
    return *FI.boundsFor(A);
  }

  /// Fixed-form line emission with continuation cards at column 72.
  void emitLine(const std::string &Body, unsigned Indent = 0) {
    std::string Prefix = "      " + std::string(Indent, ' ');
    std::string Text = Prefix + Body;
    if (Text.size() <= 72) {
      OS << Text << '\n';
      return;
    }
    size_t Avail = 72;
    OS << Text.substr(0, Avail) << '\n';
    size_t Pos = Avail;
    while (Pos < Text.size()) {
      std::string Chunk = Text.substr(Pos, 72 - 6);
      OS << "     &" << Chunk << '\n';
      Pos += Chunk.size();
    }
  }

  std::string literal(double V) {
    std::string S = formatString("%.17g", V);
    // Fortran double-precision exponent marker.
    for (char &C : S)
      if (C == 'e' || C == 'E')
        C = 'D';
    if (S.find('D') == std::string::npos &&
        S.find('.') == std::string::npos)
      S += "D0";
    else if (S.find('D') == std::string::npos)
      S += "D0";
    return S;
  }

  std::string subscript(const ArraySymbol *A, const Offset &Off) {
    const xform::PartialPlan *Plan = LP.partialPlanFor(A);
    std::vector<std::string> Coords;
    for (unsigned D = 0; D < A->getRank(); ++D) {
      std::string Coord = formatString("I%u", D + 1);
      if (Off[D] > 0)
        Coord += formatString("+%d", Off[D]);
      else if (Off[D] < 0)
        Coord += formatString("%d", Off[D]);
      if (Plan && Plan->isReduced(D))
        Coord = formatString("MOD(%s-(%lld)+%lld, %lld)", Coord.c_str(),
                             static_cast<long long>(Plan->OrigLo[D]),
                             static_cast<long long>(Plan->BufferExtents[D] *
                                                    2),
                             static_cast<long long>(Plan->BufferExtents[D]));
      Coords.push_back(Coord);
    }
    return nameOf(A) + "(" + join(Coords, ",") +
           ")";
  }

  std::string renderExpr(const Expr *E) {
    if (const auto *C = dyn_cast<ConstExpr>(E))
      return literal(C->getValue());
    if (const auto *S = dyn_cast<ScalarRefExpr>(E))
      return nameOf(S->getSymbol());
    if (const auto *A = dyn_cast<ArrayRefExpr>(E))
      return subscript(A->getSymbol(), A->getOffset());
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      std::string Op = renderExpr(U->getOperand());
      switch (U->getOpcode()) {
      case UnaryExpr::Opcode::Neg:
        return "(-(" + Op + "))";
      case UnaryExpr::Opcode::Abs:
        return "ABS(" + Op + ")";
      case UnaryExpr::Opcode::Sqrt:
        return "SQRT(ABS(" + Op + "))";
      case UnaryExpr::Opcode::Exp:
        return "EXP(MIN(" + Op + ", 4D1))";
      case UnaryExpr::Opcode::Log:
        return "LOG(ABS(" + Op + ") + 1D-12)";
      case UnaryExpr::Opcode::Sin:
        return "SIN(" + Op + ")";
      case UnaryExpr::Opcode::Cos:
        return "COS(" + Op + ")";
      case UnaryExpr::Opcode::Recip:
        return "ALFREC(" + Op + ")";
      }
      alf_unreachable("unhandled unary opcode");
    }
    const auto *B = cast<BinaryExpr>(E);
    std::string L = renderExpr(B->getLHS());
    std::string R = renderExpr(B->getRHS());
    switch (B->getOpcode()) {
    case BinaryExpr::Opcode::Add:
      return "(" + L + " + " + R + ")";
    case BinaryExpr::Opcode::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryExpr::Opcode::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryExpr::Opcode::Div:
      return "ALFDIV(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Min:
      return "MIN(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Max:
      return "MAX(" + L + ", " + R + ")";
    }
    alf_unreachable("unhandled expression kind");
  }

  unsigned maxRank() {
    unsigned Rank = 0;
    for (const auto &NodePtr : LP.nodes())
      if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get()))
        Rank = std::max(Rank, Nest->R->rank());
    return Rank;
  }

  void emitNest(const LoopNest &Nest) {
    for (const lir::ScalarInit &SI : Nest.ScalarInits) {
      std::string InitText;
      if (std::isinf(SI.Init))
        InitText = SI.Init > 0 ? "1.797693134862315D308"
                               : "-1.797693134862315D308";
      else
        InitText = literal(SI.Init);
      emitLine(nameOf(SI.Acc) + " = " + InitText);
    }
    unsigned Indent = 0;
    for (unsigned L = 0; L < Nest.LSV.rank(); ++L) {
      unsigned Dim = Nest.LSV.dimOf(L);
      long long Lo = Nest.R->lo(Dim), Hi = Nest.R->hi(Dim);
      if (Nest.LSV.dirOf(L) > 0)
        emitLine(formatString("DO I%u = %lld, %lld", Dim + 1, Lo, Hi),
                 Indent);
      else
        emitLine(formatString("DO I%u = %lld, %lld, -1", Dim + 1, Hi, Lo),
                 Indent);
      Indent += 2;
    }
    for (const ScalarStmt &S : Nest.Body) {
      std::string RHS = renderExpr(S.RHS.get());
      if (S.LHS.isScalar()) {
        std::string Name = nameOf(S.LHS.Scalar);
        if (!S.Accumulate)
          emitLine(Name + " = " + RHS, Indent);
        else
          switch (S.SR->Plus) {
          case semiring::OpKind::Min:
            emitLine(Name + " = MIN(" + Name + ", " + RHS + ")", Indent);
            break;
          case semiring::OpKind::Max:
            emitLine(Name + " = MAX(" + Name + ", " + RHS + ")", Indent);
            break;
          case semiring::OpKind::Or:
            emitLine("IF (" + Name + " .NE. 0.0D0 .OR. " + RHS +
                         " .NE. 0.0D0) THEN",
                     Indent);
            emitLine(Name + " = 1.0D0", Indent + 2);
            emitLine("ELSE", Indent);
            emitLine(Name + " = 0.0D0", Indent + 2);
            emitLine("END IF", Indent);
            break;
          default:
            emitLine(Name + " = " + Name + " + " + RHS, Indent);
            break;
          }
        continue;
      }
      emitLine(subscript(S.LHS.Array, S.LHS.Off) + " = " + RHS, Indent);
    }
    for (unsigned L = 0; L < Nest.LSV.rank(); ++L) {
      Indent -= 2;
      emitLine("END DO", Indent);
    }
  }

  std::string emit(const std::string &SubName) {
    // Parameter list: arrays then scalars.
    std::vector<std::string> Params;
    for (const ArraySymbol *A : allocatedArrays())
      Params.push_back(nameOf(A));
    for (const ScalarSymbol *S : programScalars())
      Params.push_back(nameOf(S));

    OS << "C     Generated by ALF from program '" << P.getName() << "'.\n";
    emitLine("SUBROUTINE " + SubName + "(" + join(Params, ", ") + ")");
    emitLine("IMPLICIT NONE");

    // Declarations.
    for (const ArraySymbol *A : allocatedArrays()) {
      Region B = boundsOf(A);
      std::vector<std::string> Dims;
      for (unsigned D = 0; D < B.rank(); ++D)
        Dims.push_back(formatString("%lld:%lld",
                                    static_cast<long long>(B.lo(D)),
                                    static_cast<long long>(B.hi(D))));
      emitLine("DOUBLE PRECISION " + nameOf(A) + "(" + join(Dims, ",") +
               ")");
    }
    for (const ScalarSymbol *S : programScalars())
      emitLine("DOUBLE PRECISION " + nameOf(S));
    for (const ArraySymbol *A : P.arrays())
      if (const ScalarSymbol *S = LP.scalarFor(A))
        emitLine("DOUBLE PRECISION " + nameOf(S));
    unsigned Rank = maxRank();
    if (Rank > 0) {
      std::vector<std::string> Ivs;
      for (unsigned D = 0; D < Rank; ++D)
        Ivs.push_back(formatString("I%u", D + 1));
      emitLine("INTEGER " + join(Ivs, ", "));
    }
    // Guarded-arithmetic statement functions (match the interpreter).
    emitLine("DOUBLE PRECISION ALFREC, ALFDIV, ALFV, ALFL, ALFR");
    emitLine("ALFREC(ALFV) = 1D0 / (ALFV + SIGN(1D-12, ALFV))");
    emitLine("ALFDIV(ALFL, ALFR) = ALFL / (ALFR + SIGN(1D-12, ALFR))");

    for (const auto &NodePtr : LP.nodes()) {
      if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
        emitNest(*Nest);
        continue;
      }
      if (const auto *C = dyn_cast<CommOp>(NodePtr.get())) {
        OS << "C     halo exchange " << C->Array->getName()
           << C->Dir.str() << " (single address space: no-op)\n";
        continue;
      }
      OS << "C     opaque statement elided (unsupported in Fortran "
            "backend)\n";
    }
    emitLine("RETURN");
    emitLine("END");
    return OS.str();
  }
};

} // namespace

std::string scalarize::emitFortran(const LoopProgram &LP,
                                   const std::string &SubName) {
  FortranEmitter E(LP);
  return E.emit(SubName);
}

//===- scalarize/CEmitter.cpp - C code generation -----------------------------===//

#include "scalarize/CEmitter.h"

#include "analysis/Footprint.h"
#include "analysis/Intervals.h"
#include "support/ErrorHandling.h"
#include "support/StringUtil.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::scalarize;

namespace {

/// Fault-injection state for the vectorizer's legality check (see
/// setVectorizeFaultForTest).
VectorizeFault TestVectorizeFault = VectorizeFault::None;
bool TestVectorizeFaultApplied = false;

/// Collects every ScalarRefExpr under \p Root (no dedup, pre-order).
void collectScalarRefs(const Expr *Root,
                       std::vector<const ScalarSymbol *> &Out) {
  if (!Root)
    return;
  if (const auto *S = dyn_cast<ScalarRefExpr>(Root)) {
    Out.push_back(S->getSymbol());
    return;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(Root)) {
    collectScalarRefs(U->getOperand(), Out);
    return;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(Root)) {
    collectScalarRefs(B->getLHS(), Out);
    collectScalarRefs(B->getRHS(), Out);
  }
}

/// Layout of one emitted array: footprint bounds and row-major strides.
struct Layout {
  Region Bounds;
  std::vector<int64_t> Strides;

  explicit Layout(const Region &B) : Bounds(B) {
    Strides.assign(B.rank(), 1);
    for (int D = static_cast<int>(B.rank()) - 2; D >= 0; --D)
      Strides[D] = Strides[D + 1] * B.extent(D + 1);
  }

  int64_t size() const { return Bounds.size(); }
};

class Emitter {
  const LoopProgram &LP;
  const Program &P;
  CEmitOptions Opts;
  FootprintInfo FI;
  std::map<unsigned, Layout> Layouts; // by array symbol id
  std::ostringstream OS;

  // Vectorization bookkeeping (Opts.Vectorize only).
  unsigned NumVectorized = 0;
  unsigned NumFallbacks = 0;
  bool Reassociated = false;
  /// Scalar temporaries (non-accumulate scalar targets of the nest being
  /// vectorized) that have been assigned their vector value so far; reads
  /// of these render as the vector temp, everything else splats.
  std::set<const ScalarSymbol *> VecAssigned;

public:
  explicit Emitter(const LoopProgram &LP, CEmitOptions Opts = CEmitOptions())
      : LP(LP), P(LP.source()), Opts(Opts), FI(FootprintInfo::compute(P)) {
    for (const ArraySymbol *A : P.arrays()) {
      if (LP.isContracted(A))
        continue;
      if (const xform::PartialPlan *Plan = LP.partialPlanFor(A)) {
        Layouts.emplace(A->getId(), Layout(Plan->bufferRegion()));
        continue;
      }
      if (const Region *B = FI.boundsFor(A))
        Layouts.emplace(A->getId(), Layout(*B));
    }
  }

  /// Allocated arrays in symbol order.
  std::vector<const ArraySymbol *> allocatedArrays() const {
    std::vector<const ArraySymbol *> Result;
    for (const ArraySymbol *A : P.arrays())
      if (Layouts.count(A->getId()))
        Result.push_back(A);
    return Result;
  }

  std::vector<const ScalarSymbol *> programScalars() const {
    std::vector<const ScalarSymbol *> Result;
    for (const Symbol *S : P.symbols())
      if (const auto *Sc = dyn_cast<ScalarSymbol>(S))
        Result.push_back(Sc);
    return Result;
  }

  const Layout &layoutOf(const ArraySymbol *A) const {
    auto It = Layouts.find(A->getId());
    if (It == Layouts.end())
      alf_unreachable("emitting a reference to an array without storage");
    return It->second;
  }

  /// Pre-flight check that every construct the emitter will render is
  /// supported: each array referenced from a nest body must have storage
  /// (a footprint layout) — contracted arrays were already rewritten to
  /// scalars during scalarization, so a missing layout means the program
  /// reached the backend in a shape it cannot express. Returns "" when
  /// emission will succeed.
  std::string validate() const {
    for (const auto &NodePtr : LP.nodes()) {
      const auto *Nest = dyn_cast<LoopNest>(NodePtr.get());
      if (!Nest)
        continue;
      for (const ScalarStmt &S : Nest->Body) {
        std::vector<const ArraySymbol *> Refs;
        if (!S.LHS.isScalar())
          Refs.push_back(S.LHS.Array);
        for (const ArrayRefExpr *Ref : collectArrayRefs(S.RHS.get()))
          Refs.push_back(Ref->getSymbol());
        for (const ArraySymbol *A : Refs) {
          if (!Layouts.count(A->getId()))
            return "array '" + A->getName() +
                   "' is referenced but has no storage layout";
          if (layoutOf(A).Bounds.rank() != Nest->R->rank())
            return "array '" + A->getName() +
                   "' rank does not match its enclosing nest";
        }
      }
    }
    return "";
  }

  /// "A_x[(i1-(0))*18 + (i2-(1))]" for the element at loop indices +
  /// offset. Dimensions reduced by partial contraction index their
  /// rolling buffer modulo the window size.
  std::string elemRef(const ArraySymbol *A, const Offset &Off) const {
    const Layout &L = layoutOf(A);
    const xform::PartialPlan *Plan = LP.partialPlanFor(A);
    std::string Index;
    for (unsigned D = 0; D < L.Bounds.rank(); ++D) {
      std::string Coord;
      if (Plan && Plan->isReduced(D)) {
        long long E = static_cast<long long>(Plan->BufferExtents[D]);
        Coord = formatString("(((i%u%+d - (%lld)) %% %lld + %lld) %% %lld)",
                             D + 1, Off[D],
                             static_cast<long long>(Plan->OrigLo[D]), E, E, E);
      } else {
        Coord = formatString("(i%u%+d - (%lld))", D + 1, Off[D],
                             static_cast<long long>(L.Bounds.lo(D)));
      }
      if (L.Strides[D] != 1)
        Coord += formatString("*%lld", static_cast<long long>(L.Strides[D]));
      Index += (D ? " + " : "") + Coord;
    }
    return formatString("A_%s[%s]", A->getName().c_str(), Index.c_str());
  }

  std::string renderExpr(const Expr *E) const {
    if (const auto *C = dyn_cast<ConstExpr>(E))
      return formatString("%.17g", C->getValue());
    if (const auto *S = dyn_cast<ScalarRefExpr>(E)) {
      // Contracted-array scalars are locals; program scalars are in/out
      // pointer parameters.
      if (P.findSymbol(S->getSymbol()->getName()) == S->getSymbol())
        return formatString("(*S_%s)", S->getSymbol()->getName().c_str());
      return S->getSymbol()->getName();
    }
    if (const auto *A = dyn_cast<ArrayRefExpr>(E))
      return elemRef(A->getSymbol(), A->getOffset());
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      std::string Op = renderExpr(U->getOperand());
      switch (U->getOpcode()) {
      case UnaryExpr::Opcode::Neg:
        return "(-(" + Op + "))";
      case UnaryExpr::Opcode::Abs:
        return "fabs(" + Op + ")";
      case UnaryExpr::Opcode::Sqrt:
        return "alf_sqrt(" + Op + ")";
      case UnaryExpr::Opcode::Exp:
        return "alf_exp(" + Op + ")";
      case UnaryExpr::Opcode::Log:
        return "alf_log(" + Op + ")";
      case UnaryExpr::Opcode::Sin:
        return "sin(" + Op + ")";
      case UnaryExpr::Opcode::Cos:
        return "cos(" + Op + ")";
      case UnaryExpr::Opcode::Recip:
        return "alf_recip(" + Op + ")";
      }
      alf_unreachable("unhandled unary opcode");
    }
    const auto *B = cast<BinaryExpr>(E);
    std::string L = renderExpr(B->getLHS());
    std::string R = renderExpr(B->getRHS());
    switch (B->getOpcode()) {
    case BinaryExpr::Opcode::Add:
      return "(" + L + " + " + R + ")";
    case BinaryExpr::Opcode::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryExpr::Opcode::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryExpr::Opcode::Div:
      return "alf_div(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Min:
      return "fmin(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Max:
      return "fmax(" + L + ", " + R + ")";
    }
    alf_unreachable("unhandled expression kind");
  }

  void emitPrelude() {
    OS << "/* generated by ALF from program '" << P.getName() << "' */\n";
    OS << "#include <math.h>\n";
    OS << "#include <stdint.h>\n";
    OS << "#include <stdio.h>\n";
    OS << "#include <stdlib.h>\n\n";
    // Helpers matching the ALF interpreter's guarded arithmetic exactly.
    OS << "static double alf_sqrt(double v) { return sqrt(fabs(v)); }\n";
    OS << "static double alf_exp(double v) { return exp(fmin(v, 40.0)); "
          "}\n";
    OS << "static double alf_log(double v) { return log(fabs(v) + 1e-12); "
          "}\n";
    OS << "static double alf_recip(double v) { return 1.0 / (v + (v >= 0 ? "
          "1e-12 : -1e-12)); }\n";
    OS << "static double alf_div(double l, double r) { return l / (r + (r "
          ">= 0 ? 1e-12 : -1e-12)); }\n\n";
    if (Opts.Vectorize)
      emitVectorPrelude();
  }

  /// GNU vector-extension types and lane helpers. Everything except the
  /// arithmetic operators (+, -, * are IEEE-exact per lane) applies the
  /// guarded scalar helper lane by lane, so elementwise vector code is
  /// bit-identical to the scalar backend; alf_vd_sel is the bitwise
  /// compare+select the ⊕ folds of min/max/or reduce with — it selects
  /// operand bits, matching the scalar ternary spelling exactly.
  void emitVectorPrelude() {
    unsigned W = Opts.VectorWidth;
    OS << formatString("typedef double alf_vd __attribute__((vector_size(%u)"
                       ", aligned(8), may_alias));\n",
                       W * 8);
    OS << formatString("typedef long long alf_vm __attribute__((vector_size("
                       "%u), aligned(8), may_alias));\n",
                       W * 8);
    OS << formatString("static alf_vd alf_vd_splat(double v) { alf_vd o; "
                       "int k; for (k = 0; k < %u; ++k) o[k] = v; return o; "
                       "}\n",
                       W);
    OS << "static alf_vd alf_vd_sel(alf_vm m, alf_vd t, alf_vd f) { return "
          "(alf_vd)((m & (alf_vm)t) | (~m & (alf_vm)f)); }\n";
    auto LaneUnary = [&](const char *VName, const char *SExpr) {
      OS << formatString("static alf_vd alf_vd_%s(alf_vd v) { alf_vd o; int "
                         "k; for (k = 0; k < %u; ++k) o[k] = %s; return o; "
                         "}\n",
                         VName, W, SExpr);
    };
    LaneUnary("fabs", "fabs(v[k])");
    LaneUnary("sqrt", "alf_sqrt(v[k])");
    LaneUnary("exp", "alf_exp(v[k])");
    LaneUnary("log", "alf_log(v[k])");
    LaneUnary("sin", "sin(v[k])");
    LaneUnary("cos", "cos(v[k])");
    LaneUnary("recip", "alf_recip(v[k])");
    auto LaneBinary = [&](const char *VName, const char *SExpr) {
      OS << formatString("static alf_vd alf_vd_%s(alf_vd l, alf_vd r) { "
                         "alf_vd o; int k; for (k = 0; k < %u; ++k) o[k] = "
                         "%s; return o; }\n",
                         VName, W, SExpr);
    };
    LaneBinary("div", "alf_div(l[k], r[k])");
    LaneBinary("fmin", "fmin(l[k], r[k])");
    LaneBinary("fmax", "fmax(l[k], r[k])");
    OS << '\n';
  }

  void emitSignature(const std::string &FnName) {
    OS << "void " << FnName << "(";
    bool First = true;
    // In vectorize mode the array parameters are restrict-qualified:
    // every buffer is a distinct allocation (exec::Storage allocates per
    // symbol, the harness mallocs per symbol), so the promise is sound,
    // and it licenses the compiler to schedule the emitted vector loads
    // and stores without aliasing reloads.
    const char *Qual = Opts.Vectorize ? "double *restrict A_" : "double *A_";
    for (const ArraySymbol *A : allocatedArrays()) {
      OS << (First ? "" : ", ") << Qual << A->getName();
      First = false;
    }
    for (const ScalarSymbol *S : programScalars()) {
      OS << (First ? "" : ", ") << "double *S_" << S->getName();
      First = false;
    }
    if (First)
      OS << "void";
    OS << ")";
  }

  unsigned maxRank() const {
    unsigned Rank = 0;
    for (const auto &NodePtr : LP.nodes()) {
      if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get()))
        Rank = std::max(Rank, Nest->R->rank());
      if (const auto *Op = dyn_cast<OpaqueOp>(NodePtr.get()))
        if (Op->Src->getRegion())
          Rank = std::max(Rank, Op->Src->getRegion()->rank());
    }
    return Rank;
  }

  static std::string doubleLiteral(double V) {
    if (std::isinf(V))
      return V > 0 ? "INFINITY" : "-INFINITY";
    return formatString("%.17g", V);
  }

  /// "(*S_name)" for program scalars (in/out pointer parameters),
  /// "name" for contracted-array locals.
  std::string scalarTargetName(const ScalarSymbol *S) const {
    if (P.findSymbol(S->getName()) == S)
      return "(*S_" + S->getName() + ")";
    return S->getName();
  }

  /// The semiring's ⊕ folding `alf_v` into \p Name, spelled exactly as
  /// semiring::applyOp computes it, so native kernels are bit-identical
  /// to the interpreter (fmin/fmax have different NaN and signed-zero
  /// behavior than the ternary). Shared between the scalar accumulate
  /// path and the vector backend's lane-order horizontal reduction.
  static std::string scalarFoldExpr(const semiring::Semiring *SR,
                                    const std::string &Name) {
    switch (SR->Plus) {
    case semiring::OpKind::Min:
      return "(alf_v < " + Name + " ? alf_v : " + Name + ")";
    case semiring::OpKind::Max:
      return "(alf_v > " + Name + " ? alf_v : " + Name + ")";
    case semiring::OpKind::Or:
      return "((" + Name + " != 0.0 || alf_v != 0.0) ? 1.0 : 0.0)";
    default:
      return Name + " + alf_v";
    }
  }

  /// One body statement in the scalar spelling (used by scalar nests and
  /// by the peeled remainder loop of vectorized nests).
  void emitBodyStmt(const ScalarStmt &S, const std::string &Indent) {
    OS << Indent;
    std::string RHS = renderExpr(S.RHS.get());
    if (S.LHS.isScalar()) {
      std::string Name = scalarTargetName(S.LHS.Scalar);
      if (!S.Accumulate)
        OS << Name << " = " << RHS << ";\n";
      else if (S.SR->Plus == semiring::OpKind::Add)
        OS << Name << " += " << RHS << ";\n";
      else
        // Bind the element value once, then fold with ⊕.
        OS << "{ const double alf_v = " << RHS << "; " << Name << " = "
           << scalarFoldExpr(S.SR, Name) << "; }\n";
      return;
    }
    OS << elemRef(S.LHS.Array, S.LHS.Off) << " = " << RHS << ";\n";
  }

  void emitNestScalar(const LoopNest &Nest) {
    for (const ScalarInit &SI : Nest.ScalarInits)
      OS << "  *S_" << SI.Acc->getName() << " = " << doubleLiteral(SI.Init)
         << ";\n";

    std::string Indent = "  ";
    for (unsigned L = 0; L < Nest.LSV.rank(); ++L) {
      emitLoopHeader(Nest, L, Indent);
      Indent += "  ";
    }
    OS << Indent << "{\n";
    for (const ScalarStmt &S : Nest.Body)
      emitBodyStmt(S, Indent + "  ");
    OS << Indent << "}\n";
  }

  /// One `for (...)` header (no body) for loop level \p L of \p Nest.
  void emitLoopHeader(const LoopNest &Nest, unsigned L,
                      const std::string &Indent) {
    unsigned Dim = Nest.LSV.dimOf(L);
    long long Lo = Nest.R->lo(Dim), Hi = Nest.R->hi(Dim);
    if (Nest.LSV.dirOf(L) > 0)
      OS << Indent
         << formatString("for (i%u = %lld; i%u <= %lld; ++i%u)", Dim + 1, Lo,
                         Dim + 1, Hi, Dim + 1)
         << '\n';
    else
      OS << Indent
         << formatString("for (i%u = %lld; i%u >= %lld; --i%u)", Dim + 1, Hi,
                         Dim + 1, Lo, Dim + 1)
         << '\n';
  }

  /// Why \p Nest cannot be emitted as a SIMD loop over its innermost
  /// FIND-LOOP-STRUCTURE dimension; "" when it can. The certificate has
  /// three parts: (1) the innermost loop iterates increasing and every
  /// referenced array is unit-stride along its dimension (row-major
  /// layout stride 1, no rolling-buffer modulo indexing), with the lane
  /// accesses proved inside the array footprint in the analysis/Intervals
  /// domain; (2) no intra-cluster dependence is carried by the innermost
  /// loop, so lanes are independent; (3) every scalar in the body is
  /// lane-splittable — accumulators fold with a ⊕ the semiring table
  /// declares vectorizable and are not read inside the nest, temporaries
  /// are assigned before they are read.
  std::string vectorizeBlocker(const LoopNest &Nest) const {
    if (TestVectorizeFault == VectorizeFault::CarriedInnermost) {
      TestVectorizeFaultApplied = true;
      return "planted innermost-carried dependence (test fault)";
    }
    unsigned Rank = Nest.LSV.rank();
    if (Rank == 0 || !Nest.R || Nest.R->rank() != Rank)
      return "nest has no usable loop structure";
    unsigned InnerLoop = Rank - 1;
    if (Nest.LSV.dirOf(InnerLoop) < 0)
      return "innermost loop iterates decreasing";
    unsigned Dim = Nest.LSV.dimOf(InnerLoop);

    // (2) Cross-lane hazard: a dependence carried exactly by the
    // innermost loop orders iterations the lanes would run in lockstep.
    for (const Offset &U : Nest.UDVs) {
      if (U.rank() != Rank)
        return "dependence vector rank mismatch";
      Offset D = xform::constrain(U, Nest.LSV);
      bool OuterZero = true;
      for (unsigned L = 0; L + 1 < Rank; ++L)
        OuterZero = OuterZero && D[L] == 0;
      if (OuterZero && D[Rank - 1] != 0)
        return "dependence carried by the innermost loop crosses lanes";
    }

    // (3) Scalar discipline of the body.
    std::set<const ScalarSymbol *> AccTargets, TempTargets;
    for (const ScalarStmt &S : Nest.Body) {
      if (!S.LHS.isScalar())
        continue;
      if (S.Accumulate) {
        if (!S.SR->vectorizablePlus())
          return "reduction ⊕ '" + std::string(S.SR->plusName()) +
                 "' has no lane fold";
        switch (S.SR->Plus) {
        case semiring::OpKind::Add:
        case semiring::OpKind::Min:
        case semiring::OpKind::Max:
        case semiring::OpKind::Or:
          break;
        default:
          return "reduction ⊕ '" + std::string(S.SR->plusName()) +
                 "' has no vector spelling";
        }
        AccTargets.insert(S.LHS.Scalar);
      } else {
        // Plainly-assigned scalars become vector temps whose lanes are
        // never folded back, which is only unobservable for contraction
        // locals (all their reads are confined to this nest). A program
        // scalar assigned elementwise keeps last-iteration-wins
        // semantics the lanes would break.
        if (P.findSymbol(S.LHS.Scalar->getName()) == S.LHS.Scalar)
          return "program scalar '" + S.LHS.Scalar->getName() +
                 "' is assigned elementwise (last-iteration semantics)";
        TempTargets.insert(S.LHS.Scalar);
      }
    }
    for (const ScalarSymbol *S : AccTargets)
      if (TempTargets.count(S))
        return "scalar is both accumulator and temporary in one nest";

    std::set<const ScalarSymbol *> Assigned;
    for (const ScalarStmt &S : Nest.Body) {
      std::vector<const ScalarSymbol *> Reads;
      collectScalarRefs(S.RHS.get(), Reads);
      for (const ScalarSymbol *R : Reads) {
        if (AccTargets.count(R))
          return "reduction accumulator is read inside its own nest";
        if (TempTargets.count(R) && !Assigned.count(R))
          return "scalar temporary read before its lane assignment";
      }
      if (S.LHS.isScalar() && !S.Accumulate)
        Assigned.insert(S.LHS.Scalar);
    }

    // (1) Unit stride + in-footprint lanes for every array reference.
    auto CheckRef = [&](const ArraySymbol *A,
                        const Offset &Off) -> std::string {
      const Layout &L = layoutOf(A);
      if (const xform::PartialPlan *Plan = LP.partialPlanFor(A))
        if (Plan->isReduced(Dim))
          return "array '" + A->getName() +
                 "' uses rolling-buffer modulo indexing on the vector "
                 "dimension";
      if (L.Strides[Dim] != 1)
        return "array '" + A->getName() +
               "' is not unit-stride along the innermost dimension";
      SymInterval Lanes = SymInterval::ofDim(Nest.R, Dim, Off[Dim]);
      SymInterval Span{AffineBound::lo(&L.Bounds, Dim),
                       AffineBound::hi(&L.Bounds, Dim)};
      if (proveContains(Span, Lanes) == BoundProof::Disproved)
        return "lane accesses of '" + A->getName() +
               "' are not provably inside its footprint";
      return "";
    };
    for (const ScalarStmt &S : Nest.Body) {
      if (!S.LHS.isScalar())
        if (std::string Why = CheckRef(S.LHS.Array, S.LHS.Off); !Why.empty())
          return Why;
      for (const ArrayRefExpr *Ref : collectArrayRefs(S.RHS.get()))
        if (std::string Why = CheckRef(Ref->getSymbol(), Ref->getOffset());
            !Why.empty())
          return Why;
    }
    return "";
  }

  std::string renderExprVec(const Expr *E) {
    if (const auto *C = dyn_cast<ConstExpr>(E))
      return "alf_vd_splat(" + formatString("%.17g", C->getValue()) + ")";
    if (const auto *S = dyn_cast<ScalarRefExpr>(E)) {
      if (VecAssigned.count(S->getSymbol()))
        return "vt_" + S->getSymbol()->getName();
      // Loop-invariant inside the nest (a program scalar or a value left
      // by an earlier nest): broadcast.
      return "alf_vd_splat(" + renderExpr(E) + ")";
    }
    if (const auto *A = dyn_cast<ArrayRefExpr>(E))
      return "(*(const alf_vd *)&" +
             elemRef(A->getSymbol(), A->getOffset()) + ")";
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      std::string Op = renderExprVec(U->getOperand());
      switch (U->getOpcode()) {
      case UnaryExpr::Opcode::Neg:
        return "(-(" + Op + "))";
      case UnaryExpr::Opcode::Abs:
        return "alf_vd_fabs(" + Op + ")";
      case UnaryExpr::Opcode::Sqrt:
        return "alf_vd_sqrt(" + Op + ")";
      case UnaryExpr::Opcode::Exp:
        return "alf_vd_exp(" + Op + ")";
      case UnaryExpr::Opcode::Log:
        return "alf_vd_log(" + Op + ")";
      case UnaryExpr::Opcode::Sin:
        return "alf_vd_sin(" + Op + ")";
      case UnaryExpr::Opcode::Cos:
        return "alf_vd_cos(" + Op + ")";
      case UnaryExpr::Opcode::Recip:
        return "alf_vd_recip(" + Op + ")";
      }
      alf_unreachable("unhandled unary opcode");
    }
    const auto *B = cast<BinaryExpr>(E);
    std::string L = renderExprVec(B->getLHS());
    std::string R = renderExprVec(B->getRHS());
    switch (B->getOpcode()) {
    case BinaryExpr::Opcode::Add:
      return "(" + L + " + " + R + ")";
    case BinaryExpr::Opcode::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryExpr::Opcode::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryExpr::Opcode::Div:
      return "alf_vd_div(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Min:
      return "alf_vd_fmin(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Max:
      return "alf_vd_fmax(" + L + ", " + R + ")";
    }
    alf_unreachable("unhandled expression kind");
  }

  /// One body statement in the vector spelling.
  void emitBodyStmtVec(const ScalarStmt &S, const std::string &Indent) {
    std::string RHS = renderExprVec(S.RHS.get());
    if (S.LHS.isScalar()) {
      if (!S.Accumulate) {
        OS << Indent << "vt_" << S.LHS.Scalar->getName() << " = " << RHS
           << ";\n";
        VecAssigned.insert(S.LHS.Scalar);
        return;
      }
      std::string Acc = "va_" + S.LHS.Scalar->getName();
      switch (S.SR->Plus) {
      case semiring::OpKind::Add:
        OS << Indent << Acc << " += " << RHS << ";\n";
        break;
      case semiring::OpKind::Min:
        OS << Indent << "{ const alf_vd alf_vv = " << RHS << "; " << Acc
           << " = alf_vd_sel((alf_vm)(alf_vv < " << Acc << "), alf_vv, "
           << Acc << "); }\n";
        break;
      case semiring::OpKind::Max:
        OS << Indent << "{ const alf_vd alf_vv = " << RHS << "; " << Acc
           << " = alf_vd_sel((alf_vm)(alf_vv > " << Acc << "), alf_vv, "
           << Acc << "); }\n";
        break;
      case semiring::OpKind::Or:
        OS << Indent << "{ const alf_vd alf_vv = " << RHS << "; " << Acc
           << " = alf_vd_sel((alf_vm)((" << Acc
           << " != alf_vd_splat(0.0)) | (alf_vv != alf_vd_splat(0.0))), "
              "alf_vd_splat(1.0), alf_vd_splat(0.0)); }\n";
        break;
      default:
        alf_unreachable("vectorizing a ⊕ the legality check rejects");
      }
      return;
    }
    OS << Indent << "*(alf_vd *)&" << elemRef(S.LHS.Array, S.LHS.Off)
       << " = " << RHS << ";\n";
  }

  /// The SIMD spelling: accumulators live in vector lanes seeded with the
  /// ⊕-identity from ScalarInits, the innermost loop steps VectorWidth
  /// lanes with a peeled scalar remainder, and lanes fold back into the
  /// scalar accumulator in lane order at nest exit — the one place a
  /// float + reduction is reassociated.
  void emitNestVectorized(const LoopNest &Nest) {
    unsigned W = Opts.VectorWidth;
    unsigned Dim = Nest.LSV.dimOf(Nest.LSV.rank() - 1);
    long long Lo = Nest.R->lo(Dim), Hi = Nest.R->hi(Dim);

    for (const ScalarInit &SI : Nest.ScalarInits)
      OS << "  *S_" << SI.Acc->getName() << " = " << doubleLiteral(SI.Init)
         << ";\n";

    // Accumulators (in first-fold order) and scalar temporaries.
    std::vector<std::pair<const ScalarSymbol *, const semiring::Semiring *>>
        Accs;
    std::vector<const ScalarSymbol *> Temps;
    for (const ScalarStmt &S : Nest.Body) {
      if (!S.LHS.isScalar())
        continue;
      auto Seen = [&](const ScalarSymbol *Sym) {
        for (const auto &[A, SR] : Accs)
          if (A == Sym)
            return true;
        for (const ScalarSymbol *T : Temps)
          if (T == Sym)
            return true;
        return false;
      };
      if (Seen(S.LHS.Scalar))
        continue;
      if (S.Accumulate) {
        Accs.push_back({S.LHS.Scalar, S.SR});
        if (semiring::vecFoldKind(S.SR->Plus) == semiring::VecFold::Arith)
          Reassociated = true;
      } else {
        Temps.push_back(S.LHS.Scalar);
      }
    }

    OS << formatString("  { /* simd: %u lanes over dimension %u */\n", W,
                       Dim + 1);
    for (const auto &[Sym, SR] : Accs)
      OS << "  alf_vd va_" << Sym->getName() << " = alf_vd_splat("
         << doubleLiteral(SR->PlusIdentity) << ");\n";
    for (const ScalarSymbol *Sym : Temps)
      OS << "  alf_vd vt_" << Sym->getName() << ";\n";

    std::string Indent = "  ";
    for (unsigned L = 0; L + 1 < Nest.LSV.rank(); ++L) {
      emitLoopHeader(Nest, L, Indent);
      Indent += "  ";
    }
    OS << Indent << "{\n";
    OS << Indent
       << formatString("  for (i%u = %lld; i%u + %u <= %lld; i%u += %u) {\n",
                       Dim + 1, Lo, Dim + 1, W - 1, Hi, Dim + 1, W);
    VecAssigned.clear();
    for (const ScalarStmt &S : Nest.Body)
      emitBodyStmtVec(S, Indent + "    ");
    OS << Indent << "  }\n";
    // Peeled remainder: the exact scalar spelling continues from where
    // the vector loop stopped (folding straight into the scalar
    // accumulator — ⊕ commutes, and for non-exact + the whole nest is
    // already declared reassociated).
    OS << Indent
       << formatString("  for (; i%u <= %lld; ++i%u)\n", Dim + 1, Hi,
                       Dim + 1);
    OS << Indent << "  {\n";
    for (const ScalarStmt &S : Nest.Body)
      emitBodyStmt(S, Indent + "    ");
    OS << Indent << "  }\n";
    OS << Indent << "}\n";

    // Horizontal reduction, lane order, with the scalar ⊕ spelling.
    for (const auto &[Sym, SR] : Accs) {
      std::string Name = scalarTargetName(Sym);
      for (unsigned K = 0; K < W; ++K)
        OS << "  { const double alf_v = va_" << Sym->getName() << "[" << K
           << "]; " << Name << " = " << scalarFoldExpr(SR, Name) << "; }\n";
    }
    OS << "  }\n";
  }

  void emitNest(const LoopNest &Nest) {
    if (!Opts.Vectorize) {
      emitNestScalar(Nest);
      return;
    }
    std::string Blocker = vectorizeBlocker(Nest);
    if (Blocker.empty()) {
      ++NumVectorized;
      emitNestVectorized(Nest);
      return;
    }
    ++NumFallbacks;
    OS << "  /* simd fallback: " << Blocker << " */\n";
    emitNestScalar(Nest);
  }

  unsigned numVectorizedNests() const { return NumVectorized; }
  unsigned numVectorFallbacks() const { return NumFallbacks; }
  bool reassociated() const { return Reassociated; }

  /// Emits the deterministic opaque-statement semantics (matching
  /// exec::Interpreter's execOpaque).
  void emitOpaque(const OpaqueStmt &O) {
    OS << "  /* opaque: " << O.getDesc() << " */\n";
    const Region *R = O.getRegion();
    if (!R) {
      OS << "  {\n    double v = 1.0;\n";
      for (const ScalarSymbol *S : O.scalarReads())
        OS << "    v += 0.5 * (*S_" << S->getName() << ");\n";
      unsigned Ordinal = 0;
      for (const ScalarSymbol *S : O.scalarWrites())
        OS << "    *S_" << S->getName() << " = v + " << Ordinal++ << ";\n";
      OS << "  }\n";
      return;
    }

    OS << "  {\n    double base = 1.0;\n";
    for (const ScalarSymbol *S : O.scalarReads())
      OS << "    base += 0.5 * (*S_" << S->getName() << ");\n";
    for (size_t I = 0; I < O.scalarWrites().size(); ++I)
      OS << "    double acc" << I << " = 0.0;\n";
    std::string Indent = "    ";
    for (unsigned D = 0; D < R->rank(); ++D) {
      OS << Indent
         << formatString("for (i%u = %lld; i%u <= %lld; ++i%u)", D + 1,
                         static_cast<long long>(R->lo(D)), D + 1,
                         static_cast<long long>(R->hi(D)), D + 1)
         << '\n';
      Indent += "  ";
    }
    OS << Indent << "{\n";
    OS << Indent << "  double v = base;\n";
    Offset Zero = Offset::zero(R->rank());
    for (const ArraySymbol *A : O.arrayReads())
      if (Layouts.count(A->getId()) && A->getRank() == R->rank())
        OS << Indent << "  v += 0.5 * " << elemRef(A, Zero) << ";\n";
    unsigned Ordinal = 0;
    for (const ArraySymbol *A : O.arrayWrites())
      if (Layouts.count(A->getId()) && A->getRank() == R->rank())
        OS << Indent << "  " << elemRef(A, Zero) << " = v + " << Ordinal++
           << ";\n";
    for (size_t I = 0; I < O.scalarWrites().size(); ++I)
      OS << Indent << "  acc" << I << " += v;\n";
    OS << Indent << "}\n";
    double Scale = 1.0 / static_cast<double>(R->size());
    for (size_t I = 0; I < O.scalarWrites().size(); ++I)
      OS << formatString("    *S_%s = acc%zu * %.17g;\n",
                         O.scalarWrites()[I]->getName().c_str(), I, Scale);
    OS << "  }\n";
  }

  void emitKernel(const std::string &FnName) {
    emitSignature(FnName);
    OS << " {\n";
    unsigned Rank = maxRank();
    if (Rank > 0) {
      OS << "  long ";
      for (unsigned D = 0; D < Rank; ++D)
        OS << (D ? ", " : "") << "i" << D + 1;
      OS << ";\n";
    }
    // Locals for contracted arrays' scalars.
    for (const ArraySymbol *A : P.arrays())
      if (const ScalarSymbol *S = LP.scalarFor(A))
        OS << "  double " << S->getName() << " = 0.0;\n";

    for (const auto &NodePtr : LP.nodes()) {
      if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
        emitNest(*Nest);
        continue;
      }
      if (const auto *C = dyn_cast<CommOp>(NodePtr.get())) {
        OS << "  /* halo exchange " << C->Array->getName() << C->Dir.str()
           << " (single address space: no-op) */\n";
        continue;
      }
      emitOpaque(*cast<OpaqueOp>(NodePtr.get())->Src);
    }
    OS << "}\n";
  }

  /// Emits the fixed-ABI wrapper the native JIT backend dlopens:
  /// `void <FnName>_entry(double **arrays, double *scalars)`, unpacking
  /// the caller-owned buffers into the kernel's positional parameters
  /// (arrays in allocatedArrays() order, scalars in programScalars()
  /// order — the order CModule reports).
  void emitEntry(const std::string &FnName) {
    OS << "\nvoid " << FnName << "_entry(double **arrays, double *scalars)"
       << " {\n";
    OS << "  " << FnName << "(";
    bool First = true;
    size_t ArrayIdx = 0;
    for (const ArraySymbol *A : allocatedArrays()) {
      (void)A;
      OS << (First ? "" : ", ") << "arrays[" << ArrayIdx++ << "]";
      First = false;
    }
    size_t ScalarIdx = 0;
    for (const ScalarSymbol *S : programScalars()) {
      (void)S;
      OS << (First ? "" : ", ") << "&scalars[" << ScalarIdx++ << "]";
      First = false;
    }
    OS << ");\n";
    OS << "}\n";
  }

  void emitHarness(const std::string &FnName, uint64_t Seed) {
    // SplitMix64 + FNV-1a, bit-identical to support/Random.h and
    // exec::hashName.
    OS << R"(
static uint64_t alf_rng_state;
static uint64_t alf_rng_next(void) {
  alf_rng_state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = alf_rng_state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
static double alf_rng_double(void) {
  return (double)(alf_rng_next() >> 11) * 0x1.0p-53;
}
static uint64_t alf_hash(const char *s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s; ++s) { h ^= (unsigned char)*s; h *= 0x100000001b3ULL; }
  return h;
}
)";
    OS << "\nint main(void) {\n";
    OS << formatString("  const uint64_t seed = %lluULL;\n",
                       static_cast<unsigned long long>(Seed));
    OS << "  long i;\n";
    for (const ArraySymbol *A : allocatedArrays()) {
      const Layout &L = layoutOf(A);
      OS << formatString("  double *A_%s = malloc(%lld * sizeof(double));\n",
                         A->getName().c_str(),
                         static_cast<long long>(L.size()));
      if (A->isLiveIn()) {
        OS << formatString("  alf_rng_state = seed ^ alf_hash(\"%s\");\n",
                           A->getName().c_str());
        OS << formatString("  for (i = 0; i < %lld; ++i) A_%s[i] = -1.0 + "
                           "2.0 * alf_rng_double();\n",
                           static_cast<long long>(L.size()),
                           A->getName().c_str());
      } else {
        OS << formatString(
            "  for (i = 0; i < %lld; ++i) A_%s[i] = 0.0;\n",
            static_cast<long long>(L.size()), A->getName().c_str());
      }
    }
    for (const ScalarSymbol *S : programScalars()) {
      OS << formatString("  alf_rng_state = seed ^ alf_hash(\"%s\");\n",
                         S->getName().c_str());
      OS << formatString("  double v_%s = 0.5 + alf_rng_double();\n",
                         S->getName().c_str());
    }

    OS << "  " << FnName << "(";
    bool First = true;
    for (const ArraySymbol *A : allocatedArrays()) {
      OS << (First ? "" : ", ") << "A_" << A->getName();
      First = false;
    }
    for (const ScalarSymbol *S : programScalars()) {
      OS << (First ? "" : ", ") << "&v_" << S->getName();
      First = false;
    }
    OS << ");\n";

    // Checksums: plain linear sums of live-out arrays, then scalars.
    for (const ArraySymbol *A : allocatedArrays()) {
      if (!A->isLiveOut())
        continue;
      const Layout &L = layoutOf(A);
      OS << formatString("  { double sum = 0.0; for (i = 0; i < %lld; ++i) "
                         "sum += A_%s[i]; printf(\"%s %%.17g\\n\", sum); }\n",
                         static_cast<long long>(L.size()),
                         A->getName().c_str(), A->getName().c_str());
    }
    for (const ScalarSymbol *S : programScalars())
      OS << formatString("  printf(\"%s %%.17g\\n\", v_%s);\n",
                         S->getName().c_str(), S->getName().c_str());
    for (const ArraySymbol *A : allocatedArrays())
      OS << "  free(A_" << A->getName() << ");\n";
    OS << "  return 0;\n}\n";
  }

  std::string take() { return OS.str(); }
};

} // namespace

CEmitResult scalarize::emitCChecked(const LoopProgram &LP,
                                    const std::string &FnName) {
  CEmitResult Result;
  Emitter E(LP);
  Result.Error = E.validate();
  if (!Result.ok())
    return Result;
  E.emitPrelude();
  E.emitKernel(FnName);
  Result.Source = E.take();
  return Result;
}

CEmitResult scalarize::emitCWithHarnessChecked(const LoopProgram &LP,
                                               const std::string &FnName,
                                               uint64_t Seed,
                                               const CEmitOptions &Opts) {
  CEmitResult Result;
  Emitter E(LP, Opts);
  Result.Error = E.validate();
  if (!Result.ok())
    return Result;
  E.emitPrelude();
  E.emitKernel(FnName);
  E.emitHarness(FnName, Seed);
  Result.Source = E.take();
  return Result;
}

CModule scalarize::emitCModule(const LoopProgram &LP,
                               const std::string &FnName,
                               const CEmitOptions &Opts) {
  CModule Module;
  Emitter E(LP, Opts);
  Module.Error = E.validate();
  if (!Module.ok())
    return Module;
  E.emitPrelude();
  E.emitKernel(FnName);
  E.emitEntry(FnName);
  Module.Source = E.take();
  Module.EntryName = FnName + "_entry";
  Module.Arrays = E.allocatedArrays();
  Module.Scalars = E.programScalars();
  Module.NumVectorizedNests = E.numVectorizedNests();
  Module.NumVectorFallbacks = E.numVectorFallbacks();
  Module.Reassociated = E.reassociated();
  return Module;
}

support::Tolerance scalarize::simdToleranceFor(const LoopProgram &LP) {
  for (const auto &NodePtr : LP.nodes()) {
    const auto *Nest = dyn_cast<LoopNest>(NodePtr.get());
    if (!Nest)
      continue;
    for (const ScalarStmt &S : Nest->Body)
      if (S.Accumulate &&
          semiring::vecFoldKind(S.SR->Plus) == semiring::VecFold::Arith)
        return support::Tolerance::ReassociatedFloat;
  }
  return support::Tolerance::Exact;
}

void scalarize::setVectorizeFaultForTest(VectorizeFault Mode) {
  TestVectorizeFault = Mode;
  TestVectorizeFaultApplied = false;
}

bool scalarize::vectorizeFaultAppliedForTest() {
  return TestVectorizeFaultApplied;
}

std::string scalarize::emitC(const LoopProgram &LP, const std::string &FnName) {
  CEmitResult Result = emitCChecked(LP, FnName);
  if (!Result.ok())
    reportFatalError(Result.Error.c_str());
  return std::move(Result.Source);
}

std::string scalarize::emitCWithHarness(const LoopProgram &LP,
                                        const std::string &FnName,
                                        uint64_t Seed) {
  CEmitResult Result = emitCWithHarnessChecked(LP, FnName, Seed);
  if (!Result.ok())
    reportFatalError(Result.Error.c_str());
  return std::move(Result.Source);
}

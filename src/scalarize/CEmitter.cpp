//===- scalarize/CEmitter.cpp - C code generation -----------------------------===//

#include "scalarize/CEmitter.h"

#include "analysis/Footprint.h"
#include "support/ErrorHandling.h"
#include "support/StringUtil.h"

#include <cmath>
#include <map>
#include <sstream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::scalarize;

namespace {

/// Layout of one emitted array: footprint bounds and row-major strides.
struct Layout {
  Region Bounds;
  std::vector<int64_t> Strides;

  explicit Layout(const Region &B) : Bounds(B) {
    Strides.assign(B.rank(), 1);
    for (int D = static_cast<int>(B.rank()) - 2; D >= 0; --D)
      Strides[D] = Strides[D + 1] * B.extent(D + 1);
  }

  int64_t size() const { return Bounds.size(); }
};

class Emitter {
  const LoopProgram &LP;
  const Program &P;
  FootprintInfo FI;
  std::map<unsigned, Layout> Layouts; // by array symbol id
  std::ostringstream OS;

public:
  explicit Emitter(const LoopProgram &LP)
      : LP(LP), P(LP.source()), FI(FootprintInfo::compute(P)) {
    for (const ArraySymbol *A : P.arrays()) {
      if (LP.isContracted(A))
        continue;
      if (const xform::PartialPlan *Plan = LP.partialPlanFor(A)) {
        Layouts.emplace(A->getId(), Layout(Plan->bufferRegion()));
        continue;
      }
      if (const Region *B = FI.boundsFor(A))
        Layouts.emplace(A->getId(), Layout(*B));
    }
  }

  /// Allocated arrays in symbol order.
  std::vector<const ArraySymbol *> allocatedArrays() const {
    std::vector<const ArraySymbol *> Result;
    for (const ArraySymbol *A : P.arrays())
      if (Layouts.count(A->getId()))
        Result.push_back(A);
    return Result;
  }

  std::vector<const ScalarSymbol *> programScalars() const {
    std::vector<const ScalarSymbol *> Result;
    for (const Symbol *S : P.symbols())
      if (const auto *Sc = dyn_cast<ScalarSymbol>(S))
        Result.push_back(Sc);
    return Result;
  }

  const Layout &layoutOf(const ArraySymbol *A) const {
    auto It = Layouts.find(A->getId());
    if (It == Layouts.end())
      alf_unreachable("emitting a reference to an array without storage");
    return It->second;
  }

  /// Pre-flight check that every construct the emitter will render is
  /// supported: each array referenced from a nest body must have storage
  /// (a footprint layout) — contracted arrays were already rewritten to
  /// scalars during scalarization, so a missing layout means the program
  /// reached the backend in a shape it cannot express. Returns "" when
  /// emission will succeed.
  std::string validate() const {
    for (const auto &NodePtr : LP.nodes()) {
      const auto *Nest = dyn_cast<LoopNest>(NodePtr.get());
      if (!Nest)
        continue;
      for (const ScalarStmt &S : Nest->Body) {
        std::vector<const ArraySymbol *> Refs;
        if (!S.LHS.isScalar())
          Refs.push_back(S.LHS.Array);
        for (const ArrayRefExpr *Ref : collectArrayRefs(S.RHS.get()))
          Refs.push_back(Ref->getSymbol());
        for (const ArraySymbol *A : Refs) {
          if (!Layouts.count(A->getId()))
            return "array '" + A->getName() +
                   "' is referenced but has no storage layout";
          if (layoutOf(A).Bounds.rank() != Nest->R->rank())
            return "array '" + A->getName() +
                   "' rank does not match its enclosing nest";
        }
      }
    }
    return "";
  }

  /// "A_x[(i1-(0))*18 + (i2-(1))]" for the element at loop indices +
  /// offset. Dimensions reduced by partial contraction index their
  /// rolling buffer modulo the window size.
  std::string elemRef(const ArraySymbol *A, const Offset &Off) const {
    const Layout &L = layoutOf(A);
    const xform::PartialPlan *Plan = LP.partialPlanFor(A);
    std::string Index;
    for (unsigned D = 0; D < L.Bounds.rank(); ++D) {
      std::string Coord;
      if (Plan && Plan->isReduced(D)) {
        long long E = static_cast<long long>(Plan->BufferExtents[D]);
        Coord = formatString("(((i%u%+d - (%lld)) %% %lld + %lld) %% %lld)",
                             D + 1, Off[D],
                             static_cast<long long>(Plan->OrigLo[D]), E, E, E);
      } else {
        Coord = formatString("(i%u%+d - (%lld))", D + 1, Off[D],
                             static_cast<long long>(L.Bounds.lo(D)));
      }
      if (L.Strides[D] != 1)
        Coord += formatString("*%lld", static_cast<long long>(L.Strides[D]));
      Index += (D ? " + " : "") + Coord;
    }
    return formatString("A_%s[%s]", A->getName().c_str(), Index.c_str());
  }

  std::string renderExpr(const Expr *E) const {
    if (const auto *C = dyn_cast<ConstExpr>(E))
      return formatString("%.17g", C->getValue());
    if (const auto *S = dyn_cast<ScalarRefExpr>(E)) {
      // Contracted-array scalars are locals; program scalars are in/out
      // pointer parameters.
      if (P.findSymbol(S->getSymbol()->getName()) == S->getSymbol())
        return formatString("(*S_%s)", S->getSymbol()->getName().c_str());
      return S->getSymbol()->getName();
    }
    if (const auto *A = dyn_cast<ArrayRefExpr>(E))
      return elemRef(A->getSymbol(), A->getOffset());
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      std::string Op = renderExpr(U->getOperand());
      switch (U->getOpcode()) {
      case UnaryExpr::Opcode::Neg:
        return "(-(" + Op + "))";
      case UnaryExpr::Opcode::Abs:
        return "fabs(" + Op + ")";
      case UnaryExpr::Opcode::Sqrt:
        return "alf_sqrt(" + Op + ")";
      case UnaryExpr::Opcode::Exp:
        return "alf_exp(" + Op + ")";
      case UnaryExpr::Opcode::Log:
        return "alf_log(" + Op + ")";
      case UnaryExpr::Opcode::Sin:
        return "sin(" + Op + ")";
      case UnaryExpr::Opcode::Cos:
        return "cos(" + Op + ")";
      case UnaryExpr::Opcode::Recip:
        return "alf_recip(" + Op + ")";
      }
      alf_unreachable("unhandled unary opcode");
    }
    const auto *B = cast<BinaryExpr>(E);
    std::string L = renderExpr(B->getLHS());
    std::string R = renderExpr(B->getRHS());
    switch (B->getOpcode()) {
    case BinaryExpr::Opcode::Add:
      return "(" + L + " + " + R + ")";
    case BinaryExpr::Opcode::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryExpr::Opcode::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryExpr::Opcode::Div:
      return "alf_div(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Min:
      return "fmin(" + L + ", " + R + ")";
    case BinaryExpr::Opcode::Max:
      return "fmax(" + L + ", " + R + ")";
    }
    alf_unreachable("unhandled expression kind");
  }

  void emitPrelude() {
    OS << "/* generated by ALF from program '" << P.getName() << "' */\n";
    OS << "#include <math.h>\n";
    OS << "#include <stdint.h>\n";
    OS << "#include <stdio.h>\n";
    OS << "#include <stdlib.h>\n\n";
    // Helpers matching the ALF interpreter's guarded arithmetic exactly.
    OS << "static double alf_sqrt(double v) { return sqrt(fabs(v)); }\n";
    OS << "static double alf_exp(double v) { return exp(fmin(v, 40.0)); "
          "}\n";
    OS << "static double alf_log(double v) { return log(fabs(v) + 1e-12); "
          "}\n";
    OS << "static double alf_recip(double v) { return 1.0 / (v + (v >= 0 ? "
          "1e-12 : -1e-12)); }\n";
    OS << "static double alf_div(double l, double r) { return l / (r + (r "
          ">= 0 ? 1e-12 : -1e-12)); }\n\n";
  }

  void emitSignature(const std::string &FnName) {
    OS << "void " << FnName << "(";
    bool First = true;
    for (const ArraySymbol *A : allocatedArrays()) {
      OS << (First ? "" : ", ") << "double *A_" << A->getName();
      First = false;
    }
    for (const ScalarSymbol *S : programScalars()) {
      OS << (First ? "" : ", ") << "double *S_" << S->getName();
      First = false;
    }
    if (First)
      OS << "void";
    OS << ")";
  }

  unsigned maxRank() const {
    unsigned Rank = 0;
    for (const auto &NodePtr : LP.nodes()) {
      if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get()))
        Rank = std::max(Rank, Nest->R->rank());
      if (const auto *Op = dyn_cast<OpaqueOp>(NodePtr.get()))
        if (Op->Src->getRegion())
          Rank = std::max(Rank, Op->Src->getRegion()->rank());
    }
    return Rank;
  }

  void emitNest(const LoopNest &Nest) {
    for (const auto &[Acc, Init] : Nest.ScalarInits) {
      std::string InitText;
      if (std::isinf(Init))
        InitText = Init > 0 ? "INFINITY" : "-INFINITY";
      else
        InitText = formatString("%.17g", Init);
      OS << "  *S_" << Acc->getName() << " = " << InitText << ";\n";
    }

    std::string Indent = "  ";
    for (unsigned L = 0; L < Nest.LSV.rank(); ++L) {
      unsigned Dim = Nest.LSV.dimOf(L);
      long long Lo = Nest.R->lo(Dim), Hi = Nest.R->hi(Dim);
      if (Nest.LSV.dirOf(L) > 0)
        OS << Indent
           << formatString("for (i%u = %lld; i%u <= %lld; ++i%u)", Dim + 1,
                           Lo, Dim + 1, Hi, Dim + 1)
           << '\n';
      else
        OS << Indent
           << formatString("for (i%u = %lld; i%u >= %lld; --i%u)", Dim + 1,
                           Hi, Dim + 1, Lo, Dim + 1)
           << '\n';
      Indent += "  ";
    }
    OS << Indent << "{\n";
    for (const ScalarStmt &S : Nest.Body) {
      OS << Indent << "  ";
      std::string RHS = renderExpr(S.RHS.get());
      if (S.LHS.isScalar()) {
        bool IsProgramScalar =
            P.findSymbol(S.LHS.Scalar->getName()) == S.LHS.Scalar;
        std::string Name = IsProgramScalar
                               ? "(*S_" + S.LHS.Scalar->getName() + ")"
                               : S.LHS.Scalar->getName();
        if (!S.Accumulate) {
          OS << Name << " = " << RHS << ";\n";
        } else if (S.SR->Plus == semiring::OpKind::Add) {
          OS << Name << " += " << RHS << ";\n";
        } else {
          // Bind the element value once, then fold with the semiring's ⊕
          // spelled exactly as semiring::applyOp computes it, so native
          // kernels are bit-identical to the interpreter (fmin/fmax have
          // different NaN and signed-zero behavior than the ternary).
          std::string Fold;
          switch (S.SR->Plus) {
          case semiring::OpKind::Min:
            Fold = "(alf_v < " + Name + " ? alf_v : " + Name + ")";
            break;
          case semiring::OpKind::Max:
            Fold = "(alf_v > " + Name + " ? alf_v : " + Name + ")";
            break;
          case semiring::OpKind::Or:
            Fold = "((" + Name + " != 0.0 || alf_v != 0.0) ? 1.0 : 0.0)";
            break;
          default:
            Fold = Name + " + alf_v";
            break;
          }
          OS << "{ const double alf_v = " << RHS << "; " << Name << " = "
             << Fold << "; }\n";
        }
        continue;
      }
      OS << elemRef(S.LHS.Array, S.LHS.Off) << " = " << RHS << ";\n";
    }
    OS << Indent << "}\n";
  }

  /// Emits the deterministic opaque-statement semantics (matching
  /// exec::Interpreter's execOpaque).
  void emitOpaque(const OpaqueStmt &O) {
    OS << "  /* opaque: " << O.getDesc() << " */\n";
    const Region *R = O.getRegion();
    if (!R) {
      OS << "  {\n    double v = 1.0;\n";
      for (const ScalarSymbol *S : O.scalarReads())
        OS << "    v += 0.5 * (*S_" << S->getName() << ");\n";
      unsigned Ordinal = 0;
      for (const ScalarSymbol *S : O.scalarWrites())
        OS << "    *S_" << S->getName() << " = v + " << Ordinal++ << ";\n";
      OS << "  }\n";
      return;
    }

    OS << "  {\n    double base = 1.0;\n";
    for (const ScalarSymbol *S : O.scalarReads())
      OS << "    base += 0.5 * (*S_" << S->getName() << ");\n";
    for (size_t I = 0; I < O.scalarWrites().size(); ++I)
      OS << "    double acc" << I << " = 0.0;\n";
    std::string Indent = "    ";
    for (unsigned D = 0; D < R->rank(); ++D) {
      OS << Indent
         << formatString("for (i%u = %lld; i%u <= %lld; ++i%u)", D + 1,
                         static_cast<long long>(R->lo(D)), D + 1,
                         static_cast<long long>(R->hi(D)), D + 1)
         << '\n';
      Indent += "  ";
    }
    OS << Indent << "{\n";
    OS << Indent << "  double v = base;\n";
    Offset Zero = Offset::zero(R->rank());
    for (const ArraySymbol *A : O.arrayReads())
      if (Layouts.count(A->getId()) && A->getRank() == R->rank())
        OS << Indent << "  v += 0.5 * " << elemRef(A, Zero) << ";\n";
    unsigned Ordinal = 0;
    for (const ArraySymbol *A : O.arrayWrites())
      if (Layouts.count(A->getId()) && A->getRank() == R->rank())
        OS << Indent << "  " << elemRef(A, Zero) << " = v + " << Ordinal++
           << ";\n";
    for (size_t I = 0; I < O.scalarWrites().size(); ++I)
      OS << Indent << "  acc" << I << " += v;\n";
    OS << Indent << "}\n";
    double Scale = 1.0 / static_cast<double>(R->size());
    for (size_t I = 0; I < O.scalarWrites().size(); ++I)
      OS << formatString("    *S_%s = acc%zu * %.17g;\n",
                         O.scalarWrites()[I]->getName().c_str(), I, Scale);
    OS << "  }\n";
  }

  void emitKernel(const std::string &FnName) {
    emitSignature(FnName);
    OS << " {\n";
    unsigned Rank = maxRank();
    if (Rank > 0) {
      OS << "  long ";
      for (unsigned D = 0; D < Rank; ++D)
        OS << (D ? ", " : "") << "i" << D + 1;
      OS << ";\n";
    }
    // Locals for contracted arrays' scalars.
    for (const ArraySymbol *A : P.arrays())
      if (const ScalarSymbol *S = LP.scalarFor(A))
        OS << "  double " << S->getName() << " = 0.0;\n";

    for (const auto &NodePtr : LP.nodes()) {
      if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
        emitNest(*Nest);
        continue;
      }
      if (const auto *C = dyn_cast<CommOp>(NodePtr.get())) {
        OS << "  /* halo exchange " << C->Array->getName() << C->Dir.str()
           << " (single address space: no-op) */\n";
        continue;
      }
      emitOpaque(*cast<OpaqueOp>(NodePtr.get())->Src);
    }
    OS << "}\n";
  }

  /// Emits the fixed-ABI wrapper the native JIT backend dlopens:
  /// `void <FnName>_entry(double **arrays, double *scalars)`, unpacking
  /// the caller-owned buffers into the kernel's positional parameters
  /// (arrays in allocatedArrays() order, scalars in programScalars()
  /// order — the order CModule reports).
  void emitEntry(const std::string &FnName) {
    OS << "\nvoid " << FnName << "_entry(double **arrays, double *scalars)"
       << " {\n";
    OS << "  " << FnName << "(";
    bool First = true;
    size_t ArrayIdx = 0;
    for (const ArraySymbol *A : allocatedArrays()) {
      (void)A;
      OS << (First ? "" : ", ") << "arrays[" << ArrayIdx++ << "]";
      First = false;
    }
    size_t ScalarIdx = 0;
    for (const ScalarSymbol *S : programScalars()) {
      (void)S;
      OS << (First ? "" : ", ") << "&scalars[" << ScalarIdx++ << "]";
      First = false;
    }
    OS << ");\n";
    OS << "}\n";
  }

  void emitHarness(const std::string &FnName, uint64_t Seed) {
    // SplitMix64 + FNV-1a, bit-identical to support/Random.h and
    // exec::hashName.
    OS << R"(
static uint64_t alf_rng_state;
static uint64_t alf_rng_next(void) {
  alf_rng_state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = alf_rng_state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
static double alf_rng_double(void) {
  return (double)(alf_rng_next() >> 11) * 0x1.0p-53;
}
static uint64_t alf_hash(const char *s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s; ++s) { h ^= (unsigned char)*s; h *= 0x100000001b3ULL; }
  return h;
}
)";
    OS << "\nint main(void) {\n";
    OS << formatString("  const uint64_t seed = %lluULL;\n",
                       static_cast<unsigned long long>(Seed));
    OS << "  long i;\n";
    for (const ArraySymbol *A : allocatedArrays()) {
      const Layout &L = layoutOf(A);
      OS << formatString("  double *A_%s = malloc(%lld * sizeof(double));\n",
                         A->getName().c_str(),
                         static_cast<long long>(L.size()));
      if (A->isLiveIn()) {
        OS << formatString("  alf_rng_state = seed ^ alf_hash(\"%s\");\n",
                           A->getName().c_str());
        OS << formatString("  for (i = 0; i < %lld; ++i) A_%s[i] = -1.0 + "
                           "2.0 * alf_rng_double();\n",
                           static_cast<long long>(L.size()),
                           A->getName().c_str());
      } else {
        OS << formatString(
            "  for (i = 0; i < %lld; ++i) A_%s[i] = 0.0;\n",
            static_cast<long long>(L.size()), A->getName().c_str());
      }
    }
    for (const ScalarSymbol *S : programScalars()) {
      OS << formatString("  alf_rng_state = seed ^ alf_hash(\"%s\");\n",
                         S->getName().c_str());
      OS << formatString("  double v_%s = 0.5 + alf_rng_double();\n",
                         S->getName().c_str());
    }

    OS << "  " << FnName << "(";
    bool First = true;
    for (const ArraySymbol *A : allocatedArrays()) {
      OS << (First ? "" : ", ") << "A_" << A->getName();
      First = false;
    }
    for (const ScalarSymbol *S : programScalars()) {
      OS << (First ? "" : ", ") << "&v_" << S->getName();
      First = false;
    }
    OS << ");\n";

    // Checksums: plain linear sums of live-out arrays, then scalars.
    for (const ArraySymbol *A : allocatedArrays()) {
      if (!A->isLiveOut())
        continue;
      const Layout &L = layoutOf(A);
      OS << formatString("  { double sum = 0.0; for (i = 0; i < %lld; ++i) "
                         "sum += A_%s[i]; printf(\"%s %%.17g\\n\", sum); }\n",
                         static_cast<long long>(L.size()),
                         A->getName().c_str(), A->getName().c_str());
    }
    for (const ScalarSymbol *S : programScalars())
      OS << formatString("  printf(\"%s %%.17g\\n\", v_%s);\n",
                         S->getName().c_str(), S->getName().c_str());
    for (const ArraySymbol *A : allocatedArrays())
      OS << "  free(A_" << A->getName() << ");\n";
    OS << "  return 0;\n}\n";
  }

  std::string take() { return OS.str(); }
};

} // namespace

CEmitResult scalarize::emitCChecked(const LoopProgram &LP,
                                    const std::string &FnName) {
  CEmitResult Result;
  Emitter E(LP);
  Result.Error = E.validate();
  if (!Result.ok())
    return Result;
  E.emitPrelude();
  E.emitKernel(FnName);
  Result.Source = E.take();
  return Result;
}

CEmitResult scalarize::emitCWithHarnessChecked(const LoopProgram &LP,
                                               const std::string &FnName,
                                               uint64_t Seed) {
  CEmitResult Result;
  Emitter E(LP);
  Result.Error = E.validate();
  if (!Result.ok())
    return Result;
  E.emitPrelude();
  E.emitKernel(FnName);
  E.emitHarness(FnName, Seed);
  Result.Source = E.take();
  return Result;
}

CModule scalarize::emitCModule(const LoopProgram &LP,
                               const std::string &FnName) {
  CModule Module;
  Emitter E(LP);
  Module.Error = E.validate();
  if (!Module.ok())
    return Module;
  E.emitPrelude();
  E.emitKernel(FnName);
  E.emitEntry(FnName);
  Module.Source = E.take();
  Module.EntryName = FnName + "_entry";
  Module.Arrays = E.allocatedArrays();
  Module.Scalars = E.programScalars();
  return Module;
}

std::string scalarize::emitC(const LoopProgram &LP, const std::string &FnName) {
  CEmitResult Result = emitCChecked(LP, FnName);
  if (!Result.ok())
    reportFatalError(Result.Error.c_str());
  return std::move(Result.Source);
}

std::string scalarize::emitCWithHarness(const LoopProgram &LP,
                                        const std::string &FnName,
                                        uint64_t Seed) {
  CEmitResult Result = emitCWithHarnessChecked(LP, FnName, Seed);
  if (!Result.ok())
    reportFatalError(Result.Error.c_str());
  return std::move(Result.Source);
}

//===- scalarize/Scalarize.cpp - Scalarization ------------------------------===//

#include "scalarize/Scalarize.h"

#include "analysis/Footprint.h"
#include "support/ErrorHandling.h"
#include "support/Statistic.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::scalarize;
using namespace alf::xform;

namespace {

/// Kahn's algorithm with a min-heap: deterministic topological order that
/// follows program order whenever dependences allow. Returns an order
/// shorter than \p Nodes when the edges form a cycle; callers decide
/// whether that is recoverable.
std::vector<unsigned>
topoSort(const std::vector<unsigned> &Nodes,
         const std::vector<std::pair<unsigned, unsigned>> &Edges) {
  std::map<unsigned, unsigned> InDegree;
  std::map<unsigned, std::vector<unsigned>> Succ;
  for (unsigned N : Nodes)
    InDegree[N] = 0;
  for (auto [S, T] : Edges) {
    Succ[S].push_back(T);
    ++InDegree[T];
  }
  std::priority_queue<unsigned, std::vector<unsigned>, std::greater<unsigned>>
      Ready;
  for (unsigned N : Nodes)
    if (InDegree[N] == 0)
      Ready.push(N);
  std::vector<unsigned> Order;
  Order.reserve(Nodes.size());
  while (!Ready.empty()) {
    unsigned N = Ready.top();
    Ready.pop();
    Order.push_back(N);
    for (unsigned T : Succ[N])
      if (--InDegree[T] == 0)
        Ready.push(T);
  }
  return Order;
}

ScalarizeCorruption TestCorruption = ScalarizeCorruption::None;
bool TestCorruptionApplied = false;

/// Replaces \p Nest's region with a copy whose dimension-0 upper bound is
/// shifted by \p Delta, parked in the LoopProgram's owned-region store.
void shiftNestBound(LoopProgram &LP, LoopNest &Nest, int64_t Delta) {
  std::vector<int64_t> Lo, Hi;
  for (unsigned D = 0; D < Nest.R->rank(); ++D) {
    Lo.push_back(Nest.R->lo(D));
    Hi.push_back(Nest.R->hi(D));
  }
  Hi[0] += Delta;
  Nest.R = LP.ownRegion(Region(std::move(Lo), std::move(Hi)));
  TestCorruptionApplied = true;
}

/// Applies the installed test corruption to \p LP. Each mode targets the
/// first site where the plant provably produces the bug it names, so the
/// injected-bug tests are deterministic rather than seed-dependent.
void applyCorruptionForTest(LoopProgram &LP) {
  TestCorruptionApplied = false;
  if (TestCorruption == ScalarizeCorruption::None)
    return;

  if (TestCorruption == ScalarizeCorruption::SkipAccumulatorInit) {
    for (auto &Node : LP.nodesMutable())
      if (auto *Nest = dyn_cast<LoopNest>(Node.get()))
        if (!Nest->ScalarInits.empty()) {
          Nest->ScalarInits.erase(Nest->ScalarInits.begin());
          TestCorruptionApplied = true;
          return;
        }
    return;
  }

  analysis::FootprintInfo FI = analysis::FootprintInfo::compute(LP.source());

  if (TestCorruption == ScalarizeCorruption::OffByOneBound) {
    // Target an access that already touches its array's allocation edge
    // along dimension 0, so the grown bound escapes the footprint rather
    // than landing inside another reference's halo.
    for (auto &Node : LP.nodesMutable()) {
      auto *Nest = dyn_cast<LoopNest>(Node.get());
      if (!Nest || !Nest->R)
        continue;
      auto Escapes = [&](const ArraySymbol *A, const Offset &Off) {
        if (LP.partialPlanFor(A) || Off.rank() != Nest->R->rank())
          return false;
        const Region *Alloc = FI.boundsFor(A);
        return Alloc && Alloc->rank() == Nest->R->rank() &&
               Nest->R->hi(0) + 1 + Off[0] > Alloc->hi(0);
      };
      for (const ScalarStmt &SS : Nest->Body) {
        if (!SS.LHS.isScalar() && Escapes(SS.LHS.Array, SS.LHS.Off)) {
          shiftNestBound(LP, *Nest, 1);
          return;
        }
        for (const ArrayRefExpr *Ref : collectArrayRefs(SS.RHS.get()))
          if (Escapes(Ref->getSymbol(), Ref->getOffset())) {
            shiftNestBound(LP, *Nest, 1);
            return;
          }
      }
    }
    return;
  }

  // ShrunkenCopyOut: shrink a nest writing a live-out array, picking a
  // write no other (unshrunken) store still covers, so the truncation is
  // observable in the copy-out coverage.
  for (auto &Node : LP.nodesMutable()) {
    auto *Nest = dyn_cast<LoopNest>(Node.get());
    if (!Nest || !Nest->R || Nest->R->extent(0) < 2)
      continue;
    for (const ScalarStmt &SS : Nest->Body) {
      if (SS.LHS.isScalar())
        continue;
      const ArraySymbol *A = SS.LHS.Array;
      if (!A->isLiveOut() || LP.partialPlanFor(A) ||
          SS.LHS.Off.rank() != Nest->R->rank())
        continue;
      // Mirror the checker's copy-out exclusion: an opaque writer
      // re-establishes whatever the source wrote, so shrinking this
      // nest would not actually truncate the array's copy-out.
      bool OpaqueWrite = false;
      for (const auto &Other : LP.nodes())
        if (const auto *Op = dyn_cast<OpaqueOp>(Other.get()))
          if (Op->Src && std::count(Op->Src->arrayWrites().begin(),
                                    Op->Src->arrayWrites().end(), A))
            OpaqueWrite = true;
      if (OpaqueWrite)
        continue;
      // The plane the shrink loses: dimension-0 index R.hi + Off[0].
      int64_t Lost = Nest->R->hi(0) + SS.LHS.Off[0];
      bool Recovered = false;
      for (const auto &Other : LP.nodes()) {
        const auto *ON = dyn_cast<LoopNest>(Other.get());
        if (!ON || !ON->R || ON->R->rank() != Nest->R->rank())
          continue;
        for (const ScalarStmt &OS : ON->Body) {
          if (OS.LHS.isScalar() || OS.LHS.Array != A)
            continue;
          if (&OS == &SS)
            continue;
          int64_t Hi0 = ON->R->hi(0) + OS.LHS.Off[0] -
                        (ON == Nest ? 1 : 0);
          if (Hi0 >= Lost)
            Recovered = true;
        }
      }
      if (!Recovered) {
        shiftNestBound(LP, *Nest, -1);
        return;
      }
    }
  }
}

} // namespace

void scalarize::setScalarizeCorruptionForTest(ScalarizeCorruption Mode) {
  TestCorruption = Mode;
}

bool scalarize::scalarizeCorruptionAppliedForTest() {
  return TestCorruptionApplied;
}

std::optional<lir::LoopProgram>
scalarize::scalarizeChecked(const ASDG &G, const StrategyResult &SR,
                            std::string *Error) {
  auto Fail = [Error](const std::string &Why) -> std::optional<LoopProgram> {
    if (Error)
      *Error = Why;
    return std::nullopt;
  };

  const Program &Prog = G.getProgram();
  const FusionPartition &P = SR.Partition;
  LoopProgram LP(Prog);

  // Pre-register every contracted array so reads and writes agree on the
  // replacement scalar regardless of emission order.
  {
    ALF_STATISTIC(NumArraysContracted, "contract",
                  "Arrays contracted to scalars");
    NumArraysContracted += SR.Contracted.size();
  }
  for (const ArraySymbol *A : SR.Contracted)
    LP.addContraction(A);

  // Inter-cluster topological order.
  std::vector<unsigned> Clusters = P.clusters();
  std::vector<unsigned> ClusterOrder = topoSort(Clusters, P.clusterEdges());
  if (ClusterOrder.size() != Clusters.size())
    return Fail("cycle among fusible clusters");

  for (unsigned Cluster : ClusterOrder) {
    std::vector<unsigned> Members = P.members(Cluster);

    // Non-normalized statements live in singleton clusters.
    if (Members.size() == 1) {
      const Stmt *S = Prog.getStmt(Members.front());
      if (const auto *CS = dyn_cast<CommStmt>(S)) {
        auto Node = std::make_unique<CommOp>();
        Node->Array = CS->getArray();
        Node->Dir = CS->getDir();
        Node->Phase = CS->getPhase();
        Node->PairId = CS->getPairId();
        Node->Src = CS;
        LP.addNode(std::move(Node));
        continue;
      }
      if (const auto *OS = dyn_cast<OpaqueStmt>(S)) {
        auto Node = std::make_unique<OpaqueOp>();
        Node->Src = OS;
        LP.addNode(std::move(Node));
        continue;
      }
    }

    // Intra-cluster topological order of the member statements.
    std::set<unsigned> InCluster(Members.begin(), Members.end());
    std::vector<std::pair<unsigned, unsigned>> IntraEdges;
    for (const DepEdge &E : G.edges())
      if (InCluster.count(E.Src) && InCluster.count(E.Tgt))
        IntraEdges.push_back({E.Src, E.Tgt});
    std::vector<unsigned> StmtOrder = topoSort(Members, IntraEdges);
    if (StmtOrder.size() != Members.size())
      return Fail("dependence cycle among the statements of one cluster");

    // Loop structure for the nest.
    auto Nest = std::make_unique<LoopNest>();
    Nest->ClusterId = Cluster;
    const Stmt *First = Prog.getStmt(Members.front());
    if (const auto *NS = dyn_cast<NormalizedStmt>(First))
      Nest->R = NS->getRegion();
    else
      Nest->R = cast<ReduceStmt>(First)->getRegion();
    auto UDVs = P.internalUDVs(std::set<unsigned>{Cluster});
    if (!UDVs)
      return Fail("unrepresentable dependence inside a fusible cluster");
    auto LSV = findLoopStructure(*UDVs, Nest->R->rank());
    if (!LSV)
      return Fail("no loop structure vector for a fusible cluster");
    Nest->LSV = *LSV;
    Nest->UDVs = *UDVs;

    // Emit the body, rewriting contracted arrays to scalars.
    auto RewriteContracted = [&LP](const ArrayRefExpr &Ref) -> ExprPtr {
      if (const ScalarSymbol *Scalar = LP.scalarFor(Ref.getSymbol()))
        return sref(Scalar);
      return nullptr;
    };
    for (unsigned StmtId : StmtOrder) {
      const Stmt *S = Prog.getStmt(StmtId);
      ScalarStmt SS;
      SS.SrcStmtId = StmtId;
      if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
        SS.LHS = Target::scalar(RS->getAccumulator());
        SS.RHS = cloneExprRewriting(RS->getBody(), RewriteContracted);
        SS.Accumulate = true;
        SS.SR = &RS->getSemiring();
        Nest->ScalarInits.push_back({RS->getAccumulator(),
                                     RS->getSemiring().PlusIdentity,
                                     &RS->getSemiring()});
        Nest->Body.push_back(std::move(SS));
        continue;
      }
      const auto *NS = cast<NormalizedStmt>(S);
      if (const ScalarSymbol *Scalar = LP.scalarFor(NS->getLHS()))
        SS.LHS = Target::scalar(Scalar);
      else
        SS.LHS = Target::elem(NS->getLHS(), NS->getLHSOffset());
      SS.RHS = cloneExprRewriting(NS->getRHS(), RewriteContracted);
      Nest->Body.push_back(std::move(SS));
    }
    {
      ALF_STATISTIC(NumLoopNests, "scalarize", "Loop nests emitted");
      ++NumLoopNests;
    }
    LP.addNode(std::move(Nest));
  }
  applyCorruptionForTest(LP);
  return LP;
}

lir::LoopProgram scalarize::scalarize(const ASDG &G, const StrategyResult &SR) {
  std::string Error;
  std::optional<LoopProgram> LP = scalarizeChecked(G, SR, &Error);
  if (!LP)
    reportFatalError(("scalarize: " + Error).c_str());
  return std::move(*LP);
}

lir::LoopProgram scalarize::scalarizeWithStrategy(const ASDG &G, Strategy S) {
  StrategyResult SR = applyStrategy(G, S);
  return scalarize(G, SR);
}

lir::LoopProgram
scalarize::scalarizeWithPartialContraction(const ASDG &G, Strategy S,
                                           const SequentialDims &Seq) {
  std::vector<PartialPlan> Plans;
  StrategyResult SR = applyStrategyWithPartialContraction(G, S, Seq, Plans);
  LoopProgram LP = scalarize(G, SR);
  for (PartialPlan &Plan : Plans)
    LP.addPartialPlan(std::move(Plan));
  return LP;
}

//===- scalarize/CEmitter.h - C code generation ----------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a compilable C99 translation unit from a scalarized LoopProgram —
/// the code an array-language compiler hands to the node compiler. Arrays
/// become flat row-major `double *` parameters laid out over their
/// footprint bounds; contracted arrays become locals; reductions become
/// accumulator loops; program scalars are passed by pointer (in/out).
///
/// `emitCWithHarness` additionally emits a `main` that allocates and
/// seeds every array exactly as the ALF interpreter does (same SplitMix64
/// streams keyed by array name), runs the kernel, and prints a checksum
/// per live-out array plus every scalar — so the emitted code can be
/// validated end-to-end against `exec::run` (see CEmitterTest).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SCALARIZE_CEMITTER_H
#define ALF_SCALARIZE_CEMITTER_H

#include "scalarize/LoopIR.h"
#include "support/Ulp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alf {
namespace scalarize {

/// Emission knobs. The default is the scalar backend (bit-identical to
/// the interpreter by construction). With `Vectorize` set, every loop
/// nest whose innermost FIND-LOOP-STRUCTURE dimension the legality check
/// can certify — provably stride-1 for all referenced arrays (via the
/// analysis/Intervals domain), increasing direction, no dependence
/// carried across lanes — is emitted as an explicit SIMD loop over GNU
/// vector-extension types: restrict-qualified array parameters, a main
/// loop stepping `VectorWidth` lanes, a peeled scalar remainder, and
/// ⊕-accumulators kept in vector lanes (seeded with the identity from
/// the nest's ScalarInits) and folded back in lane order at loop exit.
/// Nests that fail the check keep the exact scalar spelling.
///
/// Divergence contract: elementwise vector code applies the same guarded
/// scalar helpers per lane and is bit-identical; Compare/Bitwise ⊕ folds
/// (min/max/or — every Exact semiring) select operand bits and are also
/// bit-identical; only Arith ⊕ folds (float +) are reassociated by the
/// lane split, and CModule::Reassociated reports when that happened.
struct CEmitOptions {
  bool Vectorize = false;
  unsigned VectorWidth = 4; ///< doubles per vector register
};

/// Status-returning outcome of C emission: the translation unit, or the
/// reason the program cannot be emitted (Error nonempty). Callers that
/// can recover — the native JIT's interpreter fallback above all — use
/// the checked entry points; the legacy string-returning entry points
/// abort on the same conditions.
struct CEmitResult {
  std::string Source;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// A translation unit with a fixed-ABI entry point for dynamic loading,
/// plus the metadata a caller needs to marshal arguments:
///
///   void <FnName>_entry(double **arrays, double *scalars);
///
/// `arrays[i]` is the caller-owned row-major buffer of `Arrays[i]`
/// (footprint bounds, or the rolling-buffer bounds of a partially
/// contracted array — identical to exec::Storage's allocation).
/// `scalars[i]` is the in/out value of `Scalars[i]`.
struct CModule {
  std::string Source;
  std::string EntryName;
  std::vector<const ir::ArraySymbol *> Arrays;   ///< arrays[] order
  std::vector<const ir::ScalarSymbol *> Scalars; ///< scalars[] order
  std::string Error;

  // Vectorization outcome (CEmitOptions::Vectorize only; all zero/false
  // for scalar emission).
  unsigned NumVectorizedNests = 0;  ///< nests emitted as SIMD loops
  unsigned NumVectorFallbacks = 0;  ///< nests the legality check refused
  bool Reassociated = false; ///< a vectorized nest reordered a float + fold

  bool ok() const { return Error.empty(); }
};

/// Emits the kernel function \p FnName implementing \p LP. Aborts on
/// unsupported constructs; prefer emitCChecked where recovery matters.
std::string emitC(const lir::LoopProgram &LP, const std::string &FnName);

/// Emits the kernel plus a self-contained main() harness seeded with
/// \p Seed (matching exec::run's initialization).
std::string emitCWithHarness(const lir::LoopProgram &LP,
                             const std::string &FnName, uint64_t Seed);

/// Like emitC, but reports unsupported constructs as an error result
/// instead of aborting.
CEmitResult emitCChecked(const lir::LoopProgram &LP, const std::string &FnName);

/// Like emitCWithHarness, but status-returning; \p Opts selects the
/// scalar or vectorizing backend (the sanitizer oracle compiles the
/// vectorized harness with this).
CEmitResult emitCWithHarnessChecked(const lir::LoopProgram &LP,
                                    const std::string &FnName, uint64_t Seed,
                                    const CEmitOptions &Opts = CEmitOptions());

/// Emits the kernel plus the `<FnName>_entry` ABI wrapper for the native
/// JIT backend (exec/NativeJit). Status-returning: Error is set instead
/// of aborting when the program cannot be emitted.
CModule emitCModule(const lir::LoopProgram &LP, const std::string &FnName,
                    const CEmitOptions &Opts = CEmitOptions());

/// The declared tolerance a differential comparison of \p LP between the
/// scalar and vectorizing backends must use: ReassociatedFloat when the
/// program contains a reduction whose ⊕ lane-folds arithmetically (float
/// +, whose reassociation changes rounding), Exact otherwise — exact
/// semirings (min-plus, or-and, ...) and purely elementwise programs get
/// no ULP budget at all.
support::Tolerance simdToleranceFor(const lir::LoopProgram &LP);

/// Fault-injection modes for testing the vectorizer's legality check,
/// mirroring setScalarizeCorruptionForTest: each mode makes the next
/// vectorizing emission see one planted hazard.
enum class VectorizeFault {
  None,
  /// Every nest presents a synthetic dependence carried by its innermost
  /// loop — the cross-lane hazard SIMD execution would violate. The
  /// legality check must refuse every nest and fall back to the scalar
  /// spelling (counted in CModule::NumVectorFallbacks and the
  /// jit.vectorize statistics).
  CarriedInnermost,
};

/// Installs \p Mode for subsequent vectorizing emissions. Never called by
/// the pipeline; NativeJitTest plants the hazard and asserts the fallback
/// statistic moved. Scalar emission ignores the hook.
void setVectorizeFaultForTest(VectorizeFault Mode);

/// Whether the most recent vectorizing emission actually saw the planted
/// fault (i.e. it had at least one nest to refuse).
bool vectorizeFaultAppliedForTest();

} // namespace scalarize
} // namespace alf

#endif // ALF_SCALARIZE_CEMITTER_H

//===- scalarize/CEmitter.h - C code generation ----------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a compilable C99 translation unit from a scalarized LoopProgram —
/// the code an array-language compiler hands to the node compiler. Arrays
/// become flat row-major `double *` parameters laid out over their
/// footprint bounds; contracted arrays become locals; reductions become
/// accumulator loops; program scalars are passed by pointer (in/out).
///
/// `emitCWithHarness` additionally emits a `main` that allocates and
/// seeds every array exactly as the ALF interpreter does (same SplitMix64
/// streams keyed by array name), runs the kernel, and prints a checksum
/// per live-out array plus every scalar — so the emitted code can be
/// validated end-to-end against `exec::run` (see CEmitterTest).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SCALARIZE_CEMITTER_H
#define ALF_SCALARIZE_CEMITTER_H

#include "scalarize/LoopIR.h"

#include <cstdint>
#include <string>

namespace alf {
namespace scalarize {

/// Emits the kernel function \p FnName implementing \p LP.
std::string emitC(const lir::LoopProgram &LP, const std::string &FnName);

/// Emits the kernel plus a self-contained main() harness seeded with
/// \p Seed (matching exec::run's initialization).
std::string emitCWithHarness(const lir::LoopProgram &LP,
                             const std::string &FnName, uint64_t Seed);

} // namespace scalarize
} // namespace alf

#endif // ALF_SCALARIZE_CEMITTER_H

//===- scalarize/CEmitter.h - C code generation ----------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a compilable C99 translation unit from a scalarized LoopProgram —
/// the code an array-language compiler hands to the node compiler. Arrays
/// become flat row-major `double *` parameters laid out over their
/// footprint bounds; contracted arrays become locals; reductions become
/// accumulator loops; program scalars are passed by pointer (in/out).
///
/// `emitCWithHarness` additionally emits a `main` that allocates and
/// seeds every array exactly as the ALF interpreter does (same SplitMix64
/// streams keyed by array name), runs the kernel, and prints a checksum
/// per live-out array plus every scalar — so the emitted code can be
/// validated end-to-end against `exec::run` (see CEmitterTest).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SCALARIZE_CEMITTER_H
#define ALF_SCALARIZE_CEMITTER_H

#include "scalarize/LoopIR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alf {
namespace scalarize {

/// Status-returning outcome of C emission: the translation unit, or the
/// reason the program cannot be emitted (Error nonempty). Callers that
/// can recover — the native JIT's interpreter fallback above all — use
/// the checked entry points; the legacy string-returning entry points
/// abort on the same conditions.
struct CEmitResult {
  std::string Source;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// A translation unit with a fixed-ABI entry point for dynamic loading,
/// plus the metadata a caller needs to marshal arguments:
///
///   void <FnName>_entry(double **arrays, double *scalars);
///
/// `arrays[i]` is the caller-owned row-major buffer of `Arrays[i]`
/// (footprint bounds, or the rolling-buffer bounds of a partially
/// contracted array — identical to exec::Storage's allocation).
/// `scalars[i]` is the in/out value of `Scalars[i]`.
struct CModule {
  std::string Source;
  std::string EntryName;
  std::vector<const ir::ArraySymbol *> Arrays;   ///< arrays[] order
  std::vector<const ir::ScalarSymbol *> Scalars; ///< scalars[] order
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Emits the kernel function \p FnName implementing \p LP. Aborts on
/// unsupported constructs; prefer emitCChecked where recovery matters.
std::string emitC(const lir::LoopProgram &LP, const std::string &FnName);

/// Emits the kernel plus a self-contained main() harness seeded with
/// \p Seed (matching exec::run's initialization).
std::string emitCWithHarness(const lir::LoopProgram &LP,
                             const std::string &FnName, uint64_t Seed);

/// Like emitC, but reports unsupported constructs as an error result
/// instead of aborting.
CEmitResult emitCChecked(const lir::LoopProgram &LP, const std::string &FnName);

/// Like emitCWithHarness, but status-returning.
CEmitResult emitCWithHarnessChecked(const lir::LoopProgram &LP,
                                    const std::string &FnName, uint64_t Seed);

/// Emits the kernel plus the `<FnName>_entry` ABI wrapper for the native
/// JIT backend (exec/NativeJit). Status-returning: Error is set instead
/// of aborting when the program cannot be emitted.
CModule emitCModule(const lir::LoopProgram &LP, const std::string &FnName);

} // namespace scalarize
} // namespace alf

#endif // ALF_SCALARIZE_CEMITTER_H

//===- scalarize/LoopIR.h - Scalarized loop nest IR ------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target of scalarization: a sequence of loop nests (one per fusible
/// cluster), communication operations and opaque operations. Each loop
/// nest carries the loop structure vector chosen by FIND-LOOP-STRUCTURE
/// and a body of element-wise scalar statements in dependence order.
/// Contracted arrays appear as scalar variables owned by the LoopProgram.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SCALARIZE_LOOPIR_H
#define ALF_SCALARIZE_LOOPIR_H

#include "ir/Program.h"
#include "xform/LoopStructure.h"
#include "xform/PartialContraction.h"

#include <map>
#include <memory>
#include <ostream>
#include <vector>

namespace alf {
namespace lir {

/// The left-hand side of a scalarized statement: either an array element
/// at a constant offset from the loop indices, or a scalar (a contracted
/// array or a plain scalar variable).
struct Target {
  const ir::ArraySymbol *Array = nullptr; // null => scalar target
  ir::Offset Off;
  const ir::ScalarSymbol *Scalar = nullptr;

  bool isScalar() const { return Scalar != nullptr; }

  static Target elem(const ir::ArraySymbol *A, ir::Offset O) {
    Target T;
    T.Array = A;
    T.Off = std::move(O);
    return T;
  }
  static Target scalar(const ir::ScalarSymbol *S) {
    Target T;
    T.Scalar = S;
    return T;
  }
};

/// One element-wise assignment inside a loop nest body. The right-hand
/// side reuses the ir::Expr tree; ArrayRefExpr means "element at loop
/// indices + offset", ScalarRefExpr may name a contracted array's scalar.
/// When `Accumulate` is set the statement folds the value into a scalar
/// accumulator with the ⊕ of `SR` (`LHS = LHS ⊕ RHS`) instead of
/// assigning; the matching ScalarInit seeds the accumulator with SR's 0̄.
struct ScalarStmt {
  Target LHS;
  ir::ExprPtr RHS;
  unsigned SrcStmtId = 0; ///< Provenance: originating array statement.
  bool Accumulate = false;
  const semiring::Semiring *SR = &semiring::plusTimes();
};

/// Base class for the nodes of a LoopProgram.
class LNode {
public:
  enum class LNodeKind { Loop, Comm, Opaque };

private:
  LNodeKind Kind;

protected:
  explicit LNode(LNodeKind Kind) : Kind(Kind) {}

public:
  virtual ~LNode();
  LNodeKind getKind() const { return Kind; }
};

/// Initialization of one reduction accumulator before its nest runs: the
/// ⊕-identity value plus the semiring whose ⊕ will fold into it. The
/// semiring travels with the init so lane-splitting backends (the
/// vectorizing C emitter) know how to seed every vector lane with the
/// identity and fold the lanes back together at loop exit without
/// re-deriving the algebra from the body.
struct ScalarInit {
  const ir::ScalarSymbol *Acc = nullptr;
  double Init = 0.0; ///< 0̄ of SR; splat across all lanes when vectorized
  const semiring::Semiring *SR = &semiring::plusTimes();
};

/// A loop nest implementing one fusible cluster. Accumulators of any
/// reductions in the body are initialized to their identity before the
/// nest runs (ScalarInits).
class LoopNest : public LNode {
public:
  xform::LoopStructureVector LSV;
  const ir::Region *R = nullptr;
  std::vector<ScalarStmt> Body;
  std::vector<ScalarInit> ScalarInits;
  unsigned ClusterId = 0;

  /// The unconstrained distance vectors of all dependences internal to
  /// the cluster (the inputs FIND-LOOP-STRUCTURE ran on). Retained so
  /// downstream consumers — parallelization legality above all — can
  /// reason about which loops carry dependences without re-deriving the
  /// fusion partition.
  std::vector<ir::Offset> UDVs;

  LoopNest() : LNode(LNodeKind::Loop) {}

  static bool classof(const LNode *N) {
    return N->getKind() == LNodeKind::Loop;
  }
};

/// A halo-exchange communication operation. `Dir` has exactly one nonzero
/// component: sign gives the neighbour direction along the distributed
/// dimension, magnitude the halo width in elements. Created either by
/// scalarizing an array-level CommStmt (favor-communication policy) or by
/// loop-level insertion after fusion (favor-fusion policy).
class CommOp : public LNode {
public:
  const ir::ArraySymbol *Array = nullptr;
  ir::Offset Dir;
  ir::CommStmt::CommPhase Phase = ir::CommStmt::CommPhase::Whole;
  int PairId = -1;
  const ir::CommStmt *Src = nullptr; ///< Provenance when array-level.

  CommOp() : LNode(LNodeKind::Comm) {}

  static bool classof(const LNode *N) {
    return N->getKind() == LNodeKind::Comm;
  }
};

/// An opaque operation carried over from the array program.
class OpaqueOp : public LNode {
public:
  const ir::OpaqueStmt *Src = nullptr;

  OpaqueOp() : LNode(LNodeKind::Opaque) {}

  static bool classof(const LNode *N) {
    return N->getKind() == LNodeKind::Opaque;
  }
};

/// A fully scalarized program: the loop nests of all clusters in
/// topological order plus the scalars created by contraction.
class LoopProgram {
  const ir::Program *Src = nullptr;
  std::vector<std::unique_ptr<LNode>> Nodes;
  std::vector<std::unique_ptr<ir::ScalarSymbol>> OwnedScalars;
  std::vector<std::unique_ptr<ir::Region>> OwnedRegions;
  std::map<const ir::ArraySymbol *, const ir::ScalarSymbol *> ContractionMap;
  std::map<const ir::ArraySymbol *, xform::PartialPlan> PartialMap;

public:
  explicit LoopProgram(const ir::Program &SrcProg) : Src(&SrcProg) {}

  const ir::Program &source() const { return *Src; }

  void addNode(std::unique_ptr<LNode> N) { Nodes.push_back(std::move(N)); }

  /// Inserts \p N before position \p Pos (communication insertion).
  void insertNode(size_t Pos, std::unique_ptr<LNode> N) {
    Nodes.insert(Nodes.begin() + static_cast<ptrdiff_t>(Pos), std::move(N));
  }

  const std::vector<std::unique_ptr<LNode>> &nodes() const { return Nodes; }

  /// Mutable access for post-scalarization passes (communication
  /// insertion, ablation experiments that override loop structures).
  std::vector<std::unique_ptr<LNode>> &nodesMutable() { return Nodes; }

  /// Registers \p A as contracted and returns its replacement scalar.
  const ir::ScalarSymbol *addContraction(const ir::ArraySymbol *A);

  /// Takes ownership of \p R and returns a stable pointer with the
  /// LoopProgram's lifetime. Source-program regions are interned by the
  /// Program; nests whose region is synthesized after scalarization
  /// (fault-injection hooks, ablation experiments) park theirs here.
  const ir::Region *ownRegion(ir::Region R) {
    OwnedRegions.push_back(std::make_unique<ir::Region>(std::move(R)));
    return OwnedRegions.back().get();
  }

  /// The scalar replacing \p A, or null when A was not contracted.
  const ir::ScalarSymbol *scalarFor(const ir::ArraySymbol *A) const {
    auto It = ContractionMap.find(A);
    return It == ContractionMap.end() ? nullptr : It->second;
  }

  /// True if array \p A was contracted away.
  bool isContracted(const ir::ArraySymbol *A) const {
    return ContractionMap.count(A) != 0;
  }

  /// Registers a rolling-buffer plan for a partially contracted array
  /// (the paper's lower-dimensional contraction extension).
  void addPartialPlan(xform::PartialPlan Plan) {
    PartialMap.emplace(Plan.Array, std::move(Plan));
  }

  /// The rolling-buffer plan for \p A, or null when A has full storage.
  const xform::PartialPlan *partialPlanFor(const ir::ArraySymbol *A) const {
    auto It = PartialMap.find(A);
    return It == PartialMap.end() ? nullptr : &It->second;
  }

  const std::map<const ir::ArraySymbol *, xform::PartialPlan> &
  partialPlans() const {
    return PartialMap;
  }

  /// Arrays that still require storage (not contracted).
  std::vector<const ir::ArraySymbol *> allocatedArrays() const;

  /// Writes C-like loop nests.
  void print(std::ostream &OS) const;

  /// Returns print() output as a string.
  std::string str() const;
};

} // namespace lir
} // namespace alf

#endif // ALF_SCALARIZE_LOOPIR_H

//===- verify/Verify.cpp - Levels, findings, reports ----------------------===//

#include "verify/Verify.h"

#include <cstdlib>

using namespace alf;
using namespace alf::verify;

const char *verify::getVerifyLevelName(VerifyLevel L) {
  switch (L) {
  case VerifyLevel::Off:
    return "off";
  case VerifyLevel::Structural:
    return "structural";
  case VerifyLevel::Full:
    return "full";
  case VerifyLevel::Safety:
    return "safety";
  }
  return "off";
}

std::optional<VerifyLevel> verify::verifyLevelNamed(const std::string &Name) {
  for (VerifyLevel L : {VerifyLevel::Off, VerifyLevel::Structural,
                        VerifyLevel::Full, VerifyLevel::Safety})
    if (Name == getVerifyLevelName(L))
      return L;
  return std::nullopt;
}

VerifyLevel verify::defaultVerifyLevel() {
  if (const char *Env = std::getenv("ALF_VERIFY"))
    if (std::optional<VerifyLevel> L = verifyLevelNamed(Env))
      return *L;
  return VerifyLevel::Structural;
}

std::string VerifyFinding::str() const {
  return "[" + Pass + "] " + Message;
}

void VerifyReport::take(VerifyReport Other) {
  for (VerifyFinding &F : Other.Findings)
    Findings.push_back(std::move(F));
}

std::string VerifyReport::str() const {
  std::string Out;
  for (const VerifyFinding &F : Findings) {
    if (!Out.empty())
      Out += '\n';
    Out += F.str();
  }
  return Out;
}

//===- verify/Verify.h - Translation validation passes ---------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent static re-checking of the pipeline's legality decisions, in
/// the translation-validation spirit: each pass re-derives the facts a
/// phase relied on from primary sources and reports any divergence as a
/// finding instead of trusting the phase. The passes, in pipeline order:
///
///  1. verifyStructure    — the IR is in normal form (regions non-empty
///     and rectangular, offsets consistent with declared ranks) and the
///     ASDG is structurally sound (edges respect program order, hence
///     acyclic; every labeled UDV is re-derivable as some source access
///     offset minus some target access offset of the right kind).
///  2. verifyDependences  — a from-scratch dependence oracle recomputes
///     every flow/anti/output dependence of the program and diffs the
///     result against the ASDG's edges; a missing or spurious edge or
///     label is a hard error.
///  3. verifyStrategy     — re-proves each fusion cluster of a
///     StrategyResult against Definition 5 and each contracted array
///     against Definition 6, from the oracle's dependences rather than
///     the graph the strategy consumed.
///  4. verifyParallelSafety — a UDV-based static race detector: certifies,
///     from the scalarized bodies themselves, that every loop nest the
///     ParallelExecutor will run in parallel has no cross-iteration
///     conflict on the partitioned loop.
///  5. verifySafety       — a memory-safety abstract interpreter over the
///     scalarized loop nests: symbolic interval bounds proofs for every
///     load and store, a use-before-definition dataflow over temporaries
///     and contracted accumulators, and a cross-check that distinct
///     clusters' write footprints do not overlap unordered by the ASDG.
///
/// The frontend lint (`zplc --lint`) lives in verify/Lint.h.
///
/// Passes never abort: they return a VerifyReport and leave the policy
/// (abort, exit nonzero, collect) to the caller — driver::Pipeline
/// installs the policy via PipelineOptions::OnVerifyError.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_VERIFY_VERIFY_H
#define ALF_VERIFY_VERIFY_H

#include "analysis/ASDG.h"
#include "exec/ParallelExecutor.h"
#include "ir/Program.h"
#include "scalarize/LoopIR.h"
#include "xform/Strategy.h"

#include <optional>
#include <string>
#include <vector>

namespace alf {
namespace verify {

/// How much re-checking the pipeline performs.
///
///  * Off        — trust every phase (measurement runs).
///  * Structural — pass 1 after each ASDG build: cheap, O(edges).
///  * Full       — passes 1-3 after analysis and strategy selection, and
///    the race detector before every parallel execution.
///  * Safety     — everything Full runs, plus the memory-safety checker
///    (pass 5) over every scalarized program before it can execute.
enum class VerifyLevel { Off, Structural, Full, Safety };

/// Printable name ("off", "structural", "full", "safety").
const char *getVerifyLevelName(VerifyLevel L);

/// Looks up a level by its printable name; nullopt when unknown.
std::optional<VerifyLevel> verifyLevelNamed(const std::string &Name);

/// The level pipelines start from when the caller does not choose one:
/// the ALF_VERIFY environment variable when set to a valid level name,
/// otherwise VerifyLevel::Structural. ctest exports ALF_VERIFY=full so
/// every test-suite compilation runs fully certified.
VerifyLevel defaultVerifyLevel();

/// One verification failure: which pass rejected, and a one-line message.
struct VerifyFinding {
  std::string Pass;    ///< "structure", "dependence-oracle", ...
  std::string Message; ///< one line, no trailing newline

  /// Renders as "[pass] message".
  std::string str() const;
};

/// The outcome of one or more passes; empty means certified.
struct VerifyReport {
  std::vector<VerifyFinding> Findings;

  bool ok() const { return Findings.empty(); }

  void add(std::string Pass, std::string Message) {
    Findings.push_back(VerifyFinding{std::move(Pass), std::move(Message)});
  }

  /// Moves \p Other's findings onto the end of this report.
  void take(VerifyReport Other);

  /// All findings, one per line.
  std::string str() const;
};

/// Pass 1: structural validation of the program (and of \p G when
/// non-null). See the file comment for the exact properties checked.
VerifyReport verifyStructure(const ir::Program &P,
                             const analysis::ASDG *G = nullptr);

/// Pass 2: re-derives the full dependence set of G's program from scratch
/// and reports every edge or label present in exactly one of the two.
VerifyReport verifyDependences(const analysis::ASDG &G);

/// Pass 3: re-proves \p SR's fusion partition (Definition 5) and
/// contraction set (Definition 6) against dependences the oracle derives
/// from the program itself.
VerifyReport verifyStrategy(const analysis::ASDG &G,
                            const xform::StrategyResult &SR);

/// Race detector: proves, for every nest \p Sched runs in parallel, that
/// no two iterations of the parallel loop touch the same array element
/// with at least one write, that no reduction accumulates in parallel,
/// and that no rolling buffer wraps along the parallel dimension. The
/// distances are re-derived from the scalarized bodies, not taken from
/// the nests' recorded UDVs.
VerifyReport verifyParallelSafety(const lir::LoopProgram &LP,
                                  const exec::ParallelSchedule &Sched);

/// Pass 5: memory-safety proof over the scalarized form. Three sub-passes,
/// each reported under its own name so callers can distinguish safety
/// findings from legality findings:
///
///  * "safety-bounds"  — for every load and store of every loop nest, the
///    accessed interval (nest region + reference offset, with
///    partial-contraction wrapping applied) is proved to lie inside the
///    array's allocated extents, re-derived from the source program's
///    footprint. The proof is symbolic in the region bounds wherever
///    possible, so it holds for every instantiation of the extents.
///  * "safety-init"    — a use-before-definition dataflow: every read of a
///    contracted scalar is dominated by a write in body order (the
///    ⊕-identity accumulator init from the semiring table counts), every
///    accumulation has its init, and no nest reads an array that is
///    neither live-in nor written earlier in nest order; each live-out
///    array's writes must still cover the source program's write
///    footprint (a truncated copy-out region fails here).
///  * "safety-overlap" — when \p G is supplied, two nests from distinct
///    clusters whose write footprints on the same array overlap must be
///    ordered by an ASDG dependence path between their clusters.
VerifyReport verifySafety(const lir::LoopProgram &LP,
                          const analysis::ASDG *G = nullptr);

} // namespace verify
} // namespace alf

#endif // ALF_VERIFY_VERIFY_H

//===- verify/DependenceOracle.cpp - From-scratch dependence diff ---------===//
//
// Pass 2 of the verification layer. The oracle recomputes the complete
// dependence relation of the program — every (variable, UDV, type) label
// between every ordered statement pair — from the independent access
// model in AccessModel.cpp, then diffs the result against the ASDG
// label-for-label. A label the oracle derives that the graph lacks is a
// *missing dependence* (the strategies may have reordered or fused
// something they were never entitled to); a label the graph carries that
// the oracle cannot derive is a *spurious dependence* (harmless for
// correctness of the output but a lie about the program that poisons
// every legality decision downstream). Both are hard errors.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "verify/AccessModel.h"
#include "verify/Verify.h"

using namespace alf;
using namespace alf::verify;

ALF_STATISTIC(NumOracleRuns, "verify", "Dependence-oracle validations run");
ALF_STATISTIC(NumOracleLabels, "verify",
              "Dependence labels re-derived by the oracle");
ALF_STATISTIC(NumOracleFindings, "verify",
              "Missing or spurious dependences detected");

namespace {
constexpr const char *PassName = "dependence-oracle";
} // namespace

VerifyReport verify::verifyDependences(const analysis::ASDG &G) {
  ++NumOracleRuns;
  VerifyReport Out;
  const ir::Program &P = G.getProgram();

  auto Oracle = detail::deriveDependences(P);
  for (const auto &[Pair, Labels] : Oracle)
    NumOracleLabels += Labels.size();

  // Index the graph's edges the same way.
  std::map<std::pair<unsigned, unsigned>, std::set<detail::LabelKey>> Graph;
  for (const analysis::DepEdge &E : G.edges()) {
    auto &Labels = Graph[{E.Src, E.Tgt}];
    for (const analysis::DepLabel &L : E.Labels)
      Labels.insert(detail::labelKey(L.Var, L.UDV, L.Type));
  }

  // Labels the oracle derives but the graph lacks.
  for (const auto &[Pair, Labels] : Oracle) {
    auto It = Graph.find(Pair);
    for (const detail::LabelKey &K : Labels) {
      if (It == Graph.end() || It->second.count(K) == 0)
        Out.add(PassName,
                formatString("missing dependence S%u -> S%u %s", Pair.first,
                             Pair.second,
                             detail::labelKeyStr(P, K).c_str()));
    }
  }

  // Labels the graph carries but the oracle cannot derive.
  for (const auto &[Pair, Labels] : Graph) {
    auto It = Oracle.find(Pair);
    for (const detail::LabelKey &K : Labels) {
      if (It == Oracle.end() || It->second.count(K) == 0)
        Out.add(PassName,
                formatString("spurious dependence S%u -> S%u %s", Pair.first,
                             Pair.second,
                             detail::labelKeyStr(P, K).c_str()));
    }
  }

  NumOracleFindings += Out.Findings.size();
  return Out;
}

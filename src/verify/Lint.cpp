//===- verify/Lint.cpp - Frontend source diagnostics ----------------------===//

#include "verify/Lint.h"

#include "support/Casting.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <map>
#include <set>

using namespace alf;
using namespace alf::ir;
using namespace alf::verify;

ALF_STATISTIC(NumLintRuns, "verify", "Programs linted");
ALF_STATISTIC(NumLintErrors, "verify", "Lint errors reported");
ALF_STATISTIC(NumLintWarnings, "verify", "Lint warnings reported");

const char *verify::getLintSeverityName(LintSeverity S) {
  return S == LintSeverity::Error ? "error" : "warning";
}

std::string LintDiag::render(const std::string &FileName) const {
  if (Line == 0)
    return FileName + ": " + getLintSeverityName(Severity) + ": " + Message;
  return formatString("%s:%u:%u: %s: %s", FileName.c_str(), Line, Col,
                      getLintSeverityName(Severity), Message.c_str());
}

bool LintResult::hasErrors() const {
  for (const LintDiag &D : Diags)
    if (D.Severity == LintSeverity::Error)
      return true;
  return false;
}

std::string LintResult::render(const std::string &FileName) const {
  std::string Out;
  for (const LintDiag &D : Diags) {
    Out += D.render(FileName);
    Out += '\n';
  }
  return Out;
}

namespace {

/// Per-dimension inclusive bounding box, growable by union.
struct Box {
  std::vector<int64_t> Lo, Hi;
  bool Valid = false;

  void include(const Region &R, const Offset &Off) {
    if (!Valid) {
      Valid = true;
      Lo.assign(R.rank(), 0);
      Hi.assign(R.rank(), 0);
      for (unsigned D = 0; D < R.rank(); ++D) {
        Lo[D] = R.lo(D) + Off[D];
        Hi[D] = R.hi(D) + Off[D];
      }
      return;
    }
    if (Lo.size() != R.rank())
      return; // rank mismatch is reported separately
    for (unsigned D = 0; D < R.rank(); ++D) {
      Lo[D] = std::min(Lo[D], R.lo(D) + Off[D]);
      Hi[D] = std::max(Hi[D], R.hi(D) + Off[D]);
    }
  }

  /// True when the box of (R shifted by Off) lies inside this box.
  bool covers(const Region &R, const Offset &Off) const {
    if (!Valid || Lo.size() != R.rank())
      return false;
    for (unsigned D = 0; D < R.rank(); ++D)
      if (R.lo(D) + Off[D] < Lo[D] || R.hi(D) + Off[D] > Hi[D])
        return false;
    return true;
  }
};

struct Linter {
  const Program &P;
  const std::vector<std::pair<unsigned, unsigned>> &Positions;
  LintResult Out;

  // Per array id: union of footprints written so far.
  std::map<unsigned, Box> Written;
  // Per array id: union of footprints written anywhere in the program.
  // A read outside even this union names elements nothing ever defines —
  // an out-of-range offset, not merely an ordering hazard.
  std::map<unsigned, Box> WrittenAll;
  // Per array id: ids of statements reading it (for deadness).
  std::map<unsigned, std::set<unsigned>> ReadAt;
  std::set<unsigned> Referenced; // symbol ids touched by any statement

  Linter(const Program &Prog,
         const std::vector<std::pair<unsigned, unsigned>> &Pos)
      : P(Prog), Positions(Pos) {}

  void diag(LintSeverity Severity, unsigned StmtId, std::string Msg) {
    LintDiag D;
    D.Severity = Severity;
    if (StmtId < Positions.size()) {
      D.Line = Positions[StmtId].first;
      D.Col = Positions[StmtId].second;
    }
    D.Message = std::move(Msg);
    if (Severity == LintSeverity::Error)
      ++NumLintErrors;
    else
      ++NumLintWarnings;
    Out.Diags.push_back(std::move(D));
  }

  /// Records every read of the program up front (deadness needs to look
  /// forward).
  void indexReads() {
    for (unsigned Id = 0; Id < P.numStmts(); ++Id) {
      const Stmt *S = P.getStmt(Id);
      std::vector<const ArrayRefExpr *> Refs;
      if (const auto *NS = dyn_cast<NormalizedStmt>(S))
        Refs = NS->rhsArrayRefs();
      else if (const auto *RS = dyn_cast<ReduceStmt>(S))
        Refs = RS->bodyArrayRefs();
      else if (const auto *OS = dyn_cast<OpaqueStmt>(S))
        for (const ArraySymbol *A : OS->arrayReads())
          ReadAt[A->getId()].insert(Id);
      for (const ArrayRefExpr *Ref : Refs)
        ReadAt[Ref->getSymbol()->getId()].insert(Id);
    }
  }

  /// Records every write footprint of the program up front (the
  /// out-of-range check needs the final union, not the running one).
  void indexWrites() {
    for (unsigned Id = 0; Id < P.numStmts(); ++Id) {
      const Stmt *S = P.getStmt(Id);
      if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
        WrittenAll[NS->getLHS()->getId()].include(*NS->getRegion(),
                                                  NS->getLHSOffset());
        continue;
      }
      if (const auto *OS = dyn_cast<OpaqueStmt>(S))
        for (const ArraySymbol *A : OS->arrayWrites())
          if (OS->getRegion() && OS->getRegion()->rank() == A->getRank())
            WrittenAll[A->getId()].include(*OS->getRegion(),
                                           Offset::zero(A->getRank()));
    }
  }

  void checkReads(unsigned Id, const Region *R,
                  const std::vector<const ArrayRefExpr *> &Refs) {
    std::set<const ArraySymbol *> Diagnosed;
    for (const ArrayRefExpr *Ref : Refs) {
      const ArraySymbol *A = Ref->getSymbol();
      Referenced.insert(A->getId());
      if (A->getRank() != R->rank()) {
        if (Diagnosed.insert(A).second)
          diag(LintSeverity::Error, Id,
               formatString("array %s has rank %u but the statement's "
                            "region has rank %u",
                            A->getName().c_str(), A->getRank(), R->rank()));
        continue;
      }
      if (A->isLiveIn())
        continue; // carries a defined value into the fragment
      auto It = Written.find(A->getId());
      if (It == Written.end()) {
        if (Diagnosed.insert(A).second)
          diag(LintSeverity::Error, Id,
               formatString("%s is read before it is written (and is not "
                            "live-in)",
                            A->getName().c_str()));
        continue;
      }
      if (It->second.covers(*R, Ref->getOffset()) ||
          !Diagnosed.insert(A).second)
        continue;
      // Outside even the whole-program write union the elements are
      // never defined by anything: the offset itself is out of range.
      auto AllIt = WrittenAll.find(A->getId());
      if (AllIt == WrittenAll.end() ||
          !AllIt->second.covers(*R, Ref->getOffset()))
        diag(LintSeverity::Error, Id,
             formatString("reference %s%s reads elements of %s that no "
                          "statement ever writes (out-of-range offset)",
                          A->getName().c_str(),
                          Ref->getOffset().str().c_str(),
                          A->getName().c_str()));
      else
        diag(LintSeverity::Warning, Id,
             formatString("reference %s%s reaches elements of %s outside "
                          "the footprint written so far (uninitialized "
                          "halo reads)",
                          A->getName().c_str(),
                          Ref->getOffset().str().c_str(),
                          A->getName().c_str()));
    }
  }

  void checkDeadWrite(unsigned Id, const ArraySymbol *A) {
    if (A->isLiveOut())
      return;
    const std::set<unsigned> &Readers = ReadAt[A->getId()];
    if (Readers.upper_bound(Id) == Readers.end())
      diag(LintSeverity::Warning, Id,
           formatString("dead statement: %s is not live-out and this value "
                        "is never read",
                        A->getName().c_str()));
  }

  LintResult run() {
    ++NumLintRuns;
    indexReads();
    indexWrites();
    for (unsigned Id = 0; Id < P.numStmts(); ++Id) {
      const Stmt *S = P.getStmt(Id);
      if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
        checkReads(Id, NS->getRegion(), NS->rhsArrayRefs());
        Referenced.insert(NS->getLHS()->getId());
        checkDeadWrite(Id, NS->getLHS());
        Written[NS->getLHS()->getId()].include(*NS->getRegion(),
                                               NS->getLHSOffset());
        continue;
      }
      if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
        checkReads(Id, RS->getRegion(), RS->bodyArrayRefs());
        continue;
      }
      if (const auto *OS = dyn_cast<OpaqueStmt>(S)) {
        // Opaque accesses have no offsets; record writes as covering the
        // statement region so later reads are not misflagged.
        for (const ArraySymbol *A : OS->arrayReads())
          Referenced.insert(A->getId());
        for (const ArraySymbol *A : OS->arrayWrites()) {
          Referenced.insert(A->getId());
          checkDeadWrite(Id, A);
          if (OS->getRegion() && OS->getRegion()->rank() == A->getRank())
            Written[A->getId()].include(*OS->getRegion(),
                                        Offset::zero(A->getRank()));
        }
        continue;
      }
      if (const auto *CS = dyn_cast<CommStmt>(S))
        Referenced.insert(CS->getArray()->getId());
    }

    for (const ArraySymbol *A : P.arrays())
      if (Referenced.count(A->getId()) == 0)
        diag(LintSeverity::Warning, P.numStmts(),
             formatString("array %s is declared but never referenced",
                          A->getName().c_str()));
    return std::move(Out);
  }
};

} // namespace

LintResult verify::lintProgram(
    const ir::Program &P,
    const std::vector<std::pair<unsigned, unsigned>> &StmtPositions) {
  Linter L(P, StmtPositions);
  return L.run();
}

//===- verify/AccessModel.cpp - Independent access re-derivation ----------===//

#include "verify/AccessModel.h"

#include "ir/Expr.h"
#include "support/Casting.h"

using namespace alf;
using namespace alf::ir;
using namespace alf::verify;
using namespace alf::verify::detail;

namespace {

void collectExprReads(const Expr *E, std::vector<Ref> &Out) {
  walkExpr(E, [&Out](const Expr *Node) {
    if (const auto *AR = dyn_cast<ArrayRefExpr>(Node)) {
      Out.push_back(Ref{AR->getSymbol(), AR->getOffset(), /*IsWrite=*/false});
      return;
    }
    if (const auto *SR = dyn_cast<ScalarRefExpr>(Node))
      Out.push_back(Ref{SR->getSymbol(), std::nullopt, /*IsWrite=*/false});
  });
}

} // namespace

std::vector<Ref> detail::collectRefs(const ir::Stmt &S) {
  std::vector<Ref> Out;
  switch (S.getKind()) {
  case Stmt::StmtKind::Normalized: {
    const auto *NS = cast<NormalizedStmt>(&S);
    Out.push_back(Ref{NS->getLHS(), NS->getLHSOffset(), /*IsWrite=*/true});
    collectExprReads(NS->getRHS(), Out);
    return Out;
  }
  case Stmt::StmtKind::Reduce: {
    const auto *RS = cast<ReduceStmt>(&S);
    Out.push_back(Ref{RS->getAccumulator(), std::nullopt, /*IsWrite=*/true});
    collectExprReads(RS->getBody(), Out);
    return Out;
  }
  case Stmt::StmtKind::Comm: {
    const auto *CS = cast<CommStmt>(&S);
    Out.push_back(Ref{CS->getArray(), std::nullopt, /*IsWrite=*/false});
    Out.push_back(Ref{CS->getArray(), std::nullopt, /*IsWrite=*/true});
    return Out;
  }
  case Stmt::StmtKind::Opaque: {
    const auto *OS = cast<OpaqueStmt>(&S);
    for (const ArraySymbol *A : OS->arrayReads())
      Out.push_back(Ref{A, std::nullopt, /*IsWrite=*/false});
    for (const ArraySymbol *A : OS->arrayWrites())
      Out.push_back(Ref{A, std::nullopt, /*IsWrite=*/true});
    for (const ScalarSymbol *Sc : OS->scalarReads())
      Out.push_back(Ref{Sc, std::nullopt, /*IsWrite=*/false});
    for (const ScalarSymbol *Sc : OS->scalarWrites())
      Out.push_back(Ref{Sc, std::nullopt, /*IsWrite=*/true});
    return Out;
  }
  }
  return Out;
}

LabelKey detail::labelKey(const ir::Symbol *Sym,
                          const std::optional<ir::Offset> &UDV,
                          analysis::DepType Type) {
  std::vector<int32_t> Elems;
  if (UDV)
    for (unsigned D = 0; D < UDV->rank(); ++D)
      Elems.push_back((*UDV)[D]);
  return LabelKey{Sym->getId(), UDV.has_value(), std::move(Elems), Type};
}

std::string detail::labelKeyStr(const ir::Program &P, const LabelKey &K) {
  const auto &[SymId, HasUDV, Elems, Type] = K;
  std::string DistText = "unknown";
  if (HasUDV)
    DistText = ir::Offset(Elems).str();
  return "(" + P.getSymbol(SymId)->getName() + ", " + DistText + ", " +
         analysis::getDepTypeName(Type) + ")";
}

std::map<std::pair<unsigned, unsigned>, std::set<LabelKey>>
detail::deriveDependences(const ir::Program &P) {
  unsigned N = P.numStmts();
  std::vector<std::vector<Ref>> Refs(N);
  for (unsigned I = 0; I < N; ++I)
    Refs[I] = collectRefs(*P.getStmt(I));

  std::map<std::pair<unsigned, unsigned>, std::set<LabelKey>> Deps;
  for (unsigned Src = 0; Src < N; ++Src) {
    for (unsigned Tgt = Src + 1; Tgt < N; ++Tgt) {
      std::set<LabelKey> Labels;
      for (const Ref &SrcRef : Refs[Src]) {
        for (const Ref &TgtRef : Refs[Tgt]) {
          if (SrcRef.Sym != TgtRef.Sym)
            continue;
          if (!SrcRef.IsWrite && !TgtRef.IsWrite)
            continue;
          analysis::DepType Type;
          if (SrcRef.IsWrite && TgtRef.IsWrite)
            Type = analysis::DepType::Output;
          else if (SrcRef.IsWrite)
            Type = analysis::DepType::Flow;
          else
            Type = analysis::DepType::Anti;
          std::optional<ir::Offset> UDV;
          if (SrcRef.Off && TgtRef.Off &&
              SrcRef.Off->rank() == TgtRef.Off->rank())
            UDV = *SrcRef.Off - *TgtRef.Off;
          Labels.insert(labelKey(SrcRef.Sym, UDV, Type));
        }
      }
      if (!Labels.empty())
        Deps.emplace(std::make_pair(Src, Tgt), std::move(Labels));
    }
  }
  return Deps;
}

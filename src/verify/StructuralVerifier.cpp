//===- verify/StructuralVerifier.cpp - IR + ASDG structural checks --------===//
//
// Pass 1 of the verification layer: the program is structurally a normal
// form the later phases may trust (dense ids, non-empty rectangular
// regions, offsets whose ranks match the symbols and regions they attach
// to), and the ASDG — when one is supplied — is a plausible dependence
// graph of exactly that program: one node per statement, every edge
// pointing forward in program order (which is what makes the graph
// acyclic by construction), and every label's unconstrained distance
// vector re-derivable as `source access offset - target access offset`
// for some access pair of the label's type.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "verify/AccessModel.h"
#include "verify/Verify.h"

using namespace alf;
using namespace alf::ir;
using namespace alf::verify;

ALF_STATISTIC(NumStructuralChecks, "verify", "Structural validations run");
ALF_STATISTIC(NumStructuralFindings, "verify",
              "Structural validation failures");

namespace {

constexpr const char *PassName = "structure";

void checkRegion(const Region *R, unsigned StmtId, VerifyReport &Out) {
  if (!R) {
    Out.add(PassName, formatString("S%u: null region", StmtId));
    return;
  }
  if (R->rank() == 0) {
    Out.add(PassName, formatString("S%u: region of rank 0", StmtId));
    return;
  }
  // Rectangular = every dimension a nonempty inclusive interval. (The
  // Region constructor asserts this, but asserts vanish under NDEBUG and
  // regions can be default-constructed.)
  for (unsigned D = 0; D < R->rank(); ++D)
    if (R->lo(D) > R->hi(D))
      Out.add(PassName,
              formatString("S%u: empty region dimension %u (%lld..%lld)",
                           StmtId, D, static_cast<long long>(R->lo(D)),
                           static_cast<long long>(R->hi(D))));
}

void checkNormalized(const NormalizedStmt &NS, VerifyReport &Out) {
  unsigned Id = NS.getId();
  checkRegion(NS.getRegion(), Id, Out);
  const Region *R = NS.getRegion();
  if (!R || R->rank() == 0)
    return;
  unsigned Rank = R->rank();
  if (NS.getLHS()->getRank() != Rank)
    Out.add(PassName,
            formatString("S%u: LHS %s has rank %u but region rank is %u", Id,
                         NS.getLHS()->getName().c_str(),
                         NS.getLHS()->getRank(), Rank));
  if (NS.getLHSOffset().rank() != NS.getLHS()->getRank())
    Out.add(PassName,
            formatString("S%u: LHS offset rank %u != array rank %u", Id,
                         NS.getLHSOffset().rank(), NS.getLHS()->getRank()));
  for (const ArrayRefExpr *Ref : NS.rhsArrayRefs()) {
    if (Ref->getOffset().rank() != Ref->getSymbol()->getRank())
      Out.add(PassName,
              formatString("S%u: reference %s%s has offset rank %u but the "
                           "array has rank %u",
                           Id, Ref->getSymbol()->getName().c_str(),
                           Ref->getOffset().str().c_str(),
                           Ref->getOffset().rank(),
                           Ref->getSymbol()->getRank()));
    if (Ref->getSymbol()->getRank() != Rank)
      Out.add(PassName,
              formatString("S%u: RHS array %s has rank %u but region rank "
                           "is %u",
                           Id, Ref->getSymbol()->getName().c_str(),
                           Ref->getSymbol()->getRank(), Rank));
    // Normal-form condition (i): the target is not also a source.
    if (Ref->getSymbol() == NS.getLHS())
      Out.add(PassName,
              formatString("S%u: LHS %s is read on its own RHS (normal-form "
                           "condition (i))",
                           Id, NS.getLHS()->getName().c_str()));
  }
}

void checkReduce(const ReduceStmt &RS, VerifyReport &Out) {
  unsigned Id = RS.getId();
  checkRegion(RS.getRegion(), Id, Out);
  const Region *R = RS.getRegion();
  if (!R || R->rank() == 0)
    return;
  for (const ArrayRefExpr *Ref : RS.bodyArrayRefs()) {
    if (Ref->getOffset().rank() != Ref->getSymbol()->getRank())
      Out.add(PassName,
              formatString("S%u: reference %s%s has offset rank %u but the "
                           "array has rank %u",
                           Id, Ref->getSymbol()->getName().c_str(),
                           Ref->getOffset().str().c_str(),
                           Ref->getOffset().rank(),
                           Ref->getSymbol()->getRank()));
    if (Ref->getSymbol()->getRank() != R->rank())
      Out.add(PassName,
              formatString("S%u: reduced array %s has rank %u but region "
                           "rank is %u",
                           Id, Ref->getSymbol()->getName().c_str(),
                           Ref->getSymbol()->getRank(), R->rank()));
  }
}

void checkComm(const CommStmt &CS, VerifyReport &Out) {
  if (CS.getDir().rank() != CS.getArray()->getRank())
    Out.add(PassName,
            formatString("S%u: comm direction rank %u != array %s rank %u",
                         CS.getId(), CS.getDir().rank(),
                         CS.getArray()->getName().c_str(),
                         CS.getArray()->getRank()));
}

void checkGraph(const ir::Program &P, const analysis::ASDG &G,
                VerifyReport &Out) {
  if (&G.getProgram() != &P) {
    Out.add(PassName, "ASDG was built over a different program");
    return;
  }
  if (G.numNodes() != P.numStmts()) {
    Out.add(PassName,
            formatString("ASDG has %u nodes but the program has %u "
                         "statements",
                         G.numNodes(), P.numStmts()));
    return;
  }
  std::vector<std::vector<detail::Ref>> Refs(P.numStmts());
  for (unsigned I = 0; I < P.numStmts(); ++I)
    Refs[I] = detail::collectRefs(*P.getStmt(I));

  for (const analysis::DepEdge &E : G.edges()) {
    if (E.Src >= P.numStmts() || E.Tgt >= P.numStmts()) {
      Out.add(PassName, formatString("edge S%u -> S%u references a "
                                     "nonexistent statement",
                                     E.Src, E.Tgt));
      continue;
    }
    // Program order is what makes the graph a DAG (Definition 3).
    if (E.Src >= E.Tgt) {
      Out.add(PassName,
              formatString("edge S%u -> S%u violates program order (the "
                           "graph must be acyclic)",
                           E.Src, E.Tgt));
      continue;
    }
    if (E.Labels.empty())
      Out.add(PassName, formatString("edge S%u -> S%u has no labels", E.Src,
                                     E.Tgt));
    for (const analysis::DepLabel &L : E.Labels) {
      // Re-derive the label from the two statements' accesses: there must
      // be a (source access, target access) pair on L.Var whose directions
      // match L.Type and, when L carries a UDV, whose offset difference is
      // exactly that UDV.
      bool Derivable = false;
      for (const detail::Ref &SrcRef : Refs[E.Src]) {
        if (Derivable)
          break;
        if (SrcRef.Sym != L.Var)
          continue;
        for (const detail::Ref &TgtRef : Refs[E.Tgt]) {
          if (TgtRef.Sym != L.Var)
            continue;
          bool TypeMatches =
              (L.Type == analysis::DepType::Output && SrcRef.IsWrite &&
               TgtRef.IsWrite) ||
              (L.Type == analysis::DepType::Flow && SrcRef.IsWrite &&
               !TgtRef.IsWrite) ||
              (L.Type == analysis::DepType::Anti && !SrcRef.IsWrite &&
               TgtRef.IsWrite);
          if (!TypeMatches)
            continue;
          if (!L.UDV) {
            // Unrepresentable labels arise when either side has no
            // constant offset or the ranks disagree.
            if (!SrcRef.Off || !TgtRef.Off ||
                SrcRef.Off->rank() != TgtRef.Off->rank()) {
              Derivable = true;
              break;
            }
            continue;
          }
          if (SrcRef.Off && TgtRef.Off &&
              SrcRef.Off->rank() == TgtRef.Off->rank() &&
              *SrcRef.Off - *TgtRef.Off == *L.UDV) {
            Derivable = true;
            break;
          }
        }
      }
      if (!Derivable)
        Out.add(PassName,
                formatString("edge S%u -> S%u: label (%s, %s, %s) is not "
                             "derivable from the statements' accesses",
                             E.Src, E.Tgt, L.Var->getName().c_str(),
                             L.UDV ? L.UDV->str().c_str() : "unknown",
                             analysis::getDepTypeName(L.Type)));
    }
  }
}

} // namespace

VerifyReport verify::verifyStructure(const ir::Program &P,
                                     const analysis::ASDG *G) {
  ++NumStructuralChecks;
  VerifyReport Out;

  for (unsigned I = 0; I < P.numStmts(); ++I) {
    const Stmt *S = P.getStmt(I);
    if (S->getId() != I)
      Out.add(PassName, formatString("statement at position %u has id %u "
                                     "(ids must be dense program order)",
                                     I, S->getId()));
    if (const auto *NS = dyn_cast<NormalizedStmt>(S))
      checkNormalized(*NS, Out);
    else if (const auto *RS = dyn_cast<ReduceStmt>(S))
      checkReduce(*RS, Out);
    else if (const auto *CS = dyn_cast<CommStmt>(S))
      checkComm(*CS, Out);
    // Opaque statements have no structural obligations beyond their id.
  }

  if (G)
    checkGraph(P, *G, Out);

  NumStructuralFindings += Out.Findings.size();
  return Out;
}

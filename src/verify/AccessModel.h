//===- verify/AccessModel.h - Independent access re-derivation -*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal to src/verify: re-derives the variable accesses of each
/// statement kind directly from the statement's fields, deliberately NOT
/// calling ir::Stmt::getAccesses — the whole point of the oracle is that
/// a bug in the production access model shows up as a diff instead of
/// propagating into the verdict. The modeled semantics (paper section
/// 2.1 / Definition 2):
///
///  * normalized  `[R] A@d0 := f(...)` — writes A at d0; reads each RHS
///    array reference at its offset and each RHS scalar (no offset);
///  * reduce      `[R] s := op<< f(...)` — writes s (no offset); reads as
///    a normalized RHS;
///  * comm        — reads and writes its array, both unrepresentable;
///  * opaque      — every declared read/write, all unrepresentable.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_VERIFY_ACCESSMODEL_H
#define ALF_VERIFY_ACCESSMODEL_H

#include "analysis/ASDG.h"
#include "ir/Program.h"

#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

namespace alf {
namespace verify {
namespace detail {

/// One re-derived access: symbol, constant offset when representable,
/// direction.
struct Ref {
  const ir::Symbol *Sym = nullptr;
  std::optional<ir::Offset> Off;
  bool IsWrite = false;
};

/// All accesses of \p S, re-derived from its fields.
std::vector<Ref> collectRefs(const ir::Stmt &S);

/// A dependence label in comparison-friendly form: symbol id, whether the
/// distance is representable, its elements, and the dependence type.
using LabelKey =
    std::tuple<unsigned, bool, std::vector<int32_t>, analysis::DepType>;

/// Canonical key of one (Var, UDV, Type) tuple.
LabelKey labelKey(const ir::Symbol *Sym, const std::optional<ir::Offset> &UDV,
                  analysis::DepType Type);

/// Renders a label key as "(name, @(..)|unknown, type)" using \p P for
/// symbol names.
std::string labelKeyStr(const ir::Program &P, const LabelKey &K);

/// The oracle's full dependence set: for every ordered statement pair
/// (Src < Tgt), the set of labels the access model implies. Pairs with no
/// dependence are absent.
std::map<std::pair<unsigned, unsigned>, std::set<LabelKey>>
deriveDependences(const ir::Program &P);

} // namespace detail
} // namespace verify
} // namespace alf

#endif // ALF_VERIFY_ACCESSMODEL_H

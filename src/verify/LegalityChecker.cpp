//===- verify/LegalityChecker.cpp - Post-hoc fusion/contraction proofs ----===//
//
// Pass 3 of the verification layer: given the StrategyResult a strategy
// produced, re-prove its decisions from first principles — Definition 5
// for every fusion cluster, Definition 6 for every contracted array —
// against dependences the oracle derives from the program itself rather
// than the ASDG the strategy consumed (so a corrupted graph cannot
// certify its own output). The file also hosts the UDV-based static race
// detector for parallel schedules: for every nest the ParallelExecutor
// will run concurrently it re-derives the element-access distances from
// the scalarized body and re-applies the classic legality rule to the
// partitioned loop, checks that no reduction accumulates in parallel,
// that rolling buffers never wrap along the parallel dimension, and that
// every scalar written in the nest is thread-private (a contraction
// scalar defined before use in each iteration).
//
//===----------------------------------------------------------------------===//

#include "semiring/Semiring.h"
#include "support/Casting.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "verify/AccessModel.h"
#include "verify/Verify.h"
#include "xform/FusionPartition.h"
#include "xform/Parallelize.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace alf;
using namespace alf::ir;
using namespace alf::verify;

ALF_STATISTIC(NumStrategyProofs, "verify",
              "Strategy results re-proved (Definitions 5 and 6)");
ALF_STATISTIC(NumClusterProofs, "verify",
              "Fusion clusters re-proved against Definition 5");
ALF_STATISTIC(NumContractionProofs, "verify",
              "Contracted arrays re-proved against Definition 6");
ALF_STATISTIC(NumRaceChecksRun, "verify", "Parallel schedules race-checked");
ALF_STATISTIC(NumNestsCertifiedParallel, "verify",
              "Loop nests certified free of cross-iteration conflicts");
ALF_STATISTIC(NumLegalityFindings, "verify",
              "Fusion/contraction/race legality failures");
ALF_STATISTIC(NumSemiringProofs, "verify",
              "Reduction semirings re-checked against their declared laws");

namespace {

constexpr const char *FusionPass = "fusion-legality";
constexpr const char *ContractionPass = "contraction-legality";
constexpr const char *RacePass = "race";

/// Oracle dependences restricted to label lists with resolved symbols,
/// grouped per ordered statement pair.
struct OracleDep {
  const Symbol *Var;
  std::optional<Offset> UDV;
  analysis::DepType Type;
};

std::map<std::pair<unsigned, unsigned>, std::vector<OracleDep>>
oracleDeps(const ir::Program &P) {
  std::map<std::pair<unsigned, unsigned>, std::vector<OracleDep>> Out;
  for (const auto &[Pair, Labels] : detail::deriveDependences(P)) {
    auto &List = Out[Pair];
    for (const detail::LabelKey &K : Labels) {
      const auto &[SymId, HasUDV, Elems, Type] = K;
      std::optional<Offset> UDV;
      if (HasUDV)
        UDV = Offset(Elems);
      List.push_back(OracleDep{P.getSymbol(SymId), std::move(UDV), Type});
    }
  }
  return Out;
}

/// The common region of a multi-statement cluster, or null (with a
/// finding) when members disagree or are not fusible statement kinds.
const Region *clusterRegion(const ir::Program &P,
                            const std::vector<unsigned> &Members,
                            VerifyReport &Out) {
  const Region *Common = nullptr;
  for (unsigned Id : Members) {
    const Stmt *S = P.getStmt(Id);
    const Region *R = nullptr;
    if (const auto *NS = dyn_cast<NormalizedStmt>(S))
      R = NS->getRegion();
    else if (const auto *RS = dyn_cast<ReduceStmt>(S))
      R = RS->getRegion();
    else {
      Out.add(FusionPass,
              formatString("cluster {S%u..}: S%u is not a normalized or "
                           "reduce statement and cannot fuse",
                           Members.front(), Id));
      return nullptr;
    }
    if (!Common) {
      Common = R;
    } else if (!R || *R != *Common) {
      Out.add(FusionPass,
              formatString("cluster {S%u..}: S%u's region %s differs from "
                           "the cluster region %s (Definition 5 (i))",
                           Members.front(), Id,
                           R ? R->str().c_str() : "<null>",
                           Common->str().c_str()));
      return nullptr;
    }
  }
  return Common;
}

void proveCluster(
    const ir::Program &P,
    const std::map<std::pair<unsigned, unsigned>, std::vector<OracleDep>>
        &Deps,
    const std::vector<unsigned> &Members, VerifyReport &Out) {
  ++NumClusterProofs;
  if (Members.size() < 2)
    return; // a singleton cluster is trivially a legal fusion
  const Region *Common = clusterRegion(P, Members, Out);
  if (!Common)
    return;

  // Fusing across a communication primitive would move the exchange
  // relative to half the cluster; the strategies never do it, so a
  // partition that does is a bug.
  for (unsigned Id = Members.front() + 1; Id < Members.back(); ++Id)
    if (isa<CommStmt>(P.getStmt(Id)) &&
        std::find(Members.begin(), Members.end(), Id) == Members.end())
      Out.add(FusionPass,
              formatString("cluster {S%u..S%u} spans the communication "
                           "statement S%u",
                           Members.front(), Members.back(), Id));

  // Conditions (ii) and (iv): intra-cluster flow dependences must be
  // null, every intra-cluster dependence must be representable, and a
  // loop structure vector preserving all of them must exist.
  std::vector<Offset> Internal;
  for (size_t A = 0; A < Members.size(); ++A) {
    for (size_t B = A + 1; B < Members.size(); ++B) {
      auto It = Deps.find({Members[A], Members[B]});
      if (It == Deps.end())
        continue;
      for (const OracleDep &D : It->second) {
        if (!D.UDV) {
          Out.add(FusionPass,
                  formatString("cluster {S%u..}: unrepresentable %s "
                               "dependence S%u -> S%u on %s",
                               Members.front(),
                               analysis::getDepTypeName(D.Type), Members[A],
                               Members[B], D.Var->getName().c_str()));
          continue;
        }
        if (D.Type == analysis::DepType::Flow && !D.UDV->isZero())
          Out.add(FusionPass,
                  formatString("cluster {S%u..}: non-null flow dependence "
                               "S%u -> S%u on %s with distance %s "
                               "(Definition 5 (ii))",
                               Members.front(), Members[A], Members[B],
                               D.Var->getName().c_str(),
                               D.UDV->str().c_str()));
        if (D.UDV->rank() == Common->rank())
          Internal.push_back(*D.UDV);
        else
          Out.add(FusionPass,
                  formatString("cluster {S%u..}: dependence S%u -> S%u on "
                               "%s has rank-%u distance under a rank-%u "
                               "region",
                               Members.front(), Members[A], Members[B],
                               D.Var->getName().c_str(), D.UDV->rank(),
                               Common->rank()));
      }
    }
  }

  std::optional<xform::LoopStructureVector> LSV =
      xform::findLoopStructure(Internal, Common->rank());
  if (!LSV) {
    Out.add(FusionPass,
            formatString("cluster {S%u..}: no loop structure vector "
                         "preserves the internal dependences "
                         "(Definition 5 (iv))",
                         Members.front()));
    return;
  }
  // Double-check FIND-LOOP-STRUCTURE's answer rather than trusting it:
  // every internal distance, constrained by the vector, must be
  // lexicographically nonnegative (Definition 1).
  for (const Offset &U : Internal) {
    Offset D = xform::constrain(U, *LSV);
    if (!xform::isLexicographicallyNonnegative(D))
      Out.add(FusionPass,
              formatString("cluster {S%u..}: loop structure %s reverses "
                           "the dependence with distance %s",
                           Members.front(), LSV->str().c_str(),
                           U.str().c_str()));
  }
}

void proveContraction(
    const ir::Program &P, const xform::FusionPartition &Partition,
    const std::map<std::pair<unsigned, unsigned>, std::vector<OracleDep>>
        &Deps,
    const ArraySymbol *A, VerifyReport &Out) {
  ++NumContractionProofs;
  if (A->isLiveOut()) {
    Out.add(ContractionPass,
            formatString("%s is live-out and can never be contracted "
                         "(Definition 6 side condition)",
                         A->getName().c_str()));
    return;
  }

  // Walk the referencing statements in program order, re-deriving each
  // statement's role from the access model.
  bool SeenWrite = false, Referenced = false;
  for (unsigned Id = 0; Id < P.numStmts(); ++Id) {
    const Stmt *S = P.getStmt(Id);
    bool Reads = false, Writes = false;
    for (const detail::Ref &R : detail::collectRefs(*S)) {
      if (R.Sym != A)
        continue;
      (R.IsWrite ? Writes : Reads) = true;
    }
    if (!Reads && !Writes)
      continue;
    Referenced = true;
    if (!isa<NormalizedStmt>(S) && !isa<ReduceStmt>(S)) {
      Out.add(ContractionPass,
              formatString("%s is referenced by the unfusible statement "
                           "S%u and cannot live in a register",
                           A->getName().c_str(), Id));
      return;
    }
    if (Reads && !SeenWrite) {
      Out.add(ContractionPass,
              formatString("%s has an upward-exposed read at S%u "
                           "(value flows in from before the fragment)",
                           A->getName().c_str(), Id));
      return;
    }
    SeenWrite |= Writes;
  }
  if (!Referenced || !SeenWrite) {
    Out.add(ContractionPass,
            formatString("%s is never written; contraction would drop its "
                         "definition",
                         A->getName().c_str()));
    return;
  }

  // Definition 6 conditions (ii) and (iii): every dependence due to A has
  // both endpoints in one cluster and the null distance.
  for (const auto &[Pair, List] : Deps) {
    for (const OracleDep &D : List) {
      if (D.Var != A)
        continue;
      if (Partition.clusterOf(Pair.first) != Partition.clusterOf(Pair.second))
        Out.add(ContractionPass,
                formatString("%s carries a %s dependence S%u -> S%u across "
                             "clusters %u and %u (Definition 6 (ii))",
                             A->getName().c_str(),
                             analysis::getDepTypeName(D.Type), Pair.first,
                             Pair.second, Partition.clusterOf(Pair.first),
                             Partition.clusterOf(Pair.second)));
      if (!D.UDV || !D.UDV->isZero())
        Out.add(ContractionPass,
                formatString("%s carries a %s dependence S%u -> S%u with "
                             "distance %s; a scalar holds one element "
                             "(Definition 6 (iii))",
                             A->getName().c_str(),
                             analysis::getDepTypeName(D.Type), Pair.first,
                             Pair.second,
                             D.UDV ? D.UDV->str().c_str() : "unknown"));
    }
  }
}

} // namespace

VerifyReport verify::verifyStrategy(const analysis::ASDG &G,
                                    const xform::StrategyResult &SR) {
  ++NumStrategyProofs;
  VerifyReport Out;
  const ir::Program &P = G.getProgram();
  const xform::FusionPartition &Partition = SR.Partition;

  if (Partition.numStmts() != P.numStmts()) {
    Out.add(FusionPass,
            formatString("partition covers %u statements but the program "
                         "has %u",
                         Partition.numStmts(), P.numStmts()));
    NumLegalityFindings += Out.Findings.size();
    return Out;
  }

  // Every reduction's legality argument (Definition 6 and the scalarized
  // accumulation order) leans on the declared ⊕ being associative with
  // the declared identity. Re-check those laws on the semiring's own
  // carrier before trusting them: a "semiring" whose ⊕ is not associative
  // makes every contraction of its reductions unsound.
  {
    std::set<const semiring::Semiring *> Checked;
    for (unsigned Id = 0; Id < P.numStmts(); ++Id) {
      const auto *RS = dyn_cast<ReduceStmt>(P.getStmt(Id));
      if (!RS || !Checked.insert(&RS->getSemiring()).second)
        continue;
      ++NumSemiringProofs;
      for (const std::string &Law :
           semiring::checkAlgebra(RS->getSemiring()))
        Out.add(ContractionPass,
                formatString("S%u: semiring '%s' violates its declared "
                             "algebra: %s (Definition 6 precondition)",
                             Id, RS->getSemiring().Name.c_str(),
                             Law.c_str()));
    }
  }

  auto Deps = oracleDeps(P);

  // Partition representation: a cluster's id is its smallest member.
  for (unsigned Cluster : Partition.clusters()) {
    std::vector<unsigned> Members = Partition.members(Cluster);
    if (Members.empty() || Members.front() != Cluster)
      Out.add(FusionPass,
              formatString("cluster %u does not contain its own id as its "
                           "smallest member",
                           Cluster));
    proveCluster(P, Deps, Members, Out);
  }

  // Definition 5 (iii): the quotient graph over the oracle's dependences
  // is acyclic (colors: 0 unvisited, 1 on stack, 2 done).
  {
    std::map<unsigned, std::set<unsigned>> Succ;
    for (const auto &[Pair, List] : Deps) {
      (void)List;
      unsigned CS = Partition.clusterOf(Pair.first);
      unsigned CT = Partition.clusterOf(Pair.second);
      if (CS != CT)
        Succ[CS].insert(CT);
    }
    std::map<unsigned, int> Color;
    std::function<bool(unsigned)> HasCycle = [&](unsigned C) {
      Color[C] = 1;
      for (unsigned Next : Succ[C]) {
        int State = Color.count(Next) ? Color[Next] : 0;
        if (State == 1 || (State == 0 && HasCycle(Next)))
          return true;
      }
      Color[C] = 2;
      return false;
    };
    for (unsigned Cluster : Partition.clusters()) {
      int State = Color.count(Cluster) ? Color[Cluster] : 0;
      if (State == 0 && HasCycle(Cluster)) {
        Out.add(FusionPass,
                formatString("quotient graph has a cycle through cluster "
                             "%u (Definition 5 (iii))",
                             Cluster));
        break;
      }
    }
  }

  for (const ArraySymbol *A : SR.Contracted)
    proveContraction(P, Partition, Deps, A, Out);

  NumLegalityFindings += Out.Findings.size();
  return Out;
}

//===----------------------------------------------------------------------===//
// Static race detection for parallel schedules
//===----------------------------------------------------------------------===//

namespace {

/// One element access of a nest body: array + constant offset from the
/// loop indices.
struct ElemAccess {
  const ArraySymbol *Array;
  Offset Off;
  bool IsWrite;
};

void checkParallelNest(const lir::LoopProgram &LP, const lir::LoopNest &Nest,
                       unsigned NodeIdx, int ParallelLoop, VerifyReport &Out) {
  const xform::LoopStructureVector &LSV = Nest.LSV;
  unsigned L = static_cast<unsigned>(ParallelLoop);
  if (L >= LSV.rank()) {
    Out.add(RacePass,
            formatString("node %u: parallel loop %d of a rank-%u nest",
                         NodeIdx, ParallelLoop, LSV.rank()));
    return;
  }

  // The executor keeps contraction scalars in a thread-private overlay,
  // so they are race-free exactly when every iteration defines them
  // before using them. Any other scalar written in a parallel body is
  // shared storage and therefore a race.
  std::set<const ScalarSymbol *> ContractionScalars;
  for (const ArraySymbol *A : LP.source().arrays())
    if (const ScalarSymbol *S = LP.scalarFor(A))
      ContractionScalars.insert(S);

  // Collect every element access and every scalar touch of the body.
  std::vector<ElemAccess> Accesses;
  std::set<const ScalarSymbol *> WrittenScalars;
  std::set<const ScalarSymbol *> ExposedScalars;
  for (const lir::ScalarStmt &SS : Nest.Body) {
    if (SS.Accumulate) {
      // A reduction accumulator carries a dependence on every loop, and
      // parallel accumulation would also reassociate floating point.
      Out.add(RacePass,
              formatString("node %u: reduction into %s inside a parallel "
                           "nest",
                           NodeIdx,
                           SS.LHS.Scalar ? SS.LHS.Scalar->getName().c_str()
                                         : "<array>"));
      continue;
    }
    walkExpr(SS.RHS.get(), [&](const Expr *E) {
      if (const auto *AR = dyn_cast<ArrayRefExpr>(E)) {
        Accesses.push_back(
            ElemAccess{AR->getSymbol(), AR->getOffset(), /*IsWrite=*/false});
        return;
      }
      if (const auto *SRef = dyn_cast<ScalarRefExpr>(E))
        if (ContractionScalars.count(SRef->getSymbol()) &&
            WrittenScalars.count(SRef->getSymbol()) == 0)
          ExposedScalars.insert(SRef->getSymbol());
    });
    if (SS.LHS.isScalar()) {
      if (ContractionScalars.count(SS.LHS.Scalar) == 0)
        Out.add(RacePass,
                formatString("node %u: write to shared scalar %s inside a "
                             "parallel nest",
                             NodeIdx, SS.LHS.Scalar->getName().c_str()));
      WrittenScalars.insert(SS.LHS.Scalar);
    } else {
      Accesses.push_back(ElemAccess{SS.LHS.Array, SS.LHS.Off,
                                    /*IsWrite=*/true});
    }
  }
  for (const ScalarSymbol *S : ExposedScalars)
    Out.add(RacePass,
            formatString("node %u: contraction scalar %s is read before it "
                         "is written in the iteration (its value would "
                         "cross iterations)",
                         NodeIdx, S->getName().c_str()));

  // Rolling buffers alias iterations along their modulo-indexed
  // dimensions; the parallel loop must not iterate one.
  std::set<const ArraySymbol *> Seen;
  for (const ElemAccess &A : Accesses) {
    if (!Seen.insert(A.Array).second)
      continue;
    if (const xform::PartialPlan *Plan = LP.partialPlanFor(A.Array)) {
      unsigned Dim = LSV.dimOf(L);
      if (Dim < Plan->BufferExtents.size() && Plan->isReduced(Dim))
        Out.add(RacePass,
                formatString("node %u: parallel loop %u iterates dimension "
                             "%u of rolling buffer %s, which wraps modulo "
                             "%lld",
                             NodeIdx, L, Dim, A.Array->getName().c_str(),
                             static_cast<long long>(
                                 Plan->BufferExtents[Dim])));
    }
  }

  // The race rule proper: for every access pair on one array with at
  // least one write, the distance (constrained by the nest's loop
  // structure) must be carried by a loop outer to the parallel one or be
  // independent of it.
  for (size_t I = 0; I < Accesses.size(); ++I) {
    for (size_t J = I + 1; J < Accesses.size(); ++J) {
      const ElemAccess &A = Accesses[I];
      const ElemAccess &B = Accesses[J];
      if (A.Array != B.Array)
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (A.Off.rank() != B.Off.rank() || A.Off.rank() != LSV.rank()) {
        Out.add(RacePass,
                formatString("node %u: accesses to %s with mismatched "
                             "ranks under a rank-%u nest",
                             NodeIdx, A.Array->getName().c_str(),
                             LSV.rank()));
        continue;
      }
      Offset U = A.Off - B.Off;
      Offset D = xform::constrain(U, LSV);
      bool CarriedOuter = false;
      for (unsigned Loop = 0; Loop < L; ++Loop)
        if (D[Loop] != 0)
          CarriedOuter = true;
      if (!CarriedOuter && D[L] != 0)
        Out.add(RacePass,
                formatString("node %u: iterations of parallel loop %u "
                             "conflict on %s (offsets %s and %s, carried "
                             "distance %s)",
                             NodeIdx, L, A.Array->getName().c_str(),
                             A.Off.str().c_str(), B.Off.str().c_str(),
                             D.str().c_str()));
    }
  }
}

} // namespace

VerifyReport verify::verifyParallelSafety(const lir::LoopProgram &LP,
                                          const exec::ParallelSchedule &Sched) {
  ++NumRaceChecksRun;
  VerifyReport Out;

  if (Sched.NodePlans.size() != LP.nodes().size()) {
    Out.add(RacePass,
            formatString("schedule has %zu plans for %zu nodes",
                         Sched.NodePlans.size(), LP.nodes().size()));
    NumLegalityFindings += Out.Findings.size();
    return Out;
  }

  for (size_t I = 0; I < LP.nodes().size(); ++I) {
    const xform::NestParallelPlan &Plan = Sched.NodePlans[I];
    if (!Plan.isParallel())
      continue;
    const auto *Nest = dyn_cast<lir::LoopNest>(LP.nodes()[I].get());
    if (!Nest) {
      Out.add(RacePass,
              formatString("node %zu is not a loop nest but is scheduled "
                           "parallel",
                           I));
      continue;
    }
    unsigned Before = static_cast<unsigned>(Out.Findings.size());
    checkParallelNest(LP, *Nest, static_cast<unsigned>(I), Plan.ParallelLoop,
                      Out);
    if (Out.Findings.size() == Before)
      ++NumNestsCertifiedParallel;
  }

  NumLegalityFindings += Out.Findings.size();
  return Out;
}

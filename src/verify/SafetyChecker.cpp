//===- verify/SafetyChecker.cpp - Memory-safety abstract interpreter ------===//
//
// Pass 5 of the verification layer: an abstract interpretation of the
// scalarized loop nests that proves the program memory-safe before it is
// allowed to execute. Three independent obligations, each reported under
// its own pass name:
//
//  * safety-bounds  — every load and store of every loop nest, ranged
//    over the nest's induction-variable intervals (analysis/Intervals),
//    lands inside the array's allocated footprint. The allocation is the
//    union of source-program reference boxes (analysis/Footprint is the
//    single source of truth Storage allocates with), and each access is
//    first proved against a *source box symbolically* — regions are
//    interned, so pointer-equal parameters cancel and the proof holds
//    for every instantiation of the extents — before falling back to the
//    witness bounds. Rolling-buffer (partially contracted) accesses are
//    wrapped modulo the buffer extents exactly as the executors wrap
//    them.
//  * safety-init    — a use-before-definition dataflow: contracted
//    scalars must be written earlier in body order than any read, a
//    semiring accumulation must be dominated by its ⊕-identity init,
//    arrays read anywhere must be live-in or written somewhere in the
//    loop program, and each live-out array's writes must still cover the
//    write footprint the source program promises (a truncated copy-out
//    region fails here).
//  * safety-overlap — two nests from distinct clusters whose write boxes
//    on the same array intersect must be ordered by a dependence path in
//    the ASDG; unordered overlapping writes mean the scalarizer invented
//    an ordering the graph never licensed.
//
// Like every pass in this library the checker re-derives its facts from
// the primary sources (the source program and the scalarized nests
// themselves) and never trusts the phase that produced them.
//
//===----------------------------------------------------------------------===//

#include "analysis/Footprint.h"
#include "analysis/Intervals.h"
#include "support/Casting.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "verify/Verify.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::verify;

ALF_STATISTIC(NumSafetyChecks, "verify", "Safety-checker runs");
ALF_STATISTIC(NumSafetyFindings, "verify", "Safety-checker findings");
ALF_STATISTIC(NumBoundsProofs, "verify",
              "Load/store bounds obligations discharged");
ALF_STATISTIC(NumBoundsProofsSymbolic, "verify",
              "Bounds obligations discharged symbolically (all extents)");
ALF_STATISTIC(NumInitObligations, "verify",
              "Use-before-definition obligations discharged");

namespace {

constexpr const char *BoundsPass = "safety-bounds";
constexpr const char *InitPass = "safety-init";
constexpr const char *OverlapPass = "safety-overlap";

/// One rectangular access box of the source program: the statement's
/// region shifted by the constant reference offset.
struct SrcBox {
  const Region *R = nullptr;
  Offset Off;
};

/// All source boxes per array id, split by access kind. These are the
/// primary-source facts the bounds and copy-out proofs compare against;
/// their per-dimension union is exactly what analysis/Footprint computes
/// and Storage allocates.
struct SrcBoxes {
  std::map<unsigned, std::vector<SrcBox>> All;
  std::map<unsigned, std::vector<SrcBox>> Writes;

  static SrcBoxes collect(const Program &P) {
    SrcBoxes Out;
    auto Add = [&](std::map<unsigned, std::vector<SrcBox>> &Into,
                   const ArraySymbol *A, const Region *R, Offset Off) {
      Into[A->getId()].push_back(SrcBox{R, std::move(Off)});
    };
    for (unsigned I = 0; I < P.numStmts(); ++I) {
      const Stmt *S = P.getStmt(I);
      if (const auto *NS = dyn_cast<NormalizedStmt>(S)) {
        Add(Out.All, NS->getLHS(), NS->getRegion(), NS->getLHSOffset());
        Add(Out.Writes, NS->getLHS(), NS->getRegion(), NS->getLHSOffset());
        for (const ArrayRefExpr *Ref : NS->rhsArrayRefs())
          Add(Out.All, Ref->getSymbol(), NS->getRegion(), Ref->getOffset());
        continue;
      }
      if (const auto *RS = dyn_cast<ReduceStmt>(S)) {
        for (const ArrayRefExpr *Ref : RS->bodyArrayRefs())
          Add(Out.All, Ref->getSymbol(), RS->getRegion(), Ref->getOffset());
        continue;
      }
      if (const auto *OS = dyn_cast<OpaqueStmt>(S)) {
        if (!OS->getRegion())
          continue;
        const Region *R = OS->getRegion();
        for (const ArraySymbol *A : OS->arrayReads())
          if (A->getRank() == R->rank())
            Add(Out.All, A, R, Offset::zero(R->rank()));
        for (const ArraySymbol *A : OS->arrayWrites())
          if (A->getRank() == R->rank()) {
            Add(Out.All, A, R, Offset::zero(R->rank()));
            Add(Out.Writes, A, R, Offset::zero(R->rank()));
          }
      }
    }
    return Out;
  }
};

/// Context shared by the sub-passes of one verifySafety run.
struct SafetyContext {
  const LoopProgram &LP;
  const SrcBoxes Boxes;
  const FootprintInfo FI;

  explicit SafetyContext(const LoopProgram &InLP)
      : LP(InLP), Boxes(SrcBoxes::collect(InLP.source())),
        FI(FootprintInfo::compute(InLP.source())) {}
};

std::string accessName(const ArraySymbol *A, const Offset &Off) {
  return A->getName() + Off.str();
}

/// Proves that the access interval \p Access along dimension \p D of
/// array \p A stays inside the allocated footprint. The symbolic route
/// compares against each source box of A: any single box bounds the
/// footprint's union from inside (its low end is >= the union's low end
/// never holds — but the union's low end is <= every box's low end, so
/// proving the access above one box's low end proves it above the
/// union's). The concrete fallback evaluates against the footprint
/// region itself, which is what Storage allocates.
BoundProof proveAccessInBounds(const SafetyContext &Ctx, const ArraySymbol *A,
                               unsigned D, const SymInterval &Access) {
  BoundProof LoProof = BoundProof::Disproved;
  BoundProof HiProof = BoundProof::Disproved;
  auto It = Ctx.Boxes.All.find(A->getId());
  if (It != Ctx.Boxes.All.end()) {
    for (const SrcBox &Box : It->second) {
      if (Box.R->rank() <= D)
        continue;
      SymInterval BoxIv = SymInterval::ofDim(Box.R, D, Box.Off[D]);
      // Box.Lo >= Union.Lo is false in general; Union.Lo <= Box.Lo always
      // holds, so Access.Lo >= Box.Lo implies Access.Lo >= Union.Lo.
      BoundProof P = proveLeq(BoxIv.Lo, Access.Lo);
      if (P == BoundProof::Symbolic ||
          (P == BoundProof::Concrete && LoProof == BoundProof::Disproved))
        LoProof = P;
      P = proveLeq(Access.Hi, BoxIv.Hi);
      if (P == BoundProof::Symbolic ||
          (P == BoundProof::Concrete && HiProof == BoundProof::Disproved))
        HiProof = P;
      if (LoProof == BoundProof::Symbolic && HiProof == BoundProof::Symbolic)
        break;
    }
  }
  BoundProof Best = weakerProof(LoProof, HiProof);
  if (Best != BoundProof::Disproved)
    return Best;

  // Concrete fallback against the allocated bounding box itself.
  const Region *Alloc = Ctx.FI.boundsFor(A);
  if (!Alloc || Alloc->rank() <= D)
    return BoundProof::Disproved;
  SymInterval AllocIv{AffineBound::constant(Alloc->lo(D)),
                      AffineBound::constant(Alloc->hi(D))};
  BoundProof P = proveContains(AllocIv, Access);
  return P == BoundProof::Disproved ? BoundProof::Disproved
                                    : BoundProof::Concrete;
}

/// Checks one array access (load or store) of \p Nest against A's
/// allocation, reporting per-dimension violations.
void checkAccess(const SafetyContext &Ctx, const LoopNest &Nest,
                 const ArraySymbol *A, const Offset &Off, bool IsWrite,
                 VerifyReport &Out) {
  const Region *N = Nest.R;
  if (Off.rank() != N->rank() || A->getRank() != N->rank()) {
    Out.add(BoundsPass,
            formatString("cluster %u: access %s has rank %u but the nest "
                         "iterates rank %u",
                         Nest.ClusterId, accessName(A, Off).c_str(),
                         Off.rank(), N->rank()));
    return;
  }
  const xform::PartialPlan *Plan = Ctx.LP.partialPlanFor(A);
  for (unsigned D = 0; D < N->rank(); ++D) {
    if (Plan && Plan->isReduced(D)) {
      // Rolling-buffer dimension: the executors wrap the coordinate
      // modulo the buffer extent, so the access is in-bounds exactly
      // when the buffer is nonempty.
      if (Plan->BufferExtents[D] < 1)
        Out.add(BoundsPass,
                formatString("cluster %u: %s rolling buffer has empty "
                             "extent along dimension %u",
                             Nest.ClusterId, A->getName().c_str(), D));
      continue;
    }
    SymInterval Access = SymInterval::ofDim(N, D, Off[D]);
    ++NumBoundsProofs;
    BoundProof P;
    if (Plan) {
      // Non-reduced dimensions of a rolling buffer keep the original
      // footprint bounds; the plan's extents are concrete by design.
      Region Buf = Plan->bufferRegion();
      SymInterval BufIv{AffineBound::constant(Buf.lo(D)),
                        AffineBound::constant(Buf.hi(D))};
      P = proveContains(BufIv, Access);
      if (P == BoundProof::Symbolic)
        P = BoundProof::Concrete;
    } else {
      P = proveAccessInBounds(Ctx, A, D, Access);
    }
    if (P == BoundProof::Symbolic)
      ++NumBoundsProofsSymbolic;
    if (P == BoundProof::Disproved) {
      const Region *Alloc = Ctx.FI.boundsFor(A);
      Out.add(
          BoundsPass,
          formatString(
              "cluster %u: %s of %s ranges over %s along dimension %u but "
              "the allocated bounds are %s",
              Nest.ClusterId, IsWrite ? "store" : "load",
              accessName(A, Off).c_str(), Access.str().c_str(), D,
              Alloc ? Alloc->str().c_str() : "(no footprint)"));
    }
  }
}

void checkBounds(const SafetyContext &Ctx, VerifyReport &Out) {
  for (const auto &Node : Ctx.LP.nodes()) {
    const auto *Nest = dyn_cast<LoopNest>(Node.get());
    if (!Nest)
      continue; // Comm/opaque ops replay source accesses footprint covers.
    if (!Nest->R) {
      Out.add(BoundsPass, formatString("cluster %u: loop nest has no region",
                                       Nest->ClusterId));
      continue;
    }
    for (const ScalarStmt &SS : Nest->Body) {
      if (!SS.LHS.isScalar())
        checkAccess(Ctx, *Nest, SS.LHS.Array, SS.LHS.Off, /*IsWrite=*/true,
                    Out);
      for (const ArrayRefExpr *Ref : collectArrayRefs(SS.RHS.get()))
        checkAccess(Ctx, *Nest, Ref->getSymbol(), Ref->getOffset(),
                    /*IsWrite=*/false, Out);
    }
  }
}

/// The use-before-definition dataflow. Definedness is tracked at two
/// granularities: scalars defined for the rest of the program (source
/// scalars, accumulators after their init, scalar writes of earlier
/// nests) and scalars defined so far in the current body's single
/// iteration (contracted temporaries are re-written every iteration, so
/// a body-local write dominates only the reads after it).
void checkInit(const SafetyContext &Ctx, VerifyReport &Out) {
  const Program &P = Ctx.LP.source();

  // A reduction defines its accumulator from the ⊕ identity — the value
  // the scalar held before the nest is never consulted. So accumulation
  // targets are NOT assumed defined by the source program: each one must
  // be dominated by its ScalarInit (or an explicit earlier write).
  std::set<const ScalarSymbol *> AccTargets;
  for (const auto &Node : Ctx.LP.nodes())
    if (const auto *Nest = dyn_cast<LoopNest>(Node.get()))
      for (const ScalarStmt &SS : Nest->Body)
        if (SS.Accumulate && SS.LHS.isScalar())
          AccTargets.insert(SS.LHS.Scalar);

  std::set<const ScalarSymbol *> Persistent;
  for (const Symbol *S : P.symbols())
    if (const auto *SC = dyn_cast<ScalarSymbol>(S))
      if (!AccTargets.count(SC))
        Persistent.insert(SC);

  // Arrays written anywhere in the loop program (any nest store, opaque
  // write, or comm fill counts as producing the array's storage).
  std::set<const ArraySymbol *> WrittenArrays;
  for (const auto &Node : Ctx.LP.nodes()) {
    if (const auto *Nest = dyn_cast<LoopNest>(Node.get())) {
      for (const ScalarStmt &SS : Nest->Body)
        if (!SS.LHS.isScalar())
          WrittenArrays.insert(SS.LHS.Array);
    } else if (const auto *Op = dyn_cast<OpaqueOp>(Node.get())) {
      if (Op->Src)
        for (const ArraySymbol *A : Op->Src->arrayWrites())
          WrittenArrays.insert(A);
    }
  }

  std::set<const ArraySymbol *> ReportedArrays;
  for (const auto &Node : Ctx.LP.nodes()) {
    const auto *Nest = dyn_cast<LoopNest>(Node.get());
    if (!Nest)
      continue;
    std::set<const ScalarSymbol *> Local;
    for (const lir::ScalarInit &SI : Nest->ScalarInits)
      Local.insert(SI.Acc);
    for (const ScalarStmt &SS : Nest->Body) {
      // Reads first: an accumulation reads its own LHS.
      ++NumInitObligations;
      if (SS.Accumulate && SS.LHS.isScalar() && !Persistent.count(SS.LHS.Scalar) &&
          !Local.count(SS.LHS.Scalar))
        Out.add(InitPass,
                formatString("cluster %u: accumulator %s is combined with "
                             "%s before any ⊕-identity initialization",
                             Nest->ClusterId, SS.LHS.Scalar->getName().c_str(),
                             SS.SR->Name.c_str()));
      walkExpr(SS.RHS.get(), [&](const Expr *E) {
        if (const auto *SR = dyn_cast<ScalarRefExpr>(E)) {
          ++NumInitObligations;
          if (!Persistent.count(SR->getSymbol()) &&
              !Local.count(SR->getSymbol()))
            Out.add(InitPass,
                    formatString("cluster %u: scalar %s is read before it "
                                 "is defined",
                                 Nest->ClusterId,
                                 SR->getSymbol()->getName().c_str()));
        } else if (const auto *AR = dyn_cast<ArrayRefExpr>(E)) {
          const ArraySymbol *A = AR->getSymbol();
          ++NumInitObligations;
          if (!A->isLiveIn() && !WrittenArrays.count(A) &&
              ReportedArrays.insert(A).second)
            Out.add(InitPass,
                    formatString("cluster %u: array %s is read but never "
                                 "written and is not live-in",
                                 Nest->ClusterId, A->getName().c_str()));
        }
      });
      // Then the definition this statement makes.
      if (SS.LHS.isScalar())
        Local.insert(SS.LHS.Scalar);
    }
    // Scalar values survive the nest (reduction results feed later
    // nests); per-element contracted temporaries do too in the abstract —
    // a later read through a *different* nest would already be a fusion
    // legality violation, which pass 3 reports in the right vocabulary.
    Persistent.insert(Local.begin(), Local.end());
  }

  // Copy-out coverage: every live-out array must be written over at
  // least the box the source program writes. A scalarizer that shrinks a
  // nest region truncates the copy-out silently — the program still runs
  // sanitizer-clean, which is exactly why this is a static obligation.
  std::map<unsigned, std::vector<std::pair<const LoopNest *, Offset>>>
      LirWrites;
  for (const auto &Node : Ctx.LP.nodes())
    if (const auto *Nest = dyn_cast<LoopNest>(Node.get()))
      for (const ScalarStmt &SS : Nest->Body)
        if (!SS.LHS.isScalar())
          LirWrites[SS.LHS.Array->getId()].push_back({Nest, SS.LHS.Off});
  for (const ArraySymbol *A : P.arrays()) {
    if (!A->isLiveOut() || Ctx.LP.isContracted(A) || Ctx.LP.partialPlanFor(A))
      continue;
    auto SrcIt = Ctx.Boxes.Writes.find(A->getId());
    if (SrcIt == Ctx.Boxes.Writes.end())
      continue;
    bool OpaqueWrite = false;
    for (const auto &Node : Ctx.LP.nodes())
      if (const auto *Op = dyn_cast<OpaqueOp>(Node.get()))
        if (Op->Src && std::count(Op->Src->arrayWrites().begin(),
                                  Op->Src->arrayWrites().end(), A))
          OpaqueWrite = true;
    if (OpaqueWrite)
      continue; // The opaque statement writes whatever the source did.
    const auto &Nests = LirWrites[A->getId()];
    for (const SrcBox &Box : SrcIt->second) {
      bool Covered = false;
      for (const auto &[Nest, Off] : Nests) {
        if (!Nest->R || Nest->R->rank() != Box.R->rank() ||
            Off.rank() != Box.Off.rank())
          continue;
        BoundProof Proof = BoundProof::Symbolic;
        for (unsigned D = 0; D < Box.R->rank(); ++D)
          Proof = weakerProof(
              Proof, proveContains(SymInterval::ofDim(Nest->R, D, Off[D]),
                                   SymInterval::ofDim(Box.R, D, Box.Off[D])));
        if (Proof != BoundProof::Disproved) {
          Covered = true;
          break;
        }
      }
      if (!Covered) {
        Out.add(InitPass,
                formatString("live-out array %s: the source program writes "
                             "%s%s but no scalarized store covers it "
                             "(truncated copy-out)",
                             A->getName().c_str(), Box.R->str().c_str(),
                             Box.Off.str().c_str()));
        break;
      }
    }
  }
}

/// Concrete per-dimension write box of one nest store at the witness
/// extents, for the overlap cross-check.
struct ConcreteBox {
  std::vector<int64_t> Lo, Hi;

  static ConcreteBox of(const Region &R, const Offset &Off) {
    ConcreteBox B;
    for (unsigned D = 0; D < R.rank(); ++D) {
      B.Lo.push_back(R.lo(D) + Off[D]);
      B.Hi.push_back(R.hi(D) + Off[D]);
    }
    return B;
  }

  bool overlaps(const ConcreteBox &O) const {
    if (Lo.size() != O.Lo.size())
      return false;
    for (size_t D = 0; D < Lo.size(); ++D)
      if (Hi[D] < O.Lo[D] || O.Hi[D] < Lo[D])
        return false;
    return true;
  }
};

void checkOverlap(const SafetyContext &Ctx, const analysis::ASDG &G,
                  VerifyReport &Out) {
  // Map each source statement to the nest that carries it, then lift the
  // ASDG's statement edges to nest-level reachability.
  std::vector<const LoopNest *> Nests;
  std::map<unsigned, size_t> StmtToNest;
  for (const auto &Node : Ctx.LP.nodes())
    if (const auto *Nest = dyn_cast<LoopNest>(Node.get())) {
      for (const ScalarStmt &SS : Nest->Body)
        StmtToNest.emplace(SS.SrcStmtId, Nests.size());
      Nests.push_back(Nest);
    }
  size_t N = Nests.size();
  if (N < 2)
    return;
  // Reach[I][J] = a dependence path orders nest I before nest J.
  std::vector<std::vector<bool>> Reach(N, std::vector<bool>(N, false));
  for (const analysis::DepEdge &E : G.edges()) {
    auto SIt = StmtToNest.find(E.Src), TIt = StmtToNest.find(E.Tgt);
    if (SIt != StmtToNest.end() && TIt != StmtToNest.end() &&
        SIt->second != TIt->second)
      Reach[SIt->second][TIt->second] = true;
  }
  for (size_t K = 0; K < N; ++K)
    for (size_t I = 0; I < N; ++I)
      if (Reach[I][K])
        for (size_t J = 0; J < N; ++J)
          if (Reach[K][J])
            Reach[I][J] = true;

  // Write boxes per nest per array.
  for (size_t I = 0; I < N; ++I) {
    if (!Nests[I]->R)
      continue;
    for (size_t J = I + 1; J < N; ++J) {
      if (!Nests[J]->R || Nests[I]->ClusterId == Nests[J]->ClusterId)
        continue;
      if (Reach[I][J] || Reach[J][I])
        continue;
      for (const ScalarStmt &SA : Nests[I]->Body) {
        if (SA.LHS.isScalar())
          continue;
        for (const ScalarStmt &SB : Nests[J]->Body) {
          if (SB.LHS.isScalar() || SA.LHS.Array != SB.LHS.Array)
            continue;
          ConcreteBox BA = ConcreteBox::of(*Nests[I]->R, SA.LHS.Off);
          ConcreteBox BB = ConcreteBox::of(*Nests[J]->R, SB.LHS.Off);
          if (BA.overlaps(BB)) {
            Out.add(OverlapPass,
                    formatString("clusters %u and %u both write %s over "
                                 "overlapping elements but no dependence "
                                 "path orders them",
                                 Nests[I]->ClusterId, Nests[J]->ClusterId,
                                 SA.LHS.Array->getName().c_str()));
            goto nextPair;
          }
        }
      }
    nextPair:;
    }
  }
}

} // namespace

VerifyReport verify::verifySafety(const LoopProgram &LP,
                                  const analysis::ASDG *G) {
  ++NumSafetyChecks;
  VerifyReport Out;
  SafetyContext Ctx(LP);
  checkBounds(Ctx, Out);
  checkInit(Ctx, Out);
  if (G)
    checkOverlap(Ctx, *G, Out);
  NumSafetyFindings += Out.Findings.size();
  return Out;
}

//===- verify/Lint.h - Frontend source diagnostics -------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-level lint over a freshly parsed (pre-normalization) program,
/// driving `zplc --lint`. Reported with `file:line:col:` positions so
/// editors and CI can jump to them:
///
///  * error:   a right-hand-side array whose rank differs from the
///    statement's region rank (the parser only checks the target);
///  * error:   a read of an array that is not live-in before anything
///    writes it (the value is undefined in the source language; the
///    interpreter's zero-fill masks the bug);
///  * error:   a read whose footprint leaves the union of every write
///    footprint the program has for that array — the constant offset is
///    out of range, naming elements nothing ever defines;
///  * warning: a read whose footprint (region shifted by the reference
///    offset) leaves the union of the footprints written so far — the
///    halo elements read as uninitialized;
///  * warning: a dead statement — it writes an array that is not
///    live-out and is never read afterwards;
///  * warning: an array that is declared but never referenced.
///
/// Statement positions come from the parser (ParseResult::StmtPositions)
/// as plain (line, column) pairs so this layer stays independent of the
/// frontend. Lint must run before normalization: normalization inserts
/// statements, which would misalign ids and positions.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_VERIFY_LINT_H
#define ALF_VERIFY_LINT_H

#include "ir/Program.h"

#include <string>
#include <utility>
#include <vector>

namespace alf {
namespace verify {

enum class LintSeverity { Warning, Error };

/// Printable name ("warning", "error").
const char *getLintSeverityName(LintSeverity S);

/// One diagnostic. Line/Col are 1-based; 0 means "no position" (e.g.
/// declaration-level findings).
struct LintDiag {
  LintSeverity Severity = LintSeverity::Warning;
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Message;

  /// Renders as "file:line:col: severity: message" (position omitted
  /// when unknown).
  std::string render(const std::string &FileName) const;
};

/// All diagnostics of one lint run, in source order.
struct LintResult {
  std::vector<LintDiag> Diags;

  bool hasErrors() const;

  /// One render()ed diagnostic per line (empty string when clean).
  std::string render(const std::string &FileName) const;

  /// Process exit code for lint drivers: 1 when any error, else 0.
  int exitCode() const { return hasErrors() ? 1 : 0; }
};

/// Lints \p P. \p StmtPositions maps statement ids (parse order) to
/// (line, column); statements beyond its end render without a position.
LintResult
lintProgram(const ir::Program &P,
            const std::vector<std::pair<unsigned, unsigned>> &StmtPositions =
                {});

} // namespace verify
} // namespace alf

#endif // ALF_VERIFY_LINT_H

//===- obs/Obs.h - Structured tracing and kernel metrics -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline's observability layer: lightweight RAII spans recorded
/// into a per-process buffer, exported as Chrome `trace_event` JSON
/// (load the file at chrome://tracing or ui.perfetto.dev) and as an
/// aggregated per-phase/per-kernel metrics table (count, total/p50/p95
/// wall time, bytes moved). Everything is gated behind a single global
/// level so instrumented code pays one relaxed atomic load when
/// observability is off:
///
///   ObsLevel::Off       — spans are inert; nothing is recorded.
///   ObsLevel::Counters  — spans feed the aggregated metrics table only.
///   ObsLevel::Trace     — additionally, every span/instant becomes one
///                         Chrome trace event with thread id and nesting.
///
/// Usage:
/// \code
///   {
///     obs::Span S("pipeline.asdg");          // timed while in scope
///     ... build ...
///     S.setBytes(G.sizeBytes());             // optional volume
///   }
///   obs::instant("jit.cache.memory_hit");    // zero-duration event
/// \endcode
///
/// Span names are dotted phase paths ("pipeline.scalarize",
/// "exec.interpreter", "kernel.nest0", "runtime.flush"); the metrics
/// table aggregates by exact name. The default level comes from the
/// ALF_OBS environment variable ("off" | "counters" | "trace"), else
/// Off; tools expose it as `--trace=out.json` (implies Trace).
///
/// Thread behaviour: spans may open and close on any thread. Each
/// thread gets a small stable tid (registration order) and its own
/// nesting depth, so traces from the parallel executor render as
/// per-thread lanes. Recording takes a mutex at span *end* only — span
/// begin is two clock reads away from free — which is negligible at
/// phase/kernel granularity.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_OBS_OBS_H
#define ALF_OBS_OBS_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace alf {
namespace obs {

/// How much the process records. Ordered: each level includes the work
/// of the previous one.
enum class ObsLevel : int {
  Off = 0,      ///< No recording; spans cost one atomic load.
  Counters = 1, ///< Aggregated metrics only (no per-event storage).
  Trace = 2,    ///< Metrics plus the full Chrome-exportable event trace.
};

/// Printable level name ("off", "counters", "trace").
const char *getObsLevelName(ObsLevel L);

/// Parses a level name; nullopt when unknown.
std::optional<ObsLevel> obsLevelNamed(const std::string &Name);

/// The process-wide level. Defaults to $ALF_OBS (else Off), read once.
ObsLevel level();
void setLevel(ObsLevel L);

namespace detail {
extern std::atomic<int> LevelRaw; ///< -1 until initialized from $ALF_OBS.
ObsLevel levelSlow();
} // namespace detail

/// True when anything at all is being recorded.
inline bool enabled() {
  int Raw = detail::LevelRaw.load(std::memory_order_relaxed);
  if (Raw < 0)
    return detail::levelSlow() != ObsLevel::Off;
  return Raw != 0;
}

/// True when the full event trace is being recorded.
inline bool tracing() {
  int Raw = detail::LevelRaw.load(std::memory_order_relaxed);
  if (Raw < 0)
    return detail::levelSlow() == ObsLevel::Trace;
  return Raw == static_cast<int>(ObsLevel::Trace);
}

/// Restores the previous level on destruction (tests, tools).
class ScopedLevel {
  ObsLevel Saved;

public:
  explicit ScopedLevel(ObsLevel L) : Saved(level()) { setLevel(L); }
  ~ScopedLevel() { setLevel(Saved); }
  ScopedLevel(const ScopedLevel &) = delete;
  ScopedLevel &operator=(const ScopedLevel &) = delete;
};

/// One RAII span: wall time from construction to destruction, attributed
/// to \p Name. \p Name must have static storage duration (pass string
/// literals); \p Detail may be dynamic and lands in the trace event's
/// args. Inert (no clock read, no allocation) when the level is Off.
class Span {
public:
  explicit Span(const char *Name);
  Span(const char *Name, std::string Detail);
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attributes \p N bytes of data movement to this span (shows up in
  /// the metrics table's bytes column and the trace event args).
  void setBytes(uint64_t N) { Bytes = N; }
  void addBytes(uint64_t N) { Bytes += N; }

  bool active() const { return Active; }

private:
  const char *Name = nullptr;
  std::string Detail;
  uint64_t StartNs = 0;
  uint64_t Bytes = 0;
  bool Active = false;
  bool WantTrace = false;
};

/// Records a zero-duration instant event (a "something happened" mark:
/// cache hit, fallback, eviction). Counts into the metrics table at
/// Counters and above; becomes a `ph:"i"` trace event at Trace.
void instant(const char *Name);
void instant(const char *Name, std::string Detail);

/// One recorded trace event, exposed for tests. Times are nanoseconds
/// since the process's trace epoch.
struct TraceEvent {
  const char *Name;
  std::string Detail;
  char Ph;          ///< 'X' complete span, 'i' instant.
  uint64_t StartNs; ///< begin (or instant) time
  uint64_t DurNs;   ///< 0 for instants
  uint64_t Bytes;
  unsigned Tid;   ///< small stable per-thread id (registration order)
  unsigned Depth; ///< span nesting depth on that thread at begin
};

/// Snapshot of the recorded events, in completion order.
std::vector<TraceEvent> traceEvents();
size_t numTraceEvents();

/// Events dropped because the trace buffer hit its cap (the metrics
/// table keeps aggregating regardless).
uint64_t numDroppedEvents();

/// One row of the aggregated metrics table.
struct MetricRow {
  std::string Name;
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t P50Ns = 0;
  uint64_t P95Ns = 0;
  uint64_t MaxNs = 0;
  uint64_t Bytes = 0;
};

/// All rows, sorted by name (deterministic across runs).
std::vector<MetricRow> metricsTable();

/// The row of one span/instant name; nullopt when never recorded.
std::optional<MetricRow> metricsFor(const std::string &Name);

/// Writes the metrics table as aligned text (tools' --metrics output).
void writeMetricsTable(std::ostream &OS);

/// Writes the whole trace in Chrome trace_event JSON object format:
/// `{"displayTimeUnit":"ms","traceEvents":[...]}`, each event carrying
/// name/cat/ph/ts/dur/pid/tid (ts and dur in microseconds) plus
/// args.{detail,bytes,depth} when present. Loadable by chrome://tracing
/// and Perfetto as-is.
void writeChromeTrace(std::ostream &OS);

/// writeChromeTrace into \p Path; false (with no partial file kept) on
/// I/O failure.
bool writeChromeTraceFile(const std::string &Path);

/// Clears recorded events and metrics (not the level, not thread ids).
void reset();

} // namespace obs
} // namespace alf

#endif // ALF_OBS_OBS_H

//===- obs/Obs.cpp - Structured tracing and kernel metrics ------------------===//

#include "obs/Obs.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

using namespace alf;
using namespace alf::obs;

namespace {

/// Upper bound on stored trace events; phase/kernel granularity stays
/// far below this, but a runaway caller must not exhaust memory. Beyond
/// the cap events are dropped (and counted); metrics keep aggregating.
constexpr size_t MaxEvents = 1 << 20;

/// Per-name aggregation. Samples are kept raw for exact percentiles;
/// at phase granularity the vectors stay small, and reset() clears them
/// (the bench runner resets between benchmarks).
struct Agg {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t MaxNs = 0;
  uint64_t Bytes = 0;
  std::vector<uint64_t> Samples;
};

struct Registry {
  std::mutex Mutex;
  std::vector<TraceEvent> Events;
  uint64_t Dropped = 0;
  std::map<std::string, Agg> Metrics;
  unsigned NextTid = 0;
};

Registry &registry() {
  static Registry R;
  return R;
}

std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - traceEpoch())
          .count());
}

struct ThreadState {
  unsigned Tid = ~0u;
  unsigned Depth = 0;
};

ThreadState &threadState() {
  thread_local ThreadState TS;
  if (TS.Tid == ~0u) {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    TS.Tid = R.NextTid++;
  }
  return TS;
}

/// Records one finished event: always into the metrics, into the event
/// buffer only when \p WantTrace.
void record(const char *Name, std::string Detail, char Ph, uint64_t StartNs,
            uint64_t DurNs, uint64_t Bytes, unsigned Tid, unsigned Depth,
            bool WantTrace) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  Agg &A = R.Metrics[Name];
  ++A.Count;
  A.TotalNs += DurNs;
  A.MaxNs = std::max(A.MaxNs, DurNs);
  A.Bytes += Bytes;
  A.Samples.push_back(DurNs);
  if (!WantTrace)
    return;
  if (R.Events.size() >= MaxEvents) {
    ++R.Dropped;
    return;
  }
  TraceEvent E;
  E.Name = Name;
  E.Detail = std::move(Detail);
  E.Ph = Ph;
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  E.Bytes = Bytes;
  E.Tid = Tid;
  E.Depth = Depth;
  R.Events.push_back(std::move(E));
}

/// Percentile by nearest-rank over a sorted copy.
uint64_t percentile(std::vector<uint64_t> Samples, double P) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  size_t Rank = static_cast<size_t>(P * static_cast<double>(Samples.size()));
  if (Rank >= Samples.size())
    Rank = Samples.size() - 1;
  return Samples[Rank];
}

/// Escapes \p S for a JSON string literal (control chars, quote,
/// backslash).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

} // namespace

std::atomic<int> obs::detail::LevelRaw{-1};

ObsLevel obs::detail::levelSlow() {
  // First query: seed from $ALF_OBS. Races here are benign (every racer
  // computes the same value).
  ObsLevel L = ObsLevel::Off;
  if (const char *Env = std::getenv("ALF_OBS"))
    if (std::optional<ObsLevel> Parsed = obsLevelNamed(Env))
      L = *Parsed;
  int Expected = -1;
  LevelRaw.compare_exchange_strong(Expected, static_cast<int>(L),
                                   std::memory_order_relaxed);
  return static_cast<ObsLevel>(LevelRaw.load(std::memory_order_relaxed));
}

const char *obs::getObsLevelName(ObsLevel L) {
  switch (L) {
  case ObsLevel::Off:
    return "off";
  case ObsLevel::Counters:
    return "counters";
  case ObsLevel::Trace:
    return "trace";
  }
  return "?";
}

std::optional<ObsLevel> obs::obsLevelNamed(const std::string &Name) {
  if (Name == "off")
    return ObsLevel::Off;
  if (Name == "counters")
    return ObsLevel::Counters;
  if (Name == "trace")
    return ObsLevel::Trace;
  return std::nullopt;
}

ObsLevel obs::level() {
  int Raw = detail::LevelRaw.load(std::memory_order_relaxed);
  if (Raw < 0)
    return detail::levelSlow();
  return static_cast<ObsLevel>(Raw);
}

void obs::setLevel(ObsLevel L) {
  detail::LevelRaw.store(static_cast<int>(L), std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Span / instant
//===----------------------------------------------------------------------===//

Span::Span(const char *Name) : Name(Name) {
  if (!obs::enabled())
    return;
  Active = true;
  WantTrace = obs::tracing();
  StartNs = nowNs();
  ++threadState().Depth;
}

Span::Span(const char *Name, std::string InDetail) : Span(Name) {
  if (Active)
    Detail = std::move(InDetail);
}

Span::~Span() {
  if (!Active)
    return;
  uint64_t EndNs = nowNs();
  ThreadState &TS = threadState();
  --TS.Depth;
  record(Name, std::move(Detail), 'X', StartNs, EndNs - StartNs, Bytes,
         TS.Tid, TS.Depth, WantTrace);
}

void obs::instant(const char *Name) { instant(Name, std::string()); }

void obs::instant(const char *Name, std::string Detail) {
  if (!enabled())
    return;
  ThreadState &TS = threadState();
  record(Name, std::move(Detail), 'i', nowNs(), 0, 0, TS.Tid, TS.Depth,
         tracing());
}

//===----------------------------------------------------------------------===//
// Queries and export
//===----------------------------------------------------------------------===//

std::vector<TraceEvent> obs::traceEvents() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Events;
}

size_t obs::numTraceEvents() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Events.size();
}

uint64_t obs::numDroppedEvents() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Dropped;
}

std::vector<MetricRow> obs::metricsTable() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<MetricRow> Rows;
  Rows.reserve(R.Metrics.size());
  for (const auto &[Name, A] : R.Metrics) {
    MetricRow Row;
    Row.Name = Name;
    Row.Count = A.Count;
    Row.TotalNs = A.TotalNs;
    Row.MaxNs = A.MaxNs;
    Row.Bytes = A.Bytes;
    Row.P50Ns = percentile(A.Samples, 0.50);
    Row.P95Ns = percentile(A.Samples, 0.95);
    Rows.push_back(std::move(Row));
  }
  // std::map iteration is already name-sorted; keep that contract
  // explicit for readers.
  return Rows;
}

std::optional<MetricRow> obs::metricsFor(const std::string &Name) {
  for (MetricRow &Row : metricsTable())
    if (Row.Name == Name)
      return std::move(Row);
  return std::nullopt;
}

void obs::writeMetricsTable(std::ostream &OS) {
  std::vector<MetricRow> Rows = metricsTable();
  OS << "=== Observability metrics ===\n";
  OS << formatString("%-28s %8s %12s %12s %12s %12s\n", "span", "count",
                     "total_us", "p50_us", "p95_us", "bytes");
  for (const MetricRow &Row : Rows)
    OS << formatString("%-28s %8llu %12.1f %12.1f %12.1f %12llu\n",
                       Row.Name.c_str(),
                       static_cast<unsigned long long>(Row.Count),
                       static_cast<double>(Row.TotalNs) / 1e3,
                       static_cast<double>(Row.P50Ns) / 1e3,
                       static_cast<double>(Row.P95Ns) / 1e3,
                       static_cast<unsigned long long>(Row.Bytes));
}

void obs::writeChromeTrace(std::ostream &OS) {
  std::vector<TraceEvent> Events = traceEvents();
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      OS << ',';
    First = false;
    // Chrome wants ts/dur in microseconds; fractional keeps ns fidelity.
    OS << formatString("\n{\"name\":\"%s\",\"cat\":\"alf\",\"ph\":\"%c\","
                       "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                       jsonEscape(E.Name).c_str(), E.Ph,
                       static_cast<double>(E.StartNs) / 1e3,
                       static_cast<double>(E.DurNs) / 1e3, E.Tid);
    if (E.Ph == 'i')
      OS << ",\"s\":\"t\""; // instant scope: thread
    OS << formatString(",\"args\":{\"depth\":%u", E.Depth);
    if (E.Bytes)
      OS << formatString(",\"bytes\":%llu",
                         static_cast<unsigned long long>(E.Bytes));
    if (!E.Detail.empty())
      OS << ",\"detail\":\"" << jsonEscape(E.Detail) << '"';
    OS << "}}";
  }
  OS << "\n]}\n";
}

bool obs::writeChromeTraceFile(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  writeChromeTrace(Out);
  Out.flush();
  if (!Out) {
    std::remove(Path.c_str());
    return false;
  }
  return true;
}

void obs::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Events.clear();
  R.Dropped = 0;
  R.Metrics.clear();
}

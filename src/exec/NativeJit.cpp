//===- exec/NativeJit.cpp - Native JIT kernel backend -----------------------===//

#include "exec/NativeJit.h"

#include "exec/Eval.h"
#include "obs/Obs.h"
#include "scalarize/CEmitter.h"
#include "support/Process.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace alf;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;

namespace {

ALF_STATISTIC(NumJitRuns, "jit", "Executions dispatched to the native backend");
ALF_STATISTIC(NumJitCompiles, "jit", "Kernel compiler invocations");
ALF_STATISTIC(NumJitCompileFailures, "jit",
              "Compiler invocations that failed or timed out");
ALF_STATISTIC(NumJitCacheMemoryHits, "jit",
              "Kernels served from the in-memory cache");
ALF_STATISTIC(NumJitCacheDiskHits, "jit",
              "Kernels loaded from the on-disk cache");
ALF_STATISTIC(NumJitCacheCorrupt, "jit",
              "Corrupt on-disk cache entries discarded");
ALF_STATISTIC(NumJitFallbacks, "jit",
              "Runs that fell back to the sequential interpreter");
ALF_STATISTIC(NumJitCacheEvictions, "jit",
              "On-disk cache entries evicted by the size bound");
ALF_STATISTIC(NumSanitizedRuns, "jit",
              "Out-of-process sanitizer oracle executions");
ALF_STATISTIC(NumSanitizedReports, "jit",
              "Sanitizer oracle runs that reported a violation");
ALF_STATISTIC(NumVectorizedNests, "jit.vectorize",
              "Loop nests emitted as SIMD loops");
ALF_STATISTIC(NumVectorizeFallbacks, "jit.vectorize",
              "Loop nests the SIMD legality check refused");
ALF_STATISTIC(NumVectorizedRuns, "jit.vectorize",
              "Vectorize-mode runs with at least one SIMD nest");

/// The kernel function name inside every emitted module.
constexpr const char *KernelName = "alf_kernel";

std::string defaultCacheDir() {
  if (const char *Env = std::getenv("ALF_JIT_CACHE_DIR"))
    if (*Env)
      return Env;
  std::error_code EC;
  std::filesystem::path Tmp = std::filesystem::temp_directory_path(EC);
  if (EC)
    Tmp = "/tmp";
  return (Tmp / "alf-kernel-cache").string();
}

/// Content hash of one kernel: emitted source + compile command +
/// compiler version. Any of the three changing yields a new cache entry.
uint64_t contentHash(const std::string &Source, const JitOptions &Opts,
                     const std::string &CompilerVersion) {
  return hashName(Source + '\x1f' + Opts.Compiler + ' ' + Opts.Flags +
                  '\x1f' + CompilerVersion);
}

std::string soPathFor(const std::string &CacheDir, uint64_t Hash) {
  return CacheDir + "/" +
         formatString("alf-%016llx.so",
                      static_cast<unsigned long long>(Hash));
}

uint64_t fileSizeOrZero(const std::filesystem::path &P) {
  std::error_code EC;
  uint64_t Size = std::filesystem::file_size(P, EC);
  return EC ? 0 : Size;
}

/// Shrinks the cache directory to \p MaxBytes by deleting whole entries
/// (.so plus paired .c) oldest-mtime first, never touching \p KeepSo.
/// Eviction only ever removes alf-*.so entries, so foreign files in a
/// shared temp directory are counted but left alone.
void evictCacheOverage(const std::string &CacheDir, uint64_t MaxBytes,
                       const std::string &KeepSo) {
  namespace fs = std::filesystem;
  struct Entry {
    fs::path So;
    fs::file_time_type MTime;
    uint64_t Bytes;
  };
  std::error_code EC;
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  for (const auto &DirEnt : fs::directory_iterator(CacheDir, EC)) {
    if (!DirEnt.is_regular_file(EC))
      continue;
    fs::path P = DirEnt.path();
    if (P.filename().string().rfind("alf-", 0) != 0)
      continue;
    uint64_t Size = fileSizeOrZero(P);
    Total += Size;
    if (P.extension() != ".so")
      continue;
    Entry E;
    E.So = P;
    E.MTime = fs::last_write_time(P, EC);
    fs::path Src = P;
    Src.replace_extension(".c");
    E.Bytes = Size + fileSizeOrZero(Src);
    Entries.push_back(std::move(E));
  }
  if (Total <= MaxBytes)
    return;
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.MTime < B.MTime; });
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (E.So.string() == KeepSo)
      continue;
    fs::path Src = E.So;
    Src.replace_extension(".c");
    fs::remove(E.So, EC);
    fs::remove(Src, EC);
    Total = Total > E.Bytes ? Total - E.Bytes : 0;
    ++NumJitCacheEvictions;
  }
}

} // namespace

JitEngine::JitEngine(JitOptions InOpts) : Opts(std::move(InOpts)) {
  if (Opts.CacheDir.empty())
    Opts.CacheDir = defaultCacheDir();
  // The vectorizing tier targets the host ISA: a JIT kernel runs on the
  // machine that compiled it, and without -march=native the compiler
  // lowers the emitted generic-vector ops to the portable SSE2 baseline
  // — scalarizing 4-lane compares and selects through memory, which is
  // slower than the scalar tier it is supposed to beat. -ffp-contract=off
  // still governs, and -O2 never reassociates FP, so the tier's only
  // numeric divergence remains the declared lane-fold reassociation.
  // (The scalar tier keeps the pinned portable flags; both flag strings
  // feed the content hash, so the tiers never collide in the cache.)
  // Vector types wider than the target's native registers also change
  // the ABI of the by-value lane helpers; they are module-internal
  // (static), so the -Wpsabi note is noise — silence it without
  // touching the correctness flags.
  if (Opts.Vectorize)
    Opts.Flags += " -march=native -Wno-psabi";
}

JitEngine::~JitEngine() {
  for (auto &[Hash, Kernel] : Kernels)
    if (Kernel.Handle)
      dlclose(Kernel.Handle);
}

bool JitEngine::compilerAvailable(const JitOptions &Opts) {
  return runCommand(Opts.Compiler + " --version > /dev/null").ok();
}

const std::string &JitEngine::compilerVersion() {
  if (!CompilerVersionProbed) {
    CompilerVersion = commandFirstLine(Opts.Compiler + " --version");
    CompilerVersionProbed = true;
  }
  return CompilerVersion;
}

JitEngine::LoadedKernel *JitEngine::kernelFor(const scalarize::CModule &Module,
                                              JitRunInfo &Info,
                                              std::string &WhyNot) {
  uint64_t Hash;
  {
    std::unique_lock<std::mutex> Lock(Mutex);

    std::string Version = compilerVersion();
    if (Version.empty()) {
      WhyNot = "compiler '" + Opts.Compiler + "' is not available";
      return nullptr;
    }

    Hash = contentHash(Module.Source, Opts, Version);
    Info.SoPath = soPathFor(Opts.CacheDir, Hash);

    // Single-flight admission: either the kernel is loaded (hit), or
    // someone else is compiling it (wait, then re-check), or this thread
    // claims the hash and compiles it below, unlocked. A waiter whose
    // winner failed falls out of the wait loop and becomes the next
    // compiler — failures are not negative-cached.
    for (;;) {
      auto It = Kernels.find(Hash);
      if (It != Kernels.end()) {
        Info.CacheHitMemory = true;
        ++NumJitCacheMemoryHits;
        obs::instant("jit.cache.memory_hit");
        return &It->second;
      }
      if (!InFlight.count(Hash)) {
        InFlight.insert(Hash);
        break;
      }
      InFlightDone.wait(Lock);
    }
  }

  // From here the hash is claimed: every exit must release it and wake
  // the waiters, whether a kernel was installed or not.
  LoadedKernel Compiled;
  std::string FailReason;
  compileAndLoad(Module, Info, Compiled, FailReason);

  std::lock_guard<std::mutex> Lock(Mutex);
  InFlight.erase(Hash);
  InFlightDone.notify_all();
  if (!Compiled.Entry) {
    WhyNot = std::move(FailReason);
    return nullptr;
  }
  assert(!Kernels.count(Hash) &&
         "single-flight violated: kernel compiled twice");
  return &Kernels.emplace(Hash, Compiled).first->second;
}

/// The unlocked slice of kernelFor: disk-cache probe, compile, install,
/// dlopen. Runs with the content hash claimed in InFlight, so no other
/// thread of this engine works on the same entry; cross-process races on
/// the shared directory are handled by the write-temp-then-rename
/// install. On success \p Out holds an open handle and entry pointer; on
/// failure \p WhyNot explains the rung that broke.
void JitEngine::compileAndLoad(const scalarize::CModule &Module,
                               JitRunInfo &Info, LoadedKernel &Out,
                               std::string &WhyNot) {
  auto LoadEntry = [&](void *Handle) -> bool {
    void *Sym = dlsym(Handle, Module.EntryName.c_str());
    if (!Sym)
      return false;
    Out.Handle = Handle;
    Out.Entry = reinterpret_cast<void (*)(double **, double *)>(Sym);
    return true;
  };

  std::error_code EC;
  // Warm path: a previous process (or CI run) compiled this kernel.
  if (std::filesystem::exists(Info.SoPath, EC)) {
    void *Handle = dlopen(Info.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (Handle) {
      if (LoadEntry(Handle)) {
        Info.CacheHitDisk = true;
        ++NumJitCacheDiskHits;
        obs::instant("jit.cache.disk_hit");
        // Refresh the entry's age so the LRU eviction bound keeps hot
        // kernels and drops cold ones.
        std::filesystem::last_write_time(
            Info.SoPath, std::filesystem::file_time_type::clock::now(), EC);
        return;
      }
      dlclose(Handle);
    }
    // Unloadable or missing the entry symbol: a corrupt or stale entry.
    // Discard it and recompile below.
    ++NumJitCacheCorrupt;
    std::filesystem::remove(Info.SoPath, EC);
  }

  // Cold path: write the source next to the object and compile into a
  // temp file, renaming only on success so concurrent processes never see
  // a half-written entry.
  std::filesystem::create_directories(Opts.CacheDir, EC);
  std::string SrcPath =
      Info.SoPath.substr(0, Info.SoPath.size() - 3) + ".c";
  {
    std::ofstream Src(SrcPath);
    Src << Module.Source;
    if (!Src) {
      WhyNot = "cannot write kernel source to " + SrcPath;
      return;
    }
  }
  std::string TmpSo = Info.SoPath + formatString(".tmp%d", getpid());
  std::string Cmd = Opts.Compiler + " " + Opts.Flags + " -o " + TmpSo + " " +
                    SrcPath + " -lm";
  Info.Compiled = true;
  ++NumJitCompiles;
  CommandResult CR = [&] {
    obs::Span S("jit.compile");
    return runCommand(Cmd, Opts.CompileTimeoutSec);
  }();
  if (!CR.ok()) {
    ++NumJitCompileFailures;
    std::filesystem::remove(TmpSo, EC);
    WhyNot = CR.TimedOut
                 ? formatString("compiler exceeded the %u s CPU budget",
                                Opts.CompileTimeoutSec)
                 : "compile failed: " +
                       (CR.Output.empty() ? "exit " +
                                                std::to_string(CR.ExitCode)
                                          : CR.Output);
    return;
  }
  std::filesystem::rename(TmpSo, Info.SoPath, EC);
  if (EC) {
    std::filesystem::remove(TmpSo, EC);
    WhyNot = "cannot install compiled kernel into the cache";
    return;
  }
  if (Opts.MaxCacheBytes)
    evictCacheOverage(Opts.CacheDir, Opts.MaxCacheBytes, Info.SoPath);

  void *Handle = dlopen(Info.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Err = dlerror();
    WhyNot = std::string("dlopen failed: ") + (Err ? Err : "unknown error");
    return;
  }
  if (LoadEntry(Handle))
    return;
  dlclose(Handle);
  WhyNot = "entry symbol '" + Module.EntryName + "' missing from kernel";
}

void JitEngine::runOnStorage(const LoopProgram &LP, Storage &Store,
                             JitRunInfo *OutInfo) {
  ++NumJitRuns;
  JitRunInfo Info;
  std::string WhyNot;
  scalarize::CEmitOptions EmitOpts;
  EmitOpts.Vectorize = Opts.Vectorize;
  EmitOpts.VectorWidth = Opts.VectorWidth;
  scalarize::CModule Module = [&] {
    obs::Span S(Opts.Vectorize ? "jit.vectorize" : "jit.emit");
    return scalarize::emitCModule(LP, KernelName, EmitOpts);
  }();
  if (Opts.Vectorize && Module.ok()) {
    Info.VectorizedNests = Module.NumVectorizedNests;
    Info.VectorFallbacks = Module.NumVectorFallbacks;
    Info.Reassociated = Module.Reassociated;
    NumVectorizedNests += Module.NumVectorizedNests;
    NumVectorizeFallbacks += Module.NumVectorFallbacks;
    if (Module.NumVectorizedNests)
      ++NumVectorizedRuns;
    for (unsigned I = 0; I < Module.NumVectorFallbacks; ++I)
      obs::instant("jit.vectorize.fallback");
  }
  LoadedKernel *Kernel = nullptr;
  if (!Module.ok())
    WhyNot = "emission failed: " + Module.Error;
  else
    Kernel = kernelFor(Module, Info, WhyNot);

  // Marshal the caller-owned buffers in the module's argument order. The
  // emitter's layouts are computed from the same footprint bounds (and
  // partial-contraction overrides) Storage allocates with, so raw
  // pointers line up element for element.
  std::vector<double *> Arrays;
  if (Kernel) {
    Arrays.reserve(Module.Arrays.size());
    for (const ArraySymbol *A : Module.Arrays) {
      ArrayBuffer *Buf = Store.buffer(A);
      if (!Buf) {
        WhyNot = "array '" + A->getName() + "' missing from storage";
        Kernel = nullptr;
        break;
      }
      Arrays.push_back(Buf->data());
    }
  }
  if (!Kernel) {
    ++NumJitFallbacks;
    Info.FallbackReason = WhyNot;
    if (OutInfo)
      *OutInfo = Info;
    exec::runOnStorage(LP, Store);
    return;
  }

  std::vector<double> Scalars;
  Scalars.reserve(Module.Scalars.size());
  for (const ScalarSymbol *S : Module.Scalars)
    Scalars.push_back(Store.getScalar(S));

  {
    obs::Span S("jit.dispatch");
    if (S.active())
      S.setBytes(Store.totalBytes());
    Kernel->Entry(Arrays.data(), Scalars.data());
  }

  for (size_t I = 0; I < Module.Scalars.size(); ++I)
    Store.setScalar(Module.Scalars[I], Scalars[I]);

  Info.UsedJit = true;
  if (OutInfo)
    *OutInfo = Info;
}

RunResult JitEngine::run(const LoopProgram &LP, uint64_t Seed,
                         JitRunInfo *OutInfo) {
  Storage Store = allocateStorage(LP, Seed);
  runOnStorage(LP, Store, OutInfo);
  return collectResults(LP, Store);
}

std::string JitEngine::cachePathFor(const LoopProgram &LP) {
  scalarize::CModule Module = scalarize::emitCModule(LP, KernelName);
  if (!Module.ok())
    return "";
  std::lock_guard<std::mutex> Lock(Mutex);
  return soPathFor(Opts.CacheDir,
                   contentHash(Module.Source, Opts, compilerVersion()));
}

RunResult exec::runNativeJit(const LoopProgram &LP, uint64_t Seed,
                             JitRunInfo *Info) {
  static JitEngine SharedEngine;
  return SharedEngine.run(LP, Seed, Info);
}

RunResult exec::runNativeJitSimd(const LoopProgram &LP, uint64_t Seed,
                                 JitRunInfo *Info) {
  static JitEngine SharedEngine([] {
    JitOptions Opts;
    Opts.Vectorize = true;
    return Opts;
  }());
  return SharedEngine.run(LP, Seed, Info);
}

SanitizedRunResult exec::runSanitized(const LoopProgram &LP, uint64_t Seed,
                                      const JitOptions &InOpts) {
  SanitizedRunResult R;
  if (!InOpts.Sanitize) {
    R.Output = "sanitizer oracle disabled (JitOptions::Sanitize is off)";
    return R;
  }
  JitOptions Opts = InOpts;
  if (Opts.CacheDir.empty())
    Opts.CacheDir = defaultCacheDir();

  scalarize::CEmitOptions EmitOpts;
  EmitOpts.Vectorize = Opts.Vectorize;
  EmitOpts.VectorWidth = Opts.VectorWidth;
  if (Opts.Vectorize)
    Opts.SanitizeFlags += " -march=native -Wno-psabi";
  scalarize::CEmitResult Src =
      scalarize::emitCWithHarnessChecked(LP, KernelName, Seed, EmitOpts);
  if (!Src.ok()) {
    R.Output = "emission failed: " + Src.Error;
    return R;
  }

  // The harness is pid-suffixed and deleted after the run: a sanitized
  // executable is an oracle verdict, not a reusable kernel, so it never
  // enters the shared .so cache.
  std::error_code EC;
  std::filesystem::create_directories(Opts.CacheDir, EC);
  uint64_t Hash = hashName(Src.Source + '\x1f' + Opts.Compiler + ' ' +
                           Opts.SanitizeFlags);
  std::string Base =
      Opts.CacheDir + "/" +
      formatString("alf-san-%016llx-%d",
                   static_cast<unsigned long long>(Hash), getpid());
  std::string SrcPath = Base + ".c";
  std::string ExePath = Base + ".bin";
  {
    std::ofstream Out(SrcPath);
    Out << Src.Source;
    if (!Out) {
      R.Output = "cannot write harness source to " + SrcPath;
      return R;
    }
  }
  std::string Cmd = Opts.Compiler + " " + Opts.SanitizeFlags + " -o " +
                    ExePath + " " + SrcPath + " -lm";
  CommandResult Compile = [&] {
    obs::Span S("jit.sanitize.compile");
    return runCommand(Cmd, Opts.CompileTimeoutSec);
  }();
  if (!Compile.ok()) {
    std::filesystem::remove(SrcPath, EC);
    std::filesystem::remove(ExePath, EC);
    R.Output = Compile.TimedOut
                   ? formatString("sanitized compile exceeded the %u s "
                                  "CPU budget",
                                  Opts.CompileTimeoutSec)
                   : "sanitized compile failed: " + Compile.Output;
    return R;
  }

  ++NumSanitizedRuns;
  CommandResult Run = [&] {
    obs::Span S("jit.sanitize.run");
    return runCommand(ExePath, Opts.CompileTimeoutSec);
  }();
  std::filesystem::remove(SrcPath, EC);
  std::filesystem::remove(ExePath, EC);

  R.Ran = true;
  R.ExitCode = Run.ExitCode;
  R.Output = Run.Output;
  R.Clean = Run.ok() && !Run.TimedOut;
  if (!R.Clean)
    ++NumSanitizedReports;
  return R;
}

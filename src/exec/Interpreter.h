//===- exec/Interpreter.h - Concrete loop-nest interpreter -----*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a scalarized LoopProgram numerically. The interpreter is the
/// project's correctness oracle: every optimization strategy must produce
/// live-out values identical to the unoptimized baseline on the same
/// seeded inputs (fusion reorders iterations and contraction re-homes
/// values, but each element's arithmetic is unchanged, so results match
/// exactly). Property tests run random programs through every strategy.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_EXEC_INTERPRETER_H
#define ALF_EXEC_INTERPRETER_H

#include "exec/Storage.h"
#include "scalarize/LoopIR.h"

#include <map>
#include <string>
#include <vector>

namespace alf {
namespace exec {

/// The observable outcome of running a program: final contents of every
/// live-out array (full allocated buffer, which is identical across
/// strategies because footprints derive from the shared source program).
struct RunResult {
  std::map<std::string, std::vector<double>> LiveOut;
  std::map<std::string, double> ScalarsOut; ///< reduction results etc.
};

/// Runs \p LP with inputs seeded by \p Seed. Contracted arrays get no
/// storage; live-in arrays and scalar parameters are seeded by name so
/// every strategy of the same program sees identical inputs.
RunResult run(const lir::LoopProgram &LP, uint64_t Seed);

/// Executes \p LP against caller-provided storage, in place: buffers and
/// scalars are read and written as they are, nothing is allocated or
/// seeded. The runtime engine uses this to rebind a cached loop program
/// to the live buffers of the current trace; `run` is allocate + this +
/// collectResults. \p Store must have a buffer for every allocated
/// (non-contracted) array of \p LP.
void runOnStorage(const lir::LoopProgram &LP, Storage &Store);

/// Compares two run results; on mismatch, describes the first difference
/// in \p WhyNot (when non-null). \p Tol is an absolute tolerance (0 for
/// exact comparison; optimization preserves bitwise results here).
bool resultsMatch(const RunResult &A, const RunResult &B, double Tol = 0.0,
                  std::string *WhyNot = nullptr);

} // namespace exec
} // namespace alf

#endif // ALF_EXEC_INTERPRETER_H

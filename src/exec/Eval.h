//===- exec/Eval.h - Shared loop-nest evaluation core ----------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation core shared by the sequential interpreter and the
/// parallel executor: expression evaluation, scalar-statement execution,
/// opaque-statement semantics and loop-nest iteration over a LoopProgram.
/// An EvalContext names the storage to run against; the parallel
/// executor additionally installs a per-thread scalar overlay so that
/// contracted arrays' replacement scalars stay thread-private while
/// array buffers and read-only parameters remain shared.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_EXEC_EVAL_H
#define ALF_EXEC_EVAL_H

#include "exec/Interpreter.h"
#include "exec/Storage.h"
#include "scalarize/LoopIR.h"

#include <map>
#include <vector>

namespace alf {
namespace exec {

/// Execution context for one run (or one thread of one run). Scalars —
/// program parameters, reduction accumulators and contracted arrays'
/// replacements alike — live in the Storage scalar environment; when a
/// ScalarOverlay is installed, scalar writes land in the overlay and
/// reads prefer it, leaving the shared environment untouched.
struct EvalContext {
  Storage *Store = nullptr;
  const lir::LoopProgram *LP = nullptr;
  std::map<unsigned, double> *ScalarOverlay = nullptr;

  double readScalar(const ir::ScalarSymbol *S) const {
    if (ScalarOverlay) {
      auto It = ScalarOverlay->find(S->getId());
      if (It != ScalarOverlay->end())
        return It->second;
    }
    return Store->getScalar(S);
  }

  void writeScalar(const ir::ScalarSymbol *S, double V) {
    if (ScalarOverlay)
      (*ScalarOverlay)[S->getId()] = V;
    else
      Store->setScalar(S, V);
  }

  /// Maps absolute coordinates into a partially contracted array's
  /// rolling buffer; identity for fully allocated arrays.
  void wrapCoords(const ir::ArraySymbol *A, std::vector<int64_t> &At) const;
};

/// Evaluates \p E at loop indices \p Idx.
double evalExpr(const ir::Expr *E, const EvalContext &Ctx,
                const std::vector<int64_t> &Idx);

/// Executes one element-wise statement at loop indices \p Idx.
void execScalarStmt(const lir::ScalarStmt &S, EvalContext &Ctx,
                    const std::vector<int64_t> &Idx);

/// Deterministic element-wise semantics for opaque statements.
void execOpaqueStmt(const ir::OpaqueStmt &O, EvalContext &Ctx);

/// Runs loops [FromLoop..rank) of \p Nest; the Idx components of all
/// outer loops' dimensions must already be set. FromLoop == rank runs
/// the body once at Idx.
void runNestLoops(const lir::LoopNest &Nest, EvalContext &Ctx,
                  std::vector<int64_t> &Idx, unsigned FromLoop);

/// Like runNestLoops starting at \p SplitLoop, but with that loop
/// restricted to the absolute inclusive range [\p Lo .. \p Hi] (iterated
/// in the loop's own direction). The parallel executor hands each worker
/// one such tile.
void runNestLoopsRestricted(const lir::LoopNest &Nest, EvalContext &Ctx,
                            std::vector<int64_t> &Idx, unsigned SplitLoop,
                            int64_t Lo, int64_t Hi);

/// Initializes the nest's reduction accumulators and runs the whole nest
/// sequentially in LSV order.
void iterateNest(const lir::LoopNest &Nest, EvalContext &Ctx);

/// Allocates and seeds storage for \p LP exactly as every executor must:
/// contracted arrays get none, partially contracted arrays get their
/// rolling-buffer bounds, live-in data is seeded from \p Seed by name.
Storage allocateStorage(const lir::LoopProgram &LP, uint64_t Seed);

/// Extracts the observable result (live-out arrays, program scalars).
RunResult collectResults(const lir::LoopProgram &LP, const Storage &Store);

} // namespace exec
} // namespace alf

#endif // ALF_EXEC_EVAL_H

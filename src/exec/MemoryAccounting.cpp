//===- exec/MemoryAccounting.cpp - Memory usage accounting ------------------===//

#include "exec/MemoryAccounting.h"

#include "analysis/Footprint.h"
#include "analysis/Liveness.h"

#include <limits>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;

MemoryCensus
exec::computeCensus(const Program &P,
                    const std::set<const ArraySymbol *> &Contracted) {
  MemoryCensus Census;
  FootprintInfo FI = FootprintInfo::compute(P);
  LivenessInfo LI = LivenessInfo::compute(P);

  // Runtime allocation policy: compiler temporaries' buffers are retained
  // once created (the ZPL runtime reuses but does not free them), so for
  // peak-allocation purposes their interval extends to the end of the
  // fragment. User arrays follow their live ranges.
  std::vector<LiveInterval> Intervals = LI.intervals();
  unsigned LastPos = P.numStmts() == 0 ? 0 : P.numStmts() - 1;
  for (LiveInterval &I : Intervals)
    if (I.Array->isCompilerTemp())
      I.Last = LastPos;

  auto Allocated = [&](const ArraySymbol *A) {
    return !Contracted.count(A) && FI.boundsFor(A) != nullptr;
  };

  for (const ArraySymbol *A : P.arrays()) {
    if (!Allocated(A))
      continue;
    ++Census.StaticArrays;
    if (A->isCompilerTemp())
      ++Census.StaticCompiler;
    else
      ++Census.StaticUser;
  }

  // Peak live count and bytes: walk program points, counting/summing the
  // allocated arrays whose (policy-adjusted) interval covers each point.
  for (unsigned Pos = 0; Pos <= LastPos; ++Pos) {
    unsigned Count = 0;
    uint64_t Bytes = 0;
    for (const LiveInterval &I : Intervals)
      if (I.First <= Pos && Pos <= I.Last && Allocated(I.Array)) {
        ++Count;
        Bytes += FI.bytesFor(I.Array);
      }
    if (Count > Census.PeakLive)
      Census.PeakLive = Count;
    if (Bytes > Census.PeakBytes)
      Census.PeakBytes = Bytes;
  }
  return Census;
}

double exec::problemSizeChangePercent(unsigned Lb, unsigned La) {
  if (La == 0)
    return std::numeric_limits<double>::infinity();
  return 100.0 * (static_cast<double>(Lb) - static_cast<double>(La)) /
         static_cast<double>(La);
}

int64_t
exec::findMaxProblemSize(const std::function<uint64_t(int64_t)> &BytesForN,
                         uint64_t Budget, int64_t MaxN) {
  if (BytesForN(1) > Budget)
    return 0;
  int64_t Lo = 1, Hi = MaxN;
  while (Lo < Hi) {
    int64_t Mid = Lo + (Hi - Lo + 1) / 2;
    if (BytesForN(Mid) <= Budget)
      Lo = Mid;
    else
      Hi = Mid - 1;
  }
  return Lo;
}

//===- exec/Eval.cpp - Shared loop-nest evaluation core ---------------------===//

#include "exec/Eval.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <functional>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;

void EvalContext::wrapCoords(const ArraySymbol *A,
                             std::vector<int64_t> &At) const {
  const xform::PartialPlan *Plan = LP->partialPlanFor(A);
  if (!Plan)
    return;
  for (unsigned D = 0; D < At.size(); ++D)
    At[D] = Plan->wrap(D, At[D]);
}

double exec::evalExpr(const Expr *E, const EvalContext &Ctx,
                      const std::vector<int64_t> &Idx) {
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return C->getValue();
  if (const auto *S = dyn_cast<ScalarRefExpr>(E))
    return Ctx.readScalar(S->getSymbol());
  if (const auto *A = dyn_cast<ArrayRefExpr>(E)) {
    const ArrayBuffer *Buf = Ctx.Store->buffer(A->getSymbol());
    if (!Buf)
      alf_unreachable("read of an array without storage");
    std::vector<int64_t> At(Idx.size());
    for (unsigned D = 0; D < Idx.size(); ++D)
      At[D] = Idx[D] + A->getOffset()[D];
    Ctx.wrapCoords(A->getSymbol(), At);
    return Buf->load(At);
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return UnaryExpr::evaluate(U->getOpcode(),
                               evalExpr(U->getOperand(), Ctx, Idx));
  const auto *B = cast<BinaryExpr>(E);
  return BinaryExpr::evaluate(B->getOpcode(), evalExpr(B->getLHS(), Ctx, Idx),
                              evalExpr(B->getRHS(), Ctx, Idx));
}

void exec::execScalarStmt(const ScalarStmt &S, EvalContext &Ctx,
                          const std::vector<int64_t> &Idx) {
  double V = evalExpr(S.RHS.get(), Ctx, Idx);
  if (S.LHS.isScalar()) {
    if (S.Accumulate)
      V = S.SR->combine(Ctx.readScalar(S.LHS.Scalar), V);
    Ctx.writeScalar(S.LHS.Scalar, V);
    return;
  }
  ArrayBuffer *Buf = Ctx.Store->buffer(S.LHS.Array);
  if (!Buf)
    alf_unreachable("write to an array without storage");
  std::vector<int64_t> At(Idx.size());
  for (unsigned D = 0; D < Idx.size(); ++D)
    At[D] = Idx[D] + S.LHS.Off[D];
  Ctx.wrapCoords(S.LHS.Array, At);
  Buf->store(At, V);
}

void exec::runNestLoops(const LoopNest &Nest, EvalContext &Ctx,
                        std::vector<int64_t> &Idx, unsigned FromLoop) {
  const Region &R = *Nest.R;
  if (FromLoop == R.rank()) {
    for (const ScalarStmt &S : Nest.Body)
      execScalarStmt(S, Ctx, Idx);
    return;
  }
  unsigned Dim = Nest.LSV.dimOf(FromLoop);
  if (Nest.LSV.dirOf(FromLoop) > 0) {
    for (int64_t I = R.lo(Dim); I <= R.hi(Dim); ++I) {
      Idx[Dim] = I;
      runNestLoops(Nest, Ctx, Idx, FromLoop + 1);
    }
  } else {
    for (int64_t I = R.hi(Dim); I >= R.lo(Dim); --I) {
      Idx[Dim] = I;
      runNestLoops(Nest, Ctx, Idx, FromLoop + 1);
    }
  }
}

void exec::runNestLoopsRestricted(const LoopNest &Nest, EvalContext &Ctx,
                                  std::vector<int64_t> &Idx,
                                  unsigned SplitLoop, int64_t Lo, int64_t Hi) {
  unsigned Dim = Nest.LSV.dimOf(SplitLoop);
  if (Nest.LSV.dirOf(SplitLoop) > 0) {
    for (int64_t I = Lo; I <= Hi; ++I) {
      Idx[Dim] = I;
      runNestLoops(Nest, Ctx, Idx, SplitLoop + 1);
    }
  } else {
    for (int64_t I = Hi; I >= Lo; --I) {
      Idx[Dim] = I;
      runNestLoops(Nest, Ctx, Idx, SplitLoop + 1);
    }
  }
}

void exec::iterateNest(const LoopNest &Nest, EvalContext &Ctx) {
  for (const lir::ScalarInit &SI : Nest.ScalarInits)
    Ctx.writeScalar(SI.Acc, SI.Init);
  std::vector<int64_t> Idx(Nest.R->rank());
  runNestLoops(Nest, Ctx, Idx, 0);
}

void exec::execOpaqueStmt(const OpaqueStmt &O, EvalContext &Ctx) {
  const Region *R = O.getRegion();
  if (!R) {
    double V = 1.0;
    for (const ScalarSymbol *S : O.scalarReads())
      V += 0.5 * Ctx.readScalar(S);
    unsigned Ordinal = 0;
    for (const ScalarSymbol *S : O.scalarWrites())
      Ctx.writeScalar(S, V + Ordinal++);
    return;
  }

  double ScalarBase = 1.0;
  for (const ScalarSymbol *S : O.scalarReads())
    ScalarBase += 0.5 * Ctx.readScalar(S);

  std::vector<double> ScalarAccum(O.scalarWrites().size(), 0.0);
  std::vector<int64_t> Idx(R->rank());
  std::function<void(unsigned)> Walk = [&](unsigned D) {
    if (D == R->rank()) {
      double V = ScalarBase;
      for (const ArraySymbol *A : O.arrayReads())
        if (const ArrayBuffer *Buf = Ctx.Store->buffer(A))
          if (Buf->bounds().rank() == Idx.size())
            V += 0.5 * Buf->load(Idx);
      unsigned Ordinal = 0;
      for (const ArraySymbol *A : O.arrayWrites())
        if (ArrayBuffer *Buf = Ctx.Store->buffer(A))
          if (Buf->bounds().rank() == Idx.size())
            Buf->store(Idx, V + Ordinal++);
      for (double &Acc : ScalarAccum)
        Acc += V;
      return;
    }
    for (int64_t I = R->lo(D); I <= R->hi(D); ++I) {
      Idx[D] = I;
      Walk(D + 1);
    }
  };
  Walk(0);

  double Scale = 1.0 / static_cast<double>(R->size());
  for (size_t I = 0; I < O.scalarWrites().size(); ++I)
    Ctx.writeScalar(O.scalarWrites()[I], ScalarAccum[I] * Scale);
}

Storage exec::allocateStorage(const LoopProgram &LP, uint64_t Seed) {
  const Program &P = LP.source();
  FootprintInfo FI = FootprintInfo::compute(P);
  return Storage::allocate(
      P, FI, Seed,
      [&LP](const ArraySymbol *A) { return !LP.isContracted(A); },
      [&LP](const ArraySymbol *A) -> std::optional<Region> {
        if (const xform::PartialPlan *Plan = LP.partialPlanFor(A))
          return Plan->bufferRegion();
        return std::nullopt;
      });
}

RunResult exec::collectResults(const LoopProgram &LP, const Storage &Store) {
  const Program &P = LP.source();
  RunResult Result;
  for (const ArraySymbol *A : P.arrays()) {
    if (!A->isLiveOut())
      continue;
    if (const ArrayBuffer *Buf = Store.buffer(A))
      Result.LiveOut.emplace(A->getName(), Buf->raw());
  }
  for (const Symbol *Sym : P.symbols())
    if (const auto *Sc = dyn_cast<ScalarSymbol>(Sym))
      Result.ScalarsOut.emplace(Sc->getName(), Store.getScalar(Sc));
  return Result;
}

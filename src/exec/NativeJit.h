//===- exec/NativeJit.h - Native JIT kernel backend ------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a scalarized LoopProgram as real machine code: the C backend
/// emits a kernel with a fixed `_entry(double **arrays, double *scalars)`
/// ABI, the system compiler turns it into a shared object, and the engine
/// dlopens it and runs it against exec::Storage — so the paper's eight
/// strategies are finally measured on hardware instead of the
/// interpreter.
///
/// Kernels are cached twice: in memory (per engine, by content hash) and
/// on disk (shared across processes and runs), keyed by a hash of the
/// emitted source, the compiler flags and the compiler version — so a
/// strategy sweep or the 50-seed stress harness pays each compile once,
/// and a toolchain upgrade invalidates stale objects automatically.
///
/// The fallback ladder keeps the backend total: emission failure, missing
/// compiler, compile failure/timeout, dlopen or dlsym failure each
/// degrade to the sequential interpreter with the reason recorded (and
/// counted in the "jit" Statistic group), so callers always get a result.
/// Results are bit-identical to the interpreter: the emitted helpers
/// mirror the interpreter's guarded arithmetic and kernels are compiled
/// with `-ffp-contract=off` and without fast-math.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_EXEC_NATIVEJIT_H
#define ALF_EXEC_NATIVEJIT_H

#include "exec/Interpreter.h"
#include "scalarize/CEmitter.h"
#include "scalarize/LoopIR.h"

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>

namespace alf {
namespace exec {

/// Configuration of the native backend.
struct JitOptions {
  /// Kernel-cache directory; shared objects land here as
  /// `alf-<contenthash>.so`. Empty selects $ALF_JIT_CACHE_DIR, falling
  /// back to <tmp>/alf-kernel-cache.
  std::string CacheDir;

  /// Compiler driver invoked for kernels.
  std::string Compiler = "cc";

  /// Optimization/correctness flags. -ffp-contract=off (and the absence
  /// of fast-math) is what keeps native results bit-identical to the
  /// interpreter; changing flags changes the content hash.
  std::string Flags = "-std=c99 -O2 -ffp-contract=off -fPIC -shared";

  /// CPU-seconds budget for one compiler invocation; a runaway compile is
  /// killed and treated as a compile failure. 0 disables the limit.
  unsigned CompileTimeoutSec = 60;

  /// Selects the vectorizing emission mode (scalarize::CEmitOptions):
  /// loop nests the legality check certifies are emitted as explicit SIMD
  /// loops over the innermost FIND-LOOP-STRUCTURE dimension; the rest
  /// keep the scalar spelling. Results stay bit-identical to the
  /// interpreter except where a float + reduction is lane-split
  /// (JitRunInfo::Reassociated; compare with support::Tolerance).
  bool Vectorize = false;

  /// Lanes per vector accumulator/load/store in vectorize mode.
  unsigned VectorWidth = 4;

  /// Upper bound, in bytes, on the on-disk kernel cache (shared objects
  /// plus their paired sources). After each install the oldest entries by
  /// modification time are evicted until the directory fits; the entry
  /// just installed is never evicted, and disk hits refresh an entry's
  /// mtime so hot kernels survive. 0 disables the bound.
  uint64_t MaxCacheBytes = 0;

  /// Enables the sanitizer-tier dynamic oracle (runSanitized): emitted
  /// kernels are additionally compiled as standalone harness executables
  /// with SanitizeFlags and run out of process, so any out-of-bounds
  /// access or uninitialized read the static safety checker should have
  /// caught aborts with a sanitizer report instead of silently corrupting
  /// memory. The dlopen JIT path is unchanged — the ASan runtime does not
  /// survive into a shared object loaded by an unsanitized host, which is
  /// why the oracle always runs as a separate process.
  bool Sanitize = false;

  /// Flags for the sanitized harness build. -O1 keeps shadow checks on
  /// every access; -fno-sanitize-recover=all turns the first finding into
  /// a nonzero exit so the oracle's verdict is just the exit code.
  std::string SanitizeFlags = "-std=c99 -O1 -g -ffp-contract=off "
                              "-fsanitize=address,undefined "
                              "-fno-sanitize-recover=all";
};

/// Outcome of one runSanitized oracle run.
struct SanitizedRunResult {
  bool Ran = false;   ///< The harness compiled and executed.
  bool Clean = false; ///< Ran and exited 0: no sanitizer report.
  int ExitCode = -1;  ///< Harness exit code (sanitizers exit nonzero).
  std::string Output; ///< Emission/compile diagnostics or the report.
};

/// What happened on one JitEngine::run call (for tests and reports).
struct JitRunInfo {
  bool UsedJit = false;        ///< Kernel executed natively.
  bool Compiled = false;       ///< This run invoked the compiler.
  bool CacheHitMemory = false; ///< Served from this engine's loaded kernels.
  bool CacheHitDisk = false;   ///< Loaded a previously compiled .so.
  std::string FallbackReason;  ///< Why the interpreter ran instead ("" = jit).
  std::string SoPath;          ///< Cache entry backing this kernel.

  // Vectorize-mode outcome (JitOptions::Vectorize only).
  unsigned VectorizedNests = 0; ///< Nests emitted as SIMD loops.
  unsigned VectorFallbacks = 0; ///< Nests the legality check refused.
  bool Reassociated = false;    ///< A float + fold was lane-split.
};

/// A JIT compilation engine: owns the loaded kernels of one process and
/// the handle bookkeeping. Thread-safe; one engine can serve every
/// strategy of a sweep so repeated shapes hit the in-memory cache.
///
/// Thread-safety contract (the serving layer dispatches many worker
/// threads into one engine):
///
///  - run/runOnStorage/kernelFor may be called concurrently from any
///    number of threads. Kernel lookup and installation are guarded by
///    the engine mutex; compilation, disk-cache I/O and dlopen run
///    UNLOCKED so a ~300 ms compile of one kernel never blocks warm
///    dispatch of another.
///  - Compiles are single-flight per content hash: the first thread to
///    miss marks the hash in-flight and compiles; later threads needing
///    the same hash block on a condition variable and are handed the
///    installed kernel — an N-thread thundering herd of one program
///    performs exactly one compiler invocation (asserted in debug
///    builds: installation requires the hash to be absent from the
///    loaded-kernel map). Failed compiles are not negative-cached: the
///    next waiter retries, preserving the retry behavior single-threaded
///    callers always had.
///  - Installed LoadedKernel entries are never erased before the engine
///    is destroyed, and std::map never moves mapped values, so the
///    pointer kernelFor returns stays valid (and Entry is immutable) for
///    the engine's lifetime; dispatch through it needs no lock.
///  - The disk-cache LRU bound (MaxCacheBytes) may evict an entry that a
///    concurrent thread or process is between installing and dlopening.
///    Eviction deletes oldest-mtime first and a just-installed entry is
///    mtime-newest (disk hits refresh mtime), so this is rare; when it
///    does happen the loser re-compiles or falls back to the
///    interpreter — never a wrong result. An already-dlopened kernel is
///    unaffected by deletion of its backing file (the mapping survives
///    unlink).
class JitEngine {
public:
  explicit JitEngine(JitOptions Opts = JitOptions());
  ~JitEngine();

  JitEngine(const JitEngine &) = delete;
  JitEngine &operator=(const JitEngine &) = delete;

  /// Runs \p LP natively on inputs seeded by \p Seed, falling back to the
  /// sequential interpreter when any step of the JIT ladder fails. Same
  /// observable semantics as exec::run on the same seed.
  RunResult run(const lir::LoopProgram &LP, uint64_t Seed,
                JitRunInfo *Info = nullptr);

  /// Executes \p LP natively against caller-provided storage, in place
  /// (the JIT counterpart of exec::runOnStorage): the kernel's array
  /// arguments are bound to \p Store's buffers and its scalar slots are
  /// copied in and back out, so the runtime engine can re-run one cached
  /// kernel against the live buffers of each flush. Falls back to the
  /// interpreter on the same storage when the JIT ladder fails.
  void runOnStorage(const lir::LoopProgram &LP, Storage &Store,
                    JitRunInfo *Info = nullptr);

  /// The on-disk cache entry \p LP's kernel maps to under this engine's
  /// options (exists only after a successful compile). Tests use this to
  /// corrupt entries deliberately.
  std::string cachePathFor(const lir::LoopProgram &LP);

  /// Resolved cache directory.
  const std::string &cacheDir() const { return Opts.CacheDir; }

  /// True when \p Opts.Compiler can run at all (probed once per call).
  static bool compilerAvailable(const JitOptions &Opts = JitOptions());

private:
  struct LoadedKernel {
    void *Handle = nullptr;
    void (*Entry)(double **, double *) = nullptr;
  };

  /// Returns the entry point for \p Module's kernel, compiling and/or
  /// loading as needed; null with \p WhyNot set when every rung failed.
  /// Single-flight per content hash (see the class comment).
  LoadedKernel *kernelFor(const scalarize::CModule &Module, JitRunInfo &Info,
                          std::string &WhyNot);

  /// Disk probe + compile + dlopen, run without the engine lock while
  /// the content hash is claimed in InFlight.
  void compileAndLoad(const scalarize::CModule &Module, JitRunInfo &Info,
                      LoadedKernel &Out, std::string &WhyNot);

  const std::string &compilerVersion();

  JitOptions Opts;
  std::mutex Mutex;
  std::map<uint64_t, LoadedKernel> Kernels; // by content hash
  std::set<uint64_t> InFlight;              // hashes being compiled now
  std::condition_variable InFlightDone;     // signaled per finished compile
  std::string CompilerVersion;
  bool CompilerVersionProbed = false;
};

/// Runs \p LP through a process-wide shared engine with default options
/// (honoring $ALF_JIT_CACHE_DIR). This is what ExecMode::NativeJit
/// dispatches to.
RunResult runNativeJit(const lir::LoopProgram &LP, uint64_t Seed,
                       JitRunInfo *Info = nullptr);

/// Like runNativeJit, but through a second process-wide shared engine
/// with the vectorizing emission mode on (JitOptions::Vectorize). This is
/// what ExecMode::NativeJitSimd dispatches to. The two shared engines
/// never collide in the kernel cache: vectorized modules differ in source
/// and flags, so their content hashes differ.
RunResult runNativeJitSimd(const lir::LoopProgram &LP, uint64_t Seed,
                           JitRunInfo *Info = nullptr);

/// The sanitizer-tier dynamic oracle: emits \p LP's kernel together with
/// its self-seeding main() harness (scalarize::emitCWithHarnessChecked,
/// seeded with \p Seed), compiles it as a standalone executable with
/// \p Opts.SanitizeFlags, and runs it out of process. Clean means the
/// harness exited 0 — every load and store passed the ASan/UBSan checks
/// on real hardware — so the StressSweepTest sweep can assert that
/// programs the static safety checker certifies also run sanitizer-clean.
/// Requires \p Opts.Sanitize; returns Ran=false (with the reason in
/// Output) when the oracle is disabled or any build step fails.
SanitizedRunResult runSanitized(const lir::LoopProgram &LP, uint64_t Seed,
                                const JitOptions &Opts = JitOptions());

} // namespace exec
} // namespace alf

#endif // ALF_EXEC_NATIVEJIT_H

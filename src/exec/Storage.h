//===- exec/Storage.h - Array storage and address mapping ------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for the arrays of a program during interpretation and
/// performance simulation. Every allocated (non-contracted) array gets a
/// flat row-major buffer covering its footprint bounds (statement regions
/// expanded by reference offsets) plus a base address in a synthetic
/// address space, so the cache simulator sees realistic conflict and
/// capacity behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_EXEC_STORAGE_H
#define ALF_EXEC_STORAGE_H

#include "analysis/Footprint.h"
#include "ir/Program.h"
#include "support/Random.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace alf {
namespace exec {

/// Row-major storage for one array.
class ArrayBuffer {
  const ir::ArraySymbol *Sym = nullptr;
  ir::Region Bounds;
  std::vector<int64_t> Strides; // row-major element strides
  std::vector<double> Data;
  uint64_t BaseAddr = 0;

public:
  ArrayBuffer() = default;
  ArrayBuffer(const ir::ArraySymbol *Sym, const ir::Region &Bounds,
              uint64_t BaseAddr);

  const ir::ArraySymbol *symbol() const { return Sym; }
  const ir::Region &bounds() const { return Bounds; }
  uint64_t baseAddr() const { return BaseAddr; }
  uint64_t sizeBytes() const { return Data.size() * Sym->getElemSize(); }

  /// Linear element index of the point \p Idx (absolute coordinates).
  int64_t linearIndex(const std::vector<int64_t> &Idx) const;

  /// Synthetic byte address of the element at \p Idx.
  uint64_t addrOf(const std::vector<int64_t> &Idx) const {
    return BaseAddr +
           static_cast<uint64_t>(linearIndex(Idx)) * Sym->getElemSize();
  }

  double load(const std::vector<int64_t> &Idx) const {
    return Data[linearIndex(Idx)];
  }
  void store(const std::vector<int64_t> &Idx, double V) {
    Data[linearIndex(Idx)] = V;
  }

  const std::vector<double> &raw() const { return Data; }

  /// Mutable base pointer of the row-major payload. The native JIT backend
  /// hands this to the compiled kernel, which reads and writes the buffer
  /// in place (the layout the C emitter computes from footprint bounds is
  /// identical to this buffer's).
  double *data() { return Data.data(); }

  /// Fills the buffer with deterministic pseudo-random values in
  /// [-1, 1), seeded by \p Seed (callers mix in the array name so every
  /// strategy sees identical inputs).
  void fillRandom(uint64_t Seed);

  /// Zero-fills the buffer.
  void fillZero();
};

/// All array buffers of one program plus the scalar environment.
class Storage {
  std::map<unsigned, ArrayBuffer> Buffers;       // by symbol id
  std::map<unsigned, double> Scalars;            // by symbol id
  uint64_t TotalBytes = 0;

public:
  /// Allocates every array accepted by \p Allocate (contracted arrays are
  /// excluded by the callers) with footprint bounds, and initializes:
  /// live-in arrays and scalars from \p Seed, everything else zero.
  /// \p BoundsOverride, when provided, replaces an array's allocation
  /// bounds (partially contracted arrays use rolling-buffer bounds).
  static Storage
  allocate(const ir::Program &P, const analysis::FootprintInfo &FI,
           uint64_t Seed,
           const std::function<bool(const ir::ArraySymbol *)> &Allocate,
           const std::function<std::optional<ir::Region>(
               const ir::ArraySymbol *)> &BoundsOverride = nullptr);

  ArrayBuffer *buffer(const ir::ArraySymbol *A) {
    auto It = Buffers.find(A->getId());
    return It == Buffers.end() ? nullptr : &It->second;
  }
  const ArrayBuffer *buffer(const ir::ArraySymbol *A) const {
    auto It = Buffers.find(A->getId());
    return It == Buffers.end() ? nullptr : &It->second;
  }

  double getScalar(const ir::ScalarSymbol *S) const {
    auto It = Scalars.find(S->getId());
    return It == Scalars.end() ? 0.0 : It->second;
  }
  void setScalar(const ir::ScalarSymbol *S, double V) {
    Scalars[S->getId()] = V;
  }

  /// Sets a scalar by raw symbol id (the parallel executor merges
  /// thread-private overlay entries back by id).
  void setScalarById(unsigned Id, double V) { Scalars[Id] = V; }

  /// Total bytes of array storage allocated.
  uint64_t totalBytes() const { return TotalBytes; }
};

/// Deterministic 64-bit hash of a string (FNV-1a); used to derive
/// per-array initialization seeds that are stable across strategies.
uint64_t hashName(const std::string &Name);

} // namespace exec
} // namespace alf

#endif // ALF_EXEC_STORAGE_H

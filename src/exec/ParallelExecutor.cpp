//===- exec/ParallelExecutor.cpp - Tiled multithreaded executor -------------===//

#include "exec/ParallelExecutor.h"

#include "exec/Eval.h"
#include "exec/NativeJit.h"
#include "obs/Obs.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "support/Statistic.h"
#include "support/ThreadPool.h"
#include "xform/Report.h"

#include <functional>
#include <set>

using namespace alf;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::xform;

namespace {

/// Array dimensions of \p Nest aliased by a rolling buffer: the reduced
/// (modulo-indexed) dimensions of every partially contracted array the
/// nest references.
std::vector<bool> wrappedDims(const LoopProgram &LP, const LoopNest &Nest) {
  std::vector<bool> Wrapped(Nest.R->rank(), false);
  std::set<const ArraySymbol *> Arrays;
  for (const ScalarStmt &S : Nest.Body) {
    if (!S.LHS.isScalar())
      Arrays.insert(S.LHS.Array);
    for (const ArrayRefExpr *Ref : collectArrayRefs(S.RHS.get()))
      Arrays.insert(Ref->getSymbol());
  }
  for (const ArraySymbol *A : Arrays) {
    const PartialPlan *Plan = LP.partialPlanFor(A);
    if (!Plan)
      continue;
    for (unsigned D = 0; D < Wrapped.size(); ++D)
      if (D < Plan->BufferExtents.size() && Plan->isReduced(D))
        Wrapped[D] = true;
  }
  return Wrapped;
}

/// Runs one parallel nest: the plan's loop is split into one contiguous
/// tile per worker; outer loops (tile-with-barriers mode) run
/// sequentially with one pool dispatch per iteration. Worker-private
/// scalar overlays keep contracted temporaries thread-local; the overlay
/// of the worker owning the sequentially-last tile is merged back so
/// leftover scalar values match the interpreter exactly.
void runNestParallel(const LoopNest &Nest, EvalContext &Shared,
                     ThreadPool &Pool, const NestParallelPlan &Plan) {
  for (const lir::ScalarInit &SI : Nest.ScalarInits)
    Shared.writeScalar(SI.Acc, SI.Init);

  const Region &R = *Nest.R;
  unsigned SplitLoop = static_cast<unsigned>(Plan.ParallelLoop);
  unsigned SplitDim = Nest.LSV.dimOf(SplitLoop);
  int64_t Lo = R.lo(SplitDim), Hi = R.hi(SplitDim);

  std::vector<std::map<unsigned, double>> Overlays(Pool.numThreads());
  std::vector<int64_t> Idx(R.rank());

  std::function<void(unsigned)> Walk = [&](unsigned Loop) {
    if (Loop == SplitLoop) {
      Pool.parallelFor(Lo, Hi + 1,
                       [&](int64_t TileLo, int64_t TileEnd, unsigned Worker) {
                         EvalContext Ctx;
                         Ctx.Store = Shared.Store;
                         Ctx.LP = Shared.LP;
                         Ctx.ScalarOverlay = &Overlays[Worker];
                         std::vector<int64_t> TileIdx = Idx;
                         runNestLoopsRestricted(Nest, Ctx, TileIdx, SplitLoop,
                                                TileLo, TileEnd - 1);
                       });
      return;
    }
    unsigned Dim = Nest.LSV.dimOf(Loop);
    if (Nest.LSV.dirOf(Loop) > 0) {
      for (int64_t I = R.lo(Dim); I <= R.hi(Dim); ++I) {
        Idx[Dim] = I;
        Walk(Loop + 1);
      }
    } else {
      for (int64_t I = R.hi(Dim); I >= R.lo(Dim); --I) {
        Idx[Dim] = I;
        Walk(Loop + 1);
      }
    }
  };
  Walk(0);

  // The sequentially-last iteration of the split loop is Hi for an
  // increasing loop and Lo for a decreasing one; find its tile's worker
  // and merge that overlay, replicating the interpreter's leftover
  // scalar environment (contracted temps are dead here, but the match
  // must be exact).
  int64_t Last = Nest.LSV.dirOf(SplitLoop) > 0 ? Hi : Lo;
  for (unsigned W = 0; W < Pool.numThreads(); ++W) {
    int64_t CLo, CHi;
    if (ThreadPool::chunkBounds(Lo, Hi + 1, Pool.numThreads(), W, CLo, CHi) &&
        CLo <= Last && Last <= CHi) {
      for (const auto &[Id, V] : Overlays[W])
        Shared.Store->setScalarById(Id, V);
      break;
    }
  }
}

} // namespace

unsigned ParallelSchedule::numParallelNests() const {
  unsigned N = 0;
  for (const NestParallelPlan &P : NodePlans)
    N += P.isParallel();
  return N;
}

const NestParallelPlan *
ParallelSchedule::planForNest(const LoopProgram &LP, unsigned I) const {
  unsigned Seen = 0;
  for (size_t Node = 0; Node < LP.nodes().size(); ++Node) {
    if (!isa<LoopNest>(LP.nodes()[Node].get()))
      continue;
    if (Seen++ == I)
      return Node < NodePlans.size() ? &NodePlans[Node] : nullptr;
  }
  return nullptr;
}

ParallelSchedule exec::planParallelism(const LoopProgram &LP) {
  ALF_STATISTIC(NestsOuterParallel, "parallel",
                "Nests with a dependence-free outermost loop");
  ALF_STATISTIC(NestsInnerParallel, "parallel",
                "Nests parallelized under per-iteration barriers");
  ALF_STATISTIC(NestsSequential, "parallel",
                "Nests kept sequential by the legality analysis");

  ParallelSchedule Sched;
  for (const auto &NodePtr : LP.nodes()) {
    NestParallelPlan Plan;
    if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
      NestParallelInput In;
      In.LSV = Nest->LSV;
      In.UDVs = Nest->UDVs;
      In.WrappedDims = wrappedDims(LP, *Nest);
      for (const ScalarStmt &S : Nest->Body)
        In.HasReduction |= S.Accumulate;
      Plan = analyzeNestParallelism(In);
      switch (Plan.Decision) {
      case ParallelDecision::OuterParallel:
        ++NestsOuterParallel;
        break;
      case ParallelDecision::InnerParallel:
        ++NestsInnerParallel;
        break;
      default:
        ++NestsSequential;
        break;
      }
    }
    Sched.NodePlans.push_back(std::move(Plan));
  }
  return Sched;
}

std::string exec::describeSchedule(const LoopProgram &LP,
                                   const ParallelSchedule &Sched) {
  std::vector<NestParallelSummary> Rows;
  for (size_t Node = 0; Node < LP.nodes().size(); ++Node) {
    const auto *Nest = dyn_cast<LoopNest>(LP.nodes()[Node].get());
    if (!Nest)
      continue;
    NestParallelSummary Row;
    Row.ClusterId = Nest->ClusterId;
    Row.LSV = Nest->LSV.str();
    Row.Points = Nest->R->size();
    Row.Plan = Sched.NodePlans[Node];
    Rows.push_back(std::move(Row));
  }
  return parallelismReport(Rows);
}

void exec::runParallelOnStorage(const LoopProgram &LP, Storage &Store,
                                const ParallelOptions &Opts,
                                const ParallelSchedule &Sched) {
  ALF_STATISTIC(NumParallelRuns, "parallel", "Parallel executor runs");
  ++NumParallelRuns;

  obs::Span Outer("exec.parallel");
  if (Outer.active())
    Outer.setBytes(Store.totalBytes());

  EvalContext Ctx;
  Ctx.Store = &Store;
  Ctx.LP = &LP;

  ThreadPool Pool(Opts.NumThreads);
  for (size_t Node = 0; Node < LP.nodes().size(); ++Node) {
    LNode *N = LP.nodes()[Node].get();
    if (const auto *Nest = dyn_cast<LoopNest>(N)) {
      const NestParallelPlan &Plan = Sched.NodePlans[Node];
      if (Plan.isParallel())
        runNestParallel(*Nest, Ctx, Pool, Plan);
      else
        iterateNest(*Nest, Ctx);
      continue;
    }
    if (isa<CommOp>(N))
      continue; // single address space: halo exchange is a no-op
    execOpaqueStmt(*cast<OpaqueOp>(N)->Src, Ctx);
  }
}

RunResult exec::runParallel(const LoopProgram &LP, uint64_t Seed,
                            const ParallelOptions &Opts,
                            const ParallelSchedule &Sched) {
  Storage Store = allocateStorage(LP, Seed);
  runParallelOnStorage(LP, Store, Opts, Sched);
  return collectResults(LP, Store);
}

RunResult exec::runParallel(const LoopProgram &LP, uint64_t Seed,
                            const ParallelOptions &Opts) {
  return runParallel(LP, Seed, Opts, planParallelism(LP));
}

std::string exec::describeSchedule(const LoopProgram &LP,
                                   const ParallelSchedule &Sched,
                                   ExecMode Mode) {
  std::string Report = "exec mode: ";
  Report += getExecModeName(Mode);
  Report += '\n';
  if (Mode == ExecMode::NativeJit)
    Report += "(nests compile into one native kernel; per-nest parallel "
              "plans do not apply)\n";
  else if (Mode == ExecMode::NativeJitSimd)
    Report += "(nests compile into one native kernel with SIMD inner "
              "loops; per-nest parallel plans do not apply)\n";
  return Report + describeSchedule(LP, Sched);
}

RunResult exec::runWithMode(const LoopProgram &LP, uint64_t Seed,
                            ExecMode Mode, const ParallelOptions &Opts) {
  switch (Mode) {
  case ExecMode::Sequential:
    return run(LP, Seed);
  case ExecMode::Parallel:
    return runParallel(LP, Seed, Opts);
  case ExecMode::NativeJit:
    return runNativeJit(LP, Seed);
  case ExecMode::NativeJitSimd:
    return runNativeJitSimd(LP, Seed);
  }
  alf_unreachable("unhandled execution mode");
}

//===- exec/PerfModel.cpp - Trace-driven performance model ------------------===//

#include "exec/PerfModel.h"

#include "analysis/Footprint.h"
#include "exec/Storage.h"
#include "support/ErrorHandling.h"

#include <cmath>
#include <functional>
#include <map>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::machine;

namespace {

/// A nest statement lowered to its address-generation recipe.
struct CompiledRef {
  const ArrayBuffer *Buf = nullptr;
  Offset Off;
  const xform::PartialPlan *Plan = nullptr; // rolling buffer, or null
};

struct CompiledStmt {
  const ArrayBuffer *LHSBuf = nullptr; // null for scalar targets
  Offset LHSOff;
  const xform::PartialPlan *LHSPlan = nullptr;
  std::vector<CompiledRef> Reads;
  unsigned Flops = 0;
};

struct Simulator {
  const MachineDesc &M;
  const ProcGrid &Grid;
  MemoryHierarchy Hierarchy;
  PerfStats Stats;

  struct PendingSend {
    double StartComputeNs = 0.0;
    double CostNs = 0.0;
  };
  std::map<int, PendingSend> Pending;

  Simulator(const MachineDesc &Mach, const ProcGrid &G)
      : M(Mach), Grid(G),
        Hierarchy(Mach.L2 ? MemoryHierarchy(Mach.L1, *Mach.L2)
                          : MemoryHierarchy(Mach.L1)) {}

  void chargeRef(uint64_t Addr) {
    ++Stats.Refs;
    switch (Hierarchy.access(Addr)) {
    case MemoryHierarchy::Level::L1:
      ++Stats.L1Hits;
      Stats.ComputeNs += M.L1HitCost;
      break;
    case MemoryHierarchy::Level::L2:
      ++Stats.L2Hits;
      Stats.ComputeNs += M.L2HitCost;
      break;
    case MemoryHierarchy::Level::Memory:
      ++Stats.MemRefs;
      Stats.ComputeNs += M.MemCost;
      break;
    }
  }

  void chargeFlops(unsigned N) {
    Stats.Flops += N;
    Stats.ComputeNs += static_cast<double>(N) * M.FlopCost;
  }

  /// Bytes of the halo slab of \p Buf along \p Dim with \p Width planes.
  uint64_t slabBytes(const ArrayBuffer &Buf, unsigned Dim,
                     unsigned Width) const {
    const Region &B = Buf.bounds();
    uint64_t Elems = static_cast<uint64_t>(B.size()) /
                     static_cast<uint64_t>(B.extent(Dim));
    return Elems * Width * Buf.symbol()->getElemSize();
  }
};

} // namespace

PerfStats exec::simulate(const LoopProgram &LP, const MachineDesc &M,
                         const ProcGrid &Grid) {
  const Program &P = LP.source();
  FootprintInfo FI = FootprintInfo::compute(P);
  // Allocation gives synthetic addresses; values are not used.
  Storage Store = Storage::allocate(
      P, FI, /*Seed=*/1,
      [&LP](const ArraySymbol *A) { return !LP.isContracted(A); },
      [&LP](const ArraySymbol *A) -> std::optional<Region> {
        if (const xform::PartialPlan *Plan = LP.partialPlanFor(A))
          return Plan->bufferRegion();
        return std::nullopt;
      });

  Simulator Sim(M, Grid);

  for (const auto &NodePtr : LP.nodes()) {
    if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
      // Compile body statements to address recipes.
      std::vector<CompiledStmt> Body;
      unsigned NumReduces = 0;
      for (const ScalarStmt &S : Nest->Body) {
        CompiledStmt CS;
        if (!S.LHS.isScalar()) {
          CS.LHSBuf = Store.buffer(S.LHS.Array);
          CS.LHSOff = S.LHS.Off;
          CS.LHSPlan = LP.partialPlanFor(S.LHS.Array);
        }
        for (const ArrayRefExpr *Ref : collectArrayRefs(S.RHS.get()))
          CS.Reads.push_back(CompiledRef{Store.buffer(Ref->getSymbol()),
                                         Ref->getOffset(),
                                         LP.partialPlanFor(Ref->getSymbol())});
        CS.Flops = countOps(S.RHS.get()) + (S.Accumulate ? 1 : 0);
        if (S.Accumulate)
          ++NumReduces;
        Body.push_back(std::move(CS));
      }

      const Region &R = *Nest->R;
      unsigned Rank = R.rank();
      std::vector<int64_t> Idx(Rank);
      std::vector<int64_t> At(Rank);
      std::function<void(unsigned)> RunLoop = [&](unsigned Loop) {
        if (Loop == Rank) {
          for (const CompiledStmt &CS : Body) {
            for (const CompiledRef &Ref : CS.Reads) {
              if (!Ref.Buf)
                alf_unreachable("performance model read without storage");
              for (unsigned D = 0; D < Rank; ++D) {
                At[D] = Idx[D] + Ref.Off[D];
                if (Ref.Plan)
                  At[D] = Ref.Plan->wrap(D, At[D]);
              }
              Sim.chargeRef(Ref.Buf->addrOf(At));
            }
            Sim.chargeFlops(CS.Flops);
            if (CS.LHSBuf) {
              for (unsigned D = 0; D < Rank; ++D) {
                At[D] = Idx[D] + CS.LHSOff[D];
                if (CS.LHSPlan)
                  At[D] = CS.LHSPlan->wrap(D, At[D]);
              }
              Sim.chargeRef(CS.LHSBuf->addrOf(At));
            }
          }
          return;
        }
        unsigned Dim = Nest->LSV.dimOf(Loop);
        if (Nest->LSV.dirOf(Loop) > 0) {
          for (int64_t I = R.lo(Dim); I <= R.hi(Dim); ++I) {
            Idx[Dim] = I;
            RunLoop(Loop + 1);
          }
        } else {
          for (int64_t I = R.hi(Dim); I >= R.lo(Dim); --I) {
            Idx[Dim] = I;
            RunLoop(Loop + 1);
          }
        }
      };
      RunLoop(0);

      // Each reduction pays a cross-processor combine after the nest.
      if (NumReduces > 0 && Grid.NumProcs > 1) {
        unsigned Steps = static_cast<unsigned>(
            std::ceil(std::log2(static_cast<double>(Grid.NumProcs))));
        Sim.Stats.CommNs += M.ReduceStepCost * Steps * NumReduces;
        Sim.Stats.Messages += Steps * NumReduces;
      }
      continue;
    }

    if (const auto *C = dyn_cast<CommOp>(NodePtr.get())) {
      unsigned Dim = 0;
      unsigned Width = 0;
      for (unsigned D = 0; D < C->Dir.rank(); ++D)
        if (C->Dir[D] != 0) {
          Dim = D;
          Width = static_cast<unsigned>(C->Dir[D] > 0 ? C->Dir[D]
                                                      : -C->Dir[D]);
        }
      if (!Grid.hasNeighbor(Dim))
        continue; // no off-processor neighbour along this dimension
      const ArrayBuffer *Buf = Store.buffer(C->Array);
      if (!Buf)
        continue; // contracted arrays never communicate
      uint64_t Bytes = Sim.slabBytes(*Buf, Dim, Width);
      // MsgLatency models the per-message *software* overhead (buffer
      // management, protocol), which the processor pays whether or not
      // the transfer overlaps with computation; only the wire transfer
      // can hide behind a pipelined send/recv pair.
      double Transfer = static_cast<double>(Bytes) / M.MsgBandwidth;

      switch (C->Phase) {
      case CommStmt::CommPhase::Whole:
        ++Sim.Stats.Messages;
        Sim.Stats.MsgBytes += Bytes;
        Sim.Stats.CommNs += M.MsgLatency + Transfer;
        break;
      case CommStmt::CommPhase::Send:
        ++Sim.Stats.Messages;
        Sim.Stats.MsgBytes += Bytes;
        Sim.Stats.CommNs += M.MsgLatency;
        Sim.Pending[C->PairId] =
            Simulator::PendingSend{Sim.Stats.ComputeNs, Transfer};
        break;
      case CommStmt::CommPhase::Recv: {
        auto It = Sim.Pending.find(C->PairId);
        if (It == Sim.Pending.end()) {
          Sim.Stats.CommNs += M.MsgLatency + Transfer; // unmatched: no overlap
          break;
        }
        double Elapsed = Sim.Stats.ComputeNs - It->second.StartComputeNs;
        Sim.Stats.CommNs += std::max(0.0, It->second.CostNs - Elapsed);
        Sim.Pending.erase(It);
        break;
      }
      }
      continue;
    }

    const auto *Op = cast<OpaqueOp>(NodePtr.get());
    const OpaqueStmt &O = *Op->Src;
    uint64_t Elems = O.getRegion()
                         ? static_cast<uint64_t>(O.getRegion()->size())
                         : 1;
    Sim.chargeFlops(static_cast<unsigned>(
        std::min<double>(static_cast<double>(Elems) * O.getFlopsPerElem(),
                         4e9)));
    // Stream the referenced arrays through the cache in row-major order.
    auto StreamArray = [&](const ArraySymbol *A) {
      const ArrayBuffer *Buf = Store.buffer(A);
      if (!Buf)
        return;
      uint64_t Size = Buf->sizeBytes();
      for (uint64_t Off = 0; Off < Size; Off += A->getElemSize())
        Sim.chargeRef(Buf->baseAddr() + Off);
    };
    for (const ArraySymbol *A : O.arrayReads())
      StreamArray(A);
    for (const ArraySymbol *A : O.arrayWrites())
      StreamArray(A);
    if (O.isGlobalReduction() && Grid.NumProcs > 1) {
      unsigned Steps = static_cast<unsigned>(
          std::ceil(std::log2(static_cast<double>(Grid.NumProcs))));
      Sim.Stats.CommNs += M.ReduceStepCost * Steps;
      Sim.Stats.Messages += Steps;
    }
  }
  return Sim.Stats;
}

double exec::percentImprovement(const PerfStats &Base, const PerfStats &Opt) {
  if (Opt.totalNs() <= 0.0)
    return 0.0;
  return (Base.totalNs() / Opt.totalNs() - 1.0) * 100.0;
}

//===- exec/PerfModel.h - Trace-driven performance model -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Estimates one processor's execution time for a scalarized program on a
/// modeled machine. Array references stream through the machine's cache
/// hierarchy in the exact scalarized order, so fusion's temporal reuse
/// and contraction's cache-pollution relief show up as L1/L2 hit-rate
/// changes; arithmetic is charged per operation; communication operations
/// are charged latency + bandwidth, with split send/recv pairs earning
/// overlap credit from the computation between them. Regions in the
/// program are the per-processor share (the paper scales problem size
/// with the number of processors, section 5.4).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_EXEC_PERFMODEL_H
#define ALF_EXEC_PERFMODEL_H

#include "machine/Machine.h"
#include "scalarize/LoopIR.h"

#include <ostream>

namespace alf {
namespace exec {

/// Simulated execution statistics (times in nanoseconds).
struct PerfStats {
  uint64_t Flops = 0;
  uint64_t Refs = 0;     ///< Array element references issued.
  uint64_t L1Hits = 0;
  uint64_t L2Hits = 0;
  uint64_t MemRefs = 0;  ///< References served by memory.
  unsigned Messages = 0;
  uint64_t MsgBytes = 0;
  double ComputeNs = 0.0;
  double CommNs = 0.0;

  double totalNs() const { return ComputeNs + CommNs; }

  /// Miss ratio of the first-level cache.
  double l1MissRatio() const {
    return Refs == 0 ? 0.0
                     : 1.0 - static_cast<double>(L1Hits) /
                                 static_cast<double>(Refs);
  }
};

/// Simulates \p LP on \p M with processor grid \p Grid. Communication
/// operations along undistributed grid dimensions (extent 1) cost
/// nothing; global reductions cost log2(p) combine steps.
PerfStats simulate(const lir::LoopProgram &LP, const machine::MachineDesc &M,
                   const machine::ProcGrid &Grid);

/// Percentage improvement of \p Opt over \p Base (positive = faster),
/// the quantity plotted in Figures 9-11.
double percentImprovement(const PerfStats &Base, const PerfStats &Opt);

} // namespace exec
} // namespace alf

#endif // ALF_EXEC_PERFMODEL_H

//===- exec/Interpreter.cpp - Concrete loop-nest interpreter ----------------===//

#include "exec/Interpreter.h"

#include "exec/Eval.h"
#include "obs/Obs.h"
#include "support/Casting.h"
#include "support/StringUtil.h"

#include <cmath>

using namespace alf;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;

namespace {

/// Static-storage span names for per-kernel attribution (obs::Span keeps
/// the pointer, so the names must outlive every span). Clusters beyond
/// the table share one bucket; at that point per-kernel timing has
/// stopped being readable anyway.
const char *nestSpanName(unsigned ClusterId) {
  static const char *const Names[] = {
      "kernel.nest0",  "kernel.nest1",  "kernel.nest2",  "kernel.nest3",
      "kernel.nest4",  "kernel.nest5",  "kernel.nest6",  "kernel.nest7",
      "kernel.nest8",  "kernel.nest9",  "kernel.nest10", "kernel.nest11",
      "kernel.nest12", "kernel.nest13", "kernel.nest14", "kernel.nest15"};
  constexpr unsigned N = sizeof(Names) / sizeof(Names[0]);
  return ClusterId < N ? Names[ClusterId] : "kernel.nest_other";
}

} // namespace

void exec::runOnStorage(const LoopProgram &LP, Storage &Store) {
  obs::Span Outer("exec.interpreter");
  if (Outer.active())
    Outer.setBytes(Store.totalBytes());

  EvalContext Ctx;
  Ctx.Store = &Store;
  Ctx.LP = &LP;

  for (const auto &NodePtr : LP.nodes()) {
    if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
      obs::Span S(nestSpanName(Nest->ClusterId));
      iterateNest(*Nest, Ctx);
      continue;
    }
    if (isa<CommOp>(NodePtr.get()))
      continue; // single address space: halo exchange is a no-op
    execOpaqueStmt(*cast<OpaqueOp>(NodePtr.get())->Src, Ctx);
  }
}

RunResult exec::run(const LoopProgram &LP, uint64_t Seed) {
  Storage Store = allocateStorage(LP, Seed);
  runOnStorage(LP, Store);
  return collectResults(LP, Store);
}

bool exec::resultsMatch(const RunResult &A, const RunResult &B, double Tol,
                        std::string *WhyNot) {
  if (A.LiveOut.size() != B.LiveOut.size()) {
    if (WhyNot)
      *WhyNot = "different live-out array sets";
    return false;
  }
  for (const auto &[Name, DataA] : A.LiveOut) {
    auto It = B.LiveOut.find(Name);
    if (It == B.LiveOut.end()) {
      if (WhyNot)
        *WhyNot = "array " + Name + " missing from second result";
      return false;
    }
    const auto &DataB = It->second;
    if (DataA.size() != DataB.size()) {
      if (WhyNot)
        *WhyNot = "array " + Name + " has different sizes";
      return false;
    }
    for (size_t I = 0; I < DataA.size(); ++I) {
      double Diff = std::fabs(DataA[I] - DataB[I]);
      if (Diff > Tol && !(std::isnan(DataA[I]) && std::isnan(DataB[I]))) {
        if (WhyNot)
          *WhyNot = formatString("array %s element %zu differs: %g vs %g",
                                 Name.c_str(), I, DataA[I], DataB[I]);
        return false;
      }
    }
  }
  for (const auto &[Name, VA] : A.ScalarsOut) {
    auto It = B.ScalarsOut.find(Name);
    if (It == B.ScalarsOut.end()) {
      if (WhyNot)
        *WhyNot = "scalar " + Name + " missing from second result";
      return false;
    }
    // Reduction order varies with loop structure, so scalar results are
    // compared with a relative tolerance floor even when Tol is 0.
    double RelTol = std::max(Tol, 1e-9 * (std::fabs(VA) + 1.0));
    if (std::fabs(VA - It->second) > RelTol &&
        !(std::isnan(VA) && std::isnan(It->second))) {
      if (WhyNot)
        *WhyNot = formatString("scalar %s differs: %g vs %g", Name.c_str(),
                               VA, It->second);
      return false;
    }
  }
  return true;
}

//===- exec/Interpreter.cpp - Concrete loop-nest interpreter ----------------===//

#include "exec/Interpreter.h"

#include "support/ErrorHandling.h"
#include "support/StringUtil.h"

#include <cmath>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;

namespace {

/// Execution context shared by all nodes of one run. Scalars — program
/// parameters, reduction accumulators and contracted arrays' replacements
/// alike — live in the Storage scalar environment (symbol ids are unique
/// across both populations).
struct ExecContext {
  Storage Store;
  const LoopProgram *LP = nullptr;

  double readScalar(const ScalarSymbol *S) const {
    return Store.getScalar(S);
  }

  /// Maps absolute coordinates into a partially contracted array's
  /// rolling buffer; identity for fully allocated arrays.
  void wrapCoords(const ArraySymbol *A, std::vector<int64_t> &At) const {
    const xform::PartialPlan *Plan = LP->partialPlanFor(A);
    if (!Plan)
      return;
    for (unsigned D = 0; D < At.size(); ++D)
      At[D] = Plan->wrap(D, At[D]);
  }
};

double evalExpr(const Expr *E, ExecContext &Ctx,
                const std::vector<int64_t> &Idx) {
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return C->getValue();
  if (const auto *S = dyn_cast<ScalarRefExpr>(E))
    return Ctx.readScalar(S->getSymbol());
  if (const auto *A = dyn_cast<ArrayRefExpr>(E)) {
    const ArrayBuffer *Buf = Ctx.Store.buffer(A->getSymbol());
    if (!Buf)
      alf_unreachable("read of an array without storage");
    std::vector<int64_t> At(Idx.size());
    for (unsigned D = 0; D < Idx.size(); ++D)
      At[D] = Idx[D] + A->getOffset()[D];
    Ctx.wrapCoords(A->getSymbol(), At);
    return Buf->load(At);
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return UnaryExpr::evaluate(U->getOpcode(),
                               evalExpr(U->getOperand(), Ctx, Idx));
  const auto *B = cast<BinaryExpr>(E);
  return BinaryExpr::evaluate(B->getOpcode(), evalExpr(B->getLHS(), Ctx, Idx),
                              evalExpr(B->getRHS(), Ctx, Idx));
}

void execScalarStmt(const ScalarStmt &S, ExecContext &Ctx,
                    const std::vector<int64_t> &Idx) {
  double V = evalExpr(S.RHS.get(), Ctx, Idx);
  if (S.LHS.isScalar()) {
    if (S.Accumulate)
      V = ReduceStmt::combine(S.AccOp, Ctx.Store.getScalar(S.LHS.Scalar), V);
    Ctx.Store.setScalar(S.LHS.Scalar, V);
    return;
  }
  ArrayBuffer *Buf = Ctx.Store.buffer(S.LHS.Array);
  if (!Buf)
    alf_unreachable("write to an array without storage");
  std::vector<int64_t> At(Idx.size());
  for (unsigned D = 0; D < Idx.size(); ++D)
    At[D] = Idx[D] + S.LHS.Off[D];
  Ctx.wrapCoords(S.LHS.Array, At);
  Buf->store(At, V);
}

/// Runs \p Body for every point of \p R in the order given by \p LSV.
void iterateNest(const LoopNest &Nest, ExecContext &Ctx) {
  const Region &R = *Nest.R;
  unsigned Rank = R.rank();
  std::vector<int64_t> Idx(Rank);

  // Recursive descent over the loops, outermost first.
  for (const auto &[Acc, Init] : Nest.ScalarInits)
    Ctx.Store.setScalar(Acc, Init);

  std::function<void(unsigned)> RunLoop = [&](unsigned Loop) {
    if (Loop == Rank) {
      for (const ScalarStmt &S : Nest.Body)
        execScalarStmt(S, Ctx, Idx);
      return;
    }
    unsigned Dim = Nest.LSV.dimOf(Loop);
    if (Nest.LSV.dirOf(Loop) > 0) {
      for (int64_t I = R.lo(Dim); I <= R.hi(Dim); ++I) {
        Idx[Dim] = I;
        RunLoop(Loop + 1);
      }
    } else {
      for (int64_t I = R.hi(Dim); I >= R.lo(Dim); --I) {
        Idx[Dim] = I;
        RunLoop(Loop + 1);
      }
    }
  };
  RunLoop(0);
}

/// Deterministic element-wise semantics for opaque statements: every
/// write array's element becomes 1 + 0.5 * (sum of read arrays' elements
/// + sum of read scalars) + the ordinal of the write array; scalar writes
/// receive the region average of the same value.
void execOpaque(const OpaqueStmt &O, ExecContext &Ctx) {
  const Region *R = O.getRegion();
  if (!R) {
    double V = 1.0;
    for (const ScalarSymbol *S : O.scalarReads())
      V += 0.5 * Ctx.readScalar(S);
    unsigned Ordinal = 0;
    for (const ScalarSymbol *S : O.scalarWrites())
      Ctx.Store.setScalar(S, V + Ordinal++);
    return;
  }

  double ScalarBase = 1.0;
  for (const ScalarSymbol *S : O.scalarReads())
    ScalarBase += 0.5 * Ctx.readScalar(S);

  std::vector<double> ScalarAccum(O.scalarWrites().size(), 0.0);
  std::vector<int64_t> Idx(R->rank());
  std::function<void(unsigned)> Walk = [&](unsigned D) {
    if (D == R->rank()) {
      double V = ScalarBase;
      for (const ArraySymbol *A : O.arrayReads())
        if (const ArrayBuffer *Buf = Ctx.Store.buffer(A))
          if (Buf->bounds().rank() == Idx.size())
            V += 0.5 * Buf->load(Idx);
      unsigned Ordinal = 0;
      for (const ArraySymbol *A : O.arrayWrites())
        if (ArrayBuffer *Buf = Ctx.Store.buffer(A))
          if (Buf->bounds().rank() == Idx.size())
            Buf->store(Idx, V + Ordinal++);
      for (double &Acc : ScalarAccum)
        Acc += V;
      return;
    }
    for (int64_t I = R->lo(D); I <= R->hi(D); ++I) {
      Idx[D] = I;
      Walk(D + 1);
    }
  };
  Walk(0);

  double Scale = 1.0 / static_cast<double>(R->size());
  for (size_t I = 0; I < O.scalarWrites().size(); ++I)
    Ctx.Store.setScalar(O.scalarWrites()[I], ScalarAccum[I] * Scale);
}

} // namespace

RunResult exec::run(const LoopProgram &LP, uint64_t Seed) {
  const Program &P = LP.source();
  FootprintInfo FI = FootprintInfo::compute(P);

  ExecContext Ctx;
  Ctx.LP = &LP;
  Ctx.Store = Storage::allocate(
      P, FI, Seed,
      [&LP](const ArraySymbol *A) { return !LP.isContracted(A); },
      [&LP](const ArraySymbol *A) -> std::optional<Region> {
        if (const xform::PartialPlan *Plan = LP.partialPlanFor(A))
          return Plan->bufferRegion();
        return std::nullopt;
      });

  for (const auto &NodePtr : LP.nodes()) {
    if (const auto *Nest = dyn_cast<LoopNest>(NodePtr.get())) {
      iterateNest(*Nest, Ctx);
      continue;
    }
    if (isa<CommOp>(NodePtr.get()))
      continue; // single address space: halo exchange is a no-op
    execOpaque(*cast<OpaqueOp>(NodePtr.get())->Src, Ctx);
  }

  RunResult Result;
  for (const ArraySymbol *A : P.arrays()) {
    if (!A->isLiveOut())
      continue;
    if (const ArrayBuffer *Buf = Ctx.Store.buffer(A))
      Result.LiveOut.emplace(A->getName(), Buf->raw());
  }
  for (const Symbol *Sym : P.symbols())
    if (const auto *Sc = dyn_cast<ScalarSymbol>(Sym))
      Result.ScalarsOut.emplace(Sc->getName(), Ctx.Store.getScalar(Sc));
  return Result;
}

bool exec::resultsMatch(const RunResult &A, const RunResult &B, double Tol,
                        std::string *WhyNot) {
  if (A.LiveOut.size() != B.LiveOut.size()) {
    if (WhyNot)
      *WhyNot = "different live-out array sets";
    return false;
  }
  for (const auto &[Name, DataA] : A.LiveOut) {
    auto It = B.LiveOut.find(Name);
    if (It == B.LiveOut.end()) {
      if (WhyNot)
        *WhyNot = "array " + Name + " missing from second result";
      return false;
    }
    const auto &DataB = It->second;
    if (DataA.size() != DataB.size()) {
      if (WhyNot)
        *WhyNot = "array " + Name + " has different sizes";
      return false;
    }
    for (size_t I = 0; I < DataA.size(); ++I) {
      double Diff = std::fabs(DataA[I] - DataB[I]);
      if (Diff > Tol && !(std::isnan(DataA[I]) && std::isnan(DataB[I]))) {
        if (WhyNot)
          *WhyNot = formatString("array %s element %zu differs: %g vs %g",
                                 Name.c_str(), I, DataA[I], DataB[I]);
        return false;
      }
    }
  }
  for (const auto &[Name, VA] : A.ScalarsOut) {
    auto It = B.ScalarsOut.find(Name);
    if (It == B.ScalarsOut.end()) {
      if (WhyNot)
        *WhyNot = "scalar " + Name + " missing from second result";
      return false;
    }
    // Reduction order varies with loop structure, so scalar results are
    // compared with a relative tolerance floor even when Tol is 0.
    double RelTol = std::max(Tol, 1e-9 * (std::fabs(VA) + 1.0));
    if (std::fabs(VA - It->second) > RelTol &&
        !(std::isnan(VA) && std::isnan(It->second))) {
      if (WhyNot)
        *WhyNot = formatString("scalar %s differs: %g vs %g", Name.c_str(),
                               VA, It->second);
      return false;
    }
  }
  return true;
}

//===- exec/Storage.cpp - Array storage and address mapping ----------------===//

#include "exec/Storage.h"

#include <cassert>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;

ArrayBuffer::ArrayBuffer(const ArraySymbol *Sym, const Region &Bounds,
                         uint64_t BaseAddr)
    : Sym(Sym), Bounds(Bounds), BaseAddr(BaseAddr) {
  unsigned Rank = Bounds.rank();
  Strides.assign(Rank, 1);
  for (int D = static_cast<int>(Rank) - 2; D >= 0; --D)
    Strides[D] = Strides[D + 1] * Bounds.extent(D + 1);
  Data.assign(static_cast<size_t>(Bounds.size()), 0.0);
}

int64_t ArrayBuffer::linearIndex(const std::vector<int64_t> &Idx) const {
  assert(Idx.size() == Bounds.rank() && "index rank mismatch");
  int64_t Linear = 0;
  for (unsigned D = 0; D < Bounds.rank(); ++D) {
    assert(Idx[D] >= Bounds.lo(D) && Idx[D] <= Bounds.hi(D) &&
           "index outside allocated bounds");
    Linear += (Idx[D] - Bounds.lo(D)) * Strides[D];
  }
  return Linear;
}

void ArrayBuffer::fillRandom(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (double &V : Data)
    V = Rng.nextDouble(-1.0, 1.0);
}

void ArrayBuffer::fillZero() {
  for (double &V : Data)
    V = 0.0;
}

uint64_t exec::hashName(const std::string &Name) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

Storage Storage::allocate(
    const Program &P, const FootprintInfo &FI, uint64_t Seed,
    const std::function<bool(const ArraySymbol *)> &Allocate,
    const std::function<std::optional<Region>(const ArraySymbol *)>
        &BoundsOverride) {
  Storage S;
  // Lay arrays out back to back, line-aligned, starting at a nonzero base
  // so address 0 is never used. A per-array stagger (a varying odd number
  // of cache lines) breaks the pathological case where equal-sized arrays
  // all map to the same cache sets — real allocators and padded commons
  // stagger the same way.
  uint64_t NextBase = 4096;
  unsigned Placed = 0;
  for (const ArraySymbol *A : P.arrays()) {
    if (!Allocate(A))
      continue;
    const Region *Bounds = FI.boundsFor(A);
    if (!Bounds)
      continue; // never referenced: no storage
    std::optional<Region> Override;
    if (BoundsOverride)
      Override = BoundsOverride(A);
    ArrayBuffer Buf(A, Override ? *Override : *Bounds, NextBase);
    NextBase += (Buf.sizeBytes() + 63) / 64 * 64;
    NextBase += ((Placed * 7 + 3) % 61) * 64;
    ++Placed;
    if (A->isLiveIn())
      Buf.fillRandom(Seed ^ hashName(A->getName()));
    else
      Buf.fillZero();
    S.TotalBytes += Buf.sizeBytes();
    S.Buffers.emplace(A->getId(), std::move(Buf));
  }
  // Scalars named by the program (parameters) get deterministic values in
  // [0.5, 1.5) so divisions stay well conditioned.
  for (const Symbol *Sym : P.symbols()) {
    if (const auto *Sc = dyn_cast<ScalarSymbol>(Sym)) {
      SplitMix64 Rng(Seed ^ hashName(Sc->getName()));
      S.Scalars[Sc->getId()] = 0.5 + Rng.nextDouble();
    }
  }
  return S;
}

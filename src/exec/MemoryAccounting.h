//===- exec/MemoryAccounting.h - Memory usage accounting -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurements behind the paper's Figures 7 and 8: static array
/// counts (with the compiler/user split), peak simultaneously-live array
/// counts (`lb`/`la`), the derived problem-size scaling factor
/// C(lb, la) = 100 x (lb - la)/la, and the largest problem size that fits
/// a fixed memory budget (found by search, mirroring the paper's
/// experiment with OS-limited process sizes).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_EXEC_MEMORYACCOUNTING_H
#define ALF_EXEC_MEMORYACCOUNTING_H

#include "ir/Program.h"

#include <cstdint>
#include <functional>
#include <set>

namespace alf {
namespace exec {

/// Static and dynamic array census of one compiled program.
struct MemoryCensus {
  unsigned StaticArrays = 0;   ///< Arrays requiring storage.
  unsigned StaticCompiler = 0; ///< ... of which compiler temporaries.
  unsigned StaticUser = 0;     ///< ... of which user arrays.
  unsigned PeakLive = 0;       ///< Paper's l: max simultaneously live.
  uint64_t PeakBytes = 0;      ///< Bytes live at the peak point.
};

/// Computes the census of \p P, treating the arrays in \p Contracted as
/// removed (pass an empty set for the "without contraction" column).
MemoryCensus computeCensus(const ir::Program &P,
                           const std::set<const ir::ArraySymbol *> &Contracted);

/// The paper's percent change in maximum problem size,
/// C(lb, la) = 100 x (lb - la) / la; returns +infinity when la == 0 (the
/// contracted program's memory use is independent of problem size, as for
/// EP).
double problemSizeChangePercent(unsigned Lb, unsigned La);

/// Largest N in [1, MaxN] with BytesForN(N) <= Budget (0 when even N=1
/// does not fit). BytesForN must be monotonically nondecreasing.
int64_t findMaxProblemSize(const std::function<uint64_t(int64_t)> &BytesForN,
                           uint64_t Budget, int64_t MaxN);

} // namespace exec
} // namespace alf

#endif // ALF_EXEC_MEMORYACCOUNTING_H

//===- exec/ParallelExecutor.h - Tiled multithreaded executor --*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multithreaded execution of scalarized programs. Each loop nest whose
/// dependence structure allows it (xform::analyzeNestParallelism on the
/// UDVs fusion computed for the nest) runs its parallel loop split into
/// one contiguous row-tile per worker; nests whose outermost loop
/// carries a dependence fall back to tile-with-barriers (outer loops
/// sequential, one pool dispatch — hence one barrier — per outer
/// iteration), and reducing or fully carried nests run sequentially.
/// Array buffers are shared (tiles never touch the same element, by
/// legality); contracted arrays' replacement scalars are kept in a
/// per-thread overlay so each worker has private contraction storage.
///
/// Results are bit-identical to the sequential interpreter: tile
/// ownership is deterministic, every element's arithmetic is unchanged,
/// and reductions — the one place parallelism would reassociate floating
/// point — are never parallelized.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_EXEC_PARALLELEXECUTOR_H
#define ALF_EXEC_PARALLELEXECUTOR_H

#include "exec/Interpreter.h"
#include "scalarize/LoopIR.h"
#include "xform/Parallelize.h"
#include "xform/Strategy.h"

#include <string>
#include <vector>

namespace alf {
namespace exec {

/// Execution knobs for the parallel executor.
struct ParallelOptions {
  unsigned NumThreads = 0; ///< 0 = std::thread::hardware_concurrency()
};

/// The per-node parallelism decisions for one LoopProgram, in node order
/// (non-nest nodes get a default sequential plan).
struct ParallelSchedule {
  std::vector<xform::NestParallelPlan> NodePlans;

  /// Number of nests that run some loop in parallel.
  unsigned numParallelNests() const;

  /// The plan of the \p I-th loop nest (skipping comm/opaque nodes), for
  /// tests that address nests positionally. Returns null when absent.
  const xform::NestParallelPlan *planForNest(const lir::LoopProgram &LP,
                                             unsigned I) const;
};

/// Computes the parallelism decision of every nest of \p LP and records
/// the outcome in the "parallel" Statistic group (nests-outer-parallel,
/// nests-inner-parallel, nests-sequential).
ParallelSchedule planParallelism(const lir::LoopProgram &LP);

/// One-line-per-nest report of the schedule: which nests run parallel,
/// at which loop, and why (rendered by xform::parallelismReport).
std::string describeSchedule(const lir::LoopProgram &LP,
                             const ParallelSchedule &Sched);

/// Like describeSchedule, prefixed with the execution mode the program
/// will run under; for ExecMode::NativeJit the per-nest parallel plans do
/// not apply (the whole program executes as one compiled kernel) and the
/// report says so.
std::string describeSchedule(const lir::LoopProgram &LP,
                             const ParallelSchedule &Sched,
                             xform::ExecMode Mode);

/// Runs \p LP under \p Sched with \p Opts.NumThreads workers. Same
/// observable semantics as exec::run on the same seed.
RunResult runParallel(const lir::LoopProgram &LP, uint64_t Seed,
                      const ParallelOptions &Opts,
                      const ParallelSchedule &Sched);

/// Executes \p LP under \p Sched against caller-provided storage, in
/// place (the parallel counterpart of exec::runOnStorage). The runtime
/// engine pairs this with a cached schedule so a warm flush pays no
/// parallelism re-analysis.
void runParallelOnStorage(const lir::LoopProgram &LP, Storage &Store,
                          const ParallelOptions &Opts,
                          const ParallelSchedule &Sched);

/// Convenience: plan, then run.
RunResult runParallel(const lir::LoopProgram &LP, uint64_t Seed,
                      const ParallelOptions &Opts = ParallelOptions());

/// Dispatches on the execution mode: the sequential interpreter, the
/// parallel executor, or the native JIT backend (which itself falls back
/// to the interpreter when no system compiler is available).
RunResult runWithMode(const lir::LoopProgram &LP, uint64_t Seed,
                      xform::ExecMode Mode,
                      const ParallelOptions &Opts = ParallelOptions());

} // namespace exec
} // namespace alf

#endif // ALF_EXEC_PARALLELEXECUTOR_H

//===- runtime/Trace.h - Trace representation internals --------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal representation of a recorded trace. User-facing Ex trees hold
/// shared handles; at record time they are lowered to slot-based TExpr
/// trees so the trace references arrays by dense slot index. That makes
/// two things cheap: liveness (the engine holds exactly one reference per
/// slot, so use_count > 1 at flush time means a handle survives outside)
/// and the structural cache key (slots, offsets and opcodes serialize to
/// a string independent of buffer addresses, user names and constant
/// values — constants live in per-trace value tables bound at execution).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_RUNTIME_TRACE_H
#define ALF_RUNTIME_TRACE_H

#include "ir/Expr.h"
#include "ir/Offset.h"
#include "ir/Region.h"
#include "ir/Stmt.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace alf {
namespace runtime {
namespace detail {

class EngineImpl;

/// Shared state behind one Array handle. While traced (Slot >= 0) the
/// value is a recipe; after a flush that classified it live-out, the
/// value is materialized row-major over its footprint Bounds.
struct ArrayState {
  EngineImpl *E = nullptr;
  std::string Name;
  ir::Region Domain;
  int Slot = -1; ///< slot in the engine's pending trace, -1 when none

  bool Materialized = false;
  ir::Region Bounds;        ///< bounds of Data once materialized
  std::vector<double> Data; ///< row-major over Bounds

  /// Value at absolute coordinates; 0 outside Bounds or before any
  /// materialization (zero-halo semantics).
  double load(const std::vector<int64_t> &At) const;

  /// Stores at absolute coordinates; \p At must lie inside Bounds.
  void store(const std::vector<int64_t> &At, double V);

  /// Row-major linear index of \p At in Data, or -1 outside Bounds.
  int64_t linearIndex(const std::vector<int64_t> &At) const;
};

/// Shared state behind one Scalar handle.
struct ScalarState {
  EngineImpl *E = nullptr;
  double Value = 0.0;
  bool Pending = false; ///< produced by a reduce still in the trace
  int ReduceSlot = -1;  ///< index among the pending trace's reductions
};

/// One node of a user-built deferred expression.
struct ExNode {
  enum class K { Const, Scalar, Ref, Un, Bin };

  K Kind;
  double C = 0.0;
  std::shared_ptr<ScalarState> Sc;
  std::shared_ptr<ArrayState> Arr;
  ir::Offset Off;
  ir::UnaryExpr::Opcode UOp = ir::UnaryExpr::Opcode::Neg;
  ir::BinaryExpr::Opcode BOp = ir::BinaryExpr::Opcode::Add;
  std::shared_ptr<ExNode> A, B;

  explicit ExNode(K Kind) : Kind(Kind) {}
};

/// A lowered (slot-based) trace expression. Constants and already-known
/// scalars are references into the trace's value tables, so structurally
/// equal traces with different values serialize to the same cache key.
struct TExpr {
  enum class K { ConstSlot, InputSlot, ReduceSlot, Ref, Un, Bin };

  K Kind;
  unsigned Slot = 0; ///< table index (ConstSlot/InputSlot/ReduceSlot) or
                     ///< array slot (Ref)
  ir::Offset Off;    ///< Ref only
  ir::UnaryExpr::Opcode UOp = ir::UnaryExpr::Opcode::Neg;
  ir::BinaryExpr::Opcode BOp = ir::BinaryExpr::Opcode::Add;
  std::unique_ptr<TExpr> A, B;

  explicit TExpr(K Kind) : Kind(Kind) {}
};

/// One array slot of the pending trace. The engine's State reference is
/// deliberately the only one it holds, so `State.use_count() > 1` at
/// flush time is exactly "a handle (or an Ex) survives outside".
struct ArraySlot {
  std::shared_ptr<ArrayState> State;
  bool LiveIn = false;   ///< carried a materialized value into the trace
  bool Written = false;  ///< some trace statement assigns to this slot
  bool External = false; ///< computed at flush from handle liveness
};

/// One recorded normal-form statement.
struct TraceStmt {
  enum class K { Assign, Update, Reduce };

  K Kind;
  unsigned Lhs = 0; ///< array slot (Assign/Update), reduce slot (Reduce)
  ir::Offset LhsOff;
  ir::Region R;
  const semiring::Semiring *SR = &semiring::plusTimes();
  std::unique_ptr<TExpr> Rhs;
};

/// Serializes \p T structurally ("a3@(0,-1)", "c2", "b0(...)").
void serializeTExpr(const TExpr &T, std::string &Out);

} // namespace detail
} // namespace runtime
} // namespace alf

#endif // ALF_RUNTIME_TRACE_H

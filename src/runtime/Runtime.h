//===- runtime/Runtime.h - Deferred-evaluation array API -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazy array-programming front end over the ALF pipeline. Element-wise
/// operations, shifted references and reductions issued through an Engine
/// do not execute; each appends one normal-form statement
/// `[R] A@d0 := f(A1@d1, ..., As@ds)` to a growing trace. The trace is
/// lowered and executed ("flushed") when a value is observed (Array::get,
/// Scalar::value), when a traced array is mutated directly, when the
/// trace reaches the configured length cap, or on an explicit flush().
///
/// A flush builds an ir::Program from the trace, runs it through
/// driver::Pipeline (normalize -> ASDG -> fusion-for-contraction ->
/// scalarize) and executes the loop program against the live handles'
/// buffers with the configured executor. Whether a traced array is a
/// contractible temporary or a live-out result is decided by *handle
/// liveness*: an array still referenced outside the engine at flush time
/// is live-out; one whose every handle was dropped is a dead temporary
/// the fusion-for-contraction strategy may eliminate entirely.
///
/// Flushes are memoized by a structural trace cache keyed on the shapes,
/// offsets and operation structure of the trace — independent of buffer
/// contents and of constant values (constants are lowered to bound-late
/// parameter scalars). A steady-state loop that issues the same trace
/// shape every iteration pays analysis, scalarization and (under
/// ExecMode::NativeJit) kernel compilation exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_RUNTIME_RUNTIME_H
#define ALF_RUNTIME_RUNTIME_H

#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "ir/Expr.h"
#include "ir/Offset.h"
#include "ir/Region.h"
#include "ir/Stmt.h"
#include "verify/Verify.h"
#include "xform/Strategy.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace alf {
namespace runtime {

namespace detail {
struct ArrayState;
struct ScalarState;
struct ExNode;
class EngineImpl;
} // namespace detail

class Engine;
class Ex;

/// Reduction operators, shared with the IR.
using RedOp = ir::ReduceStmt::ReduceOpKind;

/// A handle to a (possibly still deferred) array value. Handles are
/// cheap shared references; the engine uses their liveness at flush time
/// to classify traced arrays as live-out results or contractible
/// temporaries, so drop handles you no longer need. Reads outside an
/// array's materialized bounds return 0 (the engine's halo semantics).
class Array {
public:
  Array() = default;

  bool valid() const { return St != nullptr; }
  const std::string &name() const;
  const ir::Region &domain() const;

  /// True while this array's value is only a recipe in its engine's
  /// pending trace.
  bool deferred() const;

  /// Element at absolute coordinates \p At; flushes the owning engine's
  /// trace first when this array is deferred. Out-of-bounds reads are 0.
  double get(const std::vector<int64_t> &At) const;

  /// Overwrites one element. Flushes first when this array is traced (a
  /// direct mutation would otherwise be reordered against the trace).
  void set(const std::vector<int64_t> &At, double V);

  /// Overwrites the whole domain with \p RowMajor (row-major order,
  /// size == domain().size()). Flushes first when traced.
  void setAll(const std::vector<double> &RowMajor);

  /// The domain's values in row-major order (flushes when deferred).
  std::vector<double> values() const;

private:
  friend class Engine;
  friend class Ex;
  friend class detail::EngineImpl;
  friend Ex shift(const Array &A, ir::Offset Off);
  explicit Array(std::shared_ptr<detail::ArrayState> St) : St(std::move(St)) {}

  std::shared_ptr<detail::ArrayState> St;
};

/// A handle to a (possibly still deferred) scalar, produced by
/// Engine::reduce. Referencing a deferred Scalar inside a later Ex of the
/// same trace is allowed and does not force a flush.
class Scalar {
public:
  Scalar() = default;

  bool valid() const { return St != nullptr; }

  /// True while the producing reduction is still in the pending trace.
  bool deferred() const;

  /// The reduction result; flushes the owning engine first when deferred.
  double value() const;

private:
  friend class Engine;
  friend class Ex;
  friend class detail::EngineImpl;
  explicit Scalar(std::shared_ptr<detail::ScalarState> St)
      : St(std::move(St)) {}

  std::shared_ptr<detail::ScalarState> St;
};

/// A deferred element-wise expression: a tree over array references at
/// constant offsets, scalar references and constants — exactly the
/// right-hand side the paper's normal form admits. Building an Ex never
/// computes anything.
class Ex {
public:
  Ex(double C);
  Ex(const Array &A); ///< A at the null offset.
  Ex(const Scalar &S);

  explicit Ex(std::shared_ptr<detail::ExNode> N) : N(std::move(N)) {}
  const std::shared_ptr<detail::ExNode> &node() const { return N; }

private:
  std::shared_ptr<detail::ExNode> N;
};

/// Reference to \p A shifted by constant offset \p Off (the paper's A@d).
Ex shift(const Array &A, ir::Offset Off);

Ex operator+(const Ex &L, const Ex &R);
Ex operator-(const Ex &L, const Ex &R);
Ex operator*(const Ex &L, const Ex &R);
Ex operator/(const Ex &L, const Ex &R);
Ex operator-(const Ex &E);
Ex emin(const Ex &L, const Ex &R);
Ex emax(const Ex &L, const Ex &R);
Ex eabs(const Ex &E);
Ex esqrt(const Ex &E);
Ex eexp(const Ex &E);
Ex elog(const Ex &E);
Ex esin(const Ex &E);
Ex ecos(const Ex &E);
Ex recip(const Ex &E);

/// What forced a flush.
enum class FlushTrigger { None, Explicit, Observe, Mutate, Cap, Shutdown };

/// Printable trigger name ("explicit", "observe", ...).
const char *getFlushTriggerName(FlushTrigger T);

/// What one flush did (Engine::lastFlush).
struct FlushInfo {
  unsigned TraceLen = 0;   ///< statements lowered by this flush
  unsigned Clusters = 0;   ///< fused clusters after the strategy
  unsigned Contracted = 0; ///< arrays contracted away entirely
  bool CacheHit = false;   ///< served by the structural trace cache
  bool Compiled = false;   ///< this flush invoked the kernel compiler
  bool UsedJit = false;    ///< executed as native code
  FlushTrigger Trigger = FlushTrigger::None;
};

/// Cumulative per-engine counters (global counterparts live in the
/// "runtime" Statistic group).
struct EngineStats {
  uint64_t Flushes = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t StmtsRecorded = 0;
  uint64_t KernelCompiles = 0;
};

/// Configuration of one Engine.
struct EngineOptions {
  /// Optimization strategy applied to every flushed trace.
  xform::Strategy Strat = xform::Strategy::C2F3;

  /// Executor for flushed traces. NativeJit composes with the trace
  /// cache: a structurally repeated trace reuses the already-loaded
  /// kernel, so warm flushes invoke no compiler.
  xform::ExecMode Mode = xform::ExecMode::Sequential;

  /// Auto-flush when the trace reaches this many statements (0 = only
  /// explicit/observation flushes). Longer traces expose more fusion and
  /// contraction; shorter ones bound latency and memory.
  unsigned MaxTraceLen = 64;

  /// Memoize compiled traces by structure.
  bool TraceCache = true;

  exec::ParallelOptions Parallel; ///< ExecMode::Parallel knobs
  exec::JitOptions Jit;           ///< ExecMode::NativeJit knobs

  /// Translation-validation level applied to every flush's pipeline (see
  /// verify::VerifyLevel). Cached traces were verified when first
  /// compiled; re-executions do not re-verify.
  verify::VerifyLevel Verify = verify::defaultVerifyLevel();
};

/// A deferred-evaluation engine: records array statements into a trace
/// and compiles/executes the trace on demand. Handles are bound to the
/// engine that created them; the engine flushes on destruction so
/// surviving handles keep their (materialized) values afterwards.
class Engine {
public:
  explicit Engine(EngineOptions Opts = EngineOptions());
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// A materialized zero-initialized array over \p Domain, for feeding
  /// input data (Array::set / Array::setAll).
  Array input(std::string Name, const ir::Region &Domain);

  /// Records `[R] T := E` with a fresh array T and returns its handle.
  Array compute(const ir::Region &R, const Ex &E, std::string Name = "");

  /// Records the in-place write `[R] A@Off := E`. Statements later in
  /// the trace (and later flushes) see the updated values.
  void update(const Array &A, const ir::Offset &Off, const ir::Region &R,
              const Ex &E);

  /// Records the full reduction `[R] s := Op<< E` and returns the
  /// deferred scalar s. The RedOp form folds with the canonical semiring
  /// of that operator; the Semiring form accepts any registered semiring
  /// and keys the kernel cache on its name.
  Scalar reduce(RedOp Op, const ir::Region &R, const Ex &E);
  Scalar reduce(const semiring::Semiring &SR, const ir::Region &R,
                const Ex &E);

  /// Compiles and executes the pending trace now.
  void flush();

  /// Number of statements recorded but not yet flushed.
  unsigned pending() const;

  const FlushInfo &lastFlush() const;
  const EngineStats &stats() const;
  const EngineOptions &options() const;

private:
  std::unique_ptr<detail::EngineImpl> Impl;
};

} // namespace runtime
} // namespace alf

#endif // ALF_RUNTIME_RUNTIME_H

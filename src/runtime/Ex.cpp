//===- runtime/Ex.cpp - Deferred expression builders ------------------------===//

#include "runtime/Runtime.h"
#include "runtime/Trace.h"

#include <cassert>

using namespace alf;
using namespace alf::runtime;
using namespace alf::runtime::detail;

namespace {

Ex unary(ir::UnaryExpr::Opcode Op, const Ex &E) {
  auto N = std::make_shared<ExNode>(ExNode::K::Un);
  N->UOp = Op;
  N->A = E.node();
  return Ex(std::move(N));
}

Ex binary(ir::BinaryExpr::Opcode Op, const Ex &L, const Ex &R) {
  auto N = std::make_shared<ExNode>(ExNode::K::Bin);
  N->BOp = Op;
  N->A = L.node();
  N->B = R.node();
  return Ex(std::move(N));
}

} // namespace

Ex::Ex(double C) {
  auto Node = std::make_shared<ExNode>(ExNode::K::Const);
  Node->C = C;
  N = std::move(Node);
}

Ex::Ex(const Array &A) {
  assert(A.valid() && "expression over an empty Array handle");
  auto Node = std::make_shared<ExNode>(ExNode::K::Ref);
  Node->Arr = A.St;
  Node->Off = ir::Offset::zero(A.St->Domain.rank());
  N = std::move(Node);
}

Ex::Ex(const Scalar &S) {
  assert(S.valid() && "expression over an empty Scalar handle");
  auto Node = std::make_shared<ExNode>(ExNode::K::Scalar);
  Node->Sc = S.St;
  N = std::move(Node);
}

Ex runtime::shift(const Array &A, ir::Offset Off) {
  assert(A.valid() && "shift of an empty Array handle");
  assert(Off.rank() == A.St->Domain.rank() && "shift rank mismatch");
  auto Node = std::make_shared<ExNode>(ExNode::K::Ref);
  Node->Arr = A.St;
  Node->Off = std::move(Off);
  return Ex(std::move(Node));
}

Ex runtime::operator+(const Ex &L, const Ex &R) {
  return binary(ir::BinaryExpr::Opcode::Add, L, R);
}
Ex runtime::operator-(const Ex &L, const Ex &R) {
  return binary(ir::BinaryExpr::Opcode::Sub, L, R);
}
Ex runtime::operator*(const Ex &L, const Ex &R) {
  return binary(ir::BinaryExpr::Opcode::Mul, L, R);
}
Ex runtime::operator/(const Ex &L, const Ex &R) {
  return binary(ir::BinaryExpr::Opcode::Div, L, R);
}
Ex runtime::emin(const Ex &L, const Ex &R) {
  return binary(ir::BinaryExpr::Opcode::Min, L, R);
}
Ex runtime::emax(const Ex &L, const Ex &R) {
  return binary(ir::BinaryExpr::Opcode::Max, L, R);
}

Ex runtime::operator-(const Ex &E) {
  return unary(ir::UnaryExpr::Opcode::Neg, E);
}
Ex runtime::eabs(const Ex &E) { return unary(ir::UnaryExpr::Opcode::Abs, E); }
Ex runtime::esqrt(const Ex &E) {
  return unary(ir::UnaryExpr::Opcode::Sqrt, E);
}
Ex runtime::eexp(const Ex &E) { return unary(ir::UnaryExpr::Opcode::Exp, E); }
Ex runtime::elog(const Ex &E) { return unary(ir::UnaryExpr::Opcode::Log, E); }
Ex runtime::esin(const Ex &E) { return unary(ir::UnaryExpr::Opcode::Sin, E); }
Ex runtime::ecos(const Ex &E) { return unary(ir::UnaryExpr::Opcode::Cos, E); }
Ex runtime::recip(const Ex &E) {
  return unary(ir::UnaryExpr::Opcode::Recip, E);
}

//===- runtime/Engine.cpp - Deferred-evaluation engine ----------------------===//

#include "runtime/Runtime.h"

#include "analysis/Footprint.h"
#include "driver/Pipeline.h"
#include "exec/Eval.h"
#include "exec/Interpreter.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "exec/Storage.h"
#include "obs/Obs.h"
#include "runtime/Trace.h"
#include "support/ErrorHandling.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"

#include <cassert>
#include <map>
#include <optional>

using namespace alf;
using namespace alf::runtime;
using namespace alf::runtime::detail;

namespace {

ALF_STATISTIC(NumRuntimeFlushes, "runtime", "Trace flushes executed");
ALF_STATISTIC(NumRuntimeStmts, "runtime",
              "Array statements recorded into traces");
ALF_STATISTIC(NumRuntimeCacheHits, "runtime",
              "Flushes served by the structural trace cache");
ALF_STATISTIC(NumRuntimeCacheMisses, "runtime",
              "Flushes that analyzed and compiled a new trace shape");
ALF_STATISTIC(NumRuntimeContracted, "runtime",
              "Traced arrays contracted away, summed over flushes");

} // namespace

//===----------------------------------------------------------------------===//
// ArrayState
//===----------------------------------------------------------------------===//

int64_t ArrayState::linearIndex(const std::vector<int64_t> &At) const {
  if (!Materialized || At.size() != Bounds.rank())
    return -1;
  int64_t Linear = 0;
  int64_t Stride = 1;
  for (int D = static_cast<int>(Bounds.rank()) - 1; D >= 0; --D) {
    unsigned UD = static_cast<unsigned>(D);
    if (At[UD] < Bounds.lo(UD) || At[UD] > Bounds.hi(UD))
      return -1;
    Linear += (At[UD] - Bounds.lo(UD)) * Stride;
    Stride *= Bounds.extent(UD);
  }
  return Linear;
}

double ArrayState::load(const std::vector<int64_t> &At) const {
  int64_t I = linearIndex(At);
  return I < 0 ? 0.0 : Data[static_cast<size_t>(I)];
}

void ArrayState::store(const std::vector<int64_t> &At, double V) {
  int64_t I = linearIndex(At);
  assert(I >= 0 && "store outside the array's materialized bounds");
  Data[static_cast<size_t>(I)] = V;
}

//===----------------------------------------------------------------------===//
// Trace serialization
//===----------------------------------------------------------------------===//

void detail::serializeTExpr(const TExpr &T, std::string &Out) {
  switch (T.Kind) {
  case TExpr::K::ConstSlot:
    Out += formatString("c%u", T.Slot);
    return;
  case TExpr::K::InputSlot:
    Out += formatString("s%u", T.Slot);
    return;
  case TExpr::K::ReduceSlot:
    Out += formatString("r%u", T.Slot);
    return;
  case TExpr::K::Ref:
    Out += formatString("a%u", T.Slot);
    Out += T.Off.str();
    return;
  case TExpr::K::Un:
    Out += formatString("u%d(", static_cast<int>(T.UOp));
    serializeTExpr(*T.A, Out);
    Out += ')';
    return;
  case TExpr::K::Bin:
    Out += formatString("b%d(", static_cast<int>(T.BOp));
    serializeTExpr(*T.A, Out);
    Out += ',';
    serializeTExpr(*T.B, Out);
    Out += ')';
    return;
  }
}

//===----------------------------------------------------------------------===//
// EngineImpl
//===----------------------------------------------------------------------===//

namespace alf {
namespace runtime {
namespace detail {

class EngineImpl {
public:
  EngineOptions Opts;
  FlushInfo Last;
  EngineStats Stats;

  // --- pending trace ---
  std::vector<ArraySlot> Slots;
  std::vector<TraceStmt> Trace;
  std::vector<double> ConstVals;
  std::vector<double> InputVals;
  std::vector<std::shared_ptr<ScalarState>> InputStates;
  std::map<const ScalarState *, unsigned> InputSlotOf;
  std::vector<std::shared_ptr<ScalarState>> ReduceStates;
  unsigned NextTemp = 0;

  // --- trace cache ---
  /// Everything a structurally repeated trace can reuse: the rebuilt
  /// program (owning the symbols every other field references), the
  /// compiled loop program, its footprints, an optional parallel
  /// schedule, and the slot -> symbol binding tables.
  struct CacheEntry {
    std::unique_ptr<ir::Program> P;
    std::optional<driver::CompiledProgram> CP;
    analysis::FootprintInfo FI;
    std::optional<exec::ParallelSchedule> Sched;
    std::vector<const ir::ArraySymbol *> SlotArrays;
    std::vector<const ir::ScalarSymbol *> ConstSyms;
    std::vector<const ir::ScalarSymbol *> InputSyms;
    std::vector<const ir::ScalarSymbol *> ReduceSyms;
  };
  std::map<std::string, std::unique_ptr<CacheEntry>> Cache;
  std::unique_ptr<exec::JitEngine> Jit;
  std::unique_ptr<exec::JitEngine> JitSimd; // Opts.Jit with Vectorize on

  explicit EngineImpl(EngineOptions InOpts) : Opts(std::move(InOpts)) {}

  unsigned slotFor(const std::shared_ptr<ArrayState> &St);
  std::unique_ptr<TExpr> lower(const ExNode &N);
  void recorded();
  void flush(FlushTrigger T);

  Array compute(const ir::Region &R, const Ex &E, std::string Name);
  void update(const Array &A, const ir::Offset &Off, const ir::Region &R,
              const Ex &E);
  Scalar reduce(const semiring::Semiring &SR, const ir::Region &R,
                const Ex &E);

private:
  std::string serializeKey() const;
  std::unique_ptr<CacheEntry> buildEntry();
  ir::ExprPtr toExpr(const TExpr &T, const CacheEntry &E) const;
  void execute(CacheEntry &E, FlushInfo &Info);
  void copyIn(exec::ArrayBuffer &Buf, const ArrayState &St) const;
  void copyOut(ArrayState &St, const exec::ArrayBuffer &Buf) const;
};

} // namespace detail
} // namespace runtime
} // namespace alf

unsigned EngineImpl::slotFor(const std::shared_ptr<ArrayState> &St) {
  assert(St->E == this && "array handle belongs to a different engine");
  if (St->Slot < 0) {
    St->Slot = static_cast<int>(Slots.size());
    ArraySlot S;
    S.State = St;
    S.LiveIn = St->Materialized;
    Slots.push_back(std::move(S));
  }
  return static_cast<unsigned>(St->Slot);
}

std::unique_ptr<TExpr> EngineImpl::lower(const ExNode &N) {
  switch (N.Kind) {
  case ExNode::K::Const: {
    auto T = std::make_unique<TExpr>(TExpr::K::ConstSlot);
    T->Slot = static_cast<unsigned>(ConstVals.size());
    ConstVals.push_back(N.C);
    return T;
  }
  case ExNode::K::Scalar: {
    if (N.Sc->Pending) {
      assert(N.Sc->E == this && "scalar handle from a different engine");
      auto T = std::make_unique<TExpr>(TExpr::K::ReduceSlot);
      T->Slot = static_cast<unsigned>(N.Sc->ReduceSlot);
      return T;
    }
    // Known value: snapshot it into the input table. One slot per
    // distinct handle so repeated uses share a parameter.
    auto [It, Inserted] = InputSlotOf.try_emplace(
        N.Sc.get(), static_cast<unsigned>(InputVals.size()));
    if (Inserted) {
      InputVals.push_back(N.Sc->Value);
      InputStates.push_back(N.Sc);
    }
    auto T = std::make_unique<TExpr>(TExpr::K::InputSlot);
    T->Slot = It->second;
    return T;
  }
  case ExNode::K::Ref: {
    auto T = std::make_unique<TExpr>(TExpr::K::Ref);
    T->Slot = slotFor(N.Arr);
    T->Off = N.Off;
    return T;
  }
  case ExNode::K::Un: {
    auto T = std::make_unique<TExpr>(TExpr::K::Un);
    T->UOp = N.UOp;
    T->A = lower(*N.A);
    return T;
  }
  case ExNode::K::Bin: {
    auto T = std::make_unique<TExpr>(TExpr::K::Bin);
    T->BOp = N.BOp;
    T->A = lower(*N.A);
    T->B = lower(*N.B);
    return T;
  }
  }
  return nullptr;
}

void EngineImpl::recorded() {
  ++Stats.StmtsRecorded;
  ++NumRuntimeStmts;
  obs::instant("runtime.record");
  if (Opts.MaxTraceLen && Trace.size() >= Opts.MaxTraceLen)
    flush(FlushTrigger::Cap);
}

Array EngineImpl::compute(const ir::Region &R, const Ex &E, std::string Name) {
  assert(R.rank() >= 1 && "compute needs a ranked region");
  TraceStmt TS;
  TS.Kind = TraceStmt::K::Assign;
  TS.Rhs = lower(*E.node());
  auto St = std::make_shared<ArrayState>();
  St->E = this;
  St->Name = Name.empty() ? formatString("t%u", NextTemp++) : std::move(Name);
  St->Domain = R;
  TS.Lhs = slotFor(St);
  Slots[TS.Lhs].Written = true;
  TS.LhsOff = ir::Offset::zero(R.rank());
  TS.R = R;
  Trace.push_back(std::move(TS));
  Array Result(St);
  recorded();
  return Result;
}

void EngineImpl::update(const Array &A, const ir::Offset &Off,
                        const ir::Region &R, const Ex &E) {
  assert(A.valid() && "update of an empty Array handle");
  assert(Off.rank() == R.rank() && "update offset rank mismatch");
  TraceStmt TS;
  TS.Kind = TraceStmt::K::Update;
  TS.Rhs = lower(*E.node());
  TS.Lhs = slotFor(A.St);
  Slots[TS.Lhs].Written = true;
  TS.LhsOff = Off;
  TS.R = R;
  Trace.push_back(std::move(TS));
  recorded();
}

Scalar EngineImpl::reduce(const semiring::Semiring &SR, const ir::Region &R,
                          const Ex &E) {
  TraceStmt TS;
  TS.Kind = TraceStmt::K::Reduce;
  TS.Rhs = lower(*E.node());
  auto Sc = std::make_shared<ScalarState>();
  Sc->E = this;
  Sc->Pending = true;
  Sc->ReduceSlot = static_cast<int>(ReduceStates.size());
  ReduceStates.push_back(Sc);
  TS.Lhs = static_cast<unsigned>(Sc->ReduceSlot);
  TS.R = R;
  TS.SR = &SR;
  Trace.push_back(std::move(TS));
  Scalar Result(Sc);
  recorded();
  return Result;
}

std::string EngineImpl::serializeKey() const {
  std::string Key;
  for (size_t I = 0; I < Slots.size(); ++I) {
    const ArraySlot &S = Slots[I];
    Key += formatString("A%zu:%u%c%c;", I, S.State->Domain.rank(),
                        S.LiveIn ? 'L' : 'l', S.External ? 'E' : 'e');
  }
  for (const TraceStmt &TS : Trace) {
    switch (TS.Kind) {
    case TraceStmt::K::Assign:
      Key += formatString("=a%u", TS.Lhs);
      break;
    case TraceStmt::K::Update:
      Key += formatString("^a%u", TS.Lhs);
      Key += TS.LhsOff.str();
      break;
    case TraceStmt::K::Reduce:
      // The semiring name is part of the key: a structurally identical
      // trace under a different semiring is a different kernel.
      Key += formatString("<r%u:%s", TS.Lhs, TS.SR->Name.c_str());
      break;
    }
    Key += TS.R.str();
    Key += ':';
    serializeTExpr(*TS.Rhs, Key);
    Key += ';';
  }
  return Key;
}

std::unique_ptr<EngineImpl::CacheEntry> EngineImpl::buildEntry() {
  auto E = std::make_unique<CacheEntry>();
  E->P = std::make_unique<ir::Program>("rt_trace");

  for (size_t I = 0; I < Slots.size(); ++I) {
    const ArraySlot &S = Slots[I];
    ir::ArrayOpts O;
    O.LiveIn = S.LiveIn;
    // Only arrays the trace writes AND a handle still references need to
    // leave the flush; a read-only input keeps its handle's data as-is.
    O.LiveOut = S.External && S.Written;
    E->SlotArrays.push_back(E->P->makeArray(formatString("a%zu", I),
                                            S.State->Domain.rank(), O));
  }
  for (size_t I = 0; I < ConstVals.size(); ++I)
    E->ConstSyms.push_back(E->P->makeScalar(formatString("c%zu", I)));
  for (size_t I = 0; I < InputVals.size(); ++I)
    E->InputSyms.push_back(E->P->makeScalar(formatString("s%zu", I)));
  for (size_t I = 0; I < ReduceStates.size(); ++I)
    E->ReduceSyms.push_back(E->P->makeScalar(formatString("r%zu", I)));

  for (const TraceStmt &TS : Trace) {
    const ir::Region *R = E->P->internRegion(TS.R);
    switch (TS.Kind) {
    case TraceStmt::K::Assign:
      E->P->assign(R, E->SlotArrays[TS.Lhs], toExpr(*TS.Rhs, *E));
      break;
    case TraceStmt::K::Update:
      E->P->assign(R, E->SlotArrays[TS.Lhs], TS.LhsOff, toExpr(*TS.Rhs, *E));
      break;
    case TraceStmt::K::Reduce:
      E->P->reduce(R, E->ReduceSyms[TS.Lhs], *TS.SR, toExpr(*TS.Rhs, *E));
      break;
    }
  }

  driver::PipelineOptions PO;
  PO.Parallel = Opts.Parallel;
  PO.Jit = Opts.Jit;
  PO.Verify = Opts.Verify;
  driver::Pipeline PL(*E->P, PO);
  driver::CompileRequest CReq;
  CReq.Strat = Opts.Strat;
  driver::CompileStatus St = PL.tryCompile(CReq);
  if (!St.ok() || !St.Artifact) {
    // A trace the engine recorded itself should always compile; a
    // rejection here means the recorder produced an invalid program or a
    // translation-validation pass caught a real miscompile.
    reportFatalError(("runtime trace compile failed (" +
                      std::string(driver::getCompileCodeName(St.Code)) +
                      "): " + St.Message)
                         .c_str());
  }
  E->CP = std::move(St.Artifact);
  // Footprints after normalization (prepare() ran inside tryCompile), so
  // the bounds cover any compiler temporaries it inserted.
  E->FI = analysis::FootprintInfo::compute(*E->P);
  if (Opts.Mode == xform::ExecMode::Parallel)
    E->Sched = exec::planParallelism(E->CP->LP);
  return E;
}

ir::ExprPtr EngineImpl::toExpr(const TExpr &T, const CacheEntry &E) const {
  switch (T.Kind) {
  case TExpr::K::ConstSlot:
    return ir::sref(E.ConstSyms[T.Slot]);
  case TExpr::K::InputSlot:
    return ir::sref(E.InputSyms[T.Slot]);
  case TExpr::K::ReduceSlot:
    return ir::sref(E.ReduceSyms[T.Slot]);
  case TExpr::K::Ref:
    return ir::aref(E.SlotArrays[T.Slot], T.Off);
  case TExpr::K::Un:
    return std::make_unique<ir::UnaryExpr>(T.UOp, toExpr(*T.A, E));
  case TExpr::K::Bin:
    return std::make_unique<ir::BinaryExpr>(T.BOp, toExpr(*T.A, E),
                                            toExpr(*T.B, E));
  }
  return nullptr;
}

/// Copies \p St's materialized values into \p Buf over the intersection
/// of their bounds (the rest of Buf stays zero: halo semantics).
void EngineImpl::copyIn(exec::ArrayBuffer &Buf, const ArrayState &St) const {
  const ir::Region &B = Buf.bounds();
  unsigned Rank = B.rank();
  std::vector<int64_t> Lo(Rank), Hi(Rank);
  for (unsigned D = 0; D < Rank; ++D) {
    Lo[D] = std::max(B.lo(D), St.Bounds.lo(D));
    Hi[D] = std::min(B.hi(D), St.Bounds.hi(D));
    if (Lo[D] > Hi[D])
      return; // disjoint
  }
  std::vector<int64_t> At = Lo;
  for (;;) {
    Buf.store(At, St.load(At));
    unsigned D = Rank;
    while (D > 0) {
      --D;
      if (++At[D] <= Hi[D])
        break;
      At[D] = Lo[D];
      if (D == 0)
        return;
    }
  }
}

/// Adopts the executed buffer \p Buf as \p St's materialized value. When
/// St already holds data over different bounds, the two are merged over
/// the bounding box: the trace's footprint values win inside Buf, prior
/// values survive outside it — a flush over a sub-region must never
/// truncate a larger materialized array.
void EngineImpl::copyOut(ArrayState &St, const exec::ArrayBuffer &Buf) const {
  const ir::Region &B = Buf.bounds();
  if (!St.Materialized || St.Bounds == B) {
    St.Materialized = true;
    St.Bounds = B;
    St.Data = Buf.raw();
    return;
  }
  unsigned Rank = B.rank();
  std::vector<int64_t> Lo(Rank), Hi(Rank);
  for (unsigned D = 0; D < Rank; ++D) {
    Lo[D] = std::min(B.lo(D), St.Bounds.lo(D));
    Hi[D] = std::max(B.hi(D), St.Bounds.hi(D));
  }
  ir::Region Union(Lo, Hi);
  std::vector<double> Merged;
  Merged.reserve(static_cast<size_t>(Union.size()));
  std::vector<int64_t> At = Lo;
  for (;;) {
    bool InB = true;
    for (unsigned D = 0; D < Rank && InB; ++D)
      InB = At[D] >= B.lo(D) && At[D] <= B.hi(D);
    Merged.push_back(InB ? Buf.load(At) : St.load(At));
    unsigned D = Rank;
    while (D > 0) {
      --D;
      if (++At[D] <= Hi[D])
        break;
      At[D] = Lo[D];
      if (D == 0) {
        St.Bounds = Union;
        St.Data = std::move(Merged);
        St.Materialized = true;
        return;
      }
    }
  }
}

void EngineImpl::execute(CacheEntry &E, FlushInfo &Info) {
  const lir::LoopProgram &LP = E.CP->LP;

  // Allocate per the cached footprints, then rebind: every buffer starts
  // zeroed and live-in slots copy their handle's materialized values in.
  exec::Storage Store = exec::Storage::allocate(
      *E.P, E.FI, /*Seed=*/0,
      [&LP](const ir::ArraySymbol *A) { return !LP.isContracted(A); },
      [&LP](const ir::ArraySymbol *A) -> std::optional<ir::Region> {
        if (const xform::PartialPlan *Plan = LP.partialPlanFor(A))
          return Plan->bufferRegion();
        return std::nullopt;
      });
  for (size_t I = 0; I < Slots.size(); ++I) {
    exec::ArrayBuffer *Buf = Store.buffer(E.SlotArrays[I]);
    if (!Buf)
      continue;
    Buf->fillZero();
    const ArrayState &St = *Slots[I].State;
    if (Slots[I].LiveIn && St.Materialized)
      copyIn(*Buf, St);
  }
  for (size_t I = 0; I < ConstVals.size(); ++I)
    Store.setScalar(E.ConstSyms[I], ConstVals[I]);
  for (size_t I = 0; I < InputVals.size(); ++I)
    Store.setScalar(E.InputSyms[I], InputVals[I]);
  for (size_t I = 0; I < ReduceStates.size(); ++I)
    Store.setScalar(E.ReduceSyms[I], 0.0);

  switch (Opts.Mode) {
  case xform::ExecMode::Sequential:
    exec::runOnStorage(LP, Store);
    break;
  case xform::ExecMode::Parallel:
    if (!E.Sched) {
      E.Sched = exec::planParallelism(LP);
      // The pipeline only race-checks schedules it plans itself; the
      // engine plans lazily per cache entry, so certify here.
      if (Opts.Verify >= verify::VerifyLevel::Full) {
        verify::VerifyReport R = verify::verifyParallelSafety(LP, *E.Sched);
        if (!R.ok())
          reportFatalError(("translation validation failed: " +
                            R.Findings.front().str())
                               .c_str());
      }
    }
    exec::runParallelOnStorage(LP, Store, Opts.Parallel, *E.Sched);
    break;
  case xform::ExecMode::NativeJit: {
    if (!Jit)
      Jit = std::make_unique<exec::JitEngine>(Opts.Jit);
    exec::JitRunInfo JI;
    Jit->runOnStorage(LP, Store, &JI);
    Info.Compiled = JI.Compiled;
    Info.UsedJit = JI.UsedJit;
    if (JI.Compiled)
      ++Stats.KernelCompiles;
    break;
  }
  case xform::ExecMode::NativeJitSimd: {
    if (!JitSimd) {
      exec::JitOptions JO = Opts.Jit;
      JO.Vectorize = true;
      JitSimd = std::make_unique<exec::JitEngine>(JO);
    }
    exec::JitRunInfo JI;
    JitSimd->runOnStorage(LP, Store, &JI);
    Info.Compiled = JI.Compiled;
    Info.UsedJit = JI.UsedJit;
    if (JI.Compiled)
      ++Stats.KernelCompiles;
    break;
  }
  }

  // Materialize survivors and resolve reductions. Read-only slots keep
  // their handle's data untouched; written ones adopt or merge the
  // executed buffer.
  for (size_t I = 0; I < Slots.size(); ++I) {
    const ArraySlot &S = Slots[I];
    if (S.External && S.Written)
      if (const exec::ArrayBuffer *Buf = Store.buffer(E.SlotArrays[I]))
        copyOut(*S.State, *Buf);
    S.State->Slot = -1;
  }
  for (size_t I = 0; I < ReduceStates.size(); ++I) {
    ReduceStates[I]->Value = Store.getScalar(E.ReduceSyms[I]);
    ReduceStates[I]->Pending = false;
    ReduceStates[I]->ReduceSlot = -1;
  }
}

void EngineImpl::flush(FlushTrigger T) {
  if (Trace.empty())
    return;

  obs::Span FlushSpan("runtime.flush", getFlushTriggerName(T));

  for (ArraySlot &S : Slots)
    S.External = S.State.use_count() > 1;

  CacheEntry *E = nullptr;
  std::unique_ptr<CacheEntry> Fresh;
  bool Hit = false;
  if (Opts.TraceCache) {
    std::string Key = serializeKey();
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      E = It->second.get();
      Hit = true;
    } else {
      obs::Span BuildSpan("runtime.build");
      Fresh = buildEntry();
      E = Cache.emplace(std::move(Key), std::move(Fresh))
              .first->second.get();
    }
  } else {
    obs::Span BuildSpan("runtime.build");
    Fresh = buildEntry();
    E = Fresh.get();
  }
  obs::instant(Hit ? "runtime.cache.hit" : "runtime.cache.miss");

  FlushInfo Info;
  Info.TraceLen = static_cast<unsigned>(Trace.size());
  Info.Clusters = E->CP->NumClusters;
  Info.Contracted = static_cast<unsigned>(E->CP->ContractedNames.size());
  Info.CacheHit = Hit;
  Info.Trigger = T;

  execute(*E, Info);

  Slots.clear();
  Trace.clear();
  ConstVals.clear();
  InputVals.clear();
  InputStates.clear();
  InputSlotOf.clear();
  ReduceStates.clear();

  Last = Info;
  ++Stats.Flushes;
  ++NumRuntimeFlushes;
  if (Hit) {
    ++Stats.CacheHits;
    ++NumRuntimeCacheHits;
  } else {
    ++Stats.CacheMisses;
    ++NumRuntimeCacheMisses;
  }
  NumRuntimeContracted += Info.Contracted;
}

//===----------------------------------------------------------------------===//
// Public handles
//===----------------------------------------------------------------------===//

const std::string &Array::name() const { return St->Name; }
const ir::Region &Array::domain() const { return St->Domain; }
bool Array::deferred() const { return St && St->Slot >= 0; }

double Array::get(const std::vector<int64_t> &At) const {
  assert(St && "get on an empty Array handle");
  if (St->Slot >= 0)
    St->E->flush(FlushTrigger::Observe);
  return St->load(At);
}

void Array::set(const std::vector<int64_t> &At, double V) {
  assert(St && "set on an empty Array handle");
  if (St->Slot >= 0)
    St->E->flush(FlushTrigger::Mutate);
  if (!St->Materialized) {
    St->Materialized = true;
    St->Bounds = St->Domain;
    St->Data.assign(static_cast<size_t>(St->Domain.size()), 0.0);
  }
  St->store(At, V);
}

void Array::setAll(const std::vector<double> &RowMajor) {
  assert(St && "setAll on an empty Array handle");
  assert(static_cast<int64_t>(RowMajor.size()) == St->Domain.size() &&
         "setAll size does not match the domain");
  if (St->Slot >= 0)
    St->E->flush(FlushTrigger::Mutate);
  if (!St->Materialized || !(St->Bounds == St->Domain)) {
    // Rehome onto exactly the domain; values outside it are dropped (they
    // are halo, observable as 0 either way).
    St->Materialized = true;
    St->Bounds = St->Domain;
    St->Data.assign(static_cast<size_t>(St->Domain.size()), 0.0);
  }
  St->Data = RowMajor;
}

std::vector<double> Array::values() const {
  assert(St && "values on an empty Array handle");
  if (St->Slot >= 0)
    St->E->flush(FlushTrigger::Observe);
  const ir::Region &D = St->Domain;
  std::vector<double> Out;
  Out.reserve(static_cast<size_t>(D.size()));
  unsigned Rank = D.rank();
  std::vector<int64_t> At(Rank);
  for (unsigned I = 0; I < Rank; ++I)
    At[I] = D.lo(I);
  for (;;) {
    Out.push_back(St->load(At));
    unsigned K = Rank;
    while (K > 0) {
      --K;
      if (++At[K] <= D.hi(K))
        break;
      At[K] = D.lo(K);
      if (K == 0)
        return Out;
    }
  }
}

bool Scalar::deferred() const { return St && St->Pending; }

double Scalar::value() const {
  assert(St && "value on an empty Scalar handle");
  if (St->Pending)
    St->E->flush(FlushTrigger::Observe);
  return St->Value;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

const char *runtime::getFlushTriggerName(FlushTrigger T) {
  switch (T) {
  case FlushTrigger::None:
    return "none";
  case FlushTrigger::Explicit:
    return "explicit";
  case FlushTrigger::Observe:
    return "observe";
  case FlushTrigger::Mutate:
    return "mutate";
  case FlushTrigger::Cap:
    return "cap";
  case FlushTrigger::Shutdown:
    return "shutdown";
  }
  return "?";
}

Engine::Engine(EngineOptions Opts)
    : Impl(std::make_unique<EngineImpl>(std::move(Opts))) {}

Engine::~Engine() {
  // Materialize surviving handles so they stay readable past the engine.
  Impl->flush(FlushTrigger::Shutdown);
}

Array Engine::input(std::string Name, const ir::Region &Domain) {
  auto St = std::make_shared<ArrayState>();
  St->E = Impl.get();
  St->Name = std::move(Name);
  St->Domain = Domain;
  St->Materialized = true;
  St->Bounds = Domain;
  St->Data.assign(static_cast<size_t>(Domain.size()), 0.0);
  return Array(std::move(St));
}

Array Engine::compute(const ir::Region &R, const Ex &E, std::string Name) {
  return Impl->compute(R, E, std::move(Name));
}

void Engine::update(const Array &A, const ir::Offset &Off, const ir::Region &R,
                    const Ex &E) {
  Impl->update(A, Off, R, E);
}

Scalar Engine::reduce(RedOp Op, const ir::Region &R, const Ex &E) {
  return Impl->reduce(ir::ReduceStmt::canonical(Op), R, E);
}

Scalar Engine::reduce(const semiring::Semiring &SR, const ir::Region &R,
                      const Ex &E) {
  return Impl->reduce(SR, R, E);
}

void Engine::flush() { Impl->flush(FlushTrigger::Explicit); }

unsigned Engine::pending() const {
  return static_cast<unsigned>(Impl->Trace.size());
}

const FlushInfo &Engine::lastFlush() const { return Impl->Last; }
const EngineStats &Engine::stats() const { return Impl->Stats; }
const EngineOptions &Engine::options() const { return Impl->Opts; }

//===- driver/Pipeline.cpp - End-to-end compilation facade ------------------===//

#include "driver/Pipeline.h"

#include "comm/CommInsertion.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"

using namespace alf;
using namespace alf::driver;
using namespace alf::exec;
using namespace alf::xform;

Pipeline::Pipeline(ir::Program &P, PipelineOptions InOpts)
    : P(P), Opts(std::move(InOpts)) {}

Pipeline::~Pipeline() = default;

void Pipeline::prepare() {
  if (Prepared)
    return;
  Prepared = true;
  if (Opts.Normalize)
    ir::normalizeProgram(P);
  if (Opts.Comm == CommPolicy::ArrayLevel)
    comm::insertArrayLevelComm(P, Opts.PipelinedComm);
}

ir::Program &Pipeline::program() {
  prepare();
  return P;
}

const analysis::ASDG &Pipeline::asdg() {
  if (!G) {
    prepare();
    G = analysis::ASDG::build(P);
  }
  return *G;
}

StrategyResult Pipeline::strategy(Strategy S) {
  return applyStrategy(asdg(), S);
}

lir::LoopProgram Pipeline::scalarize(Strategy S) {
  lir::LoopProgram LP = alf::scalarize::scalarizeWithStrategy(asdg(), S);
  if (Opts.Comm == CommPolicy::LoopLevel)
    comm::insertLoopLevelComm(LP);
  return LP;
}

lir::LoopProgram Pipeline::scalarize(const StrategyResult &SR) {
  lir::LoopProgram LP = alf::scalarize::scalarize(asdg(), SR);
  if (Opts.Comm == CommPolicy::LoopLevel)
    comm::insertLoopLevelComm(LP);
  return LP;
}

CompiledProgram Pipeline::compile(Strategy S) {
  StrategyResult SR = strategy(S);
  std::vector<std::string> Names;
  Names.reserve(SR.Contracted.size());
  for (const ir::ArraySymbol *A : SR.Contracted)
    Names.push_back(A->getName());
  return CompiledProgram{scalarize(SR), SR.Partition.numClusters(),
                         std::move(Names)};
}

RunResult Pipeline::run(const lir::LoopProgram &LP, ExecMode Mode,
                        uint64_t Seed, JitRunInfo *JitInfo) {
  if (Mode == ExecMode::NativeJit)
    return jit().run(LP, Seed, JitInfo);
  return runWithMode(LP, Seed, Mode, Opts.Parallel);
}

RunResult Pipeline::run(Strategy S, ExecMode Mode, uint64_t Seed,
                        JitRunInfo *JitInfo) {
  return run(scalarize(S), Mode, Seed, JitInfo);
}

JitEngine &Pipeline::jit() {
  if (!Jit)
    Jit = std::make_unique<JitEngine>(Opts.Jit);
  return *Jit;
}

RunResult Pipeline::runProgram(ir::Program &P, Strategy S, ExecMode Mode,
                               const PipelineOptions &Opts, uint64_t Seed) {
  Pipeline PL(P, Opts);
  return PL.run(S, Mode, Seed);
}

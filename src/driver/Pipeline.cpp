//===- driver/Pipeline.cpp - End-to-end compilation facade ------------------===//

#include "driver/Pipeline.h"

#include "comm/CommInsertion.h"
#include "ir/Normalize.h"
#include "obs/Obs.h"
#include "scalarize/Scalarize.h"
#include "support/ErrorHandling.h"
#include "support/Statistic.h"

using namespace alf;
using namespace alf::driver;
using namespace alf::exec;
using namespace alf::xform;

ALF_STATISTIC(NumPipelineVerifyFailures, "verify",
              "Pipeline stages rejected by a verification pass");

Pipeline::Pipeline(ir::Program &P, PipelineOptions InOpts)
    : P(P), Opts(std::move(InOpts)) {}

Pipeline::~Pipeline() = default;

void Pipeline::prepare() {
  if (Prepared)
    return;
  Prepared = true;
  if (Opts.Normalize) {
    obs::Span S("pipeline.normalize", P.getName());
    ir::normalizeProgram(P);
  }
  if (Opts.Comm == CommPolicy::ArrayLevel) {
    obs::Span S("pipeline.comm.array");
    comm::insertArrayLevelComm(P, Opts.PipelinedComm);
  }
}

void Pipeline::check(verify::VerifyReport R) {
  if (R.ok())
    return;
  ++NumPipelineVerifyFailures;
  for (const verify::VerifyFinding &F : R.Findings)
    Findings.Findings.push_back(F);
  if (Opts.OnVerifyError) {
    Opts.OnVerifyError(R);
    return;
  }
  // No policy installed: a failed proof means the pipeline is about to
  // produce wrong code, which the library's no-throw error policy treats
  // as fatal.
  std::string Msg =
      "translation validation failed: " + R.Findings.front().str();
  reportFatalError(Msg.c_str());
}

ir::Program &Pipeline::program() {
  prepare();
  return P;
}

const analysis::ASDG &Pipeline::asdg() {
  if (!G) {
    prepare();
    {
      obs::Span S("pipeline.asdg");
      G = analysis::ASDG::build(P);
    }
    if (Opts.Verify >= verify::VerifyLevel::Structural) {
      obs::Span S("pipeline.verify", "structure");
      check(verify::verifyStructure(P, &*G));
    }
    if (Opts.Verify >= verify::VerifyLevel::Full) {
      obs::Span S("pipeline.verify", "dependences");
      check(verify::verifyDependences(*G));
    }
  }
  return *G;
}

StrategyResult Pipeline::strategy(Strategy S) {
  StrategyResult SR = [&] {
    obs::Span Sp("pipeline.strategy", xform::getStrategyName(S));
    return applyStrategy(asdg(), S);
  }();
  if (Opts.Verify >= verify::VerifyLevel::Full) {
    obs::Span Sp("pipeline.verify", "strategy");
    check(verify::verifyStrategy(*G, SR));
  }
  return SR;
}

lir::LoopProgram Pipeline::scalarize(Strategy S) {
  // Route through strategy() so the strategy result is verified before
  // scalarization consumes it.
  return scalarize(strategy(S));
}

lir::LoopProgram Pipeline::scalarize(const StrategyResult &SR) {
  lir::LoopProgram LP = [&] {
    obs::Span S("pipeline.scalarize");
    return alf::scalarize::scalarize(asdg(), SR);
  }();
  if (Opts.Comm == CommPolicy::LoopLevel) {
    obs::Span S("pipeline.comm.loop");
    comm::insertLoopLevelComm(LP);
  }
  return LP;
}

CompiledProgram Pipeline::compile(Strategy S) {
  StrategyResult SR = strategy(S);
  std::vector<std::string> Names;
  Names.reserve(SR.Contracted.size());
  for (const ir::ArraySymbol *A : SR.Contracted)
    Names.push_back(A->getName());
  return CompiledProgram{scalarize(SR), SR.Partition.numClusters(),
                         std::move(Names)};
}

RunResult Pipeline::run(const lir::LoopProgram &LP, ExecMode Mode,
                        uint64_t Seed, JitRunInfo *JitInfo) {
  obs::Span Sp("pipeline.execute", xform::getExecModeName(Mode));
  if (Mode == ExecMode::NativeJit)
    return jit().run(LP, Seed, JitInfo);
  if (Mode == ExecMode::Parallel) {
    // Plan explicitly so the schedule actually executed is the schedule
    // the race detector certified.
    ParallelSchedule Sched = planParallelism(LP);
    if (Opts.Verify >= verify::VerifyLevel::Full) {
      obs::Span S("pipeline.verify", "parallel-safety");
      check(verify::verifyParallelSafety(LP, Sched));
    }
    return runParallel(LP, Seed, Opts.Parallel, Sched);
  }
  return runWithMode(LP, Seed, Mode, Opts.Parallel);
}

RunResult Pipeline::run(Strategy S, ExecMode Mode, uint64_t Seed,
                        JitRunInfo *JitInfo) {
  return run(scalarize(S), Mode, Seed, JitInfo);
}

JitEngine &Pipeline::jit() {
  if (!Jit)
    Jit = std::make_unique<JitEngine>(Opts.Jit);
  return *Jit;
}

RunResult Pipeline::runProgram(ir::Program &P, Strategy S, ExecMode Mode,
                               const PipelineOptions &Opts, uint64_t Seed) {
  Pipeline PL(P, Opts);
  return PL.run(S, Mode, Seed);
}

//===- driver/Pipeline.cpp - End-to-end compilation facade ------------------===//

#include "driver/Pipeline.h"

#include "comm/CommInsertion.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "obs/Obs.h"
#include "scalarize/Scalarize.h"
#include "support/ErrorHandling.h"
#include "support/Statistic.h"

using namespace alf;
using namespace alf::driver;
using namespace alf::exec;
using namespace alf::xform;

ALF_STATISTIC(NumPipelineVerifyFailures, "verify",
              "Pipeline stages rejected by a verification pass");

Pipeline::Pipeline(ir::Program &P, PipelineOptions InOpts)
    : P(P), Opts(std::move(InOpts)) {}

Pipeline::~Pipeline() = default;

void Pipeline::prepare() {
  if (Prepared)
    return;
  Prepared = true;
  if (Opts.Normalize) {
    obs::Span S("pipeline.normalize", P.getName());
    ir::normalizeProgram(P);
  }
  if (Opts.Comm == CommPolicy::ArrayLevel) {
    obs::Span S("pipeline.comm.array");
    comm::insertArrayLevelComm(P, Opts.PipelinedComm);
  }
}

void Pipeline::check(verify::VerifyReport R) {
  if (R.ok())
    return;
  ++NumPipelineVerifyFailures;
  for (const verify::VerifyFinding &F : R.Findings)
    Findings.Findings.push_back(F);
  // tryCompile suspends the failure policy: the findings surface through
  // the structured CompileStatus it returns.
  if (Collecting)
    return;
  if (Opts.OnVerifyError) {
    Opts.OnVerifyError(R);
    return;
  }
  // No policy installed: a failed proof means the pipeline is about to
  // produce wrong code, which the library's no-throw error policy treats
  // as fatal.
  std::string Msg =
      "translation validation failed: " + R.Findings.front().str();
  reportFatalError(Msg.c_str());
}

ir::Program &Pipeline::program() {
  prepare();
  return P;
}

const analysis::ASDG &Pipeline::asdg() {
  if (!G) {
    prepare();
    {
      obs::Span S("pipeline.asdg");
      G = analysis::ASDG::build(P);
    }
    size_t Before = Findings.Findings.size();
    if (Opts.Verify >= verify::VerifyLevel::Structural) {
      obs::Span S("pipeline.verify", "structure");
      check(verify::verifyStructure(P, &*G));
    }
    if (Opts.Verify >= verify::VerifyLevel::Full) {
      obs::Span S("pipeline.verify", "dependences");
      check(verify::verifyDependences(*G));
    }
    // A rejected graph poisons every strategy served from it; tryCompile
    // reports this sticky state on each later call.
    if (Findings.Findings.size() > Before)
      GraphRejected = true;
  }
  return *G;
}

StrategyResult Pipeline::strategy(Strategy S) {
  StrategyResult SR = [&] {
    obs::Span Sp("pipeline.strategy", xform::getStrategyName(S));
    return applyStrategy(asdg(), S);
  }();
  if (Opts.Verify >= verify::VerifyLevel::Full) {
    obs::Span Sp("pipeline.verify", "strategy");
    check(verify::verifyStrategy(*G, SR));
  }
  return SR;
}

lir::LoopProgram Pipeline::scalarize(Strategy S) {
  // Route through strategy() so the strategy result is verified before
  // scalarization consumes it.
  return scalarize(strategy(S));
}

lir::LoopProgram Pipeline::scalarize(const StrategyResult &SR) {
  lir::LoopProgram LP = [&] {
    obs::Span S("pipeline.scalarize");
    return alf::scalarize::scalarize(asdg(), SR);
  }();
  if (Opts.Comm == CommPolicy::LoopLevel) {
    obs::Span S("pipeline.comm.loop");
    comm::insertLoopLevelComm(LP);
  }
  if (Opts.Verify >= verify::VerifyLevel::Safety) {
    obs::Span S("pipeline.verify", "safety");
    check(verify::verifySafety(LP, &*G));
  }
  return LP;
}

const char *driver::getCompileCodeName(CompileCode C) {
  switch (C) {
  case CompileCode::Ok:
    return "ok";
  case CompileCode::InvalidProgram:
    return "invalid-program";
  case CompileCode::VerifyRejected:
    return "verify-rejected";
  case CompileCode::UnsafeProgram:
    return "unsafe-program";
  }
  return "?";
}

CompileStatus Pipeline::tryCompile(const CompileRequest &Req) {
  CompileStatus St;
  prepare();

  // Gate analysis on IR well-formedness: strategy selection and
  // scalarization assume the normal-form invariants and may misbehave
  // on client programs that violate them.
  {
    std::vector<std::string> Errors = ir::verifyProgram(P);
    if (!Errors.empty()) {
      St.Code = CompileCode::InvalidProgram;
      St.Message = Errors.front();
      return St;
    }
  }

  bool SavedCollecting = Collecting;
  Collecting = true;
  size_t Before = Findings.Findings.size();

  asdg();
  if (GraphRejected) {
    Collecting = SavedCollecting;
    St.Code = CompileCode::VerifyRejected;
    St.Findings.Findings.assign(Findings.Findings.begin() + Before,
                                Findings.Findings.end());
    if (St.Findings.ok()) // rejected by an earlier call; re-surface it
      St.Findings = Findings;
    St.Message = St.Findings.Findings.front().str();
    return St;
  }

  // Run the chain to completion even when a proof rejects (matching the
  // legacy handler-and-continue policy), but report the rejection.
  xform::StrategyResult SR = strategy(Req.Strat);
  lir::LoopProgram LP = scalarize(SR);
  Collecting = SavedCollecting;

  std::vector<std::string> Names;
  Names.reserve(SR.Contracted.size());
  for (const ir::ArraySymbol *A : SR.Contracted)
    Names.push_back(A->getName());
  St.Artifact.emplace(CompiledProgram{std::move(LP),
                                      SR.Partition.numClusters(),
                                      std::move(Names)});
  St.SR = std::move(SR);

  if (Findings.Findings.size() > Before) {
    St.Findings.Findings.assign(Findings.Findings.begin() + Before,
                                Findings.Findings.end());
    St.Message = St.Findings.Findings.front().str();
    // A safety-only rejection gets its own stable wire code so serving
    // clients can tell "your program is memory-unsafe" apart from "the
    // compiler failed its own proof". Any legality finding dominates.
    bool AllSafety = true;
    for (const verify::VerifyFinding &F : St.Findings.Findings)
      if (F.Pass.rfind("safety", 0) != 0)
        AllSafety = false;
    St.Code = AllSafety ? CompileCode::UnsafeProgram
                        : CompileCode::VerifyRejected;
  }
  return St;
}

CompiledProgram Pipeline::compile(Strategy S) {
  CompileStatus St = tryCompile(CompileRequest{S});
  if (!St.ok()) {
    if (!St.Findings.ok() && Opts.OnVerifyError)
      Opts.OnVerifyError(St.Findings); // legacy policy: notify, continue
    else if (St.Code == CompileCode::VerifyRejected)
      reportFatalError(
          ("translation validation failed: " + St.Message).c_str());
    else
      reportFatalError(("compile failed: " + St.Message).c_str());
  }
  if (!St.Artifact)
    reportFatalError(("compile failed: " + St.Message).c_str());
  return std::move(*St.Artifact);
}

RunResult Pipeline::run(const lir::LoopProgram &LP, ExecMode Mode,
                        uint64_t Seed, JitRunInfo *JitInfo) {
  obs::Span Sp("pipeline.execute", xform::getExecModeName(Mode));
  if (Mode == ExecMode::NativeJit)
    return jit().run(LP, Seed, JitInfo);
  if (Mode == ExecMode::NativeJitSimd)
    return jitSimd().run(LP, Seed, JitInfo);
  if (Mode == ExecMode::Parallel) {
    // Plan explicitly so the schedule actually executed is the schedule
    // the race detector certified.
    ParallelSchedule Sched = planParallelism(LP);
    if (Opts.Verify >= verify::VerifyLevel::Full) {
      obs::Span S("pipeline.verify", "parallel-safety");
      check(verify::verifyParallelSafety(LP, Sched));
    }
    return runParallel(LP, Seed, Opts.Parallel, Sched);
  }
  return runWithMode(LP, Seed, Mode, Opts.Parallel);
}

RunResult Pipeline::run(Strategy S, ExecMode Mode, uint64_t Seed,
                        JitRunInfo *JitInfo) {
  return run(scalarize(S), Mode, Seed, JitInfo);
}

JitEngine &Pipeline::jit() {
  if (!Jit)
    Jit = std::make_unique<JitEngine>(Opts.Jit);
  return *Jit;
}

JitEngine &Pipeline::jitSimd() {
  if (!JitSimd) {
    JitOptions JO = Opts.Jit;
    JO.Vectorize = true;
    JitSimd = std::make_unique<JitEngine>(JO);
  }
  return *JitSimd;
}

RunResult Pipeline::runProgram(ir::Program &P, Strategy S, ExecMode Mode,
                               const PipelineOptions &Opts, uint64_t Seed) {
  Pipeline PL(P, Opts);
  return PL.run(S, Mode, Seed);
}

//===- driver/Pipeline.h - End-to-end compilation facade -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One front door for the whole ALF chain. Benchmarks, tools and tests
/// all used to hand-assemble normalize -> ASDG -> applyStrategy ->
/// scalarize -> (comm) -> execute, each with slightly different plumbing;
/// Pipeline owns that sequence once. A Pipeline wraps one ir::Program,
/// builds the ASDG lazily (after normalization and, under the
/// favor-communication policy, array-level exchange insertion), and then
/// serves any number of strategies and execution modes from the shared
/// analysis:
///
///   driver::Pipeline PL(*P);
///   auto LP  = PL.scalarize(Strategy::C2);             // LoopProgram
///   auto Res = PL.run(Strategy::C2, ExecMode::NativeJit, Seed);
///
/// Execution dispatches through exec::runWithMode; for NativeJit the
/// pipeline keeps one JitEngine alive for its whole lifetime, so a sweep
/// over strategies and seeds pays each kernel compile once.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_DRIVER_PIPELINE_H
#define ALF_DRIVER_PIPELINE_H

#include "analysis/ASDG.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "ir/Program.h"
#include "scalarize/LoopIR.h"
#include "verify/Verify.h"
#include "xform/Strategy.h"

#include <functional>
#include <memory>
#include <optional>

namespace alf {
namespace driver {

/// Where (and whether) communication is inserted, mirroring the paper's
/// section 5.5 policies.
enum class CommPolicy {
  None,       ///< Single address space; no exchanges.
  LoopLevel,  ///< Favor fusion: CommOps inserted after scalarization.
  ArrayLevel, ///< Favor comm: CommStmts inserted before the ASDG is built.
};

/// Configuration of one Pipeline.
struct PipelineOptions {
  /// Run ir::normalizeProgram before analysis (condition (i) of the
  /// paper's normal form). Disable only for programs known normalized.
  bool Normalize = true;

  CommPolicy Comm = CommPolicy::None;

  /// Under CommPolicy::ArrayLevel, split exchanges into hoisted
  /// send/recv pairs for overlap.
  bool PipelinedComm = true;

  /// Thread count etc. for ExecMode::Parallel.
  exec::ParallelOptions Parallel;

  /// Compiler, flags and cache directory for ExecMode::NativeJit.
  exec::JitOptions Jit;

  /// How much translation validation the pipeline performs as it works:
  /// Structural re-checks the IR and graph after every ASDG build; Full
  /// additionally diffs the dependence oracle, re-proves every strategy
  /// result against Definitions 5 and 6, and race-checks every parallel
  /// schedule before running it; Safety additionally runs the
  /// memory-safety checker over every scalarized program (tryCompile
  /// reports its findings as CompileCode::UnsafeProgram). Defaults to
  /// the ALF_VERIFY environment variable (ctest exports "full"), else
  /// Structural.
  verify::VerifyLevel Verify = verify::defaultVerifyLevel();

  /// Called with the findings when a verification pass rejects. When
  /// unset, the pipeline treats a rejection as a fatal internal error
  /// (reportFatalError). Tools install an exit-nonzero handler; tests
  /// install a collector.
  std::function<void(const verify::VerifyReport &)> OnVerifyError;
};

/// One strategy's full compilation artifact, movable so callers can cache
/// it and re-execute without re-analysis: the scalarized loop program plus
/// the summary numbers the analysis produced. The loop program references
/// symbols of the pipeline's ir::Program, so a cached artifact must not
/// outlive that program (the runtime engine's trace cache owns both).
struct CompiledProgram {
  lir::LoopProgram LP;
  unsigned NumClusters = 0;                 ///< fused clusters (the paper's l)
  std::vector<std::string> ContractedNames; ///< fully contracted arrays
};

/// What one Pipeline::tryCompile call asks for. A struct (rather than a
/// bare Strategy) so the serving layer's wire protocol and future knobs
/// extend without touching every caller.
struct CompileRequest {
  xform::Strategy Strat = xform::Strategy::C2;
};

/// Why a tryCompile call did not produce a certified artifact.
enum class CompileCode {
  Ok,             ///< Artifact produced; every requested proof passed.
  InvalidProgram, ///< The (prepared) program fails IR verification.
  VerifyRejected, ///< A translation-validation pass rejected a product.
  UnsafeProgram,  ///< The safety checker (VerifyLevel::Safety) proved a
                  ///< memory-safety violation in the scalarized form.
};

/// Printable name ("ok", "invalid-program", "verify-rejected",
/// "unsafe-program") — these are wire-protocol error codes for the
/// serving layer, so they are stable.
const char *getCompileCodeName(CompileCode C);

/// The structured outcome of one Pipeline::tryCompile: status plus, when
/// the chain ran to completion, the strategy result and the artifact.
///
/// On VerifyRejected the artifact may still be present (the chain is
/// attempted end to end, matching the legacy OnVerifyError-and-continue
/// policy) but MUST NOT be executed by callers that asked for
/// verification — a failed proof means the code is not certified.
struct CompileStatus {
  CompileCode Code = CompileCode::Ok;

  /// First diagnostic, one line; empty on Ok. For VerifyRejected this is
  /// the leading finding's "[pass] message" rendering.
  std::string Message;

  /// Every finding this call produced (VerifyRejected only).
  verify::VerifyReport Findings;

  /// The strategy decision (partition + contraction set); present
  /// whenever analysis ran, so callers can inspect or report it.
  std::optional<xform::StrategyResult> SR;

  /// The compiled artifact; see the class comment for the rejected case.
  std::optional<CompiledProgram> Artifact;

  bool ok() const { return Code == CompileCode::Ok; }
};

/// Facade over the parse/normalize -> ASDG -> strategy -> scalarize ->
/// execute chain for one program. Not thread-safe; create one per thread.
/// The wrapped program must outlive the pipeline (the ASDG and every
/// LoopProgram reference its symbols).
class Pipeline {
public:
  explicit Pipeline(ir::Program &P, PipelineOptions Opts = PipelineOptions());
  ~Pipeline();

  Pipeline(const Pipeline &) = delete;
  Pipeline &operator=(const Pipeline &) = delete;

  /// The wrapped program, after the pre-analysis passes (normalization,
  /// array-level communication) have run.
  ir::Program &program();

  /// The dependence graph, built on first use (normalizing and inserting
  /// array-level communication first, per the options).
  const analysis::ASDG &asdg();

  /// Fusion partition + contraction set of \p S over asdg().
  xform::StrategyResult strategy(xform::Strategy S);

  /// Scalarized loop program of \p S, with loop-level communication
  /// inserted when the policy asks for it.
  lir::LoopProgram scalarize(xform::Strategy S);

  /// As above, for a strategy result the caller has already computed (and
  /// possibly inspected or adjusted).
  lir::LoopProgram scalarize(const xform::StrategyResult &SR);

  /// Analysis + strategy + scalarization bundled into one movable
  /// artifact. This is the unit the runtime engine's trace cache stores:
  /// a warm flush re-executes the artifact's loop program (via the
  /// *OnStorage entry points) without touching the ASDG or the strategy
  /// machinery again.
  ///
  /// Thin wrapper over tryCompile keeping the legacy failure policy: a
  /// rejection runs OnVerifyError when installed (and still returns the
  /// artifact), else reportFatalError. New callers — anything serving
  /// untrusted input — should use tryCompile and branch on the status.
  CompiledProgram compile(xform::Strategy S);

  /// Status-returning compile: runs IR verification, analysis, strategy
  /// selection and scalarization, and reports invalid programs and
  /// verification rejections as a structured CompileStatus instead of
  /// aborting or invoking OnVerifyError. This is the re-entrant entry
  /// point the serving layer compiles every client request through: the
  /// caller decides the failure policy per request.
  ///
  /// Findings are still accumulated into verifyFindings(). A rejection
  /// of the shared analysis (ASDG structure or dependence diff) poisons
  /// the pipeline: every later tryCompile on it reports VerifyRejected,
  /// since all strategies consume the same graph.
  CompileStatus tryCompile(const CompileRequest &Req);

  /// Runs \p S under \p Mode on inputs seeded by \p Seed. All modes have
  /// the same observable semantics (NativeJit falls back to the
  /// interpreter when the system compiler is unusable; \p JitInfo, when
  /// non-null, records what happened).
  exec::RunResult run(xform::Strategy S, xform::ExecMode Mode,
                      uint64_t Seed = 0, exec::JitRunInfo *JitInfo = nullptr);

  /// As above, for an already scalarized program of this pipeline.
  exec::RunResult run(const lir::LoopProgram &LP, xform::ExecMode Mode,
                      uint64_t Seed = 0, exec::JitRunInfo *JitInfo = nullptr);

  /// The JIT engine backing ExecMode::NativeJit runs, created on first
  /// use from the options' JitOptions.
  exec::JitEngine &jit();

  /// The vectorizing engine backing ExecMode::NativeJitSimd runs: the
  /// options' JitOptions with Vectorize forced on, created on first use.
  exec::JitEngine &jitSimd();

  const PipelineOptions &options() const { return Opts; }

  /// Every verification finding accumulated so far (across all levels
  /// and strategies served by this pipeline); empty when everything the
  /// pipeline produced was certified.
  const verify::VerifyReport &verifyFindings() const { return Findings; }

  /// One-shot convenience: Pipeline(P, Opts).run(S, Mode, Seed).
  static exec::RunResult runProgram(ir::Program &P, xform::Strategy S,
                                    xform::ExecMode Mode,
                                    const PipelineOptions &Opts =
                                        PipelineOptions(),
                                    uint64_t Seed = 0);

private:
  void prepare();

  /// Runs the failure policy on \p R's findings (if any) and accumulates
  /// them into Findings. Inside tryCompile the policy is suspended
  /// (Collecting): findings accumulate and surface through the returned
  /// CompileStatus instead.
  void check(verify::VerifyReport R);

  ir::Program &P;
  PipelineOptions Opts;
  bool Prepared = false;
  bool Collecting = false;     ///< tryCompile in progress; see check().
  bool GraphRejected = false;  ///< A verify pass rejected the shared ASDG.
  std::optional<analysis::ASDG> G;
  std::unique_ptr<exec::JitEngine> Jit;
  std::unique_ptr<exec::JitEngine> JitSimd;
  verify::VerifyReport Findings;
};

} // namespace driver
} // namespace alf

#endif // ALF_DRIVER_PIPELINE_H

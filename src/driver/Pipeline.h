//===- driver/Pipeline.h - End-to-end compilation facade -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One front door for the whole ALF chain. Benchmarks, tools and tests
/// all used to hand-assemble normalize -> ASDG -> applyStrategy ->
/// scalarize -> (comm) -> execute, each with slightly different plumbing;
/// Pipeline owns that sequence once. A Pipeline wraps one ir::Program,
/// builds the ASDG lazily (after normalization and, under the
/// favor-communication policy, array-level exchange insertion), and then
/// serves any number of strategies and execution modes from the shared
/// analysis:
///
///   driver::Pipeline PL(*P);
///   auto LP  = PL.scalarize(Strategy::C2);             // LoopProgram
///   auto Res = PL.run(Strategy::C2, ExecMode::NativeJit, Seed);
///
/// Execution dispatches through exec::runWithMode; for NativeJit the
/// pipeline keeps one JitEngine alive for its whole lifetime, so a sweep
/// over strategies and seeds pays each kernel compile once.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_DRIVER_PIPELINE_H
#define ALF_DRIVER_PIPELINE_H

#include "analysis/ASDG.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "ir/Program.h"
#include "scalarize/LoopIR.h"
#include "verify/Verify.h"
#include "xform/Strategy.h"

#include <functional>
#include <memory>
#include <optional>

namespace alf {
namespace driver {

/// Where (and whether) communication is inserted, mirroring the paper's
/// section 5.5 policies.
enum class CommPolicy {
  None,       ///< Single address space; no exchanges.
  LoopLevel,  ///< Favor fusion: CommOps inserted after scalarization.
  ArrayLevel, ///< Favor comm: CommStmts inserted before the ASDG is built.
};

/// Configuration of one Pipeline.
struct PipelineOptions {
  /// Run ir::normalizeProgram before analysis (condition (i) of the
  /// paper's normal form). Disable only for programs known normalized.
  bool Normalize = true;

  CommPolicy Comm = CommPolicy::None;

  /// Under CommPolicy::ArrayLevel, split exchanges into hoisted
  /// send/recv pairs for overlap.
  bool PipelinedComm = true;

  /// Thread count etc. for ExecMode::Parallel.
  exec::ParallelOptions Parallel;

  /// Compiler, flags and cache directory for ExecMode::NativeJit.
  exec::JitOptions Jit;

  /// How much translation validation the pipeline performs as it works:
  /// Structural re-checks the IR and graph after every ASDG build; Full
  /// additionally diffs the dependence oracle, re-proves every strategy
  /// result against Definitions 5 and 6, and race-checks every parallel
  /// schedule before running it. Defaults to the ALF_VERIFY environment
  /// variable (ctest exports "full"), else Structural.
  verify::VerifyLevel Verify = verify::defaultVerifyLevel();

  /// Called with the findings when a verification pass rejects. When
  /// unset, the pipeline treats a rejection as a fatal internal error
  /// (reportFatalError). Tools install an exit-nonzero handler; tests
  /// install a collector.
  std::function<void(const verify::VerifyReport &)> OnVerifyError;
};

/// One strategy's full compilation artifact, movable so callers can cache
/// it and re-execute without re-analysis: the scalarized loop program plus
/// the summary numbers the analysis produced. The loop program references
/// symbols of the pipeline's ir::Program, so a cached artifact must not
/// outlive that program (the runtime engine's trace cache owns both).
struct CompiledProgram {
  lir::LoopProgram LP;
  unsigned NumClusters = 0;                 ///< fused clusters (the paper's l)
  std::vector<std::string> ContractedNames; ///< fully contracted arrays
};

/// Facade over the parse/normalize -> ASDG -> strategy -> scalarize ->
/// execute chain for one program. Not thread-safe; create one per thread.
/// The wrapped program must outlive the pipeline (the ASDG and every
/// LoopProgram reference its symbols).
class Pipeline {
public:
  explicit Pipeline(ir::Program &P, PipelineOptions Opts = PipelineOptions());
  ~Pipeline();

  Pipeline(const Pipeline &) = delete;
  Pipeline &operator=(const Pipeline &) = delete;

  /// The wrapped program, after the pre-analysis passes (normalization,
  /// array-level communication) have run.
  ir::Program &program();

  /// The dependence graph, built on first use (normalizing and inserting
  /// array-level communication first, per the options).
  const analysis::ASDG &asdg();

  /// Fusion partition + contraction set of \p S over asdg().
  xform::StrategyResult strategy(xform::Strategy S);

  /// Scalarized loop program of \p S, with loop-level communication
  /// inserted when the policy asks for it.
  lir::LoopProgram scalarize(xform::Strategy S);

  /// As above, for a strategy result the caller has already computed (and
  /// possibly inspected or adjusted).
  lir::LoopProgram scalarize(const xform::StrategyResult &SR);

  /// Analysis + strategy + scalarization bundled into one movable
  /// artifact. This is the unit the runtime engine's trace cache stores:
  /// a warm flush re-executes the artifact's loop program (via the
  /// *OnStorage entry points) without touching the ASDG or the strategy
  /// machinery again.
  CompiledProgram compile(xform::Strategy S);

  /// Runs \p S under \p Mode on inputs seeded by \p Seed. All modes have
  /// the same observable semantics (NativeJit falls back to the
  /// interpreter when the system compiler is unusable; \p JitInfo, when
  /// non-null, records what happened).
  exec::RunResult run(xform::Strategy S, xform::ExecMode Mode,
                      uint64_t Seed = 0, exec::JitRunInfo *JitInfo = nullptr);

  /// As above, for an already scalarized program of this pipeline.
  exec::RunResult run(const lir::LoopProgram &LP, xform::ExecMode Mode,
                      uint64_t Seed = 0, exec::JitRunInfo *JitInfo = nullptr);

  /// The JIT engine backing ExecMode::NativeJit runs, created on first
  /// use from the options' JitOptions.
  exec::JitEngine &jit();

  const PipelineOptions &options() const { return Opts; }

  /// Every verification finding accumulated so far (across all levels
  /// and strategies served by this pipeline); empty when everything the
  /// pipeline produced was certified.
  const verify::VerifyReport &verifyFindings() const { return Findings; }

  /// One-shot convenience: Pipeline(P, Opts).run(S, Mode, Seed).
  static exec::RunResult runProgram(ir::Program &P, xform::Strategy S,
                                    xform::ExecMode Mode,
                                    const PipelineOptions &Opts =
                                        PipelineOptions(),
                                    uint64_t Seed = 0);

private:
  void prepare();

  /// Runs the failure policy on \p R's findings (if any) and accumulates
  /// them into Findings.
  void check(verify::VerifyReport R);

  ir::Program &P;
  PipelineOptions Opts;
  bool Prepared = false;
  std::optional<analysis::ASDG> G;
  std::unique_ptr<exec::JitEngine> Jit;
  verify::VerifyReport Findings;
};

} // namespace driver
} // namespace alf

#endif // ALF_DRIVER_PIPELINE_H

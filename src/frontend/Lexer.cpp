//===- frontend/Lexer.cpp - Mini-ZPL lexer ----------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace alf;
using namespace alf::frontend;

const char *frontend::getTokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::KwRegion:
    return "'region'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwScalar:
    return "'scalar'";
  case TokenKind::KwDirection:
    return "'direction'";
  case TokenKind::KwTemp:
    return "'temp'";
  case TokenKind::KwPersistent:
    return "'persistent'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::At:
    return "'@'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Reduce:
    return "'<<'";
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

std::vector<Token> frontend::tokenize(const std::string &Source) {
  std::vector<Token> Tokens;
  unsigned Line = 1, Col = 1;
  size_t I = 0;

  auto Push = [&](TokenKind K, std::string Text, unsigned TokLine,
                  unsigned TokCol, double Num = 0.0) {
    Tokens.push_back(Token{K, std::move(Text), Num, TokLine, TokCol});
  };

  while (I < Source.size()) {
    char C = Source[I];
    unsigned TokLine = Line, TokCol = Col;

    if (C == '\n') {
      ++Line;
      Col = 1;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Col;
      ++I;
      continue;
    }
    // Comments: -- to end of line.
    if (C == '-' && I + 1 < Source.size() && Source[I + 1] == '-') {
      while (I < Source.size() && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[I])) ||
              Source[I] == '_'))
        ++I;
      std::string Word = Source.substr(Start, I - Start);
      Col += static_cast<unsigned>(I - Start);
      TokenKind K = TokenKind::Ident;
      if (Word == "region")
        K = TokenKind::KwRegion;
      else if (Word == "array")
        K = TokenKind::KwArray;
      else if (Word == "scalar")
        K = TokenKind::KwScalar;
      else if (Word == "direction")
        K = TokenKind::KwDirection;
      else if (Word == "temp")
        K = TokenKind::KwTemp;
      else if (Word == "persistent")
        K = TokenKind::KwPersistent;
      else if (Word == "in")
        K = TokenKind::KwIn;
      Push(K, std::move(Word), TokLine, TokCol);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      // A fraction part, but not the '..' of a range.
      if (I + 1 < Source.size() && Source[I] == '.' &&
          Source[I + 1] != '.') {
        ++I;
        while (I < Source.size() &&
               std::isdigit(static_cast<unsigned char>(Source[I])))
          ++I;
      }
      std::string Text = Source.substr(Start, I - Start);
      Col += static_cast<unsigned>(I - Start);
      Push(TokenKind::Number, Text, TokLine, TokCol,
           std::strtod(Text.c_str(), nullptr));
      continue;
    }

    auto Two = [&](char A, char B) {
      return C == A && I + 1 < Source.size() && Source[I + 1] == B;
    };
    if (Two(':', '=')) {
      Push(TokenKind::Assign, ":=", TokLine, TokCol);
      I += 2;
      Col += 2;
      continue;
    }
    if (Two('.', '.')) {
      Push(TokenKind::DotDot, "..", TokLine, TokCol);
      I += 2;
      Col += 2;
      continue;
    }
    if (Two('<', '<')) {
      Push(TokenKind::Reduce, "<<", TokLine, TokCol);
      I += 2;
      Col += 2;
      continue;
    }

    TokenKind K = TokenKind::Error;
    switch (C) {
    case '[':
      K = TokenKind::LBracket;
      break;
    case ']':
      K = TokenKind::RBracket;
      break;
    case '(':
      K = TokenKind::LParen;
      break;
    case ')':
      K = TokenKind::RParen;
      break;
    case ',':
      K = TokenKind::Comma;
      break;
    case ';':
      K = TokenKind::Semi;
      break;
    case ':':
      K = TokenKind::Colon;
      break;
    case '@':
      K = TokenKind::At;
      break;
    case '+':
      K = TokenKind::Plus;
      break;
    case '-':
      K = TokenKind::Minus;
      break;
    case '*':
      K = TokenKind::Star;
      break;
    case '/':
      K = TokenKind::Slash;
      break;
    default:
      break;
    }
    Push(K, std::string(1, C), TokLine, TokCol);
    ++I;
    ++Col;
  }
  Tokens.push_back(Token{TokenKind::Eof, "", 0.0, Line, Col});
  return Tokens;
}

//===- frontend/Parser.h - Mini-ZPL parser ---------------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the mini-ZPL input language, lowering
/// directly to `ir::Program`. The grammar (comments run from `--` to end
/// of line):
///
///   program    ::= item*
///   item       ::= regionDecl | arrayDecl | scalarDecl | stmt
///   regionDecl ::= 'region' IDENT ':' '[' range (',' range)* ']' ';'
///   range      ::= INT '..' INT
///   arrayDecl  ::= 'array' IDENT (',' IDENT)* ':' IDENT trait* ';'
///   trait      ::= 'temp' | 'persistent' | 'in'
///   scalarDecl ::= 'scalar' IDENT (',' IDENT)* ';'
///   dirDecl    ::= 'direction' IDENT ':' '(' INT (',' INT)* ')' ';'
///   stmt       ::= '[' IDENT ']' IDENT offset? ':=' rhs ';'
///   rhs        ::= redop '<<' expr      -- scalar LHS only
///                | expr                 -- array LHS only
///   redop      ::= '+' | 'min' | 'max'
///   expr       ::= term (('+'|'-') term)*
///   term       ::= factor (('*'|'/') factor)*
///   factor     ::= NUMBER | '-' factor | '(' expr ')'
///                | IDENT offset?                  -- array/scalar ref
///                | BUILTIN '(' expr (',' expr)? ')'
///   offset     ::= '@' '(' INT (',' INT)* ')' | '@' IDENT
///
/// Builtins: sqrt exp log sin cos abs recip (one argument), min max
/// (two arguments). Array traits: `temp` marks a user temporary (dead
/// outside the fragment), `in` live-in only; the default is persistent
/// (live-in and live-out).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_FRONTEND_PARSER_H
#define ALF_FRONTEND_PARSER_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace alf {
namespace frontend {

/// Outcome of a parse: a program (null when any error occurred) plus the
/// collected diagnostics ("line:col: message").
struct ParseResult {
  std::unique_ptr<ir::Program> Prog;
  std::vector<std::string> Errors;

  /// (line, col) of each statement's opening '[', indexed by statement id
  /// (aligned with Prog->getStmt). Lint diagnostics use these to point at
  /// source positions.
  std::vector<std::pair<unsigned, unsigned>> StmtPositions;

  bool succeeded() const { return Prog != nullptr; }
};

/// Parses \p Source into a Program named \p Name.
ParseResult parseProgram(const std::string &Source,
                         const std::string &Name = "main");

} // namespace frontend
} // namespace alf

#endif // ALF_FRONTEND_PARSER_H

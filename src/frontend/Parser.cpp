//===- frontend/Parser.cpp - Mini-ZPL parser ---------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/StringUtil.h"

#include <map>

using namespace alf;
using namespace alf::frontend;
using namespace alf::ir;

namespace {

class Parser {
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::unique_ptr<Program> Prog;
  std::vector<std::string> &Errors;
  std::vector<std::pair<unsigned, unsigned>> &StmtPositions;
  std::map<std::string, const Region *> Regions;
  std::map<std::string, unsigned> RegionRanks;
  std::map<std::string, Offset> Directions;

public:
  Parser(const std::string &Source, const std::string &Name,
         std::vector<std::string> &Errors,
         std::vector<std::pair<unsigned, unsigned>> &StmtPositions)
      : Tokens(tokenize(Source)), Prog(std::make_unique<Program>(Name)),
        Errors(Errors), StmtPositions(StmtPositions) {}

  std::unique_ptr<Program> run() {
    while (!at(TokenKind::Eof)) {
      size_t Before = Pos;
      parseItem();
      if (Pos == Before)
        ++Pos; // always make progress, even on malformed input
    }
    if (!Errors.empty())
      return nullptr;
    return std::move(Prog);
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind K) const { return peek().Kind == K; }

  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  void error(const std::string &Msg) {
    const Token &T = peek();
    Errors.push_back(formatString("%u:%u: %s", T.Line, T.Col, Msg.c_str()));
  }

  /// Skips to just past the next ';' (error recovery).
  void syncToSemi() {
    while (!at(TokenKind::Eof) && !at(TokenKind::Semi))
      ++Pos;
    if (at(TokenKind::Semi))
      advance();
  }

  bool expect(TokenKind K, const char *What) {
    if (at(K)) {
      advance();
      return true;
    }
    error(formatString("expected %s, found %s \"%s\"", What,
                       getTokenKindName(peek().Kind), peek().Text.c_str()));
    return false;
  }

  void parseItem() {
    switch (peek().Kind) {
    case TokenKind::KwRegion:
      parseRegionDecl();
      return;
    case TokenKind::KwArray:
      parseArrayDecl();
      return;
    case TokenKind::KwScalar:
      parseScalarDecl();
      return;
    case TokenKind::KwDirection:
      parseDirectionDecl();
      return;
    case TokenKind::LBracket:
      parseStmt();
      return;
    default:
      error(formatString("expected a declaration or statement, found %s",
                         getTokenKindName(peek().Kind)));
      syncToSemi();
    }
  }

  void parseRegionDecl() {
    advance(); // 'region'
    std::string Name = peek().Text;
    if (!expect(TokenKind::Ident, "region name"))
      return syncToSemi();
    if (!expect(TokenKind::Colon, "':'") ||
        !expect(TokenKind::LBracket, "'['"))
      return syncToSemi();
    std::vector<int64_t> Lo, Hi;
    while (true) {
      int64_t L = 0, H = 0;
      if (!parseInt(L, "range lower bound"))
        return syncToSemi();
      if (!expect(TokenKind::DotDot, "'..'"))
        return syncToSemi();
      if (!parseInt(H, "range upper bound"))
        return syncToSemi();
      if (L > H) {
        error(formatString("empty range %lld..%lld",
                           static_cast<long long>(L),
                           static_cast<long long>(H)));
        return syncToSemi();
      }
      Lo.push_back(L);
      Hi.push_back(H);
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokenKind::RBracket, "']'") ||
        !expect(TokenKind::Semi, "';'"))
      return syncToSemi();
    if (Regions.count(Name)) {
      error("region " + Name + " already declared");
      return;
    }
    Regions[Name] = Prog->internRegion(Region(Lo, Hi));
    RegionRanks[Name] = static_cast<unsigned>(Lo.size());
  }

  void parseArrayDecl() {
    advance(); // 'array'
    std::vector<std::string> Names;
    while (true) {
      if (!at(TokenKind::Ident)) {
        error("expected array name");
        return syncToSemi();
      }
      Names.push_back(advance().Text);
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokenKind::Colon, "':'"))
      return syncToSemi();
    std::string RegionName = peek().Text;
    if (!expect(TokenKind::Ident, "region name"))
      return syncToSemi();
    auto It = Regions.find(RegionName);
    if (It == Regions.end()) {
      error("unknown region " + RegionName);
      return syncToSemi();
    }
    ArrayOpts Opts; // persistent by default
    while (at(TokenKind::KwTemp) || at(TokenKind::KwPersistent) ||
           at(TokenKind::KwIn)) {
      TokenKind K = advance().Kind;
      if (K == TokenKind::KwTemp) {
        Opts.LiveIn = false;
        Opts.LiveOut = false;
      } else if (K == TokenKind::KwIn) {
        Opts.LiveIn = true;
        Opts.LiveOut = false;
      } else {
        Opts.LiveIn = true;
        Opts.LiveOut = true;
      }
    }
    if (!expect(TokenKind::Semi, "';'"))
      return syncToSemi();
    for (const std::string &Name : Names) {
      if (Prog->findSymbol(Name)) {
        error("symbol " + Name + " already declared");
        continue;
      }
      Prog->makeArray(Name, RegionRanks[RegionName], Opts);
    }
  }

  void parseDirectionDecl() {
    advance(); // 'direction'
    std::string Name = peek().Text;
    if (!expect(TokenKind::Ident, "direction name"))
      return syncToSemi();
    if (!expect(TokenKind::Colon, "':'") || !expect(TokenKind::LParen, "'('"))
      return syncToSemi();
    std::vector<int32_t> Elems;
    while (true) {
      int64_t V = 0;
      if (!parseInt(V, "direction element"))
        return syncToSemi();
      Elems.push_back(static_cast<int32_t>(V));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokenKind::RParen, "')'") || !expect(TokenKind::Semi, "';'"))
      return syncToSemi();
    if (Directions.count(Name)) {
      error("direction " + Name + " already declared");
      return;
    }
    Directions.emplace(Name, Offset(std::move(Elems)));
  }

  void parseScalarDecl() {
    advance(); // 'scalar'
    while (true) {
      if (!at(TokenKind::Ident)) {
        error("expected scalar name");
        return syncToSemi();
      }
      std::string Name = advance().Text;
      if (Prog->findSymbol(Name))
        error("symbol " + Name + " already declared");
      else
        Prog->makeScalar(Name);
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::Semi, "';'");
  }

  bool parseInt(int64_t &Out, const char *What) {
    bool Negative = false;
    if (at(TokenKind::Minus)) {
      advance();
      Negative = true;
    }
    if (!at(TokenKind::Number)) {
      error(formatString("expected %s", What));
      return false;
    }
    Out = static_cast<int64_t>(advance().NumValue);
    if (Negative)
      Out = -Out;
    return true;
  }

  bool parseOffset(Offset &Out, unsigned Rank) {
    advance(); // '@'
    // Named direction (ZPL's `direction` declarations): @north.
    if (at(TokenKind::Ident)) {
      std::string Name = advance().Text;
      auto It = Directions.find(Name);
      if (It == Directions.end()) {
        error("unknown direction " + Name);
        return false;
      }
      if (It->second.rank() != Rank) {
        error(formatString(
            "direction %s has %u elements but the array has rank %u",
            Name.c_str(), It->second.rank(), Rank));
        return false;
      }
      Out = It->second;
      return true;
    }
    if (!expect(TokenKind::LParen, "'('"))
      return false;
    std::vector<int32_t> Elems;
    while (true) {
      int64_t V = 0;
      if (!parseInt(V, "offset element"))
        return false;
      Elems.push_back(static_cast<int32_t>(V));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokenKind::RParen, "')'"))
      return false;
    if (Elems.size() != Rank) {
      error(formatString("offset has %zu elements but the array has rank %u",
                         Elems.size(), Rank));
      return false;
    }
    Out = Offset(std::move(Elems));
    return true;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  ExprPtr parseExpr() {
    ExprPtr L = parseTerm();
    while (L && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
      TokenKind Op = advance().Kind;
      ExprPtr R = parseTerm();
      if (!R)
        return nullptr;
      L = Op == TokenKind::Plus ? add(std::move(L), std::move(R))
                                : sub(std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseTerm() {
    ExprPtr L = parseFactor();
    while (L && (at(TokenKind::Star) || at(TokenKind::Slash))) {
      TokenKind Op = advance().Kind;
      ExprPtr R = parseFactor();
      if (!R)
        return nullptr;
      L = Op == TokenKind::Star ? mul(std::move(L), std::move(R))
                                : div(std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseFactor() {
    if (at(TokenKind::Number))
      return cst(advance().NumValue);
    if (at(TokenKind::Minus)) {
      advance();
      ExprPtr E = parseFactor();
      return E ? neg(std::move(E)) : nullptr;
    }
    if (at(TokenKind::LParen)) {
      advance();
      ExprPtr E = parseExpr();
      if (!E)
        return nullptr;
      if (!expect(TokenKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    if (at(TokenKind::Ident))
      return parseRefOrCall();
    error(formatString("expected an expression, found %s",
                       getTokenKindName(peek().Kind)));
    return nullptr;
  }

  ExprPtr parseRefOrCall() {
    std::string Name = advance().Text;

    // Builtin calls.
    using UOp = UnaryExpr::Opcode;
    static const std::map<std::string, UOp> Unaries = {
        {"sqrt", UOp::Sqrt}, {"exp", UOp::Exp},   {"log", UOp::Log},
        {"sin", UOp::Sin},   {"cos", UOp::Cos},   {"abs", UOp::Abs},
        {"recip", UOp::Recip}};
    if (at(TokenKind::LParen)) {
      advance();
      auto UIt = Unaries.find(Name);
      if (UIt != Unaries.end()) {
        ExprPtr E = parseExpr();
        if (!E || !expect(TokenKind::RParen, "')'"))
          return nullptr;
        return std::make_unique<UnaryExpr>(UIt->second, std::move(E));
      }
      if (Name == "min" || Name == "max") {
        ExprPtr L = parseExpr();
        if (!L || !expect(TokenKind::Comma, "','"))
          return nullptr;
        ExprPtr R = parseExpr();
        if (!R || !expect(TokenKind::RParen, "')'"))
          return nullptr;
        return Name == "min" ? emin(std::move(L), std::move(R))
                             : emax(std::move(L), std::move(R));
      }
      error("unknown builtin function " + Name);
      return nullptr;
    }

    const Symbol *Sym = Prog->findSymbol(Name);
    if (!Sym) {
      error("unknown symbol " + Name);
      return nullptr;
    }
    if (const auto *Sc = dyn_cast<ScalarSymbol>(Sym)) {
      if (at(TokenKind::At)) {
        error("scalar " + Name + " cannot take an offset");
        return nullptr;
      }
      return sref(Sc);
    }
    const auto *Arr = cast<ArraySymbol>(Sym);
    Offset Off = Offset::zero(Arr->getRank());
    if (at(TokenKind::At) && !parseOffset(Off, Arr->getRank()))
      return nullptr;
    return aref(Arr, std::move(Off));
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void parseStmt() {
    unsigned StmtLine = peek().Line, StmtCol = peek().Col;
    advance(); // '['
    std::string RegionName = peek().Text;
    if (!expect(TokenKind::Ident, "region name"))
      return syncToSemi();
    auto RIt = Regions.find(RegionName);
    if (RIt == Regions.end()) {
      error("unknown region " + RegionName);
      return syncToSemi();
    }
    if (!expect(TokenKind::RBracket, "']'"))
      return syncToSemi();

    std::string LHSName = peek().Text;
    if (!expect(TokenKind::Ident, "assignment target"))
      return syncToSemi();
    const Symbol *LHS = Prog->findSymbol(LHSName);
    if (!LHS) {
      error("unknown symbol " + LHSName);
      return syncToSemi();
    }

    Offset LHSOff;
    bool HasLHSOffset = false;
    if (at(TokenKind::At)) {
      const auto *Arr = dyn_cast<ArraySymbol>(LHS);
      if (!Arr) {
        error("scalar " + LHSName + " cannot take an offset");
        return syncToSemi();
      }
      if (!parseOffset(LHSOff, Arr->getRank()))
        return syncToSemi();
      HasLHSOffset = true;
    }
    if (!expect(TokenKind::Assign, "':='"))
      return syncToSemi();

    // Reduction: '+' '<<' | 'min' '<<' | 'max' '<<' | 'or' '<<'.
    std::optional<ReduceStmt::ReduceOpKind> RedOp;
    if (at(TokenKind::Plus) && peek(1).Kind == TokenKind::Reduce)
      RedOp = ReduceStmt::ReduceOpKind::Sum;
    else if (at(TokenKind::Ident) && peek(1).Kind == TokenKind::Reduce) {
      if (peek().Text == "min")
        RedOp = ReduceStmt::ReduceOpKind::Min;
      else if (peek().Text == "max")
        RedOp = ReduceStmt::ReduceOpKind::Max;
      else if (peek().Text == "or")
        RedOp = ReduceStmt::ReduceOpKind::Or;
    }
    if (RedOp) {
      advance(); // the operator
      advance(); // '<<'
      const auto *Acc = dyn_cast<ScalarSymbol>(LHS);
      if (!Acc) {
        error("reduction target " + LHSName + " must be a scalar");
        return syncToSemi();
      }
      ExprPtr Body = parseExpr();
      if (!Body)
        return syncToSemi();
      if (!expect(TokenKind::Semi, "';'"))
        return syncToSemi();
      Prog->reduce(RIt->second, Acc, *RedOp, std::move(Body));
      StmtPositions.push_back({StmtLine, StmtCol});
      return;
    }

    const auto *Arr = dyn_cast<ArraySymbol>(LHS);
    if (!Arr) {
      error("assignment target " + LHSName +
            " is a scalar; use a reduction (op<<) instead");
      return syncToSemi();
    }
    if (Arr->getRank() != RIt->second->rank()) {
      error(formatString("array %s has rank %u but region %s has rank %u",
                         LHSName.c_str(), Arr->getRank(), RegionName.c_str(),
                         RIt->second->rank()));
      return syncToSemi();
    }
    ExprPtr RHS = parseExpr();
    if (!RHS)
      return syncToSemi();
    if (!expect(TokenKind::Semi, "';'"))
      return syncToSemi();
    if (!HasLHSOffset)
      LHSOff = Offset::zero(Arr->getRank());
    Prog->assign(RIt->second, Arr, std::move(LHSOff), std::move(RHS));
    StmtPositions.push_back({StmtLine, StmtCol});
  }
};

} // namespace

ParseResult frontend::parseProgram(const std::string &Source,
                                   const std::string &Name) {
  ParseResult Result;
  Parser P(Source, Name, Result.Errors, Result.StmtPositions);
  Result.Prog = P.run();
  return Result;
}

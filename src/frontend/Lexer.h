//===- frontend/Lexer.h - Mini-ZPL lexer -----------------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the small ZPL-like input language (see frontend/Parser.h for
/// the grammar). Produces a token stream with line/column positions for
/// diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_FRONTEND_LEXER_H
#define ALF_FRONTEND_LEXER_H

#include <string>
#include <vector>

namespace alf {
namespace frontend {

/// Token kinds of the mini-ZPL language.
enum class TokenKind {
  Ident,
  Number,
  KwRegion,
  KwArray,
  KwScalar,
  KwDirection,
  KwTemp,
  KwPersistent,
  KwIn, // array trait: live-in only
  LBracket,
  RBracket,
  LParen,
  RParen,
  Comma,
  Semi,
  Colon,
  Assign,   // :=
  At,       // @
  DotDot,   // ..
  Plus,
  Minus,
  Star,
  Slash,
  Reduce,   // <<
  Eof,
  Error
};

/// Printable token-kind name for diagnostics.
const char *getTokenKindName(TokenKind K);

/// One token with its source position.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  double NumValue = 0.0;
  unsigned Line = 1;
  unsigned Col = 1;
};

/// Tokenizes \p Source. Lexical errors become Error tokens carrying the
/// offending text; the stream always ends with Eof. Comments run from
/// `--` to end of line.
std::vector<Token> tokenize(const std::string &Source);

} // namespace frontend
} // namespace alf

#endif // ALF_FRONTEND_LEXER_H

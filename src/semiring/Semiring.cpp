//===- semiring/Semiring.cpp - Reduction/contraction algebras --------------===//

#include "semiring/Semiring.h"

#include "support/StringUtil.h"

#include <limits>

using namespace alf;
using namespace alf::semiring;

double semiring::applyOp(OpKind K, double A, double B) {
  switch (K) {
  case OpKind::Add:
    return A + B;
  case OpKind::Mul:
    return A * B;
  case OpKind::Min:
    return B < A ? B : A;
  case OpKind::Max:
    return B > A ? B : A;
  case OpKind::Or:
    return (A != 0.0 || B != 0.0) ? 1.0 : 0.0;
  case OpKind::And:
    return (A != 0.0 && B != 0.0) ? 1.0 : 0.0;
  case OpKind::Sub:
    return A - B;
  }
  return A;
}

VecFold semiring::vecFoldKind(OpKind K) {
  switch (K) {
  case OpKind::Add:
  case OpKind::Mul:
    return VecFold::Arith;
  case OpKind::Min:
  case OpKind::Max:
    return VecFold::Compare;
  case OpKind::Or:
  case OpKind::And:
    return VecFold::Bitwise;
  case OpKind::Sub:
    // Non-associative: lane folds compute a different bracketing, so no
    // lane spelling exists. Only the fault-injection "semiring" uses Sub.
    return VecFold::None;
  }
  return VecFold::None;
}

const char *semiring::getOpName(OpKind K) {
  switch (K) {
  case OpKind::Add:
    return "+";
  case OpKind::Mul:
    return "*";
  case OpKind::Min:
    return "min";
  case OpKind::Max:
    return "max";
  case OpKind::Or:
    return "or";
  case OpKind::And:
    return "and";
  case OpKind::Sub:
    return "-";
  }
  return "?";
}

namespace {
constexpr double Inf = std::numeric_limits<double>::infinity();
} // namespace

const Semiring &semiring::plusTimes() {
  // Carrier samples are small integers: double addition is exact on them,
  // so the associativity re-proof is not defeated by rounding.
  static const Semiring S{"plus-times", OpKind::Add,    OpKind::Mul,
                          0.0,          1.0,            0.0,
                          /*Exact=*/false,
                          {-3.0, -1.0, 0.0, 1.0, 2.0, 5.0}};
  return S;
}

const Semiring &semiring::minPlus() {
  static const Semiring S{"min-plus", OpKind::Min,    OpKind::Add,
                          Inf,        0.0,            Inf,
                          /*Exact=*/true,
                          {-4.0, -0.5, 0.0, 1.25, 7.0, Inf}};
  return S;
}

const Semiring &semiring::maxTimes() {
  // Viterbi-style: carrier is the nonnegative reals, where 0 is both the
  // identity of max and the annihilator of *. Over all of R the laws
  // genuinely fail (-inf * 0 is NaN), so max-times workloads keep their
  // values nonnegative.
  static const Semiring S{"max-times", OpKind::Max,   OpKind::Mul,
                          0.0,         1.0,           0.0,
                          /*Exact=*/true,
                          {0.0, 0.25, 1.0, 3.5, 9.0}};
  return S;
}

const Semiring &semiring::maxPlus() {
  // The tropical dual of min-plus, and the canonical algebra of a plain
  // max<< reduction: -inf is a lawful identity and annihilator over
  // R ∪ {-inf}, so max-reductions of arbitrary-sign data stay exact.
  static const Semiring S{"max-plus", OpKind::Max,    OpKind::Add,
                          -Inf,       0.0,            -Inf,
                          /*Exact=*/true,
                          {-Inf, -4.0, -0.5, 0.0, 1.25, 7.0}};
  return S;
}

const Semiring &semiring::orAnd() {
  static const Semiring S{"or-and", OpKind::Or,     OpKind::And,
                          0.0,      1.0,            0.0,
                          /*Exact=*/true,
                          {0.0, 1.0}};
  return S;
}

const std::vector<const Semiring *> &semiring::all() {
  static const std::vector<const Semiring *> All = {
      &plusTimes(), &minPlus(), &maxTimes(), &maxPlus(), &orAnd()};
  return All;
}

const Semiring *semiring::byName(const std::string &Name) {
  for (const Semiring *S : all())
    if (S->Name == Name)
      return S;
  return nullptr;
}

std::string semiring::allNames() {
  std::vector<std::string> Names;
  for (const Semiring *S : all())
    Names.push_back(S->Name);
  return join(Names, "|");
}

std::vector<std::string> semiring::checkAlgebra(const Semiring &SR) {
  std::vector<std::string> Violations;
  // NaN-safe equality: a law holds when both sides are identical bits or
  // both NaN; the carriers here never produce NaN, but the check should
  // not claim a law holds through NaN == NaN being false.
  auto Same = [](double A, double B) {
    return A == B || (A != A && B != B);
  };
  auto Violate = [&Violations](const std::string &What) {
    // Bound the report: one broken law can fire for many sample triples.
    if (Violations.size() < 8)
      Violations.push_back(What);
  };

  const std::vector<double> &C = SR.Carrier;
  for (double A : C) {
    // (2) two-sided ⊕ identity.
    if (!Same(SR.combine(A, SR.PlusIdentity), A) ||
        !Same(SR.combine(SR.PlusIdentity, A), A))
      Violate(formatString("%s: %s is not an identity of %s at a=%g",
                           SR.Name.c_str(),
                           formatString("%g", SR.PlusIdentity).c_str(),
                           SR.plusName(), A));
    // (4) ⊗ annihilator.
    if (!Same(applyOp(SR.Times, A, SR.Annihilator), SR.Annihilator))
      Violate(formatString("%s: %g does not annihilate %s at a=%g",
                           SR.Name.c_str(), SR.Annihilator,
                           getOpName(SR.Times), A));
    for (double B : C) {
      // (3) ⊕ commutativity.
      if (!Same(SR.combine(A, B), SR.combine(B, A)))
        Violate(formatString("%s: %s is not commutative at (%g, %g)",
                             SR.Name.c_str(), SR.plusName(), A, B));
      // (1) ⊕ associativity — the law Definition 6 actually consumes.
      for (double D : C)
        if (!Same(SR.combine(SR.combine(A, B), D),
                  SR.combine(A, SR.combine(B, D))))
          Violate(formatString(
              "%s: %s is not associative at (%g, %g, %g): "
              "(a%sb)%sc = %g but a%s(b%sc) = %g",
              SR.Name.c_str(), SR.plusName(), A, B, D, SR.plusName(),
              SR.plusName(), SR.combine(SR.combine(A, B), D),
              SR.plusName(), SR.plusName(),
              SR.combine(A, SR.combine(B, D))));
    }
  }
  return Violations;
}

const Semiring &semiring::bogusNonAssociativeForTest() {
  // ⊕ = subtraction: (1-2)-3 = -4 but 1-(2-3) = 2, and 0 is only a right
  // identity. checkAlgebra must report both.
  static const Semiring S{"bogus-sub", OpKind::Sub,   OpKind::Mul,
                          0.0,         1.0,           0.0,
                          /*Exact=*/true,
                          {-2.0, 0.0, 1.0, 2.0, 3.0}};
  return S;
}

//===- semiring/Semiring.h - Reduction/contraction algebras ----*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Semiring` is the algebra (⊕, ⊗, 0̄, 1̄) a contraction computes over.
/// The paper's Definition 6 contractibility argument uses only that ⊕ is
/// associative with identity 0̄ — nothing about (+, ×) specifically — so
/// the whole stack (scalarizer accumulator init, interpreter/parallel/JIT
/// combine, runtime trace keys, verify legality re-proofs) is parameterized
/// by a semiring descriptor instead of a hard-wired op kind.
///
/// The registry holds the named instances the workload zoo uses:
///
///   plus-times  (ℝ, +, ×, 0, 1)          classic sums of products
///   min-plus    (ℝ∪{∞}, min, +, ∞, 0)    tropical: shortest paths
///   max-times   (ℝ≥0, max, ×, 0, 1)      Viterbi-style best score
///   max-plus    (ℝ∪{-∞}, max, +, -∞, 0)  tropical dual; plain max<<
///   or-and      ({0,1}, ∨, ∧, 0, 1)      boolean: reachability/closure
///
/// Instances are singletons with stable addresses: statements store
/// `const Semiring *` and compare identity by pointer, and two semirings
/// never compare equal just because their tables coincide. Every instance
/// declares carrier sample values on which `checkAlgebra` re-proves the
/// laws Definition 6 consumes (associativity and two-sided identity of ⊕,
/// plus the ⊗ laws for documentation); a bogus non-associative "semiring"
/// is available for fault-injection tests and MUST be rejected by verify.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SEMIRING_SEMIRING_H
#define ALF_SEMIRING_SEMIRING_H

#include <string>
#include <vector>

namespace alf {
namespace semiring {

/// Scalar opcodes usable as a semiring's ⊕ or ⊗. `Sub` exists only so the
/// fault-injection tests can plant a non-associative ⊕; no registry
/// instance uses it.
enum class OpKind { Add, Mul, Min, Max, Or, And, Sub };

/// Applies \p K to two doubles. `Or`/`And` use C truthiness and return
/// exactly 0.0 or 1.0, so boolean folds are deterministic (and identical
/// across backends) even on off-carrier inputs.
double applyOp(OpKind K, double A, double B);

/// How a lane-splitting backend (the vectorizing C emitter above all) may
/// fold an operator across SIMD lanes. The class decides both whether a
/// reduction is vectorizable at all and what the divergence contract of
/// the result is: every class except Arith folds bit-identically to the
/// sequential spelling, so only Arith ⊕ reductions need ULP tolerance.
enum class VecFold {
  None,    ///< Not lane-foldable (Sub: the planted non-associative ⊕).
  Arith,   ///< Lane-wise vector arithmetic (+, ×); reassociates float +.
  Compare, ///< Lane-wise compare+select (min, max); selects operand bits,
           ///< so per-lane results are bit-identical to the scalar fold.
  Bitwise, ///< Lane-wise mask algebra (or, and) over canonical {0.0, 1.0};
           ///< bit-identical by construction.
};

/// The lane-fold class of \p K (the per-op vectorizability table).
VecFold vecFoldKind(OpKind K);

/// Spelling of \p K as a reduction operator ("+", "min", "max", "or", ...).
const char *getOpName(OpKind K);

/// Descriptor of one algebra. Aggregate by design: tests build bogus
/// instances directly; real code goes through the registry.
struct Semiring {
  std::string Name;     ///< registry name, e.g. "min-plus"
  OpKind Plus;          ///< ⊕ — the reduction/combine operator
  OpKind Times;         ///< ⊗ — the element-wise product operator
  double PlusIdentity;  ///< 0̄: accumulator initialization value
  double TimesIdentity; ///< 1̄
  double Annihilator;   ///< a ⊗ 0̄ = 0̄ (equals PlusIdentity in a semiring)
  /// True when ⊕ is exact on doubles — min/max/or return one of their
  /// operands (or a canonical constant), so reassociation cannot change
  /// the result and cross-backend comparisons need no ULP tolerance.
  /// Floating-point + is NOT exact; plus-times contractions are only
  /// bit-stable while every backend folds in the same order.
  bool Exact = false;
  /// Sample carrier values `checkAlgebra` quantifies over. The laws of a
  /// semiring hold on its carrier set, not on all doubles — e.g. or's
  /// identity law fails off {0,1} (or(0.5, 0) = 1.0 ≠ 0.5) — so each
  /// instance declares representative members of its carrier.
  std::vector<double> Carrier;

  /// Folds one element into an accumulator: `Acc ⊕ V`.
  double combine(double Acc, double V) const {
    return applyOp(Plus, Acc, V);
  }

  /// Spelling of ⊕ as a reduction operator ("+", "min", "max", "or").
  const char *plusName() const { return getOpName(Plus); }

  /// True when a backend may keep this semiring's accumulators in SIMD
  /// lanes: ⊕ has a lane-fold class. Exact semirings that pass this test
  /// stay bit-identical under lane splitting (their VecFold is Compare or
  /// Bitwise); a vectorized non-Exact ⊕ (plus-times) reassociates.
  bool vectorizablePlus() const { return vecFoldKind(Plus) != VecFold::None; }
};

/// The registry instances. Addresses are stable for the process lifetime;
/// pointer equality is semiring identity.
const Semiring &plusTimes();
const Semiring &minPlus();
const Semiring &maxTimes();
const Semiring &maxPlus();
const Semiring &orAnd();

/// All registered instances, in a stable order.
const std::vector<const Semiring *> &all();

/// Looks up a registry instance by name ("plus-times", "min-plus",
/// "max-times", "or-and"); null when unknown. Never returns the bogus
/// test instance.
const Semiring *byName(const std::string &Name);

/// "name1|name2|..." of every registry instance, for CLI help and errors.
std::string allNames();

/// Re-proves the laws the Definition 6 contractibility argument consumes,
/// by exhaustive evaluation over the declared carrier samples:
///   (1) ⊕ associativity      (a⊕b)⊕c = a⊕(b⊕c)
///   (2) ⊕ identity           a⊕0̄ = 0̄⊕a = a
///   (3) ⊕ commutativity      a⊕b = b⊕a  (parallel/distributed combine
///                            order is not program order)
///   (4) ⊗ annihilator        a⊗0̄ = 0̄
/// Returns one human-readable violation per broken law instance (empty =
/// algebra certified). verify::verifyStrategy calls this for every
/// reduction statement, so a planted non-associative ⊕ is rejected before
/// any contraction of it could run.
std::vector<std::string> checkAlgebra(const Semiring &SR);

/// A deliberately broken "semiring" whose ⊕ is subtraction — associativity
/// and the identity law both fail on its carrier. For fault-injection
/// tests only; not in the registry, not reachable from byName().
const Semiring &bogusNonAssociativeForTest();

} // namespace semiring
} // namespace alf

#endif // ALF_SEMIRING_SEMIRING_H

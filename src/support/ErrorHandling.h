//===- support/ErrorHandling.h - Fatal error utilities ---------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `alf_unreachable` marks code paths that are bugs to reach, in the spirit
/// of `llvm_unreachable`. ALF library code does not throw; invariant
/// violations abort with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_ERRORHANDLING_H
#define ALF_SUPPORT_ERRORHANDLING_H

namespace alf {

/// Aborts with \p Msg, annotated with the source location of the caller.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

/// Aborts with a fatal-error diagnostic. Used for errors that are not
/// internal invariant violations but for which no recovery is sensible in
/// this library (e.g. malformed generated tables).
[[noreturn]] void reportFatalError(const char *Msg);

} // namespace alf

#define alf_unreachable(MSG) ::alf::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // ALF_SUPPORT_ERRORHANDLING_H

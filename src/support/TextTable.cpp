//===- support/TextTable.cpp - Aligned text table printer ----------------===//

#include "support/TextTable.h"

#include <algorithm>

using namespace alf;

void TextTable::print(std::ostream &OS) const {
  // Compute column widths across header and all rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Row) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        OS << "  ";
      size_t Pad = Widths[I] - Row[I].size();
      if (I == 0) {
        OS << Row[I] << std::string(Pad, ' ');
      } else {
        OS << std::string(Pad, ' ') << Row[I];
      }
    }
    OS << '\n';
  };

  if (!Header.empty()) {
    PrintRow(Header);
    size_t Total = 0;
    for (size_t I = 0; I < Widths.size(); ++I)
      Total += Widths[I] + (I == 0 ? 0 : 2);
    OS << std::string(Total, '-') << '\n';
  }
  for (const auto &Row : Rows)
    PrintRow(Row);
}

//===- support/Casting.h - LLVM-style isa/cast/dyn_cast -------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's `isa<>`, `cast<>` and `dyn_cast<>`
/// templates. Classes opt in by providing a `static bool classof(const
/// Base *)` member, typically testing a Kind discriminator. This gives the
/// project checked downcasts without enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_CASTING_H
#define ALF_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace alf {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but accepts (and propagates) null.
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace alf

#endif // ALF_SUPPORT_CASTING_H

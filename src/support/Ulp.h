//===- support/Ulp.h - ULP-aware float comparison --------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Units-in-the-last-place distance between doubles, and the declared
/// tolerance modes the differential harnesses compare under. Backends are
/// bit-identical to the interpreter by construction — with exactly one
/// sanctioned exception: the vectorizing JIT keeps ⊕-accumulators in
/// vector lanes and folds the lanes at loop exit, which reassociates
/// floating-point `+` reductions. Every comparison therefore declares its
/// tolerance up front:
///
///   Exact             0 ULP. Elementwise code, integer-valued programs,
///                     and every Exact semiring (min/max/or return one of
///                     their operands, so reassociation cannot change the
///                     result).
///   ReassociatedFloat The program contains a float `+` reduction a
///                     lane-splitting backend may legally reorder; results
///                     agree within a small ULP budget.
///
/// The distance is the symmetric integer gap between the two values'
/// positions in the monotone ordering of finite doubles (sign-magnitude
/// bits mapped to a lexicographically ordered integer line). +0.0 and
/// -0.0 are 0 apart; NaN is infinitely far from everything, including
/// itself — a NaN produced on one side but not the other is a real
/// divergence, never "close".
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_ULP_H
#define ALF_SUPPORT_ULP_H

#include <cstdint>
#include <cstring>

namespace alf {
namespace support {

/// Declared comparison tolerance of one differential check.
enum class Tolerance {
  Exact,             ///< 0 ULP: any difference is a failure.
  ReassociatedFloat, ///< bounded ULP: float + folds were reordered.
};

/// Printable name ("exact", "reassociated-float").
inline const char *getToleranceName(Tolerance T) {
  return T == Tolerance::Exact ? "exact" : "reassociated-float";
}

namespace detail {
/// Maps a double onto the integer line where adjacent representable
/// values differ by exactly 1 and ordering matches numeric ordering
/// (the classic sign-magnitude-to-biased trick).
inline int64_t ulpIndex(double V) {
  int64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits < 0 ? static_cast<int64_t>(INT64_MIN) - Bits : Bits;
}
} // namespace detail

/// The ULP distance between \p A and \p B; UINT64_MAX when either is NaN
/// (unless both are bit-identical NaNs, which count as 0 — the backends
/// propagated the very same value). Infinities are ordinary points on the
/// line: inf vs. the largest finite double is 1 ULP apart, inf vs. inf of
/// the same sign is 0.
inline uint64_t ulpDistance(double A, double B) {
  int64_t IA, IB;
  std::memcpy(&IA, &A, sizeof(IA));
  std::memcpy(&IB, &B, sizeof(IB));
  if (IA == IB)
    return 0; // covers identical NaN bits and -0.0 vs -0.0
  if (A != A || B != B)
    return UINT64_MAX;
  int64_t X = detail::ulpIndex(A), Y = detail::ulpIndex(B);
  return X > Y ? static_cast<uint64_t>(X) - static_cast<uint64_t>(Y)
               : static_cast<uint64_t>(Y) - static_cast<uint64_t>(X);
}

/// True when \p A and \p B agree under \p T: bit-equal numeric values for
/// Exact (+0.0 == -0.0 is allowed — both compare equal — but NaN never
/// matches a non-NaN), within \p MaxUlps for ReassociatedFloat.
inline bool agreeWithin(double A, double B, Tolerance T,
                        uint64_t MaxUlps = 0) {
  uint64_t D = ulpDistance(A, B);
  if (T == Tolerance::Exact)
    return D == 0 || A == B; // A == B admits +0.0 vs -0.0
  return D <= MaxUlps || A == B;
}

} // namespace support
} // namespace alf

#endif // ALF_SUPPORT_ULP_H

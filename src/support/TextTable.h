//===- support/TextTable.h - Aligned text table printer --------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple column-aligned text table, used by every benchmark harness to
/// print the paper-style tables (Figures 6-11). Cells are strings; columns
/// are padded to the widest cell.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_TEXTTABLE_H
#define ALF_SUPPORT_TEXTTABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace alf {

/// Column-aligned text table with an optional header row and separator.
class TextTable {
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;

public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells) { Header = std::move(Cells); }

  /// Appends a data row.
  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

  /// Writes the table, padding each column to its widest cell. The first
  /// column is left-aligned, remaining columns right-aligned (numbers).
  void print(std::ostream &OS) const;
};

} // namespace alf

#endif // ALF_SUPPORT_TEXTTABLE_H

//===- support/StringUtil.cpp - String formatting helpers ----------------===//

#include "support/StringUtil.h"

#include <cstdarg>
#include <cstdio>

using namespace alf;

std::string alf::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Size > 0) {
    Result.resize(static_cast<size_t>(Size));
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}

std::string alf::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string alf::formatDouble(double Value, unsigned Digits) {
  return formatString("%.*f", static_cast<int>(Digits), Value);
}

std::string alf::formatPercent(double Value) {
  return formatString("%+.1f%%", Value);
}

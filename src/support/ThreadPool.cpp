//===- support/ThreadPool.cpp - Static-partition thread pool ----------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace alf;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  NumWorkers = NumThreads;
  Workers.reserve(NumWorkers - 1);
  for (unsigned W = 1; W < NumWorkers; ++W)
    Workers.emplace_back([this, W] { workerLoop(W); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

bool ThreadPool::chunkBounds(int64_t Begin, int64_t End, unsigned NumChunks,
                             unsigned Chunk, int64_t &Lo, int64_t &Hi) {
  int64_t Size = End - Begin;
  if (Size <= 0 || Chunk >= NumChunks)
    return false;
  // Block partition: chunk i covers [Begin + i*Size/n, Begin + (i+1)*Size/n).
  Lo = Begin + Size * static_cast<int64_t>(Chunk) /
                   static_cast<int64_t>(NumChunks);
  int64_t Next = Begin + Size * (static_cast<int64_t>(Chunk) + 1) /
                     static_cast<int64_t>(NumChunks);
  Hi = Next - 1;
  return Lo <= Hi;
}

void ThreadPool::runChunk(unsigned Worker) {
  int64_t Lo, Hi;
  if (chunkBounds(JobBegin, JobEnd, NumWorkers, Worker, Lo, Hi))
    (*JobBody)(Lo, Hi + 1, Worker);
}

void ThreadPool::workerLoop(unsigned Worker) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      JobReady.wait(Lock, [&] { return Stopping || Generation != SeenGeneration; });
      if (Stopping)
        return;
      SeenGeneration = Generation;
    }
    runChunk(Worker);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Remaining == 0)
        JobDone.notify_all();
    }
  }
}

TaskQueue::TaskQueue(unsigned NumThreads) {
  NumThreads = std::max(1u, NumThreads);
  Workers.reserve(NumThreads);
  for (unsigned W = 0; W < NumThreads; ++W)
    Workers.emplace_back([this] { workerLoop(); });
}

TaskQueue::~TaskQueue() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void TaskQueue::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Jobs.push_back(std::move(Job));
  }
  JobReady.notify_one();
}

size_t TaskQueue::pending() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Jobs.size();
}

void TaskQueue::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      // Workers only exit once the queue is empty, so destruction drains
      // every job already submitted (waiters on a queued compile would
      // otherwise hang forever).
      JobReady.wait(Lock, [&] { return Stopping || !Jobs.empty(); });
      if (Jobs.empty())
        return;
      Job = std::move(Jobs.front());
      Jobs.pop_front();
    }
    Job();
  }
}

void ThreadPool::parallelFor(int64_t Begin, int64_t End, const ChunkBody &Body) {
  if (Begin >= End)
    return;
  if (NumWorkers == 1) {
    Body(Begin, End, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobBegin = Begin;
    JobEnd = End;
    JobBody = &Body;
    Remaining = NumWorkers - 1;
    ++Generation;
  }
  JobReady.notify_all();
  runChunk(0); // the calling thread owns chunk 0
  std::unique_lock<std::mutex> Lock(Mutex);
  JobDone.wait(Lock, [&] { return Remaining == 0; });
  JobBody = nullptr;
}

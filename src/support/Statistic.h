//===- support/Statistic.h - Pass statistics counters ----------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style pass statistics: cheap named counters that passes bump as
/// they work, printable as a report (`zplc --stats`). Counters register
/// themselves lazily on first use (no static constructors) and are
/// resettable so tools can scope them to one compilation.
///
/// Usage:
/// \code
///   ALF_STATISTIC(NumMerges, "fusion", "Cluster merges performed");
///   ...
///   ++NumMerges;
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_STATISTIC_H
#define ALF_SUPPORT_STATISTIC_H

#include <cstdint>
#include <ostream>

namespace alf {

/// One named counter. Define at namespace/function scope with
/// ALF_STATISTIC; the counter registers itself on first increment.
class Statistic {
  const char *Group;
  const char *Name;
  const char *Desc;
  uint64_t Value = 0;
  bool Registered = false;

  void registerSelf();

public:
  Statistic(const char *Group, const char *Name, const char *Desc)
      : Group(Group), Name(Name), Desc(Desc) {}

  const char *getGroup() const { return Group; }
  const char *getName() const { return Name; }
  const char *getDesc() const { return Desc; }
  uint64_t value() const { return Value; }

  Statistic &operator++() {
    if (!Registered)
      registerSelf();
    ++Value;
    return *this;
  }

  Statistic &operator+=(uint64_t N) {
    if (!Registered)
      registerSelf();
    Value += N;
    return *this;
  }

  /// Zeroes the counter (used by resetStatistics through the registry).
  void reset() { Value = 0; }
};

/// Writes all nonzero counters, grouped, aligned.
void printStatistics(std::ostream &OS);

/// Zeroes every registered counter.
void resetStatistics();

/// Sum of a registered counter by group/name; 0 when absent (useful in
/// tests).
uint64_t getStatisticValue(const char *Group, const char *Name);

} // namespace alf

#define ALF_STATISTIC(VAR, GROUP, DESC)                                      \
  static ::alf::Statistic VAR(GROUP, #VAR, DESC)

#endif // ALF_SUPPORT_STATISTIC_H

//===- support/Statistic.h - Pass statistics counters ----------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style pass statistics: cheap named counters that passes bump as
/// they work, printable as a report (`zplc --stats`). Counters register
/// themselves lazily on first use (no static constructors) and are
/// resettable so tools can scope them to one compilation.
///
/// Usage:
/// \code
///   ALF_STATISTIC(NumMerges, "fusion", "Cluster merges performed");
///   ...
///   ++NumMerges;
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_STATISTIC_H
#define ALF_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <ostream>

namespace alf {

/// One named counter. Define at namespace/function scope with
/// ALF_STATISTIC; the counter registers itself on first increment.
/// Increments are relaxed atomics, so counters bumped from the parallel
/// executor's workers (or from JIT compiles racing across threads) stay
/// exact, and registration is serialized so report order never depends
/// on which thread incremented first.
class Statistic {
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Value{0};
  std::atomic<bool> Registered{false};

  void registerSelf();

public:
  Statistic(const char *Group, const char *Name, const char *Desc)
      : Group(Group), Name(Name), Desc(Desc) {}

  const char *getGroup() const { return Group; }
  const char *getName() const { return Name; }
  const char *getDesc() const { return Desc; }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  Statistic &operator++() {
    if (!Registered.load(std::memory_order_relaxed))
      registerSelf();
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }

  Statistic &operator+=(uint64_t N) {
    if (!Registered.load(std::memory_order_relaxed))
      registerSelf();
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }

  /// Zeroes the counter (used by resetStatistics through the registry).
  void reset() { Value.store(0, std::memory_order_relaxed); }
};

/// Writes all nonzero counters, aligned, in sorted (group, name) order —
/// the order is a documented contract so golden tests and textual diffs
/// of two reports are stable regardless of which pass touched its
/// counters first.
void printStatistics(std::ostream &OS);

/// Zeroes every registered counter.
void resetStatistics();

/// Sum of a registered counter by group/name; 0 when absent (useful in
/// tests).
uint64_t getStatisticValue(const char *Group, const char *Name);

} // namespace alf

#define ALF_STATISTIC(VAR, GROUP, DESC)                                      \
  static ::alf::Statistic VAR(GROUP, #VAR, DESC)

#endif // ALF_SUPPORT_STATISTIC_H

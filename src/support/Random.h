//===- support/Random.h - Deterministic random numbers ---------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic pseudo-random generator (SplitMix64). Used by the
/// interpreter to initialize live-in arrays and by the property tests to
/// generate random programs. Deterministic across platforms so goldens are
/// stable.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_RANDOM_H
#define ALF_SUPPORT_RANDOM_H

#include <cstdint>

namespace alf {

/// SplitMix64 generator. Cheap, high quality for test/data purposes, and
/// fully deterministic given the seed.
class SplitMix64 {
  uint64_t State;

public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBounded(uint64_t Bound) { return next() % Bound; }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// The \p N-th (0-based) 64-bit draw of the stream seeded with
  /// \p Seed, in O(1): SplitMix64 advances its state by a constant, so
  /// any position is directly addressable. Lets a distributed run
  /// initialize its local block exactly as the sequential run does.
  static uint64_t at(uint64_t Seed, uint64_t N) {
    uint64_t Z = Seed + (N + 1) * 0x9e3779b97f4a7c15ULL;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// The \p N-th double draw in [0,1) of the stream seeded with \p Seed.
  static double doubleAt(uint64_t Seed, uint64_t N) {
    return static_cast<double>(at(Seed, N) >> 11) * 0x1.0p-53;
  }
};

} // namespace alf

#endif // ALF_SUPPORT_RANDOM_H

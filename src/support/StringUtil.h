//===- support/StringUtil.h - String formatting helpers --------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by printers and the benchmark harnesses:
/// printf-style formatting into std::string, joining, and fixed-precision
/// number rendering.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_STRINGUTIL_H
#define ALF_SUPPORT_STRINGUTIL_H

#include <string>
#include <vector>

namespace alf {

/// printf-style formatting returning a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Renders \p Value with \p Digits fractional digits ("12.34").
std::string formatDouble(double Value, unsigned Digits);

/// Renders \p Value as a percentage string with one fractional digit and a
/// leading sign for positive values ("+12.3%", "-4.0%").
std::string formatPercent(double Value);

} // namespace alf

#endif // ALF_SUPPORT_STRINGUTIL_H

//===- support/Process.cpp - Subprocess invocation --------------------------===//

#include "support/Process.h"

#include <csignal>
#include <cstdio>
#include <sys/wait.h>

using namespace alf;

CommandResult alf::runCommand(const std::string &Command,
                              unsigned TimeoutSec) {
  CommandResult Result;

  // popen hands the string to /bin/sh -c; prefixing `ulimit -t` bounds the
  // subtree's CPU time, and `exec` in a subshell keeps the limited process
  // directly under the shell so signals surface in the wait status.
  std::string Shell;
  if (TimeoutSec > 0)
    Shell = "{ ulimit -t " + std::to_string(TimeoutSec) + "; " + Command +
            "; } 2>&1";
  else
    Shell = "{ " + Command + "; } 2>&1";

  FILE *Pipe = popen(Shell.c_str(), "r");
  if (!Pipe)
    return Result;

  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Result.Output.append(Buf, N);

  int Status = pclose(Pipe);
  if (Status == -1)
    return Result;
  if (WIFEXITED(Status)) {
    Result.ExitCode = WEXITSTATUS(Status);
    // ulimit kills with SIGXCPU/SIGKILL; a shell reports that as 128+sig.
    if (TimeoutSec > 0 &&
        (Result.ExitCode == 128 + SIGXCPU || Result.ExitCode == 128 + SIGKILL))
      Result.TimedOut = true;
  } else if (WIFSIGNALED(Status)) {
    Result.ExitCode = 128 + WTERMSIG(Status);
    if (TimeoutSec > 0 &&
        (WTERMSIG(Status) == SIGXCPU || WTERMSIG(Status) == SIGKILL))
      Result.TimedOut = true;
  }
  return Result;
}

std::string alf::commandFirstLine(const std::string &Command) {
  CommandResult R = runCommand(Command);
  if (!R.ok())
    return "";
  size_t NL = R.Output.find('\n');
  return NL == std::string::npos ? R.Output : R.Output.substr(0, NL);
}

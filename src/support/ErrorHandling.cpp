//===- support/ErrorHandling.cpp - Fatal error utilities -----------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

void alf::reportUnreachable(const char *Msg, const char *File, unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

void alf::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

//===- support/ThreadPool.h - Static-partition thread pool -----*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, work-stealing-free thread pool built around one primitive:
/// `parallelFor`, which splits a half-open index range into one
/// contiguous chunk per worker and blocks until every chunk has run.
/// The static block partition keeps tile ownership deterministic (worker
/// i always owns the i-th chunk), which the parallel executor relies on
/// for bit-identical results and for per-thread contraction storage.
/// The calling thread participates as worker 0, so a pool of size 1
/// spawns no threads and degenerates to a plain sequential loop.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_THREADPOOL_H
#define ALF_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alf {

/// A persistent pool of `numThreads() - 1` background workers plus the
/// calling thread. Jobs are dispatched by `parallelFor`; the pool is
/// reused across calls so tile-with-barriers execution (one dispatch per
/// sequential outer iteration) does not pay thread creation per barrier.
/// Not reentrant: `parallelFor` must not be called from inside a body.
class ThreadPool {
public:
  /// A chunk body: [ChunkBegin, ChunkEnd) and the worker index running it
  /// (0 = the calling thread, workers are numbered densely).
  using ChunkBody = std::function<void(int64_t ChunkBegin, int64_t ChunkEnd,
                                       unsigned Worker)>;

  /// Creates a pool of \p NumThreads workers; 0 means
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return NumWorkers; }

  /// Splits [Begin, End) into numThreads() contiguous chunks (worker i
  /// gets the i-th chunk in index order; trailing chunks may be empty
  /// when the range is short) and runs them concurrently. Blocks until
  /// all chunks complete. Runs \p Body inline when the pool has a single
  /// worker.
  void parallelFor(int64_t Begin, int64_t End, const ChunkBody &Body);

  /// The inclusive sub-range [Lo..Hi] of chunk \p Chunk when [Begin, End)
  /// is block-partitioned into \p NumChunks pieces; returns false when the
  /// chunk is empty. Exposed so callers can reason about chunk ownership
  /// (e.g. which worker runs the last iteration) without duplicating the
  /// partition arithmetic.
  static bool chunkBounds(int64_t Begin, int64_t End, unsigned NumChunks,
                          unsigned Chunk, int64_t &Lo, int64_t &Hi);

private:
  void workerLoop(unsigned Worker);
  void runChunk(unsigned Worker);

  unsigned NumWorkers = 1;
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable JobReady;
  std::condition_variable JobDone;
  uint64_t Generation = 0; ///< bumped per parallelFor; workers wait on it
  unsigned Remaining = 0;  ///< background workers still running the job
  bool Stopping = false;

  // The in-flight job (valid while Remaining > 0 or the caller is in
  // parallelFor).
  int64_t JobBegin = 0;
  int64_t JobEnd = 0;
  const ChunkBody *JobBody = nullptr;
};

/// A FIFO job queue drained by a fixed set of dedicated workers — the
/// asynchronous counterpart of ThreadPool (which is a fork/join
/// primitive and unsuitable for fire-and-forget work). The serving
/// layer uses one as its compile queue: expensive kernel compiles are
/// submitted here so they are bounded to NumThreads at a time and never
/// run on (or block) the threads answering warm execution requests.
///
/// Thread-safety contract: submit() may be called from any thread,
/// including from inside a running job. Jobs run in submission order
/// when NumThreads == 1; with more workers only the dequeue order is
/// FIFO. The destructor drains the queue: every job submitted before
/// destruction begins is run to completion, then the workers join — so
/// a job's captured state may safely outlive the submitting thread but
/// must outlive the queue.
class TaskQueue {
public:
  /// Spawns \p NumThreads dedicated workers (at least one).
  explicit TaskQueue(unsigned NumThreads = 1);

  /// Drains every queued job, then joins the workers.
  ~TaskQueue();

  TaskQueue(const TaskQueue &) = delete;
  TaskQueue &operator=(const TaskQueue &) = delete;

  /// Enqueues \p Job to run on some worker. Never blocks on job
  /// execution (only on the queue mutex).
  void submit(std::function<void()> Job);

  /// Jobs enqueued but not yet started (a snapshot; racy by nature).
  size_t pending() const;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

private:
  void workerLoop();

  mutable std::mutex Mutex;
  std::condition_variable JobReady;
  std::deque<std::function<void()>> Jobs;
  std::vector<std::thread> Workers;
  bool Stopping = false;
};

} // namespace alf

#endif // ALF_SUPPORT_THREADPOOL_H

//===- support/Json.h - Minimal JSON reader/writer -------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON DOM: enough to parse a benchmark baseline
/// (`alf_bench --compare`) and to validate emitted trace/metrics files in
/// tests, with deterministic serialization (objects keep insertion
/// order). Not a general-purpose library: numbers are doubles, no
/// \uXXXX surrogate pairs, inputs are trusted files we wrote ourselves.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_JSON_H
#define ALF_SUPPORT_JSON_H

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace alf {
namespace json {

/// One JSON value. Plain aggregate — copy freely; these trees are small.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool B);
  static Value number(double N);
  static Value str(std::string S);
  static Value array();
  static Value object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }

  // --- arrays ---
  const std::vector<Value> &items() const { return Arr; }
  void push(Value V) { Arr.push_back(std::move(V)); }
  size_t size() const { return K == Kind::Array ? Arr.size() : Obj.size(); }

  // --- objects ---
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }
  /// Member lookup; null when absent or not an object.
  const Value *get(const std::string &Key) const;
  /// Sets (or replaces) a member, preserving first-insertion order.
  void set(std::string Key, Value V);

  /// Convenience typed lookups for the bench/trace schemas.
  std::optional<double> getNumber(const std::string &Key) const;
  std::optional<std::string> getString(const std::string &Key) const;
  std::optional<bool> getBool(const std::string &Key) const;

  /// Serializes with 2-space indentation (deterministic: object members
  /// in insertion order).
  void write(std::ostream &OS) const;
  std::string str() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

  void writeIndented(std::ostream &OS, unsigned Indent) const;
};

/// Parses \p Text; nullopt with \p Error set ("offset N: message") on
/// malformed input. Trailing whitespace is allowed, trailing garbage is
/// an error.
std::optional<Value> parse(const std::string &Text,
                           std::string *Error = nullptr);

/// JSON string-literal escaping of \p S (no surrounding quotes).
std::string escapeString(const std::string &S);

} // namespace json
} // namespace alf

#endif // ALF_SUPPORT_JSON_H

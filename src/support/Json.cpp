//===- support/Json.cpp - Minimal JSON reader/writer ------------------------===//

#include "support/Json.h"

#include "support/StringUtil.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

using namespace alf;
using namespace alf::json;

//===----------------------------------------------------------------------===//
// Construction and access
//===----------------------------------------------------------------------===//

Value Value::boolean(bool B) {
  Value V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

Value Value::number(double N) {
  Value V;
  V.K = Kind::Number;
  V.Num = N;
  return V;
}

Value Value::str(std::string S) {
  Value V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

Value Value::array() {
  Value V;
  V.K = Kind::Array;
  return V;
}

Value Value::object() {
  Value V;
  V.K = Kind::Object;
  return V;
}

const Value *Value::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

void Value::set(std::string Key, Value V) {
  for (auto &[Name, Existing] : Obj)
    if (Name == Key) {
      Existing = std::move(V);
      return;
    }
  Obj.emplace_back(std::move(Key), std::move(V));
}

std::optional<double> Value::getNumber(const std::string &Key) const {
  const Value *V = get(Key);
  if (!V || !V->isNumber())
    return std::nullopt;
  return V->asNumber();
}

std::optional<std::string> Value::getString(const std::string &Key) const {
  const Value *V = get(Key);
  if (!V || !V->isString())
    return std::nullopt;
  return V->asString();
}

std::optional<bool> Value::getBool(const std::string &Key) const {
  const Value *V = get(Key);
  if (!V || !V->isBool())
    return std::nullopt;
  return V->asBool();
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string json::escapeString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

namespace {

/// Shortest float rendering that round-trips and never prints NaN/Inf
/// (JSON has neither; clamp to null is the caller's business, here we
/// print 0 to keep files loadable).
std::string renderNumber(double N) {
  if (!std::isfinite(N))
    return "0";
  if (N == static_cast<double>(static_cast<long long>(N)) &&
      std::fabs(N) < 1e15)
    return formatString("%lld", static_cast<long long>(N));
  return formatString("%.17g", N);
}

} // namespace

void Value::writeIndented(std::ostream &OS, unsigned Indent) const {
  std::string Pad(Indent * 2, ' ');
  std::string PadIn((Indent + 1) * 2, ' ');
  switch (K) {
  case Kind::Null:
    OS << "null";
    return;
  case Kind::Bool:
    OS << (B ? "true" : "false");
    return;
  case Kind::Number:
    OS << renderNumber(Num);
    return;
  case Kind::String:
    OS << '"' << escapeString(Str) << '"';
    return;
  case Kind::Array: {
    if (Arr.empty()) {
      OS << "[]";
      return;
    }
    OS << "[\n";
    for (size_t I = 0; I < Arr.size(); ++I) {
      OS << PadIn;
      Arr[I].writeIndented(OS, Indent + 1);
      OS << (I + 1 < Arr.size() ? ",\n" : "\n");
    }
    OS << Pad << ']';
    return;
  }
  case Kind::Object: {
    if (Obj.empty()) {
      OS << "{}";
      return;
    }
    OS << "{\n";
    for (size_t I = 0; I < Obj.size(); ++I) {
      OS << PadIn << '"' << escapeString(Obj[I].first) << "\": ";
      Obj[I].second.writeIndented(OS, Indent + 1);
      OS << (I + 1 < Obj.size() ? ",\n" : "\n");
    }
    OS << Pad << '}';
    return;
  }
  }
}

void Value::write(std::ostream &OS) const { writeIndented(OS, 0); }

std::string Value::str() const {
  std::ostringstream OS;
  write(OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatString("offset %zu: ", Pos) + Msg;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(formatString("expected '%c'", C));
    ++Pos;
    return true;
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::str(std::move(S));
      return true;
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out = Value::boolean(true);
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out = Value::boolean(false);
      return true;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      Out = Value::null();
      return true;
    }
    return parseNumber(Out);
  }

  bool parseNumber(Value &Out) {
    size_t End = Pos;
    while (End < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
            Text[End] == 'e' || Text[End] == 'E'))
      ++End;
    if (End == Pos)
      return fail("expected a value");
    char *Parsed = nullptr;
    std::string Num = Text.substr(Pos, End - Pos);
    double N = std::strtod(Num.c_str(), &Parsed);
    if (!Parsed || *Parsed != '\0')
      return fail("malformed number '" + Num + "'");
    Pos = End;
    Out = Value::number(N);
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // ASCII only (all we ever emit); anything else round-trips as '?'.
        Out += Code < 0x80 ? static_cast<char>(Code) : '?';
        break;
      }
      default:
        return fail(formatString("unknown escape '\\%c'", E));
      }
    }
    return fail("unterminated string");
  }

  bool parseArray(Value &Out) {
    if (!consume('['))
      return false;
    Out = Value::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      Value Item;
      if (!parseValue(Item))
        return false;
      Out.push(std::move(Item));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(Value &Out) {
    if (!consume('{'))
      return false;
    Out = Value::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return false;
      Value V;
      if (!parseValue(V))
        return false;
      Out.set(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

} // namespace

std::optional<Value> json::parse(const std::string &Text, std::string *Error) {
  Parser P(Text);
  Value V;
  if (!P.parseValue(V)) {
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = formatString("offset %zu: trailing garbage", P.Pos);
    return std::nullopt;
  }
  return V;
}

//===- support/Process.h - Subprocess invocation ---------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal subprocess helper for the native JIT backend: run a shell
/// command with combined stdout/stderr capture and an optional CPU-time
/// limit (enforced with `ulimit -t`, so a wedged compiler invocation is
/// killed by the kernel rather than hanging the caller).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_SUPPORT_PROCESS_H
#define ALF_SUPPORT_PROCESS_H

#include <string>

namespace alf {

/// Outcome of one command invocation.
struct CommandResult {
  int ExitCode = -1;    ///< Process exit code; -1 when spawning failed.
  bool TimedOut = false; ///< Killed by the CPU-time limit.
  std::string Output;   ///< Combined stdout + stderr.

  bool ok() const { return ExitCode == 0; }
};

/// Runs \p Command through the shell, capturing stdout and stderr. When
/// \p TimeoutSec is nonzero the command runs under `ulimit -t` with that
/// CPU-seconds budget; exceeding it reports TimedOut.
CommandResult runCommand(const std::string &Command, unsigned TimeoutSec = 0);

/// First line of \p Command's output, or "" when the command fails
/// (convenience for probing tool versions).
std::string commandFirstLine(const std::string &Command);

} // namespace alf

#endif // ALF_SUPPORT_PROCESS_H

//===- support/Statistic.cpp - Pass statistics counters ---------------------===//

#include "support/Statistic.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

using namespace alf;

namespace {

/// Lazily constructed registry (no static constructor at load time).
/// Guarded by registryMutex(): counters register themselves from
/// whichever thread increments first, and the report/reset walkers must
/// never observe a half-grown vector.
std::vector<Statistic *> &registry() {
  static std::vector<Statistic *> R;
  return R;
}

std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

std::vector<Statistic *> registrySnapshot() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  return registry();
}

} // namespace

void Statistic::registerSelf() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  // Two threads can race to the first increment; only one may insert.
  if (Registered.load(std::memory_order_relaxed))
    return;
  registry().push_back(this);
  Registered.store(true, std::memory_order_relaxed);
}

void alf::printStatistics(std::ostream &OS) {
  std::vector<Statistic *> Sorted = registrySnapshot();
  // Strict (group, name) order — registration order depends on which
  // pass ran (or which thread won) first and must not leak into the
  // report, or golden tests and report diffs churn run to run.
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Statistic *L, const Statistic *R) {
              int Cmp = std::strcmp(L->getGroup(), R->getGroup());
              if (Cmp != 0)
                return Cmp < 0;
              return std::strcmp(L->getName(), R->getName()) < 0;
            });
  OS << "=== Statistics ===\n";
  for (const Statistic *S : Sorted) {
    if (S->value() == 0)
      continue;
    OS << formatString("%8llu %-12s %s\n",
                       static_cast<unsigned long long>(S->value()),
                       S->getGroup(), S->getDesc());
  }
}

void alf::resetStatistics() {
  for (Statistic *S : registrySnapshot())
    S->reset();
}

uint64_t alf::getStatisticValue(const char *Group, const char *Name) {
  uint64_t Total = 0;
  for (const Statistic *S : registrySnapshot())
    if (std::strcmp(S->getGroup(), Group) == 0 &&
        std::strcmp(S->getName(), Name) == 0)
      Total += S->value();
  return Total;
}

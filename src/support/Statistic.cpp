//===- support/Statistic.cpp - Pass statistics counters ---------------------===//

#include "support/Statistic.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <cstring>
#include <vector>

using namespace alf;

namespace {

/// Lazily constructed registry (no static constructor at load time).
std::vector<Statistic *> &registry() {
  static std::vector<Statistic *> R;
  return R;
}

} // namespace

void Statistic::registerSelf() {
  registry().push_back(this);
  Registered = true;
}

void alf::printStatistics(std::ostream &OS) {
  std::vector<Statistic *> Sorted = registry();
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Statistic *L, const Statistic *R) {
                     int Cmp = std::strcmp(L->getGroup(), R->getGroup());
                     if (Cmp != 0)
                       return Cmp < 0;
                     return std::strcmp(L->getName(), R->getName()) < 0;
                   });
  OS << "=== Statistics ===\n";
  for (const Statistic *S : Sorted) {
    if (S->value() == 0)
      continue;
    OS << formatString("%8llu %-12s %s\n",
                       static_cast<unsigned long long>(S->value()),
                       S->getGroup(), S->getDesc());
  }
}

void alf::resetStatistics() {
  for (Statistic *S : registry())
    S->reset();
}

uint64_t alf::getStatisticValue(const char *Group, const char *Name) {
  uint64_t Total = 0;
  for (const Statistic *S : registry())
    if (std::strcmp(S->getGroup(), Group) == 0 &&
        std::strcmp(S->getName(), Name) == 0)
      Total += S->value();
  return Total;
}

//===- machine/CacheSim.cpp - Set-associative cache simulator --------------===//

#include "machine/CacheSim.h"

#include <cassert>
#include <cstddef>

using namespace alf;
using namespace alf::machine;

CacheSim::CacheSim(const CacheConfig &Cfg) : Cfg(Cfg) {
  assert(Cfg.SizeBytes % (Cfg.LineBytes * Cfg.Assoc) == 0 &&
         "cache size must be a multiple of line size times associativity");
  Ways.resize(static_cast<size_t>(Cfg.numSets()) * Cfg.Assoc);
}

bool CacheSim::access(uint64_t Addr) {
  ++NumAccesses;
  ++Clock;
  uint64_t Line = Addr / Cfg.LineBytes;
  unsigned Set = static_cast<unsigned>(Line % Cfg.numSets());
  // Tags are offset by one so that 0 means "invalid".
  uint64_t Tag = Line / Cfg.numSets() + 1;

  Way *Base = &Ways[static_cast<size_t>(Set) * Cfg.Assoc];
  Way *Victim = Base;
  for (unsigned W = 0; W < Cfg.Assoc; ++W) {
    if (Base[W].Tag == Tag) {
      Base[W].LastUse = Clock;
      return true;
    }
    if (Base[W].LastUse < Victim->LastUse)
      Victim = &Base[W];
  }
  ++NumMisses;
  Victim->Tag = Tag;
  Victim->LastUse = Clock;
  return false;
}

void CacheSim::reset() {
  for (Way &W : Ways)
    W = Way();
  Clock = 0;
  NumAccesses = 0;
  NumMisses = 0;
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &L1Cfg) : L1(L1Cfg) {}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &L1Cfg,
                                 const CacheConfig &L2Cfg)
    : L1(L1Cfg) {
  L2Opt.emplace_back(L2Cfg);
}

MemoryHierarchy::Level MemoryHierarchy::access(uint64_t Addr) {
  if (L1.access(Addr))
    return Level::L1;
  if (L2Opt.empty())
    return Level::Memory;
  return L2Opt.front().access(Addr) ? Level::L2 : Level::Memory;
}

void MemoryHierarchy::reset() {
  L1.reset();
  for (CacheSim &C : L2Opt)
    C.reset();
}

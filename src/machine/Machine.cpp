//===- machine/Machine.cpp - Machine descriptions ---------------------------===//

#include "machine/Machine.h"

#include <cmath>

using namespace alf;
using namespace alf::machine;

MachineDesc machine::crayT3E() {
  MachineDesc M;
  M.Name = "Cray T3E";
  M.L1 = CacheConfig{8 * 1024, 32, 1};          // 8 KB direct mapped
  M.L2 = CacheConfig{96 * 1024, 64, 3};         // 96 KB 3-way
  M.FlopCost = 2.2;                             // 450 MHz
  M.L1HitCost = 2.2;
  M.L2HitCost = 18.0;
  M.MemCost = 130.0;
  M.MsgLatency = 15000.0;                       // low-latency E-registers
  M.MsgBandwidth = 0.30;                        // ~300 MB/s
  M.ReduceStepCost = 10000.0;
  return M;
}

MachineDesc machine::ibmSP2() {
  MachineDesc M;
  M.Name = "IBM SP-2";
  M.L1 = CacheConfig{128 * 1024, 128, 4};       // 128 KB data cache
  M.L2 = std::nullopt;
  M.FlopCost = 4.2;                             // 120 MHz P2SC
  M.L1HitCost = 4.2;
  M.L2HitCost = 0.0;                            // unused
  M.MemCost = 350.0;
  M.MsgLatency = 45000.0;                       // MPI on the SP switch
  M.MsgBandwidth = 0.035;                       // ~35 MB/s
  M.ReduceStepCost = 45000.0;
  return M;
}

MachineDesc machine::intelParagon() {
  MachineDesc M;
  M.Name = "Intel Paragon";
  M.L1 = CacheConfig{8 * 1024, 32, 2};          // 8 KB (i860 XP data cache)
  M.L2 = std::nullopt;
  M.FlopCost = 13.3;                            // 75 MHz
  M.L1HitCost = 13.3;
  M.L2HitCost = 0.0;
  M.MemCost = 400.0;
  M.MsgLatency = 70000.0;                       // NX message startup
  M.MsgBandwidth = 0.070;
  M.ReduceStepCost = 70000.0;
  return M;
}

std::vector<MachineDesc> machine::allMachines() {
  return {crayT3E(), ibmSP2(), intelParagon()};
}

ProcGrid ProcGrid::make(unsigned P, unsigned Rank) {
  ProcGrid G;
  G.NumProcs = P;
  G.Extents.assign(Rank, 1);
  if (Rank == 0)
    return G;
  // Factor P into Rank near-equal extents, largest factors first.
  unsigned Remaining = P;
  for (unsigned D = 0; D < Rank; ++D) {
    unsigned DimsLeft = Rank - D;
    unsigned Target = static_cast<unsigned>(std::ceil(
        std::pow(static_cast<double>(Remaining), 1.0 / DimsLeft)));
    // Find the largest divisor of Remaining that is <= Target (fall back
    // to Remaining itself for the last dimension).
    unsigned Chosen = 1;
    for (unsigned F = 1; F <= Remaining; ++F)
      if (Remaining % F == 0 && F <= Target)
        Chosen = F;
    if (D + 1 == Rank)
      Chosen = Remaining;
    G.Extents[D] = Chosen;
    Remaining /= Chosen;
  }
  return G;
}

//===- machine/Machine.h - Machine descriptions ----------------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost-model descriptions of the paper's three evaluation machines
/// (section 5): the Cray T3E (450 MHz Alpha 21164, 8 KB L1 + 96 KB L2),
/// the IBM SP-2 (120 MHz POWER2 SC, 128 KB data cache) and the Intel
/// Paragon (75 MHz i860, 8 KB data cache). Timings are nanosecond-scale
/// estimates chosen to reproduce the *relative* behaviour of the paper's
/// experiments, not the machines' absolute speed (we do not have the
/// hardware; see DESIGN.md's substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef ALF_MACHINE_MACHINE_H
#define ALF_MACHINE_MACHINE_H

#include "machine/CacheSim.h"

#include <optional>
#include <string>
#include <vector>

namespace alf {
namespace machine {

/// Cost parameters of one machine. Times in nanoseconds.
struct MachineDesc {
  std::string Name;

  CacheConfig L1;
  std::optional<CacheConfig> L2;

  double FlopCost = 2.0;     ///< Per arithmetic operation.
  double L1HitCost = 2.0;    ///< Per reference served by L1.
  double L2HitCost = 20.0;   ///< Per reference served by L2.
  double MemCost = 120.0;    ///< Per reference served by memory.

  double MsgLatency = 20000.0;  ///< Per message (ns), software overhead.
  double MsgBandwidth = 0.3;    ///< Bytes per ns (GB/s).
  double ReduceStepCost = 30000.0; ///< Per log2(p) step of a global combine.

  /// Time to transfer \p Bytes in one message.
  double messageCost(uint64_t Bytes) const {
    return MsgLatency + static_cast<double>(Bytes) / MsgBandwidth;
  }
};

/// Cray T3E: DEC Alpha 21164 at 450 MHz, 8 KB direct-mapped L1 and 96 KB
/// 3-way L2, low-latency remote memory access network.
MachineDesc crayT3E();

/// IBM SP-2: 120 MHz POWER2 SC with a large 128 KB 4-way data cache and a
/// higher-latency switch network.
MachineDesc ibmSP2();

/// Intel Paragon: 75 MHz i860 XP with a tiny 8 KB data cache and a slow
/// (relative to its network bandwidth) message layer.
MachineDesc intelParagon();

/// All three machines in the paper's presentation order (Figures 9-11).
std::vector<MachineDesc> allMachines();

/// A processor grid over which every array dimension is block
/// distributed ("here we assume that all dimensions are distributed",
/// section 2.2 discussion).
struct ProcGrid {
  unsigned NumProcs = 1;
  std::vector<unsigned> Extents; ///< per-dimension grid extents

  /// Builds a near-square grid of \p P processors for \p Rank dimensions.
  static ProcGrid make(unsigned P, unsigned Rank);

  /// Number of neighbours an interior processor exchanges with along
  /// dimension \p Dim in one direction (0 when the grid is flat there).
  bool hasNeighbor(unsigned Dim) const {
    return Dim < Extents.size() && Extents[Dim] > 1;
  }
};

} // namespace machine
} // namespace alf

#endif // ALF_MACHINE_MACHINE_H

//===- machine/CacheSim.h - Set-associative cache simulator ----*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven set-associative LRU cache simulator. The performance
/// model feeds it the exact address stream of the scalarized program, so
/// the cache effects the paper measures on real machines (temporal reuse
/// from fusion, reduced pollution from contraction, capacity/conflict
/// misses from over-fusion) emerge from the same access patterns here.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_MACHINE_CACHESIM_H
#define ALF_MACHINE_CACHESIM_H

#include <cstdint>
#include <vector>

namespace alf {
namespace machine {

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t SizeBytes = 8 * 1024;
  unsigned LineBytes = 32;
  unsigned Assoc = 1; ///< 1 = direct mapped

  unsigned numSets() const {
    return static_cast<unsigned>(SizeBytes / (LineBytes * Assoc));
  }
};

/// One cache level with true-LRU replacement.
class CacheSim {
  CacheConfig Cfg;
  // Per set: Assoc (tag, lastUse) ways; tag 0 = invalid (addresses are
  // offset so tag 0 never occurs).
  struct Way {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
  };
  std::vector<Way> Ways; // numSets * Assoc
  uint64_t Clock = 0;
  uint64_t NumAccesses = 0;
  uint64_t NumMisses = 0;

public:
  explicit CacheSim(const CacheConfig &Cfg);

  const CacheConfig &config() const { return Cfg; }

  /// Simulates one access; returns true on hit. Loads and stores are
  /// treated alike (write-allocate, no write-back traffic modeled).
  bool access(uint64_t Addr);

  /// Invalidates all lines and clears statistics.
  void reset();

  uint64_t accesses() const { return NumAccesses; }
  uint64_t misses() const { return NumMisses; }
  uint64_t hits() const { return NumAccesses - NumMisses; }

  /// Miss ratio in [0,1]; 0 when no accesses were made.
  double missRatio() const {
    return NumAccesses == 0
               ? 0.0
               : static_cast<double>(NumMisses) / static_cast<double>(NumAccesses);
  }
};

/// A two-level hierarchy (L2 optional). Accesses filter through L1; L1
/// misses probe L2.
class MemoryHierarchy {
  CacheSim L1;
  std::vector<CacheSim> L2Opt; // empty or one element

public:
  MemoryHierarchy(const CacheConfig &L1Cfg);
  MemoryHierarchy(const CacheConfig &L1Cfg, const CacheConfig &L2Cfg);

  /// Access outcome: which level served the request.
  enum class Level { L1, L2, Memory };

  Level access(uint64_t Addr);

  void reset();

  uint64_t l1Accesses() const { return L1.accesses(); }
  uint64_t l1Misses() const { return L1.misses(); }
  bool hasL2() const { return !L2Opt.empty(); }
  uint64_t l2Misses() const { return hasL2() ? L2Opt.front().misses() : 0; }
};

} // namespace machine
} // namespace alf

#endif // ALF_MACHINE_CACHESIM_H

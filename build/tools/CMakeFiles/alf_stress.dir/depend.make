# Empty dependencies file for alf_stress.
# This may be replaced when dependencies are built.

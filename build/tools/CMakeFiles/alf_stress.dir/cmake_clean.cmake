file(REMOVE_RECURSE
  "CMakeFiles/alf_stress.dir/alf_stress.cpp.o"
  "CMakeFiles/alf_stress.dir/alf_stress.cpp.o.d"
  "alf_stress"
  "alf_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

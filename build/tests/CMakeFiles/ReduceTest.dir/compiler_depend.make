# Empty compiler generated dependencies file for ReduceTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ReduceTest.dir/ReduceTest.cpp.o"
  "CMakeFiles/ReduceTest.dir/ReduceTest.cpp.o.d"
  "ReduceTest"
  "ReduceTest.pdb"
  "ReduceTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ReduceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

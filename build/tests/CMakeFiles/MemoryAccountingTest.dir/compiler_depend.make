# Empty compiler generated dependencies file for MemoryAccountingTest.
# This may be replaced when dependencies are built.

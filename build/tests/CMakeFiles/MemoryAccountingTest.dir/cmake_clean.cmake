file(REMOVE_RECURSE
  "CMakeFiles/MemoryAccountingTest.dir/MemoryAccountingTest.cpp.o"
  "CMakeFiles/MemoryAccountingTest.dir/MemoryAccountingTest.cpp.o.d"
  "MemoryAccountingTest"
  "MemoryAccountingTest.pdb"
  "MemoryAccountingTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MemoryAccountingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

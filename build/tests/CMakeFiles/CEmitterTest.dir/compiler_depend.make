# Empty compiler generated dependencies file for CEmitterTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CEmitterTest"
  "CEmitterTest.pdb"
  "CEmitterTest[1]_tests.cmake"
  "CMakeFiles/CEmitterTest.dir/CEmitterTest.cpp.o"
  "CMakeFiles/CEmitterTest.dir/CEmitterTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CEmitterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for LoopStructureCompletenessTest.
# This may be replaced when dependencies are built.

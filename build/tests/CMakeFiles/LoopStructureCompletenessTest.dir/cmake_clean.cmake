file(REMOVE_RECURSE
  "CMakeFiles/LoopStructureCompletenessTest.dir/LoopStructureCompletenessTest.cpp.o"
  "CMakeFiles/LoopStructureCompletenessTest.dir/LoopStructureCompletenessTest.cpp.o.d"
  "LoopStructureCompletenessTest"
  "LoopStructureCompletenessTest.pdb"
  "LoopStructureCompletenessTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LoopStructureCompletenessTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

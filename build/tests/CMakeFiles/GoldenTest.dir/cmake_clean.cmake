file(REMOVE_RECURSE
  "CMakeFiles/GoldenTest.dir/GoldenTest.cpp.o"
  "CMakeFiles/GoldenTest.dir/GoldenTest.cpp.o.d"
  "GoldenTest"
  "GoldenTest.pdb"
  "GoldenTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GoldenTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

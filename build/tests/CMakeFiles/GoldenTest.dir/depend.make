# Empty dependencies file for GoldenTest.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for AlignTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "AlignTest"
  "AlignTest.pdb"
  "AlignTest[1]_tests.cmake"
  "CMakeFiles/AlignTest.dir/AlignTest.cpp.o"
  "CMakeFiles/AlignTest.dir/AlignTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AlignTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for VendorBenchmarkTest.
# This may be replaced when dependencies are built.

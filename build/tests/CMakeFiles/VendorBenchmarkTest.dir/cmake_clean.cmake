file(REMOVE_RECURSE
  "CMakeFiles/VendorBenchmarkTest.dir/VendorBenchmarkTest.cpp.o"
  "CMakeFiles/VendorBenchmarkTest.dir/VendorBenchmarkTest.cpp.o.d"
  "VendorBenchmarkTest"
  "VendorBenchmarkTest.pdb"
  "VendorBenchmarkTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/VendorBenchmarkTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

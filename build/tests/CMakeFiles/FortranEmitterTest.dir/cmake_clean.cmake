file(REMOVE_RECURSE
  "CMakeFiles/FortranEmitterTest.dir/FortranEmitterTest.cpp.o"
  "CMakeFiles/FortranEmitterTest.dir/FortranEmitterTest.cpp.o.d"
  "FortranEmitterTest"
  "FortranEmitterTest.pdb"
  "FortranEmitterTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FortranEmitterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for FortranEmitterTest.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ExprTest.
# This may be replaced when dependencies are built.

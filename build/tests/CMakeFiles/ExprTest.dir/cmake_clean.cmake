file(REMOVE_RECURSE
  "CMakeFiles/ExprTest.dir/ExprTest.cpp.o"
  "CMakeFiles/ExprTest.dir/ExprTest.cpp.o.d"
  "ExprTest"
  "ExprTest.pdb"
  "ExprTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExprTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

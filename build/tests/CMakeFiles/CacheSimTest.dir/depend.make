# Empty dependencies file for CacheSimTest.
# This may be replaced when dependencies are built.

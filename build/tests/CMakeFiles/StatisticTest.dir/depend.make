# Empty dependencies file for StatisticTest.
# This may be replaced when dependencies are built.

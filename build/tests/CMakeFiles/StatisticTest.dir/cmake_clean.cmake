file(REMOVE_RECURSE
  "CMakeFiles/StatisticTest.dir/StatisticTest.cpp.o"
  "CMakeFiles/StatisticTest.dir/StatisticTest.cpp.o.d"
  "StatisticTest"
  "StatisticTest.pdb"
  "StatisticTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StatisticTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

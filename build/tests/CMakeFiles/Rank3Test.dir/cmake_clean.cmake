file(REMOVE_RECURSE
  "CMakeFiles/Rank3Test.dir/Rank3Test.cpp.o"
  "CMakeFiles/Rank3Test.dir/Rank3Test.cpp.o.d"
  "Rank3Test"
  "Rank3Test.pdb"
  "Rank3Test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Rank3Test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

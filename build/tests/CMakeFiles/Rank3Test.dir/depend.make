# Empty dependencies file for Rank3Test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/StatementMergeTest.dir/StatementMergeTest.cpp.o"
  "CMakeFiles/StatementMergeTest.dir/StatementMergeTest.cpp.o.d"
  "StatementMergeTest"
  "StatementMergeTest.pdb"
  "StatementMergeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StatementMergeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for StatementMergeTest.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for DistSimTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/DistSimTest.dir/DistSimTest.cpp.o"
  "CMakeFiles/DistSimTest.dir/DistSimTest.cpp.o.d"
  "DistSimTest"
  "DistSimTest.pdb"
  "DistSimTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DistSimTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

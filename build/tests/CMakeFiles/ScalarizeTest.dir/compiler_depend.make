# Empty compiler generated dependencies file for ScalarizeTest.
# This may be replaced when dependencies are built.

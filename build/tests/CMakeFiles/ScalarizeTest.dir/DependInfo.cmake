
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ScalarizeTest.cpp" "tests/CMakeFiles/ScalarizeTest.dir/ScalarizeTest.cpp.o" "gcc" "tests/CMakeFiles/ScalarizeTest.dir/ScalarizeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scalarize/CMakeFiles/alf_scalarize.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/alf_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/alf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/alf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

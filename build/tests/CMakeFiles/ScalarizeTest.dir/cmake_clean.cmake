file(REMOVE_RECURSE
  "CMakeFiles/ScalarizeTest.dir/ScalarizeTest.cpp.o"
  "CMakeFiles/ScalarizeTest.dir/ScalarizeTest.cpp.o.d"
  "ScalarizeTest"
  "ScalarizeTest.pdb"
  "ScalarizeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ScalarizeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

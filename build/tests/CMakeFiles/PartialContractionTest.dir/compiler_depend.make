# Empty compiler generated dependencies file for PartialContractionTest.
# This may be replaced when dependencies are built.

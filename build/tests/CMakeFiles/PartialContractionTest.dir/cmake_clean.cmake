file(REMOVE_RECURSE
  "CMakeFiles/PartialContractionTest.dir/PartialContractionTest.cpp.o"
  "CMakeFiles/PartialContractionTest.dir/PartialContractionTest.cpp.o.d"
  "PartialContractionTest"
  "PartialContractionTest.pdb"
  "PartialContractionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PartialContractionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

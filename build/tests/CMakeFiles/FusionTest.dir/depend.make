# Empty dependencies file for FusionTest.
# This may be replaced when dependencies are built.

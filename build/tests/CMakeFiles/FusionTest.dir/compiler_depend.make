# Empty compiler generated dependencies file for FusionTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/LivenessTest.dir/LivenessTest.cpp.o"
  "CMakeFiles/LivenessTest.dir/LivenessTest.cpp.o.d"
  "LivenessTest"
  "LivenessTest.pdb"
  "LivenessTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LivenessTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

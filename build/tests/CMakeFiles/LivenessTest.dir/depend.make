# Empty dependencies file for LivenessTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/LoopStructureTest.dir/LoopStructureTest.cpp.o"
  "CMakeFiles/LoopStructureTest.dir/LoopStructureTest.cpp.o.d"
  "LoopStructureTest"
  "LoopStructureTest.pdb"
  "LoopStructureTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LoopStructureTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

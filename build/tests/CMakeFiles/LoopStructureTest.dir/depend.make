# Empty dependencies file for LoopStructureTest.
# This may be replaced when dependencies are built.

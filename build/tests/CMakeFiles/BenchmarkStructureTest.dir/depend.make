# Empty dependencies file for BenchmarkStructureTest.
# This may be replaced when dependencies are built.

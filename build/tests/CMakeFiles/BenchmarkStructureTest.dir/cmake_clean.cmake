file(REMOVE_RECURSE
  "BenchmarkStructureTest"
  "BenchmarkStructureTest.pdb"
  "BenchmarkStructureTest[1]_tests.cmake"
  "CMakeFiles/BenchmarkStructureTest.dir/BenchmarkStructureTest.cpp.o"
  "CMakeFiles/BenchmarkStructureTest.dir/BenchmarkStructureTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchmarkStructureTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ProgramTest.
# This may be replaced when dependencies are built.

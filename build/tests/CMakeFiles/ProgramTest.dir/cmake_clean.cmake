file(REMOVE_RECURSE
  "CMakeFiles/ProgramTest.dir/ProgramTest.cpp.o"
  "CMakeFiles/ProgramTest.dir/ProgramTest.cpp.o.d"
  "ProgramTest"
  "ProgramTest.pdb"
  "ProgramTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ProgramTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

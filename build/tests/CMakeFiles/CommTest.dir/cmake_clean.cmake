file(REMOVE_RECURSE
  "CMakeFiles/CommTest.dir/CommTest.cpp.o"
  "CMakeFiles/CommTest.dir/CommTest.cpp.o.d"
  "CommTest"
  "CommTest.pdb"
  "CommTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CommTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

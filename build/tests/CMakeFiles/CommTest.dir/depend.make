# Empty dependencies file for CommTest.
# This may be replaced when dependencies are built.

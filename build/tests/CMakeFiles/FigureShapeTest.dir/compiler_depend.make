# Empty compiler generated dependencies file for FigureShapeTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/FigureShapeTest.dir/FigureShapeTest.cpp.o"
  "CMakeFiles/FigureShapeTest.dir/FigureShapeTest.cpp.o.d"
  "FigureShapeTest"
  "FigureShapeTest.pdb"
  "FigureShapeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FigureShapeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

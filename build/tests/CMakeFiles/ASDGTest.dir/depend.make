# Empty dependencies file for ASDGTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "ASDGTest"
  "ASDGTest.pdb"
  "ASDGTest[1]_tests.cmake"
  "CMakeFiles/ASDGTest.dir/ASDGTest.cpp.o"
  "CMakeFiles/ASDGTest.dir/ASDGTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ASDGTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for PerfModelTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/PerfModelTest.dir/PerfModelTest.cpp.o"
  "CMakeFiles/PerfModelTest.dir/PerfModelTest.cpp.o.d"
  "PerfModelTest"
  "PerfModelTest.pdb"
  "PerfModelTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PerfModelTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for CommPlanTest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/CommPlanTest.dir/CommPlanTest.cpp.o"
  "CMakeFiles/CommPlanTest.dir/CommPlanTest.cpp.o.d"
  "CommPlanTest"
  "CommPlanTest.pdb"
  "CommPlanTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CommPlanTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

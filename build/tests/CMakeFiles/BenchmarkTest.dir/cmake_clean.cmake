file(REMOVE_RECURSE
  "BenchmarkTest"
  "BenchmarkTest.pdb"
  "BenchmarkTest[1]_tests.cmake"
  "CMakeFiles/BenchmarkTest.dir/BenchmarkTest.cpp.o"
  "CMakeFiles/BenchmarkTest.dir/BenchmarkTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchmarkTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

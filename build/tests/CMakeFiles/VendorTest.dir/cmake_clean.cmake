file(REMOVE_RECURSE
  "CMakeFiles/VendorTest.dir/VendorTest.cpp.o"
  "CMakeFiles/VendorTest.dir/VendorTest.cpp.o.d"
  "VendorTest"
  "VendorTest.pdb"
  "VendorTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/VendorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

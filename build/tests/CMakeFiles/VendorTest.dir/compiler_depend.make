# Empty compiler generated dependencies file for VendorTest.
# This may be replaced when dependencies are built.

# Empty dependencies file for OffsetRegionTest.
# This may be replaced when dependencies are built.

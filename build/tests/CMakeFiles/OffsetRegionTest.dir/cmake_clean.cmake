file(REMOVE_RECURSE
  "CMakeFiles/OffsetRegionTest.dir/OffsetRegionTest.cpp.o"
  "CMakeFiles/OffsetRegionTest.dir/OffsetRegionTest.cpp.o.d"
  "OffsetRegionTest"
  "OffsetRegionTest.pdb"
  "OffsetRegionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OffsetRegionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

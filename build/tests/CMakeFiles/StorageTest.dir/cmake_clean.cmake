file(REMOVE_RECURSE
  "CMakeFiles/StorageTest.dir/StorageTest.cpp.o"
  "CMakeFiles/StorageTest.dir/StorageTest.cpp.o.d"
  "StorageTest"
  "StorageTest.pdb"
  "StorageTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StorageTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

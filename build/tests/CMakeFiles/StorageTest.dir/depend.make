# Empty dependencies file for StorageTest.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig9_t3e.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig9_t3e"
  "../bench/fig9_t3e.pdb"
  "CMakeFiles/fig9_t3e.dir/fig9_t3e.cpp.o"
  "CMakeFiles/fig9_t3e.dir/fig9_t3e.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_t3e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

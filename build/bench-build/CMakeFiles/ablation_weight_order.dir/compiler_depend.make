# Empty compiler generated dependencies file for ablation_weight_order.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_weight_order"
  "../bench/ablation_weight_order.pdb"
  "CMakeFiles/ablation_weight_order.dir/ablation_weight_order.cpp.o"
  "CMakeFiles/ablation_weight_order.dir/ablation_weight_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weight_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/alf_figcommon.dir/FigureCommon.cpp.o"
  "CMakeFiles/alf_figcommon.dir/FigureCommon.cpp.o.d"
  "libalf_figcommon.a"
  "libalf_figcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_figcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

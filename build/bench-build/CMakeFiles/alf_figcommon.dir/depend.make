# Empty dependencies file for alf_figcommon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libalf_figcommon.a"
)

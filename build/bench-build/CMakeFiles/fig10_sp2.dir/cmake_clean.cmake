file(REMOVE_RECURSE
  "../bench/fig10_sp2"
  "../bench/fig10_sp2.pdb"
  "CMakeFiles/fig10_sp2.dir/fig10_sp2.cpp.o"
  "CMakeFiles/fig10_sp2.dir/fig10_sp2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ext_partial_contraction"
  "../bench/ext_partial_contraction.pdb"
  "CMakeFiles/ext_partial_contraction.dir/ext_partial_contraction.cpp.o"
  "CMakeFiles/ext_partial_contraction.dir/ext_partial_contraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_partial_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

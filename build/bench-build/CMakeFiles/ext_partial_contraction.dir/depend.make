# Empty dependencies file for ext_partial_contraction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/algo_scaling"
  "../bench/algo_scaling.pdb"
  "CMakeFiles/algo_scaling.dir/algo_scaling.cpp.o"
  "CMakeFiles/algo_scaling.dir/algo_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

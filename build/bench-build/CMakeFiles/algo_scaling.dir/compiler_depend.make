# Empty compiler generated dependencies file for algo_scaling.
# This may be replaced when dependencies are built.

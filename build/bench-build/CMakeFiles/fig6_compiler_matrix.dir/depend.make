# Empty dependencies file for fig6_compiler_matrix.
# This may be replaced when dependencies are built.

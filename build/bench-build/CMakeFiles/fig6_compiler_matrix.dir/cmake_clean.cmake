file(REMOVE_RECURSE
  "../bench/fig6_compiler_matrix"
  "../bench/fig6_compiler_matrix.pdb"
  "CMakeFiles/fig6_compiler_matrix.dir/fig6_compiler_matrix.cpp.o"
  "CMakeFiles/fig6_compiler_matrix.dir/fig6_compiler_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_compiler_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ext_strong_scaling"
  "../bench/ext_strong_scaling.pdb"
  "CMakeFiles/ext_strong_scaling.dir/ext_strong_scaling.cpp.o"
  "CMakeFiles/ext_strong_scaling.dir/ext_strong_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ablation_loop_order"
  "../bench/ablation_loop_order.pdb"
  "CMakeFiles/ablation_loop_order.dir/ablation_loop_order.cpp.o"
  "CMakeFiles/ablation_loop_order.dir/ablation_loop_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loop_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_loop_order.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig11_paragon"
  "../bench/fig11_paragon.pdb"
  "CMakeFiles/fig11_paragon.dir/fig11_paragon.cpp.o"
  "CMakeFiles/fig11_paragon.dir/fig11_paragon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_paragon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_paragon.
# This may be replaced when dependencies are built.

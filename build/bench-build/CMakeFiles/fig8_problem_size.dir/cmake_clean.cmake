file(REMOVE_RECURSE
  "../bench/fig8_problem_size"
  "../bench/fig8_problem_size.pdb"
  "CMakeFiles/fig8_problem_size.dir/fig8_problem_size.cpp.o"
  "CMakeFiles/fig8_problem_size.dir/fig8_problem_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

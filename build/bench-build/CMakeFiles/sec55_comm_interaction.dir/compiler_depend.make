# Empty compiler generated dependencies file for sec55_comm_interaction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/sec55_comm_interaction"
  "../bench/sec55_comm_interaction.pdb"
  "CMakeFiles/sec55_comm_interaction.dir/sec55_comm_interaction.cpp.o"
  "CMakeFiles/sec55_comm_interaction.dir/sec55_comm_interaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_comm_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

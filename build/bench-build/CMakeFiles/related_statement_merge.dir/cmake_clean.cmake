file(REMOVE_RECURSE
  "../bench/related_statement_merge"
  "../bench/related_statement_merge.pdb"
  "CMakeFiles/related_statement_merge.dir/related_statement_merge.cpp.o"
  "CMakeFiles/related_statement_merge.dir/related_statement_merge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_statement_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

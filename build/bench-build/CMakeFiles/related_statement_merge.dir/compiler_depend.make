# Empty compiler generated dependencies file for related_statement_merge.
# This may be replaced when dependencies are built.

# Empty dependencies file for ext_cache_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ext_cache_sweep"
  "../bench/ext_cache_sweep.pdb"
  "CMakeFiles/ext_cache_sweep.dir/ext_cache_sweep.cpp.o"
  "CMakeFiles/ext_cache_sweep.dir/ext_cache_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_static_arrays.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig7_static_arrays"
  "../bench/fig7_static_arrays.pdb"
  "CMakeFiles/fig7_static_arrays.dir/fig7_static_arrays.cpp.o"
  "CMakeFiles/fig7_static_arrays.dir/fig7_static_arrays.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_static_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

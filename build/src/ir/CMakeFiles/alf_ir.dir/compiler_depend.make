# Empty compiler generated dependencies file for alf_ir.
# This may be replaced when dependencies are built.

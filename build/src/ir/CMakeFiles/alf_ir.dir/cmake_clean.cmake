file(REMOVE_RECURSE
  "CMakeFiles/alf_ir.dir/Align.cpp.o"
  "CMakeFiles/alf_ir.dir/Align.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Expr.cpp.o"
  "CMakeFiles/alf_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Generator.cpp.o"
  "CMakeFiles/alf_ir.dir/Generator.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Normalize.cpp.o"
  "CMakeFiles/alf_ir.dir/Normalize.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Offset.cpp.o"
  "CMakeFiles/alf_ir.dir/Offset.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Program.cpp.o"
  "CMakeFiles/alf_ir.dir/Program.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Region.cpp.o"
  "CMakeFiles/alf_ir.dir/Region.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Stmt.cpp.o"
  "CMakeFiles/alf_ir.dir/Stmt.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Symbol.cpp.o"
  "CMakeFiles/alf_ir.dir/Symbol.cpp.o.d"
  "CMakeFiles/alf_ir.dir/Verifier.cpp.o"
  "CMakeFiles/alf_ir.dir/Verifier.cpp.o.d"
  "libalf_ir.a"
  "libalf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Align.cpp" "src/ir/CMakeFiles/alf_ir.dir/Align.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Align.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/alf_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/Generator.cpp" "src/ir/CMakeFiles/alf_ir.dir/Generator.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Generator.cpp.o.d"
  "/root/repo/src/ir/Normalize.cpp" "src/ir/CMakeFiles/alf_ir.dir/Normalize.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Normalize.cpp.o.d"
  "/root/repo/src/ir/Offset.cpp" "src/ir/CMakeFiles/alf_ir.dir/Offset.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Offset.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/ir/CMakeFiles/alf_ir.dir/Program.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Program.cpp.o.d"
  "/root/repo/src/ir/Region.cpp" "src/ir/CMakeFiles/alf_ir.dir/Region.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Region.cpp.o.d"
  "/root/repo/src/ir/Stmt.cpp" "src/ir/CMakeFiles/alf_ir.dir/Stmt.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Stmt.cpp.o.d"
  "/root/repo/src/ir/Symbol.cpp" "src/ir/CMakeFiles/alf_ir.dir/Symbol.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Symbol.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/alf_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/alf_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/alf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libalf_ir.a"
)

# Empty compiler generated dependencies file for alf_machine.
# This may be replaced when dependencies are built.

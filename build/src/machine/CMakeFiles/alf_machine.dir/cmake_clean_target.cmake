file(REMOVE_RECURSE
  "libalf_machine.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/alf_machine.dir/CacheSim.cpp.o"
  "CMakeFiles/alf_machine.dir/CacheSim.cpp.o.d"
  "CMakeFiles/alf_machine.dir/Machine.cpp.o"
  "CMakeFiles/alf_machine.dir/Machine.cpp.o.d"
  "libalf_machine.a"
  "libalf_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libalf_scalarize.a"
)

# Empty compiler generated dependencies file for alf_scalarize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/alf_scalarize.dir/CEmitter.cpp.o"
  "CMakeFiles/alf_scalarize.dir/CEmitter.cpp.o.d"
  "CMakeFiles/alf_scalarize.dir/FortranEmitter.cpp.o"
  "CMakeFiles/alf_scalarize.dir/FortranEmitter.cpp.o.d"
  "CMakeFiles/alf_scalarize.dir/LoopIR.cpp.o"
  "CMakeFiles/alf_scalarize.dir/LoopIR.cpp.o.d"
  "CMakeFiles/alf_scalarize.dir/Scalarize.cpp.o"
  "CMakeFiles/alf_scalarize.dir/Scalarize.cpp.o.d"
  "libalf_scalarize.a"
  "libalf_scalarize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_scalarize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for alf_benchprogs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/alf_benchprogs.dir/Benchmarks.cpp.o"
  "CMakeFiles/alf_benchprogs.dir/Benchmarks.cpp.o.d"
  "libalf_benchprogs.a"
  "libalf_benchprogs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_benchprogs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

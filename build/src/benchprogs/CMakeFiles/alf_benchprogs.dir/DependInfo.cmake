
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchprogs/Benchmarks.cpp" "src/benchprogs/CMakeFiles/alf_benchprogs.dir/Benchmarks.cpp.o" "gcc" "src/benchprogs/CMakeFiles/alf_benchprogs.dir/Benchmarks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/alf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

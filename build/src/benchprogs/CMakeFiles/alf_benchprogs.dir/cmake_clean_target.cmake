file(REMOVE_RECURSE
  "libalf_benchprogs.a"
)

# Empty compiler generated dependencies file for alf_exec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libalf_exec.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/alf_exec.dir/Interpreter.cpp.o"
  "CMakeFiles/alf_exec.dir/Interpreter.cpp.o.d"
  "CMakeFiles/alf_exec.dir/MemoryAccounting.cpp.o"
  "CMakeFiles/alf_exec.dir/MemoryAccounting.cpp.o.d"
  "CMakeFiles/alf_exec.dir/PerfModel.cpp.o"
  "CMakeFiles/alf_exec.dir/PerfModel.cpp.o.d"
  "CMakeFiles/alf_exec.dir/Storage.cpp.o"
  "CMakeFiles/alf_exec.dir/Storage.cpp.o.d"
  "libalf_exec.a"
  "libalf_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

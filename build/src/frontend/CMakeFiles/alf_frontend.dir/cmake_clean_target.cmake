file(REMOVE_RECURSE
  "libalf_frontend.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/alf_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/alf_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/alf_frontend.dir/Parser.cpp.o"
  "CMakeFiles/alf_frontend.dir/Parser.cpp.o.d"
  "libalf_frontend.a"
  "libalf_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

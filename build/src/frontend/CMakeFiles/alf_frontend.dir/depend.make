# Empty dependencies file for alf_frontend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libalf_distsim.a"
)

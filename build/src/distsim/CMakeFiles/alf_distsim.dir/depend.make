# Empty dependencies file for alf_distsim.
# This may be replaced when dependencies are built.

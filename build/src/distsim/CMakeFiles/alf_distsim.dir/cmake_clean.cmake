file(REMOVE_RECURSE
  "CMakeFiles/alf_distsim.dir/BlockDist.cpp.o"
  "CMakeFiles/alf_distsim.dir/BlockDist.cpp.o.d"
  "CMakeFiles/alf_distsim.dir/DistInterpreter.cpp.o"
  "CMakeFiles/alf_distsim.dir/DistInterpreter.cpp.o.d"
  "libalf_distsim.a"
  "libalf_distsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_distsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for alf_support.
# This may be replaced when dependencies are built.

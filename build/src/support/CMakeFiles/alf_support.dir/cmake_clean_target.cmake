file(REMOVE_RECURSE
  "libalf_support.a"
)

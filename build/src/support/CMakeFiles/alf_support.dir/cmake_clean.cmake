file(REMOVE_RECURSE
  "CMakeFiles/alf_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/alf_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/alf_support.dir/Statistic.cpp.o"
  "CMakeFiles/alf_support.dir/Statistic.cpp.o.d"
  "CMakeFiles/alf_support.dir/StringUtil.cpp.o"
  "CMakeFiles/alf_support.dir/StringUtil.cpp.o.d"
  "CMakeFiles/alf_support.dir/TextTable.cpp.o"
  "CMakeFiles/alf_support.dir/TextTable.cpp.o.d"
  "libalf_support.a"
  "libalf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

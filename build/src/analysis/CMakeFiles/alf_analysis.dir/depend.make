# Empty dependencies file for alf_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/alf_analysis.dir/ASDG.cpp.o"
  "CMakeFiles/alf_analysis.dir/ASDG.cpp.o.d"
  "CMakeFiles/alf_analysis.dir/Footprint.cpp.o"
  "CMakeFiles/alf_analysis.dir/Footprint.cpp.o.d"
  "CMakeFiles/alf_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/alf_analysis.dir/Liveness.cpp.o.d"
  "libalf_analysis.a"
  "libalf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

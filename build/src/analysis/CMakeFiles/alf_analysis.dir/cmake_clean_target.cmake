file(REMOVE_RECURSE
  "libalf_analysis.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xform/Fusion.cpp" "src/xform/CMakeFiles/alf_xform.dir/Fusion.cpp.o" "gcc" "src/xform/CMakeFiles/alf_xform.dir/Fusion.cpp.o.d"
  "/root/repo/src/xform/FusionPartition.cpp" "src/xform/CMakeFiles/alf_xform.dir/FusionPartition.cpp.o" "gcc" "src/xform/CMakeFiles/alf_xform.dir/FusionPartition.cpp.o.d"
  "/root/repo/src/xform/LoopStructure.cpp" "src/xform/CMakeFiles/alf_xform.dir/LoopStructure.cpp.o" "gcc" "src/xform/CMakeFiles/alf_xform.dir/LoopStructure.cpp.o.d"
  "/root/repo/src/xform/PartialContraction.cpp" "src/xform/CMakeFiles/alf_xform.dir/PartialContraction.cpp.o" "gcc" "src/xform/CMakeFiles/alf_xform.dir/PartialContraction.cpp.o.d"
  "/root/repo/src/xform/Report.cpp" "src/xform/CMakeFiles/alf_xform.dir/Report.cpp.o" "gcc" "src/xform/CMakeFiles/alf_xform.dir/Report.cpp.o.d"
  "/root/repo/src/xform/StatementMerge.cpp" "src/xform/CMakeFiles/alf_xform.dir/StatementMerge.cpp.o" "gcc" "src/xform/CMakeFiles/alf_xform.dir/StatementMerge.cpp.o.d"
  "/root/repo/src/xform/Strategy.cpp" "src/xform/CMakeFiles/alf_xform.dir/Strategy.cpp.o" "gcc" "src/xform/CMakeFiles/alf_xform.dir/Strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/alf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/alf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for alf_xform.
# This may be replaced when dependencies are built.

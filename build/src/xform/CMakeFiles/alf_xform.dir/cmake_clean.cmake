file(REMOVE_RECURSE
  "CMakeFiles/alf_xform.dir/Fusion.cpp.o"
  "CMakeFiles/alf_xform.dir/Fusion.cpp.o.d"
  "CMakeFiles/alf_xform.dir/FusionPartition.cpp.o"
  "CMakeFiles/alf_xform.dir/FusionPartition.cpp.o.d"
  "CMakeFiles/alf_xform.dir/LoopStructure.cpp.o"
  "CMakeFiles/alf_xform.dir/LoopStructure.cpp.o.d"
  "CMakeFiles/alf_xform.dir/PartialContraction.cpp.o"
  "CMakeFiles/alf_xform.dir/PartialContraction.cpp.o.d"
  "CMakeFiles/alf_xform.dir/Report.cpp.o"
  "CMakeFiles/alf_xform.dir/Report.cpp.o.d"
  "CMakeFiles/alf_xform.dir/StatementMerge.cpp.o"
  "CMakeFiles/alf_xform.dir/StatementMerge.cpp.o.d"
  "CMakeFiles/alf_xform.dir/Strategy.cpp.o"
  "CMakeFiles/alf_xform.dir/Strategy.cpp.o.d"
  "libalf_xform.a"
  "libalf_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

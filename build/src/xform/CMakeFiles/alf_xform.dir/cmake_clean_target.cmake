file(REMOVE_RECURSE
  "libalf_xform.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/alf_vendors.dir/CompilerModel.cpp.o"
  "CMakeFiles/alf_vendors.dir/CompilerModel.cpp.o.d"
  "CMakeFiles/alf_vendors.dir/Fragments.cpp.o"
  "CMakeFiles/alf_vendors.dir/Fragments.cpp.o.d"
  "libalf_vendors.a"
  "libalf_vendors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_vendors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

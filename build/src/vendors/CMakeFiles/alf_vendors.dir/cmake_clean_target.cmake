file(REMOVE_RECURSE
  "libalf_vendors.a"
)

# Empty dependencies file for alf_vendors.
# This may be replaced when dependencies are built.

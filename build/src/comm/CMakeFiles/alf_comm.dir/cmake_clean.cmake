file(REMOVE_RECURSE
  "CMakeFiles/alf_comm.dir/CommInsertion.cpp.o"
  "CMakeFiles/alf_comm.dir/CommInsertion.cpp.o.d"
  "libalf_comm.a"
  "libalf_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

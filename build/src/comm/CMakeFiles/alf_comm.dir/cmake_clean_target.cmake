file(REMOVE_RECURSE
  "libalf_comm.a"
)

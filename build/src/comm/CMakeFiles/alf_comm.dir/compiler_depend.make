# Empty compiler generated dependencies file for alf_comm.
# This may be replaced when dependencies are built.

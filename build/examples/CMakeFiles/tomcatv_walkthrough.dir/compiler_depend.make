# Empty compiler generated dependencies file for tomcatv_walkthrough.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tomcatv_walkthrough.dir/tomcatv_walkthrough.cpp.o"
  "CMakeFiles/tomcatv_walkthrough.dir/tomcatv_walkthrough.cpp.o.d"
  "tomcatv_walkthrough"
  "tomcatv_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomcatv_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for zplc.
# This may be replaced when dependencies are built.

# Empty dependencies file for spmd_validation.
# This may be replaced when dependencies are built.

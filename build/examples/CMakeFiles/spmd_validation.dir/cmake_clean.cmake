file(REMOVE_RECURSE
  "CMakeFiles/spmd_validation.dir/spmd_validation.cpp.o"
  "CMakeFiles/spmd_validation.dir/spmd_validation.cpp.o.d"
  "spmd_validation"
  "spmd_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmd_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- bench/fig10_sp2.cpp - Paper Figure 10 (IBM SP-2) ---------------------===//

#include "FigureCommon.h"

#include <iostream>

int main() {
  alf::figures::printRuntimeFigure(alf::machine::ibmSP2(), std::cout);
  return 0;
}

//===- bench/algo_scaling.cpp - Algorithm complexity benchmarks --------------===//
//
// google-benchmark scaling sweeps for the paper's section 4 complexity
// claims: FUSION-FOR-CONTRACTION runs in O(r e) and FIND-LOOP-STRUCTURE
// in O(n^2 e) (effectively linear in the dependence count for the small
// ranks of real programs).
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "xform/Fusion.h"
#include "xform/LoopStructure.h"

#include <benchmark/benchmark.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

namespace {

std::unique_ptr<Program> makeProgram(unsigned NumStmts) {
  GeneratorConfig Cfg;
  Cfg.Seed = 7;
  Cfg.NumStmts = NumStmts;
  Cfg.NumPersistent = 4;
  Cfg.NumTemps = NumStmts / 3 + 1;
  Cfg.Extent = 4;
  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  return P;
}

void BM_BuildASDG(benchmark::State &State) {
  auto P = makeProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    ASDG G = ASDG::build(*P);
    benchmark::DoNotOptimize(G.numEdges());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BuildASDG)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_FusionForContraction(benchmark::State &State) {
  auto P = makeProgram(static_cast<unsigned>(State.range(0)));
  ASDG G = ASDG::build(*P);
  for (auto _ : State) {
    FusionPartition FP = FusionPartition::trivial(G);
    unsigned Merges = fuseForContraction(FP, anyArray());
    benchmark::DoNotOptimize(Merges);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FusionForContraction)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_FindLoopStructure(benchmark::State &State) {
  // e dependence vectors of rank 2, solvable (all nonnegative dim 1).
  std::vector<Offset> UDVs;
  for (int64_t I = 0; I < State.range(0); ++I)
    UDVs.push_back(Offset({static_cast<int32_t>(I % 3),
                           static_cast<int32_t>(1 - (I % 4))}));
  for (auto _ : State) {
    auto P = findLoopStructure(UDVs, 2);
    benchmark::DoNotOptimize(P.has_value());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FindLoopStructure)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_GreedyPairwise(benchmark::State &State) {
  auto P = makeProgram(static_cast<unsigned>(State.range(0)));
  ASDG G = ASDG::build(*P);
  for (auto _ : State) {
    FusionPartition FP = FusionPartition::trivial(G);
    unsigned Merges = fuseAllPairwise(FP);
    benchmark::DoNotOptimize(Merges);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GreedyPairwise)->RangeMultiplier(2)->Range(8, 64)->Complexity();

} // namespace

BENCHMARK_MAIN();

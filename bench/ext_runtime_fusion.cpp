//===- bench/ext_runtime_fusion.cpp - Lazy traces vs eager execution ---------===//
//
// Extension benchmark: what run-time fusion-for-contraction buys. A
// Jacobi-style sweep (stencil, pointwise residual, max-reduction,
// write-back) is driven through the runtime engine twice — "eager" with
// a trace cap of one statement, so every operation executes alone
// exactly as an unfused array library would, and "traced" with whole
// sweeps batched per flush, so the pipeline fuses the sweep and
// contracts the residual temporary. Both must produce bit-identical
// grids; the table reports the speedup.
//
// With a usable system C compiler the traced configuration is also run
// through the native JIT: after the first flush compiles the sweep
// kernel, every further flush must be a trace-cache hit with ZERO
// compiler invocations (asserted via the "jit" statistic group and the
// engine's own counters); the per-flush latency of that steady state is
// reported.
//
// Exits nonzero on divergence or on any warm-flush compile.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <unistd.h>

using namespace alf;
using namespace alf::runtime;

namespace {

constexpr int64_t N = 160;
constexpr unsigned WarmupSweeps = 2;
constexpr unsigned TimedSweeps = 30;

double secondsOf(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One Jacobi sweep recorded into \p E: four-point average, pointwise
/// residual (a contraction candidate), its max-reduction, write-back.
Scalar recordSweep(Engine &E, Array &U, const ir::Region &Interior) {
  Scalar Residual;
  {
    Array V = E.compute(Interior,
                        (shift(U, {-1, 0}) + shift(U, {1, 0}) +
                         shift(U, {0, -1}) + shift(U, {0, 1})) *
                            Ex(0.25));
    Array D = E.compute(Interior, eabs(Ex(V) - Ex(U)));
    Residual = E.reduce(RedOp::Max, Interior, Ex(D));
    E.update(U, ir::Offset({0, 0}), Interior, Ex(V));
  }
  return Residual;
}

struct SweepRun {
  std::vector<double> FinalGrid;
  double SecondsPerSweep = 0.0;
  double LastResidual = 0.0;
  EngineStats Stats;
  FlushInfo LastFlush;
};

SweepRun runSweeps(const EngineOptions &Opts) {
  Engine E(Opts);
  Array U = E.input("U", ir::Region({0, 0}, {N + 1, N + 1}));
  for (int64_t I = 0; I <= N + 1; ++I)
    U.set({I, 0}, 1.0);
  ir::Region Interior({1, 1}, {N, N});

  SweepRun Out;
  for (unsigned S = 0; S < WarmupSweeps; ++S)
    Out.LastResidual = recordSweep(E, U, Interior).value();
  Out.SecondsPerSweep = secondsOf([&] {
                          for (unsigned S = 0; S < TimedSweeps; ++S)
                            Out.LastResidual =
                                recordSweep(E, U, Interior).value();
                        }) /
                        TimedSweeps;
  Out.FinalGrid = U.values();
  Out.Stats = E.stats();
  Out.LastFlush = E.lastFlush();
  return Out;
}

} // namespace

int main() {
  std::cout << "Runtime lazy evaluation: eager statements vs fused traces\n"
            << "(Jacobi sweep on a " << N << "x" << N << " grid, "
            << TimedSweeps << " timed sweeps, 4 statements each)\n\n";

  EngineOptions Eager;
  Eager.MaxTraceLen = 1; // every statement flushes alone: no fusion
  SweepRun EagerRun = runSweeps(Eager);

  EngineOptions Traced; // whole sweeps per flush (observation-triggered)
  SweepRun TracedRun = runSweeps(Traced);

  if (EagerRun.FinalGrid != TracedRun.FinalGrid) {
    std::cerr << "FAIL: traced grid diverged from eager grid\n";
    return 1;
  }
  if (TracedRun.LastFlush.Contracted == 0) {
    std::cerr << "FAIL: the traced sweep contracted nothing\n";
    return 1;
  }

  TextTable Table;
  Table.setHeader({"configuration", "ms/sweep", "speedup", "clusters",
                   "contracted", "cache hits"});
  auto addRow = [&](const char *Name, const SweepRun &R) {
    Table.addRow(
        {Name, formatString("%.3f", R.SecondsPerSweep * 1e3),
         formatString("%.2fx",
                      EagerRun.SecondsPerSweep / R.SecondsPerSweep),
         formatString("%u", R.LastFlush.Clusters),
         formatString("%u", R.LastFlush.Contracted),
         formatString("%llu/%llu",
                      static_cast<unsigned long long>(R.Stats.CacheHits),
                      static_cast<unsigned long long>(R.Stats.Flushes))});
  };
  addRow("eager (cap=1)", EagerRun);
  addRow("traced", TracedRun);

  if (!exec::JitEngine::compilerAvailable()) {
    Table.print(std::cout);
    std::cout << "\n(no usable system C compiler; skipping the native JIT "
                 "configuration)\n";
    return 0;
  }

  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("alf-runtime-bench-" + std::to_string(getpid())))
          .string();
  if (const char *Env = std::getenv("ALF_JIT_CACHE_DIR"))
    if (*Env)
      CacheDir = Env;

  EngineOptions Jit;
  Jit.Mode = xform::ExecMode::NativeJit;
  Jit.Jit.CacheDir = CacheDir;

  uint64_t CompilesBefore = getStatisticValue("jit", "NumJitCompiles");
  SweepRun JitRun = runSweeps(Jit);
  uint64_t Compiles =
      getStatisticValue("jit", "NumJitCompiles") - CompilesBefore;

  if (JitRun.FinalGrid != EagerRun.FinalGrid) {
    std::cerr << "FAIL: native traced grid diverged from eager grid\n";
    return 1;
  }
  // The steady state must be: first flush analyzed (and possibly
  // compiled), every other flush a structural cache hit running the
  // already-loaded kernel.
  if (JitRun.Stats.CacheMisses != 1) {
    std::cerr << "FAIL: expected exactly 1 trace-cache miss, saw "
              << JitRun.Stats.CacheMisses << "\n";
    return 1;
  }
  if (Compiles > 1) {
    std::cerr << "FAIL: warm flushes invoked the compiler ("
              << Compiles << " total compiles for one trace shape)\n";
    return 1;
  }
  addRow("traced + native JIT", JitRun);
  Table.print(std::cout);

  std::cout << "\nwarm-flush steady state: "
            << formatString("%.3f", JitRun.SecondsPerSweep * 1e3)
            << " ms/sweep with " << Compiles << " kernel compile(s) across "
            << JitRun.Stats.Flushes
            << " flushes (every post-warmup flush: 0 analysis, 0 compiles; "
               "kernel cache: "
            << CacheDir << ")\n";
  return 0;
}

//===- bench/fig9_t3e.cpp - Paper Figure 9 (Cray T3E) -----------------------===//

#include "FigureCommon.h"

#include <iostream>

int main() {
  alf::figures::printRuntimeFigure(alf::machine::crayT3E(), std::cout);
  return 0;
}

//===- bench/fig8_problem_size.cpp - Paper Figure 8 --------------------------===//
//
// Reproduces Figure 8: "Effect of contraction on maximum achievable
// problem size". For each benchmark: the peak simultaneously-live array
// counts lb (before) and la (after contraction), the predicted percent
// change C(lb, la) = 100 x (lb - la)/la, and the measured largest
// problem size that fits a fixed per-node memory budget (the paper used
// OS process-size limits on single T3E and SP-2 nodes; both had 256 MB).
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"

#include "driver/Pipeline.h"
#include "exec/MemoryAccounting.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <cmath>
#include <iostream>
#include <set>

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

uint64_t peakBytesAt(const BenchmarkInfo &B, int64_t N, bool Contract) {
  auto P = B.Build(N);
  driver::Pipeline PL(*P);
  std::set<const ArraySymbol *> Contracted;
  if (Contract) {
    StrategyResult SR = PL.strategy(Strategy::C2);
    Contracted.insert(SR.Contracted.begin(), SR.Contracted.end());
  }
  return computeCensus(PL.program(), Contracted).PeakBytes;
}

} // namespace

int main() {
  const uint64_t Budget = 256ull << 20; // 256 MB per node (T3E and SP-2)
  std::cout << "Figure 8: effect of contraction on maximum achievable "
               "problem size\n";
  std::cout << "(memory budget per node: 256 MB)\n\n";

  TextTable Table;
  Table.setHeader({"application", "lb", "la", "C(%)", "max N w/o", "max N w/",
                   "dN(%)", "dVol(%)", "paper lb", "paper la"});

  for (const BenchmarkInfo &B : allBenchmarks()) {
    auto P = B.Build(8);
    driver::Pipeline PL(*P);
    StrategyResult SR = PL.strategy(Strategy::C2);
    std::set<const ArraySymbol *> Contracted(SR.Contracted.begin(),
                                             SR.Contracted.end());
    unsigned Lb = computeCensus(PL.program(), {}).PeakLive;
    unsigned La = computeCensus(PL.program(), Contracted).PeakLive;
    double C = problemSizeChangePercent(Lb, La);

    // Measured: binary-search the largest problem size that fits. The
    // contracted EP uses constant memory, so cap the search range.
    int64_t MaxN = B.Rank == 1 ? (64 << 20) : 65536;
    int64_t Before = findMaxProblemSize(
        [&B](int64_t N) { return peakBytesAt(B, N, false); }, Budget, MaxN);
    int64_t After = findMaxProblemSize(
        [&B](int64_t N) { return peakBytesAt(B, N, true); }, Budget, MaxN);

    double DimChange =
        Before == 0 ? 0.0
                    : 100.0 * (static_cast<double>(After) / Before - 1.0);
    double Pow = B.Rank == 1 ? 1.0 : 2.0;
    double VolChange =
        Before == 0
            ? 0.0
            : 100.0 * (std::pow(static_cast<double>(After) / Before, Pow) -
                       1.0);

    bool Unbounded = After >= MaxN;
    Table.addRow({B.Name, formatString("%u", Lb), formatString("%u", La),
                  std::isinf(C) ? "inf" : formatString("%.1f", C),
                  formatString("%lld", static_cast<long long>(Before)),
                  Unbounded
                      ? ">" + formatString("%lld",
                                           static_cast<long long>(MaxN))
                      : formatString("%lld", static_cast<long long>(After)),
                  Unbounded ? "inf" : formatString("%.1f", DimChange),
                  Unbounded ? "inf" : formatString("%.1f", VolChange),
                  formatString("%u", B.PaperLb),
                  formatString("%u", B.PaperLa)});
  }
  Table.print(std::cout);
  std::cout << "\n(EP's contracted form uses constant memory independent of "
               "problem size, as the paper reports.)\n";
  return 0;
}

//===- bench/FigureCommon.cpp - Shared experiment harness -------------------===//

#include "FigureCommon.h"

#include "driver/Pipeline.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::driver;
using namespace alf::exec;
using namespace alf::figures;
using namespace alf::ir;
using namespace alf::machine;
using namespace alf::xform;

int64_t figures::perProcessorSize(const BenchmarkInfo &B) {
  if (B.Name == "EP")
    return 4096; // rank 1
  if (B.Name == "Frac")
    return 64;
  if (B.Name == "SP")
    return 24;
  if (B.Name == "Tomcatv")
    return 48;
  if (B.Name == "Simple")
    return 32;
  return 40; // Fibro
}

PerfStats figures::simulateStrategy(const BenchmarkInfo &B, Strategy S,
                                    const MachineDesc &M, unsigned Procs) {
  auto P = B.Build(perProcessorSize(B));
  PipelineOptions Opts;
  Opts.Comm = CommPolicy::LoopLevel;
  Pipeline PL(*P, Opts);
  return simulate(PL.scalarize(S), M, ProcGrid::make(Procs, B.Rank));
}

PerfStats figures::simulateFavorComm(const BenchmarkInfo &B,
                                     const MachineDesc &M, unsigned Procs) {
  auto P = B.Build(perProcessorSize(B));
  PipelineOptions Opts;
  Opts.Comm = CommPolicy::ArrayLevel;
  Opts.PipelinedComm = true;
  Pipeline PL(*P, Opts);
  return simulate(PL.scalarize(Strategy::C2F3), M,
                  ProcGrid::make(Procs, B.Rank));
}

void figures::printRuntimeFigure(const MachineDesc &M, std::ostream &OS) {
  OS << "Benchmark performance on " << M.Name
     << " (percent improvement over baseline; problem size scaled with "
        "processors)\n\n";

  for (const BenchmarkInfo &B : allBenchmarks()) {
    // Build and optimize once per benchmark; only the grid varies with p.
    auto P = B.Build(perProcessorSize(B));
    PipelineOptions Opts;
    Opts.Comm = CommPolicy::LoopLevel;
    Pipeline PL(*P, Opts);

    std::vector<std::unique_ptr<lir::LoopProgram>> Programs;
    for (Strategy S : allStrategies())
      Programs.push_back(
          std::make_unique<lir::LoopProgram>(PL.scalarize(S)));

    TextTable Table;
    std::vector<std::string> Header{"p"};
    for (Strategy S : allStrategies())
      if (S != Strategy::Baseline)
        Header.push_back(getStrategyName(S));
    Table.setHeader(std::move(Header));

    for (unsigned Procs : ProcCounts) {
      ProcGrid Grid = ProcGrid::make(Procs, B.Rank);
      PerfStats Base = simulate(*Programs[0], M, Grid);
      std::vector<std::string> Row{formatString("%u", Procs)};
      for (size_t I = 1; I < Programs.size(); ++I) {
        PerfStats Opt = simulate(*Programs[I], M, Grid);
        Row.push_back(formatPercent(percentImprovement(Base, Opt)));
      }
      Table.addRow(std::move(Row));
    }

    OS << B.Name << ":\n";
    Table.print(OS);
    OS << '\n';
  }
}

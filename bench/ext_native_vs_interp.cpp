//===- bench/ext_native_vs_interp.cpp - Native kernels vs interpreter --------===//
//
// Extension benchmark: the paper's eight strategies executed as real
// machine code. Every benchmark/strategy pair is scalarized, JIT-compiled
// through exec::JitEngine, verified bit-identical to the sequential
// interpreter, and then timed under both executors; the table reports the
// native speedup per strategy. A second pass with a fresh engine over the
// same (now warm) kernel cache re-runs everything and asserts — via the
// "jit" Statistic group — that the compiler was never invoked again.
//
// Exits nonzero on any divergence or on a compile during the warm pass;
// exits 0 with a note when the machine has no usable C compiler.
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"

#include "driver/Pipeline.h"
#include "support/Statistic.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <unistd.h>

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::driver;
using namespace alf::exec;
using namespace alf::xform;

namespace {

double secondsOf(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

int64_t problemSize(const BenchmarkInfo &B) {
  return B.Rank == 1 ? 1 << 16 : 96;
}

} // namespace

int main() {
  if (!JitEngine::compilerAvailable()) {
    std::cout << "ext_native_vs_interp: no usable system C compiler; "
                 "nothing to measure\n";
    return 0;
  }

  const uint64_t Seed = 42;
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("alf-native-bench-" + std::to_string(getpid())))
          .string();
  if (const char *Env = std::getenv("ALF_JIT_CACHE_DIR"))
    if (*Env)
      CacheDir = Env;

  JitOptions JOpts;
  JOpts.CacheDir = CacheDir;

  std::cout << "Native JIT kernels vs the sequential interpreter\n"
            << "(every native result verified bit-identical before "
               "timing; kernel cache: "
            << CacheDir << ")\n\n";

  unsigned Pairs = 0;

  // Pass 1 (cold or CI-warmed cache): verify and time everything.
  {
    JitEngine Engine(JOpts);
    for (const BenchmarkInfo &B : allBenchmarks()) {
      auto P = B.Build(problemSize(B));
      Pipeline PL(*P);

      TextTable Table;
      Table.setHeader(
          {"strategy", "interp (s)", "native (s)", "speedup", "kernel"});
      for (Strategy S : allStrategies()) {
        auto LP = PL.scalarize(S);

        RunResult InterpRes = run(LP, Seed);
        JitRunInfo Info;
        RunResult JitRes = Engine.run(LP, Seed, &Info);
        if (!Info.UsedJit) {
          std::cerr << "FAIL: " << B.Name << "/" << getStrategyName(S)
                    << " fell back to the interpreter: "
                    << Info.FallbackReason << "\n";
          return 1;
        }
        std::string Why;
        if (!resultsMatch(InterpRes, JitRes, 0.0, &Why)) {
          std::cerr << "FAIL: " << B.Name << "/" << getStrategyName(S)
                    << " native result diverged: " << Why << "\n";
          return 1;
        }
        ++Pairs;

        double TInterp = secondsOf([&] { run(LP, Seed); });
        double TNative = secondsOf([&] { Engine.run(LP, Seed); });
        Table.addRow({getStrategyName(S), formatString("%.4f", TInterp),
                      formatString("%.4f", TNative),
                      TNative > 0.0
                          ? formatString("%.1fx", TInterp / TNative)
                          : "inf",
                      Info.Compiled      ? "compiled"
                      : Info.CacheHitDisk ? "disk cache"
                                          : "memory cache"});
      }
      std::cout << B.Name << " (N=" << problemSize(B) << "):\n";
      Table.print(std::cout);
      std::cout << '\n';
    }
  }

  // Pass 2: a fresh engine over the warm cache must serve every kernel
  // from disk without one compiler invocation.
  uint64_t CompilesBefore = getStatisticValue("jit", "NumJitCompiles");
  {
    JitEngine Engine(JOpts);
    for (const BenchmarkInfo &B : allBenchmarks()) {
      auto P = B.Build(problemSize(B));
      Pipeline PL(*P);
      for (Strategy S : allStrategies()) {
        JitRunInfo Info;
        Engine.run(PL.scalarize(S), Seed, &Info);
        if (!Info.UsedJit) {
          std::cerr << "FAIL: warm-cache rerun of " << B.Name << "/"
                    << getStrategyName(S)
                    << " fell back: " << Info.FallbackReason << "\n";
          return 1;
        }
      }
    }
  }
  uint64_t WarmCompiles =
      getStatisticValue("jit", "NumJitCompiles") - CompilesBefore;
  if (WarmCompiles != 0) {
    std::cerr << "FAIL: warm-cache rerun invoked the compiler "
              << WarmCompiles << " time(s)\n";
    return 1;
  }

  std::cout << Pairs << " benchmark/strategy pairs verified bit-identical; "
            << "warm-cache rerun performed 0 compiler invocations ("
            << getStatisticValue("jit", "NumJitCacheDiskHits")
            << " disk hits, "
            << getStatisticValue("jit", "NumJitCacheMemoryHits")
            << " memory hits overall)\n";
  return 0;
}

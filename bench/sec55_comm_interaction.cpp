//===- bench/sec55_comm_interaction.cpp - Paper section 5.5 ------------------===//
//
// Reproduces the section 5.5 experiment: the slowdown suffered when
// communication optimizations are favored over fusion for contraction.
// Under the favor-communication policy, pipelined send/recv pairs are
// inserted into the array program before fusion; the exchange statements
// cannot fuse, so they disable contraction opportunities without
// producing comparable communication benefits.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <iostream>

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::figures;
using namespace alf::machine;
using namespace alf::xform;

int main() {
  const unsigned Procs = 16;
  std::cout << "Section 5.5: slowdown when favoring communication "
               "optimization over fusion for contraction\n";
  std::cout << "(strategy c2+f3, " << Procs
            << " processors; positive = favor-communication is slower)\n\n";

  TextTable Table;
  Table.setHeader({"application", "Cray T3E", "IBM SP-2", "Intel Paragon"});

  // The paper reports Simple, Tomcatv, SP and Fibro slowing down, with
  // EP and Frac unaffected (small codes without communication benefit).
  const char *Order[] = {"Simple", "Tomcatv", "SP", "Fibro", "EP", "Frac"};
  for (const char *Name : Order) {
    const BenchmarkInfo *B = nullptr;
    for (const BenchmarkInfo &Candidate : allBenchmarks())
      if (Candidate.Name == Name)
        B = &Candidate;
    std::vector<std::string> Row{Name};
    for (const MachineDesc &M : allMachines()) {
      PerfStats FavorFusion =
          simulateStrategy(*B, Strategy::C2F3, M, Procs);
      PerfStats FavorComm = simulateFavorComm(*B, M, Procs);
      double SlowdownPct =
          (FavorComm.totalNs() / FavorFusion.totalNs() - 1.0) * 100.0;
      Row.push_back(formatString("%+.1f%%", SlowdownPct));
    }
    Table.addRow(std::move(Row));
  }
  Table.print(std::cout);
  std::cout << "\n(The paper reports T3E slowdowns of 25.4/22.7/9.6/5.1% "
               "for Simple/Tomcatv/SP/Fibro and none for EP/Frac.)\n";
  return 0;
}

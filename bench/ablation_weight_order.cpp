//===- bench/ablation_weight_order.cpp - Ablation: consideration order -------===//
//
// DESIGN.md ablation A1 plus the greedy-vs-optimal gap study, emitted as
// machine-readable JSON (schema alf-ablation-weight-order/2) so the
// results can be diffed, plotted, and archived like the alf_bench
// output.
//
// Section "weight_order_ablation": FUSION-FOR-CONTRACTION considers
// arrays in decreasing reference-weight order "so arrays that have
// potentially the largest single impact on the total contraction
// benefit are considered first" (Figure 3). The ablation replays the
// greedy loop with three consideration orders on programs full of
// fragment-8-style trade-offs and compares the total contraction
// benefit achieved.
//
// Section "gap_study": how far the paper's greedy heuristic sits from
// the true optimum. For each stress-sweep generator seed the
// branch-and-bound partitioner (xform/IlpStrategy) solves the fusion
// partitioning problem exactly and the per-seed record reports both
// objectives (contracted bytes), the gap, and the solver effort. The
// "handbuilt_tradeoff" entry is the documented construction on which
// greedy is provably suboptimal (the ±1 anti-dependence fan-in
// trade-off from tests/IlpStrategyTest.cpp).
//
// Usage: ablation_weight_order [--seeds=N] [--out=FILE]
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "ir/Program.h"
#include "support/Json.h"
#include "support/StringUtil.h"
#include "xform/Fusion.h"
#include "xform/IlpStrategy.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// A program of \p Blocks fragment-8-style trade-off blocks: in each, the
/// two user temporaries can be contracted only by sacrificing the
/// compiler temporary of the block's self-update.
std::unique_ptr<Program> makeTradeoffProgram(unsigned Blocks) {
  auto P = std::make_unique<Program>("tradeoffs");
  const Region *R = P->regionFromExtents({32, 32});
  for (unsigned B = 0; B < Blocks; ++B) {
    ArraySymbol *A = P->makeArray(formatString("A%u", B), 2);
    ArraySymbol *In = P->makeArray(formatString("B%u", B), 2);
    ArraySymbol *T1 = P->makeUserTemp(formatString("t1_%u", B), 2);
    ArraySymbol *T2 = P->makeUserTemp(formatString("t2_%u", B), 2);
    P->assign(R, T1, add(aref(A, {-1, 0}), aref(In)));
    P->assign(R, T2, add(aref(A, {-1, 0}), aref(T1)));
    P->assign(R, A, add(add(aref(A, {1, 0}), aref(T1)), aref(T2)));
  }
  normalizeProgram(*P);
  return P;
}

/// The fan-in trade-off on which weight-ordered greedy is provably
/// suboptimal: X carries the most references (4) but the cluster that
/// contracts X can never absorb the writers of V1/V2 (their +1 and -1
/// offsets admit no common loop direction), so contracting X forfeits
/// contracting both M1 and M2 (3+3 references). Mirrors the
/// BeatsGreedyOnFanInTradeoff construction in tests/IlpStrategyTest.cpp.
std::unique_ptr<Program> makeFanInTradeoff() {
  auto P = std::make_unique<Program>("fanin-tradeoff");
  const Region *R = P->regionFromExtents({16});
  ArraySymbol *V1 = P->makeArray("V1", 1);
  ArraySymbol *V2 = P->makeArray("V2", 1);
  ArraySymbol *A = P->makeArray("A", 1);
  ArraySymbol *B = P->makeArray("B", 1);
  ArraySymbol *W = P->makeArray("W", 1);
  ArraySymbol *X = P->makeUserTemp("X", 1);
  ArraySymbol *M1 = P->makeUserTemp("M1", 1);
  ArraySymbol *M2 = P->makeUserTemp("M2", 1);
  P->assign(R, X, add(add(aref(V1, {-1}), aref(V2, {-1})), aref(A)));
  P->assign(R, M1, aref(A));
  P->assign(R, M2, aref(B));
  P->assign(R, W, add(add(add(aref(X), aref(X)), aref(X)),
                      add(add(aref(M1), aref(M2)),
                          add(aref(V1, {1}), aref(V2, {1})))));
  P->assign(R, V1, add(aref(M1), aref(A)));
  P->assign(R, V2, add(aref(M2), aref(B)));
  normalizeProgram(*P);
  return P;
}

/// The Figure 3 greedy loop with an explicit consideration order.
double greedyWithOrder(const ASDG &G,
                       std::vector<const ArraySymbol *> Order) {
  FusionPartition FP = FusionPartition::trivial(G);
  for (const ArraySymbol *Var : Order) {
    std::set<unsigned> C = FP.clustersReferencing(Var);
    if (C.empty())
      continue;
    std::set<unsigned> Grown = FP.grow(C);
    C.insert(Grown.begin(), Grown.end());
    if (C.size() < 2)
      continue;
    if (!isContractible(FP, C, Var) || !isLegalFusion(FP, C))
      continue;
    FP.merge(C);
  }
  return contractionBenefit(FP, contractibleArrays(FP, anyArray()));
}

json::Value weightOrderAblation() {
  json::Value Rows = json::Value::array();
  for (unsigned Blocks : {1u, 2u, 4u, 8u, 16u}) {
    auto P = makeTradeoffProgram(Blocks);
    ASDG G = ASDG::build(*P);

    std::vector<const ArraySymbol *> ByWeight = G.arraysByDecreasingWeight();
    std::vector<const ArraySymbol *> ById = ByWeight;
    std::sort(ById.begin(), ById.end(),
              [](const ArraySymbol *L, const ArraySymbol *R) {
                return L->getId() < R->getId();
              });
    // Adversarial order: compiler temporaries first (the Cray-style
    // separate weighing).
    std::vector<const ArraySymbol *> CompilerFirst = ById;
    std::stable_sort(CompilerFirst.begin(), CompilerFirst.end(),
                     [](const ArraySymbol *L, const ArraySymbol *R) {
                       return L->isCompilerTemp() > R->isCompilerTemp();
                     });

    double W = greedyWithOrder(G, ByWeight);
    double I = greedyWithOrder(G, ById);
    double C = greedyWithOrder(G, CompilerFirst);
    double Worst = std::min({W, I, C});

    json::Value Row = json::Value::object();
    Row.set("blocks", json::Value::number(Blocks));
    Row.set("benefit_by_weight", json::Value::number(W));
    Row.set("benefit_by_symbol_id", json::Value::number(I));
    Row.set("benefit_compiler_temps_first", json::Value::number(C));
    Row.set("weight_over_worst",
            json::Value::number(Worst > 0 ? W / Worst : 0.0));
    Rows.push(std::move(Row));
  }
  return Rows;
}

/// Solves one program with both greedy FUSION-FOR-CONTRACTION and the
/// exact branch-and-bound and records the objectives and solver effort.
json::Value gapRecord(Program &P) {
  ASDG G = ASDG::build(P);
  IlpStats St;
  auto T0 = std::chrono::steady_clock::now();
  (void)solveOptimalPartition(G, IlpOptions(), &St);
  auto T1 = std::chrono::steady_clock::now();
  double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();

  json::Value Rec = json::Value::object();
  Rec.set("greedy_bytes", json::Value::number(St.GreedyObjectiveBytes));
  Rec.set("ilp_bytes", json::Value::number(St.ObjectiveBytes));
  Rec.set("gap_bytes",
          json::Value::number(St.ObjectiveBytes - St.GreedyObjectiveBytes));
  Rec.set("nodes_explored", json::Value::number(St.NodesExplored));
  Rec.set("branches_pruned", json::Value::number(St.BranchesPruned));
  Rec.set("budget_exhausted", json::Value::boolean(St.BudgetExhausted));
  Rec.set("solve_ms", json::Value::number(Ms));
  return Rec;
}

/// Mirrors tests/StressSweepTest.cpp sweepConfig so the gap study runs
/// over exactly the population the differential sweep certifies.
GeneratorConfig sweepConfig(uint64_t Seed) {
  GeneratorConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.NumStmts = 4 + static_cast<unsigned>(Seed % 9);
  Cfg.NumPersistent = 2 + static_cast<unsigned>(Seed % 3);
  Cfg.NumTemps = 2 + static_cast<unsigned>((Seed / 3) % 4);
  Cfg.Rank = 1 + static_cast<unsigned>(Seed % 3);
  Cfg.Extent = Cfg.Rank == 3 ? 4 : 6 + static_cast<int64_t>(Seed % 4);
  Cfg.MaxOffset = 1 + static_cast<unsigned>(Seed % 2);
  Cfg.AllowTargetOffsets = Seed % 4 == 1;
  Cfg.UseTwoRegions = Seed % 5 == 0;
  Cfg.AddOpaque = Seed % 7 == 0;
  return Cfg;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Seeds = 50;
  std::string OutFile;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--seeds=", 0) == 0) {
      Seeds = static_cast<unsigned>(std::atoi(Arg.c_str() + 8));
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutFile = Arg.substr(6);
    } else {
      std::cerr << "usage: ablation_weight_order [--seeds=N] [--out=FILE]\n";
      return 1;
    }
  }

  json::Value Root = json::Value::object();
  Root.set("schema", json::Value::str("alf-ablation-weight-order/2"));
  Root.set("weight_order_ablation", weightOrderAblation());

  // The gap study: greedy vs the exact optimum, per seed.
  json::Value PerSeed = json::Value::array();
  unsigned StrictlyBetter = 0, Equal = 0, Exhausted = 0;
  double MaxGap = 0.0, TotalMs = 0.0;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    auto P = generateRandomProgram(sweepConfig(Seed));
    json::Value Rec = gapRecord(*P);
    double Gap = *Rec.getNumber("gap_bytes");
    if (Gap > 0)
      ++StrictlyBetter;
    else
      ++Equal;
    if (*Rec.getBool("budget_exhausted"))
      ++Exhausted;
    MaxGap = std::max(MaxGap, Gap);
    TotalMs += *Rec.getNumber("solve_ms");
    Rec.set("seed", json::Value::number(Seed));
    PerSeed.push(std::move(Rec));
  }

  json::Value Summary = json::Value::object();
  Summary.set("seeds", json::Value::number(Seeds));
  Summary.set("seeds_ilp_strictly_better", json::Value::number(StrictlyBetter));
  Summary.set("seeds_equal", json::Value::number(Equal));
  Summary.set("seeds_budget_exhausted", json::Value::number(Exhausted));
  Summary.set("max_gap_bytes", json::Value::number(MaxGap));
  Summary.set("total_solve_ms", json::Value::number(TotalMs));

  json::Value Gap = json::Value::object();
  Gap.set("summary", std::move(Summary));
  {
    // The documented strict-improvement construction: greedy contracts X
    // (4 references, 512 bytes) where the optimum contracts M1+M2
    // (6 references, 768 bytes).
    auto P = makeFanInTradeoff();
    Gap.set("handbuilt_tradeoff", gapRecord(*P));
  }
  Gap.set("per_seed", std::move(PerSeed));
  Root.set("gap_study", std::move(Gap));

  if (!OutFile.empty()) {
    std::ofstream OS(OutFile);
    if (!OS) {
      std::cerr << "ablation_weight_order: cannot write " << OutFile << '\n';
      return 1;
    }
    Root.write(OS);
    OS << '\n';
    std::cout << "wrote " << OutFile << '\n';
  } else {
    Root.write(std::cout);
    std::cout << '\n';
  }
  return 0;
}

//===- bench/ablation_weight_order.cpp - Ablation: consideration order -------===//
//
// DESIGN.md ablation A1: FUSION-FOR-CONTRACTION considers arrays in
// decreasing reference-weight order "so arrays that have potentially the
// largest single impact on the total contraction benefit are considered
// first" (Figure 3). This ablation replays the greedy loop with three
// consideration orders on programs full of fragment-8-style trade-offs
// and compares the total contraction benefit achieved.
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "ir/Normalize.h"
#include "ir/Program.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"
#include "xform/Fusion.h"

#include <algorithm>
#include <iostream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// A program of \p Blocks fragment-8-style trade-off blocks: in each, the
/// two user temporaries can be contracted only by sacrificing the
/// compiler temporary of the block's self-update.
std::unique_ptr<Program> makeTradeoffProgram(unsigned Blocks) {
  auto P = std::make_unique<Program>("tradeoffs");
  const Region *R = P->regionFromExtents({32, 32});
  for (unsigned B = 0; B < Blocks; ++B) {
    ArraySymbol *A = P->makeArray(formatString("A%u", B), 2);
    ArraySymbol *In = P->makeArray(formatString("B%u", B), 2);
    ArraySymbol *T1 = P->makeUserTemp(formatString("t1_%u", B), 2);
    ArraySymbol *T2 = P->makeUserTemp(formatString("t2_%u", B), 2);
    P->assign(R, T1, add(aref(A, {-1, 0}), aref(In)));
    P->assign(R, T2, add(aref(A, {-1, 0}), aref(T1)));
    P->assign(R, A, add(add(aref(A, {1, 0}), aref(T1)), aref(T2)));
  }
  normalizeProgram(*P);
  return P;
}

/// The Figure 3 greedy loop with an explicit consideration order.
double greedyWithOrder(const ASDG &G,
                       std::vector<const ArraySymbol *> Order) {
  FusionPartition FP = FusionPartition::trivial(G);
  for (const ArraySymbol *Var : Order) {
    std::set<unsigned> C = FP.clustersReferencing(Var);
    if (C.empty())
      continue;
    std::set<unsigned> Grown = FP.grow(C);
    C.insert(Grown.begin(), Grown.end());
    if (C.size() < 2)
      continue;
    if (!isContractible(FP, C, Var) || !isLegalFusion(FP, C))
      continue;
    FP.merge(C);
  }
  return contractionBenefit(FP, contractibleArrays(FP, anyArray()));
}

} // namespace

int main() {
  std::cout << "Ablation A1: array consideration order in "
               "FUSION-FOR-CONTRACTION\n";
  std::cout << "(total contraction benefit = sum of contracted arrays' "
               "reference weights)\n\n";

  TextTable Table;
  Table.setHeader({"trade-off blocks", "by weight (paper)", "by symbol id",
                   "compiler-temps first", "weight / worst"});

  for (unsigned Blocks : {1u, 2u, 4u, 8u, 16u}) {
    auto P = makeTradeoffProgram(Blocks);
    ASDG G = ASDG::build(*P);

    std::vector<const ArraySymbol *> ByWeight = G.arraysByDecreasingWeight();
    std::vector<const ArraySymbol *> ById = ByWeight;
    std::sort(ById.begin(), ById.end(),
              [](const ArraySymbol *L, const ArraySymbol *R) {
                return L->getId() < R->getId();
              });
    // Adversarial order: compiler temporaries first (the Cray-style
    // separate weighing).
    std::vector<const ArraySymbol *> CompilerFirst = ById;
    std::stable_sort(CompilerFirst.begin(), CompilerFirst.end(),
                     [](const ArraySymbol *L, const ArraySymbol *R) {
                       return L->isCompilerTemp() > R->isCompilerTemp();
                     });

    double W = greedyWithOrder(G, ByWeight);
    double I = greedyWithOrder(G, ById);
    double C = greedyWithOrder(G, CompilerFirst);
    double Worst = std::min({W, I, C});
    Table.addRow({formatString("%u", Blocks), formatString("%.0f", W),
                  formatString("%.0f", I), formatString("%.0f", C),
                  formatString("%.2fx", Worst > 0 ? W / Worst : 0.0)});
  }
  Table.print(std::cout);
  std::cout << "\n(Weight order should dominate: it contracts both user "
               "temporaries per block, sacrificing the lighter compiler "
               "temporary.)\n";
  return 0;
}
